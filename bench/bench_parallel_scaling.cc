// Intra-request parallel NewSEA: seed-sharded multi-init scaling.
//
// Runs NewSEA on the Table VII-scale synthetic datasets (the large roster
// rows) at 1, 2, 4 and 8 seed-shard workers, checks the bit-identical
// determinism guarantee against the sequential run, and reports wall time,
// initializations and pruned-seed counts per thread count.
//
// `--json out.json` emits the BENCH_parallel_scaling.json record tracked in
// the repo; `--smoke` shrinks the dataset and thread sweep so the ctest
// `bench_smoke` wiring finishes in well under a second.

#include <cstdio>

#include "bench_util.h"
#include "core/newsea.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace dcs;
  using namespace dcs::bench;
  const BenchArgs args = ParseBenchArgs(argc, argv);
  const uint64_t seed = 20180416;
  std::printf("seed = %llu, hardware_concurrency = %u%s\n\n",
              static_cast<unsigned long long>(seed),
              std::thread::hardware_concurrency(),
              args.smoke ? " (smoke mode)" : "");

  std::vector<BenchDataset> datasets;
  if (args.smoke) {
    const CoauthorData tiny = MakeDblpAnalog(seed, /*num_authors=*/600);
    datasets.push_back({"DBLP-tiny", "Weighted", "Emerging",
                        MustDiff(tiny.g1, tiny.g2)});
  } else {
    // Uniform-ER is the multi-init stress case: near-uniform μ means the
    // Theorem 6 bound prunes weakly and NewSEA really runs hundreds of
    // Shrink/Expand/Refine descents — the loop this bench shards. The
    // planted-structure rows (DBLP-C, Actor) sit at the other extreme:
    // smart-init pruning leaves only a dozen descents, so they measure the
    // sharding overhead in the already-fast regime.
    {
      Rng rng(seed + 6);
      Result<Graph> er = ErdosRenyiWeighted(/*n=*/4000, /*p=*/0.003,
                                            /*weight_lo=*/1.0,
                                            /*weight_hi=*/2.0, &rng);
      DCS_CHECK(er.ok()) << er.status().ToString();
      datasets.push_back({"Uniform-ER", "Weighted", "—",
                          std::move(er).value()});
    }
    const CoauthorData dblp_c = MakeDblpCAnalog(seed + 4);
    datasets.push_back(
        {"DBLP-C", "Weighted", "—", MustDiff(dblp_c.g1, dblp_c.g2)});
    datasets.push_back({"Actor", "Weighted", "—", MakeActorAnalog(seed + 5)});
  }
  const std::vector<uint32_t> thread_counts =
      args.smoke ? std::vector<uint32_t>{1, 2}
                 : std::vector<uint32_t>{1, 2, 4, 8};

  JsonReporter reporter("parallel_scaling", seed);
  TablePrinter table(
      "Parallel NewSEA scaling: seed-sharded multi-init",
      {"Data", "Threads", "Wall ms", "Inits", "Pruned", "Speedup",
       "Bit-identical?"});
  for (const BenchDataset& dataset : datasets) {
    const Graph gd_plus = dataset.gd.PositivePart();
    const SmartInitBounds bounds = ComputeSmartInitBounds(gd_plus);

    double sequential_ms = 0.0;
    Result<DcsgaResult> reference = Status::OK();
    for (const uint32_t threads : thread_counts) {
      DcsgaOptions options;
      options.parallelism = threads;
      WallTimer timer;
      Result<DcsgaResult> run =
          RunNewSea(gd_plus, bounds, options, /*pool=*/nullptr);
      const double wall_ms = timer.Seconds() * 1e3;
      DCS_CHECK(run.ok()) << run.status().ToString();

      bool identical = true;
      if (threads == 1) {
        sequential_ms = wall_ms;
        reference = std::move(run);
      } else {
        // The determinism guarantee, enforced on every bench run: affinity,
        // support and embedding must match the sequential solve bit for bit.
        identical = run->affinity == reference->affinity &&
                    run->support == reference->support &&
                    run->x.x == reference->x.x;
        DCS_CHECK(identical) << dataset.Label() << " diverged at " << threads
                             << " threads";
      }
      const DcsgaResult& result = threads == 1 ? *reference : *run;

      reporter.Add({dataset.Label(), threads, wall_ms, result.initializations,
                    result.pruned_seeds, result.affinity});
      table.AddRow({dataset.data, TablePrinter::Fmt(uint64_t{threads}),
                    TablePrinter::Fmt(wall_ms, 2),
                    TablePrinter::Fmt(result.initializations),
                    TablePrinter::Fmt(result.pruned_seeds),
                    TablePrinter::Fmt(sequential_ms / wall_ms, 2),
                    identical ? "Yes" : "No"});
      std::fflush(stdout);
    }
  }
  table.Print();

  if (!args.json_path.empty()) {
    DCS_CHECK(reporter.WriteTo(args.json_path))
        << "cannot write " << args.json_path;
    std::printf("\nwrote %s\n", args.json_path.c_str());
  }
  return 0;
}
