// Micro-benchmarks (google-benchmark) for the hot paths of libdcs:
// CSR construction, difference-graph merge, greedy peel, k-core,
// coordinate-descent initialization, and the full small-graph pipelines.

#include <benchmark/benchmark.h>

#include "util/logging.h"
#include "core/dcs_greedy.h"
#include "core/newsea.h"
#include "core/seacd.h"
#include "densest/peel.h"
#include "gen/random_graphs.h"
#include "graph/difference.h"
#include "graph/kcore.h"
#include "util/rng.h"

namespace {

using namespace dcs;

Graph MakeSigned(VertexId n, size_t m, uint64_t seed) {
  Rng rng(seed);
  Result<Graph> g = RandomSignedGraph(n, m, 0.6, 0.5, 4.0, &rng);
  DCS_CHECK(g.ok());
  return std::move(g).value();
}

void BM_GraphBuild(benchmark::State& state) {
  const VertexId n = static_cast<VertexId>(state.range(0));
  const size_t m = static_cast<size_t>(n) * 8;
  Rng rng(1);
  std::vector<Edge> edges;
  edges.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(n));
    VertexId v = static_cast<VertexId>(rng.NextBounded(n - 1));
    if (v >= u) ++v;
    edges.push_back(Edge{u, v, 1.0});
  }
  for (auto _ : state) {
    GraphBuilder builder(n);
    for (const Edge& e : edges) builder.AddEdgeUnchecked(e.u, e.v, e.weight);
    Result<Graph> g = builder.Build();
    benchmark::DoNotOptimize(g.value().NumEdges());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(m));
}
BENCHMARK(BM_GraphBuild)->Arg(1000)->Arg(10000);

void BM_DifferenceGraph(benchmark::State& state) {
  const VertexId n = static_cast<VertexId>(state.range(0));
  const Graph g1 = MakeSigned(n, n * 6, 2);
  const Graph g2 = MakeSigned(n, n * 6, 3);
  for (auto _ : state) {
    Result<Graph> gd = BuildDifferenceGraph(g1, g2);
    benchmark::DoNotOptimize(gd.value().NumEdges());
  }
}
BENCHMARK(BM_DifferenceGraph)->Arg(1000)->Arg(10000);

void BM_GreedyPeel(benchmark::State& state) {
  const VertexId n = static_cast<VertexId>(state.range(0));
  const Graph gd = MakeSigned(n, n * 8, 4);
  for (auto _ : state) {
    PeelResult result = GreedyPeel(gd);
    benchmark::DoNotOptimize(result.density);
  }
}
BENCHMARK(BM_GreedyPeel)->Arg(1000)->Arg(10000);

void BM_CoreNumbers(benchmark::State& state) {
  const VertexId n = static_cast<VertexId>(state.range(0));
  const Graph g = MakeSigned(n, n * 8, 5).PositivePart();
  for (auto _ : state) {
    benchmark::DoNotOptimize(CoreNumbers(g));
  }
}
BENCHMARK(BM_CoreNumbers)->Arg(1000)->Arg(10000);

void BM_SeacdSingleInit(benchmark::State& state) {
  const VertexId n = static_cast<VertexId>(state.range(0));
  const Graph gd_plus = MakeSigned(n, n * 8, 6).PositivePart();
  AffinityState affinity_state(gd_plus);
  VertexId seed = 0;
  for (auto _ : state) {
    affinity_state.ResetToVertex(seed);
    seed = (seed + 1) % n;
    SeacdRunStats stats = RunSeacdInPlace(&affinity_state);
    benchmark::DoNotOptimize(stats.affinity);
  }
}
BENCHMARK(BM_SeacdSingleInit)->Arg(1000)->Arg(10000);

void BM_DcsGreedyPipeline(benchmark::State& state) {
  const VertexId n = static_cast<VertexId>(state.range(0));
  const Graph gd = MakeSigned(n, n * 8, 7);
  for (auto _ : state) {
    Result<DcsadResult> result = RunDcsGreedy(gd);
    benchmark::DoNotOptimize(result.value().density);
  }
}
BENCHMARK(BM_DcsGreedyPipeline)->Arg(1000)->Arg(4000);

void BM_NewSeaPipeline(benchmark::State& state) {
  const VertexId n = static_cast<VertexId>(state.range(0));
  const Graph gd_plus = MakeSigned(n, n * 8, 8).PositivePart();
  for (auto _ : state) {
    Result<DcsgaResult> result = RunNewSea(gd_plus);
    benchmark::DoNotOptimize(result.value().affinity);
  }
}
BENCHMARK(BM_NewSeaPipeline)->Arg(1000)->Arg(4000);

}  // namespace
