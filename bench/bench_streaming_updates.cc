// Streaming update latency: the O(Δ) patch path vs the full-rebuild path.
//
// Models the ROADMAP's streaming scenario: a long-lived MinerSession whose
// graph pair drifts under small ApplyUpdate batches, re-mined after every
// batch. Two identically primed sessions race on the same update stream —
// one with the default patch crossover (SessionOptions::patch_rebuild_ratio)
// and one with patching disabled (ratio 0, the pre-patch behavior) — and
// every cycle's responses are checked bit-identical, so the bench doubles as
// an equivalence harness. Reported per (dataset, Δ): mean and p95
// update+re-mine latency for both paths and the patched-vs-rebuild speedup;
// the dataset sweep doubles as the latency-vs-m curve and the Δ sweep as the
// latency-vs-Δ curve (whose intersection motivated the default crossover).
//
// `--json out.json` emits the BENCH_streaming_updates.json record tracked in
// the repo; `--smoke` shrinks the dataset and sweeps so the ctest
// `bench_smoke_streaming` wiring finishes in well under a second.

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "api/miner_session.h"
#include "api/mining.h"
#include "bench_util.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace dcs;
using namespace dcs::bench;

struct CycleStats {
  std::vector<double> patched_ms;
  std::vector<double> rebuild_ms;
  MiningResponse last_response;  // patched session (checksum source)
};

// Runs `repeats` cycles of [apply Δ updates; re-mine] against the patched
// and rebuild-only sessions, asserting bit-identical responses throughout.
CycleStats RunCycles(const Graph& g1, const Graph& g2, size_t delta_edges,
                     int repeats, uint64_t seed) {
  MiningRequest request;
  request.measure = Measure::kGraphAffinity;

  SessionOptions patched_options;  // default crossover: patches small batches
  Result<MinerSession> patched =
      MinerSession::Create(g1, g2, patched_options);
  SessionOptions rebuild_options;
  rebuild_options.patch_rebuild_ratio = 0.0;  // the pre-patch behavior
  Result<MinerSession> rebuild =
      MinerSession::Create(g1, g2, rebuild_options);
  DCS_CHECK(patched.ok() && rebuild.ok());

  // Prime both pipelines (untimed) so cycle 0 measures the update path, not
  // the initial preparation.
  DCS_CHECK(patched->Mine(request).ok());
  DCS_CHECK(rebuild->Mine(request).ok());

  Rng rng(seed);
  const VertexId n = g1.NumVertices();
  CycleStats stats;
  for (int cycle = 0; cycle < repeats; ++cycle) {
    // One batch of Δ weight nudges on the current side (inserts included:
    // random pairs usually miss the resident edge set).
    std::vector<std::tuple<VertexId, VertexId, double>> batch;
    batch.reserve(delta_edges);
    for (size_t i = 0; i < delta_edges; ++i) {
      const VertexId u = static_cast<VertexId>(rng.NextBounded(n));
      VertexId v = static_cast<VertexId>(rng.NextBounded(n - 1));
      if (v >= u) ++v;
      batch.emplace_back(u, v, rng.Uniform(0.25, 1.5));
    }

    WallTimer patched_timer;
    for (const auto& [u, v, w] : batch) {
      DCS_CHECK(patched->ApplyUpdate(UpdateSide::kG2, u, v, w).ok());
    }
    Result<MiningResponse> patched_response = patched->Mine(request);
    DCS_CHECK(patched_response.ok());
    stats.patched_ms.push_back(patched_timer.Seconds() * 1e3);

    WallTimer rebuild_timer;
    for (const auto& [u, v, w] : batch) {
      DCS_CHECK(rebuild->ApplyUpdate(UpdateSide::kG2, u, v, w).ok());
    }
    Result<MiningResponse> rebuild_response = rebuild->Mine(request);
    DCS_CHECK(rebuild_response.ok());
    stats.rebuild_ms.push_back(rebuild_timer.Seconds() * 1e3);

    // The equivalence guarantee, enforced on every cycle.
    DCS_CHECK(SerializeAffinityRanking(*patched_response) ==
              SerializeAffinityRanking(*rebuild_response))
        << "patched response diverged from full rebuild at cycle " << cycle;
    stats.last_response = std::move(*patched_response);
  }
  // Large Δ legitimately crosses over to rebuilds; the small-Δ rows must
  // have exercised the patch path or the bench is measuring nothing.
  if (delta_edges == 1) {
    DCS_CHECK(patched->num_update_patches() > 0)
        << "the Δ=1 sweep never exercised the patch path";
  }
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  const uint64_t seed = 20180416;
  std::printf("seed = %llu, hardware_concurrency = %u%s\n\n",
              static_cast<unsigned long long>(seed),
              std::thread::hardware_concurrency(),
              args.smoke ? " (smoke mode)" : "");

  struct PairDataset {
    std::string label;
    Graph g1;
    Graph g2;
  };
  // The streaming analog of the paper's emerging-story setting, at serving
  // scale: two snapshots of one large background network that differ only
  // by a sparse drift plus a strongly emerging clique. The shared
  // background makes pipeline *preparation* expensive (the cost the patch
  // path removes) while the difference graph stays small and sharply
  // contrasted, as in a real snapshot stream.
  auto make_stream = [&](uint64_t s, VertexId n,
                         double average_degree) -> PairDataset {
    Rng rng(s);
    Result<Graph> background =
        ErdosRenyiWeighted(n, average_degree / static_cast<double>(n),
                           0.5, 2.0, &rng);
    DCS_CHECK(background.ok());
    GraphBuilder b1(n), b2(n);
    for (const Edge& e : background->UndirectedEdges()) {
      b1.AddEdgeUnchecked(e.u, e.v, e.weight);
      double drifted = e.weight;
      if (rng.Bernoulli(0.02)) drifted += rng.Uniform(0.1, 0.6);
      b2.AddEdgeUnchecked(e.u, e.v, drifted);
    }
    std::vector<VertexId> story;
    while (story.size() < 8) {
      const VertexId v = static_cast<VertexId>(rng.NextBounded(n));
      if (std::find(story.begin(), story.end(), v) == story.end()) {
        story.push_back(v);
      }
    }
    DCS_CHECK(AddCliqueUniform(&b2, story, 6.0, 9.0, &rng).ok());
    Result<Graph> g1 = b1.Build();
    Result<Graph> g2 = b2.Build();
    DCS_CHECK(g1.ok() && g2.ok());
    return PairDataset{"Stream-" + std::to_string(n / 1000) + "k",
                       std::move(*g1), std::move(*g2)};
  };
  std::vector<PairDataset> datasets;
  if (args.smoke) {
    const CoauthorData tiny = MakeDblpAnalog(seed, /*num_authors=*/600);
    datasets.push_back({"DBLP-tiny", tiny.g1, tiny.g2});
  } else {
    // The size sweep is the latency-vs-m curve; Stream-48k is the largest
    // generated bench graph (the acceptance row for the 1-edge speedup).
    const CoauthorData s = MakeDblpAnalog(seed, /*num_authors=*/2000);
    datasets.push_back({"DBLP-2k", s.g1, s.g2});
    const CoauthorData m = MakeDblpAnalog(seed + 1, /*num_authors=*/8000);
    datasets.push_back({"DBLP-8k", m.g1, m.g2});
    const CoauthorData l = MakeDblpAnalog(seed + 2, /*num_authors=*/24000);
    datasets.push_back({"DBLP-XL-24k", l.g1, l.g2});
    datasets.push_back(make_stream(seed + 3, /*n=*/48000,
                                   /*average_degree=*/5.0));
  }
  const std::vector<size_t> delta_sweep =
      args.smoke ? std::vector<size_t>{1, 4}
                 : std::vector<size_t>{1, 8, 64, 512};
  const int repeats = args.smoke ? 3 : 15;

  JsonReporter reporter("streaming_updates", seed);
  TablePrinter table(
      "Streaming updates: O(Δ) patch path vs full rebuild (update + re-mine)",
      {"Data", "m1+m2", "Δ", "Patch ms", "p95", "Rebuild ms", "p95",
       "Speedup"});
  for (const PairDataset& dataset : datasets) {
    const size_t edge_mass = dataset.g1.NumEdges() + dataset.g2.NumEdges();
    for (const size_t delta_edges : delta_sweep) {
      const CycleStats stats = RunCycles(dataset.g1, dataset.g2, delta_edges,
                                         repeats, seed + delta_edges);
      const double patched_mean = MeanOf(stats.patched_ms);
      const double rebuild_mean = MeanOf(stats.rebuild_ms);
      const double speedup =
          patched_mean > 0.0 ? rebuild_mean / patched_mean : 0.0;

      const MiningTelemetry& telemetry = stats.last_response.telemetry;
      BenchRecord record;
      record.dataset = dataset.label;
      record.threads = 1;
      record.wall_ms = patched_mean;
      record.initializations = telemetry.initializations;
      record.pruned_seeds = telemetry.pruned_seeds;
      record.affinity = stats.last_response.graph_affinity.empty()
                            ? 0.0
                            : stats.last_response.graph_affinity[0].value;
      record.extra = {
          {"delta_edges", static_cast<double>(delta_edges)},
          {"edge_mass", static_cast<double>(edge_mass)},
          {"update_ms", patched_mean},
          {"p95_update_ms", P95Of(stats.patched_ms)},
          {"rebuild_ms", rebuild_mean},
          {"p95_rebuild_ms", P95Of(stats.rebuild_ms)},
          {"speedup", speedup},
      };
      reporter.Add(record);
      table.AddRow({dataset.label, TablePrinter::Fmt(uint64_t{edge_mass}),
                    TablePrinter::Fmt(uint64_t{delta_edges}),
                    TablePrinter::Fmt(patched_mean, 3),
                    TablePrinter::Fmt(P95Of(stats.patched_ms), 3),
                    TablePrinter::Fmt(rebuild_mean, 3),
                    TablePrinter::Fmt(P95Of(stats.rebuild_ms), 3),
                    TablePrinter::Fmt(speedup, 1)});
      std::fflush(stdout);
    }
  }
  table.Print();

  if (!args.json_path.empty()) {
    DCS_CHECK(reporter.WriteTo(args.json_path))
        << "cannot write " << args.json_path;
    std::printf("\nwrote %s\n", args.json_path.c_str());
  }
  return 0;
}
