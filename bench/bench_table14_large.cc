// Table XIV — DCS w.r.t. graph affinity on the large DBLP-C and Actor
// analogs, in the Weighted and Discrete settings.
//
// Paper shape to reproduce: in the Weighted setting a few very heavy edges
// dominate and the affinity DCS is tiny (2–3 vertices with a huge affinity
// difference); the Discrete setting (or weight clamping, for Actor) caps
// those edges and yields a larger clique with moderate affinity.

#include <cstdio>

#include "bench_util.h"
#include "core/newsea.h"
#include "graph/stats.h"
#include "util/table.h"
#include "util/timer.h"

int main() {
  using namespace dcs;
  using namespace dcs::bench;
  const uint64_t seed = 20180416;
  std::printf("seed = %llu\n\n", static_cast<unsigned long long>(seed));

  TablePrinter table(
      "Table XIV analog: affinity DCS on DBLP-C and Actor data",
      {"Data", "Setting", "#Vertices", "Affinity Diff", "EdgeDensity Diff",
       "NewSEA time (s)"});

  const CoauthorData dblp_c = MakeDblpCAnalog(seed + 4);
  const Graph dblp_weighted = MustDiff(dblp_c.g1, dblp_c.g2);
  const Graph dblp_discrete = MustDiscretize(dblp_weighted);
  const Graph actor_weighted = MakeActorAnalog(seed + 5);
  const Graph actor_discrete = actor_weighted.WeightsClampedAbove(10.0);

  struct Row {
    const char* data;
    const char* setting;
    const Graph* gd;
  };
  const Row rows[] = {
      {"DBLP-C", "Weighted", &dblp_weighted},
      {"DBLP-C", "Discrete", &dblp_discrete},
      {"Actor", "Weighted", &actor_weighted},
      {"Actor", "Discrete", &actor_discrete},
  };
  for (const Row& row : rows) {
    WallTimer timer;
    Result<DcsgaResult> result = RunNewSea(row.gd->PositivePart());
    const double seconds = timer.Seconds();
    DCS_CHECK(result.ok());
    table.AddRow({row.data, row.setting,
                  TablePrinter::Fmt(uint64_t{result->support.size()}),
                  TablePrinter::Fmt(result->affinity, 3),
                  TablePrinter::Fmt(EdgeDensity(*row.gd, result->support), 3),
                  TablePrinter::Fmt(seconds, 3)});
    std::fflush(stdout);
  }
  table.Print();
  return 0;
}
