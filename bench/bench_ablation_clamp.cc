// Ablation — the §III-D heavy-edge adjustment.
//
// "When there is one edge in the difference graph whose weight is much
// heavier than all the other edges, such an edge itself is very possible to
// be the optimal subgraph. [...] we can adjust their weights [...] Then the
// DCS extracted usually will become larger in size."
//
// Sweeps the clamp threshold on the Actor analog (which plants a weight-216
// duo next to ensemble casts of weight ~7) and reports the affinity DCS
// size and value: unclamped -> the duo; clamped near the cast weights ->
// a 21-actor cast.

#include <cstdio>

#include "bench_util.h"
#include "core/newsea.h"
#include "graph/stats.h"
#include "util/table.h"

int main() {
  using namespace dcs;
  using namespace dcs::bench;
  const uint64_t seed = 20180416;
  std::printf("seed = %llu\n\n", static_cast<unsigned long long>(seed));

  const Graph actor = MakeActorAnalog(seed + 5);
  TablePrinter table(
      "Ablation: affinity DCS vs heavy-edge clamp (Actor analog)",
      {"Clamp", "#Vertices", "Affinity Diff", "AveDeg Diff"});
  for (const double clamp :
       {1e9, 200.0, 100.0, 50.0, 25.0, 15.0, 10.0, 8.0, 6.0}) {
    const Graph clamped = actor.WeightsClampedAbove(clamp);
    Result<DcsgaResult> result = RunNewSea(clamped.PositivePart());
    DCS_CHECK(result.ok());
    table.AddRow({clamp >= 1e9 ? "none" : TablePrinter::Fmt(clamp, 0),
                  TablePrinter::Fmt(uint64_t{result->support.size()}),
                  TablePrinter::Fmt(result->affinity, 3),
                  TablePrinter::Fmt(
                      AverageDegreeDensity(clamped, result->support), 2)});
    std::fflush(stdout);
  }
  table.Print();
  return 0;
}
