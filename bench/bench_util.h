// Shared dataset roster for the benchmark harness.
//
// Rebuilds the paper's Table II roster from the synthetic generators (each
// gen/ header documents its substitution for the unavailable real dataset),
// scaled so the entire harness runs in minutes on a laptop. Every bench
// prints the seed it used; all datasets are deterministic functions of that
// seed.

#ifndef DCS_BENCH_BENCH_UTIL_H_
#define DCS_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "api/mining.h"
#include "gen/coauthor.h"
#include "gen/interest_social.h"
#include "gen/keywords.h"
#include "gen/random_graphs.h"
#include "gen/signed_pair.h"
#include "graph/difference.h"
#include "graph/graph.h"
#include "util/logging.h"
#include "util/rng.h"

namespace dcs::bench {

/// Command-line surface shared by the bench drivers:
///   --json <path>  write a machine-readable BENCH_*.json (see JsonReporter)
///   --smoke        tiny inputs, for the bench_smoke ctest wiring
/// Unknown flags abort so that CI typos cannot silently bench nothing.
struct BenchArgs {
  std::string json_path;  ///< empty = no JSON output
  bool smoke = false;
};

inline BenchArgs ParseBenchArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view flag = argv[i];
    if (flag == "--json" && i + 1 < argc) {
      args.json_path = argv[++i];
    } else if (flag == "--smoke") {
      args.smoke = true;
    } else {
      DCS_CHECK(false) << "unknown bench flag '" << argv[i]
                       << "' (expected --json <path> or --smoke)";
    }
  }
  return args;
}

/// Mean of the samples; 0 when empty.
inline double MeanOf(const std::vector<double>& samples) {
  double total = 0.0;
  for (const double s : samples) total += s;
  return samples.empty() ? 0.0 : total / static_cast<double>(samples.size());
}

/// Nearest-rank p95: the ceil(0.95·n)-th smallest sample; 0 when empty. The
/// one percentile definition every bench shares, so the committed
/// BENCH_*.json latency columns are comparable across drivers.
inline double P95Of(std::vector<double> samples) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  return samples[(samples.size() * 95 + 99) / 100 - 1];
}

/// Nearest-rank p99, same convention as P95Of; 0 when empty. Used by the
/// overload rows of bench_multitenant, where the tail beyond p95 is the
/// story.
inline double P99Of(std::vector<double> samples) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  return samples[(samples.size() * 99 + 99) / 100 - 1];
}

/// Full-precision serialization of a response's DCSGA ranking — the
/// bit-identity checksum the cross-session and streaming benches compare.
inline std::string SerializeAffinityRanking(const MiningResponse& response) {
  std::string out;
  char buf[64];
  for (const RankedSubgraph& s : response.graph_affinity) {
    for (VertexId v : s.vertices) {
      std::snprintf(buf, sizeof(buf), "%u,", v);
      out += buf;
    }
    std::snprintf(buf, sizeof(buf), "|%.17g;", s.value);
    out += buf;
  }
  return out;
}

/// One measured configuration of a bench run.
struct BenchRecord {
  std::string dataset;          ///< roster label (+ solver / config suffix)
  uint32_t threads = 1;         ///< seed-shard workers used
  double wall_ms = 0.0;         ///< wall-clock of the measured solve
  uint64_t initializations = 0; ///< seeds actually descended from
  uint64_t pruned_seeds = 0;    ///< candidate seeds skipped by Theorem 6
  double affinity = 0.0;        ///< best affinity found (result checksum)
  /// Bench-specific numeric fields appended verbatim to the JSON record
  /// (bench_async_throughput adds jobs / throughput / latency percentiles);
  /// keys must be stable — check_bench_json.sh validates them per bench.
  std::vector<std::pair<std::string, double>> extra;
};

/// \brief Machine-readable bench output, schema-checked in CI by
/// tools/check_bench_json.sh (ctest `bench_smoke`):
///   {"bench": ..., "seed": ..., "hardware_concurrency": ...,
///    "records": [{"dataset", "threads", "wall_ms", "initializations",
///                 "pruned_seeds", "affinity"}, ...]}
/// The perf trajectory lives in committed BENCH_*.json files produced by
/// running the benches with `--json`.
class JsonReporter {
 public:
  JsonReporter(std::string bench, uint64_t seed)
      : bench_(std::move(bench)), seed_(seed) {}

  void Add(BenchRecord record) { records_.push_back(std::move(record)); }

  /// Writes the report; returns false on I/O failure.
  bool WriteTo(const std::string& path) const {
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) return false;
    std::fprintf(out,
                 "{\n  \"bench\": \"%s\",\n  \"seed\": %" PRIu64
                 ",\n  \"hardware_concurrency\": %u,\n  \"records\": [",
                 Escape(bench_).c_str(), seed_,
                 std::thread::hardware_concurrency());
    for (size_t i = 0; i < records_.size(); ++i) {
      const BenchRecord& r = records_[i];
      std::fprintf(out,
                   "%s\n    {\"dataset\": \"%s\", \"threads\": %u, "
                   "\"wall_ms\": %.3f, \"initializations\": %" PRIu64
                   ", \"pruned_seeds\": %" PRIu64 ", \"affinity\": %.17g",
                   i == 0 ? "" : ",", Escape(r.dataset).c_str(), r.threads,
                   r.wall_ms, r.initializations, r.pruned_seeds, r.affinity);
      for (const auto& [key, value] : r.extra) {
        std::fprintf(out, ", \"%s\": %.17g", Escape(key).c_str(), value);
      }
      std::fprintf(out, "}");
    }
    std::fprintf(out, "\n  ]\n}\n");
    const bool ok = std::fclose(out) == 0;
    return ok;
  }

 private:
  // JSON string escaping; roster labels carry spaces, slashes and UTF-8
  // (passes through verbatim — JSON strings are UTF-8).
  static std::string Escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", c);
        out += buf;
      } else {
        out += c;
      }
    }
    return out;
  }

  std::string bench_;
  uint64_t seed_;
  std::vector<BenchRecord> records_;
};

/// One difference graph of the Table II roster.
struct BenchDataset {
  std::string data;     ///< "DBLP", "DM", "Wiki", "Movie", "Book", ...
  std::string setting;  ///< "Weighted", "Discrete" or "—"
  std::string gd_type;  ///< "Emerging", "Conflicting", ...
  Graph gd;

  std::string Label() const {
    return data + " / " + setting + " / " + gd_type;
  }
};

inline Graph MustDiff(const Graph& g1, const Graph& g2) {
  Result<Graph> gd = BuildDifferenceGraph(g1, g2);
  DCS_CHECK(gd.ok()) << gd.status().ToString();
  return std::move(gd).value();
}

inline Graph MustDiscretize(const Graph& gd, const DiscretizeSpec& spec = {}) {
  Result<Graph> out = DiscretizeWeights(gd, spec);
  DCS_CHECK(out.ok()) << out.status().ToString();
  return std::move(out).value();
}

/// The DBLP-analog co-author data used by several benches.
inline CoauthorData MakeDblpAnalog(uint64_t seed, VertexId num_authors = 4000) {
  Rng rng(seed);
  CoauthorConfig config;
  config.num_authors = num_authors;
  config.emerging_sizes = {4, 7};      // UTA ML / CMU Privacy analogs
  config.disappearing_sizes = {6, 2, 8};  // Japan Robotics 1–3 analogs
  Result<CoauthorData> data = GenerateCoauthorData(config, &rng);
  DCS_CHECK(data.ok()) << data.status().ToString();
  return std::move(data).value();
}

/// The DM-analog keyword data.
inline KeywordData MakeDmAnalog(uint64_t seed) {
  Rng rng(seed);
  KeywordConfig config;
  config.noise_vocabulary = 1200;
  config.titles_per_era = 15'000;
  Result<KeywordData> data = GenerateKeywordData(config, &rng);
  DCS_CHECK(data.ok()) << data.status().ToString();
  return std::move(data).value();
}

/// The wikiconflict-analog signed interaction pair.
inline SignedPairData MakeWikiAnalog(uint64_t seed) {
  Rng rng(seed);
  SignedPairConfig config;
  config.num_editors = 6000;
  config.consistent_size = 120;
  config.conflicting_size = 80;
  Result<SignedPairData> data = GenerateSignedPairData(config, &rng);
  DCS_CHECK(data.ok()) << data.status().ToString();
  return std::move(data).value();
}

/// The Douban-analog interest/social pairs.
inline InterestSocialData MakeDoubanAnalog(uint64_t seed, bool movie) {
  Rng rng(seed);
  InterestSocialConfig config = movie ? MovieLikeConfig() : BookLikeConfig();
  config.num_users = 5000;
  config.num_clusters = 60;
  config.cluster_size = 40;
  Result<InterestSocialData> data = GenerateInterestSocialData(config, &rng);
  DCS_CHECK(data.ok()) << data.status().ToString();
  return std::move(data).value();
}

/// The DBLP-C analog: a larger two-era co-author network.
inline CoauthorData MakeDblpCAnalog(uint64_t seed) {
  return MakeDblpAnalog(seed + 17, /*num_authors=*/12'000);
}

/// The Actor analog: a single heavy collaboration network used directly as
/// the difference graph (all weights positive), per §B-3. Planted structure
/// mirrors what drives the paper's Table XIV row: one extreme co-star pair
/// (weight ≈ 216, the paper's max) that dominates the Weighted setting, and
/// ensemble-cast cliques that win once weights are clamped at 10 in the
/// Discrete setting.
inline Graph MakeActorAnalog(uint64_t seed) {
  Rng rng(seed);
  ChungLuParams params;
  params.n = 10'000;
  params.average_degree = 24.0;
  params.exponent = 2.1;
  params.weight_geometric_p = 0.35;  // heavy-tailed collaboration counts
  Result<Graph> backbone = ChungLu(params, &rng);
  DCS_CHECK(backbone.ok()) << backbone.status().ToString();
  GraphBuilder builder(params.n);
  for (const Edge& e : backbone->UndirectedEdges()) {
    DCS_CHECK(builder.AddEdge(e.u, e.v, e.weight).ok());
  }
  // The legendary duo.
  std::vector<uint32_t> reserved =
      rng.SampleWithoutReplacement(params.n, 2 + 21 + 17 + 14 + 12);
  size_t cursor = 0;
  DCS_CHECK(builder.AddEdge(reserved[0], reserved[1], 216.0).ok());
  cursor += 2;
  // Ensemble casts: near-uniform collaboration counts around 7.
  for (uint32_t size : {21u, 17u, 14u, 12u}) {
    std::vector<VertexId> cast(reserved.begin() + cursor,
                               reserved.begin() + cursor + size);
    cursor += size;
    DCS_CHECK(AddCliqueUniform(&builder, cast, 6.0, 8.0, &rng).ok());
  }
  Result<Graph> g = builder.Build();
  DCS_CHECK(g.ok());
  return std::move(g).value();
}

/// Builds the full Table II roster. `include_large` adds the DBLP-C and
/// Actor rows (used by the stats and runtime benches; skipped by benches
/// that only need the small datasets).
inline std::vector<BenchDataset> BuildBenchDatasets(uint64_t seed,
                                                    bool include_large) {
  std::vector<BenchDataset> out;
  {
    const CoauthorData dblp = MakeDblpAnalog(seed);
    const Graph emerging = MustDiff(dblp.g1, dblp.g2);
    const Graph disappearing = MustDiff(dblp.g2, dblp.g1);
    out.push_back({"DBLP", "Weighted", "Emerging", emerging});
    out.push_back({"DBLP", "Weighted", "Disappearing", disappearing});
    DiscretizeSpec spec;  // paper's DBLP thresholds
    out.push_back({"DBLP", "Discrete", "Emerging", MustDiscretize(emerging, spec)});
    out.push_back(
        {"DBLP", "Discrete", "Disappearing", MustDiscretize(disappearing, spec)});
  }
  {
    const KeywordData dm = MakeDmAnalog(seed + 1);
    out.push_back({"DM", "—", "Emerging", MustDiff(dm.g1, dm.g2)});
    out.push_back({"DM", "—", "Disappearing", MustDiff(dm.g2, dm.g1)});
  }
  {
    const SignedPairData wiki = MakeWikiAnalog(seed + 2);
    out.push_back({"Wiki", "—", "Consistent",
                   MustDiff(wiki.negative, wiki.positive)});
    out.push_back({"Wiki", "—", "Conflicting",
                   MustDiff(wiki.positive, wiki.negative)});
  }
  for (const bool movie : {true, false}) {
    const InterestSocialData douban = MakeDoubanAnalog(seed + 3, movie);
    const char* name = movie ? "Movie" : "Book";
    out.push_back({name, "—", "Interest-Social",
                   MustDiff(douban.social, douban.interest)});
    out.push_back({name, "—", "Social-Interest",
                   MustDiff(douban.interest, douban.social)});
  }
  if (include_large) {
    {
      const CoauthorData dblp_c = MakeDblpCAnalog(seed + 4);
      const Graph gd = MustDiff(dblp_c.g1, dblp_c.g2);
      out.push_back({"DBLP-C", "Weighted", "—", gd});
      out.push_back({"DBLP-C", "Discrete", "—", MustDiscretize(gd)});
    }
    {
      const Graph actor = MakeActorAnalog(seed + 5);
      out.push_back({"Actor", "Weighted", "—", actor});
      out.push_back({"Actor", "Discrete", "—", actor.WeightsClampedAbove(10.0)});
    }
  }
  return out;
}

}  // namespace dcs::bench

#endif  // DCS_BENCH_BENCH_UTIL_H_
