// Crash-consistent job journal: what durable admission costs on the submit
// path, and what restart recovery costs per unit of backlog.
//
// Cycles per dataset:
//   baseline       MiningService storm with no journal — the reference wall
//                  and the bit-identity oracle
//   journaled      the same storm with a group-commit journal attached:
//                  every Submit appends an Admitted record before acking,
//                  every dispatch/finish a Started/Done record
//   recover@N      a backlog of N admitted-but-never-run jobs is written
//                  straight into a journal, then a fresh service is timed
//                  from construction through AddTenant + Drain — the
//                  restart-to-fully-caught-up latency as a function of
//                  backlog depth
//
// The number the bench exists to pin: overhead_pct — journal appends ×
// measured per-append cost, as a percentage of the baseline wall —
// DCS_CHECKed < 5%, the "durable admission is affordable" contract of the
// crash-consistency PR. Responses of every cycle (including the recovered
// backlog) must be bit-identical to fault-free synchronous mining.
//
// `--json out.json` emits the BENCH_crash_recovery.json record tracked in
// the repo; `--smoke` shrinks the dataset for the ctest `bench_smoke_crash`
// wiring.

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/job_journal.h"
#include "api/miner_session.h"
#include "api/mining.h"
#include "api/mining_service.h"
#include "bench_util.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace dcs;
using namespace dcs::bench;

// Two request shapes cycled across the storm, so the journal carries
// distinct serialized requests and the pipeline cache sees reuse.
std::vector<MiningRequest> RequestMix() {
  std::vector<MiningRequest> requests(2);
  requests[0].measure = Measure::kGraphAffinity;
  requests[0].alpha = 1.0;
  requests[1].measure = Measure::kGraphAffinity;
  requests[1].alpha = 2.0;
  return requests;
}

struct CycleResult {
  double wall_ms = 0.0;
  uint64_t journal_appends = 0;
  uint64_t recovered_jobs = 0;
  MiningResponse first_response;
  std::string serialized;  // all responses in job order (bit-identity check)
};

MinerSession MustSession(const Graph& g1, const Graph& g2) {
  Result<MinerSession> session = MinerSession::Create(g1, g2);
  DCS_CHECK(session.ok()) << session.status().ToString();
  return std::move(*session);
}

// One storm: submit `num_jobs` requests (cycling the mix) against a fresh
// service, wait for each in order. With `journal_path` set the service
// journals admission/dispatch/finish; the wall therefore carries the full
// write-ahead cost on the submit and finish paths.
CycleResult RunStorm(const Graph& g1, const Graph& g2,
                     const std::string& journal_path, size_t num_jobs) {
  const std::vector<MiningRequest> mix = RequestMix();
  CycleResult out;
  WallTimer timer;
  MiningServiceOptions options;
  options.journal_path = journal_path;
  MiningService service(options);
  Result<TenantId> tenant = service.AddTenant(MustSession(g1, g2));
  DCS_CHECK(tenant.ok()) << tenant.status().ToString();
  std::vector<JobId> jobs;
  jobs.reserve(num_jobs);
  for (size_t i = 0; i < num_jobs; ++i) {
    Result<JobId> job = service.Submit(0, mix[i % mix.size()]);
    DCS_CHECK(job.ok()) << job.status().ToString();
    jobs.push_back(*job);
  }
  bool first = true;
  for (JobId id : jobs) {
    Result<JobStatus> status = service.Wait(id);
    DCS_CHECK(status.ok() && status->state == JobState::kDone)
        << "storm job did not finish done";
    if (first) {
      out.first_response = status->response;
      first = false;
    }
    out.serialized += SerializeAffinityRanking(status->response);
    out.serialized += "#";
  }
  out.wall_ms = timer.Seconds() * 1e3;
  if (!journal_path.empty()) {
    Result<JobJournalStats> stats = service.journal_stats();
    DCS_CHECK(stats.ok()) << stats.status().ToString();
    out.journal_appends = stats->appended_records;
  }
  out.recovered_jobs = service.num_recovered_jobs();
  return out;
}

// Writes a backlog of `depth` admitted-but-never-started jobs into a fresh
// journal — the image a service killed right after acking `depth` Submits
// leaves behind.
void WriteBacklog(const std::string& journal_path, size_t depth) {
  std::filesystem::remove(journal_path);
  Result<std::shared_ptr<JobJournal>> journal = JobJournal::Open(journal_path);
  DCS_CHECK(journal.ok()) << journal.status().ToString();
  const std::vector<MiningRequest> mix = RequestMix();
  for (size_t i = 0; i < depth; ++i) {
    JournalAdmittedRecord record;
    record.job_id = i + 1;
    record.tenant = 0;
    record.admission_index = i + 1;
    record.request = mix[i % mix.size()];
    DCS_CHECK((*journal)->AppendAdmitted(record).ok());
  }
  DCS_CHECK((*journal)->Flush().ok());
}

// Restart over the backlog: construction replays the journal, AddTenant
// releases the recovered jobs, Drain runs them all down. The wall is the
// restart-to-caught-up latency.
CycleResult RunRecovery(const Graph& g1, const Graph& g2,
                        const std::string& journal_path, size_t depth) {
  WriteBacklog(journal_path, depth);
  CycleResult out;
  WallTimer timer;
  MiningService service({.journal_path = journal_path});
  Result<TenantId> tenant = service.AddTenant(MustSession(g1, g2));
  DCS_CHECK(tenant.ok()) << tenant.status().ToString();
  service.Drain();
  out.wall_ms = timer.Seconds() * 1e3;
  const std::vector<JobId> recovered = service.recovered_jobs();
  DCS_CHECK(recovered.size() == depth)
      << "recovered " << recovered.size() << " of " << depth;
  out.recovered_jobs = recovered.size();
  bool first = true;
  for (JobId id : recovered) {
    Result<JobStatus> status = service.Poll(id);
    DCS_CHECK(status.ok() && status->state == JobState::kDone)
        << "recovered job not done";
    if (first) {
      out.first_response = status->response;
      first = false;
    }
    out.serialized += SerializeAffinityRanking(status->response);
    out.serialized += "#";
  }
  Result<JobJournalStats> stats = service.journal_stats();
  DCS_CHECK(stats.ok()) << stats.status().ToString();
  out.journal_appends = stats->appended_records;
  return out;
}

// Measures the isolated cost of one journal append (group commit, so the
// fsync stays off this path exactly as it does on the service's Submit
// path): the per-record serialization + checksum + pwrite.
double PerAppendMicros(const std::string& journal_path, uint64_t iters) {
  std::filesystem::remove(journal_path);
  double micros = 0.0;
  {
    JobJournalOptions options;
    options.flush_interval_ms = 100.0;  // keep the flusher out of the window
    Result<std::shared_ptr<JobJournal>> journal =
        JobJournal::Open(journal_path, options);
    DCS_CHECK(journal.ok()) << journal.status().ToString();
    JournalAdmittedRecord record;
    record.tenant = 0;
    record.request = RequestMix()[0];
    WallTimer timer;
    for (uint64_t i = 0; i < iters; ++i) {
      record.job_id = i + 1;
      record.admission_index = i + 1;
      DCS_CHECK((*journal)->AppendAdmitted(record).ok());
    }
    micros = timer.Seconds() * 1e6 / static_cast<double>(iters);
  }
  std::filesystem::remove(journal_path);
  return micros;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  const uint64_t seed = 20180607;
  std::printf("seed = %llu, hardware_concurrency = %u%s\n\n",
              static_cast<unsigned long long>(seed),
              std::thread::hardware_concurrency(),
              args.smoke ? " (smoke mode)" : "");

  // The smoke dataset still has to be large enough that a solve dwarfs a
  // journal append, or the <5% overhead contract below would fail purely
  // because the jobs are toy-sized (the ratio, not the journal, changes).
  const CoauthorData data = args.smoke
                                ? MakeDblpAnalog(seed, /*num_authors=*/1500)
                                : MakeDblpAnalog(seed);
  const std::string label = args.smoke ? "DBLP-tiny" : "DBLP";
  const size_t storm_jobs = args.smoke ? 4 : 8;
  const std::vector<size_t> backlog_depths =
      args.smoke ? std::vector<size_t>{4} : std::vector<size_t>{8, 32};
  const std::string journal_path =
      (std::filesystem::temp_directory_path() / "dcs_bench_crash_recovery.dcsj")
          .string();

  // The fault-free reference: each unique request mined once through a bare
  // session. Every cycle below — journaled storms and recovered backlogs
  // alike — must reproduce these exact bytes per job.
  std::vector<std::string> reference;
  {
    MinerSession session = MustSession(data.g1, data.g2);
    for (const MiningRequest& request : RequestMix()) {
      Result<MiningResponse> response = session.Mine(request);
      DCS_CHECK(response.ok()) << response.status().ToString();
      reference.push_back(SerializeAffinityRanking(*response));
    }
  }
  auto expected = [&reference](size_t num_jobs) {
    std::string out;
    for (size_t i = 0; i < num_jobs; ++i) {
      out += reference[i % reference.size()];
      out += "#";
    }
    return out;
  };

  const double per_append_us =
      PerAppendMicros(journal_path, args.smoke ? 500 : 5000);

  JsonReporter reporter("crash_recovery", seed);
  TablePrinter table(
      "Job journal: durable-admission overhead and restart recovery",
      {"Data", "Cycle", "Wall ms", "Appends", "Recovered", "Recovery ms",
       "Overhead %", "Bit-identical?"});

  std::filesystem::remove(journal_path);
  const CycleResult baseline = RunStorm(data.g1, data.g2, "", storm_jobs);
  std::filesystem::remove(journal_path);
  const CycleResult journaled =
      RunStorm(data.g1, data.g2, journal_path, storm_jobs);

  DCS_CHECK(baseline.serialized == expected(storm_jobs))
      << "baseline storm diverged from synchronous mining";
  DCS_CHECK(journaled.serialized == baseline.serialized)
      << "journaled storm diverged from the no-journal baseline";
  DCS_CHECK(journaled.journal_appends >= 3 * storm_jobs)
      << "journaled storm appended " << journaled.journal_appends
      << " records for " << storm_jobs << " jobs";

  // The overhead bound: the durable-admission tax on the Submit ack path —
  // one Admitted append per job × measured per-append cost — vs the
  // baseline wall. Started/Done appends ride the executor dispatch/finish
  // paths, off the ack path, and are already inside the journaled wall
  // above. Modeled deterministically because the wall delta of two storm
  // runs is noise-dominated at these sizes.
  const double overhead_pct =
      baseline.wall_ms > 0.0
          ? 100.0 *
                (static_cast<double>(storm_jobs) * per_append_us / 1e3) /
                baseline.wall_ms
          : 0.0;
  DCS_CHECK(overhead_pct < 5.0)
      << "journal appends cost " << overhead_pct << "% of the baseline wall";

  struct Row {
    std::string cycle;
    CycleResult result;
    double recovery_ms;
  };
  std::vector<Row> rows;
  rows.push_back({"baseline", baseline, 0.0});
  rows.push_back({"journaled", journaled, 0.0});
  for (size_t depth : backlog_depths) {
    CycleResult recovered =
        RunRecovery(data.g1, data.g2, journal_path, depth);
    DCS_CHECK(recovered.serialized == expected(depth))
        << "recovered backlog of " << depth
        << " diverged from synchronous mining";
    rows.push_back(
        {"recover@" + std::to_string(depth), recovered, recovered.wall_ms});
  }
  std::filesystem::remove(journal_path);

  for (const Row& row : rows) {
    const CycleResult& r = row.result;
    const MiningTelemetry& telemetry = r.first_response.telemetry;
    BenchRecord record;
    record.dataset = label + " / " + row.cycle;
    record.threads = 1;
    record.wall_ms = r.wall_ms;
    record.initializations = telemetry.initializations;
    record.pruned_seeds = telemetry.pruned_seeds;
    record.affinity = r.first_response.graph_affinity.empty()
                          ? 0.0
                          : r.first_response.graph_affinity[0].value;
    record.extra = {
        {"journal_appends", static_cast<double>(r.journal_appends)},
        {"recovered_jobs", static_cast<double>(r.recovered_jobs)},
        {"overhead_pct", overhead_pct},
        {"recovery_ms", row.recovery_ms},
        {"bit_identical", 1.0},
    };
    reporter.Add(record);
    table.AddRow({label, row.cycle, TablePrinter::Fmt(r.wall_ms, 2),
                  TablePrinter::Fmt(r.journal_appends),
                  TablePrinter::Fmt(r.recovered_jobs),
                  TablePrinter::Fmt(row.recovery_ms, 2),
                  TablePrinter::Fmt(overhead_pct, 4), "Yes"});
  }
  table.Print();
  std::printf("\njournal append: %.2f us/record (group commit, fsync off the "
              "append path)\n",
              per_append_us);

  if (!args.json_path.empty()) {
    DCS_CHECK(reporter.WriteTo(args.json_path))
        << "cannot write " << args.json_path;
    std::printf("wrote %s\n", args.json_path.c_str());
  }
  return 0;
}
