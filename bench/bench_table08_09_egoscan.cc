// Tables VIII & IX — comparison with the EgoScan-style total-weight
// baseline on the DBLP-analog co-author difference graphs.
//
// Paper shape to reproduce (Table VIII): EgoScan subgraphs are much larger,
// never positive cliques, and have far lower edge density than the DCS
// results; (Table IX): under the total-edge-weight metric W_D(S), EgoScan
// wins — each method is best at its own objective. EgoScan also costs more
// time than DCSGreedy/NewSEA.

#include <cstdio>

#include "baseline/egoscan.h"
#include "bench_util.h"
#include "core/dcs_greedy.h"
#include "core/newsea.h"
#include "graph/stats.h"
#include "util/table.h"
#include "util/timer.h"

int main() {
  using namespace dcs;
  using namespace dcs::bench;
  const uint64_t seed = 20180416;
  std::printf("seed = %llu\n\n", static_cast<unsigned long long>(seed));
  const CoauthorData data = MakeDblpAnalog(seed);

  TablePrinter table8(
      "Table VIII analog: subgraphs found by EgoScan",
      {"Setting", "GD Type", "#Authors", "#Edges", "Pos.Clique?",
       "AveDeg Diff", "EdgeDensity Diff", "Time (s)"});
  TablePrinter table9(
      "Table IX analog: total edge-weight difference W_D(S)",
      {"Setting", "GD Type", "DCSGreedy", "NewSEA", "EgoScan"});

  for (const bool discrete : {false, true}) {
    for (const bool disappearing : {false, true}) {
      Graph gd = disappearing ? MustDiff(data.g2, data.g1)
                              : MustDiff(data.g1, data.g2);
      if (discrete) gd = MustDiscretize(gd);
      const char* setting = discrete ? "Discrete" : "Weighted";
      const char* type = disappearing ? "Disappearing" : "Emerging";

      WallTimer timer;
      Result<EgoScanResult> ego = RunEgoScan(gd);
      const double ego_seconds = timer.Seconds();
      DCS_CHECK(ego.ok());
      Result<DcsadResult> greedy = RunDcsGreedy(gd);
      DCS_CHECK(greedy.ok());
      Result<DcsgaResult> newsea = RunNewSea(gd.PositivePart());
      DCS_CHECK(newsea.ok());

      table8.AddRow(
          {setting, type, TablePrinter::Fmt(uint64_t{ego->subset.size()}),
           TablePrinter::Fmt(uint64_t{InducedEdgeCount(gd, ego->subset)}),
           TablePrinter::YesNo(IsPositiveClique(gd, ego->subset)),
           TablePrinter::Fmt(ego->density, 2),
           TablePrinter::Fmt(EdgeDensity(gd, ego->subset), 4),
           TablePrinter::Fmt(ego_seconds, 3)});
      table9.AddRow({setting, type,
                     TablePrinter::Fmt(TotalDegree(gd, greedy->subset), 1),
                     TablePrinter::Fmt(TotalDegree(gd, newsea->support), 1),
                     TablePrinter::Fmt(ego->total_weight, 1)});
    }
  }
  table8.Print();
  table9.Print();
  return 0;
}
