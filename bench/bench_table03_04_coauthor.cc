// Tables III & IV — emerging / disappearing co-author groups.
//
// Runs DCSGreedy (average degree) and NewSEA (graph affinity) on the
// DBLP-analog difference graphs in the Weighted and Discrete settings, both
// orientations. Prints:
//  * Table III analog — the member list of each group found, with simplex
//    weights for affinity results and the matching planted group;
//  * Table IV analog — #authors, positive-clique flag, average-degree /
//    affinity / edge-density differences and the approximation ratio β.
//
// Paper shape to reproduce: both measures find planted groups; affinity
// results are positive cliques and small; the average-degree approximation
// ratio stays near 2; Weighted and Discrete settings can pick different
// groups (heavy edges dominate the Weighted setting).

#include <cstdio>
#include <set>
#include <string>

#include "bench_util.h"
#include "core/dcs_greedy.h"
#include "core/newsea.h"
#include "graph/stats.h"
#include "util/table.h"

namespace {

using namespace dcs;
using namespace dcs::bench;

std::string MatchPlanted(const std::vector<VertexId>& found,
                         const CoauthorData& data) {
  const std::set<VertexId> f(found.begin(), found.end());
  std::string best = "(background)";
  double best_score = 0.25;  // require non-trivial overlap
  auto consider = [&](const PlantedGroup& group) {
    size_t inter = 0;
    for (VertexId v : group.members) inter += f.contains(v) ? 1 : 0;
    const double jaccard =
        static_cast<double>(inter) /
        static_cast<double>(f.size() + group.members.size() - inter);
    if (jaccard > best_score) {
      best_score = jaccard;
      best = group.name;
    }
  };
  for (const auto& group : data.emerging) consider(group);
  for (const auto& group : data.disappearing) consider(group);
  return best;
}

std::string MemberList(const std::vector<VertexId>& members,
                       const Embedding* x, size_t limit = 10) {
  std::string out = "{";
  for (size_t i = 0; i < members.size() && i < limit; ++i) {
    if (i) out += ", ";
    out += "a" + std::to_string(members[i]);
    if (x != nullptr) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "(%.3f)", x->x[members[i]]);
      out += buf;
    }
  }
  if (members.size() > limit) out += ", ...";
  out += "}";
  return out;
}

}  // namespace

int main() {
  const uint64_t seed = 20180416;
  std::printf("seed = %llu\n\n", static_cast<unsigned long long>(seed));
  const CoauthorData data = MakeDblpAnalog(seed);

  TablePrinter groups("Table III analog: co-author groups found",
                      {"Setting", "GD Type", "Density", "Members",
                       "Matched planted group"});
  TablePrinter info(
      "Table IV analog: information of co-author groups",
      {"Setting", "GD Type", "Density", "#Authors", "Pos.Clique?",
       "AveDeg Diff", "Approx.Ratio", "Affinity Diff", "EdgeDensity Diff"});

  for (const bool discrete : {false, true}) {
    for (const bool disappearing : {false, true}) {
      Graph gd = disappearing ? MustDiff(data.g2, data.g1)
                              : MustDiff(data.g1, data.g2);
      if (discrete) gd = MustDiscretize(gd);
      const char* setting = discrete ? "Discrete" : "Weighted";
      const char* type = disappearing ? "Disappearing" : "Emerging";

      // Average degree: DCSGreedy (Algorithm 2).
      Result<DcsadResult> ad = RunDcsGreedy(gd);
      DCS_CHECK(ad.ok());
      groups.AddRow({setting, type, "Average Degree",
                     MemberList(ad->subset, nullptr),
                     MatchPlanted(ad->subset, data)});
      info.AddRow({setting, type, "Average Degree",
                   TablePrinter::Fmt(uint64_t{ad->subset.size()}),
                   TablePrinter::YesNo(IsPositiveClique(gd, ad->subset)),
                   TablePrinter::Fmt(ad->density, 2),
                   TablePrinter::Fmt(ad->ratio_bound, 2), "—",
                   TablePrinter::Fmt(EdgeDensity(gd, ad->subset), 3)});

      // Graph affinity: NewSEA (Algorithm 5).
      Result<DcsgaResult> ga = RunNewSea(gd.PositivePart());
      DCS_CHECK(ga.ok());
      groups.AddRow({setting, type, "Graph Affinity",
                     MemberList(ga->support, &ga->x),
                     MatchPlanted(ga->support, data)});
      info.AddRow({setting, type, "Graph Affinity",
                   TablePrinter::Fmt(uint64_t{ga->support.size()}),
                   TablePrinter::YesNo(IsPositiveClique(gd, ga->support)),
                   TablePrinter::Fmt(AverageDegreeDensity(gd, ga->support), 2),
                   "—", TablePrinter::Fmt(ga->affinity, 3),
                   TablePrinter::Fmt(EdgeDensity(gd, ga->support), 3)});
    }
  }
  groups.Print();
  info.Print();

  std::printf("planted ground truth:\n");
  for (const auto& group : data.emerging) {
    std::printf("  %s: %s\n", group.name.c_str(),
                MemberList(group.members, nullptr).c_str());
  }
  for (const auto& group : data.disappearing) {
    std::printf("  %s: %s\n", group.name.c_str(),
                MemberList(group.members, nullptr).c_str());
  }
  return 0;
}
