// Tables V & VI — top-5 emerging/disappearing data-mining topics (affinity)
// and, for contrast, the top-5 topics of each single era graph.
//
// Paper shape to reproduce: the contrast columns surface the planted
// emerging topics ("social networks", "matrix factorization", ...) and
// disappearing topics ("association rules", ...), while single-graph mining
// is dominated by stable evergreen topics ("time series") — the paper's
// argument for contrast mining (§VI-C).

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/newsea.h"
#include "util/table.h"

namespace {

using namespace dcs;
using namespace dcs::bench;

std::string CliqueToTopic(const KeywordData& data, const CliqueRecord& clique) {
  std::string out = "{";
  for (size_t i = 0; i < clique.members.size(); ++i) {
    if (i) out += ", ";
    out += data.vocabulary[clique.members[i]];
    char buf[16];
    std::snprintf(buf, sizeof(buf), " (%.2f)", clique.weights[i]);
    out += buf;
  }
  return out + "}";
}

std::vector<CliqueRecord> TopTopics(const Graph& graph, size_t k) {
  DcsgaOptions options;
  options.collect_cliques = true;
  Result<DcsgaResult> result = RunDcsgaAllInits(graph.PositivePart(), options);
  DCS_CHECK(result.ok()) << result.status().ToString();
  std::vector<CliqueRecord> cliques = FilterMaximalCliques(result->cliques);
  std::sort(cliques.begin(), cliques.end(),
            [](const CliqueRecord& a, const CliqueRecord& b) {
              return a.affinity > b.affinity;
            });
  if (cliques.size() > k) cliques.resize(k);
  return cliques;
}

}  // namespace

int main() {
  const uint64_t seed = 20180416;
  std::printf("seed = %llu\n\n", static_cast<unsigned long long>(seed));
  const KeywordData data = MakeDmAnalog(seed + 1);

  const Graph gd_emerging = MustDiff(data.g1, data.g2);
  const Graph gd_disappearing = MustDiff(data.g2, data.g1);

  const auto emerging = TopTopics(gd_emerging, 5);
  const auto disappearing = TopTopics(gd_disappearing, 5);
  TablePrinter table5(
      "Table V analog: top-5 emerging/disappearing topics w.r.t. affinity",
      {"Rank", "Emerging", "aff.diff", "Disappearing", "aff.diff"});
  for (size_t i = 0; i < 5; ++i) {
    table5.AddRow(
        {TablePrinter::Fmt(uint64_t{i + 1}),
         i < emerging.size() ? CliqueToTopic(data, emerging[i]) : "—",
         i < emerging.size() ? TablePrinter::Fmt(emerging[i].affinity, 3) : "",
         i < disappearing.size() ? CliqueToTopic(data, disappearing[i]) : "—",
         i < disappearing.size()
             ? TablePrinter::Fmt(disappearing[i].affinity, 3)
             : ""});
  }
  table5.Print();

  const auto top_g1 = TopTopics(data.g1, 5);
  const auto top_g2 = TopTopics(data.g2, 5);
  TablePrinter table6("Table VI analog: top-5 topics of each era alone",
                      {"Rank", "G1 (early era)", "aff.", "G2 (recent era)",
                       "aff."});
  for (size_t i = 0; i < 5; ++i) {
    table6.AddRow(
        {TablePrinter::Fmt(uint64_t{i + 1}),
         i < top_g1.size() ? CliqueToTopic(data, top_g1[i]) : "—",
         i < top_g1.size() ? TablePrinter::Fmt(top_g1[i].affinity, 3) : "",
         i < top_g2.size() ? CliqueToTopic(data, top_g2[i]) : "—",
         i < top_g2.size() ? TablePrinter::Fmt(top_g2[i].affinity, 3) : ""});
  }
  table6.Print();
  return 0;
}
