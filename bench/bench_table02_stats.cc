// Table II — statistics of the difference graphs used in the experiments:
// n, m+ (positive edges), m− (negative edges), max/min/average edge weight.
//
// Paper shape to reproduce: every contrast dataset mixes positive and
// negative edges; Discrete settings shrink m+ (weak positive diffs drop to
// zero); the Actor dataset has m− = 0; flipping the GD orientation swaps
// m+/m− and negates the weight extremes.

#include <cstdio>

#include "bench_util.h"
#include "util/table.h"

int main() {
  using namespace dcs;
  using namespace dcs::bench;
  const uint64_t seed = 20180416;  // ICDE'18 — printed for reproducibility
  std::printf("seed = %llu (synthetic analogs of the paper's datasets)\n\n",
              static_cast<unsigned long long>(seed));

  const std::vector<BenchDataset> datasets =
      BuildBenchDatasets(seed, /*include_large=*/true);

  TablePrinter table(
      "Table II analog: statistics of difference graphs",
      {"Data", "Setting", "GD Type", "n", "m+", "m-", "Max w", "Min w",
       "Average w"});
  for (const BenchDataset& dataset : datasets) {
    const WeightStats stats = dataset.gd.ComputeWeightStats();
    table.AddRow({dataset.data, dataset.setting, dataset.gd_type,
                  TablePrinter::Fmt(uint64_t{dataset.gd.NumVertices()}),
                  TablePrinter::Fmt(uint64_t{stats.num_positive_edges}),
                  TablePrinter::Fmt(uint64_t{stats.num_negative_edges}),
                  TablePrinter::Fmt(stats.max_weight, 3),
                  TablePrinter::Fmt(stats.min_weight, 3),
                  TablePrinter::Fmt(stats.mean_weight, 4)});
  }
  table.Print();
  return 0;
}
