// Ablation — how much of NewSEA's speedup comes from each ingredient of the
// §V-D smart initialization:
//   (a) full: μ-descending order + the μ_u ≤ f(best) early stop (NewSEA),
//   (b) order only: μ-descending order, no early stop (all seeds run),
//   (c) stop only: arbitrary (id) order with the early-stop test,
//   (d) none: all seeds, id order (SEACD+Refine).
// Reported: initializations actually run and wall time; all four must find
// the same best affinity (the pruning is lossless in practice, §VI-D).

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "bench_util.h"
#include "core/newsea.h"
#include "core/refinement.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace dcs;
using namespace dcs::bench;

struct VariantResult {
  double affinity = 0.0;
  uint64_t inits = 0;
  double seconds = 0.0;
};

// Runs SEACD+Refine over `order`, optionally pruning with mu.
VariantResult RunVariant(const Graph& gd_plus,
                         const std::vector<VertexId>& order,
                         const std::vector<double>* mu) {
  WallTimer timer;
  VariantResult out;
  AffinityState state(gd_plus);
  for (VertexId u : order) {
    if (gd_plus.Degree(u) == 0) continue;
    if (mu != nullptr && (*mu)[u] <= out.affinity) {
      // With μ-descending order this is a break; with arbitrary order it is
      // only a skip — both are valid prunings of provably hopeless seeds.
      continue;
    }
    ++out.inits;
    state.ResetToVertex(u);
    RunSeacdInPlace(&state);
    const RefinementRunStats refined = RefineInPlace(&state);
    out.affinity = std::max(out.affinity, refined.affinity);
  }
  out.seconds = timer.Seconds();
  return out;
}

}  // namespace

int main() {
  const uint64_t seed = 20180416;
  std::printf("seed = %llu\n\n", static_cast<unsigned long long>(seed));

  TablePrinter table(
      "Ablation: NewSEA smart-initialization ingredients",
      {"Data", "Variant", "Inits run", "Time (s)", "Best affinity"});

  const std::vector<BenchDataset> datasets =
      BuildBenchDatasets(seed, /*include_large=*/false);
  for (const BenchDataset& dataset : datasets) {
    // Keep the sweep quick: one dataset per source suffices.
    if (dataset.gd_type == "Disappearing" ||
        dataset.gd_type == "Social-Interest" ||
        dataset.gd_type == "Conflicting" || dataset.setting == "Discrete") {
      continue;
    }
    const Graph gd_plus = dataset.gd.PositivePart();
    const SmartInitBounds bounds = ComputeSmartInitBounds(gd_plus);
    const VertexId n = gd_plus.NumVertices();
    std::vector<VertexId> id_order(n);
    std::iota(id_order.begin(), id_order.end(), VertexId{0});
    std::vector<VertexId> mu_order = id_order;
    std::sort(mu_order.begin(), mu_order.end(), [&](VertexId a, VertexId b) {
      return bounds.mu[a] > bounds.mu[b];
    });

    const VariantResult full = RunVariant(gd_plus, mu_order, &bounds.mu);
    const VariantResult order_only = RunVariant(gd_plus, mu_order, nullptr);
    const VariantResult stop_only = RunVariant(gd_plus, id_order, &bounds.mu);
    const VariantResult none = RunVariant(gd_plus, id_order, nullptr);

    auto add = [&](const char* variant, const VariantResult& r) {
      table.AddRow({dataset.data, variant, TablePrinter::Fmt(r.inits),
                    TablePrinter::Fmt(r.seconds, 3),
                    TablePrinter::Fmt(r.affinity, 4)});
    };
    add("order+stop (NewSEA)", full);
    add("order only", order_only);
    add("stop only", stop_only);
    add("none (SEACD+Refine)", none);
    std::fflush(stdout);
  }
  table.Print();
  return 0;
}
