// Figure 3 — counts of k-cliques discovered by the all-initializations
// SEACD+Refinement driver on the Douban-analog difference graphs, Movie vs
// Book, Interest−Social vs Social−Interest.
//
// Paper shape to reproduce: for the Movie profile the Social−Interest
// direction yields more and larger positive cliques; for the Book profile
// the opposite holds (the generator plants this asymmetry following the
// paper's observation that Douban's social ties track movie taste more
// than book taste).

#include <algorithm>
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "core/newsea.h"
#include "util/table.h"

namespace {

using namespace dcs;
using namespace dcs::bench;

std::map<size_t, size_t> CliqueSizeHistogram(const Graph& gd,
                                             size_t min_size) {
  DcsgaOptions options;
  options.collect_cliques = true;
  Result<DcsgaResult> result = RunDcsgaAllInits(gd.PositivePart(), options);
  DCS_CHECK(result.ok());
  std::map<size_t, size_t> histogram;
  for (const CliqueRecord& clique : FilterMaximalCliques(result->cliques)) {
    if (clique.members.size() >= min_size) ++histogram[clique.members.size()];
  }
  return histogram;
}

}  // namespace

int main() {
  const uint64_t seed = 20180416;
  std::printf("seed = %llu\n\n", static_cast<unsigned long long>(seed));

  for (const bool movie : {true, false}) {
    const InterestSocialData data = MakeDoubanAnalog(seed + 3, movie);
    const size_t min_size = 6;  // skip incidental cluster 5-cliques
    const auto interest_social = CliqueSizeHistogram(
        MustDiff(data.social, data.interest), min_size);
    const auto social_interest = CliqueSizeHistogram(
        MustDiff(data.interest, data.social), min_size);

    size_t max_size = min_size;
    for (const auto& [k, _] : interest_social) max_size = std::max(max_size, k);
    for (const auto& [k, _] : social_interest) max_size = std::max(max_size, k);

    TablePrinter table(
        std::string("Fig. 3 analog (") + (movie ? "Movie" : "Book") +
            "): #maximal positive cliques by size",
        {"Clique size", "Interest-Social", "Social-Interest"});
    size_t total_is = 0, total_si = 0;
    for (size_t k = min_size; k <= max_size; ++k) {
      const size_t a = interest_social.contains(k) ? interest_social.at(k) : 0;
      const size_t b = social_interest.contains(k) ? social_interest.at(k) : 0;
      total_is += a;
      total_si += b;
      if (a == 0 && b == 0) continue;
      table.AddRow({TablePrinter::Fmt(uint64_t{k}),
                    TablePrinter::Fmt(uint64_t{a}),
                    TablePrinter::Fmt(uint64_t{b})});
    }
    table.AddRow({"total", TablePrinter::Fmt(uint64_t{total_is}),
                  TablePrinter::Fmt(uint64_t{total_si})});
    table.Print();
  }
  return 0;
}
