// Tables XII & XIII — DCS on the Douban-analog interest/social pairs
// (Movie and Book profiles, both GD orientations).
//
// Paper shape to reproduce: average-degree DCS are big subgraphs, affinity
// DCS are small; all three DCSAD variants find similar large communities;
// the Movie Interest−Social direction is denser than Social−Interest while
// Book shows the opposite (the generator plants that asymmetry, mirroring
// the paper's observation about Douban).

#include <cstdio>

#include "bench_util.h"
#include "core/dcs_greedy.h"
#include "core/newsea.h"
#include "densest/peel.h"
#include "graph/stats.h"
#include "util/table.h"

int main() {
  using namespace dcs;
  using namespace dcs::bench;
  const uint64_t seed = 20180416;
  std::printf("seed = %llu\n\n", static_cast<unsigned long long>(seed));

  TablePrinter table12(
      "Table XII analog: DCS w.r.t. average degree on Douban data",
      {"Interest", "GD Type", "Method", "#Users", "AveDeg Diff",
       "Approx.Ratio", "Pos.Clique?"});
  TablePrinter table13(
      "Table XIII analog: DCS w.r.t. graph affinity on Douban data",
      {"Interest", "GD Type", "#Users", "Affinity Diff",
       "EdgeDensity Diff"});

  for (const bool movie : {true, false}) {
    const InterestSocialData data = MakeDoubanAnalog(seed + 3, movie);
    const char* interest = movie ? "Movie" : "Book";
    for (const bool social_minus_interest : {false, true}) {
      const Graph gd = social_minus_interest
                           ? MustDiff(data.interest, data.social)
                           : MustDiff(data.social, data.interest);
      const char* type =
          social_minus_interest ? "Social-Interest" : "Interest-Social";

      Result<DcsadResult> full = RunDcsGreedy(gd);
      DCS_CHECK(full.ok());
      table12.AddRow(
          {interest, type, "DCSGreedy",
           TablePrinter::Fmt(uint64_t{full->subset.size()}),
           TablePrinter::Fmt(full->density, 3),
           TablePrinter::Fmt(full->ratio_bound, 2),
           TablePrinter::YesNo(IsPositiveClique(gd, full->subset))});
      const PeelResult gd_only = GreedyPeel(gd);
      table12.AddRow(
          {interest, type, "GD only",
           TablePrinter::Fmt(uint64_t{gd_only.subset.size()}),
           TablePrinter::Fmt(gd_only.density, 3), "—",
           TablePrinter::YesNo(IsPositiveClique(gd, gd_only.subset))});
      const PeelResult plus_only = GreedyPeel(gd.PositivePart());
      table12.AddRow(
          {interest, type, "GD+ only",
           TablePrinter::Fmt(uint64_t{plus_only.subset.size()}),
           TablePrinter::Fmt(AverageDegreeDensity(gd, plus_only.subset), 3),
           "—", TablePrinter::YesNo(IsPositiveClique(gd, plus_only.subset))});

      Result<DcsgaResult> affinity = RunNewSea(gd.PositivePart());
      DCS_CHECK(affinity.ok());
      table13.AddRow(
          {interest, type,
           TablePrinter::Fmt(uint64_t{affinity->support.size()}),
           TablePrinter::Fmt(affinity->affinity, 3),
           TablePrinter::Fmt(EdgeDensity(gd, affinity->support), 3)});
    }
  }
  table12.Print();
  table13.Print();
  return 0;
}
