// Tables X & XI — consistent / conflicting Wikipedia-editor groups.
//
// Table X compares three DCSAD strategies — full DCSGreedy, Greedy on GD
// only, Greedy on GD+ only — and Table XI reports the affinity results.
// Paper shape to reproduce: average-degree subgraphs are large and not
// positive cliques on this data; affinity subgraphs are tiny; DCSGreedy
// matches the best of its two peel candidates.

#include <cstdio>

#include "bench_util.h"
#include "core/dcs_greedy.h"
#include "core/newsea.h"
#include "densest/peel.h"
#include "graph/stats.h"
#include "util/table.h"

int main() {
  using namespace dcs;
  using namespace dcs::bench;
  const uint64_t seed = 20180416;
  std::printf("seed = %llu\n\n", static_cast<unsigned long long>(seed));
  const SignedPairData data = MakeWikiAnalog(seed + 2);

  TablePrinter table10(
      "Table X analog: DCS w.r.t. average degree on Wiki data",
      {"GD Type", "Method", "#Users", "AveDeg Diff", "Approx.Ratio",
       "Pos.Clique?"});
  TablePrinter table11(
      "Table XI analog: DCS w.r.t. graph affinity on Wiki data",
      {"GD Type", "#Users", "Affinity Diff", "EdgeDensity Diff"});

  for (const bool conflicting : {false, true}) {
    const Graph gd = conflicting ? MustDiff(data.positive, data.negative)
                                 : MustDiff(data.negative, data.positive);
    const char* type = conflicting ? "Conflicting" : "Consistent";

    Result<DcsadResult> full = RunDcsGreedy(gd);
    DCS_CHECK(full.ok());
    table10.AddRow({type, "DCSGreedy",
                    TablePrinter::Fmt(uint64_t{full->subset.size()}),
                    TablePrinter::Fmt(full->density, 2),
                    TablePrinter::Fmt(full->ratio_bound, 2),
                    TablePrinter::YesNo(IsPositiveClique(gd, full->subset))});

    const PeelResult gd_only = GreedyPeel(gd);
    table10.AddRow({type, "GD only",
                    TablePrinter::Fmt(uint64_t{gd_only.subset.size()}),
                    TablePrinter::Fmt(gd_only.density, 2), "—",
                    TablePrinter::YesNo(IsPositiveClique(gd, gd_only.subset))});

    const PeelResult gd_plus_only = GreedyPeel(gd.PositivePart());
    table10.AddRow(
        {type, "GD+ only",
         TablePrinter::Fmt(uint64_t{gd_plus_only.subset.size()}),
         TablePrinter::Fmt(AverageDegreeDensity(gd, gd_plus_only.subset), 2),
         "—",
         TablePrinter::YesNo(IsPositiveClique(gd, gd_plus_only.subset))});

    Result<DcsgaResult> affinity = RunNewSea(gd.PositivePart());
    DCS_CHECK(affinity.ok());
    table11.AddRow({type,
                    TablePrinter::Fmt(uint64_t{affinity->support.size()}),
                    TablePrinter::Fmt(affinity->affinity, 3),
                    TablePrinter::Fmt(EdgeDensity(gd, affinity->support), 3)});
  }
  table10.Print();
  table11.Print();
  return 0;
}
