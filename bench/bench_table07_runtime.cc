// Table VII — running time of the three DCSGA configurations on every
// dataset, plus the expansion-error count of the replicator SEA baseline.
//
// Paper shape to reproduce: NewSEA ≪ SEACD+Refine ≤ SEA+Refine, with the
// smart-initialization speedup growing up to orders of magnitude; the two
// coordinate-descent configurations make zero expansion errors while
// SEA+Refine makes some, increasingly so on denser graphs.

#include <cstdio>

#include "bench_util.h"
#include "core/newsea.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace dcs;
  using namespace dcs::bench;
  const BenchArgs args = ParseBenchArgs(argc, argv);
  const uint64_t seed = 20180416;
  std::printf("seed = %llu (times in seconds)\n\n",
              static_cast<unsigned long long>(seed));

  const std::vector<BenchDataset> datasets =
      BuildBenchDatasets(seed, /*include_large=*/!args.smoke);
  JsonReporter reporter("table07_runtime", seed);

  TablePrinter table("Table VII analog: running time (s) of DCSGA solvers",
                     {"Data", "Setting", "GD Type", "NewSEA", "SEACD+Refine",
                      "SEA+Refine", "#Errors in SEA", "NewSEA inits",
                      "Same best f?"});
  for (const BenchDataset& dataset : datasets) {
    const Graph gd_plus = dataset.gd.PositivePart();

    WallTimer timer;
    Result<DcsgaResult> newsea = RunNewSea(gd_plus);
    const double newsea_seconds = timer.Seconds();
    DCS_CHECK(newsea.ok());

    DcsgaOptions cd_options;
    cd_options.shrink = ShrinkKind::kCoordinateDescent;
    timer.Restart();
    Result<DcsgaResult> seacd = RunDcsgaAllInits(gd_plus, cd_options);
    const double seacd_seconds = timer.Seconds();
    DCS_CHECK(seacd.ok());

    DcsgaOptions rep_options;
    rep_options.shrink = ShrinkKind::kReplicator;
    timer.Restart();
    Result<DcsgaResult> sea = RunDcsgaAllInits(gd_plus, rep_options);
    const double sea_seconds = timer.Seconds();
    DCS_CHECK(sea.ok());

    // "Same best f?" — the paper notes all DCSGA algorithms found the same
    // subgraph on every dataset; report whether that held here.
    const bool same =
        std::abs(newsea->affinity - seacd->affinity) < 1e-6 &&
        std::abs(newsea->affinity - sea->affinity) <
            1e-3 * std::max(1.0, newsea->affinity);

    table.AddRow({dataset.data, dataset.setting, dataset.gd_type,
                  TablePrinter::Fmt(newsea_seconds, 3),
                  TablePrinter::Fmt(seacd_seconds, 3),
                  TablePrinter::Fmt(sea_seconds, 3),
                  TablePrinter::Fmt(uint64_t{sea->expansion_errors}),
                  TablePrinter::Fmt(uint64_t{newsea->initializations}),
                  same ? "Yes" : "No"});
    std::fflush(stdout);

    reporter.Add({dataset.Label() + " / NewSEA", 1, newsea_seconds * 1e3,
                  newsea->initializations, newsea->pruned_seeds,
                  newsea->affinity});
    reporter.Add({dataset.Label() + " / SEACD+Refine", 1, seacd_seconds * 1e3,
                  seacd->initializations, seacd->pruned_seeds,
                  seacd->affinity});
    reporter.Add({dataset.Label() + " / SEA+Refine", 1, sea_seconds * 1e3,
                  sea->initializations, sea->pruned_seeds, sea->affinity});
  }
  table.Print();

  if (!args.json_path.empty()) {
    DCS_CHECK(reporter.WriteTo(args.json_path))
        << "cannot write " << args.json_path;
    std::printf("\nwrote %s\n", args.json_path.c_str());
  }
  return 0;
}
