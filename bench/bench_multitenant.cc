// Multi-tenant scheduler throughput: mixed-tenant serving under fair-share
// scheduling, and tail latency under 2× admission-controlled overload.
//
// Four tenants (distinct co-author snapshots, weights 3:1:1:1) share a
// MiningService — its executors, worker pool and pipeline cache. Two
// scenarios per executor count:
//   sustained    every offered job is admitted; measures steady mixed-tenant
//                throughput, latency percentiles and the weight-3 tenant's
//                dispatch share.
//   overload x2  twice the sustained job count is offered against bounded
//                per-tenant queues and a service-wide budget; the admission
//                controller sheds the excess and the p95/p99 rows show what
//                the tail costs the jobs that were let in.
// Every completed job is checked bit-identical to a fault-free synchronous
// reference of its (tenant, request) pair — the `bit_identical` column is
// asserted, not just reported.
//
// `--json out.json` emits the committed BENCH_multitenant.json record;
// `--smoke` shrinks the datasets and cycle counts for the ctest
// `bench_smoke` wiring (schema: check_bench_json.sh
// required_multitenant_record).

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/miner_session.h"
#include "api/mining.h"
#include "api/mining_service.h"
#include "api/pipeline_cache.h"
#include "bench_util.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

constexpr size_t kTenants = 4;

// The per-tenant request variants cycled through a run; all carry an
// affinity ranking so the bit-identity check is non-vacuous.
std::vector<dcs::MiningRequest> RequestVariants() {
  std::vector<dcs::MiningRequest> variants(3);
  variants[0].measure = dcs::Measure::kGraphAffinity;
  variants[1].measure = dcs::Measure::kBoth;
  variants[1].alpha = 2.0;
  variants[2].measure = dcs::Measure::kGraphAffinity;
  variants[2].flip = true;
  for (dcs::MiningRequest& request : variants) {
    request.ga_solver.parallelism = 0;  // auto: share the session budget
  }
  return variants;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dcs;
  using namespace dcs::bench;
  const BenchArgs args = ParseBenchArgs(argc, argv);
  const uint64_t seed = 20180416;
  std::printf("seed = %llu, hardware_concurrency = %u%s\n\n",
              static_cast<unsigned long long>(seed),
              std::thread::hardware_concurrency(),
              args.smoke ? " (smoke mode)" : "");

  // Four distinct tenant datasets; tenant 0 carries weight 3.
  std::vector<CoauthorData> data;
  for (size_t t = 0; t < kTenants; ++t) {
    data.push_back(MakeDblpAnalog(seed + 31 * t,
                                  /*num_authors=*/args.smoke ? 500 : 2000));
  }
  const uint32_t tenant_weights[kTenants] = {3, 1, 1, 1};
  const std::vector<MiningRequest> variants = RequestVariants();
  const size_t cycles = args.smoke ? 6 : 24;
  const std::vector<uint32_t> executor_counts =
      args.smoke ? std::vector<uint32_t>{2} : std::vector<uint32_t>{2, 4};

  // Fault-free synchronous references per (tenant, variant): the
  // bit-identity bar every completed job is held to, every cycle.
  std::vector<std::vector<std::string>> expected(kTenants);
  for (size_t t = 0; t < kTenants; ++t) {
    Result<MinerSession> reference = MinerSession::Create(data[t].g1, data[t].g2);
    DCS_CHECK(reference.ok()) << reference.status().ToString();
    for (const MiningRequest& request : variants) {
      Result<MiningResponse> mined = reference->Mine(request);
      DCS_CHECK(mined.ok()) << mined.status().ToString();
      expected[t].push_back(SerializeAffinityRanking(*mined));
    }
  }

  JsonReporter reporter("multitenant", seed);
  TablePrinter table("Multi-tenant service: mixed load across 4 tenants",
                     {"Scenario", "Execs", "Offered", "Shed", "Jobs/s",
                      "P95 ms", "P99 ms", "T0 share", "Ident"});

  for (const uint32_t executors : executor_counts) {
    for (const bool overload : {false, true}) {
      MiningServiceOptions options;
      options.num_executors = executors;
      options.shared_cache = std::make_shared<PipelineCache>();
      options.worker_pool =
          std::make_shared<ThreadPool>(ThreadPool::DefaultConcurrency() - 1);
      if (overload) {
        // 2× the sustained job count is offered, but only roughly the
        // sustained backlog is allowed to queue — the controller sheds the
        // rest at Submit instead of letting the tail grow unboundedly.
        options.max_queued_jobs = cycles / 2;
        options.max_total_queued_jobs = 2 * cycles;
      }
      MiningService service(options);
      for (size_t t = 0; t < kTenants; ++t) {
        Result<MinerSession> session =
            MinerSession::Create(data[t].g1, data[t].g2);
        DCS_CHECK(session.ok()) << session.status().ToString();
        Result<TenantId> tenant =
            service.AddTenant(std::move(*session),
                              TenantOptions{.weight = tenant_weights[t]});
        DCS_CHECK(tenant.ok()) << tenant.status().ToString();
      }

      const size_t run_cycles = overload ? 2 * cycles : cycles;
      const size_t offered = run_cycles * kTenants;
      size_t shed = 0;
      // (tenant, variant, id) of every admitted job.
      std::vector<std::pair<std::pair<size_t, size_t>, JobId>> admitted;
      admitted.reserve(offered);

      WallTimer wall;
      for (size_t cycle = 0; cycle < run_cycles; ++cycle) {
        for (size_t t = 0; t < kTenants; ++t) {
          const size_t variant = (cycle + t) % variants.size();
          MiningRequest request = variants[variant];
          request.priority = static_cast<int32_t>(cycle % 3) - 1;
          Result<JobId> id =
              service.Submit(static_cast<TenantId>(t), std::move(request));
          if (!id.ok()) {
            DCS_CHECK(id.status().code() == StatusCode::kOutOfRange ||
                      id.status().IsResourceExhausted())
                << id.status().ToString();
            ++shed;
            continue;
          }
          admitted.push_back({{t, variant}, *id});
        }
      }

      std::vector<double> latencies_ms;
      latencies_ms.reserve(admitted.size());
      // (finish_index, tenant) pairs for the fair-share telemetry below.
      std::vector<std::pair<uint64_t, size_t>> finish_order;
      finish_order.reserve(admitted.size());
      double queue_ms_total = 0.0;
      uint64_t initializations = 0;
      uint64_t pruned = 0;
      double affinity_checksum = 0.0;
      size_t identical = 0;
      for (const auto& [key, id] : admitted) {
        const auto [t, variant] = key;
        Result<JobStatus> status = service.Wait(id);
        DCS_CHECK(status.ok()) << status.status().ToString();
        DCS_CHECK(status->state == JobState::kDone)
            << "tenant " << t << " job " << id << " ended "
            << JobStateToString(status->state) << ": "
            << status->failure.ToString();
        latencies_ms.push_back((status->queue_seconds + status->run_seconds) *
                               1e3);
        finish_order.push_back({status->finish_index, t});
        queue_ms_total += status->queue_seconds * 1e3;
        initializations += status->response.telemetry.initializations;
        pruned += status->response.telemetry.pruned_seeds;
        if (!status->response.graph_affinity.empty()) {
          affinity_checksum += status->response.graph_affinity.front().value;
        }
        if (SerializeAffinityRanking(status->response) ==
            expected[t][variant]) {
          ++identical;
        }
      }
      const double wall_ms = wall.Millis();
      // The acceptance bar: every admitted job matched its reference.
      DCS_CHECK(identical == admitted.size())
          << identical << "/" << admitted.size() << " jobs bit-identical";

      // Per-tenant share telemetry: the weight-3 tenant's fraction of the
      // *first half* of finishes. Lifetime dispatch counts always converge
      // to the admitted mix, so the weights only show while a backlog is
      // contended — ~0.25 when the queues stay shallow (sustained), rising
      // toward weight/(sum of weights) = 0.5 under overload.
      std::sort(finish_order.begin(), finish_order.end());
      size_t t0_early = 0;
      const size_t half = finish_order.size() / 2;
      for (size_t i = 0; i < half; ++i) {
        if (finish_order[i].second == 0) ++t0_early;
      }
      const double t0_share =
          half == 0 ? 0.0
                    : static_cast<double>(t0_early) / static_cast<double>(half);

      const double throughput = static_cast<double>(admitted.size()) /
                                (wall_ms / 1e3);
      const double mean_ms = MeanOf(latencies_ms);
      const double p95_ms = P95Of(latencies_ms);
      const double p99_ms = P99Of(latencies_ms);
      const double mean_queue_ms =
          admitted.empty() ? 0.0
                           : queue_ms_total /
                                 static_cast<double>(admitted.size());

      const char* scenario = overload ? "overload x2" : "sustained";
      std::string label = std::string(args.smoke ? "DBLP-tiny" : "DBLP") +
                          " x4 tenants / " + scenario;
      BenchRecord record{std::move(label), executors,       wall_ms,
                         initializations,  pruned,          affinity_checksum};
      record.extra = {
          {"tenants", static_cast<double>(kTenants)},
          {"offered_jobs", static_cast<double>(offered)},
          {"admitted_jobs", static_cast<double>(admitted.size())},
          {"shed_jobs", static_cast<double>(shed)},
          {"throughput_jobs_per_s", throughput},
          {"mean_latency_ms", mean_ms},
          {"p95_latency_ms", p95_ms},
          {"p99_latency_ms", p99_ms},
          {"mean_queue_ms", mean_queue_ms},
          {"tenant0_share", t0_share},
          {"deadline_misses",
           static_cast<double>(service.num_deadline_exceeded())},
          {"bit_identical", identical == admitted.size() ? 1.0 : 0.0},
      };
      reporter.Add(std::move(record));
      table.AddRow({scenario, TablePrinter::Fmt(uint64_t{executors}),
                    TablePrinter::Fmt(static_cast<uint64_t>(offered)),
                    TablePrinter::Fmt(static_cast<uint64_t>(shed)),
                    TablePrinter::Fmt(throughput, 1),
                    TablePrinter::Fmt(p95_ms, 2), TablePrinter::Fmt(p99_ms, 2),
                    TablePrinter::Fmt(t0_share, 3),
                    identical == admitted.size() ? "yes" : "NO"});
      std::fflush(stdout);
    }
  }
  table.Print();

  if (!args.json_path.empty()) {
    DCS_CHECK(reporter.WriteTo(args.json_path))
        << "cannot write " << args.json_path;
    std::printf("\nwrote %s\n", args.json_path.c_str());
  }
  return 0;
}
