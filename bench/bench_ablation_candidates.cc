// Ablation — why DCSGreedy (Algorithm 2) keeps THREE candidates.
//
// §IV-B argues no single candidate suffices: the heaviest edge is the
// worst-case safety net, Greedy(GD) handles mostly-positive graphs, and
// Greedy(GD+) rescues instances where negative weights mislead the signed
// peel. This bench runs all Table II datasets and reports, per dataset,
// each candidate's density and which one won — expect every column to win
// somewhere.

#include <cstdio>

#include "bench_util.h"
#include "core/dcs_greedy.h"
#include "util/table.h"

int main() {
  using namespace dcs;
  using namespace dcs::bench;
  const uint64_t seed = 20180416;
  std::printf("seed = %llu\n\n", static_cast<unsigned long long>(seed));

  const std::vector<BenchDataset> datasets =
      BuildBenchDatasets(seed, /*include_large=*/true);

  TablePrinter table(
      "Ablation: DCSGreedy candidate densities (ρ_D) per dataset",
      {"Data", "Setting", "GD Type", "Heaviest edge", "Greedy(GD)",
       "Greedy(GD+)", "Winner", "Final (after components)"});
  int wins[3] = {0, 0, 0};
  for (const BenchDataset& dataset : datasets) {
    Result<DcsadResult> result = RunDcsGreedy(dataset.gd);
    DCS_CHECK(result.ok());
    const double* c = result->candidate_densities;
    int winner = 0;
    for (int i = 1; i < 3; ++i) {
      if (c[i] > c[winner]) winner = i;
    }
    ++wins[winner];
    static const char* kNames[3] = {"edge", "GD", "GD+"};
    table.AddRow({dataset.data, dataset.setting, dataset.gd_type,
                  TablePrinter::Fmt(c[0], 2), TablePrinter::Fmt(c[1], 2),
                  TablePrinter::Fmt(c[2], 2), kNames[winner],
                  TablePrinter::Fmt(result->density, 2)});
  }
  table.Print();
  std::printf("wins: heaviest-edge=%d Greedy(GD)=%d Greedy(GD+)=%d\n",
              wins[0], wins[1], wins[2]);
  return 0;
}
