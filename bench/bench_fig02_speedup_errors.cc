// Figure 2 — (a) speedup of SEACD+Refine over SEA+Refine and (b) expansion
// error rate of SEA, both as a function of the positive-edge density m+/n.
//
// Sweeps Chung–Lu graphs (used directly as GD+, all weights positive) of
// growing average degree. Paper shape to reproduce: the speedup grows with
// density, and the error rate (#errors / n) correlates positively with
// m+/n (denser graphs make the loose replicator stopping rule fail more).

#include <cstdio>

#include "bench_util.h"
#include "core/newsea.h"
#include "util/table.h"
#include "util/timer.h"

int main() {
  using namespace dcs;
  using namespace dcs::bench;
  const uint64_t seed = 20180416;
  const VertexId n = 1200;
  std::printf("seed = %llu, n = %u per point\n\n",
              static_cast<unsigned long long>(seed), n);

  TablePrinter table(
      "Fig. 2 analog: SEACD speedup and SEA expansion errors vs density",
      {"avg.deg", "m+/n", "SEACD+Refine (s)", "SEA+Refine (s)",
       "SpeedUp (b/a)", "#Errors in SEA", "Error rate (#/n)"});

  for (const double avg_degree : {2.0, 4.0, 8.0, 16.0, 24.0, 32.0, 40.0}) {
    Rng rng(seed + static_cast<uint64_t>(avg_degree));
    ChungLuParams params;
    params.n = n;
    params.average_degree = avg_degree;
    params.exponent = 2.3;
    params.weight_geometric_p = 0.5;
    Result<Graph> g = ChungLu(params, &rng);
    DCS_CHECK(g.ok());
    const double density =
        static_cast<double>(g->NumEdges()) / static_cast<double>(n);

    DcsgaOptions cd_options;
    cd_options.shrink = ShrinkKind::kCoordinateDescent;
    WallTimer timer;
    Result<DcsgaResult> seacd = RunDcsgaAllInits(*g, cd_options);
    const double seacd_seconds = timer.Seconds();
    DCS_CHECK(seacd.ok());

    DcsgaOptions rep_options;
    rep_options.shrink = ShrinkKind::kReplicator;
    timer.Restart();
    Result<DcsgaResult> sea = RunDcsgaAllInits(*g, rep_options);
    const double sea_seconds = timer.Seconds();
    DCS_CHECK(sea.ok());

    table.AddRow(
        {TablePrinter::Fmt(avg_degree, 1), TablePrinter::Fmt(density, 2),
         TablePrinter::Fmt(seacd_seconds, 3),
         TablePrinter::Fmt(sea_seconds, 3),
         TablePrinter::Fmt(sea_seconds / std::max(seacd_seconds, 1e-9), 1),
         TablePrinter::Fmt(uint64_t{sea->expansion_errors}),
         TablePrinter::Fmt(
             static_cast<double>(sea->expansion_errors) / n, 4)});
    std::fflush(stdout);
  }
  table.Print();
  return 0;
}
