// Failure-domain hardening: the cost of carrying the hooks, and the cost of
// surviving the faults.
//
// Three cycles per dataset:
//   baseline   no store, fault registry disarmed — the reference wall time
//              and the bit-identity oracle
//   counted    every fault site armed with prob=0: behaviorally inert, but
//              the per-site hit counters now measure exactly how many hook
//              crossings one cycle executes — the input to the disarmed-
//              overhead bound below
//   faulted    store attached and the storm armed: every other append
//              fails (recovered by the store's bounded retry), every third
//              read fails (ditto), every other flock degrades to lockless —
//              the cycle must still answer every request, bit-identically
//
// The two numbers the bench exists to pin:
//   overhead_pct  hook crossings × measured disarmed FaultHit cost, as a
//                 percentage of the baseline wall — DCS_CHECKed < 1%, the
//                 "shipping the hooks costs nothing" contract
//   recovery_ms   faulted wall minus baseline wall — what the injected
//                 fault storm (plus retry/backoff) added end to end
//
// `--json out.json` emits the BENCH_fault_recovery.json record tracked in
// the repo; `--smoke` shrinks the dataset for the ctest `bench_smoke_fault`
// wiring.

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/artifact_store.h"
#include "api/miner_session.h"
#include "api/mining.h"
#include "bench_util.h"
#include "util/fault_injection.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace dcs;
using namespace dcs::bench;

// Two pipeline keys, so the store sees multiple append/read crossings and
// the GA artifacts (GD+, smart bounds) are exercised.
std::vector<MiningRequest> RequestMix() {
  std::vector<MiningRequest> requests(2);
  requests[0].measure = Measure::kGraphAffinity;
  requests[0].alpha = 1.0;
  requests[1].measure = Measure::kGraphAffinity;
  requests[1].alpha = 2.0;
  return requests;
}

struct CycleResult {
  double wall_ms = 0.0;
  uint64_t injected_faults = 0;
  uint64_t store_retries = 0;
  uint64_t store_write_errors = 0;
  uint64_t hook_hits = 0;  // counted cycle only: hook crossings executed
  MiningResponse first_response;
  std::string serialized;  // all responses, for the bit-identity check
};

// One cycle: open the store (when `store_path` is non-empty), create a
// session, answer the request mix. The async write-back settles OUTSIDE the
// timed window (the hot path never blocks on disk) but before the failure
// counters are read, so retries/write errors from this cycle are visible.
CycleResult RunCycle(const Graph& g1, const Graph& g2,
                     const std::string& store_path) {
  const std::vector<MiningRequest> requests = RequestMix();
  CycleResult out;
  std::shared_ptr<ArtifactStore> store;

  WallTimer timer;
  if (!store_path.empty()) {
    Result<std::shared_ptr<ArtifactStore>> opened =
        ArtifactStore::Open(store_path);
    DCS_CHECK(opened.ok()) << opened.status().ToString();
    store = std::move(opened).value();
  }
  SessionOptions options;
  options.artifact_store = store;
  Result<MinerSession> session = MinerSession::Create(g1, g2, options);
  DCS_CHECK(session.ok()) << session.status().ToString();
  bool first = true;
  for (const MiningRequest& request : requests) {
    Result<MiningResponse> response = session->Mine(request);
    DCS_CHECK(response.ok()) << response.status().ToString();
    if (first) {
      out.first_response = *response;
      first = false;
    }
    out.serialized += SerializeAffinityRanking(*response);
    out.serialized += "#";
  }
  out.wall_ms = timer.Seconds() * 1e3;

  if (store != nullptr) {
    const Status settled = store->Flush();
    DCS_CHECK(settled.ok()) << "write-back failed past the retry budget: "
                            << settled.ToString();
    const ArtifactStoreStats stats = store->stats();
    out.store_retries = stats.io_retries;
    out.store_write_errors = stats.write_errors;
  }
  FaultInjection& faults = FaultInjection::Global();
  out.injected_faults = faults.total_fires();
  for (const char* site :
       {fault_sites::kStoreRead, fault_sites::kStoreAppend,
        fault_sites::kStoreFlock, fault_sites::kCacheBuild,
        fault_sites::kPoolDispatch}) {
    out.hook_hits += faults.hits(site);
  }
  return out;
}

// Measures the disarmed FaultHit cost: the one relaxed atomic load every
// hook crossing pays when nothing is armed. The accumulator keeps the loop
// from being optimized away (a disarmed hit can never return true).
double DisarmedNsPerCall(uint64_t iters) {
  DCS_CHECK(!FaultInjection::armed());
  uint64_t fired = 0;
  WallTimer timer;
  for (uint64_t i = 0; i < iters; ++i) {
    fired += FaultHit("bench.noop") ? 1 : 0;
  }
  const double ns = timer.Seconds() * 1e9;
  DCS_CHECK(fired == 0) << "disarmed registry fired";
  return ns / static_cast<double>(iters);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  const uint64_t seed = 20180607;
  std::printf("seed = %llu, hardware_concurrency = %u%s\n\n",
              static_cast<unsigned long long>(seed),
              std::thread::hardware_concurrency(),
              args.smoke ? " (smoke mode)" : "");

  struct PairDataset {
    std::string label;
    Graph g1;
    Graph g2;
  };
  std::vector<PairDataset> datasets;
  if (args.smoke) {
    const CoauthorData tiny = MakeDblpAnalog(seed, /*num_authors=*/600);
    datasets.push_back({"DBLP-tiny", tiny.g1, tiny.g2});
  } else {
    const CoauthorData dblp = MakeDblpAnalog(seed);
    datasets.push_back({"DBLP", dblp.g1, dblp.g2});
    const CoauthorData dblp_c = MakeDblpCAnalog(seed + 4);
    datasets.push_back({"DBLP-C", dblp_c.g1, dblp_c.g2});
  }

  const uint64_t overhead_iters = args.smoke ? 2'000'000ull : 20'000'000ull;
  const double ns_per_call = DisarmedNsPerCall(overhead_iters);

  JsonReporter reporter("fault_recovery", seed);
  TablePrinter table(
      "Fault injection: disarmed-hook overhead and recovery under faults",
      {"Data", "Cycle", "Wall ms", "Faults", "Retries", "WriteErr",
       "Recovery ms", "Overhead %", "Bit-identical?"});
  for (const PairDataset& dataset : datasets) {
    const std::string store_path =
        (std::filesystem::temp_directory_path() /
         ("dcs_bench_fault_recovery_" + dataset.label + ".dcs"))
            .string();

    struct Cycle {
      const char* name;
      CycleResult result;
    };
    std::vector<Cycle> cycles;

    FaultInjection::Global().Reset();
    cycles.push_back({"baseline", RunCycle(dataset.g1, dataset.g2, "")});

    // prob=0: hits are counted at every crossing, nothing ever fires —
    // the cycle is behaviorally identical while measuring hook traffic.
    std::filesystem::remove(store_path);
    DCS_CHECK(FaultInjection::Global()
                  .ArmText("store.read:prob=0;store.append:prob=0;"
                           "store.flock:prob=0;cache.build:prob=0;"
                           "pool.dispatch:prob=0")
                  .ok());
    cycles.push_back({"counted", RunCycle(dataset.g1, dataset.g2, store_path)});

    // The recoverable storm: every fault below is absorbed by a hardening
    // layer (bounded retry for read/append, lockless degrade for flock), so
    // every request still succeeds — slower, never wrong.
    std::filesystem::remove(store_path);
    DCS_CHECK(FaultInjection::Global()
                  .ArmText("store.append:every=2;store.read:every=3;"
                           "store.flock:every=2")
                  .ok());
    cycles.push_back({"faulted", RunCycle(dataset.g1, dataset.g2, store_path)});
    FaultInjection::Global().Reset();
    std::filesystem::remove(store_path);

    // Per-cycle bit-identity: hooks, counters and injected faults must
    // never reach the mined subgraphs.
    for (const Cycle& cycle : cycles) {
      DCS_CHECK(cycle.result.serialized == cycles[0].result.serialized)
          << dataset.label << " / " << cycle.name
          << " diverged from the fault-free baseline";
    }
    DCS_CHECK(cycles[1].result.hook_hits > 0) << "counted cycle saw no hooks";
    DCS_CHECK(cycles[1].result.injected_faults == 0) << "prob=0 fired";
    DCS_CHECK(cycles[2].result.injected_faults > 0) << "storm never fired";
    DCS_CHECK(cycles[2].result.store_retries > 0) << "no retry was needed";
    DCS_CHECK(cycles[2].result.store_write_errors == 0)
        << "a recoverable fault leaked into a write error";

    // The disarmed-overhead bound: crossings × per-call cost vs. the
    // baseline wall. This is the cost of SHIPPING the hooks disarmed.
    const double overhead_pct =
        cycles[0].result.wall_ms > 0.0
            ? 100.0 * (static_cast<double>(cycles[1].result.hook_hits) *
                       ns_per_call / 1e6) /
                  cycles[0].result.wall_ms
            : 0.0;
    DCS_CHECK(overhead_pct < 1.0)
        << "disarmed hooks cost " << overhead_pct << "% of the baseline wall";
    const double recovery_ms =
        cycles[2].result.wall_ms - cycles[0].result.wall_ms;

    for (const Cycle& cycle : cycles) {
      const CycleResult& r = cycle.result;
      const MiningTelemetry& telemetry = r.first_response.telemetry;
      BenchRecord record;
      record.dataset = dataset.label + " / " + cycle.name;
      record.threads = 1;
      record.wall_ms = r.wall_ms;
      record.initializations = telemetry.initializations;
      record.pruned_seeds = telemetry.pruned_seeds;
      record.affinity = r.first_response.graph_affinity.empty()
                            ? 0.0
                            : r.first_response.graph_affinity[0].value;
      record.extra = {
          {"injected_faults", static_cast<double>(r.injected_faults)},
          {"store_retries", static_cast<double>(r.store_retries)},
          {"store_write_errors", static_cast<double>(r.store_write_errors)},
          {"recovery_ms", recovery_ms},
          {"overhead_pct", overhead_pct},
      };
      reporter.Add(record);
      table.AddRow({dataset.label, cycle.name, TablePrinter::Fmt(r.wall_ms, 2),
                    TablePrinter::Fmt(r.injected_faults),
                    TablePrinter::Fmt(r.store_retries),
                    TablePrinter::Fmt(r.store_write_errors),
                    TablePrinter::Fmt(recovery_ms, 2),
                    TablePrinter::Fmt(overhead_pct, 4), "Yes"});
    }
    std::fflush(stdout);
  }
  table.Print();
  std::printf("\ndisarmed FaultHit: %.2f ns/call over %llu calls\n",
              ns_per_call,
              static_cast<unsigned long long>(overhead_iters));

  if (!args.json_path.empty()) {
    DCS_CHECK(reporter.WriteTo(args.json_path))
        << "cannot write " << args.json_path;
    std::printf("wrote %s\n", args.json_path.c_str());
  }
  return 0;
}
