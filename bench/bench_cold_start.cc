// Persistent artifact store: cold-start vs warm-boot restart cost.
//
// Models the restart scenario the store exists for: a process dies (or a
// nightly job re-launches) and a fresh MinerSession must answer its first
// request over the same (G1, G2) pair. Without a store the session pays the
// full pipeline prefix again — difference graph, GD+, smart-init bounds.
// With a store the prefix is hydrated from disk at attach time. Four cycles
// per dataset:
//   no-store   fresh session, no persistence (the pre-store baseline)
//   cold       store attached but empty — pays the build AND writes it back
//   warm       fresh process reopens the store file — pure hydration
//   corrupt    a bit of the store file is flipped first — the session must
//              detect it, silently rebuild, and overwrite
// Every cycle's responses are checked bit-identical against the no-store
// run — the store determinism bar — and the JSON rows carry the store
// telemetry so the committed BENCH_cold_start.json shows the warm speedup.
//
// `--json out.json` emits the BENCH_cold_start.json record tracked in the
// repo; `--smoke` shrinks the dataset so the ctest `bench_smoke_store`
// wiring finishes in well under a second.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/artifact_store.h"
#include "api/miner_session.h"
#include "api/mining.h"
#include "bench_util.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace dcs;
using namespace dcs::bench;

// The restart request mix: two pipeline keys, so a warm boot hydrates more
// than one record and the GA artifacts (GD+, smart bounds) are exercised.
std::vector<MiningRequest> RequestMix() {
  std::vector<MiningRequest> requests(2);
  requests[0].measure = Measure::kGraphAffinity;
  requests[0].alpha = 1.0;
  requests[1].measure = Measure::kGraphAffinity;
  requests[1].alpha = 2.0;
  return requests;
}

struct CycleResult {
  double wall_ms = 0.0;            // open + create + full request mix
  double first_response_ms = 0.0;  // open + create + first response only
  uint64_t store_hits = 0;
  uint64_t store_misses = 0;
  uint64_t store_corrupt_pages = 0;
  MiningResponse first_response;
  std::string serialized;  // all responses, for the bit-identity check
};

// One simulated process lifetime: open the store (when `store_path` is
// non-empty), create a session over (g1, g2), answer the request mix. The
// async write-back is flushed OUTSIDE the timed window — by design the hot
// path never blocks on disk, and the bench measures what a client sees.
CycleResult RunCycle(const Graph& g1, const Graph& g2,
                     const std::string& store_path) {
  const std::vector<MiningRequest> requests = RequestMix();
  CycleResult out;
  std::shared_ptr<ArtifactStore> store;

  WallTimer timer;
  if (!store_path.empty()) {
    Result<std::shared_ptr<ArtifactStore>> opened =
        ArtifactStore::Open(store_path);
    DCS_CHECK(opened.ok()) << opened.status().ToString();
    store = std::move(opened).value();
  }
  SessionOptions options;
  options.artifact_store = store;
  Result<MinerSession> session = MinerSession::Create(g1, g2, options);
  DCS_CHECK(session.ok()) << session.status().ToString();
  bool first = true;
  for (const MiningRequest& request : requests) {
    Result<MiningResponse> response = session->Mine(request);
    DCS_CHECK(response.ok()) << response.status().ToString();
    if (first) {
      out.first_response_ms = timer.Seconds() * 1e3;
      out.first_response = *response;
      first = false;
    }
    out.store_corrupt_pages = response->telemetry.store_corrupt_pages;
    out.serialized += SerializeAffinityRanking(*response);
    out.serialized += "#";
  }
  out.wall_ms = timer.Seconds() * 1e3;

  out.store_hits = session->num_store_hits();
  out.store_misses = session->num_store_misses();
  if (store != nullptr) store->Flush();
  return out;
}

void FlipOneBit(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  DCS_CHECK(in.good()) << "cannot read " << path;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  DCS_CHECK(bytes.size() > 64) << "store file implausibly small";
  bytes[bytes.size() / 2] ^= 0x04;
  std::ofstream outf(path, std::ios::binary | std::ios::trunc);
  outf.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  DCS_CHECK(outf.good()) << "cannot rewrite " << path;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  const uint64_t seed = 20180416;
  std::printf("seed = %llu, hardware_concurrency = %u%s\n\n",
              static_cast<unsigned long long>(seed),
              std::thread::hardware_concurrency(),
              args.smoke ? " (smoke mode)" : "");

  struct PairDataset {
    std::string label;
    Graph g1;
    Graph g2;
  };
  std::vector<PairDataset> datasets;
  if (args.smoke) {
    const CoauthorData tiny = MakeDblpAnalog(seed, /*num_authors=*/600);
    datasets.push_back({"DBLP-tiny", tiny.g1, tiny.g2});
  } else {
    const CoauthorData dblp = MakeDblpAnalog(seed);
    datasets.push_back({"DBLP", dblp.g1, dblp.g2});
    const CoauthorData dblp_c = MakeDblpCAnalog(seed + 4);
    datasets.push_back({"DBLP-C", dblp_c.g1, dblp_c.g2});
  }

  JsonReporter reporter("cold_start", seed);
  TablePrinter table(
      "Persistent store: restart cost, cold vs warm vs corrupt-rebuild",
      {"Data", "Cycle", "Wall ms", "First ms", "Hits", "Misses", "Corrupt",
       "Speedup", "Bit-identical?"});
  for (const PairDataset& dataset : datasets) {
    const std::string store_path =
        (std::filesystem::temp_directory_path() /
         ("dcs_bench_cold_start_" + dataset.label + ".dcs"))
            .string();
    std::filesystem::remove(store_path);

    struct Cycle {
      const char* name;
      CycleResult result;
    };
    std::vector<Cycle> cycles;
    cycles.push_back({"no-store", RunCycle(dataset.g1, dataset.g2, "")});
    cycles.push_back({"cold", RunCycle(dataset.g1, dataset.g2, store_path)});
    cycles.push_back({"warm", RunCycle(dataset.g1, dataset.g2, store_path)});
    FlipOneBit(store_path);
    cycles.push_back({"corrupt", RunCycle(dataset.g1, dataset.g2, store_path)});

    // The determinism bar: every cycle — including the rebuild after
    // corruption — answers bit-identically to the storeless baseline.
    for (const Cycle& cycle : cycles) {
      DCS_CHECK(cycle.result.serialized == cycles[0].result.serialized)
          << dataset.label << " / " << cycle.name
          << " diverged from the no-store baseline";
    }
    // The store contract sanity-checks the bench setup itself.
    DCS_CHECK(cycles[1].result.store_misses > 0) << "cold cycle never missed";
    DCS_CHECK(cycles[2].result.store_hits > 0) << "warm cycle never hit";
    DCS_CHECK(cycles[2].result.store_misses == 0) << "warm cycle missed";
    DCS_CHECK(cycles[3].result.store_corrupt_pages > 0)
        << "corrupt cycle saw no corruption";

    const double cold_wall = cycles[1].result.wall_ms;
    for (const Cycle& cycle : cycles) {
      const CycleResult& r = cycle.result;
      const double speedup = r.wall_ms > 0.0 ? cold_wall / r.wall_ms : 0.0;
      const MiningTelemetry& telemetry = r.first_response.telemetry;
      BenchRecord record;
      record.dataset = dataset.label + " / " + cycle.name;
      record.threads = 1;
      record.wall_ms = r.wall_ms;
      record.initializations = telemetry.initializations;
      record.pruned_seeds = telemetry.pruned_seeds;
      record.affinity = r.first_response.graph_affinity.empty()
                            ? 0.0
                            : r.first_response.graph_affinity[0].value;
      record.extra = {
          {"first_response_ms", r.first_response_ms},
          {"store_hits", static_cast<double>(r.store_hits)},
          {"store_misses", static_cast<double>(r.store_misses)},
          {"store_corrupt_pages", static_cast<double>(r.store_corrupt_pages)},
          {"speedup", speedup},
      };
      reporter.Add(record);
      table.AddRow({dataset.label, cycle.name, TablePrinter::Fmt(r.wall_ms, 2),
                    TablePrinter::Fmt(r.first_response_ms, 2),
                    TablePrinter::Fmt(r.store_hits),
                    TablePrinter::Fmt(r.store_misses),
                    TablePrinter::Fmt(r.store_corrupt_pages),
                    TablePrinter::Fmt(speedup, 2), "Yes"});
    }
    std::filesystem::remove(store_path);
    std::fflush(stdout);
  }
  table.Print();

  if (!args.json_path.empty()) {
    DCS_CHECK(reporter.WriteTo(args.json_path))
        << "cannot write " << args.json_path;
    std::printf("\nwrote %s\n", args.json_path.c_str());
  }
  return 0;
}
