// Async submit/poll service throughput: submit→done latency under a full
// queue.
//
// Plays the heavy-traffic serving shape end to end: a MiningService over
// one session absorbs a burst of mixed mining jobs with streaming updates
// fenced between them, at several session thread budgets. Reports
// throughput (jobs/s), mean/p95 submit→done latency and mean queue wait —
// the record schema check_bench_json.sh validates for
// BENCH_async_throughput.json.
//
// `--json out.json` emits the committed record; `--smoke` shrinks the
// dataset and burst so the ctest `bench_smoke` wiring stays fast.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "api/miner_session.h"
#include "api/mining.h"
#include "api/mining_service.h"
#include "bench_util.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace dcs;
  using namespace dcs::bench;
  const BenchArgs args = ParseBenchArgs(argc, argv);
  const uint64_t seed = 20180416;
  std::printf("seed = %llu, hardware_concurrency = %u%s\n\n",
              static_cast<unsigned long long>(seed),
              std::thread::hardware_concurrency(),
              args.smoke ? " (smoke mode)" : "");

  const CoauthorData data =
      MakeDblpAnalog(seed, /*num_authors=*/args.smoke ? 600 : 4000);
  const char* dataset_label =
      args.smoke ? "DBLP-tiny / async burst" : "DBLP / async burst";
  const size_t num_jobs = args.smoke ? 12 : 96;
  const std::vector<uint32_t> budgets = args.smoke
                                            ? std::vector<uint32_t>{1, 2}
                                            : std::vector<uint32_t>{1, 2, 4, 8};

  JsonReporter reporter("async_throughput", seed);
  TablePrinter table("Async service throughput: submit -> done",
                     {"Budget", "Jobs", "Wall ms", "Jobs/s", "Mean lat ms",
                      "P95 lat ms", "Mean queue ms"});

  for (const uint32_t budget : budgets) {
    SessionOptions options;
    options.max_parallelism = budget;
    Result<MinerSession> session =
        MinerSession::Create(data.g1, data.g2, options);
    DCS_CHECK(session.ok()) << session.status().ToString();
    MiningService service(std::move(*session));
    Rng rng(seed + budget);

    // The burst: mixed measures and pipelines, one streaming update fenced
    // into the queue every 8 jobs (a random G2 edge strengthens — later
    // jobs mine the drifted snapshot).
    WallTimer wall;
    std::vector<JobId> ids;
    ids.reserve(num_jobs);
    for (size_t i = 0; i < num_jobs; ++i) {
      if (i % 8 == 4) {
        const VertexId u = static_cast<VertexId>(
            rng.NextBounded(data.g2.NumVertices() - 1));
        const Status updated =
            service.ApplyUpdate(UpdateSide::kG2, u, u + 1, 0.5);
        DCS_CHECK(updated.ok()) << updated.ToString();
      }
      MiningRequest request;
      request.measure = i % 3 == 2 ? Measure::kBoth : Measure::kGraphAffinity;
      request.alpha = i % 2 == 0 ? 1.0 : 2.0;
      request.ga_solver.parallelism = 0;  // auto: whole session budget
      Result<JobId> id = service.Submit(request);
      DCS_CHECK(id.ok()) << id.status().ToString();
      ids.push_back(*id);
    }

    std::vector<double> latencies_ms;
    latencies_ms.reserve(num_jobs);
    double queue_ms_total = 0.0;
    uint64_t initializations = 0;
    uint64_t pruned = 0;
    double affinity_checksum = 0.0;
    for (const JobId id : ids) {
      Result<JobStatus> status = service.Wait(id);
      DCS_CHECK(status.ok()) << status.status().ToString();
      DCS_CHECK(status->state == JobState::kDone)
          << "job " << id << " ended " << JobStateToString(status->state)
          << ": " << status->failure.ToString();
      latencies_ms.push_back((status->queue_seconds + status->run_seconds) *
                             1e3);
      queue_ms_total += status->queue_seconds * 1e3;
      initializations += status->response.telemetry.initializations;
      pruned += status->response.telemetry.pruned_seeds;
      if (!status->response.graph_affinity.empty()) {
        affinity_checksum += status->response.graph_affinity.front().value;
      }
    }
    const double wall_ms = wall.Millis();

    const double mean_ms = MeanOf(latencies_ms);
    const double p95_ms = P95Of(latencies_ms);
    const double mean_queue_ms =
        queue_ms_total / static_cast<double>(num_jobs);
    const double throughput =
        static_cast<double>(num_jobs) / (wall_ms / 1e3);

    BenchRecord record{dataset_label, budget,  wall_ms,
                       initializations, pruned, affinity_checksum};
    record.extra = {{"jobs", static_cast<double>(num_jobs)},
                    {"throughput_jobs_per_s", throughput},
                    {"mean_latency_ms", mean_ms},
                    {"p95_latency_ms", p95_ms},
                    {"mean_queue_ms", mean_queue_ms}};
    reporter.Add(std::move(record));
    table.AddRow({TablePrinter::Fmt(uint64_t{budget}),
                  TablePrinter::Fmt(uint64_t{num_jobs}),
                  TablePrinter::Fmt(wall_ms, 2),
                  TablePrinter::Fmt(throughput, 1),
                  TablePrinter::Fmt(mean_ms, 2), TablePrinter::Fmt(p95_ms, 2),
                  TablePrinter::Fmt(mean_queue_ms, 2)});
    std::fflush(stdout);
  }
  table.Print();

  if (!args.json_path.empty()) {
    DCS_CHECK(reporter.WriteTo(args.json_path))
        << "cannot write " << args.json_path;
    std::printf("\nwrote %s\n", args.json_path.c_str());
  }
  return 0;
}
