// Micro-benchmark of the kernel layer (core/kernels.h): cycles-per-edge for
// each named hot loop — difference-graph merge, discretize map, GD+ clamp
// sweep, dx (affinity) accumulation, support reduction, gradient-extremes
// scan — measured twice per record, once pinned to the scalar reference and
// once through automatic dispatch, plus an end-to-end mine row per dataset
// (reference builders + forced-scalar solve vs. kernel builders + dispatched
// solve on the same pair).
//
// Every bench cycle asserts the exactness contract before it counts: the
// dispatched output must be bit-identical to the scalar reference (memcmp on
// packed arrays, ContentFingerprint on graphs, full-precision serialization
// on solver results). A cycle that diverges aborts the bench — the committed
// BENCH_micro_kernels.json can never carry a speedup bought with drift.
//
// `--json out.json` emits the BENCH_micro_kernels.json record tracked in the
// repo; `--smoke` shrinks the dataset and repetition counts for the ctest
// `bench_smoke_kernels` wiring.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

#include "bench_util.h"
#include "core/embedding.h"
#include "core/kernels.h"
#include "core/newsea.h"
#include "graph/difference.h"
#include "graph/graph.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace dcs;
using namespace dcs::bench;

// TSC on x86-64 (what "cycles" means in the report); monotonic nanoseconds
// elsewhere, so cycles-per-edge stays a meaningful relative measure.
inline uint64_t CyclesNow() {
#if defined(__x86_64__)
  return __rdtsc();
#else
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

struct MicroResult {
  double scalar_cycles = 0.0;  ///< total cycles across reps, forced scalar
  double kernel_cycles = 0.0;  ///< total cycles across reps, dispatched
  double kernel_ms = 0.0;      ///< wall ms of the dispatched reps
  uint64_t edges = 0;          ///< elements processed per rep
  bool bit_identical = true;   ///< every cycle's outputs matched bitwise
};

void AddRecord(JsonReporter* reporter, TablePrinter* table,
               const std::string& dataset, const std::string& kernel,
               uint32_t reps, const MicroResult& r) {
  DCS_CHECK(r.bit_identical) << kernel << " on " << dataset
                             << ": dispatched output diverged from scalar";
  const double denom = static_cast<double>(r.edges) * reps;
  const double cpe = denom > 0 ? r.kernel_cycles / denom : 0.0;
  const double cpe_scalar = denom > 0 ? r.scalar_cycles / denom : 0.0;
  const double speedup = r.kernel_cycles > 0
                             ? r.scalar_cycles / r.kernel_cycles
                             : 1.0;
  BenchRecord record;
  record.dataset = dataset + " / " + kernel;
  record.threads = 1;
  record.wall_ms = r.kernel_ms;
  record.extra = {
      {"edges", static_cast<double>(r.edges)},
      {"cycles_per_edge", cpe},
      {"cycles_per_edge_scalar", cpe_scalar},
      {"speedup", speedup},
      {"bit_identical", r.bit_identical ? 1.0 : 0.0},
  };
  reporter->Add(record);
  table->AddRow({dataset, kernel, TablePrinter::Fmt(uint64_t{r.edges}),
                 TablePrinter::Fmt(cpe_scalar, 2), TablePrinter::Fmt(cpe, 2),
                 TablePrinter::Fmt(speedup, 2),
                 r.bit_identical ? "Yes" : "No"});
}

// --- difference-graph merge -------------------------------------------------

MicroResult BenchDifferenceMerge(const Graph& g1, const Graph& g2,
                                 uint32_t reps) {
  MicroResult r;
  r.edges = g1.NumEdges() + g2.NumEdges();
  Result<Graph> reference = BuildDifferenceGraph(g1, g2);
  DCS_CHECK(reference.ok());
  const uint64_t want = reference->ContentFingerprint();
  WallTimer timer;
  for (uint32_t i = 0; i < reps; ++i) {
    const uint64_t t0 = CyclesNow();
    Result<Graph> ref_run = BuildDifferenceGraph(g1, g2);
    const uint64_t t1 = CyclesNow();
    Result<Graph> kernel_run = GraphKernels::BuildDifferenceGraph(g1, g2);
    const uint64_t t2 = CyclesNow();
    DCS_CHECK(ref_run.ok() && kernel_run.ok());
    r.scalar_cycles += static_cast<double>(t1 - t0);
    r.kernel_cycles += static_cast<double>(t2 - t1);
    r.bit_identical = r.bit_identical &&
                      ref_run->ContentFingerprint() == want &&
                      kernel_run->ContentFingerprint() == want &&
                      kernel_run->NumEdges() == ref_run->NumEdges();
  }
  r.kernel_ms = 0.0;  // folded into the cycle counts; wall kept for e2e rows
  return r;
}

MicroResult BenchPositivePart(const Graph& gd, uint32_t reps) {
  MicroResult r;
  r.edges = gd.NumEdges();
  const uint64_t want = gd.PositivePart().ContentFingerprint();
  for (uint32_t i = 0; i < reps; ++i) {
    const uint64_t t0 = CyclesNow();
    const Graph reference = gd.PositivePart();
    const uint64_t t1 = CyclesNow();
    const Graph kernel = GraphKernels::PositivePart(gd);
    const uint64_t t2 = CyclesNow();
    r.scalar_cycles += static_cast<double>(t1 - t0);
    r.kernel_cycles += static_cast<double>(t2 - t1);
    r.bit_identical = r.bit_identical &&
                      reference.ContentFingerprint() == want &&
                      kernel.ContentFingerprint() == want &&
                      kernel.NumEdges() == reference.NumEdges();
  }
  r.kernel_ms = 0.0;
  return r;
}

// --- packed elementwise kernels ---------------------------------------------

std::vector<double> PackedWeights(const Graph& gd) {
  std::vector<VertexId> targets;
  std::vector<double> weights;
  StageAdjacencySoa(gd, &targets, &weights);
  return weights;
}

MicroResult BenchDiscretizeMap(const std::vector<double>& packed,
                               uint32_t reps) {
  DiscretizeSpec spec;
  MicroResult r;
  r.edges = packed.size();
  std::vector<double> scalar_out(packed.size());
  std::vector<double> kernel_out(packed.size());
  for (uint32_t i = 0; i < reps; ++i) {
    ForceKernelIsa(KernelIsa::kScalar);
    const uint64_t t0 = CyclesNow();
    DiscretizeMapPacked(packed.data(), scalar_out.data(), packed.size(), spec);
    const uint64_t t1 = CyclesNow();
    ResetForcedKernelIsa();
    const uint64_t t2 = CyclesNow();
    DiscretizeMapPacked(packed.data(), kernel_out.data(), packed.size(), spec);
    const uint64_t t3 = CyclesNow();
    r.scalar_cycles += static_cast<double>(t1 - t0);
    r.kernel_cycles += static_cast<double>(t3 - t2);
    r.bit_identical =
        r.bit_identical &&
        std::memcmp(scalar_out.data(), kernel_out.data(),
                    packed.size() * sizeof(double)) == 0;
  }
  return r;
}

MicroResult BenchSeedOrderSort(const std::vector<double>& mu, uint32_t reps) {
  MicroResult r;
  r.edges = mu.size();
  std::vector<VertexId> scalar_order;
  std::vector<VertexId> kernel_order;
  for (uint32_t i = 0; i < reps; ++i) {
    ForceKernelIsa(KernelIsa::kScalar);
    const uint64_t t0 = CyclesNow();
    SeedOrderSort(mu, &scalar_order);
    const uint64_t t1 = CyclesNow();
    ResetForcedKernelIsa();
    const uint64_t t2 = CyclesNow();
    SeedOrderSort(mu, &kernel_order);
    const uint64_t t3 = CyclesNow();
    r.scalar_cycles += static_cast<double>(t1 - t0);
    r.kernel_cycles += static_cast<double>(t3 - t2);
    r.bit_identical = r.bit_identical && scalar_order == kernel_order;
  }
  return r;
}

MicroResult BenchClampSweep(const std::vector<double>& packed, uint32_t reps) {
  const double cap = 2.0;  // bites on real weights, passes small ones through
  MicroResult r;
  r.edges = packed.size();
  std::vector<double> scalar_out;
  std::vector<double> kernel_out;
  for (uint32_t i = 0; i < reps; ++i) {
    scalar_out = packed;
    kernel_out = packed;
    ForceKernelIsa(KernelIsa::kScalar);
    const uint64_t t0 = CyclesNow();
    ClampAbovePacked(scalar_out.data(), scalar_out.size(), cap);
    const uint64_t t1 = CyclesNow();
    ResetForcedKernelIsa();
    const uint64_t t2 = CyclesNow();
    ClampAbovePacked(kernel_out.data(), kernel_out.size(), cap);
    const uint64_t t3 = CyclesNow();
    r.scalar_cycles += static_cast<double>(t1 - t0);
    r.kernel_cycles += static_cast<double>(t3 - t2);
    r.bit_identical =
        r.bit_identical &&
        std::memcmp(scalar_out.data(), kernel_out.data(),
                    scalar_out.size() * sizeof(double)) == 0;
  }
  return r;
}

// --- dx accumulation over the staged adjacency ------------------------------

MicroResult BenchAxpyAccumulate(const Graph& gd_plus, uint32_t reps) {
  std::vector<VertexId> targets;
  std::vector<double> weights;
  StageAdjacencySoa(gd_plus, &targets, &weights);
  MicroResult r;
  r.edges = targets.size();
  const VertexId n = gd_plus.NumVertices();
  std::vector<double> dx_scalar(n, 0.0), dx_kernel(n, 0.0);
  const double delta = 1.0 / 3.0;
  for (uint32_t i = 0; i < reps; ++i) {
    std::fill(dx_scalar.begin(), dx_scalar.end(), 0.0);
    std::fill(dx_kernel.begin(), dx_kernel.end(), 0.0);
    ForceKernelIsa(KernelIsa::kScalar);
    const uint64_t t0 = CyclesNow();
    size_t cursor = 0;
    for (VertexId u = 0; u < n; ++u) {
      const size_t degree = gd_plus.Degree(u);
      AxpyScatter(targets.data() + cursor, weights.data() + cursor, degree,
                  delta, dx_scalar.data());
      cursor += degree;
    }
    const uint64_t t1 = CyclesNow();
    ResetForcedKernelIsa();
    const uint64_t t2 = CyclesNow();
    cursor = 0;
    for (VertexId u = 0; u < n; ++u) {
      const size_t degree = gd_plus.Degree(u);
      AxpyScatter(targets.data() + cursor, weights.data() + cursor, degree,
                  delta, dx_kernel.data());
      cursor += degree;
    }
    const uint64_t t3 = CyclesNow();
    r.scalar_cycles += static_cast<double>(t1 - t0);
    r.kernel_cycles += static_cast<double>(t3 - t2);
    r.bit_identical = r.bit_identical &&
                      std::memcmp(dx_scalar.data(), dx_kernel.data(),
                                  dx_scalar.size() * sizeof(double)) == 0;
  }
  return r;
}

// --- support reduction and extremes scan ------------------------------------

MicroResult BenchSupportReduce(VertexId n, uint32_t reps) {
  Rng rng(77);
  std::vector<VertexId> support(n);
  std::vector<double> x(n), dx(n);
  for (VertexId v = 0; v < n; ++v) {
    support[v] = v;
    x[v] = rng.NextDouble();
    dx[v] = (rng.NextDouble() - 0.5) * 4.0;
  }
  MicroResult r;
  r.edges = n;
  for (uint32_t i = 0; i < reps; ++i) {
    ForceKernelIsa(KernelIsa::kScalar);
    const uint64_t t0 = CyclesNow();
    const double scalar_sum =
        SupportReduce(support.data(), support.size(), x.data(), dx.data(),
                      /*allow_reassociation=*/false);
    const uint64_t t1 = CyclesNow();
    ResetForcedKernelIsa();
    const uint64_t t2 = CyclesNow();
    const double kernel_sum =
        SupportReduce(support.data(), support.size(), x.data(), dx.data(),
                      /*allow_reassociation=*/false);
    const uint64_t t3 = CyclesNow();
    r.scalar_cycles += static_cast<double>(t1 - t0);
    r.kernel_cycles += static_cast<double>(t3 - t2);
    r.bit_identical =
        r.bit_identical &&
        std::memcmp(&scalar_sum, &kernel_sum, sizeof(double)) == 0;
  }
  return r;
}

MicroResult BenchExtremesScan(VertexId n, uint32_t reps) {
  Rng rng(78);
  std::vector<VertexId> candidates(n);
  std::vector<double> x(n), dx(n);
  for (VertexId v = 0; v < n; ++v) {
    candidates[v] = v;
    const uint64_t bucket = rng.Next() % 4;
    x[v] = bucket == 0 ? 1.0 : (bucket == 1 ? 0.0 : rng.NextDouble());
    dx[v] = (rng.NextDouble() - 0.5) * 4.0;
  }
  MicroResult r;
  r.edges = n;
  for (uint32_t i = 0; i < reps; ++i) {
    GradExtremes scalar_ext, kernel_ext;
    ForceKernelIsa(KernelIsa::kScalar);
    const uint64_t t0 = CyclesNow();
    const bool scalar_ok = ScanGradientExtremes(
        candidates.data(), candidates.size(), x.data(), dx.data(),
        &scalar_ext);
    const uint64_t t1 = CyclesNow();
    ResetForcedKernelIsa();
    const uint64_t t2 = CyclesNow();
    const bool kernel_ok = ScanGradientExtremes(
        candidates.data(), candidates.size(), x.data(), dx.data(),
        &kernel_ext);
    const uint64_t t3 = CyclesNow();
    r.scalar_cycles += static_cast<double>(t1 - t0);
    r.kernel_cycles += static_cast<double>(t3 - t2);
    r.bit_identical =
        r.bit_identical && scalar_ok == kernel_ok &&
        scalar_ext.argmax == kernel_ext.argmax &&
        scalar_ext.argmin == kernel_ext.argmin &&
        std::memcmp(&scalar_ext.max_grad, &kernel_ext.max_grad,
                    sizeof(double)) == 0 &&
        std::memcmp(&scalar_ext.min_grad, &kernel_ext.min_grad,
                    sizeof(double)) == 0;
  }
  return r;
}

// --- end-to-end mine: reference pipeline vs kernel pipeline -----------------

std::string SerializeSolve(const DcsgaResult& result) {
  std::string out;
  char buf[64];
  for (const VertexId v : result.support) {
    std::snprintf(buf, sizeof(buf), "%u,", v);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "|%.17g", result.affinity);
  out += buf;
  return out;
}

struct EndToEnd {
  double reference_ms = 0.0;
  double kernel_ms = 0.0;
  bool bit_identical = true;
  MicroResult as_micro;  ///< cycles view of the same runs
  DcsgaResult last;      ///< affinity column source
  uint64_t initializations = 0;
  uint64_t pruned_seeds = 0;
};

// One full mine of the pair: difference graph, Discrete mapping, GD+ and the
// smart-init NewSEA solve — the pipeline MinerSession::PreparePipeline runs
// for a Discrete-setting request. `use_kernels` switches both the builders
// (GraphKernels twins vs. graph/difference.h references) and the solver's
// dispatched ISA (automatic vs. pinned scalar).
DcsgaResult MineOnce(const Graph& g1, const Graph& g2, bool use_kernels,
                     uint64_t* inits, uint64_t* pruned) {
  const DiscretizeSpec spec;
  Result<Graph> gd = use_kernels ? GraphKernels::BuildDifferenceGraph(g1, g2)
                                 : BuildDifferenceGraph(g1, g2);
  DCS_CHECK(gd.ok());
  Result<Graph> mapped = use_kernels ? GraphKernels::DiscretizeWeights(*gd, spec)
                                     : DiscretizeWeights(*gd, spec);
  DCS_CHECK(mapped.ok());
  const Graph gd_plus = use_kernels ? GraphKernels::PositivePart(*mapped)
                                    : mapped->PositivePart();
  const SmartInitBounds bounds = ComputeSmartInitBounds(gd_plus);
  Result<DcsgaResult> solved = RunNewSea(gd_plus, bounds);
  DCS_CHECK(solved.ok());
  if (inits != nullptr) *inits = solved->initializations;
  if (pruned != nullptr) *pruned = solved->pruned_seeds;
  return std::move(*solved);
}

EndToEnd BenchEndToEnd(const Graph& g1, const Graph& g2, uint32_t reps) {
  EndToEnd e;
  e.as_micro.edges = g1.NumEdges() + g2.NumEdges();
  for (uint32_t i = 0; i < reps; ++i) {
    ForceKernelIsa(KernelIsa::kScalar);
    WallTimer ref_timer;
    const uint64_t t0 = CyclesNow();
    const DcsgaResult reference =
        MineOnce(g1, g2, /*use_kernels=*/false, nullptr, nullptr);
    const uint64_t t1 = CyclesNow();
    e.reference_ms += ref_timer.Seconds() * 1e3;
    ResetForcedKernelIsa();
    WallTimer kernel_timer;
    const uint64_t t2 = CyclesNow();
    DcsgaResult kernel = MineOnce(g1, g2, /*use_kernels=*/true,
                                  &e.initializations, &e.pruned_seeds);
    const uint64_t t3 = CyclesNow();
    e.kernel_ms += kernel_timer.Seconds() * 1e3;
    e.as_micro.scalar_cycles += static_cast<double>(t1 - t0);
    e.as_micro.kernel_cycles += static_cast<double>(t3 - t2);
    e.bit_identical = e.bit_identical &&
                      SerializeSolve(reference) == SerializeSolve(kernel);
    e.last = std::move(kernel);
  }
  e.reference_ms /= reps;
  e.kernel_ms /= reps;
  e.as_micro.kernel_ms = e.kernel_ms;
  e.as_micro.bit_identical = e.bit_identical;
  return e;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  const uint64_t seed = 20180416;
  std::printf("seed = %llu, hardware_concurrency = %u, dispatch = %s%s\n\n",
              static_cast<unsigned long long>(seed),
              std::thread::hardware_concurrency(),
              KernelIsaName(ActiveKernelIsa()), args.smoke ? " (smoke mode)" : "");

  struct PairDataset {
    std::string label;
    Graph g1;
    Graph g2;
  };
  std::vector<PairDataset> datasets;
  if (args.smoke) {
    const CoauthorData tiny = MakeDblpAnalog(seed, /*num_authors=*/600);
    datasets.push_back({"DBLP-tiny", tiny.g1, tiny.g2});
  } else {
    const CoauthorData dblp = MakeDblpAnalog(seed);
    datasets.push_back({"DBLP", dblp.g1, dblp.g2});
    const CoauthorData dblp_c = MakeDblpCAnalog(seed + 4);
    datasets.push_back({"DBLP-C", dblp_c.g1, dblp_c.g2});
  }
  const uint32_t reps = args.smoke ? 3 : 20;

  JsonReporter reporter("micro_kernels", seed);
  TablePrinter table(
      "Kernel layer: cycles/edge, scalar reference vs dispatched",
      {"Data", "Kernel", "Edges", "Scalar c/e", "Kernel c/e", "Speedup",
       "Bit-identical?"});
  for (const PairDataset& dataset : datasets) {
    Result<Graph> gd = BuildDifferenceGraph(dataset.g1, dataset.g2);
    DCS_CHECK(gd.ok());
    const std::vector<double> packed = PackedWeights(*gd);
    const Graph gd_plus = gd->PositivePart();

    AddRecord(&reporter, &table, dataset.label, "difference_merge", reps,
              BenchDifferenceMerge(dataset.g1, dataset.g2, reps));
    AddRecord(&reporter, &table, dataset.label, "discretize_map", reps,
              BenchDiscretizeMap(packed, reps));
    AddRecord(&reporter, &table, dataset.label, "clamp_sweep", reps,
              BenchClampSweep(packed, reps));
    AddRecord(&reporter, &table, dataset.label, "positive_part", reps,
              BenchPositivePart(*gd, reps));
    AddRecord(&reporter, &table, dataset.label, "seed_order_sort", reps,
              BenchSeedOrderSort(ComputeSmartInitBounds(gd_plus).mu, reps));
    AddRecord(&reporter, &table, dataset.label, "axpy_accumulate", reps,
              BenchAxpyAccumulate(gd_plus, reps));
    AddRecord(&reporter, &table, dataset.label, "support_reduce", reps,
              BenchSupportReduce(gd_plus.NumVertices(), reps));
    AddRecord(&reporter, &table, dataset.label, "extremes_scan", reps,
              BenchExtremesScan(gd_plus.NumVertices(), reps));

    const EndToEnd e2e = BenchEndToEnd(dataset.g1, dataset.g2, reps);
    DCS_CHECK(e2e.bit_identical)
        << dataset.label << ": kernel mine diverged from the reference mine";
    BenchRecord record;
    record.dataset = dataset.label + " / mine_end_to_end";
    record.threads = 1;
    record.wall_ms = e2e.kernel_ms;
    record.initializations = e2e.initializations;
    record.pruned_seeds = e2e.pruned_seeds;
    record.affinity = e2e.last.affinity;
    const double denom =
        static_cast<double>(e2e.as_micro.edges) * reps;
    record.extra = {
        {"edges", static_cast<double>(e2e.as_micro.edges)},
        {"cycles_per_edge",
         denom > 0 ? e2e.as_micro.kernel_cycles / denom : 0.0},
        {"cycles_per_edge_scalar",
         denom > 0 ? e2e.as_micro.scalar_cycles / denom : 0.0},
        {"speedup", e2e.kernel_ms > 0 ? e2e.reference_ms / e2e.kernel_ms : 1.0},
        {"bit_identical", e2e.bit_identical ? 1.0 : 0.0},
        {"reference_ms", e2e.reference_ms},
        {"kernel_ms", e2e.kernel_ms},
    };
    reporter.Add(record);
    table.AddRow(
        {dataset.label, "mine_end_to_end",
         TablePrinter::Fmt(uint64_t{e2e.as_micro.edges}),
         TablePrinter::Fmt(e2e.reference_ms, 2) + " ms",
         TablePrinter::Fmt(e2e.kernel_ms, 2) + " ms",
         TablePrinter::Fmt(
             e2e.kernel_ms > 0 ? e2e.reference_ms / e2e.kernel_ms : 1.0, 2),
         e2e.bit_identical ? "Yes" : "No"});
    std::fflush(stdout);
  }
  table.Print();

  if (!args.json_path.empty()) {
    DCS_CHECK(reporter.WriteTo(args.json_path))
        << "cannot write " << args.json_path;
    std::printf("\nwrote %s\n", args.json_path.c_str());
  }
  return 0;
}
