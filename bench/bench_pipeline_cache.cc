// Cross-session pipeline cache: N sessions over one dataset, private vs
// shared preparation.
//
// Models the ROADMAP's heavy multi-user scenario: S concurrent
// MinerSessions serve the same (G1, G2) pair, each issuing the same small
// request mix. With private caches every session pays the pipeline prefix
// (difference graph, GD+, smart-init bounds); attached to one shared
// PipelineCache the prefix is paid once and the other S−1 sessions hit.
// Every response is checked bit-identical across both configurations — the
// cross-session determinism guarantee — and the cache hit/miss/bytes
// telemetry is reported per row.
//
// `--json out.json` emits the BENCH_pipeline_cache.json record tracked in
// the repo; `--smoke` shrinks the dataset and session sweep so the ctest
// `bench_smoke_cache` wiring finishes in well under a second.

#include <cstdio>
#include <memory>
#include <thread>

#include "api/miner_session.h"
#include "api/mining.h"
#include "api/pipeline_cache.h"
#include "bench_util.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace dcs;
using namespace dcs::bench;

// The per-session request mix: both pipeline keys get exercised so a shared
// cache serves several entries, not one.
std::vector<MiningRequest> RequestMix() {
  std::vector<MiningRequest> requests(2);
  requests[0].measure = Measure::kGraphAffinity;
  requests[0].alpha = 1.0;
  requests[1].measure = Measure::kGraphAffinity;
  requests[1].alpha = 2.0;
  return requests;
}

struct RunResult {
  double wall_ms = 0.0;
  uint64_t rebuilds = 0;  // summed across sessions
  PipelineCacheStats stats;
  MiningResponse first_response;  // session 0, request 0 (checksum source)
  std::string serialized;         // all responses, for the identity check
};

// Runs `sessions` concurrent sessions over (g1, g2), each mining the
// request mix. `shared` attaches all of them to one PipelineCache.
RunResult RunSessions(const Graph& g1, const Graph& g2, uint32_t sessions,
                      bool shared) {
  const std::vector<MiningRequest> requests = RequestMix();
  auto cache = shared ? std::make_shared<PipelineCache>() : nullptr;
  std::vector<std::vector<MiningResponse>> responses(sessions);
  std::vector<uint64_t> rebuilds(sessions, 0);
  std::vector<PipelineCacheStats> private_stats(sessions);

  WallTimer timer;
  {
    std::vector<std::thread> threads;
    threads.reserve(sessions);
    for (uint32_t i = 0; i < sessions; ++i) {
      threads.emplace_back([&, i] {
        SessionOptions options;
        options.pipeline_cache = cache;  // null = private
        Result<MinerSession> session = MinerSession::Create(g1, g2, options);
        DCS_CHECK(session.ok()) << session.status().ToString();
        for (const MiningRequest& request : requests) {
          Result<MiningResponse> response = session->Mine(request);
          DCS_CHECK(response.ok()) << response.status().ToString();
          responses[i].push_back(std::move(*response));
        }
        rebuilds[i] = session->num_rebuilds();
        private_stats[i] = session->pipeline_cache()->stats();
      });
    }
    for (std::thread& t : threads) t.join();
  }

  RunResult out;
  out.wall_ms = timer.Seconds() * 1e3;
  for (uint32_t i = 0; i < sessions; ++i) {
    out.rebuilds += rebuilds[i];
    for (const MiningResponse& response : responses[i]) {
      out.serialized += SerializeAffinityRanking(response);
      out.serialized += "#";
    }
  }
  if (shared) {
    out.stats = cache->stats();
  } else {
    for (const PipelineCacheStats& stats : private_stats) {
      out.stats.hits += stats.hits;
      out.stats.misses += stats.misses;
      out.stats.upgrades += stats.upgrades;
      out.stats.bytes += stats.bytes;
      out.stats.entries += stats.entries;
    }
  }
  out.first_response = std::move(responses[0][0]);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  const uint64_t seed = 20180416;
  std::printf("seed = %llu, hardware_concurrency = %u%s\n\n",
              static_cast<unsigned long long>(seed),
              std::thread::hardware_concurrency(),
              args.smoke ? " (smoke mode)" : "");

  struct PairDataset {
    std::string label;
    Graph g1;
    Graph g2;
  };
  std::vector<PairDataset> datasets;
  if (args.smoke) {
    const CoauthorData tiny = MakeDblpAnalog(seed, /*num_authors=*/600);
    datasets.push_back({"DBLP-tiny", tiny.g1, tiny.g2});
  } else {
    const CoauthorData dblp = MakeDblpAnalog(seed);
    datasets.push_back({"DBLP", dblp.g1, dblp.g2});
    const CoauthorData dblp_c = MakeDblpCAnalog(seed + 4);
    datasets.push_back({"DBLP-C", dblp_c.g1, dblp_c.g2});
  }
  const std::vector<uint32_t> session_counts =
      args.smoke ? std::vector<uint32_t>{2}
                 : std::vector<uint32_t>{1, 2, 4, 8};
  const size_t requests_per_session = RequestMix().size();

  JsonReporter reporter("pipeline_cache", seed);
  TablePrinter table(
      "Cross-session pipeline cache: private vs shared preparation",
      {"Data", "Sessions", "Config", "Wall ms", "Rebuilds", "Hits", "Misses",
       "KiB", "Bit-identical?"});
  for (const PairDataset& dataset : datasets) {
    for (const uint32_t sessions : session_counts) {
      RunResult private_run =
          RunSessions(dataset.g1, dataset.g2, sessions, /*shared=*/false);
      RunResult shared_run =
          RunSessions(dataset.g1, dataset.g2, sessions, /*shared=*/true);

      // The cross-session determinism guarantee, enforced on every run:
      // shared-cache responses match the private ones bit for bit.
      const bool identical = private_run.serialized == shared_run.serialized;
      DCS_CHECK(identical) << dataset.label << " diverged at " << sessions
                           << " sessions";
      // Shared preparation really is once per pipeline key.
      DCS_CHECK(shared_run.rebuilds == requests_per_session)
          << dataset.label << ": expected " << requests_per_session
          << " shared rebuilds, got " << shared_run.rebuilds;

      for (const bool shared : {false, true}) {
        const RunResult& run = shared ? shared_run : private_run;
        const MiningTelemetry& telemetry = run.first_response.telemetry;
        BenchRecord record;
        record.dataset =
            dataset.label + (shared ? " / shared" : " / private");
        record.threads = sessions;
        record.wall_ms = run.wall_ms;
        record.initializations = telemetry.initializations;
        record.pruned_seeds = telemetry.pruned_seeds;
        record.affinity = run.first_response.graph_affinity.empty()
                              ? 0.0
                              : run.first_response.graph_affinity[0].value;
        record.extra = {
            {"sessions", static_cast<double>(sessions)},
            {"requests",
             static_cast<double>(sessions * requests_per_session)},
            {"rebuilds", static_cast<double>(run.rebuilds)},
            {"cache_hits", static_cast<double>(run.stats.hits)},
            {"cache_misses", static_cast<double>(run.stats.misses)},
            {"cache_bytes", static_cast<double>(run.stats.bytes)},
        };
        reporter.Add(record);
        table.AddRow({dataset.label, TablePrinter::Fmt(uint64_t{sessions}),
                      shared ? "shared" : "private",
                      TablePrinter::Fmt(run.wall_ms, 2),
                      TablePrinter::Fmt(run.rebuilds),
                      TablePrinter::Fmt(run.stats.hits),
                      TablePrinter::Fmt(run.stats.misses),
                      TablePrinter::Fmt(
                          static_cast<double>(run.stats.bytes) / 1024.0, 1),
                      identical ? "Yes" : "No"});
      }
      std::fflush(stdout);
    }
  }
  table.Print();

  if (!args.json_path.empty()) {
    DCS_CHECK(reporter.WriteTo(args.json_path))
        << "cannot write " << args.json_path;
    std::printf("\nwrote %s\n", args.json_path.c_str());
  }
  return 0;
}
