#include "densest/peel.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "densest/exact.h"
#include "densest/goldberg.h"
#include "gen/random_graphs.h"
#include "graph/stats.h"
#include "test_util.h"
#include "util/rng.h"

namespace dcs {
namespace {

using ::dcs::testing::Fig1Gd;
using ::dcs::testing::MakeGraph;

TEST(GreedyPeelTest, EmptyGraph) {
  const PeelResult result = GreedyPeel(Graph(0));
  EXPECT_TRUE(result.subset.empty());
  EXPECT_DOUBLE_EQ(result.density, 0.0);
}

TEST(GreedyPeelTest, SingleVertex) {
  const PeelResult result = GreedyPeel(Graph(1));
  ASSERT_EQ(result.subset.size(), 1u);
  EXPECT_DOUBLE_EQ(result.density, 0.0);
}

TEST(GreedyPeelTest, SingleEdge) {
  Graph g = MakeGraph(2, {{0, 1, 3.0}});
  const PeelResult result = GreedyPeel(g);
  EXPECT_EQ(result.subset.size(), 2u);
  EXPECT_DOUBLE_EQ(result.density, 3.0);  // ρ({u,v}) = w
}

TEST(GreedyPeelTest, CliquePlusPendantFindsClique) {
  // K4 (weight 1) + pendant: densest subgraph is the K4 with ρ = 3.
  GraphBuilder builder(5);
  std::vector<VertexId> clique{0, 1, 2, 3};
  ASSERT_TRUE(AddClique(&builder, clique, 1.0).ok());
  ASSERT_TRUE(builder.AddEdge(3, 4, 0.1).ok());
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  PeelResult result = GreedyPeel(*g);
  std::sort(result.subset.begin(), result.subset.end());
  EXPECT_EQ(result.subset, clique);
  EXPECT_DOUBLE_EQ(result.density, 3.0);
}

TEST(GreedyPeelTest, PeelOrderIsAFullPermutation) {
  Graph g = MakeGraph(4, {{0, 1, 1.0}, {2, 3, 2.0}});
  PeelResult result = GreedyPeel(g);
  std::vector<VertexId> order = result.peel_order;
  std::sort(order.begin(), order.end());
  EXPECT_EQ(order, (std::vector<VertexId>{0, 1, 2, 3}));
}

TEST(GreedyPeelTest, HandlesNegativeWeights) {
  // Heavy positive pair overshadowed by negative attachments; peel should
  // shed the negative vertices first.
  Graph g = MakeGraph(4, {{0, 1, 5.0}, {1, 2, -3.0}, {2, 3, -4.0}});
  PeelResult result = GreedyPeel(g);
  std::sort(result.subset.begin(), result.subset.end());
  EXPECT_EQ(result.subset, (std::vector<VertexId>{0, 1}));
  EXPECT_DOUBLE_EQ(result.density, 5.0);
}

TEST(GreedyPeelTest, AllNegativeGraphAchievesZeroDensity) {
  // Peeling removes the most negative vertex first; the best prefix is an
  // edgeless remainder of density 0 (matching the singleton optimum value).
  Graph g = MakeGraph(3, {{0, 1, -1.0}, {1, 2, -2.0}});
  PeelResult result = GreedyPeel(g);
  EXPECT_DOUBLE_EQ(result.density, 0.0);
  EXPECT_DOUBLE_EQ(AverageDegreeDensity(g, result.subset), 0.0);
}

TEST(GreedyPeelTest, Fig1DifferenceGraph) {
  PeelResult result = GreedyPeel(Fig1Gd());
  // Density must be at least the heaviest edge weight... not guaranteed for
  // greedy in signed graphs, but on this instance the peel finds a positive
  // density set.
  EXPECT_GT(result.density, 0.0);
  EXPECT_NEAR(AverageDegreeDensity(Fig1Gd(), result.subset), result.density,
              1e-9);
}

TEST(GreedyPeelTest, ReportedDensityMatchesSubset) {
  Rng rng(99);
  auto g = RandomSignedGraph(30, 120, 0.7, 0.5, 5.0, &rng);
  ASSERT_TRUE(g.ok());
  const PeelResult result = GreedyPeel(*g);
  EXPECT_NEAR(AverageDegreeDensity(*g, result.subset), result.density, 1e-9);
}

// Charikar's guarantee: on non-negative weights the peel density is at least
// half the optimum (verified against the exact max-flow solver).
class CharikarApproximationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CharikarApproximationTest, WithinFactorTwoOfExact) {
  Rng rng(GetParam());
  const VertexId n = 12 + static_cast<VertexId>(rng.NextBounded(20));
  auto g = ErdosRenyiWeighted(n, 0.25, 0.5, 3.0, &rng);
  ASSERT_TRUE(g.ok());
  if (g->NumEdges() == 0) GTEST_SKIP() << "degenerate sample";
  const PeelResult greedy = GreedyPeel(*g);
  auto exact = GoldbergDensestSubgraph(*g);
  ASSERT_TRUE(exact.ok());
  EXPECT_GE(greedy.density * 2.0 + 1e-6, exact->density);
  EXPECT_LE(greedy.density, exact->density + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CharikarApproximationTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15));

// On tiny signed graphs, compare against subset enumeration: the peel result
// can never exceed the exact optimum.
class SignedPeelBoundTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SignedPeelBoundTest, NeverExceedsExactOptimum) {
  Rng rng(GetParam());
  auto g = RandomSignedGraph(12, 30, 0.6, 0.5, 4.0, &rng);
  ASSERT_TRUE(g.ok());
  const PeelResult greedy = GreedyPeel(*g);
  auto exact = ExactDcsadBruteForce(*g);
  ASSERT_TRUE(exact.ok());
  EXPECT_LE(greedy.density, exact->density + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SignedPeelBoundTest,
                         ::testing::Values(21, 22, 23, 24, 25, 26, 27, 28));

}  // namespace
}  // namespace dcs
