#include "densest/maxflow.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "util/rng.h"

namespace dcs {
namespace {

TEST(MaxFlowTest, SingleArc) {
  MaxFlow flow(2);
  flow.AddArc(0, 1, 5.0);
  EXPECT_DOUBLE_EQ(flow.Solve(0, 1), 5.0);
}

TEST(MaxFlowTest, SeriesArcsBottleneck) {
  MaxFlow flow(3);
  flow.AddArc(0, 1, 5.0);
  flow.AddArc(1, 2, 3.0);
  EXPECT_DOUBLE_EQ(flow.Solve(0, 2), 3.0);
}

TEST(MaxFlowTest, ParallelPathsAdd) {
  MaxFlow flow(4);
  flow.AddArc(0, 1, 2.0);
  flow.AddArc(1, 3, 2.0);
  flow.AddArc(0, 2, 3.0);
  flow.AddArc(2, 3, 3.0);
  EXPECT_DOUBLE_EQ(flow.Solve(0, 3), 5.0);
}

TEST(MaxFlowTest, ClassicTextbookNetwork) {
  // CLRS-style example with a known max flow of 23.
  MaxFlow flow(6);
  flow.AddArc(0, 1, 16.0);
  flow.AddArc(0, 2, 13.0);
  flow.AddArc(1, 2, 10.0);
  flow.AddArc(2, 1, 4.0);
  flow.AddArc(1, 3, 12.0);
  flow.AddArc(3, 2, 9.0);
  flow.AddArc(2, 4, 14.0);
  flow.AddArc(4, 3, 7.0);
  flow.AddArc(3, 5, 20.0);
  flow.AddArc(4, 5, 4.0);
  EXPECT_DOUBLE_EQ(flow.Solve(0, 5), 23.0);
}

TEST(MaxFlowTest, DisconnectedSinkIsZero) {
  MaxFlow flow(3);
  flow.AddArc(0, 1, 4.0);
  EXPECT_DOUBLE_EQ(flow.Solve(0, 2), 0.0);
}

TEST(MaxFlowTest, ZeroCapacityArc) {
  MaxFlow flow(2);
  flow.AddArc(0, 1, 0.0);
  EXPECT_DOUBLE_EQ(flow.Solve(0, 1), 0.0);
}

TEST(MaxFlowTest, MinCutSourceSideIsClosedUnderResidualArcs) {
  MaxFlow flow(4);
  flow.AddArc(0, 1, 1.0);
  flow.AddArc(0, 2, 1.0);
  flow.AddArc(1, 3, 0.5);
  flow.AddArc(2, 3, 0.5);
  flow.Solve(0, 3);
  const auto side = flow.MinCutSourceSide(0);
  EXPECT_TRUE(side[0]);
  EXPECT_TRUE(side[1]);  // arc 0->1 not saturated (0.5 of 1.0 used)
  EXPECT_TRUE(side[2]);
  EXPECT_FALSE(side[3]);
}

TEST(MaxFlowTest, FractionalCapacities) {
  MaxFlow flow(3);
  flow.AddArc(0, 1, 0.75);
  flow.AddArc(1, 2, 0.25);
  EXPECT_NEAR(flow.Solve(0, 2), 0.25, 1e-12);
}

TEST(MaxFlowTest, FlowConservationOnRandomNetworks) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const uint32_t n = 8;
    MaxFlow flow(n);
    std::vector<std::tuple<uint32_t, uint32_t, double, uint32_t>> arcs;
    for (uint32_t u = 0; u < n; ++u) {
      for (uint32_t v = 0; v < n; ++v) {
        if (u != v && rng.Bernoulli(0.35)) {
          const double cap = rng.Uniform(0.0, 4.0);
          const uint32_t id = flow.AddArc(u, v, cap);
          arcs.emplace_back(u, v, cap, id);
        }
      }
    }
    const double value = flow.Solve(0, n - 1);
    EXPECT_GE(value, -1e-9);
    // Conservation: net outflow zero at internal nodes, +value at source.
    std::vector<double> net(n, 0.0);
    for (const auto& [u, v, cap, id] : arcs) {
      const double used = cap - flow.ResidualCapacity(id);
      EXPECT_GE(used, -1e-9);
      EXPECT_LE(used, cap + 1e-9);
      net[u] += used;
      net[v] -= used;
    }
    EXPECT_NEAR(net[0], value, 1e-9);
    EXPECT_NEAR(net[n - 1], -value, 1e-9);
    for (uint32_t u = 1; u + 1 < n; ++u) EXPECT_NEAR(net[u], 0.0, 1e-9);
  }
}

}  // namespace
}  // namespace dcs
