#include "densest/exact.h"

#include <gtest/gtest.h>

#include <cmath>

#include "gen/random_graphs.h"
#include "graph/stats.h"
#include "test_util.h"
#include "util/rng.h"

namespace dcs {
namespace {

using ::dcs::testing::Fig1Gd;
using ::dcs::testing::MakeGraph;

TEST(ExactDcsadTest, RejectsLargeAndEmptyGraphs) {
  EXPECT_FALSE(ExactDcsadBruteForce(Graph(0)).ok());
  EXPECT_FALSE(ExactDcsadBruteForce(Graph(30)).ok());
  EXPECT_FALSE(ExactDcsadBruteForce(Graph(12), 10).ok());
  EXPECT_TRUE(ExactDcsadBruteForce(Graph(12), 12).ok());
}

TEST(ExactDcsadTest, SingleEdgeOptimum) {
  Graph g = MakeGraph(3, {{0, 1, 4.0}});
  auto result = ExactDcsadBruteForce(g);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->density, 4.0);
  EXPECT_EQ(result->subset, (std::vector<VertexId>{0, 1}));
}

TEST(ExactDcsadTest, AllNegativeGivesSingleton) {
  Graph g = MakeGraph(3, {{0, 1, -1.0}, {1, 2, -5.0}});
  auto result = ExactDcsadBruteForce(g);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->density, 0.0);
  EXPECT_EQ(result->subset.size(), 1u);
}

TEST(ExactDcsadTest, Fig1Optimum) {
  auto result = ExactDcsadBruteForce(Fig1Gd());
  ASSERT_TRUE(result.ok());
  // Verify against direct evaluation of the reported subset.
  EXPECT_NEAR(AverageDegreeDensity(Fig1Gd(), result->subset), result->density,
              1e-12);
  EXPECT_GT(result->density, 0.0);
}

TEST(ExactDcsgaTest, RejectsLargeAndEmptyGraphs) {
  EXPECT_FALSE(ExactDcsgaBruteForce(Graph(0)).ok());
  EXPECT_FALSE(ExactDcsgaBruteForce(Graph(25)).ok());
}

TEST(ExactDcsgaTest, MotzkinStrausOnUnweightedClique) {
  // Max affinity of a k-clique graph is (k−1)/k.
  GraphBuilder builder(6);
  std::vector<VertexId> clique{0, 1, 2, 3};
  ASSERT_TRUE(AddClique(&builder, clique, 1.0).ok());
  ASSERT_TRUE(builder.AddEdge(4, 5, 1.0).ok());
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  auto result = ExactDcsgaBruteForce(*g);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->affinity, 3.0 / 4.0, 1e-9);
  EXPECT_EQ(result->support, clique);
  for (VertexId v : clique) EXPECT_NEAR(result->x[v], 0.25, 1e-9);
}

TEST(ExactDcsgaTest, SingleHeavyEdgeOptimum) {
  // For one edge of weight w the optimum is x = (1/2, 1/2), f = w/2.
  Graph g = MakeGraph(4, {{1, 3, 6.0}, {0, 2, 1.0}});
  auto result = ExactDcsgaBruteForce(g);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->affinity, 3.0, 1e-9);
  EXPECT_EQ(result->support, (std::vector<VertexId>{1, 3}));
}

TEST(ExactDcsgaTest, EdgelessGraphIsTrivial) {
  auto result = ExactDcsgaBruteForce(Graph(4));
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->affinity, 0.0);
  EXPECT_EQ(result->support.size(), 1u);
}

TEST(ExactDcsgaTest, SupportIsAlwaysPositiveClique) {
  Rng rng(1234);
  for (int trial = 0; trial < 8; ++trial) {
    auto g = RandomSignedGraph(10, 24, 0.6, 0.5, 3.0, &rng);
    ASSERT_TRUE(g.ok());
    auto result = ExactDcsgaBruteForce(*g);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(IsPositiveClique(*g, result->support));
    // x sums to 1 and lives on its support.
    double sum = 0.0;
    for (VertexId v = 0; v < g->NumVertices(); ++v) sum += result->x[v];
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(ExactDcsgaTest, AffinityMatchesEmbeddingEvaluation) {
  Rng rng(555);
  auto g = RandomSignedGraph(9, 20, 0.7, 0.5, 3.0, &rng);
  ASSERT_TRUE(g.ok());
  auto result = ExactDcsgaBruteForce(*g);
  ASSERT_TRUE(result.ok());
  double f = 0.0;
  for (VertexId u = 0; u < g->NumVertices(); ++u) {
    for (const Neighbor& nb : g->NeighborsOf(u)) {
      f += result->x[u] * result->x[nb.to] * nb.weight;
    }
  }
  EXPECT_NEAR(f, result->affinity, 1e-9);
}

}  // namespace
}  // namespace dcs
