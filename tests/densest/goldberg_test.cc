#include "densest/goldberg.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "densest/exact.h"
#include "gen/random_graphs.h"
#include "graph/stats.h"
#include "test_util.h"
#include "util/rng.h"

namespace dcs {
namespace {

using ::dcs::testing::MakeGraph;

TEST(GoldbergTest, EmptyVertexSetRejected) {
  EXPECT_FALSE(GoldbergDensestSubgraph(Graph(0)).ok());
}

TEST(GoldbergTest, EdgelessGraphHasZeroDensity) {
  auto result = GoldbergDensestSubgraph(Graph(3));
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->density, 0.0);
  EXPECT_EQ(result->subset.size(), 1u);
}

TEST(GoldbergTest, NegativeWeightsRejected) {
  Graph g = MakeGraph(2, {{0, 1, -1.0}});
  auto result = GoldbergDensestSubgraph(g);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(GoldbergTest, BadToleranceRejected) {
  Graph g = MakeGraph(2, {{0, 1, 1.0}});
  EXPECT_FALSE(GoldbergDensestSubgraph(g, 0.0).ok());
  EXPECT_FALSE(GoldbergDensestSubgraph(g, -1.0).ok());
}

TEST(GoldbergTest, SingleEdge) {
  Graph g = MakeGraph(3, {{0, 1, 2.5}});
  auto result = GoldbergDensestSubgraph(g);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->density, 2.5, 1e-6);
  std::vector<VertexId> subset = result->subset;
  std::sort(subset.begin(), subset.end());
  EXPECT_EQ(subset, (std::vector<VertexId>{0, 1}));
}

TEST(GoldbergTest, CliqueBeatsPendantChain) {
  GraphBuilder builder(8);
  std::vector<VertexId> clique{0, 1, 2, 3, 4};
  ASSERT_TRUE(AddClique(&builder, clique, 1.0).ok());
  ASSERT_TRUE(builder.AddEdge(4, 5, 1.0).ok());
  ASSERT_TRUE(builder.AddEdge(5, 6, 1.0).ok());
  ASSERT_TRUE(builder.AddEdge(6, 7, 1.0).ok());
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  auto result = GoldbergDensestSubgraph(*g);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->density, 4.0, 1e-6);  // (k−1)·w on the 5-clique
  std::vector<VertexId> subset = result->subset;
  std::sort(subset.begin(), subset.end());
  EXPECT_EQ(subset, clique);
}

TEST(GoldbergTest, WeightedTriangleVersusHeavyEdge) {
  // Triangle of weight 2 (ρ = 4) loses to a single edge of weight 5 (ρ = 5).
  GraphBuilder builder(5);
  std::vector<VertexId> triangle{0, 1, 2};
  ASSERT_TRUE(AddClique(&builder, triangle, 2.0).ok());
  ASSERT_TRUE(builder.AddEdge(3, 4, 5.0).ok());
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  auto result = GoldbergDensestSubgraph(*g);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->density, 5.0, 1e-6);
}

class GoldbergVsBruteForceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GoldbergVsBruteForceTest, MatchesSubsetEnumeration) {
  Rng rng(GetParam());
  const VertexId n = 6 + static_cast<VertexId>(rng.NextBounded(7));
  auto g = ErdosRenyiWeighted(n, 0.4, 0.25, 3.0, &rng);
  ASSERT_TRUE(g.ok());
  auto exact_flow = GoldbergDensestSubgraph(*g);
  auto exact_enum = ExactDcsadBruteForce(*g);
  ASSERT_TRUE(exact_flow.ok());
  ASSERT_TRUE(exact_enum.ok());
  EXPECT_NEAR(exact_flow->density, exact_enum->density, 1e-5);
  // The subset the flow solver reports must itself achieve the density.
  EXPECT_NEAR(AverageDegreeDensity(*g, exact_flow->subset),
              exact_flow->density, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GoldbergVsBruteForceTest,
                         ::testing::Values(31, 32, 33, 34, 35, 36, 37, 38, 39,
                                           40, 41, 42));

}  // namespace
}  // namespace dcs
