#include "densest/max_clique.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "gen/random_graphs.h"
#include "graph/kcore.h"
#include "graph/stats.h"
#include "test_util.h"
#include "util/rng.h"

namespace dcs {
namespace {

using ::dcs::testing::MakeGraph;

// Brute-force clique number for cross-checking (n <= ~18).
size_t NaiveCliqueNumber(const Graph& g) {
  const VertexId n = g.NumVertices();
  size_t best = n > 0 ? 1 : 0;
  for (uint32_t mask = 1; mask < (1u << n); ++mask) {
    std::vector<VertexId> members;
    for (VertexId v = 0; v < n; ++v) {
      if (mask & (1u << v)) members.push_back(v);
    }
    if (members.size() > best && IsClique(g, members)) best = members.size();
  }
  return best;
}

TEST(MaxCliqueTest, EmptyAndEdgeless) {
  auto empty = FindMaxClique(Graph(0));
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->members.empty());
  auto edgeless = FindMaxClique(Graph(5));
  ASSERT_TRUE(edgeless.ok());
  EXPECT_EQ(edgeless->members.size(), 1u);
}

TEST(MaxCliqueTest, Triangle) {
  Graph g = MakeGraph(4, {{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 1.0}, {2, 3, 1.0}});
  auto result = FindMaxClique(g);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->members, (std::vector<VertexId>{0, 1, 2}));
}

TEST(MaxCliqueTest, PlantedCliqueInNoise) {
  Rng rng(5);
  GraphBuilder builder(40);
  auto noise = ErdosRenyi(40, 0.15, &rng);
  ASSERT_TRUE(noise.ok());
  for (const Edge& e : noise->UndirectedEdges()) {
    ASSERT_TRUE(builder.AddEdge(e.u, e.v, 1.0).ok());
  }
  std::vector<VertexId> planted{2, 9, 17, 25, 33, 38};
  ASSERT_TRUE(AddClique(&builder, planted, 1.0).ok());
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  auto result = FindMaxClique(*g);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->members.size(), 6u);
  EXPECT_TRUE(IsClique(*g, result->members));
}

TEST(MaxCliqueTest, WeightsAreIgnored) {
  Graph g = MakeGraph(3, {{0, 1, -5.0}, {1, 2, 0.1}, {0, 2, 100.0}});
  auto result = FindMaxClique(g);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->members.size(), 3u);
}

TEST(MaxCliqueTest, NodeBudgetIsEnforced) {
  Rng rng(6);
  auto g = ErdosRenyi(60, 0.6, &rng);
  ASSERT_TRUE(g.ok());
  MaxCliqueOptions options;
  options.max_nodes = 3;
  auto result = FindMaxClique(*g, options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotConverged());
}

class MaxCliquePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MaxCliquePropertyTest, MatchesNaiveEnumeration) {
  Rng rng(GetParam());
  const VertexId n = 8 + static_cast<VertexId>(rng.NextBounded(8));
  auto g = ErdosRenyi(n, 0.4, &rng);
  ASSERT_TRUE(g.ok());
  auto result = FindMaxClique(*g);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(IsClique(*g, result->members));
  EXPECT_EQ(result->members.size(), NaiveCliqueNumber(*g));
}

TEST_P(MaxCliquePropertyTest, CliqueNumberBoundedByCorePlusOne) {
  // The bound NewSEA's Theorem 6 rests on: ω(G) ≤ τ_max + 1.
  Rng rng(GetParam() + 500);
  auto g = ErdosRenyi(25, 0.3, &rng);
  ASSERT_TRUE(g.ok());
  auto result = FindMaxClique(*g);
  ASSERT_TRUE(result.ok());
  const auto cores = CoreNumbers(*g);
  for (VertexId v : result->members) {
    EXPECT_GE(cores[v] + 1, result->members.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxCliquePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace dcs
