// End-to-end recovery tests: the full DCS pipelines (difference graph →
// DCSGreedy / NewSEA) must recover structures planted by the dataset
// generators — the synthetic analog of the paper's effectiveness results
// (Tables III–VI, X–XIII).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/dcs_greedy.h"
#include "core/newsea.h"
#include "gen/coauthor.h"
#include "gen/interest_social.h"
#include "gen/keywords.h"
#include "gen/signed_pair.h"
#include "graph/difference.h"
#include "graph/stats.h"
#include "util/rng.h"

namespace dcs {
namespace {

// Jaccard overlap between a found subset and the best-matching planted group.
double BestJaccard(const std::vector<VertexId>& found,
                   const std::vector<std::vector<VertexId>>& planted) {
  std::set<VertexId> f(found.begin(), found.end());
  double best = 0.0;
  for (const auto& group : planted) {
    std::set<VertexId> g(group.begin(), group.end());
    size_t inter = 0;
    for (VertexId v : f) inter += g.contains(v) ? 1 : 0;
    const double uni = static_cast<double>(f.size() + g.size() - inter);
    best = std::max(best, static_cast<double>(inter) / uni);
  }
  return best;
}

// Fraction of the found subset lying inside the best-matching planted group.
// The affinity optimum may legitimately be the *heaviest sub-clique* of a
// planted group, so precision is the right recovery metric for DCSGA.
double BestPrecision(const std::vector<VertexId>& found,
                     const std::vector<std::vector<VertexId>>& planted) {
  if (found.empty()) return 0.0;
  double best = 0.0;
  for (const auto& group : planted) {
    std::set<VertexId> g(group.begin(), group.end());
    size_t inter = 0;
    for (VertexId v : found) inter += g.contains(v) ? 1 : 0;
    best = std::max(best,
                    static_cast<double>(inter) /
                        static_cast<double>(found.size()));
  }
  return best;
}

TEST(CoauthorRecoveryTest, NewSeaFindsAnEmergingGroup) {
  Rng rng(101);
  CoauthorConfig config;
  config.num_authors = 2000;
  config.emerging_sizes = {5, 7};
  config.disappearing_sizes = {6};
  auto data = GenerateCoauthorData(config, &rng);
  ASSERT_TRUE(data.ok());
  auto gd = BuildDifferenceGraph(data->g1, data->g2);
  ASSERT_TRUE(gd.ok());
  auto result = RunNewSea(gd->PositivePart());
  ASSERT_TRUE(result.ok());
  std::vector<std::vector<VertexId>> planted;
  for (const auto& group : data->emerging) planted.push_back(group.members);
  EXPECT_GE(BestPrecision(result->support, planted), 0.8)
      << "NewSEA failed to recover a planted emerging group";
  EXPECT_TRUE(IsPositiveClique(*gd, result->support));
}

TEST(CoauthorRecoveryTest, FlippedDifferenceFindsDisappearingGroup) {
  Rng rng(102);
  CoauthorConfig config;
  config.num_authors = 2000;
  config.emerging_sizes = {5};
  config.disappearing_sizes = {6, 4};
  auto data = GenerateCoauthorData(config, &rng);
  ASSERT_TRUE(data.ok());
  auto gd = BuildDifferenceGraph(data->g2, data->g1);  // disappearing view
  ASSERT_TRUE(gd.ok());
  auto result = RunNewSea(gd->PositivePart());
  ASSERT_TRUE(result.ok());
  std::vector<std::vector<VertexId>> planted;
  for (const auto& group : data->disappearing) {
    planted.push_back(group.members);
  }
  EXPECT_GE(BestPrecision(result->support, planted), 0.8);
}

TEST(CoauthorRecoveryTest, DcsGreedyDensityAtLeastPlantedDensity) {
  Rng rng(103);
  CoauthorConfig config;
  config.num_authors = 2000;
  auto data = GenerateCoauthorData(config, &rng);
  ASSERT_TRUE(data.ok());
  auto gd = BuildDifferenceGraph(data->g1, data->g2);
  ASSERT_TRUE(gd.ok());
  auto result = RunDcsGreedy(*gd);
  ASSERT_TRUE(result.ok());
  double best_planted = 0.0;
  for (const auto& group : data->emerging) {
    best_planted =
        std::max(best_planted, AverageDegreeDensity(*gd, group.members));
  }
  // Greedy's candidate set contains near-planted solutions; its output must
  // be at least as dense as... not guaranteed in general, but with planted
  // cliques dominating the noise this holds (and is the paper's point).
  EXPECT_GE(result->density, 0.8 * best_planted);
}

TEST(KeywordRecoveryTest, EmergingTopicIsTopAffinityContrast) {
  Rng rng(104);
  KeywordConfig config;
  config.noise_vocabulary = 500;
  config.titles_per_era = 8000;
  auto data = GenerateKeywordData(config, &rng);
  ASSERT_TRUE(data.ok());
  auto gd = BuildDifferenceGraph(data->g1, data->g2);
  ASSERT_TRUE(gd.ok());
  auto result = RunNewSea(gd->PositivePart());
  ASSERT_TRUE(result.ok());
  // The found topic must overlap an emerging planted topic, not a stable or
  // disappearing one.
  std::vector<std::vector<VertexId>> emerging;
  for (size_t t = 0; t < data->topics.size(); ++t) {
    if (data->topics[t].trend == TopicTrend::kEmerging) {
      emerging.push_back(data->topic_members[t]);
    }
  }
  EXPECT_GE(BestJaccard(result->support, emerging), 0.5);
}

TEST(KeywordRecoveryTest, StableTopicsAreNotContrastSubgraphs) {
  Rng rng(105);
  KeywordConfig config;
  config.noise_vocabulary = 500;
  config.titles_per_era = 8000;
  auto data = GenerateKeywordData(config, &rng);
  ASSERT_TRUE(data.ok());
  auto gd = BuildDifferenceGraph(data->g1, data->g2);
  ASSERT_TRUE(gd.ok());
  auto result = RunNewSea(gd->PositivePart());
  ASSERT_TRUE(result.ok());
  std::vector<std::vector<VertexId>> stable;
  for (size_t t = 0; t < data->topics.size(); ++t) {
    if (data->topics[t].trend == TopicTrend::kStable) {
      stable.push_back(data->topic_members[t]);
    }
  }
  EXPECT_LE(BestJaccard(result->support, stable), 0.34)
      << "a stable topic leaked into the contrast result";
}

TEST(SignedPairRecoveryTest, ConsistentGroupOverlapsDcsadResult) {
  Rng rng(106);
  SignedPairConfig config;
  config.num_editors = 3000;
  config.consistent_size = 80;
  config.conflicting_size = 50;
  auto data = GenerateSignedPairData(config, &rng);
  ASSERT_TRUE(data.ok());
  auto gd = BuildDifferenceGraph(data->negative, data->positive);
  ASSERT_TRUE(gd.ok());
  auto result = RunDcsGreedy(*gd);
  ASSERT_TRUE(result.ok());
  // The consistent community should dominate the found average-degree DCS.
  std::set<VertexId> planted(data->consistent_group.begin(),
                             data->consistent_group.end());
  size_t overlap = 0;
  for (VertexId v : result->subset) overlap += planted.contains(v) ? 1 : 0;
  EXPECT_GE(static_cast<double>(overlap) /
                static_cast<double>(result->subset.size()),
            0.5);
}

TEST(InterestSocialRecoveryTest, InterestOnlyCliqueFoundByNewSea) {
  Rng rng(107);
  InterestSocialConfig config = MovieLikeConfig();
  config.num_users = 3000;
  config.num_clusters = 30;
  auto data = GenerateInterestSocialData(config, &rng);
  ASSERT_TRUE(data.ok());
  auto gd = BuildDifferenceGraph(data->social, data->interest);
  ASSERT_TRUE(gd.ok());
  auto result = RunNewSea(gd->PositivePart());
  ASSERT_TRUE(result.ok());
  EXPECT_GE(BestPrecision(result->support, data->interest_only_cliques), 0.8);
}

}  // namespace
}  // namespace dcs
