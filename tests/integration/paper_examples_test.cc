// Tests pinned directly to statements in the paper: the Fig. 1 walkthrough,
// the Theorem 1 reduction, Properties 1 & 2, the Motzkin–Straus connection,
// and the §IV-B O(n)-approximation argument.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/coordinate_descent.h"
#include "core/dcs_greedy.h"
#include "core/newsea.h"
#include "core/refinement.h"
#include "core/seacd.h"
#include "densest/exact.h"
#include "densest/peel.h"
#include "gen/random_graphs.h"
#include "graph/components.h"
#include "graph/difference.h"
#include "graph/stats.h"
#include "test_util.h"
#include "util/rng.h"

namespace dcs {
namespace {

using ::dcs::testing::Fig1Gd;
using ::dcs::testing::MakeGraph;
using ::dcs::testing::MakeHardnessReduction;

// §III-B: the optimal value is positive iff GD has a positive edge;
// otherwise both optima are 0 with singleton solutions.
TEST(PaperSection3Test, NoPositiveEdgeMeansZeroOptimum) {
  Graph gd = MakeGraph(4, {{0, 1, -2.0}, {1, 2, -0.5}});
  auto dcsad = ExactDcsadBruteForce(gd);
  ASSERT_TRUE(dcsad.ok());
  EXPECT_DOUBLE_EQ(dcsad->density, 0.0);
  EXPECT_EQ(dcsad->subset.size(), 1u);
  auto dcsga = ExactDcsgaBruteForce(gd);
  ASSERT_TRUE(dcsga.ok());
  EXPECT_DOUBLE_EQ(dcsga->affinity, 0.0);
  EXPECT_EQ(dcsga->support.size(), 1u);
}

TEST(PaperSection3Test, PositiveEdgeMeansPositiveOptimum) {
  Graph gd = MakeGraph(4, {{0, 1, 0.5}, {1, 2, -3.0}});
  auto dcsad = ExactDcsadBruteForce(gd);
  ASSERT_TRUE(dcsad.ok());
  EXPECT_GT(dcsad->density, 0.0);
  auto dcsga = ExactDcsgaBruteForce(gd);
  ASSERT_TRUE(dcsga.ok());
  EXPECT_GT(dcsga->affinity, 0.0);
}

// Property 1: a disconnected S is dominated by one of its components.
TEST(Property1Test, BestComponentDominatesDisconnectedSet) {
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    auto gd = RandomSignedGraph(20, 40, 0.6, 0.5, 3.0, &rng);
    ASSERT_TRUE(gd.ok());
    // A random subset, possibly disconnected.
    std::vector<VertexId> subset;
    for (VertexId v = 0; v < 20; ++v) {
      if (rng.Bernoulli(0.4)) subset.push_back(v);
    }
    if (subset.empty()) continue;
    const double whole = AverageDegreeDensity(*gd, subset);
    double best_component = -1e300;
    for (const auto& comp : InducedComponents(*gd, subset)) {
      best_component =
          std::max(best_component, AverageDegreeDensity(*gd, comp));
    }
    EXPECT_GE(best_component, whole - 1e-9);
  }
}

// Property 2: same statement for affinity embeddings with f >= 0.
TEST(Property2Test, ComponentEmbeddingDominates) {
  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    auto gd = RandomSignedGraph(16, 30, 0.7, 0.5, 3.0, &rng);
    ASSERT_TRUE(gd.ok());
    std::vector<VertexId> subset;
    for (VertexId v = 0; v < 16; ++v) {
      if (rng.Bernoulli(0.4)) subset.push_back(v);
    }
    if (subset.empty()) continue;
    Embedding x = Embedding::UniformOn(16, subset);
    const double f = x.Affinity(*gd);
    if (f < 0.0) continue;  // Property 2 assumes f(x) >= 0
    double best = 0.0;
    for (const auto& comp : InducedComponents(*gd, subset)) {
      Embedding y = Embedding::UniformOn(16, comp);
      best = std::max(best, y.Affinity(*gd));
    }
    EXPECT_GE(best, f - 1e-9);
  }
}

// Theorem 1 reduction: optimal density = max-clique size − 1.
TEST(Theorem1Test, OptimalDensityEqualsCliqueSizeMinusOne) {
  // Graph with max clique {1,2,4,5} of size 4 and assorted extra edges.
  std::vector<std::pair<VertexId, VertexId>> edges{
      {1, 2}, {1, 4}, {1, 5}, {2, 4}, {2, 5}, {4, 5},  // K4
      {0, 1}, {3, 4}, {0, 3},
  };
  auto reduction = MakeHardnessReduction(6, edges);
  auto gd = BuildDifferenceGraph(reduction.g1, reduction.g2);
  ASSERT_TRUE(gd.ok());
  auto exact = ExactDcsadBruteForce(*gd);
  ASSERT_TRUE(exact.ok());
  EXPECT_DOUBLE_EQ(exact->density, 3.0);
  EXPECT_EQ(exact->subset, (std::vector<VertexId>{1, 2, 4, 5}));
}

// Theorem 3 reduction: DCSGA on (empty, G) equals max affinity of G, which
// for an unweighted graph is 1 − 1/k by Motzkin–Straus.
TEST(Theorem3Test, MotzkinStrausThroughDifferenceGraph) {
  GraphBuilder builder(7);
  std::vector<VertexId> clique{0, 2, 4, 6};
  ASSERT_TRUE(AddClique(&builder, clique, 1.0).ok());
  ASSERT_TRUE(builder.AddEdge(1, 3, 1.0).ok());
  auto g2 = builder.Build();
  ASSERT_TRUE(g2.ok());
  auto gd = BuildDifferenceGraph(Graph(7), *g2);
  ASSERT_TRUE(gd.ok());
  auto exact = ExactDcsgaBruteForce(*gd);
  ASSERT_TRUE(exact.ok());
  EXPECT_NEAR(exact->affinity, 1.0 - 1.0 / 4.0, 1e-9);
  EXPECT_EQ(exact->support, clique);
}

// §IV-B case 2: the heaviest edge is a 1/(n−1) approximation; an n-clique of
// uniform weight D(u,v) realizes the bound.
TEST(Section4Test, HeaviestEdgeApproximationBoundIsTight) {
  const VertexId n = 8;
  GraphBuilder builder(n);
  std::vector<VertexId> all;
  for (VertexId v = 0; v < n; ++v) all.push_back(v);
  ASSERT_TRUE(AddClique(&builder, all, 2.0).ok());
  auto gd = builder.Build();
  ASSERT_TRUE(gd.ok());
  auto exact = ExactDcsadBruteForce(*gd);
  ASSERT_TRUE(exact.ok());
  EXPECT_DOUBLE_EQ(exact->density, 2.0 * (n - 1));  // whole clique
  // Heaviest-edge candidate achieves exactly OPT/(n−1).
  std::vector<VertexId> pair{0, 1};
  EXPECT_DOUBLE_EQ(AverageDegreeDensity(*gd, pair),
                   exact->density / static_cast<double>(n - 1));
}

// Theorem 5 consequence: an optimal DCSGA support is a positive clique, so
// running the pipeline on GD+ loses nothing; and NewSEA's refined output on
// GD matches the exact optimum on small instances.
TEST(Theorem5Test, NewSeaMatchesExactOnSmallSignedGraphs) {
  Rng rng(17);
  int checked = 0;
  for (int trial = 0; trial < 12; ++trial) {
    auto gd = RandomSignedGraph(11, 26, 0.6, 0.5, 3.0, &rng);
    ASSERT_TRUE(gd.ok());
    auto exact = ExactDcsgaBruteForce(*gd);
    ASSERT_TRUE(exact.ok());
    DcsgaOptions options;
    options.seacd.descent.epsilon_scale = 1e-9;
    options.refinement_descent.epsilon_scale = 1e-9;
    auto found = RunDcsgaAllInits(gd->PositivePart(), options);
    ASSERT_TRUE(found.ok());
    EXPECT_LE(found->affinity, exact->affinity + 1e-6);
    if (std::fabs(found->affinity - exact->affinity) < 1e-4) ++checked;
  }
  // Local search with all initializations should hit the optimum on the
  // overwhelming majority of these tiny instances.
  EXPECT_GE(checked, 9);
}

// The Fig. 1 walkthrough end to end: both problems, all algorithms agree
// with the exact oracles on this 5-vertex example.
TEST(Fig1EndToEndTest, AllSolversAgreeWithOracles) {
  Graph gd = Fig1Gd();
  auto exact_ad = ExactDcsadBruteForce(gd);
  auto exact_ga = ExactDcsgaBruteForce(gd);
  ASSERT_TRUE(exact_ad.ok() && exact_ga.ok());

  auto greedy = RunDcsGreedy(gd);
  ASSERT_TRUE(greedy.ok());
  EXPECT_LE(greedy->density, exact_ad->density + 1e-9);
  EXPECT_GE(greedy->density,
            exact_ad->density / greedy->ratio_bound - 1e-9);

  auto newsea = RunNewSea(gd.PositivePart());
  ASSERT_TRUE(newsea.ok());
  EXPECT_NEAR(newsea->affinity, exact_ga->affinity, 1e-4);
  EXPECT_TRUE(IsPositiveClique(gd, newsea->support));
}

}  // namespace
}  // namespace dcs
