// JobJournal tests: request/response serialization round trips, the
// append-then-reopen cycle, Replay's exactly-once fold, and the trust
// model — a torn tail and a flipped bit must read as absent, be counted,
// and converge back to fsck-clean via tail truncation.

#include "store/job_journal.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/mining.h"
#include "util/logging.h"

namespace dcs {
namespace {

std::string JournalPath(const char* name) {
  return ::testing::TempDir() + "job_journal_test_" + name + ".dcsj";
}

std::shared_ptr<JobJournal> OpenOrDie(const std::string& path,
                                      JobJournalOptions options = {}) {
  Result<std::shared_ptr<JobJournal>> journal =
      JobJournal::Open(path, options);
  DCS_CHECK(journal.ok()) << journal.status().ToString();
  return std::move(journal).value();
}

std::span<const uint8_t> AsBytes(const std::string& bytes) {
  return {reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size()};
}

// A request exercising every serialized field, including both optionals.
MiningRequest FullRequest() {
  MiningRequest request;
  request.measure = Measure::kGraphAffinity;
  request.alpha = 1.625;
  request.flip = true;
  request.discretize = DiscretizeSpec{};
  request.discretize->strong_pos = 6.5;
  request.clamp_weights_above = 2.25;
  request.top_k = 4;
  request.disjoint = false;
  request.min_density = 0.125;
  request.min_affinity = 0.0625;
  request.ga_solver.parallelism = 3;
  request.warm_start = true;
  request.priority = -7;
  request.deadline_seconds = 12.5;
  request.ad_solver_name = "dcsad";
  request.ga_solver_name = "custom-ga";
  return request;
}

MiningResponse SampleResponse() {
  MiningResponse response;
  RankedSubgraph ad;
  ad.vertices = {0, 2, 3};
  ad.value = 2.3333333333333335;
  ad.ratio_bound = 0.5;
  response.average_degree.push_back(ad);
  RankedSubgraph ga;
  ga.vertices = {1, 2};
  ga.weights = {0.5, 0.5};
  ga.value = 1.5000000000000002;
  ga.positive_clique = true;
  response.graph_affinity.push_back(ga);
  // Telemetry must NOT round-trip: it is process state, not mined content.
  response.telemetry.cd_iterations = 42;
  return response;
}

TEST(JobJournalTest, RequestRoundTripsBitExactly) {
  const MiningRequest request = FullRequest();
  const std::string encoded = JobJournal::EncodeRequest(request);
  Result<MiningRequest> decoded = JobJournal::DecodeRequest(AsBytes(encoded));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(JobJournal::EncodeRequest(*decoded), encoded);
  EXPECT_EQ(decoded->measure, Measure::kGraphAffinity);
  EXPECT_EQ(decoded->alpha, 1.625);
  ASSERT_TRUE(decoded->discretize.has_value());
  EXPECT_EQ(decoded->discretize->strong_pos, 6.5);
  ASSERT_TRUE(decoded->clamp_weights_above.has_value());
  EXPECT_EQ(*decoded->clamp_weights_above, 2.25);
  EXPECT_EQ(decoded->priority, -7);
  EXPECT_EQ(decoded->ga_solver_name, "custom-ga");
  EXPECT_EQ(decoded->ga_solver.cancel, nullptr);
}

TEST(JobJournalTest, DecodeRequestRejectsGarbage) {
  const std::string encoded = JobJournal::EncodeRequest(MiningRequest{});
  // Truncation at every prefix length must fail, never crash or misparse.
  for (size_t len = 0; len < encoded.size(); ++len) {
    EXPECT_FALSE(
        JobJournal::DecodeRequest(AsBytes(encoded.substr(0, len))).ok())
        << "accepted prefix of " << len;
  }
  // Trailing bytes are rejected too: a parse must consume the exact image.
  EXPECT_FALSE(JobJournal::DecodeRequest(AsBytes(encoded + "x")).ok());
  // Out-of-range measure enum.
  std::string bad = encoded;
  bad[0] = 7;
  EXPECT_FALSE(JobJournal::DecodeRequest(AsBytes(bad)).ok());
}

TEST(JobJournalTest, ResponseContentRoundTripsWithoutTelemetry) {
  const MiningResponse response = SampleResponse();
  const std::string encoded = JobJournal::EncodeResponseContent(response);
  Result<MiningResponse> decoded =
      JobJournal::DecodeResponseContent(AsBytes(encoded));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(JobJournal::EncodeResponseContent(*decoded), encoded);
  ASSERT_EQ(decoded->average_degree.size(), 1u);
  EXPECT_EQ(decoded->average_degree[0].vertices,
            (std::vector<VertexId>{0, 2, 3}));
  EXPECT_EQ(decoded->average_degree[0].value, 2.3333333333333335);
  ASSERT_EQ(decoded->graph_affinity.size(), 1u);
  EXPECT_TRUE(decoded->graph_affinity[0].positive_clique);
  // Telemetry is deliberately excluded from the image.
  EXPECT_EQ(decoded->telemetry.cd_iterations, 0u);
  EXPECT_EQ(JobJournal::ResponseFingerprint(response),
            JobJournal::ResponseFingerprint(*decoded));
}

TEST(JobJournalTest, OpenCreatesAndMissingFailsWithoutCreate) {
  const std::string path = JournalPath("open");
  std::filesystem::remove(path);
  {
    auto journal = OpenOrDie(path);
    EXPECT_EQ(journal->stats().admitted_records, 0u);
  }
  EXPECT_TRUE(std::filesystem::exists(path));
  JobJournalOptions no_create;
  no_create.create_if_missing = false;
  Result<std::shared_ptr<JobJournal>> missing =
      JobJournal::Open(JournalPath("does_not_exist"), no_create);
  ASSERT_FALSE(missing.ok());
  EXPECT_TRUE(missing.status().IsNotFound());
}

TEST(JobJournalTest, AppendReopenReplayFoldsExactlyOnce) {
  const std::string path = JournalPath("replay");
  std::filesystem::remove(path);
  {
    auto journal = OpenOrDie(path);
    // Job 7: admitted, started, done (with a response). Job 9: admitted
    // only. Job 11: admitted + failed. Admission order: 9 before 7.
    JournalAdmittedRecord nine;
    nine.job_id = 9;
    nine.tenant = 1;
    nine.admission_index = 1;
    nine.request = FullRequest();
    ASSERT_TRUE(journal->AppendAdmitted(nine).ok());

    JournalAdmittedRecord seven;
    seven.job_id = 7;
    seven.tenant = 0;
    seven.admission_index = 2;
    ASSERT_TRUE(journal->AppendAdmitted(seven).ok());
    ASSERT_TRUE(journal->AppendStarted(7).ok());
    JournalDoneRecord done;
    done.job_id = 7;
    done.state = JournalTerminalState::kDone;
    done.has_response = true;
    done.response = SampleResponse();
    ASSERT_TRUE(journal->AppendDone(done).ok());
    // A second Done for job 7 must lose to the first (exactly-once).
    JournalDoneRecord dupe = done;
    dupe.response.average_degree.clear();
    ASSERT_TRUE(journal->AppendDone(dupe).ok());

    JournalAdmittedRecord eleven;
    eleven.job_id = 11;
    eleven.tenant = 0;
    eleven.admission_index = 3;
    ASSERT_TRUE(journal->AppendAdmitted(eleven).ok());
    JournalDoneRecord failed;
    failed.job_id = 11;
    failed.state = JournalTerminalState::kFailed;
    failed.status_code = 2;  // kNotFound
    failed.status_message = "no such solver";
    ASSERT_TRUE(journal->AppendDone(failed).ok());
    // A Started record with no Admitted record is dropped by the fold.
    ASSERT_TRUE(journal->AppendStarted(99).ok());
    ASSERT_TRUE(journal->Flush().ok());
  }

  auto reopened = OpenOrDie(path);
  const JobJournalStats stats = reopened->stats();
  EXPECT_EQ(stats.admitted_records, 3u);
  EXPECT_EQ(stats.started_records, 2u);
  EXPECT_EQ(stats.done_records, 3u);
  Result<std::vector<JournalReplayJob>> replayed = reopened->Replay();
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  ASSERT_EQ(replayed->size(), 3u);
  // Admission order: 9 (index 1), 7 (index 2), 11 (index 3).
  EXPECT_EQ((*replayed)[0].admitted.job_id, 9u);
  EXPECT_FALSE((*replayed)[0].started);
  EXPECT_FALSE((*replayed)[0].done);
  EXPECT_EQ(JobJournal::EncodeRequest((*replayed)[0].admitted.request),
            JobJournal::EncodeRequest(FullRequest()));
  EXPECT_EQ((*replayed)[1].admitted.job_id, 7u);
  EXPECT_TRUE((*replayed)[1].started);
  ASSERT_TRUE((*replayed)[1].done);
  ASSERT_TRUE((*replayed)[1].done_record.has_response);
  // First Done wins: the response is the full one, bit-identical.
  EXPECT_EQ(
      JobJournal::EncodeResponseContent((*replayed)[1].done_record.response),
      JobJournal::EncodeResponseContent(SampleResponse()));
  EXPECT_EQ((*replayed)[2].admitted.job_id, 11u);
  ASSERT_TRUE((*replayed)[2].done);
  EXPECT_EQ((*replayed)[2].done_record.state, JournalTerminalState::kFailed);
  EXPECT_EQ((*replayed)[2].done_record.status_code, 2u);
  EXPECT_EQ((*replayed)[2].done_record.status_message, "no such solver");
}

TEST(JobJournalTest, TornTailReadsAsAbsentAndTruncatesClean) {
  const std::string path = JournalPath("torn");
  std::filesystem::remove(path);
  {
    auto journal = OpenOrDie(path);
    JournalAdmittedRecord first;
    first.job_id = 1;
    first.admission_index = 1;
    ASSERT_TRUE(journal->AppendAdmitted(first).ok());
    JournalAdmittedRecord second;
    second.job_id = 2;
    second.admission_index = 2;
    ASSERT_TRUE(journal->AppendAdmitted(second).ok());
    ASSERT_TRUE(journal->Flush().ok());
  }
  // Tear the tail: chop 5 bytes off the last frame, as a crash mid-write
  // would.
  const uintmax_t size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 5);

  Result<JournalFsckReport> before = JobJournal::Fsck(path);
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(before->superblock_ok);
  EXPECT_EQ(before->valid_records, 1u);
  EXPECT_GT(before->unreliable_tail_bytes, 0u);

  auto reopened = OpenOrDie(path);
  Result<std::vector<JournalReplayJob>> replayed = reopened->Replay();
  ASSERT_TRUE(replayed.ok());
  ASSERT_EQ(replayed->size(), 1u);  // the torn job reads as absent
  EXPECT_EQ((*replayed)[0].admitted.job_id, 1u);
  // Recovery converges the file back to fsck-clean without an append.
  ASSERT_TRUE(reopened->TruncateUnreliableTail().ok());
  EXPECT_GE(reopened->stats().truncations, 1u);
  EXPECT_GT(reopened->stats().truncated_tail_bytes, 0u);
  Result<JournalFsckReport> after = JobJournal::Fsck(path);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->unreliable_tail_bytes, 0u);
  EXPECT_EQ(after->valid_records, 1u);
}

TEST(JobJournalTest, FlippedPayloadBitReadsAsAbsent) {
  const std::string path = JournalPath("bitflip");
  std::filesystem::remove(path);
  uint64_t first_offset = 0;
  uint64_t first_payload = 0;
  {
    auto journal = OpenOrDie(path);
    JournalAdmittedRecord first;
    first.job_id = 1;
    first.admission_index = 1;
    ASSERT_TRUE(journal->AppendAdmitted(first).ok());
    JournalAdmittedRecord second;
    second.job_id = 2;
    second.admission_index = 2;
    ASSERT_TRUE(journal->AppendAdmitted(second).ok());
    ASSERT_TRUE(journal->Flush().ok());
    const std::vector<JournalRecordInfo> records = journal->ListRecords();
    ASSERT_EQ(records.size(), 2u);
    first_offset = records[0].offset;
    first_payload = records[0].payload_bytes;
  }
  // Flip one payload bit of the *first* record: structure stays walkable,
  // so the second record must survive while the first reads as absent.
  {
    std::fstream file(path,
                      std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.is_open());
    file.seekg(static_cast<std::streamoff>(first_offset + 32 +
                                           first_payload / 2));
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    file.seekp(static_cast<std::streamoff>(first_offset + 32 +
                                           first_payload / 2));
    file.write(&byte, 1);
  }
  Result<JournalFsckReport> fsck = JobJournal::Fsck(path);
  ASSERT_TRUE(fsck.ok());
  EXPECT_EQ(fsck->corrupt_pages, 1u);

  auto reopened = OpenOrDie(path);
  Result<std::vector<JournalReplayJob>> replayed = reopened->Replay();
  ASSERT_TRUE(replayed.ok());
  ASSERT_EQ(replayed->size(), 1u);
  EXPECT_EQ((*replayed)[0].admitted.job_id, 2u);
  EXPECT_GE(reopened->stats().corrupt_pages, 1u);
}

TEST(JobJournalTest, AlwaysDurabilityFsyncsPerAppend) {
  const std::string path = JournalPath("always");
  std::filesystem::remove(path);
  JobJournalOptions options;
  options.durability = JournalDurability::kAlways;
  auto journal = OpenOrDie(path, options);
  JournalAdmittedRecord record;
  record.job_id = 1;
  record.admission_index = 1;
  ASSERT_TRUE(journal->AppendAdmitted(record).ok());
  ASSERT_TRUE(journal->AppendStarted(1).ok());
  const JobJournalStats stats = journal->stats();
  EXPECT_EQ(stats.appended_records, 2u);
  EXPECT_GE(stats.fsyncs, 2u);
  EXPECT_GT(stats.file_bytes, 32u);
}

}  // namespace
}  // namespace dcs
