// ArtifactStore tests: record round trips and reopen persistence, the
// append-mostly last-record-wins directory, warm boot into a PipelineCache,
// async write-back, and the trust model — a truncated tail, a flipped bit,
// a foreign magic and a future format version must all read as absent,
// force the silent rebuild-and-overwrite path, and leave the store-warmed
// MiningResponses bit-identical to cold-built ones.

#include "store/artifact_store.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/miner_session.h"
#include "api/mining.h"
#include "api/mining_service.h"
#include "core/newsea.h"
#include "gen/coauthor.h"
#include "test_util.h"
#include "util/checksum.h"
#include "util/rng.h"

namespace dcs {
namespace {

using ::dcs::testing::Fig1G1;
using ::dcs::testing::Fig1G2;
using ::dcs::testing::Fig1Gd;
using ::dcs::testing::SerializeSubgraphs;

std::string StorePath(const char* name) {
  return ::testing::TempDir() + "artifact_store_test_" + name + ".dcs";
}

std::shared_ptr<ArtifactStore> OpenOrDie(const std::string& path) {
  Result<std::shared_ptr<ArtifactStore>> store = ArtifactStore::Open(path);
  DCS_CHECK(store.ok()) << store.status().ToString();
  return std::move(store).value();
}

// A fully populated pipeline (difference + GD+ + smart bounds) over Fig. 1,
// with a key exercising every optional field.
std::pair<PipelineCacheKey, PreparedPipeline> MakeFig1Pipeline() {
  PipelineCacheKey key;
  key.graph_fingerprint = PipelineGraphFingerprint(Fig1G1(), Fig1G2());
  key.alpha = 1.25;
  key.flip = true;
  key.discretize = DiscretizeSpec{};
  key.clamp_weights_above = 3.5;
  PreparedPipeline pipeline;
  pipeline.difference = Fig1Gd();
  pipeline.positive_part = pipeline.difference.PositivePart();
  pipeline.smart_bounds = ComputeSmartInitBounds(pipeline.positive_part);
  pipeline.has_ga_artifacts = true;
  pipeline.validated_nonnegative = true;
  return {key, pipeline};
}

void ExpectPipelinesBitIdentical(const PreparedPipeline& a,
                                 const PreparedPipeline& b) {
  EXPECT_EQ(a.difference.ContentFingerprint(),
            b.difference.ContentFingerprint());
  EXPECT_EQ(a.has_ga_artifacts, b.has_ga_artifacts);
  EXPECT_EQ(a.validated_nonnegative, b.validated_nonnegative);
  if (a.has_ga_artifacts && b.has_ga_artifacts) {
    EXPECT_EQ(a.positive_part.ContentFingerprint(),
              b.positive_part.ContentFingerprint());
    EXPECT_EQ(a.smart_bounds.w, b.smart_bounds.w);
    EXPECT_EQ(a.smart_bounds.tau, b.smart_bounds.tau);
    EXPECT_EQ(a.smart_bounds.mu, b.smart_bounds.mu);
    EXPECT_EQ(a.smart_bounds.max_incident, b.smart_bounds.max_incident);
    EXPECT_EQ(a.smart_bounds.order, b.smart_bounds.order);
  }
}

TEST(ArtifactStoreTest, OpenCreatesReopenKeepsEmpty) {
  const std::string path = StorePath("open_empty");
  std::filesystem::remove(path);
  {
    auto store = OpenOrDie(path);
    const ArtifactStoreStats stats = store->stats();
    EXPECT_EQ(stats.graph_records, 0u);
    EXPECT_EQ(stats.pipeline_records, 0u);
  }
  EXPECT_TRUE(std::filesystem::exists(path));
  auto reopened = OpenOrDie(path);
  EXPECT_EQ(reopened->stats().graph_records, 0u);

  ArtifactStoreOptions no_create;
  no_create.create_if_missing = false;
  Result<std::shared_ptr<ArtifactStore>> missing =
      ArtifactStore::Open(StorePath("does_not_exist"), no_create);
  EXPECT_FALSE(missing.ok());
  EXPECT_TRUE(missing.status().IsNotFound());
}

TEST(ArtifactStoreTest, GraphRoundTripByFingerprint) {
  const std::string path = StorePath("graph_roundtrip");
  std::filesystem::remove(path);
  auto store = OpenOrDie(path);
  const Graph g1 = Fig1G1();
  ASSERT_TRUE(store->PutGraph(g1).ok());
  EXPECT_TRUE(store->ContainsGraph(g1.ContentFingerprint()));
  EXPECT_FALSE(store->ContainsGraph(g1.ContentFingerprint() + 1));

  Result<Graph> loaded = store->LoadGraph(g1.ContentFingerprint());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->ContentFingerprint(), g1.ContentFingerprint());
  EXPECT_EQ(loaded->UndirectedEdges(), g1.UndirectedEdges());

  Result<Graph> absent = store->LoadGraph(0xDEADBEEFu);
  EXPECT_FALSE(absent.ok());
  EXPECT_TRUE(absent.status().IsNotFound());
}

TEST(ArtifactStoreTest, PipelineRoundTripAcrossReopen) {
  const std::string path = StorePath("pipeline_roundtrip");
  std::filesystem::remove(path);
  const auto [key, pipeline] = MakeFig1Pipeline();
  {
    auto store = OpenOrDie(path);
    ASSERT_TRUE(store->PutPipeline(key, pipeline).ok());
    Result<PreparedPipeline> same_handle = store->LoadPipeline(key);
    ASSERT_TRUE(same_handle.ok());
    ExpectPipelinesBitIdentical(*same_handle, pipeline);
  }
  auto reopened = OpenOrDie(path);
  Result<PreparedPipeline> loaded = reopened->LoadPipeline(key);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectPipelinesBitIdentical(*loaded, pipeline);

  // A key differing in any field — here alpha's sign bit — reads as absent
  // even though it may share the same record by hash-bucket.
  PipelineCacheKey other = key;
  other.alpha = -key.alpha;
  EXPECT_FALSE(reopened->LoadPipeline(other).ok());
}

TEST(ArtifactStoreTest, NewestRecordWinsPerKey) {
  const std::string path = StorePath("last_wins");
  std::filesystem::remove(path);
  auto [key, full] = MakeFig1Pipeline();
  PreparedPipeline difference_only;
  difference_only.difference = full.difference;
  {
    auto store = OpenOrDie(path);
    ASSERT_TRUE(store->PutPipeline(key, difference_only).ok());
    ASSERT_TRUE(store->PutPipeline(key, full).ok());
    // One directory entry, two physical records.
    EXPECT_EQ(store->stats().pipeline_records, 1u);
    EXPECT_EQ(store->stats().appended_records, 2u);
  }
  Result<ArtifactFsckReport> report = ArtifactStore::Fsck(path);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->valid_records, 2u);
  EXPECT_EQ(report->corrupt_pages, 0u);

  auto reopened = OpenOrDie(path);
  Result<PreparedPipeline> loaded = reopened->LoadPipeline(key);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->has_ga_artifacts);  // the newer, upgraded record
  ExpectPipelinesBitIdentical(*loaded, full);
}

TEST(ArtifactStoreTest, AsyncWriteBackLandsAfterFlush) {
  const std::string path = StorePath("async");
  std::filesystem::remove(path);
  const auto [key, pipeline] = MakeFig1Pipeline();
  {
    auto store = OpenOrDie(path);
    store->PutPipelineAsync(
        key, std::make_shared<const PreparedPipeline>(pipeline));
    store->Flush();
    EXPECT_EQ(store->stats().appended_records, 1u);
    EXPECT_EQ(store->stats().write_errors, 0u);
  }
  auto reopened = OpenOrDie(path);
  Result<PreparedPipeline> loaded = reopened->LoadPipeline(key);
  ASSERT_TRUE(loaded.ok());
  ExpectPipelinesBitIdentical(*loaded, pipeline);
}

TEST(ArtifactStoreTest, WarmBootHydratesMatchingFingerprint) {
  const std::string path = StorePath("warm_boot");
  std::filesystem::remove(path);
  auto [key_a, pipeline] = MakeFig1Pipeline();
  PipelineCacheKey key_a2 = key_a;
  key_a2.alpha = 2.0;
  PipelineCacheKey key_b = key_a;
  key_b.graph_fingerprint = key_a.graph_fingerprint + 1;
  auto store = OpenOrDie(path);
  ASSERT_TRUE(store->PutPipeline(key_a, pipeline).ok());
  ASSERT_TRUE(store->PutPipeline(key_a2, pipeline).ok());
  ASSERT_TRUE(store->PutPipeline(key_b, pipeline).ok());

  PipelineCache cache;
  EXPECT_EQ(store->WarmBootFingerprint(key_a.graph_fingerprint, &cache), 2u);
  EXPECT_EQ(cache.EntriesFor(key_a.graph_fingerprint), 2u);
  EXPECT_EQ(cache.EntriesFor(key_b.graph_fingerprint), 0u);

  PipelineCache all;
  EXPECT_EQ(store->WarmBootAll(&all), 3u);
  EXPECT_EQ(all.stats().entries, 3u);
}

// ---- facade integration ----------------------------------------------------

CoauthorData PlantedCoauthor() {
  Rng rng(20260807);
  CoauthorConfig config;
  config.num_authors = 300;
  config.emerging_sizes = {5};
  config.disappearing_sizes = {4};
  Result<CoauthorData> data = GenerateCoauthorData(config, &rng);
  DCS_CHECK(data.ok());
  return std::move(data).value();
}

MiningRequest StandardRequest() {
  MiningRequest request;
  request.measure = Measure::kBoth;
  request.alpha = 1.0;
  request.top_k = 2;
  request.discretize = DiscretizeSpec{};
  return request;
}

// Mines `request` in a fresh session, optionally store-attached; returns
// the response and (via out-params) the session's store counters.
MiningResponse MineOnce(const CoauthorData& data,
                        const MiningRequest& request,
                        std::shared_ptr<ArtifactStore> store,
                        uint64_t* hits = nullptr,
                        uint64_t* misses = nullptr) {
  SessionOptions options;
  options.artifact_store = std::move(store);
  Result<MinerSession> session =
      MinerSession::Create(data.g1, data.g2, options);
  DCS_CHECK(session.ok()) << session.status().ToString();
  Result<MiningResponse> response = session->Mine(request);
  DCS_CHECK(response.ok()) << response.status().ToString();
  if (hits != nullptr) *hits = session->num_store_hits();
  if (misses != nullptr) *misses = session->num_store_misses();
  if (session->artifact_store() != nullptr) {
    session->artifact_store()->Flush();
  }
  return std::move(response).value();
}

TEST(ArtifactStoreSessionTest, StoreWarmedEqualsColdBuilt) {
  const std::string path = StorePath("session_warm");
  std::filesystem::remove(path);
  const CoauthorData data = PlantedCoauthor();
  const MiningRequest request = StandardRequest();

  const MiningResponse cold = MineOnce(data, request, nullptr);

  // First store-attached run: a miss that writes the pipeline back.
  uint64_t hits = 0, misses = 0;
  const MiningResponse first =
      MineOnce(data, request, OpenOrDie(path), &hits, &misses);
  EXPECT_EQ(hits, 0u);
  EXPECT_GE(misses, 1u);
  EXPECT_EQ(first.telemetry.store_misses, misses);

  // Second run on a fresh handle: the warm boot serves the pipeline from
  // disk — and the response must be bit-identical to the cold build.
  const MiningResponse warmed =
      MineOnce(data, request, OpenOrDie(path), &hits, &misses);
  EXPECT_GE(hits, 1u);
  EXPECT_EQ(misses, 0u);
  EXPECT_GE(warmed.telemetry.store_hits, 1u);
  EXPECT_EQ(warmed.telemetry.store_corrupt_pages, 0u);

  EXPECT_EQ(SerializeSubgraphs(cold), SerializeSubgraphs(first));
  EXPECT_EQ(SerializeSubgraphs(cold), SerializeSubgraphs(warmed));
}

TEST(ArtifactStoreSessionTest, MiningServiceAttachesStore) {
  const std::string path = StorePath("service");
  std::filesystem::remove(path);
  const CoauthorData data = PlantedCoauthor();
  const MiningRequest request = StandardRequest();
  const MiningResponse cold = MineOnce(data, request, nullptr);

  auto store = OpenOrDie(path);
  {
    Result<MinerSession> session = MinerSession::Create(data.g1, data.g2);
    ASSERT_TRUE(session.ok());
    MiningServiceOptions options;
    options.artifact_store = store;
    MiningService service(std::move(*session), options);
    Result<JobId> job = service.Submit(request);
    ASSERT_TRUE(job.ok());
    Result<JobStatus> status = service.Wait(*job);
    ASSERT_TRUE(status.ok());
    ASSERT_EQ(status->state, JobState::kDone);
    EXPECT_EQ(SerializeSubgraphs(cold),
              SerializeSubgraphs(status->response));
  }
  store->Flush();
  EXPECT_GE(store->stats().pipeline_records, 1u);

  // A fresh service over the same store warm-boots and reports the hit.
  {
    Result<MinerSession> session = MinerSession::Create(data.g1, data.g2);
    ASSERT_TRUE(session.ok());
    MiningServiceOptions options;
    options.artifact_store = OpenOrDie(path);
    MiningService service(std::move(*session), options);
    Result<JobId> job = service.Submit(request);
    ASSERT_TRUE(job.ok());
    Result<JobStatus> status = service.Wait(*job);
    ASSERT_TRUE(status.ok());
    ASSERT_EQ(status->state, JobState::kDone);
    EXPECT_GE(status->response.telemetry.store_hits, 1u);
    EXPECT_EQ(SerializeSubgraphs(cold),
              SerializeSubgraphs(status->response));
  }
}

// ---- corruption recovery ---------------------------------------------------

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  DCS_CHECK(in.good());
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  DCS_CHECK(out.good());
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  DCS_CHECK(out.good());
}

// Seeds `path` with one store-attached mine, then corrupts it via `corrupt`
// and asserts the recovery contract: the next store-attached session still
// answers bit-identically, counts corruption where expected, silently
// rebuilds, and its write-back leaves a store that passes fsck and serves
// the following session from disk again.
void ExpectRecoversFromCorruption(
    const std::string& path, bool expect_corrupt_pages,
    const std::function<void(const std::string&)>& corrupt) {
  std::filesystem::remove(path);
  const CoauthorData data = PlantedCoauthor();
  const MiningRequest request = StandardRequest();
  const MiningResponse cold = MineOnce(data, request, nullptr);
  MineOnce(data, request, OpenOrDie(path));  // seed the store

  corrupt(path);

  uint64_t hits = 0, misses = 0;
  const MiningResponse recovered =
      MineOnce(data, request, OpenOrDie(path), &hits, &misses);
  EXPECT_EQ(SerializeSubgraphs(cold), SerializeSubgraphs(recovered));
  EXPECT_GE(misses, 1u) << "corrupt store should force a rebuild";
  if (expect_corrupt_pages) {
    EXPECT_GE(recovered.telemetry.store_corrupt_pages, 1u);
  }

  // The rebuild-and-overwrite pass must leave a clean store...
  Result<ArtifactFsckReport> report = ArtifactStore::Fsck(path);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->superblock_ok);
  EXPECT_EQ(report->corrupt_pages, 0u);
  EXPECT_GE(report->valid_records, 1u);

  // ...that the next session warm-boots from, bit-identically.
  const MiningResponse rewarmed =
      MineOnce(data, request, OpenOrDie(path), &hits, &misses);
  EXPECT_GE(hits, 1u);
  EXPECT_EQ(misses, 0u);
  EXPECT_EQ(SerializeSubgraphs(cold), SerializeSubgraphs(rewarmed));
}

TEST(ArtifactStoreCorruptionTest, TruncatedFile) {
  ExpectRecoversFromCorruption(
      StorePath("truncated"), /*expect_corrupt_pages=*/true,
      [](const std::string& path) {
        // Chop into the middle of the last record: the scan keeps the valid
        // prefix and discards the torn tail.
        const uintmax_t size = std::filesystem::file_size(path);
        std::filesystem::resize_file(path, size - size / 3);
      });
}

TEST(ArtifactStoreCorruptionTest, SingleFlippedBit) {
  ExpectRecoversFromCorruption(
      StorePath("bitflip"), /*expect_corrupt_pages=*/true,
      [](const std::string& path) {
        // One bit inside the LIVE tail record (the newest pipeline, the one
        // a warm boot must load). Rot in a superseded record is invisible to
        // sessions by design — only fsck reports it — so the recovery
        // contract is exercised on a record that is actually read.
        std::string bytes = ReadFileBytes(path);
        ASSERT_GT(bytes.size(), 200u);
        bytes[bytes.size() - 5] ^= 0x10;
        WriteFileBytes(path, bytes);
      });
}

TEST(ArtifactStoreCorruptionTest, WrongMagic) {
  ExpectRecoversFromCorruption(
      StorePath("wrong_magic"), /*expect_corrupt_pages=*/true,
      [](const std::string& path) {
        std::string bytes = ReadFileBytes(path);
        ASSERT_GE(bytes.size(), 8u);
        bytes.replace(0, 8, "NOTSTORE");
        WriteFileBytes(path, bytes);
      });
}

TEST(ArtifactStoreCorruptionTest, FutureFormatVersion) {
  ExpectRecoversFromCorruption(
      StorePath("future_version"), /*expect_corrupt_pages=*/true,
      [](const std::string& path) {
        // A *checksum-valid* superblock from the future: the version gate
        // itself — not the checksum — must reject it.
        std::string bytes = ReadFileBytes(path);
        ASSERT_GE(bytes.size(), 32u);
        const uint32_t future = ArtifactStore::kFormatVersion + 1;
        bytes.replace(8, 4,
                      std::string(reinterpret_cast<const char*>(&future), 4));
        const uint64_t checksum = PageChecksum(bytes.data(), 16);
        bytes.replace(16, 8,
                      std::string(reinterpret_cast<const char*>(&checksum), 8));
        WriteFileBytes(path, bytes);
      });
}

TEST(ArtifactStoreCorruptionTest, FsckReportsDamage) {
  const std::string path = StorePath("fsck_damage");
  std::filesystem::remove(path);
  const auto [key, pipeline] = MakeFig1Pipeline();
  {
    auto store = OpenOrDie(path);
    ASSERT_TRUE(store->PutGraph(Fig1G1()).ok());
    ASSERT_TRUE(store->PutPipeline(key, pipeline).ok());
  }
  std::string bytes = ReadFileBytes(path);
  bytes[bytes.size() - 4] ^= 0x01;  // rot inside the last record
  WriteFileBytes(path, bytes);

  Result<ArtifactFsckReport> report = ArtifactStore::Fsck(path);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->superblock_ok);
  EXPECT_EQ(report->valid_records, 1u);
  EXPECT_EQ(report->corrupt_pages, 1u);
  EXPECT_GT(report->unreliable_tail_bytes, 0u);

  // The damaged record reads as absent through a handle, and is counted.
  auto store = OpenOrDie(path);
  EXPECT_FALSE(store->LoadPipeline(key).ok());
  EXPECT_TRUE(store->LoadGraph(Fig1G1().ContentFingerprint()).ok());
  EXPECT_GE(store->stats().corrupt_pages, 1u);
}

TEST(ArtifactStoreTest, ListRecordsOffsetAscending) {
  const std::string path = StorePath("ls");
  std::filesystem::remove(path);
  const auto [key, pipeline] = MakeFig1Pipeline();
  auto store = OpenOrDie(path);
  ASSERT_TRUE(store->PutGraph(Fig1G1()).ok());
  ASSERT_TRUE(store->PutGraph(Fig1G2()).ok());
  ASSERT_TRUE(store->PutPipeline(key, pipeline).ok());
  const std::vector<ArtifactRecordInfo> records = store->ListRecords();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].type, 1u);
  EXPECT_EQ(records[0].key, Fig1G1().ContentFingerprint());
  EXPECT_EQ(records[2].type, 2u);
  EXPECT_EQ(records[2].key, key.Hash());
  EXPECT_LT(records[0].offset, records[1].offset);
  EXPECT_LT(records[1].offset, records[2].offset);
}

}  // namespace
}  // namespace dcs
