#include "gen/random_graphs.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace dcs {
namespace {

TEST(ErdosRenyiTest, EdgeCountMatchesExpectation) {
  Rng rng(1);
  const VertexId n = 200;
  const double p = 0.05;
  auto g = ErdosRenyi(n, p, &rng);
  ASSERT_TRUE(g.ok());
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g->NumEdges()), expected,
              4.0 * std::sqrt(expected));
  for (const Edge& e : g->UndirectedEdges()) {
    EXPECT_DOUBLE_EQ(e.weight, 1.0);
    EXPECT_LT(e.u, e.v);
  }
}

TEST(ErdosRenyiTest, ExtremeProbabilities) {
  Rng rng(2);
  auto empty = ErdosRenyi(50, 0.0, &rng);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->NumEdges(), 0u);
  auto complete = ErdosRenyi(20, 1.0, &rng);
  ASSERT_TRUE(complete.ok());
  EXPECT_EQ(complete->NumEdges(), 190u);  // C(20,2)
}

TEST(ErdosRenyiTest, InvalidProbabilityRejected) {
  Rng rng(3);
  EXPECT_FALSE(ErdosRenyi(10, -0.1, &rng).ok());
  EXPECT_FALSE(ErdosRenyi(10, 1.5, &rng).ok());
}

TEST(ErdosRenyiTest, DeterministicGivenSeed) {
  Rng rng_a(7), rng_b(7);
  auto a = ErdosRenyi(100, 0.05, &rng_a);
  auto b = ErdosRenyi(100, 0.05, &rng_b);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->UndirectedEdges(), b->UndirectedEdges());
}

TEST(ErdosRenyiWeightedTest, WeightsInRange) {
  Rng rng(4);
  auto g = ErdosRenyiWeighted(80, 0.1, 0.5, 2.5, &rng);
  ASSERT_TRUE(g.ok());
  ASSERT_GT(g->NumEdges(), 0u);
  for (const Edge& e : g->UndirectedEdges()) {
    EXPECT_GE(e.weight, 0.5);
    EXPECT_LE(e.weight, 2.5);
  }
}

TEST(ErdosRenyiWeightedTest, BadWeightRangeRejected) {
  Rng rng(5);
  EXPECT_FALSE(ErdosRenyiWeighted(10, 0.5, 2.0, 1.0, &rng).ok());
}

TEST(ChungLuTest, AverageDegreeRoughlyMatches) {
  Rng rng(6);
  ChungLuParams params;
  params.n = 4000;
  params.average_degree = 10.0;
  params.exponent = 2.5;
  auto g = ChungLu(params, &rng);
  ASSERT_TRUE(g.ok());
  const double avg_degree =
      2.0 * static_cast<double>(g->NumEdges()) / params.n;
  EXPECT_NEAR(avg_degree, 10.0, 2.5);
}

TEST(ChungLuTest, DegreesAreHeavyTailed) {
  Rng rng(7);
  ChungLuParams params;
  params.n = 5000;
  params.average_degree = 8.0;
  params.exponent = 2.2;
  auto g = ChungLu(params, &rng);
  ASSERT_TRUE(g.ok());
  size_t max_degree = 0;
  for (VertexId v = 0; v < g->NumVertices(); ++v) {
    max_degree = std::max(max_degree, g->Degree(v));
  }
  // Heavy tail: hub degree far above the mean.
  EXPECT_GT(max_degree, 60u);
}

TEST(ChungLuTest, GeometricWeights) {
  Rng rng(8);
  ChungLuParams params;
  params.n = 500;
  params.average_degree = 6.0;
  params.weight_geometric_p = 0.5;
  auto g = ChungLu(params, &rng);
  ASSERT_TRUE(g.ok());
  bool saw_above_one = false;
  for (const Edge& e : g->UndirectedEdges()) {
    EXPECT_GE(e.weight, 1.0);
    saw_above_one |= e.weight > 1.0;
  }
  EXPECT_TRUE(saw_above_one);
}

TEST(ChungLuTest, InvalidParamsRejected) {
  Rng rng(9);
  ChungLuParams params;
  params.n = 0;
  EXPECT_FALSE(ChungLu(params, &rng).ok());
  params = ChungLuParams{};
  params.exponent = 1.0;
  EXPECT_FALSE(ChungLu(params, &rng).ok());
  params = ChungLuParams{};
  params.weight_geometric_p = 0.0;
  EXPECT_FALSE(ChungLu(params, &rng).ok());
}

TEST(AddCliqueTest, AddsAllPairs) {
  GraphBuilder builder(6);
  std::vector<VertexId> members{0, 2, 4};
  ASSERT_TRUE(AddClique(&builder, members, 1.5).ok());
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumEdges(), 3u);
  EXPECT_DOUBLE_EQ(g->EdgeWeight(0, 2), 1.5);
  EXPECT_DOUBLE_EQ(g->EdgeWeight(0, 4), 1.5);
  EXPECT_DOUBLE_EQ(g->EdgeWeight(2, 4), 1.5);
}

TEST(AddCliqueUniformTest, WeightsWithinRange) {
  GraphBuilder builder(5);
  Rng rng(10);
  std::vector<VertexId> members{0, 1, 2, 3, 4};
  ASSERT_TRUE(AddCliqueUniform(&builder, members, 1.0, 2.0, &rng).ok());
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumEdges(), 10u);
  for (const Edge& e : g->UndirectedEdges()) {
    EXPECT_GE(e.weight, 1.0);
    EXPECT_LE(e.weight, 2.0);
  }
}

TEST(RandomSignedGraphTest, SignMixMatchesFraction) {
  Rng rng(11);
  auto g = RandomSignedGraph(300, 3000, 0.7, 0.5, 2.0, &rng);
  ASSERT_TRUE(g.ok());
  const WeightStats stats = g->ComputeWeightStats();
  const double frac_positive =
      static_cast<double>(stats.num_positive_edges) /
      static_cast<double>(stats.num_positive_edges + stats.num_negative_edges);
  EXPECT_NEAR(frac_positive, 0.7, 0.05);
  EXPECT_LE(stats.max_weight, 2.0 * 2.0);  // accumulation can stack a little
  EXPECT_GE(stats.min_weight, -4.0);
}

TEST(RandomSignedGraphTest, InvalidArgumentsRejected) {
  Rng rng(12);
  EXPECT_FALSE(RandomSignedGraph(1, 5, 0.5, 0.5, 1.0, &rng).ok());
  EXPECT_FALSE(RandomSignedGraph(10, 5, 0.5, 0.0, 1.0, &rng).ok());
  EXPECT_FALSE(RandomSignedGraph(10, 5, 0.5, 2.0, 1.0, &rng).ok());
  EXPECT_FALSE(RandomSignedGraph(10, 5, 1.5, 0.5, 1.0, &rng).ok());
}

TEST(RandomSignedGraphTest, NoSelfLoops) {
  Rng rng(13);
  auto g = RandomSignedGraph(20, 100, 0.5, 0.5, 1.0, &rng);
  ASSERT_TRUE(g.ok());
  for (const Edge& e : g->UndirectedEdges()) EXPECT_NE(e.u, e.v);
}

}  // namespace
}  // namespace dcs
