#include "gen/signed_pair.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/difference.h"
#include "graph/stats.h"
#include "util/rng.h"

namespace dcs {
namespace {

SignedPairConfig SmallConfig() {
  SignedPairConfig config;
  config.num_editors = 1200;
  config.consistent_size = 60;
  config.conflicting_size = 40;
  return config;
}

TEST(SignedPairGenTest, RejectsOversizedCommunities) {
  Rng rng(1);
  SignedPairConfig config;
  config.num_editors = 50;
  config.consistent_size = 40;
  config.conflicting_size = 40;
  EXPECT_FALSE(GenerateSignedPairData(config, &rng).ok());
}

TEST(SignedPairGenTest, ShapesAndDisjointness) {
  Rng rng(2);
  auto data = GenerateSignedPairData(SmallConfig(), &rng);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->positive.NumVertices(), 1200u);
  EXPECT_EQ(data->negative.NumVertices(), 1200u);
  EXPECT_EQ(data->consistent_group.size(), 60u);
  EXPECT_EQ(data->conflicting_group.size(), 40u);
  std::set<VertexId> seen(data->consistent_group.begin(),
                          data->consistent_group.end());
  for (VertexId v : data->conflicting_group) {
    EXPECT_FALSE(seen.contains(v)) << "groups overlap at " << v;
  }
}

TEST(SignedPairGenTest, AllWeightsArePositiveInBothGraphs) {
  Rng rng(3);
  auto data = GenerateSignedPairData(SmallConfig(), &rng);
  ASSERT_TRUE(data.ok());
  for (const Edge& e : data->positive.UndirectedEdges()) EXPECT_GT(e.weight, 0.0);
  for (const Edge& e : data->negative.UndirectedEdges()) EXPECT_GT(e.weight, 0.0);
}

TEST(SignedPairGenTest, ConsistentGroupDominatesInPositiveDifference) {
  Rng rng(4);
  auto data = GenerateSignedPairData(SmallConfig(), &rng);
  ASSERT_TRUE(data.ok());
  auto gd_consistent =
      BuildDifferenceGraph(data->negative, data->positive);  // G1 − G2
  ASSERT_TRUE(gd_consistent.ok());
  const double group_density =
      AverageDegreeDensity(*gd_consistent, data->consistent_group);
  EXPECT_GT(group_density, 0.0);
  // The conflicting group should look bad under this orientation...
  const double conflict_density =
      AverageDegreeDensity(*gd_consistent, data->conflicting_group);
  EXPECT_GT(group_density, conflict_density);
  // ...and good under the flipped one.
  auto gd_conflicting = BuildDifferenceGraph(data->positive, data->negative);
  ASSERT_TRUE(gd_conflicting.ok());
  EXPECT_GT(AverageDegreeDensity(*gd_conflicting, data->conflicting_group),
            0.0);
}

TEST(SignedPairGenTest, BackboneCreatesBothSignsInDifference) {
  Rng rng(5);
  auto data = GenerateSignedPairData(SmallConfig(), &rng);
  ASSERT_TRUE(data.ok());
  auto gd = BuildDifferenceGraph(data->negative, data->positive);
  ASSERT_TRUE(gd.ok());
  const WeightStats stats = gd->ComputeWeightStats();
  EXPECT_GT(stats.num_positive_edges, 0u);
  EXPECT_GT(stats.num_negative_edges, 0u);
}

TEST(SignedPairGenTest, DeterministicGivenSeed) {
  Rng rng_a(6), rng_b(6);
  auto a = GenerateSignedPairData(SmallConfig(), &rng_a);
  auto b = GenerateSignedPairData(SmallConfig(), &rng_b);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->positive.UndirectedEdges(), b->positive.UndirectedEdges());
  EXPECT_EQ(a->consistent_group, b->consistent_group);
}

}  // namespace
}  // namespace dcs
