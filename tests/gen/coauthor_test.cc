#include "gen/coauthor.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/difference.h"
#include "graph/stats.h"
#include "util/rng.h"

namespace dcs {
namespace {

CoauthorConfig SmallConfig() {
  CoauthorConfig config;
  config.num_authors = 800;
  config.backbone_average_degree = 4.0;
  config.emerging_sizes = {4, 6};
  config.disappearing_sizes = {5};
  return config;
}

TEST(CoauthorGenTest, RejectsImpossibleConfigs) {
  Rng rng(1);
  CoauthorConfig config;
  config.num_authors = 10;
  config.emerging_sizes = {8, 8};
  EXPECT_FALSE(GenerateCoauthorData(config, &rng).ok());
  config = CoauthorConfig{};
  config.emerging_sizes = {1};
  EXPECT_FALSE(GenerateCoauthorData(config, &rng).ok());
}

TEST(CoauthorGenTest, ShapesAndGroupCounts) {
  Rng rng(2);
  auto data = GenerateCoauthorData(SmallConfig(), &rng);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->g1.NumVertices(), 800u);
  EXPECT_EQ(data->g2.NumVertices(), 800u);
  EXPECT_GT(data->g1.NumEdges(), 0u);
  EXPECT_GT(data->g2.NumEdges(), 0u);
  ASSERT_EQ(data->emerging.size(), 2u);
  ASSERT_EQ(data->disappearing.size(), 1u);
  EXPECT_EQ(data->emerging[0].members.size(), 4u);
  EXPECT_EQ(data->emerging[1].members.size(), 6u);
  EXPECT_EQ(data->disappearing[0].members.size(), 5u);
}

TEST(CoauthorGenTest, PlantedGroupsAreDisjoint) {
  Rng rng(3);
  auto data = GenerateCoauthorData(SmallConfig(), &rng);
  ASSERT_TRUE(data.ok());
  std::set<VertexId> seen;
  size_t total = 0;
  for (const auto& group : data->emerging) {
    seen.insert(group.members.begin(), group.members.end());
    total += group.members.size();
  }
  for (const auto& group : data->disappearing) {
    seen.insert(group.members.begin(), group.members.end());
    total += group.members.size();
  }
  EXPECT_EQ(seen.size(), total);
}

TEST(CoauthorGenTest, EmergingGroupsAreDenserInEra2) {
  Rng rng(4);
  auto data = GenerateCoauthorData(SmallConfig(), &rng);
  ASSERT_TRUE(data.ok());
  for (const auto& group : data->emerging) {
    const double rho1 = AverageDegreeDensity(data->g1, group.members);
    const double rho2 = AverageDegreeDensity(data->g2, group.members);
    EXPECT_GT(rho2, rho1 + 5.0)
        << group.name << ": era-2 density must dominate";
  }
  for (const auto& group : data->disappearing) {
    const double rho1 = AverageDegreeDensity(data->g1, group.members);
    const double rho2 = AverageDegreeDensity(data->g2, group.members);
    EXPECT_GT(rho1, rho2 + 5.0) << group.name;
  }
}

TEST(CoauthorGenTest, EmergingGroupIsPositiveCliqueInDifference) {
  Rng rng(5);
  auto data = GenerateCoauthorData(SmallConfig(), &rng);
  ASSERT_TRUE(data.ok());
  auto gd = BuildDifferenceGraph(data->g1, data->g2);
  ASSERT_TRUE(gd.ok());
  // Hot-era pairwise papers (≥1 each pair) minus cold-era noise should stay
  // positive for most pairs; require the group to at least be a clique in GD.
  for (const auto& group : data->emerging) {
    EXPECT_GT(AverageDegreeDensity(*gd, group.members), 0.0) << group.name;
  }
}

TEST(CoauthorGenTest, WeightsArePositiveIntegersLike) {
  Rng rng(6);
  auto data = GenerateCoauthorData(SmallConfig(), &rng);
  ASSERT_TRUE(data.ok());
  for (const Edge& e : data->g1.UndirectedEdges()) {
    EXPECT_GE(e.weight, 1.0);
  }
  for (const Edge& e : data->g2.UndirectedEdges()) {
    EXPECT_GE(e.weight, 1.0);
  }
}

TEST(CoauthorGenTest, DeterministicGivenSeed) {
  Rng rng_a(7), rng_b(7);
  auto a = GenerateCoauthorData(SmallConfig(), &rng_a);
  auto b = GenerateCoauthorData(SmallConfig(), &rng_b);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->g1.UndirectedEdges(), b->g1.UndirectedEdges());
  EXPECT_EQ(a->g2.UndirectedEdges(), b->g2.UndirectedEdges());
}

}  // namespace
}  // namespace dcs
