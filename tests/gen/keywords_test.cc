#include "gen/keywords.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/difference.h"
#include "graph/stats.h"
#include "util/rng.h"

namespace dcs {
namespace {

KeywordConfig SmallConfig() {
  KeywordConfig config;
  config.noise_vocabulary = 400;
  config.titles_per_era = 6000;
  return config;
}

TEST(KeywordGenTest, DefaultTopicsAreWellFormed) {
  const auto topics = DefaultDataMiningTopics();
  EXPECT_GE(topics.size(), 10u);
  int emerging = 0, disappearing = 0, stable = 0;
  for (const Topic& t : topics) {
    EXPECT_GE(t.keywords.size(), 2u);
    EXPECT_GT(t.popularity, 0.0);
    switch (t.trend) {
      case TopicTrend::kEmerging: ++emerging; break;
      case TopicTrend::kDisappearing: ++disappearing; break;
      case TopicTrend::kStable: ++stable; break;
    }
  }
  EXPECT_EQ(emerging, 5);     // Table V has 5 emerging rows
  EXPECT_EQ(disappearing, 5); // and 5 disappearing rows
  EXPECT_GE(stable, 3);
}

TEST(KeywordGenTest, VocabularyCoversTopicsAndNoise) {
  Rng rng(1);
  auto data = GenerateKeywordData(SmallConfig(), &rng);
  ASSERT_TRUE(data.ok());
  // ids dense and distinct
  std::set<std::string> distinct(data->vocabulary.begin(),
                                 data->vocabulary.end());
  EXPECT_EQ(distinct.size(), data->vocabulary.size());
  EXPECT_EQ(data->g1.NumVertices(), data->vocabulary.size());
  EXPECT_EQ(data->g2.NumVertices(), data->vocabulary.size());
  ASSERT_EQ(data->topic_members.size(), data->topics.size());
}

TEST(KeywordGenTest, RejectsDegenerateConfigs) {
  Rng rng(2);
  KeywordConfig config = SmallConfig();
  config.titles_per_era = 0;
  EXPECT_FALSE(GenerateKeywordData(config, &rng).ok());
  config = SmallConfig();
  Topic bad;
  bad.label = "singleton";
  bad.keywords = {"alone"};
  config.topics = {bad};
  EXPECT_FALSE(GenerateKeywordData(config, &rng).ok());
}

TEST(KeywordGenTest, EmergingTopicsGainAffinity) {
  Rng rng(3);
  auto data = GenerateKeywordData(SmallConfig(), &rng);
  ASSERT_TRUE(data.ok());
  for (size_t t = 0; t < data->topics.size(); ++t) {
    const Topic& topic = data->topics[t];
    const auto& members = data->topic_members[t];
    const double d1 = EdgeDensity(data->g1, members);
    const double d2 = EdgeDensity(data->g2, members);
    switch (topic.trend) {
      case TopicTrend::kEmerging:
        EXPECT_GT(d2, d1) << topic.label;
        break;
      case TopicTrend::kDisappearing:
        EXPECT_GT(d1, d2) << topic.label;
        break;
      case TopicTrend::kStable:
        // Stable topics should be dense in both eras.
        EXPECT_GT(d1, 0.0) << topic.label;
        EXPECT_GT(d2, 0.0) << topic.label;
        break;
    }
  }
}

TEST(KeywordGenTest, EdgeWeightsFollowHundredTimesFraction) {
  Rng rng(4);
  auto data = GenerateKeywordData(SmallConfig(), &rng);
  ASSERT_TRUE(data.ok());
  // No pair can co-occur in more titles than exist: weights ≤ 100.
  for (const Edge& e : data->g1.UndirectedEdges()) {
    EXPECT_GT(e.weight, 0.0);
    EXPECT_LE(e.weight, 100.0);
  }
}

TEST(KeywordGenTest, DifferenceGraphHasBothSigns) {
  Rng rng(5);
  auto data = GenerateKeywordData(SmallConfig(), &rng);
  ASSERT_TRUE(data.ok());
  auto gd = BuildDifferenceGraph(data->g1, data->g2);
  ASSERT_TRUE(gd.ok());
  const WeightStats stats = gd->ComputeWeightStats();
  EXPECT_GT(stats.num_positive_edges, 0u);
  EXPECT_GT(stats.num_negative_edges, 0u);
}

TEST(KeywordGenTest, DeterministicGivenSeed) {
  Rng rng_a(6), rng_b(6);
  auto a = GenerateKeywordData(SmallConfig(), &rng_a);
  auto b = GenerateKeywordData(SmallConfig(), &rng_b);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->g2.UndirectedEdges(), b->g2.UndirectedEdges());
}

}  // namespace
}  // namespace dcs
