#include "gen/interest_social.h"

#include <gtest/gtest.h>

#include "graph/difference.h"
#include "graph/stats.h"
#include "util/rng.h"

namespace dcs {
namespace {

InterestSocialConfig SmallConfig() {
  InterestSocialConfig config;
  config.num_users = 2000;
  config.num_clusters = 20;
  config.cluster_size = 30;
  config.interest_only_cliques = {8, 6};
  config.social_only_cliques = {7};
  return config;
}

TEST(InterestSocialGenTest, RejectsOversizedStructure) {
  Rng rng(1);
  InterestSocialConfig config;
  config.num_users = 100;
  config.num_clusters = 10;
  config.cluster_size = 20;  // 200 > 100
  EXPECT_FALSE(GenerateInterestSocialData(config, &rng).ok());
}

TEST(InterestSocialGenTest, UnitWeightsEverywhereInInterestGraph) {
  Rng rng(2);
  auto data = GenerateInterestSocialData(SmallConfig(), &rng);
  ASSERT_TRUE(data.ok());
  for (const Edge& e : data->interest.UndirectedEdges()) {
    EXPECT_DOUBLE_EQ(e.weight, 1.0);
  }
}

TEST(InterestSocialGenTest, PlantedCliquesAreCliques) {
  Rng rng(3);
  auto data = GenerateInterestSocialData(SmallConfig(), &rng);
  ASSERT_TRUE(data.ok());
  ASSERT_EQ(data->interest_only_cliques.size(), 2u);
  ASSERT_EQ(data->social_only_cliques.size(), 1u);
  for (const auto& clique : data->interest_only_cliques) {
    EXPECT_TRUE(IsClique(data->interest, clique));
  }
  for (const auto& clique : data->social_only_cliques) {
    EXPECT_TRUE(IsClique(data->social, clique));
  }
}

TEST(InterestSocialGenTest, InterestOnlyCliquesArePositiveInDifference) {
  Rng rng(4);
  auto data = GenerateInterestSocialData(SmallConfig(), &rng);
  ASSERT_TRUE(data.ok());
  auto gd = BuildDifferenceGraph(data->social, data->interest);
  ASSERT_TRUE(gd.ok());
  for (const auto& clique : data->interest_only_cliques) {
    EXPECT_GT(AverageDegreeDensity(*gd, clique), 0.0);
  }
  auto gd_flipped = BuildDifferenceGraph(data->interest, data->social);
  ASSERT_TRUE(gd_flipped.ok());
  for (const auto& clique : data->social_only_cliques) {
    EXPECT_GT(AverageDegreeDensity(*gd_flipped, clique), 0.0);
  }
}

TEST(InterestSocialGenTest, MovieProfileDenserThanBook) {
  Rng rng_movie(5), rng_book(5);
  InterestSocialConfig movie = MovieLikeConfig();
  InterestSocialConfig book = BookLikeConfig();
  movie.num_users = 3000;
  movie.num_clusters = 25;
  book.num_users = 3000;
  book.num_clusters = 25;
  auto movie_data = GenerateInterestSocialData(movie, &rng_movie);
  auto book_data = GenerateInterestSocialData(book, &rng_book);
  ASSERT_TRUE(movie_data.ok() && book_data.ok());
  EXPECT_GT(movie_data->interest.NumEdges(), book_data->interest.NumEdges());
}

TEST(InterestSocialGenTest, DeterministicGivenSeed) {
  Rng rng_a(6), rng_b(6);
  auto a = GenerateInterestSocialData(SmallConfig(), &rng_a);
  auto b = GenerateInterestSocialData(SmallConfig(), &rng_b);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->social.UndirectedEdges(), b->social.UndirectedEdges());
}

}  // namespace
}  // namespace dcs
