// Crash-recovery harness (ctest label `crash`): kill the worker process at
// every journal fault site × hit index, recover, and assert the journal's
// crash-consistency contract end to end:
//
//   * terminal exactly-once — every job the crashed process admitted is
//     terminal after recovery, appears exactly once, and recovery re-runs
//     exactly the jobs whose Done record is missing (solver_runs ==
//     incomplete), never a Done one;
//   * bit-identity — every recovered kDone response fingerprints identical
//     to the fault-free control run of the same job;
//   * convergence — after a graceful recovery the journal fscks clean
//     (valid superblock, no corrupt pages, no unreliable tail).
//
// The kill is deterministic: `--inject site:crash=1,after=H-1,times=1` makes
// the worker abort() at exactly the H-th hit of the site (see
// util/fault_injection.h), so sweeping H from 1 until a storm survives
// covers every append/fsync boundary the storm crosses. journal.replay only
// draws hits while recovering a populated journal, so it gets its own sweep:
// crash the *recover* run mid-replay, then rerun it clean.

#include <sys/wait.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace dcs {
namespace {

// Generous bound on the hit sweep; the storm performs ~12 appends (4 jobs ×
// admitted/started/done) so both sites run dry far earlier. Reaching the
// bound without a surviving storm fails the test — it would mean the sweep
// never covered the last boundary.
constexpr int kMaxHitSweep = 64;

struct WorkerRun {
  bool crashed = false;   // the worker died on SIGABRT (the injected kill)
  int exit_code = -1;     // exit code when it exited normally
  std::string out;        // combined stdout+stderr
};

// What a recover (or control storm) run reported, parsed from the line
// protocol the worker prints.
struct RecoverReport {
  std::map<uint64_t, std::pair<std::string, uint64_t>> results;  // id -> (state, fp)
  uint64_t incomplete = 0;
  int solver_runs = -1;
  bool fsck_seen = false;
  bool fsck_clean = false;
};

WorkerRun RunWorker(const std::string& args, const std::string& tag) {
  const std::string out_path =
      ::testing::TempDir() + "crash_worker_" + tag + ".out";
  const std::string cmd = std::string(DCS_CRASH_WORKER_PATH) + " " + args +
                          " > " + out_path + " 2>&1";
  const int status = std::system(cmd.c_str());
  WorkerRun run;
  // std::system reports the shell's status: a direct SIGABRT surfaces as
  // WIFSIGNALED, a shell-laundered one as exit code 128+SIGABRT.
  if (WIFSIGNALED(status)) {
    run.crashed = WTERMSIG(status) == SIGABRT;
  } else if (WIFEXITED(status)) {
    run.exit_code = WEXITSTATUS(status);
    run.crashed = run.exit_code == 128 + SIGABRT;
  }
  std::ifstream file(out_path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  run.out = buffer.str();
  return run;
}

RecoverReport ParseReport(const std::string& out) {
  RecoverReport report;
  std::istringstream lines(out);
  std::string line;
  while (std::getline(lines, line)) {
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "result") {
      uint64_t id = 0, fingerprint = 0;
      std::string state;
      fields >> id >> state >> fingerprint;
      EXPECT_EQ(report.results.count(id), 0u)
          << "job " << id << " reported twice:\n" << out;
      report.results[id] = {state, fingerprint};
    } else if (key == "incomplete") {
      fields >> report.incomplete;
    } else if (key == "solver_runs") {
      fields >> report.solver_runs;
    } else if (key == "fsck") {
      int superblock_ok = 0;
      uint64_t corrupt = 0, tail = 0;
      fields >> superblock_ok >> corrupt >> tail;
      report.fsck_seen = true;
      report.fsck_clean = superblock_ok == 1 && corrupt == 0 && tail == 0;
    }
  }
  return report;
}

std::string InjectArg(const std::string& site, int hit) {
  std::ostringstream spec;
  spec << "--inject " << site << ":crash=1,times=1";
  if (hit > 1) spec << ",after=" << (hit - 1);
  return spec.str();
}

std::string JournalPath(const std::string& tag) {
  const std::string path = ::testing::TempDir() + "crash_journal_" + tag + ".dcsj";
  std::remove(path.c_str());
  return path;
}

// The fault-free fingerprints every recovery must reproduce bit-for-bit.
std::map<uint64_t, std::pair<std::string, uint64_t>> ControlResults() {
  static const std::map<uint64_t, std::pair<std::string, uint64_t>> control =
      [] {
        const std::string path = JournalPath("control");
        WorkerRun run =
            RunWorker("--journal " + path + " --mode storm", "control");
        EXPECT_FALSE(run.crashed) << run.out;
        EXPECT_EQ(run.exit_code, 0) << run.out;
        RecoverReport report = ParseReport(run.out);
        EXPECT_EQ(report.results.size(), 4u) << run.out;
        return report.results;
      }();
  return control;
}

// One recovered report against the contract: every job terminal exactly
// once, done jobs bit-identical to control, re-runs equal to the jobs that
// lacked a Done record, journal fsck-clean afterwards.
void VerifyRecovery(const RecoverReport& report, const std::string& out,
                    const std::string& context) {
  const auto control = ControlResults();
  for (const auto& [id, result] : report.results) {
    const auto& [state, fingerprint] = result;
    EXPECT_EQ(state, "done") << context << " job " << id << "\n" << out;
    auto expected = control.find(id);
    ASSERT_NE(expected, control.end())
        << context << " recovered unknown job " << id << "\n" << out;
    EXPECT_EQ(fingerprint, expected->second.second)
        << context << " job " << id << " response not bit-identical\n" << out;
  }
  EXPECT_EQ(report.solver_runs, static_cast<int>(report.incomplete))
      << context << " re-ran a Done job (or skipped an incomplete one)\n"
      << out;
  EXPECT_TRUE(report.fsck_seen) << context << "\n" << out;
  EXPECT_TRUE(report.fsck_clean)
      << context << " journal did not converge to fsck-clean\n" << out;
}

TEST(CrashRecoveryTest, KillAtEveryAppendAndFsyncHitRecoversExactlyOnce) {
  ASSERT_FALSE(ControlResults().empty());
  for (const std::string site : {"journal.append", "journal.fsync"}) {
    bool swept_past_last_hit = false;
    for (int hit = 1; hit <= kMaxHitSweep && !swept_past_last_hit; ++hit) {
      const std::string tag =
          site.substr(site.find('.') + 1) + "_h" + std::to_string(hit);
      const std::string path = JournalPath(tag);
      WorkerRun storm = RunWorker(
          "--journal " + path + " --mode storm " + InjectArg(site, hit),
          tag + "_storm");
      if (!storm.crashed) {
        // The spec outlived the storm's hits: the sweep covered every
        // boundary of this site. The surviving storm must have been clean.
        EXPECT_EQ(storm.exit_code, 0) << site << " hit " << hit << "\n"
                                      << storm.out;
        EXPECT_GT(hit, 1) << site << " never crashed at all";
        swept_past_last_hit = true;
        continue;
      }
      WorkerRun recover = RunWorker("--journal " + path + " --mode recover",
                                    tag + "_recover");
      ASSERT_FALSE(recover.crashed) << site << " hit " << hit << "\n"
                                    << recover.out;
      ASSERT_EQ(recover.exit_code, 0) << site << " hit " << hit << "\n"
                                      << recover.out;
      VerifyRecovery(ParseReport(recover.out), recover.out,
                     site + " hit " + std::to_string(hit));
    }
    EXPECT_TRUE(swept_past_last_hit)
        << site << ": no surviving storm within " << kMaxHitSweep << " hits";
  }
}

TEST(CrashRecoveryTest, KillDuringReplayThenCleanRerunRecovers) {
  // Build a journal with incomplete work: crash the storm mid-flight so
  // recovery actually has records to replay and jobs to resubmit.
  const std::string path = JournalPath("replay");
  WorkerRun storm = RunWorker("--journal " + path + " --mode storm " +
                                  InjectArg("journal.fsync", 7),
                              "replay_storm");
  ASSERT_TRUE(storm.crashed) << storm.out;

  bool swept_past_last_hit = false;
  for (int hit = 1; hit <= kMaxHitSweep && !swept_past_last_hit; ++hit) {
    const std::string tag = "replay_h" + std::to_string(hit);
    WorkerRun injected = RunWorker("--journal " + path + " --mode recover " +
                                       InjectArg("journal.replay", hit),
                                   tag);
    if (!injected.crashed) {
      EXPECT_EQ(injected.exit_code, 0) << injected.out;
      EXPECT_GT(hit, 1) << "journal.replay never crashed at all";
      swept_past_last_hit = true;
      // A replay sweep that ran dry was itself a clean recovery — verify it
      // like any other.
      VerifyRecovery(ParseReport(injected.out), injected.out,
                     "replay final hit " + std::to_string(hit));
      continue;
    }
    // The process died mid-replay; a clean rerun must recover as if the
    // replay crash never happened.
    WorkerRun rerun = RunWorker("--journal " + path + " --mode recover",
                                tag + "_rerun");
    ASSERT_FALSE(rerun.crashed) << "hit " << hit << "\n" << rerun.out;
    ASSERT_EQ(rerun.exit_code, 0) << "hit " << hit << "\n" << rerun.out;
    VerifyRecovery(ParseReport(rerun.out), rerun.out,
                   "replay hit " + std::to_string(hit));
  }
  EXPECT_TRUE(swept_past_last_hit)
      << "journal.replay: no surviving recover within " << kMaxHitSweep
      << " hits";
}

}  // namespace
}  // namespace dcs
