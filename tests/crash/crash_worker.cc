// Crash-harness worker: the process the crash-recovery test kills.
//
// The parent (crash_recovery_test.cc) fork/execs this binary twice per
// crash point:
//
//   crash_worker --journal P --mode storm  [--inject SPEC]
//       Opens a journaled MiningService over P (kAlways durability, so
//       every append is a deterministic journal.append + journal.fsync hit
//       pair), submits kStormJobs probe jobs and waits for each. With an
//       armed `crash` spec the process abort()s at the chosen fault-site
//       hit, leaving whatever journal the crash schedule allowed.
//
//   crash_worker --mode recover --journal P  [--inject SPEC]
//       First replays P directly and prints `incomplete <n>` — the jobs the
//       crashed storm admitted but never finished. Then recovers a fresh
//       service over P, re-registers tenant 0, drains, and prints one
//       `result <id> <state> <fingerprint>` line per recovered job plus
//       `solver_runs <n>` (the exactly-once oracle: recovery may re-run
//       exactly the incomplete jobs, never a Done one). After the service
//       shuts down gracefully it prints `fsck <superblock_ok> <corrupt>
//       <tail_bytes>` from an offline check of P.
//
// The probe solver is a pure function of the journaled request (its value
// encodes MiningRequest::priority), so the parent can assert recovered
// responses are bit-identical to a fault-free control run by fingerprint
// alone — any journal corruption of the request or response changes the
// printed fingerprint.

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "api/mining_service.h"
#include "api/solver_registry.h"
#include "store/job_journal.h"
#include "test_util.h"
#include "util/fault_injection.h"

namespace dcs {
namespace {

constexpr int kStormJobs = 4;

std::atomic<int> g_solver_runs{0};

// Deterministic probe: the "mined" subgraph is a pure function of the
// request's priority field, which the storm varies per job. A recovered
// re-run therefore reproduces the exact bytes iff the journaled request
// survived the crash intact.
Result<std::vector<RankedSubgraph>> CrashProbeSolver(const SolverContext&,
                                                     const MiningRequest& request,
                                                     MiningTelemetry*) {
  g_solver_runs.fetch_add(1);
  RankedSubgraph subgraph;
  subgraph.vertices = {0, 1, 2};
  subgraph.weights = {0.25, 0.25, 0.5};
  subgraph.value = 1.0 + static_cast<double>(request.priority) * 0.125;
  subgraph.positive_clique = true;
  return std::vector<RankedSubgraph>{subgraph};
}

MiningRequest ProbeRequest(int index) {
  MiningRequest request;
  request.measure = Measure::kGraphAffinity;
  request.ga_solver_name = "crash-probe";
  request.ga_solver.parallelism = 1;
  request.priority = index;
  return request;
}

MiningServiceOptions JournaledOptions(const std::string& journal_path) {
  MiningServiceOptions options;
  options.journal_path = journal_path;
  // kAlways makes every append a deterministic journal.append +
  // journal.fsync hit pair on the submitting/executing thread — the crash
  // schedule indexes those hits.
  options.journal_options.durability = JournalDurability::kAlways;
  return options;
}

void PrintJob(const JobStatus& status) {
  std::printf("result %llu %s %llu\n",
              static_cast<unsigned long long>(status.id),
              JobStateToString(status.state),
              static_cast<unsigned long long>(
                  JobJournal::ResponseFingerprint(status.response)));
}

int RunStorm(const std::string& journal_path) {
  MiningService service(JournaledOptions(journal_path));
  Status added =
      service.AddTenant(MinerSession::Create(testing::Fig1G1(), testing::Fig1G2())
                            .value())
          .status();
  if (!added.ok()) {
    std::fprintf(stderr, "error: AddTenant: %s\n", added.ToString().c_str());
    return 3;
  }
  std::vector<JobId> ids;
  for (int i = 0; i < kStormJobs; ++i) {
    Result<JobId> id = service.Submit(0, ProbeRequest(i));
    if (!id.ok()) {
      std::fprintf(stderr, "error: Submit: %s\n",
                   id.status().ToString().c_str());
      return 3;
    }
    ids.push_back(*id);
  }
  for (JobId id : ids) {
    Result<JobStatus> status = service.Wait(id);
    if (!status.ok() || status->state != JobState::kDone) {
      std::fprintf(stderr, "error: job %llu did not finish done\n",
                   static_cast<unsigned long long>(id));
      return 3;
    }
    PrintJob(*status);
  }
  return 0;
}

int RunRecover(const std::string& journal_path) {
  // Pre-recovery replay: how many admitted jobs lack a Done record. The
  // handle is scoped out before the service opens the same file.
  uint64_t incomplete = 0;
  {
    Result<std::shared_ptr<JobJournal>> journal = JobJournal::Open(journal_path);
    if (!journal.ok()) {
      std::fprintf(stderr, "error: open: %s\n",
                   journal.status().ToString().c_str());
      return 3;
    }
    Result<std::vector<JournalReplayJob>> jobs = (*journal)->Replay();
    if (!jobs.ok()) {
      std::fprintf(stderr, "error: replay: %s\n",
                   jobs.status().ToString().c_str());
      return 3;
    }
    for (const JournalReplayJob& job : *jobs) {
      if (!job.done) ++incomplete;
    }
  }
  std::printf("incomplete %llu\n", static_cast<unsigned long long>(incomplete));

  g_solver_runs.store(0);
  {
    MiningService service(JournaledOptions(journal_path));
    std::vector<JobId> recovered = service.recovered_jobs();
    Status added = service
                       .AddTenant(MinerSession::Create(testing::Fig1G1(),
                                                       testing::Fig1G2())
                                      .value())
                       .status();
    if (!added.ok()) {
      std::fprintf(stderr, "error: AddTenant: %s\n", added.ToString().c_str());
      return 3;
    }
    service.Drain();
    for (JobId id : recovered) {
      Result<JobStatus> status = service.Poll(id);
      if (!status.ok()) {
        std::fprintf(stderr, "error: poll %llu: %s\n",
                     static_cast<unsigned long long>(id),
                     status.status().ToString().c_str());
        return 3;
      }
      PrintJob(*status);
    }
  }
  std::printf("solver_runs %d\n", g_solver_runs.load());

  Result<JournalFsckReport> fsck = JobJournal::Fsck(journal_path);
  if (!fsck.ok()) {
    std::fprintf(stderr, "error: fsck: %s\n",
                 fsck.status().ToString().c_str());
    return 3;
  }
  std::printf("fsck %d %llu %llu\n", fsck->superblock_ok ? 1 : 0,
              static_cast<unsigned long long>(fsck->corrupt_pages),
              static_cast<unsigned long long>(fsck->unreliable_tail_bytes));
  return 0;
}

int Main(int argc, char** argv) {
  std::string journal_path;
  std::string mode;
  std::string inject;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--journal" && i + 1 < argc) {
      journal_path = argv[++i];
    } else if (arg == "--mode" && i + 1 < argc) {
      mode = argv[++i];
    } else if (arg == "--inject" && i + 1 < argc) {
      inject = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: crash_worker --journal PATH --mode storm|recover "
                   "[--inject SPEC]\n");
      return 2;
    }
  }
  if (journal_path.empty() || (mode != "storm" && mode != "recover")) {
    std::fprintf(stderr,
                 "usage: crash_worker --journal PATH --mode storm|recover "
                 "[--inject SPEC]\n");
    return 2;
  }
  Status registered =
      SolverRegistry::Global().Register("crash-probe", &CrashProbeSolver);
  if (!registered.ok()) {
    std::fprintf(stderr, "error: register: %s\n",
                 registered.ToString().c_str());
    return 3;
  }
  if (!inject.empty()) {
    Status armed = FaultInjection::Global().ArmText(inject);
    if (!armed.ok()) {
      std::fprintf(stderr, "error: inject: %s\n", armed.ToString().c_str());
      return 2;
    }
  }
  return mode == "storm" ? RunStorm(journal_path) : RunRecover(journal_path);
}

}  // namespace
}  // namespace dcs

int main(int argc, char** argv) { return dcs::Main(argc, argv); }
