#include "api/streaming_monitor.h"

#include <gtest/gtest.h>

#include <limits>

#include "core/dcs_greedy.h"
#include "gen/random_graphs.h"
#include "graph/difference.h"
#include "graph/stats.h"
#include "test_util.h"
#include "util/rng.h"

namespace dcs {
namespace {

using ::dcs::testing::MakeGraph;

TEST(StreamingTest, RejectsBadUpdates) {
  StreamingDcsMonitor monitor(4);
  EXPECT_TRUE(monitor.ApplyUpdate(StreamSide::kG2, 1, 1, 1.0)
                  .IsInvalidArgument());
  EXPECT_EQ(monitor.ApplyUpdate(StreamSide::kG2, 0, 9, 1.0).code(),
            StatusCode::kOutOfRange);
  EXPECT_TRUE(monitor
                  .ApplyUpdate(StreamSide::kG1, 0, 1,
                               std::numeric_limits<double>::infinity())
                  .IsInvalidArgument());
}

TEST(StreamingTest, UpdatesMatchBatchDifference) {
  // Feed the Fig. 1 graphs as a stream and compare against the batch build.
  Graph g1 = ::dcs::testing::Fig1G1();
  Graph g2 = ::dcs::testing::Fig1G2();
  StreamingDcsMonitor monitor(5);
  for (const Edge& e : g1.UndirectedEdges()) {
    ASSERT_TRUE(monitor.ApplyUpdate(StreamSide::kG1, e.u, e.v, e.weight).ok());
  }
  for (const Edge& e : g2.UndirectedEdges()) {
    ASSERT_TRUE(monitor.ApplyUpdate(StreamSide::kG2, e.u, e.v, e.weight).ok());
  }
  auto snapshot = monitor.DifferenceSnapshot();
  ASSERT_TRUE(snapshot.ok());
  auto batch = BuildDifferenceGraph(g1, g2);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(snapshot->UndirectedEdges(), batch->UndirectedEdges());
}

TEST(StreamingTest, AlphaScalingApplied) {
  StreamingDcsMonitor monitor(3, /*alpha=*/2.0);
  ASSERT_TRUE(monitor.ApplyUpdate(StreamSide::kG1, 0, 1, 2.0).ok());
  ASSERT_TRUE(monitor.ApplyUpdate(StreamSide::kG2, 0, 1, 5.0).ok());
  auto snapshot = monitor.DifferenceSnapshot();
  ASSERT_TRUE(snapshot.ok());
  EXPECT_DOUBLE_EQ(snapshot->EdgeWeight(0, 1), 1.0);  // 5 − 2·2
}

TEST(StreamingTest, CancellingUpdatesRemoveEdge) {
  StreamingDcsMonitor monitor(3);
  ASSERT_TRUE(monitor.ApplyUpdate(StreamSide::kG2, 0, 1, 3.0).ok());
  ASSERT_TRUE(monitor.ApplyUpdate(StreamSide::kG2, 0, 1, -3.0).ok());
  auto snapshot = monitor.DifferenceSnapshot();
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->NumEdges(), 0u);
}

TEST(StreamingTest, SnapshotRebuildsLazily) {
  StreamingDcsMonitor monitor(3);
  ASSERT_TRUE(monitor.ApplyUpdate(StreamSide::kG2, 0, 1, 1.0).ok());
  ASSERT_TRUE(monitor.DifferenceSnapshot().ok());
  ASSERT_TRUE(monitor.DifferenceSnapshot().ok());
  EXPECT_EQ(monitor.num_rebuilds(), 1u);  // second call reused the snapshot
  ASSERT_TRUE(monitor.ApplyUpdate(StreamSide::kG2, 1, 2, 1.0).ok());
  ASSERT_TRUE(monitor.DifferenceSnapshot().ok());
  EXPECT_EQ(monitor.num_rebuilds(), 2u);
}

TEST(StreamingTest, DetectsEmergingStory) {
  // A clique's weight builds up over three "time steps"; the monitor's
  // affinity DCS locks onto it once it dominates.
  Rng rng(77);
  const VertexId n = 100;
  StreamingDcsMonitor monitor(n);
  // Background chatter on both sides.
  auto background = ErdosRenyiWeighted(n, 0.05, 0.2, 1.0, &rng);
  ASSERT_TRUE(background.ok());
  for (const Edge& e : background->UndirectedEdges()) {
    ASSERT_TRUE(monitor.ApplyUpdate(StreamSide::kG1, e.u, e.v, e.weight).ok());
    ASSERT_TRUE(monitor.ApplyUpdate(StreamSide::kG2, e.u, e.v,
                                    e.weight * 0.9).ok());
  }
  const std::vector<VertexId> story{10, 20, 30, 40};
  double last_affinity = 0.0;
  for (int step = 0; step < 3; ++step) {
    for (size_t i = 0; i < story.size(); ++i) {
      for (size_t j = i + 1; j < story.size(); ++j) {
        ASSERT_TRUE(
            monitor.ApplyUpdate(StreamSide::kG2, story[i], story[j], 2.0)
                .ok());
      }
    }
    auto result = monitor.MineDcsga();
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result->affinity, last_affinity);
    last_affinity = result->affinity;
  }
  auto final_result = monitor.MineDcsga();
  ASSERT_TRUE(final_result.ok());
  EXPECT_EQ(final_result->support, story);
  // Average-degree view agrees.
  auto dcsad = monitor.MineDcsad();
  ASSERT_TRUE(dcsad.ok());
  EXPECT_EQ(dcsad->subset, story);
}

TEST(StreamingTest, WarmStartTracksDriftingStory) {
  // Build a strong clique, query, then strengthen an overlapping clique;
  // the warm-started query must follow the drift (and never regress below
  // the fresh NewSEA answer, by construction of MineDcsga).
  const VertexId n = 30;
  StreamingDcsMonitor monitor(n);
  const std::vector<VertexId> old_story{1, 2, 3};
  const std::vector<VertexId> new_story{3, 4, 5, 6};
  for (size_t i = 0; i < old_story.size(); ++i) {
    for (size_t j = i + 1; j < old_story.size(); ++j) {
      ASSERT_TRUE(monitor
                      .ApplyUpdate(StreamSide::kG2, old_story[i],
                                   old_story[j], 5.0)
                      .ok());
    }
  }
  auto first = monitor.MineDcsga();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->support, old_story);
  for (size_t i = 0; i < new_story.size(); ++i) {
    for (size_t j = i + 1; j < new_story.size(); ++j) {
      ASSERT_TRUE(monitor
                      .ApplyUpdate(StreamSide::kG2, new_story[i],
                                   new_story[j], 8.0)
                      .ok());
    }
  }
  auto second = monitor.MineDcsga();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->support, new_story);
}

TEST(StreamingTest, MatchesBatchPipelineOnRandomStream) {
  Rng rng(99);
  const VertexId n = 60;
  StreamingDcsMonitor monitor(n);
  GraphBuilder builder1(n), builder2(n);
  for (int update = 0; update < 400; ++update) {
    const VertexId u = static_cast<VertexId>(rng.NextBounded(n));
    VertexId v = static_cast<VertexId>(rng.NextBounded(n - 1));
    if (v >= u) ++v;
    const double w = rng.Uniform(0.1, 3.0);
    if (rng.Bernoulli(0.5)) {
      ASSERT_TRUE(monitor.ApplyUpdate(StreamSide::kG1, u, v, w).ok());
      ASSERT_TRUE(builder1.AddEdge(u, v, w).ok());
    } else {
      ASSERT_TRUE(monitor.ApplyUpdate(StreamSide::kG2, u, v, w).ok());
      ASSERT_TRUE(builder2.AddEdge(u, v, w).ok());
    }
  }
  auto g1 = builder1.Build();
  auto g2 = builder2.Build();
  ASSERT_TRUE(g1.ok() && g2.ok());
  auto batch_gd = BuildDifferenceGraph(*g1, *g2);
  ASSERT_TRUE(batch_gd.ok());
  auto streaming_ad = monitor.MineDcsad();
  auto batch_ad = RunDcsGreedy(*batch_gd);
  ASSERT_TRUE(streaming_ad.ok() && batch_ad.ok());
  EXPECT_EQ(streaming_ad->subset, batch_ad->subset);
  EXPECT_NEAR(streaming_ad->density, batch_ad->density, 1e-9);
}

}  // namespace
}  // namespace dcs
