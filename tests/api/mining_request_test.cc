// Request-validation and vocabulary tests of the api/ facade.

#include "api/mining.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace dcs {
namespace {

TEST(MiningRequestTest, DefaultRequestIsValid) {
  EXPECT_TRUE(MiningRequest{}.Validate().ok());
}

TEST(MiningRequestTest, RejectsBadAlpha) {
  MiningRequest request;
  for (const double alpha :
       {0.0, -1.0, std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::quiet_NaN()}) {
    request.alpha = alpha;
    EXPECT_TRUE(request.Validate().IsInvalidArgument()) << "alpha=" << alpha;
  }
}

TEST(MiningRequestTest, RejectsZeroTopK) {
  MiningRequest request;
  request.top_k = 0;
  EXPECT_TRUE(request.Validate().IsInvalidArgument());
}

TEST(MiningRequestTest, RejectsInvalidDiscretizeSpec) {
  MiningRequest request;
  DiscretizeSpec spec;
  spec.weak_pos = -1.0;  // violates 0 < weak_pos
  request.discretize = spec;
  EXPECT_TRUE(request.Validate().IsInvalidArgument());
  request.discretize = DiscretizeSpec{};
  EXPECT_TRUE(request.Validate().ok());
}

TEST(MiningRequestTest, RejectsBadClamp) {
  MiningRequest request;
  for (const double cap : {0.0, -2.0, std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN()}) {
    request.clamp_weights_above = cap;
    EXPECT_TRUE(request.Validate().IsInvalidArgument()) << "cap=" << cap;
  }
  request.clamp_weights_above = 3.5;
  EXPECT_TRUE(request.Validate().ok());
}

TEST(MiningRequestTest, RejectsNonFiniteFloors) {
  MiningRequest request;
  request.min_density = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(request.Validate().IsInvalidArgument());
  request.min_density = -1.0;  // negative floors are legitimate
  EXPECT_TRUE(request.Validate().ok());
  request.min_affinity = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(request.Validate().IsInvalidArgument());
}

TEST(MiningRequestTest, RejectsEmptySolverNames) {
  MiningRequest request;
  request.ad_solver_name.clear();
  EXPECT_TRUE(request.Validate().IsInvalidArgument());
  request.ad_solver_name = "dcsad";
  request.ga_solver_name.clear();
  EXPECT_TRUE(request.Validate().IsInvalidArgument());
}

TEST(MeasureTest, ParseAndPrintRoundTrip) {
  for (const Measure measure :
       {Measure::kAverageDegree, Measure::kGraphAffinity, Measure::kBoth}) {
    Result<Measure> parsed = ParseMeasure(MeasureToString(measure));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, measure);
  }
  EXPECT_TRUE(ParseMeasure("average-degree").status().IsInvalidArgument());
  EXPECT_TRUE(ParseMeasure("").status().IsInvalidArgument());
}

TEST(BuildGraphFromEdgesTest, BuildsAndValidates) {
  const std::vector<WeightedEdge> edges{{0, 1, 2.0}, {1, 2, -1.5}, {0, 1, 1.0}};
  Result<Graph> graph = BuildGraphFromEdges(3, edges);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->NumVertices(), 3u);
  EXPECT_EQ(graph->NumEdges(), 2u);
  EXPECT_DOUBLE_EQ(graph->EdgeWeight(0, 1), 3.0);  // duplicates accumulate

  const std::vector<WeightedEdge> self_loop{{1, 1, 1.0}};
  EXPECT_FALSE(BuildGraphFromEdges(3, self_loop).ok());
  const std::vector<WeightedEdge> out_of_range{{0, 9, 1.0}};
  EXPECT_FALSE(BuildGraphFromEdges(3, out_of_range).ok());
}

}  // namespace
}  // namespace dcs
