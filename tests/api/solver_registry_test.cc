// SolverRegistry tests: builtin registration, custom solver plug-in, and
// dispatch through MinerSession without touching callers.

#include "api/solver_registry.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "api/miner_session.h"
#include "test_util.h"
#include "util/cancellation.h"

namespace dcs {
namespace {

using ::dcs::testing::Fig1G1;
using ::dcs::testing::Fig1G2;
using ::dcs::testing::Fig1Gd;

TEST(SolverRegistryTest, BuiltinsAreRegistered) {
  const std::vector<std::string> names = SolverRegistry::Global().Names();
  EXPECT_NE(std::find(names.begin(), names.end(), "dcsad"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "dcsga"), names.end());
  EXPECT_NE(SolverRegistry::Global().Find("dcsad"), nullptr);
  EXPECT_NE(SolverRegistry::Global().Find("dcsga"), nullptr);
}

TEST(SolverRegistryTest, FindUnknownReturnsNull) {
  EXPECT_EQ(SolverRegistry::Global().Find("no-such-solver"), nullptr);
}

TEST(SolverRegistryTest, RejectsBadRegistrations) {
  SolverFn fn = SolverRegistry::Global().Find("dcsad");
  ASSERT_NE(fn, nullptr);
  EXPECT_TRUE(SolverRegistry::Global().Register("", fn).IsInvalidArgument());
  EXPECT_TRUE(
      SolverRegistry::Global().Register("null-solver", nullptr)
          .IsInvalidArgument());
  EXPECT_EQ(SolverRegistry::Global().Register("dcsad", fn).code(),
            StatusCode::kAlreadyExists);
}

// A toy solver: returns the single heaviest positive edge of GD as a
// "subgraph". Registered once for the whole test binary.
Result<std::vector<RankedSubgraph>> HeaviestEdgeSolver(
    const SolverContext& context, const MiningRequest& request,
    MiningTelemetry* telemetry) {
  (void)request;
  telemetry->initializations += 1;
  const Graph& gd = *context.difference;
  RankedSubgraph best;
  for (const Edge& e : gd.UndirectedEdges()) {
    if (e.weight > best.value) {
      best.value = e.weight;
      best.vertices = {e.u, e.v};
    }
  }
  std::vector<RankedSubgraph> out;
  if (!best.vertices.empty()) out.push_back(std::move(best));
  return out;
}

TEST(SolverRegistryTest, PerSolveCancelTokenWinsOverRequestEmbeddedToken) {
  const Graph gd = Fig1Gd();
  const Graph gd_plus = gd.PositivePart();
  SolverContext context;
  context.difference = &gd;
  context.positive_part = &gd_plus;
  CancelToken per_solve;
  per_solve.Cancel();
  context.cancel = &per_solve;

  MiningRequest request;
  request.measure = Measure::kGraphAffinity;
  CancelToken embedded;  // never fired — must not shadow the fired token
  request.ga_solver.cancel = &embedded;

  SolverFn solver = SolverRegistry::Global().Find("dcsga");
  ASSERT_NE(solver, nullptr);
  MiningTelemetry telemetry;
  // The seed loop polls the per-solve token between chunks: with the
  // explicit token already fired, the solve must abort even though the
  // request embeds its own (unfired) token.
  EXPECT_TRUE(solver(context, request, &telemetry).status().IsCancelled());
}

TEST(SolverRegistryTest, CustomSolverDispatchesThroughSession) {
  static const bool registered = [] {
    return SolverRegistry::Global()
        .Register("heaviest-edge", &HeaviestEdgeSolver)
        .ok();
  }();
  ASSERT_TRUE(registered);

  Result<MinerSession> session = MinerSession::Create(Fig1G1(), Fig1G2());
  ASSERT_TRUE(session.ok());
  MiningRequest request;
  request.measure = Measure::kAverageDegree;
  request.ad_solver_name = "heaviest-edge";
  Result<MiningResponse> response = session->Mine(request);
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->average_degree.size(), 1u);
  // Fig. 1 difference graph: the heaviest positive edges are (0,1)=+4 and
  // (3,4)=+4; UndirectedEdges is sorted so (0,1) wins the strict comparison.
  EXPECT_EQ(response->average_degree[0].vertices,
            (std::vector<VertexId>{0, 1}));
  EXPECT_DOUBLE_EQ(response->average_degree[0].value, 4.0);
  EXPECT_EQ(response->telemetry.initializations, 1u);
}

TEST(SolverRegistryTest, UnknownSolverNameFailsTheRequest) {
  Result<MinerSession> session = MinerSession::Create(Fig1G1(), Fig1G2());
  ASSERT_TRUE(session.ok());
  MiningRequest request;
  request.measure = Measure::kGraphAffinity;
  request.ga_solver_name = "no-such-solver";
  EXPECT_TRUE(session->Mine(request).status().IsNotFound());
}

}  // namespace
}  // namespace dcs
