// PipelineCache tests: cross-session reuse bit-identity, build-once gating
// under concurrency, copy-on-write invalidation on ApplyUpdate, LRU and
// byte-budget eviction (including racing in-flight solves), and the
// hit/miss/bytes telemetry contract.

#include "api/pipeline_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/miner_session.h"
#include "api/mining.h"
#include "api/mining_service.h"
#include "gen/coauthor.h"
#include "test_util.h"
#include "util/rng.h"

namespace dcs {
namespace {

using ::dcs::testing::Fig1G1;
using ::dcs::testing::Fig1G2;
using ::dcs::testing::Fig1Gd;
using ::dcs::testing::MakeGraph;
using ::dcs::testing::SerializeSubgraphs;

SessionOptions WithCache(std::shared_ptr<PipelineCache> cache) {
  SessionOptions options;
  options.pipeline_cache = std::move(cache);
  return options;
}

// A mid-size planted dataset so prepare/solve costs are non-trivial and the
// concurrency tests get real interleavings.
CoauthorData PlantedCoauthor() {
  Rng rng(424242);
  CoauthorConfig config;
  config.num_authors = 800;
  config.emerging_sizes = {5, 6};
  config.disappearing_sizes = {4};
  Result<CoauthorData> data = GenerateCoauthorData(config, &rng);
  DCS_CHECK(data.ok());
  return std::move(data).value();
}

TEST(GraphFingerprintTest, EqualContentEqualFingerprint) {
  EXPECT_EQ(Fig1G1().ContentFingerprint(), Fig1G1().ContentFingerprint());
  EXPECT_NE(Fig1G1().ContentFingerprint(), Fig1G2().ContentFingerprint());
  // Insertion order does not matter: the builder canonicalizes to CSR.
  const Graph a = MakeGraph(4, {{0, 1, 1.5}, {2, 3, -2.0}});
  const Graph b = MakeGraph(4, {{2, 3, -2.0}, {0, 1, 1.5}});
  EXPECT_EQ(a.ContentFingerprint(), b.ContentFingerprint());
  // A single weight bit flips it.
  const Graph c = MakeGraph(4, {{0, 1, 1.5}, {2, 3, -2.0000000001}});
  EXPECT_NE(a.ContentFingerprint(), c.ContentFingerprint());
}

TEST(GraphFingerprintTest, PairFingerprintIsOrderSensitive) {
  EXPECT_NE(PipelineGraphFingerprint(Fig1G1(), Fig1G2()),
            PipelineGraphFingerprint(Fig1G2(), Fig1G1()));
}

TEST(PipelineCacheTest, CrossSessionReuseIsBitIdenticalToPrivate) {
  const CoauthorData data = PlantedCoauthor();
  MiningRequest request;
  request.measure = Measure::kBoth;

  // Reference: a plain private-cache session.
  Result<MinerSession> reference = MinerSession::Create(data.g1, data.g2);
  ASSERT_TRUE(reference.ok());
  Result<MiningResponse> expected = reference->Mine(request);
  ASSERT_TRUE(expected.ok());

  auto cache = std::make_shared<PipelineCache>();
  Result<MinerSession> a =
      MinerSession::Create(data.g1, data.g2, WithCache(cache));
  Result<MinerSession> b =
      MinerSession::Create(data.g1, data.g2, WithCache(cache));
  ASSERT_TRUE(a.ok() && b.ok());

  Result<MiningResponse> first = a->Mine(request);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->telemetry.reused_cached_difference);
  EXPECT_EQ(a->num_rebuilds(), 1u);

  // Session B's very first query is served by A's preparation: no rebuild,
  // and the mined subgraphs match the private reference bit for bit.
  Result<MiningResponse> second = b->Mine(request);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->telemetry.reused_cached_difference);
  EXPECT_EQ(b->num_rebuilds(), 0u);
  EXPECT_EQ(SerializeSubgraphs(*first), SerializeSubgraphs(*expected));
  EXPECT_EQ(SerializeSubgraphs(*second), SerializeSubgraphs(*expected));

  const PipelineCacheStats stats = cache->stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_GE(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(PipelineCacheTest, ConcurrentSessionsPrepareTheSharedDatasetOnce) {
  const CoauthorData data = PlantedCoauthor();
  MiningRequest request;
  request.measure = Measure::kGraphAffinity;

  Result<MinerSession> reference = MinerSession::Create(data.g1, data.g2);
  ASSERT_TRUE(reference.ok());
  Result<MiningResponse> expected = reference->Mine(request);
  ASSERT_TRUE(expected.ok());
  const std::string expected_str = SerializeSubgraphs(*expected);

  auto cache = std::make_shared<PipelineCache>();
  constexpr int kSessions = 4;
  std::vector<std::string> mined(kSessions);
  std::vector<uint64_t> rebuilds(kSessions, 0);
  std::atomic<int> failures{0};
  {
    std::vector<std::thread> threads;
    for (int i = 0; i < kSessions; ++i) {
      threads.emplace_back([&, i] {
        Result<MinerSession> session =
            MinerSession::Create(data.g1, data.g2, WithCache(cache));
        if (!session.ok()) {
          ++failures;
          return;
        }
        Result<MiningResponse> response = session->Mine(request);
        if (!response.ok()) {
          ++failures;
          return;
        }
        mined[i] = SerializeSubgraphs(*response);
        rebuilds[i] = session->num_rebuilds();
      });
    }
    for (std::thread& t : threads) t.join();
  }
  ASSERT_EQ(failures.load(), 0);

  // Exactly one session built the pipeline; every response is bit-identical
  // to the private-cache reference.
  uint64_t total_rebuilds = 0;
  for (int i = 0; i < kSessions; ++i) {
    EXPECT_EQ(mined[i], expected_str) << "session " << i << " diverged";
    total_rebuilds += rebuilds[i];
  }
  EXPECT_EQ(total_rebuilds, 1u);
  const PipelineCacheStats stats = cache->stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_GE(stats.hits, static_cast<uint64_t>(kSessions - 1));
  EXPECT_EQ(stats.entries, 1u);
}

TEST(PipelineCacheTest, ApplyUpdateInvalidatesOnlyTheTouchedEntry) {
  auto cache = std::make_shared<PipelineCache>();
  Result<MinerSession> a =
      MinerSession::Create(Fig1G1(), Fig1G2(), WithCache(cache));
  Result<MinerSession> b =
      MinerSession::Create(Fig1G1(), Fig1G2(), WithCache(cache));
  ASSERT_TRUE(a.ok() && b.ok());

  MiningRequest request;
  request.measure = Measure::kBoth;
  Result<MiningResponse> a_before = a->Mine(request);
  Result<MiningResponse> b_before = b->Mine(request);
  ASSERT_TRUE(a_before.ok() && b_before.ok());
  EXPECT_TRUE(b_before->telemetry.reused_cached_difference);
  ASSERT_EQ(cache->stats().entries, 1u);

  // A's update redirects A to a fresh key (copy-on-write): the patch path
  // republishes A's pipeline — delta-patched — under the new fingerprint,
  // and the old entry stays resident untouched.
  ASSERT_TRUE(a->ApplyUpdate(UpdateSide::kG2, 0, 1, 2.5).ok());
  Result<MiningResponse> a_after = a->Mine(request);
  ASSERT_TRUE(a_after.ok());
  EXPECT_TRUE(a_after->telemetry.reused_cached_difference)
      << "the republished entry must serve the post-update mine";
  EXPECT_EQ(a->num_republished_entries(), 1u);
  EXPECT_GE(cache->stats().republishes, 1u);
  EXPECT_NE(SerializeSubgraphs(*a_after), SerializeSubgraphs(*a_before));
  EXPECT_EQ(cache->stats().entries, 2u);

  // B keeps hitting its unchanged snapshot, bit-identically.
  Result<MiningResponse> b_after = b->Mine(request);
  ASSERT_TRUE(b_after.ok());
  EXPECT_TRUE(b_after->telemetry.reused_cached_difference);
  EXPECT_EQ(SerializeSubgraphs(*b_after), SerializeSubgraphs(*b_before));
  EXPECT_EQ(b->num_rebuilds(), 0u);
}

TEST(PipelineCacheTest, EvictionUnderTinyByteBudgetNeverBreaksSolves) {
  const CoauthorData data = PlantedCoauthor();

  // Reference answers for three alphas, from a plain private session.
  std::vector<MiningRequest> requests(3);
  std::vector<std::string> expected(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    requests[i].measure = Measure::kGraphAffinity;
    requests[i].alpha = 1.0 + 0.5 * static_cast<double>(i);
    Result<MinerSession> reference = MinerSession::Create(data.g1, data.g2);
    ASSERT_TRUE(reference.ok());
    Result<MiningResponse> response = reference->Mine(requests[i]);
    ASSERT_TRUE(response.ok());
    expected[i] = SerializeSubgraphs(*response);
  }

  // A 1-byte budget evicts every entry the moment it is inserted, so every
  // solve runs against a snapshot that is already gone from the cache —
  // the hardest eviction/solve race. Nothing may crash or diverge.
  PipelineCacheOptions cache_options;
  cache_options.max_bytes = 1;
  auto cache = std::make_shared<PipelineCache>(cache_options);
  std::atomic<int> failures{0};
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        Result<MinerSession> session =
            MinerSession::Create(data.g1, data.g2, WithCache(cache));
        if (!session.ok()) {
          ++failures;
          return;
        }
        for (int round = 0; round < 3; ++round) {
          const size_t i = (static_cast<size_t>(t) + round) % requests.size();
          Result<MiningResponse> response = session->Mine(requests[i]);
          if (!response.ok() ||
              SerializeSubgraphs(*response) != expected[i]) {
            ++failures;
            return;
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  const PipelineCacheStats stats = cache->stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_GT(stats.evictions, 0u);
}

TEST(PipelineCacheTest, LruEvictionKeepsTheRecentlyTouchedEntry) {
  PipelineCacheOptions cache_options;
  cache_options.max_entries = 2;
  auto cache = std::make_shared<PipelineCache>(cache_options);
  Result<MinerSession> session =
      MinerSession::Create(Fig1G1(), Fig1G2(), WithCache(cache));
  ASSERT_TRUE(session.ok());

  MiningRequest request;
  request.measure = Measure::kAverageDegree;
  auto mine_alpha = [&](double alpha) {
    request.alpha = alpha;
    Result<MiningResponse> response = session->Mine(request);
    ASSERT_TRUE(response.ok());
  };
  mine_alpha(1.0);  // A: miss
  mine_alpha(2.0);  // B: miss
  mine_alpha(1.0);  // A: hit — A becomes most recent
  mine_alpha(3.0);  // C: miss — evicts B (LRU), not A
  EXPECT_EQ(cache->stats().evictions, 1u);
  mine_alpha(1.0);  // A: still resident
  EXPECT_EQ(cache->stats().hits, 2u);
  EXPECT_EQ(cache->stats().misses, 3u);
  mine_alpha(2.0);  // B: was evicted, misses again
  EXPECT_EQ(cache->stats().misses, 4u);
}

TEST(PipelineCacheTest, TelemetryCountsHitsMissesAndUpgrades) {
  auto cache = std::make_shared<PipelineCache>();
  Result<MinerSession> session =
      MinerSession::Create(Fig1G1(), Fig1G2(), WithCache(cache));
  ASSERT_TRUE(session.ok());

  // 1) A pure builtin average-degree mine prepares the difference only.
  MiningRequest ad;
  ad.measure = Measure::kAverageDegree;
  Result<MiningResponse> first = session->Mine(ad);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->telemetry.pipeline_cache_hits, 0u);
  EXPECT_EQ(first->telemetry.pipeline_cache_misses, 1u);
  EXPECT_GT(first->telemetry.pipeline_cache_bytes, 0u);
  EXPECT_EQ(session->num_rebuilds(), 1u);

  // 2) A graph-affinity mine on the same key upgrades copy-on-write: the
  // cached difference is reused (no rebuild), counted as an upgrade rather
  // than a hit or miss.
  MiningRequest ga;
  ga.measure = Measure::kGraphAffinity;
  Result<MiningResponse> second = session->Mine(ga);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->telemetry.reused_cached_difference);
  EXPECT_EQ(session->num_rebuilds(), 1u);
  PipelineCacheStats stats = cache->stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.upgrades, 1u);
  EXPECT_EQ(stats.entries, 1u);

  // 3) Repeats are plain hits, and the telemetry snapshot rides along.
  Result<MiningResponse> third = session->Mine(ga);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->telemetry.pipeline_cache_hits, cache->stats().hits);
  EXPECT_EQ(third->telemetry.pipeline_cache_misses, 1u);
  EXPECT_GE(cache->stats().hits, 1u);

  // 4) InvalidateCaches drops this session's entries; the next mine misses.
  session->InvalidateCaches();
  EXPECT_EQ(session->num_cached_pipelines(), 0u);
  Result<MiningResponse> fourth = session->Mine(ga);
  ASSERT_TRUE(fourth.ok());
  EXPECT_EQ(fourth->telemetry.pipeline_cache_misses, 2u);
  EXPECT_EQ(SerializeSubgraphs(*fourth), SerializeSubgraphs(*third));
}

TEST(PipelineCacheTest, MineAllRunsOverTheSharedCache) {
  const CoauthorData data = PlantedCoauthor();
  auto cache = std::make_shared<PipelineCache>();

  // Session A prepares two pipelines; session B's MineAll batch over the
  // same keys is then served entirely from the shared cache.
  std::vector<MiningRequest> requests(4);
  for (size_t i = 0; i < requests.size(); ++i) {
    requests[i].measure = Measure::kGraphAffinity;
    requests[i].alpha = i % 2 == 0 ? 1.0 : 2.0;
  }
  Result<MinerSession> a =
      MinerSession::Create(data.g1, data.g2, WithCache(cache));
  ASSERT_TRUE(a.ok());
  Result<std::vector<MiningResponse>> warmup = a->MineAll(requests);
  ASSERT_TRUE(warmup.ok());
  EXPECT_EQ(a->num_rebuilds(), 2u);

  Result<MinerSession> b =
      MinerSession::Create(data.g1, data.g2, WithCache(cache));
  ASSERT_TRUE(b.ok());
  Result<std::vector<MiningResponse>> batched = b->MineAll(requests);
  ASSERT_TRUE(batched.ok());
  EXPECT_EQ(b->num_rebuilds(), 0u);
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_TRUE((*batched)[i].telemetry.reused_cached_difference);
    EXPECT_EQ(SerializeSubgraphs((*batched)[i]),
              SerializeSubgraphs((*warmup)[i]));
  }
}

TEST(PipelineCacheTest, MiningServiceSharedCacheOptionAttaches) {
  const CoauthorData data = PlantedCoauthor();
  MiningRequest request;
  request.measure = Measure::kGraphAffinity;

  auto cache = std::make_shared<PipelineCache>();
  MiningServiceOptions service_options;
  service_options.shared_cache = cache;

  Result<MinerSession> s1 = MinerSession::Create(data.g1, data.g2);
  Result<MinerSession> s2 = MinerSession::Create(data.g1, data.g2);
  ASSERT_TRUE(s1.ok() && s2.ok());
  MiningService service1(std::move(*s1), service_options);
  MiningService service2(std::move(*s2), service_options);

  Result<JobId> job1 = service1.Submit(request);
  Result<JobId> job2 = service2.Submit(request);
  ASSERT_TRUE(job1.ok() && job2.ok());
  Result<JobStatus> done1 = service1.Wait(*job1);
  Result<JobStatus> done2 = service2.Wait(*job2);
  ASSERT_TRUE(done1.ok() && done2.ok());
  ASSERT_EQ(done1->state, JobState::kDone);
  ASSERT_EQ(done2->state, JobState::kDone);

  // One service prepared, the other hit; responses are bit-identical.
  const PipelineCacheStats stats = cache->stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_GE(stats.hits, 1u);
  EXPECT_EQ(SerializeSubgraphs(done1->response),
            SerializeSubgraphs(done2->response));
}

TEST(PipelineCacheTest, ZeroCapacityPrivateCacheKeepsOnlyTheFreshPipeline) {
  // Pre-extraction, max_cached_pipelines = 0 evicted everything but the
  // pipeline just built; it must not mean "unbounded" now.
  SessionOptions options;
  options.max_cached_pipelines = 0;
  Result<MinerSession> session =
      MinerSession::Create(Fig1G1(), Fig1G2(), options);
  ASSERT_TRUE(session.ok());
  MiningRequest request;
  request.measure = Measure::kAverageDegree;
  for (const double alpha : {1.0, 2.0, 3.0}) {
    request.alpha = alpha;
    ASSERT_TRUE(session->Mine(request).ok());
    EXPECT_EQ(session->num_cached_pipelines(), 1u);
  }
}

TEST(PipelineCacheTest, ThrowingBuildBecomesStatusAndReleasesTheKey) {
  auto cache = std::make_shared<PipelineCache>();
  PipelineCacheKey key;
  key.graph_fingerprint = 11;
  bool reused = true;
  Result<PipelineCache::Snapshot> thrown = cache->GetOrPrepare(
      key, /*need_ga=*/false,
      [](const PreparedPipeline*) -> Result<PreparedPipeline> {
        throw std::runtime_error("builder exploded");
      },
      &reused);
  ASSERT_FALSE(thrown.ok());
  EXPECT_EQ(thrown.status().code(), StatusCode::kInternal);

  // The key is released, not deadlocked: the next caller builds normally.
  Result<PipelineCache::Snapshot> ok = cache->GetOrPrepare(
      key, /*need_ga=*/false,
      [](const PreparedPipeline*) -> Result<PreparedPipeline> {
        PreparedPipeline out;
        out.difference = Fig1Gd();
        return out;
      },
      &reused);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(cache->stats().entries, 1u);
}

TEST(PipelineCacheTest, KeyEqualityIsBitwiseAndAgreesWithHash) {
  PipelineCacheKey nan_key;
  nan_key.alpha = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(nan_key == nan_key) << "a NaN key must stay findable";
  PipelineCacheKey zero;
  PipelineCacheKey negative_zero;
  zero.clamp_weights_above = 0.0;
  negative_zero.clamp_weights_above = -0.0;
  EXPECT_FALSE(zero == negative_zero);
  EXPECT_NE(zero.Hash(), negative_zero.Hash());

  // A pathological key cannot corrupt the cache: repeated inserts under a
  // capacity of 1 keep finding (and evicting) the same entry.
  PipelineCacheOptions options;
  options.max_entries = 1;
  PipelineCache cache(options);
  bool reused = true;
  for (int i = 0; i < 3; ++i) {
    Result<PipelineCache::Snapshot> got = cache.GetOrPrepare(
        nan_key, /*need_ga=*/false,
        [](const PreparedPipeline*) -> Result<PreparedPipeline> {
          PreparedPipeline out;
          out.difference = Fig1Gd();
          return out;
        },
        &reused);
    ASSERT_TRUE(got.ok());
  }
  EXPECT_TRUE(reused);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(PipelineCacheTest, BuildFailurePropagatesAndLeavesCacheUsable) {
  auto cache = std::make_shared<PipelineCache>();
  PipelineCacheKey key;
  key.graph_fingerprint = 7;
  bool reused = true;
  Result<PipelineCache::Snapshot> failed = cache->GetOrPrepare(
      key, /*need_ga=*/false,
      [](const PreparedPipeline*) -> Result<PreparedPipeline> {
        return Status::InvalidArgument("boom");
      },
      &reused);
  EXPECT_TRUE(failed.status().IsInvalidArgument());
  EXPECT_EQ(cache->stats().entries, 0u);

  // The key is not poisoned: a succeeding build goes through afterwards.
  Result<PipelineCache::Snapshot> ok = cache->GetOrPrepare(
      key, /*need_ga=*/false,
      [](const PreparedPipeline*) -> Result<PreparedPipeline> {
        PreparedPipeline out;
        out.difference = Fig1Gd();
        return out;
      },
      &reused);
  ASSERT_TRUE(ok.ok());
  EXPECT_FALSE(reused);
  EXPECT_EQ(cache->stats().entries, 1u);
}

}  // namespace
}  // namespace dcs
