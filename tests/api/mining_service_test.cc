// MiningService: the submit/poll/wait/cancel state machine, update fencing,
// failure propagation, cancellation semantics, and a moderate many-jobs run
// asserting every finished job is bit-identical to a fresh synchronous
// solve (the big mixed stress lives in tests/stress/).

#include "api/mining_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/miner_session.h"
#include "api/solver_registry.h"
#include "gen/random_graphs.h"
#include "test_util.h"
#include "util/rng.h"
#include "util/timer.h"

namespace dcs {
namespace {

using ::dcs::testing::Fig1G1;
using ::dcs::testing::Fig1G2;
using ::dcs::testing::MakeGraph;

// --- test solvers ---------------------------------------------------------
// Registered once per process; tests reset the globals they use.

std::atomic<bool> g_release{false};
std::atomic<int> g_blocking_runs{0};
std::atomic<int> g_counting_runs{0};

// Parks until released (or cancelled), making queue states observable.
Result<std::vector<RankedSubgraph>> BlockingSolver(const SolverContext& ctx,
                                                   const MiningRequest&,
                                                   MiningTelemetry*) {
  g_blocking_runs.fetch_add(1);
  while (!g_release.load()) {
    if (ctx.cancel != nullptr && ctx.cancel->cancelled()) {
      return Status::Cancelled("blocking solver cancelled");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return std::vector<RankedSubgraph>{};
}

Result<std::vector<RankedSubgraph>> CountingSolver(const SolverContext&,
                                                   const MiningRequest&,
                                                   MiningTelemetry*) {
  g_counting_runs.fetch_add(1);
  return std::vector<RankedSubgraph>{};
}

Result<std::vector<RankedSubgraph>> ThrowingServiceSolver(
    const SolverContext&, const MiningRequest&, MiningTelemetry*) {
  throw std::runtime_error("service solver boom");
}

// Runs "forever" until its token fires — the deterministic mid-run
// cancellation target.
Result<std::vector<RankedSubgraph>> CancelWaitingSolver(
    const SolverContext& ctx, const MiningRequest&, MiningTelemetry*) {
  WallTimer guard;
  while (ctx.cancel == nullptr || !ctx.cancel->cancelled()) {
    if (guard.Seconds() > 30.0) {
      return Status::Internal("cancel-waiting solver was never cancelled");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return Status::Cancelled("solver observed the token");
}

void RegisterTestSolvers() {
  static const bool registered = [] {
    auto& registry = SolverRegistry::Global();
    return registry.Register("blocking-solver", &BlockingSolver).ok() &&
           registry.Register("counting-solver", &CountingSolver).ok() &&
           registry.Register("cancel-waiting", &CancelWaitingSolver).ok() &&
           registry.Register("service-throwing", &ThrowingServiceSolver).ok();
  }();
  ASSERT_TRUE(registered);
}

// --- helpers --------------------------------------------------------------

MinerSession MustCreate(Graph g1, Graph g2, SessionOptions options = {}) {
  Result<MinerSession> session =
      MinerSession::Create(std::move(g1), std::move(g2), options);
  DCS_CHECK(session.ok()) << session.status().ToString();
  return std::move(*session);
}

// Spin until the job reaches `state` (or the deadline trips).
bool WaitForState(const MiningService& service, JobId id, JobState state) {
  WallTimer timer;
  while (timer.Seconds() < 30.0) {
    Result<JobStatus> polled = service.Poll(id);
    if (!polled.ok()) return false;
    if (polled->state == state) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

// Everything deterministic about a sequential-solve response (subgraphs +
// telemetry counters; wall times are the documented exception). Tests that
// grant requests an auto parallelism share compare
// testing::SerializeSubgraphs instead — work counters vary with timing.
std::string Serialize(const MiningResponse& response) {
  return ::dcs::testing::SerializeDeterministic(response);
}

// --- state machine --------------------------------------------------------

TEST(MiningServiceTest, SubmitWaitDoneMatchesSynchronousMine) {
  MiningRequest request;  // both measures, defaults
  Result<MiningResponse> expected =
      MustCreate(Fig1G1(), Fig1G2()).Mine(request);
  ASSERT_TRUE(expected.ok());

  MiningService service(MustCreate(Fig1G1(), Fig1G2()));
  Result<JobId> id = service.Submit(request);
  ASSERT_TRUE(id.ok());
  Result<JobStatus> status = service.Wait(*id);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, JobState::kDone);
  EXPECT_TRUE(status->terminal());
  EXPECT_TRUE(status->failure.ok());
  EXPECT_GE(status->queue_seconds, 0.0);
  EXPECT_GE(status->run_seconds, 0.0);
  EXPECT_EQ(Serialize(status->response), Serialize(*expected));

  // Poll after the terminal transition returns the same snapshot.
  Result<JobStatus> polled = service.Poll(*id);
  ASSERT_TRUE(polled.ok());
  EXPECT_EQ(polled->state, JobState::kDone);
  EXPECT_EQ(Serialize(polled->response), Serialize(*expected));
  EXPECT_EQ(service.num_submitted(), 1u);
  EXPECT_EQ(service.num_pending_jobs(), 0u);
}

TEST(MiningServiceTest, UnknownJobIdsAreNotFound) {
  MiningService service(MustCreate(Fig1G1(), Fig1G2()));
  EXPECT_TRUE(service.Poll(4242).status().IsNotFound());
  EXPECT_TRUE(service.Wait(4242).status().IsNotFound());
  EXPECT_TRUE(service.Cancel(4242).status().IsNotFound());
}

TEST(MiningServiceTest, QueuedAndRunningStatesAreObservable) {
  RegisterTestSolvers();
  g_release.store(false);

  MiningService service(MustCreate(Fig1G1(), Fig1G2()));
  MiningRequest blocking;
  blocking.measure = Measure::kAverageDegree;
  blocking.ad_solver_name = "blocking-solver";
  Result<JobId> first = service.Submit(blocking);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(WaitForState(service, *first, JobState::kRunning));

  Result<JobId> second = service.Submit(MiningRequest{});
  ASSERT_TRUE(second.ok());
  Result<JobStatus> queued = service.Poll(*second);
  ASSERT_TRUE(queued.ok());
  EXPECT_EQ(queued->state, JobState::kQueued);
  EXPECT_EQ(service.num_pending_jobs(), 2u);

  g_release.store(true);
  EXPECT_EQ(service.Wait(*first)->state, JobState::kDone);
  EXPECT_EQ(service.Wait(*second)->state, JobState::kDone);
}

// --- failure propagation --------------------------------------------------

TEST(MiningServiceTest, BadSolverNameFailsTheJobNotTheService) {
  MiningService service(MustCreate(Fig1G1(), Fig1G2()));
  MiningRequest bad;
  bad.ga_solver_name = "no-such-measure";
  Result<JobId> id = service.Submit(bad);
  ASSERT_TRUE(id.ok());
  Result<JobStatus> status = service.Wait(*id);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, JobState::kFailed);
  EXPECT_TRUE(status->failure.IsNotFound());
  EXPECT_NE(status->failure.message().find("no-such-measure"),
            std::string::npos);
  EXPECT_TRUE(status->response.graph_affinity.empty());

  // The queue keeps draining: the next job succeeds.
  Result<JobId> good = service.Submit(MiningRequest{});
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(service.Wait(*good)->state, JobState::kDone);
}

TEST(MiningServiceTest, ThrowingSolverFailsTheJobNotTheProcess) {
  RegisterTestSolvers();
  MiningService service(MustCreate(Fig1G1(), Fig1G2()));
  MiningRequest throwing;
  throwing.measure = Measure::kAverageDegree;
  throwing.ad_solver_name = "service-throwing";
  Result<JobId> id = service.Submit(throwing);
  ASSERT_TRUE(id.ok());
  Result<JobStatus> status = service.Wait(*id);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, JobState::kFailed);
  EXPECT_EQ(status->failure.code(), StatusCode::kInternal);
  EXPECT_NE(status->failure.message().find("boom"), std::string::npos);

  // The executor survived the exception and keeps serving.
  Result<JobId> good = service.Submit(MiningRequest{});
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(service.Wait(*good)->state, JobState::kDone);
}

TEST(MiningServiceTest, InvalidRequestFailsTheJobWithItsValidationStatus) {
  MiningService service(MustCreate(Fig1G1(), Fig1G2()));
  MiningRequest invalid;
  invalid.alpha = 0.0;  // Validate() rejects non-positive alpha
  Result<JobId> id = service.Submit(invalid);
  ASSERT_TRUE(id.ok());
  Result<JobStatus> status = service.Wait(*id);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, JobState::kFailed);
  EXPECT_TRUE(status->failure.IsInvalidArgument());
}

TEST(MiningServiceTest, BadUpdatesAreRejectedEagerly) {
  MiningService service(MustCreate(Fig1G1(), Fig1G2()));
  EXPECT_TRUE(service.ApplyUpdate(UpdateSide::kG2, 1, 1, 1.0)
                  .IsInvalidArgument());  // self-loop
  EXPECT_EQ(service.ApplyUpdate(UpdateSide::kG2, 0, 99, 1.0).code(),
            StatusCode::kOutOfRange);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(
      service.ApplyUpdate(UpdateSide::kG1, 0, 1, inf).IsInvalidArgument());
}

// --- cancellation ---------------------------------------------------------

TEST(MiningServiceTest, CancellingAQueuedJobNeverStartsIt) {
  RegisterTestSolvers();
  g_release.store(false);
  g_counting_runs.store(0);

  MiningService service(MustCreate(Fig1G1(), Fig1G2()));
  MiningRequest blocking;
  blocking.measure = Measure::kAverageDegree;
  blocking.ad_solver_name = "blocking-solver";
  Result<JobId> head = service.Submit(blocking);
  ASSERT_TRUE(head.ok());
  ASSERT_TRUE(WaitForState(service, *head, JobState::kRunning));

  MiningRequest counted;
  counted.measure = Measure::kAverageDegree;
  counted.ad_solver_name = "counting-solver";
  Result<JobId> queued = service.Submit(counted);
  ASSERT_TRUE(queued.ok());
  Result<JobStatus> cancelled = service.Cancel(*queued);
  ASSERT_TRUE(cancelled.ok());
  // Terminal immediately — the guarantee, not just eventually-cancelled.
  EXPECT_EQ(cancelled->state, JobState::kCancelled);

  g_release.store(true);
  EXPECT_EQ(service.Wait(*head)->state, JobState::kDone);
  service.Drain();
  EXPECT_EQ(g_counting_runs.load(), 0) << "cancelled queued job was started";
  EXPECT_EQ(service.Wait(*queued)->state, JobState::kCancelled);

  // Cancelling a terminal job is a no-op returning the snapshot.
  EXPECT_EQ(service.Cancel(*head)->state, JobState::kDone);
}

TEST(MiningServiceTest, CancelMidRunLeavesTheSessionReusable) {
  RegisterTestSolvers();
  auto [g1, g2] = std::pair{Fig1G1(), Fig1G2()};

  MiningService service(MustCreate(g1, g2));
  MiningRequest doomed;
  doomed.ga_solver_name = "cancel-waiting";
  Result<JobId> id = service.Submit(doomed);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(WaitForState(service, *id, JobState::kRunning));
  Result<JobStatus> snapshot = service.Cancel(*id);
  ASSERT_TRUE(snapshot.ok());
  Result<JobStatus> final_status = service.Wait(*id);
  ASSERT_TRUE(final_status.ok());
  EXPECT_EQ(final_status->state, JobState::kCancelled);
  EXPECT_TRUE(final_status->response.graph_affinity.empty())
      << "cancelled job must not carry a partial result";

  // The identical request (builtin solver) on the same service now returns
  // the exact synchronous-reference answer. The cancelled job already
  // materialized the pipeline (prepare precedes the solve), so the matching
  // reference is a cache-warm solve: mine twice, compare the second.
  MiningRequest request;  // defaults: builtin solvers
  MinerSession reference = MustCreate(g1, g2);
  ASSERT_TRUE(reference.Mine(request).ok());
  Result<MiningResponse> expected = reference.Mine(request);
  ASSERT_TRUE(expected.ok());
  Result<JobId> retry = service.Submit(request);
  ASSERT_TRUE(retry.ok());
  Result<JobStatus> done = service.Wait(*retry);
  ASSERT_TRUE(done.ok());
  ASSERT_EQ(done->state, JobState::kDone);
  EXPECT_EQ(Serialize(done->response), Serialize(*expected));
}

TEST(MiningServiceTest, DestructionCancelsOutstandingJobs) {
  RegisterTestSolvers();
  g_release.store(false);
  g_counting_runs.store(0);

  Result<JobId> queued = Status::OK();
  {
    MiningService service(MustCreate(Fig1G1(), Fig1G2()));
    MiningRequest blocking;
    blocking.measure = Measure::kAverageDegree;
    blocking.ad_solver_name = "blocking-solver";
    ASSERT_TRUE(service.Submit(blocking).ok());

    MiningRequest counted;
    counted.measure = Measure::kAverageDegree;
    counted.ad_solver_name = "counting-solver";
    queued = service.Submit(counted);
    ASSERT_TRUE(queued.ok());
    // Destructor: fires the running job's token (the blocking solver
    // observes it), cancels the queued job, joins — must not hang.
  }
  EXPECT_EQ(g_counting_runs.load(), 0);
}

TEST(MiningServiceTest, DestructionReleasesOutstandingWaiters) {
  RegisterTestSolvers();
  g_release.store(false);

  auto service =
      std::make_unique<MiningService>(MustCreate(Fig1G1(), Fig1G2()));
  MiningRequest blocking;
  blocking.measure = Measure::kAverageDegree;
  blocking.ad_solver_name = "blocking-solver";
  Result<JobId> running = service->Submit(blocking);
  ASSERT_TRUE(running.ok());
  Result<JobId> queued = service->Submit(blocking);
  ASSERT_TRUE(queued.ok());
  ASSERT_TRUE(WaitForState(*service, *running, JobState::kRunning));

  constexpr size_t kWaiters = 4;
  std::vector<Result<JobStatus>> results(kWaiters, Status::OK());
  std::vector<std::thread> waiters;
  for (size_t i = 0; i < kWaiters; ++i) {
    const JobId target = (i % 2 == 0) ? *running : *queued;
    waiters.emplace_back(
        [&, i, target] { results[i] = service->Wait(target); });
  }
  // A registered waiter is positively inside the service (the population
  // the teardown drain covers) — only then is destroying it defined.
  WallTimer timer;
  while (service->num_active_waiters() < kWaiters) {
    if (timer.Seconds() > 30.0) {
      // Let the jobs finish so the waiters return and can be joined before
      // failing — returning with joinable threads would std::terminate.
      g_release.store(true);
      for (std::thread& t : waiters) t.join();
      FAIL() << "waiters never registered inside Wait()";
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // The destructor cancels both jobs, joins the executor, then blocks until
  // every outstanding Wait() has returned — so the waiters above must all
  // come back with terminal snapshots instead of touching freed sync
  // primitives.
  service.reset();
  for (std::thread& t : waiters) t.join();
  for (const Result<JobStatus>& status : results) {
    ASSERT_TRUE(status.ok());
    EXPECT_EQ(status->state, JobState::kCancelled);
  }
}

TEST(MiningServiceTest, SubmitStripsCallerEmbeddedCancelToken) {
  RegisterTestSolvers();

  MiningService service(MustCreate(Fig1G1(), Fig1G2()));
  CancelToken caller_token;
  caller_token.Cancel();
  MiningRequest request;
  request.measure = Measure::kGraphAffinity;  // the builtin NewSEA seed loop
  request.ga_solver.cancel = &caller_token;
  Result<JobId> id = service.Submit(std::move(request));
  ASSERT_TRUE(id.ok());
  Result<JobStatus> done = service.Wait(*id);
  ASSERT_TRUE(done.ok());
  // The embedded (already-fired, dangle-prone) token was stripped at
  // Submit: the job is governed solely by its per-job token — which also
  // means Cancel(JobId) actually reaches the seed loop for such requests.
  EXPECT_EQ(done->state, JobState::kDone);
}

TEST(MiningServiceTest, PollIsSafeAgainstConcurrentEviction) {
  RegisterTestSolvers();
  g_release.store(true);

  MiningServiceOptions options;
  options.max_finished_jobs = 1;  // evict on every finish
  MiningService service(MustCreate(Fig1G1(), Fig1G2()), options);
  MiningRequest counted;
  counted.measure = Measure::kAverageDegree;
  counted.ad_solver_name = "counting-solver";

  // Hammer Poll on the most recent job while new finishes evict it: the
  // snapshot's unlocked response copy must pin the Job with its own
  // shared_ptr (use-after-free regression; sanitizer runs enforce it).
  std::atomic<JobId> latest{0};
  std::atomic<bool> stop{false};
  std::thread poller([&] {
    while (!stop.load()) {
      const JobId id = latest.load();
      if (id == 0) continue;
      Result<JobStatus> snapshot = service.Poll(id);
      if (!snapshot.ok()) {
        EXPECT_EQ(snapshot.status().code(), StatusCode::kNotFound);
      }
    }
  });
  for (int i = 0; i < 200; ++i) {
    Result<JobId> id = service.Submit(counted);
    if (!id.ok()) break;
    latest.store(*id);
    EXPECT_TRUE(service.Wait(*id).ok());
  }
  stop.store(true);
  poller.join();
}

// --- backpressure ---------------------------------------------------------

TEST(MiningServiceTest, BackpressureRejectsSubmitsBeyondTheQueueCap) {
  RegisterTestSolvers();
  g_release.store(false);

  MiningServiceOptions options;
  options.max_queued_jobs = 2;
  MiningService service(MustCreate(Fig1G1(), Fig1G2()), options);
  MiningRequest blocking;
  blocking.measure = Measure::kAverageDegree;
  blocking.ad_solver_name = "blocking-solver";
  Result<JobId> running = service.Submit(blocking);
  ASSERT_TRUE(running.ok());
  ASSERT_TRUE(WaitForState(service, *running, JobState::kRunning));

  // The running job no longer occupies the queue: two more fit, not three.
  ASSERT_TRUE(service.Submit(MiningRequest{}).ok());
  ASSERT_TRUE(service.Submit(MiningRequest{}).ok());
  Result<JobId> overflow = service.Submit(MiningRequest{});
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kOutOfRange);

  g_release.store(true);
  service.Drain();
  // Queue drained: submits are accepted again.
  EXPECT_TRUE(service.Submit(MiningRequest{}).ok());
  service.Drain();
}

// --- update fencing -------------------------------------------------------

TEST(MiningServiceTest, UpdatesAreFencedBetweenJobs) {
  // Live graph: a modest clique that a fenced surge overtakes.
  const Graph g1 = MakeGraph(8, {});
  const Graph g2 = MakeGraph(8, {{0, 1, 3.0}, {1, 2, 3.0}, {0, 2, 3.0}});
  MiningRequest request;
  request.measure = Measure::kGraphAffinity;

  // Reference replay: solve, update, solve — synchronously.
  MinerSession reference = MustCreate(g1, g2);
  Result<MiningResponse> before = reference.Mine(request);
  ASSERT_TRUE(before.ok());
  for (const auto [u, v] : {std::pair{4, 5}, {5, 6}, {4, 6}}) {
    ASSERT_TRUE(reference
                    .ApplyUpdate(UpdateSide::kG2, static_cast<VertexId>(u),
                                 static_cast<VertexId>(v), 9.0)
                    .ok());
  }
  Result<MiningResponse> after = reference.Mine(request);
  ASSERT_TRUE(after.ok());
  // The surge changed the answer — otherwise fencing would be vacuous.
  ASSERT_NE(Serialize(*before), Serialize(*after));

  // Async: job A is submitted before the update, job B after. The fence
  // guarantees A mines the pre-update snapshot even though the update is
  // queued long before A's solve may actually start.
  MiningService service(MustCreate(g1, g2));
  Result<JobId> job_a = service.Submit(request);
  ASSERT_TRUE(job_a.ok());
  for (const auto [u, v] : {std::pair{4, 5}, {5, 6}, {4, 6}}) {
    ASSERT_TRUE(service
                    .ApplyUpdate(UpdateSide::kG2, static_cast<VertexId>(u),
                                 static_cast<VertexId>(v), 9.0)
                    .ok());
  }
  Result<JobId> job_b = service.Submit(request);
  ASSERT_TRUE(job_b.ok());

  Result<JobStatus> status_a = service.Wait(*job_a);
  Result<JobStatus> status_b = service.Wait(*job_b);
  ASSERT_TRUE(status_a.ok());
  ASSERT_TRUE(status_b.ok());
  ASSERT_EQ(status_a->state, JobState::kDone);
  ASSERT_EQ(status_b->state, JobState::kDone);
  EXPECT_EQ(Serialize(status_a->response), Serialize(*before));
  EXPECT_EQ(Serialize(status_b->response), Serialize(*after));
}

// --- many jobs vs synchronous reference ----------------------------------

TEST(MiningServiceTest, ManyJobsMatchTheirSynchronousReference) {
  Rng rng(31);
  Result<Graph> g2 = RandomSignedGraph(/*n=*/120, /*m=*/800,
                                       /*positive_fraction=*/0.7,
                                       /*magnitude_lo=*/0.5,
                                       /*magnitude_hi=*/3.0, &rng);
  ASSERT_TRUE(g2.ok());
  const Graph g1 = MakeGraph(120, {});

  // A deterministic interleaving of 24 mixed jobs and 5 updates.
  std::vector<MiningRequest> requests(24);
  for (size_t i = 0; i < requests.size(); ++i) {
    requests[i].measure = i % 3 == 0   ? Measure::kBoth
                          : i % 3 == 1 ? Measure::kGraphAffinity
                                       : Measure::kAverageDegree;
    requests[i].alpha = i % 2 == 0 ? 1.0 : 2.0;
    requests[i].flip = i % 5 == 0;
    requests[i].ga_solver.parallelism = 0;  // auto
  }
  auto update_at = [](size_t i) { return i % 5 == 2; };
  auto update_edge = [](size_t i) {
    return std::pair<VertexId, VertexId>(static_cast<VertexId>(i),
                                         static_cast<VertexId>(i + 40));
  };

  // Reference: synchronous replay of the same op order.
  MinerSession reference = MustCreate(g1, *g2);
  std::vector<std::string> expected;
  for (size_t i = 0; i < requests.size(); ++i) {
    if (update_at(i)) {
      const auto [u, v] = update_edge(i);
      ASSERT_TRUE(reference.ApplyUpdate(UpdateSide::kG2, u, v, 4.0).ok());
    }
    Result<MiningResponse> mined = reference.Mine(requests[i]);
    ASSERT_TRUE(mined.ok());
    // Subgraphs only: these requests take the auto parallelism share, so
    // their work counters may vary with thread timing on multi-core hosts.
    expected.push_back(::dcs::testing::SerializeSubgraphs(*mined));
  }

  MiningService service(MustCreate(g1, *g2));
  std::vector<JobId> ids;
  for (size_t i = 0; i < requests.size(); ++i) {
    if (update_at(i)) {
      const auto [u, v] = update_edge(i);
      ASSERT_TRUE(service.ApplyUpdate(UpdateSide::kG2, u, v, 4.0).ok());
    }
    Result<JobId> id = service.Submit(requests[i]);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    Result<JobStatus> status = service.Wait(ids[i]);
    ASSERT_TRUE(status.ok());
    ASSERT_EQ(status->state, JobState::kDone) << "job #" << i;
    EXPECT_EQ(::dcs::testing::SerializeSubgraphs(status->response), expected[i])
        << "job #" << i;
  }
}

// --- retention ------------------------------------------------------------

TEST(MiningServiceTest, FinishedJobsAreEvictedBeyondTheRetentionCap) {
  MiningServiceOptions options;
  options.max_finished_jobs = 2;
  MiningService service(MustCreate(Fig1G1(), Fig1G2()), options);
  std::vector<JobId> ids;
  for (int i = 0; i < 4; ++i) {
    Result<JobId> id = service.Submit(MiningRequest{});
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  service.Drain();
  EXPECT_TRUE(service.Poll(ids[0]).status().IsNotFound());
  EXPECT_TRUE(service.Poll(ids[1]).status().IsNotFound());
  EXPECT_EQ(service.Poll(ids[2])->state, JobState::kDone);
  EXPECT_EQ(service.Poll(ids[3])->state, JobState::kDone);
}

}  // namespace
}  // namespace dcs
