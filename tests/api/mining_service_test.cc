// MiningService: the submit/poll/wait/cancel state machine, update fencing,
// failure propagation, cancellation semantics, and a moderate many-jobs run
// asserting every finished job is bit-identical to a fresh synchronous
// solve (the big mixed stress lives in tests/stress/).

#include "api/mining_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/job_journal.h"
#include "api/miner_session.h"
#include "api/pipeline_cache.h"
#include "api/solver_registry.h"
#include "gen/random_graphs.h"
#include "test_util.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace dcs {
namespace {

using ::dcs::testing::Fig1G1;
using ::dcs::testing::Fig1G2;
using ::dcs::testing::MakeGraph;

// --- test solvers ---------------------------------------------------------
// Registered once per process; tests reset the globals they use.

std::atomic<bool> g_release{false};
std::atomic<int> g_blocking_runs{0};
std::atomic<int> g_counting_runs{0};

// Parks until released (or cancelled), making queue states observable.
Result<std::vector<RankedSubgraph>> BlockingSolver(const SolverContext& ctx,
                                                   const MiningRequest&,
                                                   MiningTelemetry*) {
  g_blocking_runs.fetch_add(1);
  while (!g_release.load()) {
    if (ctx.cancel != nullptr && ctx.cancel->cancelled()) {
      return Status::Cancelled("blocking solver cancelled");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return std::vector<RankedSubgraph>{};
}

Result<std::vector<RankedSubgraph>> CountingSolver(const SolverContext&,
                                                   const MiningRequest&,
                                                   MiningTelemetry*) {
  g_counting_runs.fetch_add(1);
  return std::vector<RankedSubgraph>{};
}

Result<std::vector<RankedSubgraph>> ThrowingServiceSolver(
    const SolverContext&, const MiningRequest&, MiningTelemetry*) {
  throw std::runtime_error("service solver boom");
}

// Runs "forever" until its token fires — the deterministic mid-run
// cancellation target.
Result<std::vector<RankedSubgraph>> CancelWaitingSolver(
    const SolverContext& ctx, const MiningRequest&, MiningTelemetry*) {
  WallTimer guard;
  while (ctx.cancel == nullptr || !ctx.cancel->cancelled()) {
    if (guard.Seconds() > 30.0) {
      return Status::Internal("cancel-waiting solver was never cancelled");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return Status::Cancelled("solver observed the token");
}

void RegisterTestSolvers() {
  static const bool registered = [] {
    auto& registry = SolverRegistry::Global();
    return registry.Register("blocking-solver", &BlockingSolver).ok() &&
           registry.Register("counting-solver", &CountingSolver).ok() &&
           registry.Register("cancel-waiting", &CancelWaitingSolver).ok() &&
           registry.Register("service-throwing", &ThrowingServiceSolver).ok();
  }();
  ASSERT_TRUE(registered);
}

// --- helpers --------------------------------------------------------------

MinerSession MustCreate(Graph g1, Graph g2, SessionOptions options = {}) {
  Result<MinerSession> session =
      MinerSession::Create(std::move(g1), std::move(g2), options);
  DCS_CHECK(session.ok()) << session.status().ToString();
  return std::move(*session);
}

// Spin until the job reaches `state` (or the deadline trips).
bool WaitForState(const MiningService& service, JobId id, JobState state) {
  WallTimer timer;
  while (timer.Seconds() < 30.0) {
    Result<JobStatus> polled = service.Poll(id);
    if (!polled.ok()) return false;
    if (polled->state == state) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

// Everything deterministic about a sequential-solve response (subgraphs +
// telemetry counters; wall times are the documented exception). Tests that
// grant requests an auto parallelism share compare
// testing::SerializeSubgraphs instead — work counters vary with timing.
std::string Serialize(const MiningResponse& response) {
  return ::dcs::testing::SerializeDeterministic(response);
}

// --- state machine --------------------------------------------------------

TEST(MiningServiceTest, SubmitWaitDoneMatchesSynchronousMine) {
  MiningRequest request;  // both measures, defaults
  Result<MiningResponse> expected =
      MustCreate(Fig1G1(), Fig1G2()).Mine(request);
  ASSERT_TRUE(expected.ok());

  MiningService service(MustCreate(Fig1G1(), Fig1G2()));
  Result<JobId> id = service.Submit(request);
  ASSERT_TRUE(id.ok());
  Result<JobStatus> status = service.Wait(*id);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, JobState::kDone);
  EXPECT_TRUE(status->terminal());
  EXPECT_TRUE(status->failure.ok());
  EXPECT_GE(status->queue_seconds, 0.0);
  EXPECT_GE(status->run_seconds, 0.0);
  EXPECT_EQ(Serialize(status->response), Serialize(*expected));

  // Poll after the terminal transition returns the same snapshot.
  Result<JobStatus> polled = service.Poll(*id);
  ASSERT_TRUE(polled.ok());
  EXPECT_EQ(polled->state, JobState::kDone);
  EXPECT_EQ(Serialize(polled->response), Serialize(*expected));
  EXPECT_EQ(service.num_submitted(), 1u);
  EXPECT_EQ(service.num_pending_jobs(), 0u);
}

TEST(MiningServiceTest, UnknownJobIdsAreNotFound) {
  MiningService service(MustCreate(Fig1G1(), Fig1G2()));
  EXPECT_TRUE(service.Poll(4242).status().IsNotFound());
  EXPECT_TRUE(service.Wait(4242).status().IsNotFound());
  EXPECT_TRUE(service.Cancel(4242).status().IsNotFound());
}

TEST(MiningServiceTest, QueuedAndRunningStatesAreObservable) {
  RegisterTestSolvers();
  g_release.store(false);

  MiningService service(MustCreate(Fig1G1(), Fig1G2()));
  MiningRequest blocking;
  blocking.measure = Measure::kAverageDegree;
  blocking.ad_solver_name = "blocking-solver";
  Result<JobId> first = service.Submit(blocking);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(WaitForState(service, *first, JobState::kRunning));

  Result<JobId> second = service.Submit(MiningRequest{});
  ASSERT_TRUE(second.ok());
  Result<JobStatus> queued = service.Poll(*second);
  ASSERT_TRUE(queued.ok());
  EXPECT_EQ(queued->state, JobState::kQueued);
  EXPECT_EQ(service.num_pending_jobs(), 2u);

  g_release.store(true);
  EXPECT_EQ(service.Wait(*first)->state, JobState::kDone);
  EXPECT_EQ(service.Wait(*second)->state, JobState::kDone);
}

// --- failure propagation --------------------------------------------------

TEST(MiningServiceTest, BadSolverNameFailsTheJobNotTheService) {
  MiningService service(MustCreate(Fig1G1(), Fig1G2()));
  MiningRequest bad;
  bad.ga_solver_name = "no-such-measure";
  Result<JobId> id = service.Submit(bad);
  ASSERT_TRUE(id.ok());
  Result<JobStatus> status = service.Wait(*id);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, JobState::kFailed);
  EXPECT_TRUE(status->failure.IsNotFound());
  EXPECT_NE(status->failure.message().find("no-such-measure"),
            std::string::npos);
  EXPECT_TRUE(status->response.graph_affinity.empty());

  // The queue keeps draining: the next job succeeds.
  Result<JobId> good = service.Submit(MiningRequest{});
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(service.Wait(*good)->state, JobState::kDone);
}

TEST(MiningServiceTest, ThrowingSolverFailsTheJobNotTheProcess) {
  RegisterTestSolvers();
  MiningService service(MustCreate(Fig1G1(), Fig1G2()));
  MiningRequest throwing;
  throwing.measure = Measure::kAverageDegree;
  throwing.ad_solver_name = "service-throwing";
  Result<JobId> id = service.Submit(throwing);
  ASSERT_TRUE(id.ok());
  Result<JobStatus> status = service.Wait(*id);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, JobState::kFailed);
  EXPECT_EQ(status->failure.code(), StatusCode::kInternal);
  EXPECT_NE(status->failure.message().find("boom"), std::string::npos);

  // The executor survived the exception and keeps serving.
  Result<JobId> good = service.Submit(MiningRequest{});
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(service.Wait(*good)->state, JobState::kDone);
}

TEST(MiningServiceTest, InvalidRequestFailsTheJobWithItsValidationStatus) {
  MiningService service(MustCreate(Fig1G1(), Fig1G2()));
  MiningRequest invalid;
  invalid.alpha = 0.0;  // Validate() rejects non-positive alpha
  Result<JobId> id = service.Submit(invalid);
  ASSERT_TRUE(id.ok());
  Result<JobStatus> status = service.Wait(*id);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, JobState::kFailed);
  EXPECT_TRUE(status->failure.IsInvalidArgument());
}

TEST(MiningServiceTest, BadUpdatesAreRejectedEagerly) {
  MiningService service(MustCreate(Fig1G1(), Fig1G2()));
  EXPECT_TRUE(service.ApplyUpdate(UpdateSide::kG2, 1, 1, 1.0)
                  .IsInvalidArgument());  // self-loop
  EXPECT_EQ(service.ApplyUpdate(UpdateSide::kG2, 0, 99, 1.0).code(),
            StatusCode::kOutOfRange);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(
      service.ApplyUpdate(UpdateSide::kG1, 0, 1, inf).IsInvalidArgument());
}

// --- cancellation ---------------------------------------------------------

TEST(MiningServiceTest, CancellingAQueuedJobNeverStartsIt) {
  RegisterTestSolvers();
  g_release.store(false);
  g_counting_runs.store(0);

  MiningService service(MustCreate(Fig1G1(), Fig1G2()));
  MiningRequest blocking;
  blocking.measure = Measure::kAverageDegree;
  blocking.ad_solver_name = "blocking-solver";
  Result<JobId> head = service.Submit(blocking);
  ASSERT_TRUE(head.ok());
  ASSERT_TRUE(WaitForState(service, *head, JobState::kRunning));

  MiningRequest counted;
  counted.measure = Measure::kAverageDegree;
  counted.ad_solver_name = "counting-solver";
  Result<JobId> queued = service.Submit(counted);
  ASSERT_TRUE(queued.ok());
  Result<JobStatus> cancelled = service.Cancel(*queued);
  ASSERT_TRUE(cancelled.ok());
  // Terminal immediately — the guarantee, not just eventually-cancelled.
  EXPECT_EQ(cancelled->state, JobState::kCancelled);

  g_release.store(true);
  EXPECT_EQ(service.Wait(*head)->state, JobState::kDone);
  service.Drain();
  EXPECT_EQ(g_counting_runs.load(), 0) << "cancelled queued job was started";
  EXPECT_EQ(service.Wait(*queued)->state, JobState::kCancelled);

  // Cancelling a terminal job is a no-op returning the snapshot.
  EXPECT_EQ(service.Cancel(*head)->state, JobState::kDone);
}

TEST(MiningServiceTest, CancelMidRunLeavesTheSessionReusable) {
  RegisterTestSolvers();
  auto [g1, g2] = std::pair{Fig1G1(), Fig1G2()};

  MiningService service(MustCreate(g1, g2));
  MiningRequest doomed;
  doomed.ga_solver_name = "cancel-waiting";
  Result<JobId> id = service.Submit(doomed);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(WaitForState(service, *id, JobState::kRunning));
  Result<JobStatus> snapshot = service.Cancel(*id);
  ASSERT_TRUE(snapshot.ok());
  Result<JobStatus> final_status = service.Wait(*id);
  ASSERT_TRUE(final_status.ok());
  EXPECT_EQ(final_status->state, JobState::kCancelled);
  EXPECT_TRUE(final_status->response.graph_affinity.empty())
      << "cancelled job must not carry a partial result";

  // The identical request (builtin solver) on the same service now returns
  // the exact synchronous-reference answer. The cancelled job already
  // materialized the pipeline (prepare precedes the solve), so the matching
  // reference is a cache-warm solve: mine twice, compare the second.
  MiningRequest request;  // defaults: builtin solvers
  MinerSession reference = MustCreate(g1, g2);
  ASSERT_TRUE(reference.Mine(request).ok());
  Result<MiningResponse> expected = reference.Mine(request);
  ASSERT_TRUE(expected.ok());
  Result<JobId> retry = service.Submit(request);
  ASSERT_TRUE(retry.ok());
  Result<JobStatus> done = service.Wait(*retry);
  ASSERT_TRUE(done.ok());
  ASSERT_EQ(done->state, JobState::kDone);
  EXPECT_EQ(Serialize(done->response), Serialize(*expected));
}

TEST(MiningServiceTest, DestructionCancelsOutstandingJobs) {
  RegisterTestSolvers();
  g_release.store(false);
  g_counting_runs.store(0);

  Result<JobId> queued = Status::OK();
  {
    MiningService service(MustCreate(Fig1G1(), Fig1G2()));
    MiningRequest blocking;
    blocking.measure = Measure::kAverageDegree;
    blocking.ad_solver_name = "blocking-solver";
    ASSERT_TRUE(service.Submit(blocking).ok());

    MiningRequest counted;
    counted.measure = Measure::kAverageDegree;
    counted.ad_solver_name = "counting-solver";
    queued = service.Submit(counted);
    ASSERT_TRUE(queued.ok());
    // Destructor: fires the running job's token (the blocking solver
    // observes it), cancels the queued job, joins — must not hang.
  }
  EXPECT_EQ(g_counting_runs.load(), 0);
}

TEST(MiningServiceTest, DestructionReleasesOutstandingWaiters) {
  RegisterTestSolvers();
  g_release.store(false);

  auto service =
      std::make_unique<MiningService>(MustCreate(Fig1G1(), Fig1G2()));
  MiningRequest blocking;
  blocking.measure = Measure::kAverageDegree;
  blocking.ad_solver_name = "blocking-solver";
  Result<JobId> running = service->Submit(blocking);
  ASSERT_TRUE(running.ok());
  Result<JobId> queued = service->Submit(blocking);
  ASSERT_TRUE(queued.ok());
  ASSERT_TRUE(WaitForState(*service, *running, JobState::kRunning));

  constexpr size_t kWaiters = 4;
  std::vector<Result<JobStatus>> results(kWaiters, Status::OK());
  std::vector<std::thread> waiters;
  for (size_t i = 0; i < kWaiters; ++i) {
    const JobId target = (i % 2 == 0) ? *running : *queued;
    waiters.emplace_back(
        [&, i, target] { results[i] = service->Wait(target); });
  }
  // A registered waiter is positively inside the service (the population
  // the teardown drain covers) — only then is destroying it defined.
  WallTimer timer;
  while (service->num_active_waiters() < kWaiters) {
    if (timer.Seconds() > 30.0) {
      // Let the jobs finish so the waiters return and can be joined before
      // failing — returning with joinable threads would std::terminate.
      g_release.store(true);
      for (std::thread& t : waiters) t.join();
      FAIL() << "waiters never registered inside Wait()";
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // The destructor cancels both jobs, joins the executor, then blocks until
  // every outstanding Wait() has returned — so the waiters above must all
  // come back with terminal snapshots instead of touching freed sync
  // primitives.
  service.reset();
  for (std::thread& t : waiters) t.join();
  for (const Result<JobStatus>& status : results) {
    ASSERT_TRUE(status.ok());
    EXPECT_EQ(status->state, JobState::kCancelled);
  }
}

TEST(MiningServiceTest, SubmitStripsCallerEmbeddedCancelToken) {
  RegisterTestSolvers();

  MiningService service(MustCreate(Fig1G1(), Fig1G2()));
  CancelToken caller_token;
  caller_token.Cancel();
  MiningRequest request;
  request.measure = Measure::kGraphAffinity;  // the builtin NewSEA seed loop
  request.ga_solver.cancel = &caller_token;
  Result<JobId> id = service.Submit(std::move(request));
  ASSERT_TRUE(id.ok());
  Result<JobStatus> done = service.Wait(*id);
  ASSERT_TRUE(done.ok());
  // The embedded (already-fired, dangle-prone) token was stripped at
  // Submit: the job is governed solely by its per-job token — which also
  // means Cancel(JobId) actually reaches the seed loop for such requests.
  EXPECT_EQ(done->state, JobState::kDone);
}

TEST(MiningServiceTest, PollIsSafeAgainstConcurrentEviction) {
  RegisterTestSolvers();
  g_release.store(true);

  MiningServiceOptions options;
  options.max_finished_jobs = 1;  // evict on every finish
  MiningService service(MustCreate(Fig1G1(), Fig1G2()), options);
  MiningRequest counted;
  counted.measure = Measure::kAverageDegree;
  counted.ad_solver_name = "counting-solver";

  // Hammer Poll on the most recent job while new finishes evict it: the
  // snapshot's unlocked response copy must pin the Job with its own
  // shared_ptr (use-after-free regression; sanitizer runs enforce it).
  std::atomic<JobId> latest{0};
  std::atomic<bool> stop{false};
  std::thread poller([&] {
    while (!stop.load()) {
      const JobId id = latest.load();
      if (id == 0) continue;
      Result<JobStatus> snapshot = service.Poll(id);
      if (!snapshot.ok()) {
        EXPECT_EQ(snapshot.status().code(), StatusCode::kNotFound);
      }
    }
  });
  for (int i = 0; i < 200; ++i) {
    Result<JobId> id = service.Submit(counted);
    if (!id.ok()) break;
    latest.store(*id);
    EXPECT_TRUE(service.Wait(*id).ok());
  }
  stop.store(true);
  poller.join();
}

// --- backpressure ---------------------------------------------------------

TEST(MiningServiceTest, BackpressureRejectsSubmitsBeyondTheQueueCap) {
  RegisterTestSolvers();
  g_release.store(false);

  MiningServiceOptions options;
  options.max_queued_jobs = 2;
  MiningService service(MustCreate(Fig1G1(), Fig1G2()), options);
  MiningRequest blocking;
  blocking.measure = Measure::kAverageDegree;
  blocking.ad_solver_name = "blocking-solver";
  Result<JobId> running = service.Submit(blocking);
  ASSERT_TRUE(running.ok());
  ASSERT_TRUE(WaitForState(service, *running, JobState::kRunning));

  // The running job no longer occupies the queue: two more fit, not three.
  ASSERT_TRUE(service.Submit(MiningRequest{}).ok());
  ASSERT_TRUE(service.Submit(MiningRequest{}).ok());
  Result<JobId> overflow = service.Submit(MiningRequest{});
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kOutOfRange);

  g_release.store(true);
  service.Drain();
  // Queue drained: submits are accepted again.
  EXPECT_TRUE(service.Submit(MiningRequest{}).ok());
  service.Drain();
}

// --- update fencing -------------------------------------------------------

TEST(MiningServiceTest, UpdatesAreFencedBetweenJobs) {
  // Live graph: a modest clique that a fenced surge overtakes.
  const Graph g1 = MakeGraph(8, {});
  const Graph g2 = MakeGraph(8, {{0, 1, 3.0}, {1, 2, 3.0}, {0, 2, 3.0}});
  MiningRequest request;
  request.measure = Measure::kGraphAffinity;

  // Reference replay: solve, update, solve — synchronously.
  MinerSession reference = MustCreate(g1, g2);
  Result<MiningResponse> before = reference.Mine(request);
  ASSERT_TRUE(before.ok());
  for (const auto [u, v] : {std::pair{4, 5}, {5, 6}, {4, 6}}) {
    ASSERT_TRUE(reference
                    .ApplyUpdate(UpdateSide::kG2, static_cast<VertexId>(u),
                                 static_cast<VertexId>(v), 9.0)
                    .ok());
  }
  Result<MiningResponse> after = reference.Mine(request);
  ASSERT_TRUE(after.ok());
  // The surge changed the answer — otherwise fencing would be vacuous.
  ASSERT_NE(Serialize(*before), Serialize(*after));

  // Async: job A is submitted before the update, job B after. The fence
  // guarantees A mines the pre-update snapshot even though the update is
  // queued long before A's solve may actually start.
  MiningService service(MustCreate(g1, g2));
  Result<JobId> job_a = service.Submit(request);
  ASSERT_TRUE(job_a.ok());
  for (const auto [u, v] : {std::pair{4, 5}, {5, 6}, {4, 6}}) {
    ASSERT_TRUE(service
                    .ApplyUpdate(UpdateSide::kG2, static_cast<VertexId>(u),
                                 static_cast<VertexId>(v), 9.0)
                    .ok());
  }
  Result<JobId> job_b = service.Submit(request);
  ASSERT_TRUE(job_b.ok());

  Result<JobStatus> status_a = service.Wait(*job_a);
  Result<JobStatus> status_b = service.Wait(*job_b);
  ASSERT_TRUE(status_a.ok());
  ASSERT_TRUE(status_b.ok());
  ASSERT_EQ(status_a->state, JobState::kDone);
  ASSERT_EQ(status_b->state, JobState::kDone);
  EXPECT_EQ(Serialize(status_a->response), Serialize(*before));
  EXPECT_EQ(Serialize(status_b->response), Serialize(*after));
}

// --- many jobs vs synchronous reference ----------------------------------

TEST(MiningServiceTest, ManyJobsMatchTheirSynchronousReference) {
  Rng rng(31);
  Result<Graph> g2 = RandomSignedGraph(/*n=*/120, /*m=*/800,
                                       /*positive_fraction=*/0.7,
                                       /*magnitude_lo=*/0.5,
                                       /*magnitude_hi=*/3.0, &rng);
  ASSERT_TRUE(g2.ok());
  const Graph g1 = MakeGraph(120, {});

  // A deterministic interleaving of 24 mixed jobs and 5 updates.
  std::vector<MiningRequest> requests(24);
  for (size_t i = 0; i < requests.size(); ++i) {
    requests[i].measure = i % 3 == 0   ? Measure::kBoth
                          : i % 3 == 1 ? Measure::kGraphAffinity
                                       : Measure::kAverageDegree;
    requests[i].alpha = i % 2 == 0 ? 1.0 : 2.0;
    requests[i].flip = i % 5 == 0;
    requests[i].ga_solver.parallelism = 0;  // auto
  }
  auto update_at = [](size_t i) { return i % 5 == 2; };
  auto update_edge = [](size_t i) {
    return std::pair<VertexId, VertexId>(static_cast<VertexId>(i),
                                         static_cast<VertexId>(i + 40));
  };

  // Reference: synchronous replay of the same op order.
  MinerSession reference = MustCreate(g1, *g2);
  std::vector<std::string> expected;
  for (size_t i = 0; i < requests.size(); ++i) {
    if (update_at(i)) {
      const auto [u, v] = update_edge(i);
      ASSERT_TRUE(reference.ApplyUpdate(UpdateSide::kG2, u, v, 4.0).ok());
    }
    Result<MiningResponse> mined = reference.Mine(requests[i]);
    ASSERT_TRUE(mined.ok());
    // Subgraphs only: these requests take the auto parallelism share, so
    // their work counters may vary with thread timing on multi-core hosts.
    expected.push_back(::dcs::testing::SerializeSubgraphs(*mined));
  }

  MiningService service(MustCreate(g1, *g2));
  std::vector<JobId> ids;
  for (size_t i = 0; i < requests.size(); ++i) {
    if (update_at(i)) {
      const auto [u, v] = update_edge(i);
      ASSERT_TRUE(service.ApplyUpdate(UpdateSide::kG2, u, v, 4.0).ok());
    }
    Result<JobId> id = service.Submit(requests[i]);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    Result<JobStatus> status = service.Wait(ids[i]);
    ASSERT_TRUE(status.ok());
    ASSERT_EQ(status->state, JobState::kDone) << "job #" << i;
    EXPECT_EQ(::dcs::testing::SerializeSubgraphs(status->response), expected[i])
        << "job #" << i;
  }
}

// --- retention ------------------------------------------------------------

TEST(MiningServiceTest, FinishedJobsAreEvictedBeyondTheRetentionCap) {
  MiningServiceOptions options;
  options.max_finished_jobs = 2;
  MiningService service(MustCreate(Fig1G1(), Fig1G2()), options);
  std::vector<JobId> ids;
  for (int i = 0; i < 4; ++i) {
    Result<JobId> id = service.Submit(MiningRequest{});
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  service.Drain();
  EXPECT_TRUE(service.Poll(ids[0]).status().IsNotFound());
  EXPECT_TRUE(service.Poll(ids[1]).status().IsNotFound());
  EXPECT_EQ(service.Poll(ids[2])->state, JobState::kDone);
  EXPECT_EQ(service.Poll(ids[3])->state, JobState::kDone);
}

// --- multi-tenant scheduling ----------------------------------------------

// Three distinct graph pairs used as tenants throughout this block.
std::vector<std::pair<Graph, Graph>> TenantPairs() {
  std::vector<std::pair<Graph, Graph>> pairs;
  pairs.emplace_back(Fig1G1(), Fig1G2());
  for (uint64_t seed : {7u, 19u}) {
    Rng rng(seed);
    Result<Graph> g2 = RandomSignedGraph(/*n=*/60, /*m=*/300,
                                         /*positive_fraction=*/0.7,
                                         /*magnitude_lo=*/0.5,
                                         /*magnitude_hi=*/3.0, &rng);
    DCS_CHECK(g2.ok());
    pairs.emplace_back(MakeGraph(60, {}), std::move(*g2));
  }
  return pairs;
}

// The per-tenant job script: measures/alphas vary per slot, and a fenced
// update lands mid-stream so fencing is load-bearing under contention.
std::vector<MiningRequest> TenantScript(size_t tenant) {
  std::vector<MiningRequest> requests(6);
  for (size_t i = 0; i < requests.size(); ++i) {
    requests[i].measure = (i + tenant) % 3 == 0 ? Measure::kBoth
                          : (i + tenant) % 3 == 1
                              ? Measure::kGraphAffinity
                              : Measure::kAverageDegree;
    requests[i].alpha = i % 2 == 0 ? 1.0 : 2.0;
    requests[i].ga_solver.parallelism = 0;  // auto — exercises pool sharing
  }
  return requests;
}

bool ScriptUpdateAt(size_t i) { return i == 3; }

// The acceptance bar of the multi-tenant scheduler: whatever the executor
// count and whatever priorities the tenants use, each tenant's responses are
// bit-identical to a *dedicated single-tenant service* replaying the same
// per-tenant op order. Priority reorders dispatch between tenants only, so
// it must never leak into results.
TEST(MultiTenantTest, TenantsMatchDedicatedSingleTenantServices) {
  auto pairs = TenantPairs();

  // References: one dedicated single-tenant service per graph pair.
  std::vector<std::vector<std::string>> expected(pairs.size());
  for (size_t t = 0; t < pairs.size(); ++t) {
    MiningService solo(MustCreate(pairs[t].first, pairs[t].second));
    std::vector<JobId> ids;
    const auto script = TenantScript(t);
    for (size_t i = 0; i < script.size(); ++i) {
      if (ScriptUpdateAt(i)) {
        ASSERT_TRUE(solo.ApplyUpdate(UpdateSide::kG2, 1, 3, 2.5).ok());
      }
      Result<JobId> id = solo.Submit(script[i]);
      ASSERT_TRUE(id.ok());
      ids.push_back(*id);
    }
    for (JobId id : ids) {
      Result<JobStatus> status = solo.Wait(id);
      ASSERT_TRUE(status.ok());
      ASSERT_EQ(status->state, JobState::kDone);
      expected[t].push_back(
          ::dcs::testing::SerializeSubgraphs(status->response));
    }
  }

  for (uint32_t executors : {1u, 2u, 4u, 7u}) {
    for (int permutation = 0; permutation < 2; ++permutation) {
      MiningServiceOptions options;
      options.num_executors = executors;
      options.shared_cache = std::make_shared<PipelineCache>();
      options.worker_pool =
          std::make_shared<ThreadPool>(ThreadPool::DefaultConcurrency() - 1);
      MiningService service(options);
      for (auto& [g1, g2] : pairs) {
        Result<TenantId> tenant = service.AddTenant(
            MustCreate(g1, g2), TenantOptions{.weight = 1});
        ASSERT_TRUE(tenant.ok());
      }
      std::vector<std::vector<JobId>> ids(pairs.size());
      for (size_t i = 0; i < TenantScript(0).size(); ++i) {
        for (size_t t = 0; t < pairs.size(); ++t) {
          auto script = TenantScript(t);
          if (ScriptUpdateAt(i)) {
            ASSERT_TRUE(service
                            .ApplyUpdate(static_cast<TenantId>(t),
                                         UpdateSide::kG2, 1, 3, 2.5)
                            .ok());
          }
          MiningRequest request = script[i];
          request.priority =
              static_cast<int32_t>((i * 7 + t * 3 + permutation) % 3) - 1;
          Result<JobId> id =
              service.Submit(static_cast<TenantId>(t), std::move(request));
          ASSERT_TRUE(id.ok());
          ids[t].push_back(*id);
        }
      }
      for (size_t t = 0; t < pairs.size(); ++t) {
        for (size_t i = 0; i < ids[t].size(); ++i) {
          Result<JobStatus> status = service.Wait(ids[t][i]);
          ASSERT_TRUE(status.ok());
          ASSERT_EQ(status->state, JobState::kDone)
              << "tenant " << t << " job " << i << ": "
              << status->failure.ToString();
          EXPECT_EQ(status->tenant, t);
          EXPECT_EQ(::dcs::testing::SerializeSubgraphs(status->response),
                    expected[t][i])
              << "executors=" << executors << " permutation=" << permutation
              << " tenant=" << t << " job=" << i;
        }
      }
    }
  }
}

// Priority picks between tenants; within a tenant the queue is strict FIFO.
// A paused single-executor service dispatches a staged backlog in exactly
// the documented order: max head priority, then min vtime, then lowest id.
TEST(MultiTenantTest, PriorityOrdersDispatchBetweenTenants) {
  MiningServiceOptions options;
  options.start_paused = true;
  MiningService service(options);
  for (int t = 0; t < 3; ++t) {
    ASSERT_TRUE(service.AddTenant(MustCreate(Fig1G1(), Fig1G2())).ok());
  }
  auto submit = [&](TenantId tenant, int32_t priority) {
    MiningRequest request;
    request.measure = Measure::kAverageDegree;
    request.priority = priority;
    Result<JobId> id = service.Submit(tenant, std::move(request));
    DCS_CHECK(id.ok()) << id.status().ToString();
    return *id;
  };
  // Backlog: A={0,0}, B={2,0}, C={1}. Expected dispatch order (all vtimes
  // start 0): B's p2 head, C's p1 head, then A before B among the p0 heads
  // (A's vtime 0 < B's 1), then A again (vtime tie 1, lowest id), then B.
  const JobId a1 = submit(0, 0), a2 = submit(0, 0);
  const JobId b1 = submit(1, 2), b2 = submit(1, 0);
  const JobId c1 = submit(2, 1);
  service.Resume();
  service.Drain();
  auto finish_of = [&](JobId id) {
    Result<JobStatus> status = service.Poll(id);
    DCS_CHECK(status.ok() && status->state == JobState::kDone);
    return status->finish_index;
  };
  EXPECT_EQ(finish_of(b1), 1u);
  EXPECT_EQ(finish_of(c1), 2u);
  EXPECT_EQ(finish_of(a1), 3u);
  EXPECT_EQ(finish_of(a2), 4u);
  EXPECT_EQ(finish_of(b2), 5u);
}

// Weighted fairness: with weights 3:1 at equal priority, the dispatch order
// of a staged backlog matches an in-test simulation of the virtual-clock
// rule exactly (same arithmetic, same tie-break), and the final clocks land
// where jobs/weight says they must.
TEST(MultiTenantTest, WeightedFairSharesFollowTheVirtualClock) {
  constexpr size_t kJobsPerTenant = 8;
  const uint32_t weights[2] = {3, 1};

  MiningServiceOptions options;
  options.start_paused = true;
  MiningService service(options);
  for (uint32_t weight : weights) {
    ASSERT_TRUE(service
                    .AddTenant(MustCreate(Fig1G1(), Fig1G2()),
                               TenantOptions{.weight = weight})
                    .ok());
  }
  std::vector<std::vector<JobId>> ids(2);
  for (size_t i = 0; i < kJobsPerTenant; ++i) {
    for (TenantId t = 0; t < 2; ++t) {
      MiningRequest request;
      request.measure = Measure::kAverageDegree;
      Result<JobId> id = service.Submit(t, std::move(request));
      ASSERT_TRUE(id.ok());
      ids[t].push_back(*id);
    }
  }
  service.Resume();
  service.Drain();

  // Reference scheduler: min vtime wins, ties to the lowest id, clock
  // advances by 1/weight — the same doubles in the same order as the
  // service, so the comparison is exact, not approximate.
  double vtime[2] = {0.0, 0.0};
  size_t next_job[2] = {0, 0};
  uint64_t expected_finish = 0;
  while (next_job[0] < kJobsPerTenant || next_job[1] < kJobsPerTenant) {
    int pick = -1;
    for (int t = 0; t < 2; ++t) {
      if (next_job[t] == kJobsPerTenant) continue;
      if (pick == -1 || vtime[t] < vtime[pick]) pick = t;
    }
    vtime[pick] += 1.0 / weights[pick];
    const JobId id = ids[pick][next_job[pick]++];
    ++expected_finish;
    Result<JobStatus> status = service.Poll(id);
    ASSERT_TRUE(status.ok());
    ASSERT_EQ(status->state, JobState::kDone);
    EXPECT_EQ(status->finish_index, expected_finish)
        << "tenant " << pick << " job " << next_job[pick] - 1;
  }
  for (TenantId t = 0; t < 2; ++t) {
    Result<TenantStats> stats = service.tenant_stats(t);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->submitted, kJobsPerTenant);
    EXPECT_EQ(stats->dispatched, kJobsPerTenant);
    EXPECT_EQ(stats->completed, kJobsPerTenant);
    EXPECT_EQ(stats->virtual_time, vtime[t]);
    EXPECT_GT(stats->total_queue_seconds, 0.0);
    EXPECT_GE(stats->max_queue_seconds, 0.0);
  }
}

// Admission control, made deterministic by the paused scheduler: the
// per-tenant cap rejects with OutOfRange, the service-wide job and byte
// budgets with ResourceExhausted, and every rejection is counted. The byte
// gauge returns to zero once the backlog drains.
TEST(MultiTenantTest, AdmissionControlShedsLoadDeterministically) {
  MiningRequest request;
  request.measure = Measure::kAverageDegree;
  const size_t per_job = MiningService::ApproxRequestBytes(request);
  ASSERT_GT(per_job, 0u);

  MiningServiceOptions options;
  options.start_paused = true;
  options.max_queued_jobs = 2;            // per-tenant default
  options.max_total_queued_jobs = 3;      // service job budget
  options.max_queued_request_bytes = 3 * per_job;  // never the binding limit
  MiningService service(options);
  ASSERT_TRUE(service.AddTenant(MustCreate(Fig1G1(), Fig1G2())).ok());
  ASSERT_TRUE(service
                  .AddTenant(MustCreate(Fig1G1(), Fig1G2()),
                             TenantOptions{.max_queued_jobs = 4})
                  .ok());

  // Tenant 0: cap 2 — third submit is backpressure, not a budget breach.
  ASSERT_TRUE(service.Submit(0, request).ok());
  ASSERT_TRUE(service.Submit(0, request).ok());
  Result<JobId> overflow = service.Submit(0, request);
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(service.queued_request_bytes(), 2 * per_job);

  // Tenant 1: its own cap is 4, but the third service-wide job breaches the
  // global budget of 3 → ResourceExhausted.
  ASSERT_TRUE(service.Submit(1, request).ok());
  Result<JobId> exhausted = service.Submit(1, request);
  ASSERT_FALSE(exhausted.ok());
  EXPECT_TRUE(exhausted.status().IsResourceExhausted());

  EXPECT_EQ(service.num_admission_rejections(), 2u);
  EXPECT_EQ(service.tenant_stats(0)->admission_rejections, 1u);
  EXPECT_EQ(service.tenant_stats(1)->admission_rejections, 1u);

  service.Resume();
  service.Drain();
  EXPECT_EQ(service.queued_request_bytes(), 0u);
  EXPECT_TRUE(service.Submit(1, request).ok());
  service.Drain();

  // Byte budget alone: a fresh paused service where bytes bind before jobs.
  MiningServiceOptions byte_options;
  byte_options.start_paused = true;
  byte_options.max_queued_request_bytes = per_job + per_job / 2;
  MiningService byte_service(MustCreate(Fig1G1(), Fig1G2()), byte_options);
  ASSERT_TRUE(byte_service.Submit(request).ok());
  Result<JobId> byte_overflow = byte_service.Submit(request);
  ASSERT_FALSE(byte_overflow.ok());
  EXPECT_TRUE(byte_overflow.status().IsResourceExhausted());
  byte_service.Resume();
  byte_service.Drain();
}

TEST(MultiTenantTest, AddTenantAndLookupValidation) {
  MiningService service(MustCreate(Fig1G1(), Fig1G2()));
  Result<TenantId> bad =
      service.AddTenant(MustCreate(Fig1G1(), Fig1G2()), TenantOptions{.weight = 0});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  EXPECT_EQ(service.num_tenants(), 1u);
  EXPECT_EQ(service.Submit(5, MiningRequest{}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service.ApplyUpdate(5, UpdateSide::kG1, 0, 1, 1.0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service.tenant_stats(5).status().code(),
            StatusCode::kInvalidArgument);
  service.Drain();
}

// --- drain vs submit race (regression) ------------------------------------

// A submitter racing Drain must observe either an accepted job that goes
// terminal or an admission rejection — never a Submit that slips past a
// Drain decision and then sleeps forever because the drained service lost
// its wakeup. Rapid Drain calls run against a steady multi-threaded submit
// stream; the test's own completion (plus a final accounting pass) is the
// regression signal.
TEST(MiningServiceTest, DrainRacingSubmitNeverLosesAJob) {
  MiningServiceOptions options;
  options.max_queued_jobs = 8;
  options.num_executors = 2;
  MiningService service(options);
  for (int t = 0; t < 2; ++t) {
    ASSERT_TRUE(service.AddTenant(MustCreate(Fig1G1(), Fig1G2())).ok());
  }

  constexpr int kSubmitters = 4;
  constexpr int kPerThread = 40;
  std::vector<std::vector<JobId>> accepted(kSubmitters);
  std::atomic<int> rejected{0};
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int i = 0; i < kPerThread; ++i) {
        MiningRequest request;
        request.measure = Measure::kAverageDegree;
        Result<JobId> id =
            service.Submit(static_cast<TenantId>(s % 2), std::move(request));
        if (id.ok()) {
          accepted[s].push_back(*id);
        } else {
          // Backpressure is the only acceptable refusal while running.
          EXPECT_EQ(id.status().code(), StatusCode::kOutOfRange);
          rejected.fetch_add(1);
        }
      }
    });
  }
  std::thread drainer([&] {
    for (int i = 0; i < 50; ++i) {
      service.Drain();
    }
  });
  for (auto& thread : submitters) thread.join();
  drainer.join();
  service.Drain();

  uint64_t terminal = 0;
  for (const auto& ids : accepted) {
    for (JobId id : ids) {
      Result<JobStatus> status = service.Poll(id);
      ASSERT_TRUE(status.ok());
      EXPECT_EQ(status->state, JobState::kDone);
      ++terminal;
    }
  }
  EXPECT_EQ(terminal + static_cast<uint64_t>(rejected.load()),
            static_cast<uint64_t>(kSubmitters) * kPerThread);
  EXPECT_EQ(service.num_pending_jobs(), 0u);
}

// --- watchdog expiry vs cancel race (regression) --------------------------

// Deadline-carrying jobs racing explicit Cancel calls: every job must land
// in exactly one terminal state — kCancelled when the user won, kFailed
// with kDeadlineExceeded when the watchdog did — and the per-tenant
// terminal counters must add up to the submissions either way.
TEST(MiningServiceTest, WatchdogExpiryRacingCancelIsTerminalExactlyOnce) {
  RegisterTestSolvers();
  constexpr int kJobs = 24;
  MiningService service(MustCreate(Fig1G1(), Fig1G2()));
  std::vector<JobId> ids;
  for (int i = 0; i < kJobs; ++i) {
    MiningRequest request;
    request.measure = Measure::kAverageDegree;
    request.ad_solver_name = "cancel-waiting";  // runs until its token fires
    request.deadline_seconds = 0.002 + 0.002 * (i % 4);
    Result<JobId> id = service.Submit(std::move(request));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  // Race the watchdog from two directions at once.
  std::thread canceller([&] {
    for (size_t i = 0; i < ids.size(); i += 2) {
      (void)service.Cancel(ids[i]);
    }
  });
  std::thread late_canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    for (size_t i = 1; i < ids.size(); i += 2) {
      (void)service.Cancel(ids[i]);
    }
  });
  canceller.join();
  late_canceller.join();
  service.Drain();

  uint64_t cancelled = 0, deadline_failed = 0;
  for (JobId id : ids) {
    Result<JobStatus> status = service.Poll(id);
    ASSERT_TRUE(status.ok());
    ASSERT_TRUE(status->terminal());
    if (status->state == JobState::kCancelled) {
      ++cancelled;
    } else {
      ASSERT_EQ(status->state, JobState::kFailed);
      EXPECT_EQ(status->failure.code(), StatusCode::kDeadlineExceeded);
      ++deadline_failed;
    }
    EXPECT_GT(status->finish_index, 0u);
  }
  EXPECT_EQ(cancelled + deadline_failed, static_cast<uint64_t>(kJobs));
  Result<TenantStats> stats = service.tenant_stats(0);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->cancelled, cancelled);
  EXPECT_EQ(stats->failed, deadline_failed);
  EXPECT_EQ(stats->deadline_exceeded, deadline_failed);
  EXPECT_EQ(stats->cancelled + stats->failed + stats->completed,
            stats->submitted);
  EXPECT_EQ(service.num_deadline_exceeded(), deadline_failed);
}

// --- crash-consistent job journal ----------------------------------------

std::string ServiceJournalPath(const char* name) {
  return ::testing::TempDir() + "mining_service_journal_" + name + ".dcsj";
}

// A cheap request the counting solver serves, so recovery tests can tell
// re-runs from re-exposed results.
MiningRequest CountingRequest() {
  MiningRequest request;
  request.measure = Measure::kGraphAffinity;
  request.ga_solver_name = "counting-solver";
  request.ga_solver.parallelism = 1;
  return request;
}

TEST(MiningServiceJournalTest, RecoveryIsExactlyOnceAndAdmissionOrdered) {
  RegisterTestSolvers();
  const std::string path = ServiceJournalPath("recovery");
  std::filesystem::remove(path);
  // A hand-built crash image: jobs 1 and 2 admitted (2 also started) but
  // never finished; job 3 done with a known response; job 4 failed. This is
  // exactly what a process killed mid-storm leaves behind.
  MiningResponse done_response;
  RankedSubgraph clique;
  clique.vertices = {1, 2};
  clique.weights = {0.5, 0.5};
  clique.value = 1.25;
  clique.positive_clique = true;
  done_response.graph_affinity.push_back(clique);
  {
    Result<std::shared_ptr<JobJournal>> journal = JobJournal::Open(path);
    ASSERT_TRUE(journal.ok()) << journal.status().ToString();
    for (uint64_t id = 1; id <= 4; ++id) {
      JournalAdmittedRecord admitted;
      admitted.job_id = id;
      admitted.tenant = 0;
      admitted.admission_index = id;
      admitted.request = CountingRequest();
      ASSERT_TRUE((*journal)->AppendAdmitted(admitted).ok());
    }
    ASSERT_TRUE((*journal)->AppendStarted(2).ok());
    JournalDoneRecord done;
    done.job_id = 3;
    done.state = JournalTerminalState::kDone;
    done.has_response = true;
    done.response = done_response;
    ASSERT_TRUE((*journal)->AppendDone(done).ok());
    JournalDoneRecord failed;
    failed.job_id = 4;
    failed.state = JournalTerminalState::kFailed;
    failed.status_code = static_cast<uint32_t>(StatusCode::kNotFound);
    failed.status_message = "no such solver";
    ASSERT_TRUE((*journal)->AppendDone(failed).ok());
    ASSERT_TRUE((*journal)->Flush().ok());
  }

  g_counting_runs.store(0);
  {
    MiningServiceOptions options;
    options.journal_path = path;
    options.start_paused = true;
    MiningService service(options);
    EXPECT_EQ(service.num_recovered_jobs(), 4u);
    EXPECT_EQ(service.recovered_jobs(),
              (std::vector<JobId>{1, 2, 3, 4}));
    // Terminal jobs are visible before any tenant exists — exactly-once,
    // with the journaled content re-exposed bit-identically.
    Result<JobStatus> done = service.Poll(3);
    ASSERT_TRUE(done.ok());
    EXPECT_EQ(done->state, JobState::kDone);
    EXPECT_EQ(testing::SerializeSubgraphs(done->response),
              testing::SerializeSubgraphs(done_response));
    Result<JobStatus> failed = service.Poll(4);
    ASSERT_TRUE(failed.ok());
    EXPECT_EQ(failed->state, JobState::kFailed);
    EXPECT_EQ(failed->failure.code(), StatusCode::kNotFound);
    EXPECT_NE(failed->failure.message().find("no such solver"),
              std::string::npos);
    // Incomplete jobs are parked until their tenant id re-registers...
    Result<JobStatus> queued = service.Poll(1);
    ASSERT_TRUE(queued.ok());
    EXPECT_EQ(queued->state, JobState::kQueued);
    ASSERT_TRUE(
        service.AddTenant(MustCreate(Fig1G1(), Fig1G2())).ok());
    service.Resume();
    // ...then run in admission order: job 1 finishes before job 2.
    Result<JobStatus> first = service.Wait(1);
    Result<JobStatus> second = service.Wait(2);
    ASSERT_TRUE(first.ok() && second.ok());
    EXPECT_EQ(first->state, JobState::kDone);
    EXPECT_EQ(second->state, JobState::kDone);
    EXPECT_LT(first->finish_index, second->finish_index);
    // Only the two incomplete jobs re-ran; the Done job never did.
    EXPECT_EQ(g_counting_runs.load(), 2);
    // Fresh submissions resume above the recovered id space.
    Result<JobId> fresh = service.Submit(0, CountingRequest());
    ASSERT_TRUE(fresh.ok());
    EXPECT_EQ(*fresh, 5u);
    ASSERT_TRUE(service.Wait(*fresh).ok());
    Result<JobJournalStats> stats = service.journal_stats();
    ASSERT_TRUE(stats.ok());
    EXPECT_GE(stats->appended_records, 5u);  // 2 started + 3 done at least
    // The done job's telemetry carries the journal counters.
    Result<JobStatus> mined = service.Wait(*fresh);
    ASSERT_TRUE(mined.ok());
    EXPECT_GT(mined->response.telemetry.journal_appends, 0u);
    EXPECT_EQ(mined->response.telemetry.journal_recovered_jobs, 4u);
  }
  // After the graceful shutdown every admitted job has a Done record, so a
  // second recovery resubmits nothing and the file fscks clean.
  Result<JournalFsckReport> fsck = JobJournal::Fsck(path);
  ASSERT_TRUE(fsck.ok());
  EXPECT_EQ(fsck->corrupt_pages, 0u);
  EXPECT_EQ(fsck->unreliable_tail_bytes, 0u);
  g_counting_runs.store(0);
  {
    MiningServiceOptions options;
    options.journal_path = path;
    MiningService service(options);
    EXPECT_EQ(service.num_recovered_jobs(), 5u);
    ASSERT_TRUE(service.AddTenant(MustCreate(Fig1G1(), Fig1G2())).ok());
    service.Drain();
    EXPECT_EQ(g_counting_runs.load(), 0);
  }
}

TEST(MiningServiceJournalTest, DestructionDuringRecoveryCancelsParkedJobs) {
  const std::string path = ServiceJournalPath("teardown");
  std::filesystem::remove(path);
  {
    Result<std::shared_ptr<JobJournal>> journal = JobJournal::Open(path);
    ASSERT_TRUE(journal.ok());
    for (uint64_t id = 1; id <= 2; ++id) {
      JournalAdmittedRecord admitted;
      admitted.job_id = id;
      admitted.tenant = 5;  // a tenant this run never registers
      admitted.admission_index = id;
      admitted.request = CountingRequest();
      ASSERT_TRUE((*journal)->AppendAdmitted(admitted).ok());
    }
    ASSERT_TRUE((*journal)->Flush().ok());
  }
  {
    // The service is torn down while its recovered jobs are still parked
    // waiting for tenant 5 — the destructor must cancel and journal them
    // without touching the (nonexistent) tenant's stats.
    MiningServiceOptions options;
    options.journal_path = path;
    MiningService service(options);
    EXPECT_EQ(service.num_recovered_jobs(), 2u);
    Result<JobStatus> parked = service.Poll(1);
    ASSERT_TRUE(parked.ok());
    EXPECT_EQ(parked->state, JobState::kQueued);
  }
  // The next recovery sees them terminal-cancelled, not resubmittable.
  MiningServiceOptions options;
  options.journal_path = path;
  MiningService service(options);
  EXPECT_EQ(service.num_recovered_jobs(), 2u);
  for (JobId id : {JobId{1}, JobId{2}}) {
    Result<JobStatus> status = service.Poll(id);
    ASSERT_TRUE(status.ok());
    EXPECT_EQ(status->state, JobState::kCancelled);
  }
}

TEST(MiningServiceJournalTest, UnopenableJournalFailsSubmitNotTheService) {
  // A directory is never a valid journal file, so the open fails — the
  // service must stay alive but refuse admissions with the open error.
  MiningServiceOptions options;
  options.journal_path = ::testing::TempDir();
  MiningService service(options);
  ASSERT_TRUE(service.AddTenant(MustCreate(Fig1G1(), Fig1G2())).ok());
  Result<JobId> submitted = service.Submit(0, MiningRequest{});
  ASSERT_FALSE(submitted.ok());
  Result<JobJournalStats> stats = service.journal_stats();
  EXPECT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), submitted.status().code());
}

TEST(MiningServiceJournalTest, ResumeRacingConcurrentSubmitLosesNoJob) {
  RegisterTestSolvers();
  // Satellite regression: Resume() releasing a paused multi-tenant backlog
  // must not race concurrent Submit()s into lost wakeups or dropped jobs.
  MiningServiceOptions options;
  options.start_paused = true;
  options.num_executors = 4;
  MiningService service(options);
  constexpr int kTenants = 3;
  constexpr int kStaged = 8;
  constexpr int kRacing = 16;
  for (int t = 0; t < kTenants; ++t) {
    ASSERT_TRUE(service.AddTenant(MustCreate(Fig1G1(), Fig1G2())).ok());
  }
  std::vector<JobId> ids;
  for (int t = 0; t < kTenants; ++t) {
    for (int i = 0; i < kStaged; ++i) {
      Result<JobId> id = service.Submit(t, CountingRequest());
      ASSERT_TRUE(id.ok());
      ids.push_back(*id);
    }
  }
  std::vector<JobId> raced(kTenants * kRacing, 0);
  std::thread submitter([&service, &raced] {
    for (int i = 0; i < kRacing; ++i) {
      for (int t = 0; t < kTenants; ++t) {
        Result<JobId> id = service.Submit(t, CountingRequest());
        ASSERT_TRUE(id.ok());
        raced[t * kRacing + i] = *id;
      }
    }
  });
  service.Resume();
  submitter.join();
  service.Drain();
  ids.insert(ids.end(), raced.begin(), raced.end());
  for (JobId id : ids) {
    Result<JobStatus> status = service.Poll(id);
    ASSERT_TRUE(status.ok()) << "job " << id;
    EXPECT_EQ(status->state, JobState::kDone) << "job " << id;
  }
  uint64_t completed = 0;
  for (int t = 0; t < kTenants; ++t) {
    Result<TenantStats> stats = service.tenant_stats(t);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->submitted, stats->completed);
    completed += stats->completed;
  }
  EXPECT_EQ(completed, ids.size());
}

}  // namespace
}  // namespace dcs
