// MinerSession tests: construction, AD/GA parity with the direct core
// calls, pipeline-cache behavior, streaming invalidation, and warm starts.

#include "api/miner_session.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <tuple>
#include <utility>
#include <vector>

#include "core/dcs_greedy.h"
#include "core/newsea.h"
#include "gen/coauthor.h"
#include "graph/difference.h"
#include "test_util.h"
#include "util/rng.h"

namespace dcs {
namespace {

using ::dcs::testing::Fig1G1;
using ::dcs::testing::Fig1G2;
using ::dcs::testing::Fig1Gd;
using ::dcs::testing::MakeGraph;

TEST(MinerSessionTest, CreateRejectsMismatchedOrEmptyGraphs) {
  EXPECT_TRUE(MinerSession::Create(MakeGraph(3, {}), MakeGraph(4, {}))
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(MinerSession::Create(Graph(0), Graph(0))
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      MinerSession::CreateStreaming(0).status().IsInvalidArgument());
  EXPECT_TRUE(MinerSession::Create(Fig1G1(), Fig1G2()).ok());
}

TEST(MinerSessionTest, CreateRejectsInvalidNumericOptions) {
  SessionOptions nan_eps;
  nan_eps.zero_eps = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(MinerSession::Create(Fig1G1(), Fig1G2(), nan_eps)
                  .status()
                  .IsInvalidArgument());
  SessionOptions negative_eps;
  negative_eps.zero_eps = -1.0;
  EXPECT_TRUE(MinerSession::CreateStreaming(4, negative_eps)
                  .status()
                  .IsInvalidArgument());
  SessionOptions nan_ratio;
  nan_ratio.patch_rebuild_ratio = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(MinerSession::Create(Fig1G1(), Fig1G2(), nan_ratio)
                  .status()
                  .IsInvalidArgument());
  SessionOptions negative_ratio;
  negative_ratio.patch_rebuild_ratio = -0.5;
  EXPECT_TRUE(MinerSession::CreateStreaming(4, negative_ratio)
                  .status()
                  .IsInvalidArgument());
}

TEST(MinerSessionTest, MineValidatesTheRequest) {
  Result<MinerSession> session = MinerSession::Create(Fig1G1(), Fig1G2());
  ASSERT_TRUE(session.ok());
  MiningRequest request;
  request.alpha = -1.0;
  EXPECT_TRUE(session->Mine(request).status().IsInvalidArgument());
  request = MiningRequest{};
  request.top_k = 0;
  EXPECT_TRUE(session->Mine(request).status().IsInvalidArgument());
}

TEST(MinerSessionTest, AverageDegreeParityWithDcsGreedy) {
  Result<MinerSession> session = MinerSession::Create(Fig1G1(), Fig1G2());
  ASSERT_TRUE(session.ok());
  MiningRequest request;
  request.measure = Measure::kAverageDegree;
  Result<MiningResponse> response = session->Mine(request);
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->average_degree.size(), 1u);

  Result<DcsadResult> direct = RunDcsGreedy(Fig1Gd());
  ASSERT_TRUE(direct.ok());
  std::vector<VertexId> expected = direct->subset;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(response->average_degree[0].vertices, expected);
  EXPECT_DOUBLE_EQ(response->average_degree[0].value, direct->density);
  EXPECT_DOUBLE_EQ(response->average_degree[0].ratio_bound,
                   direct->ratio_bound);
}

TEST(MinerSessionTest, GraphAffinityParityWithNewSea) {
  Result<MinerSession> session = MinerSession::Create(Fig1G1(), Fig1G2());
  ASSERT_TRUE(session.ok());
  MiningRequest request;
  request.measure = Measure::kGraphAffinity;
  Result<MiningResponse> response = session->Mine(request);
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->graph_affinity.size(), 1u);

  Result<DcsgaResult> direct = RunNewSea(Fig1Gd().PositivePart());
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(response->graph_affinity[0].vertices, direct->support);
  EXPECT_DOUBLE_EQ(response->graph_affinity[0].value, direct->affinity);
  ASSERT_EQ(response->graph_affinity[0].weights.size(),
            direct->support.size());
  for (size_t i = 0; i < direct->support.size(); ++i) {
    EXPECT_DOUBLE_EQ(response->graph_affinity[0].weights[i],
                     direct->x.x[direct->support[i]]);
  }
  EXPECT_TRUE(response->graph_affinity[0].positive_clique);
  EXPECT_EQ(response->telemetry.initializations, direct->initializations);
}

TEST(MinerSessionTest, ParityOnPlantedCoauthorFixture) {
  Rng rng(101);
  CoauthorConfig config;
  config.num_authors = 1500;
  config.emerging_sizes = {5, 7};
  config.disappearing_sizes = {6};
  Result<CoauthorData> data = GenerateCoauthorData(config, &rng);
  ASSERT_TRUE(data.ok());

  Result<MinerSession> session = MinerSession::Create(data->g1, data->g2);
  ASSERT_TRUE(session.ok());
  MiningRequest request;
  request.measure = Measure::kBoth;
  Result<MiningResponse> response = session->Mine(request);
  ASSERT_TRUE(response.ok());

  Result<Graph> gd = BuildDifferenceGraph(data->g1, data->g2);
  ASSERT_TRUE(gd.ok());
  Result<DcsadResult> ad = RunDcsGreedy(*gd);
  Result<DcsgaResult> ga = RunNewSea(gd->PositivePart());
  ASSERT_TRUE(ad.ok());
  ASSERT_TRUE(ga.ok());

  ASSERT_EQ(response->average_degree.size(), 1u);
  std::vector<VertexId> expected_ad = ad->subset;
  std::sort(expected_ad.begin(), expected_ad.end());
  EXPECT_EQ(response->average_degree[0].vertices, expected_ad);
  EXPECT_DOUBLE_EQ(response->average_degree[0].value, ad->density);

  ASSERT_EQ(response->graph_affinity.size(), 1u);
  EXPECT_EQ(response->graph_affinity[0].vertices, ga->support);
  EXPECT_DOUBLE_EQ(response->graph_affinity[0].value, ga->affinity);
}

TEST(MinerSessionTest, DiscretizeAndFlipParity) {
  Result<MinerSession> session = MinerSession::Create(Fig1G1(), Fig1G2());
  ASSERT_TRUE(session.ok());

  MiningRequest request;
  request.measure = Measure::kAverageDegree;
  request.discretize = DiscretizeSpec{};
  Result<MiningResponse> discrete = session->Mine(request);
  ASSERT_TRUE(discrete.ok());
  Result<Graph> mapped = DiscretizeWeights(Fig1Gd(), DiscretizeSpec{});
  ASSERT_TRUE(mapped.ok());
  Result<DcsadResult> direct = RunDcsGreedy(*mapped);
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(discrete->average_degree.size(), 1u);
  EXPECT_DOUBLE_EQ(discrete->average_degree[0].value, direct->density);

  request = MiningRequest{};
  request.measure = Measure::kAverageDegree;
  request.flip = true;
  Result<MiningResponse> flipped = session->Mine(request);
  ASSERT_TRUE(flipped.ok());
  Result<Graph> gd_flipped = BuildDifferenceGraph(Fig1G2(), Fig1G1());
  ASSERT_TRUE(gd_flipped.ok());
  Result<DcsadResult> direct_flipped = RunDcsGreedy(*gd_flipped);
  ASSERT_TRUE(direct_flipped.ok());
  ASSERT_EQ(flipped->average_degree.size(), 1u);
  EXPECT_DOUBLE_EQ(flipped->average_degree[0].value,
                   direct_flipped->density);
}

TEST(MinerSessionTest, RepeatedQueriesReuseTheCachedDifference) {
  Result<MinerSession> session = MinerSession::Create(Fig1G1(), Fig1G2());
  ASSERT_TRUE(session.ok());
  MiningRequest request;
  request.measure = Measure::kBoth;

  Result<MiningResponse> first = session->Mine(request);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(session->num_rebuilds(), 1u);
  EXPECT_FALSE(first->telemetry.reused_cached_difference);

  for (int i = 0; i < 5; ++i) {
    Result<MiningResponse> again = session->Mine(request);
    ASSERT_TRUE(again.ok());
    EXPECT_TRUE(again->telemetry.reused_cached_difference);
  }
  EXPECT_EQ(session->num_rebuilds(), 1u) << "cache must keep rebuilds flat";

  // A different pipeline key materializes once...
  request.alpha = 2.0;
  ASSERT_TRUE(session->Mine(request).ok());
  EXPECT_EQ(session->num_rebuilds(), 2u);
  // ...and the first pipeline is still cached.
  request.alpha = 1.0;
  Result<MiningResponse> back = session->Mine(request);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->telemetry.reused_cached_difference);
  EXPECT_EQ(session->num_rebuilds(), 2u);
  EXPECT_EQ(session->num_cached_pipelines(), 2u);

  // DifferenceSnapshot shares the same cache.
  ASSERT_TRUE(session->DifferenceSnapshot().ok());
  EXPECT_EQ(session->num_rebuilds(), 2u);
}

TEST(MinerSessionTest, PipelineCacheEvictsFifo) {
  SessionOptions options;
  options.max_cached_pipelines = 1;
  Result<MinerSession> session =
      MinerSession::Create(Fig1G1(), Fig1G2(), options);
  ASSERT_TRUE(session.ok());
  MiningRequest request;
  request.measure = Measure::kAverageDegree;
  for (const double alpha : {1.0, 2.0, 1.0}) {
    request.alpha = alpha;
    ASSERT_TRUE(session->Mine(request).ok());
    EXPECT_EQ(session->num_cached_pipelines(), 1u);
  }
  EXPECT_EQ(session->num_rebuilds(), 3u);
}

TEST(MinerSessionTest, StreamingUpdatesMatchBatchSession) {
  Graph g1 = Fig1G1();
  Graph g2 = Fig1G2();
  Result<MinerSession> streaming = MinerSession::CreateStreaming(5);
  ASSERT_TRUE(streaming.ok());
  for (const Edge& e : g1.UndirectedEdges()) {
    ASSERT_TRUE(
        streaming->ApplyUpdate(UpdateSide::kG1, e.u, e.v, e.weight).ok());
  }
  for (const Edge& e : g2.UndirectedEdges()) {
    ASSERT_TRUE(
        streaming->ApplyUpdate(UpdateSide::kG2, e.u, e.v, e.weight).ok());
  }
  Result<Graph> snapshot = streaming->DifferenceSnapshot();
  ASSERT_TRUE(snapshot.ok());
  const Graph expected = Fig1Gd();
  ASSERT_EQ(snapshot->NumVertices(), expected.NumVertices());
  ASSERT_EQ(snapshot->NumEdges(), expected.NumEdges());
  for (const Edge& e : expected.UndirectedEdges()) {
    EXPECT_DOUBLE_EQ(snapshot->EdgeWeight(e.u, e.v), e.weight);
  }

  MiningRequest request;
  request.measure = Measure::kAverageDegree;
  Result<MiningResponse> streamed = streaming->Mine(request);
  Result<MinerSession> batch = MinerSession::Create(std::move(g1),
                                                    std::move(g2));
  ASSERT_TRUE(batch.ok());
  Result<MiningResponse> batched = batch->Mine(request);
  ASSERT_TRUE(streamed.ok());
  ASSERT_TRUE(batched.ok());
  ASSERT_EQ(streamed->average_degree.size(), batched->average_degree.size());
  EXPECT_EQ(streamed->average_degree[0].vertices,
            batched->average_degree[0].vertices);
  EXPECT_DOUBLE_EQ(streamed->average_degree[0].value,
                   batched->average_degree[0].value);
}

TEST(MinerSessionTest, ApplyUpdateRejectsBadInput) {
  Result<MinerSession> session = MinerSession::CreateStreaming(4);
  ASSERT_TRUE(session.ok());
  EXPECT_TRUE(session->ApplyUpdate(UpdateSide::kG2, 1, 1, 1.0)
                  .IsInvalidArgument());
  EXPECT_EQ(session->ApplyUpdate(UpdateSide::kG2, 0, 9, 1.0).code(),
            StatusCode::kOutOfRange);
  EXPECT_TRUE(session
                  ->ApplyUpdate(UpdateSide::kG1, 0, 1,
                                std::numeric_limits<double>::infinity())
                  .IsInvalidArgument());
  EXPECT_EQ(session->num_updates(), 0u);
}

TEST(MinerSessionTest, ApplyUpdateRepatchesCachedPipelines) {
  // Default crossover: a 1-pair batch against Fig. 1's 11 edges takes the
  // O(Δ) patch path — the cached pipeline is republished under the new
  // fingerprint, so the post-update mine *hits* with the patched content.
  Result<MinerSession> session = MinerSession::Create(Fig1G1(), Fig1G2());
  ASSERT_TRUE(session.ok());
  MiningRequest request;
  request.measure = Measure::kAverageDegree;
  ASSERT_TRUE(session->Mine(request).ok());
  EXPECT_EQ(session->num_rebuilds(), 1u);

  // Strengthen the (0,1) contrast: GD weight goes +4 -> +6.
  ASSERT_TRUE(session->ApplyUpdate(UpdateSide::kG2, 0, 1, 2.0).ok());
  Result<MiningResponse> after = session->Mine(request);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(session->num_rebuilds(), 1u)
      << "a patched flush must not rematerialize the difference";
  EXPECT_TRUE(after->telemetry.reused_cached_difference);
  EXPECT_EQ(session->num_update_patches(), 1u);
  EXPECT_EQ(session->num_update_rebuilds(), 0u);
  EXPECT_EQ(session->num_republished_entries(), 1u);
  EXPECT_EQ(after->telemetry.update_patches, 1u);
  EXPECT_EQ(after->telemetry.patched_entries_republished, 1u);
  Result<Graph> snapshot = session->DifferenceSnapshot();
  ASSERT_TRUE(snapshot.ok());
  EXPECT_DOUBLE_EQ(snapshot->EdgeWeight(0, 1), 6.0);

  // An exact cancellation drops the edge entirely: GD(0,3) = 2-1 = +1, so a
  // -1 delta on the G2 side zeroes the difference... to -0? No: the G2 edge
  // weight 2 becomes 1, equal to G1's 1, and the difference edge vanishes.
  ASSERT_TRUE(session->ApplyUpdate(UpdateSide::kG2, 0, 3, -1.0).ok());
  snapshot = session->DifferenceSnapshot();
  ASSERT_TRUE(snapshot.ok());
  EXPECT_FALSE(snapshot->HasEdge(0, 3));
}

TEST(MinerSessionTest, ApplyUpdateWithPatchingDisabledForcesARebuild) {
  // patch_rebuild_ratio = 0 pins the pre-patch behavior: the update
  // invalidates copy-on-write and the next mine rebuilds cold.
  SessionOptions options;
  options.patch_rebuild_ratio = 0.0;
  Result<MinerSession> session =
      MinerSession::Create(Fig1G1(), Fig1G2(), options);
  ASSERT_TRUE(session.ok());
  MiningRequest request;
  request.measure = Measure::kAverageDegree;
  ASSERT_TRUE(session->Mine(request).ok());
  EXPECT_EQ(session->num_rebuilds(), 1u);

  ASSERT_TRUE(session->ApplyUpdate(UpdateSide::kG2, 0, 1, 2.0).ok());
  Result<MiningResponse> after = session->Mine(request);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(session->num_rebuilds(), 2u) << "update must force a rebuild";
  EXPECT_FALSE(after->telemetry.reused_cached_difference);
  EXPECT_EQ(session->num_update_patches(), 0u);
  EXPECT_EQ(session->num_update_rebuilds(), 1u);
  EXPECT_EQ(after->telemetry.update_rebuilds, 1u);
  Result<Graph> snapshot = session->DifferenceSnapshot();
  ASSERT_TRUE(snapshot.ok());
  EXPECT_DOUBLE_EQ(snapshot->EdgeWeight(0, 1), 6.0);
}

TEST(MinerSessionTest, WarmStartTracksAcrossUpdates) {
  // A strong planted 4-clique in G2 over background noise.
  std::vector<std::tuple<VertexId, VertexId, double>> g2_edges;
  const std::vector<VertexId> planted{10, 11, 12, 13};
  for (size_t i = 0; i < planted.size(); ++i) {
    for (size_t j = i + 1; j < planted.size(); ++j) {
      g2_edges.emplace_back(planted[i], planted[j], 5.0);
    }
  }
  g2_edges.emplace_back(0, 1, 1.0);
  g2_edges.emplace_back(2, 3, 0.5);
  Result<MinerSession> session =
      MinerSession::Create(MakeGraph(20, {}), MakeGraph(20, g2_edges));
  ASSERT_TRUE(session.ok());

  MiningRequest request;
  request.measure = Measure::kGraphAffinity;
  request.warm_start = true;
  Result<MiningResponse> first = session->Mine(request);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->graph_affinity.size(), 1u);
  EXPECT_EQ(first->graph_affinity[0].vertices, planted);
  // No previous solution existed, so no warm seed was attempted.
  EXPECT_FALSE(first->telemetry.warm_start_used);

  // Drift the story slightly; the warm seed from the previous answer is
  // attempted and the clique is still recovered.
  ASSERT_TRUE(session->ApplyUpdate(UpdateSide::kG2, 10, 11, 0.25).ok());
  Result<MiningResponse> second = session->Mine(request);
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second->graph_affinity.size(), 1u);
  EXPECT_TRUE(second->telemetry.warm_start_used);
  EXPECT_EQ(second->graph_affinity[0].vertices, planted);

  session->ClearWarmStart();
  Result<MiningResponse> third = session->Mine(request);
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(third->telemetry.warm_start_used);
}

TEST(MinerSessionTest, TopKRequestsRankAndRespectDisjointness) {
  // Two vertex-disjoint positive cliques of different strength.
  std::vector<std::tuple<VertexId, VertexId, double>> g2_edges;
  for (VertexId u = 0; u < 3; ++u) {
    for (VertexId v = u + 1; v < 3; ++v) g2_edges.emplace_back(u, v, 6.0);
  }
  for (VertexId u = 4; u < 7; ++u) {
    for (VertexId v = u + 1; v < 7; ++v) g2_edges.emplace_back(u, v, 3.0);
  }
  Result<MinerSession> session =
      MinerSession::Create(MakeGraph(8, {}), MakeGraph(8, g2_edges));
  ASSERT_TRUE(session.ok());

  MiningRequest request;
  request.measure = Measure::kBoth;
  request.top_k = 2;
  Result<MiningResponse> response = session->Mine(request);
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->graph_affinity.size(), 2u);
  EXPECT_EQ(response->graph_affinity[0].vertices,
            (std::vector<VertexId>{0, 1, 2}));
  EXPECT_EQ(response->graph_affinity[1].vertices,
            (std::vector<VertexId>{4, 5, 6}));
  EXPECT_GE(response->graph_affinity[0].value,
            response->graph_affinity[1].value);
  ASSERT_EQ(response->average_degree.size(), 2u);
  EXPECT_EQ(response->average_degree[0].vertices,
            (std::vector<VertexId>{0, 1, 2}));
}

}  // namespace
}  // namespace dcs
