// Batched mining tests: MineAll must equal sequential Mine bit-for-bit
// (apart from telemetry wall-times), stay deterministic under parallelism,
// and propagate per-request failures.

#include <gtest/gtest.h>

#include <cstdio>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "api/miner_session.h"
#include "api/solver_registry.h"
#include "test_util.h"

namespace dcs {
namespace {

using ::dcs::testing::Fig1G1;
using ::dcs::testing::Fig1G2;

// Serializes everything deterministic about a response: subgraphs with full
// double precision plus the deterministic telemetry fields. Wall-times are
// the documented exception.
std::string Serialize(const MiningResponse& response) {
  std::string out;
  char buf[64];
  auto append_subgraphs = [&](const char* tag,
                              const std::vector<RankedSubgraph>& list) {
    out += tag;
    for (const RankedSubgraph& s : list) {
      out += "[";
      for (VertexId v : s.vertices) {
        std::snprintf(buf, sizeof(buf), "%u,", v);
        out += buf;
      }
      out += "|";
      for (double w : s.weights) {
        std::snprintf(buf, sizeof(buf), "%.17g,", w);
        out += buf;
      }
      std::snprintf(buf, sizeof(buf), "|v=%.17g|r=%.17g|c=%d]", s.value,
                    s.ratio_bound, s.positive_clique ? 1 : 0);
      out += buf;
    }
  };
  append_subgraphs("AD:", response.average_degree);
  append_subgraphs(";GA:", response.graph_affinity);
  std::snprintf(buf, sizeof(buf), ";T:%llu,%llu,%llu,%u,%llu,%d,%d",
                static_cast<unsigned long long>(
                    response.telemetry.initializations),
                static_cast<unsigned long long>(
                    response.telemetry.cd_iterations),
                static_cast<unsigned long long>(
                    response.telemetry.replicator_sweeps),
                response.telemetry.expansion_errors,
                static_cast<unsigned long long>(
                    response.telemetry.session_rebuilds),
                response.telemetry.reused_cached_difference ? 1 : 0,
                response.telemetry.warm_start_used ? 1 : 0);
  out += buf;
  return out;
}

std::vector<MiningRequest> BatchRequests() {
  std::vector<MiningRequest> requests(5);
  requests[0].measure = Measure::kAverageDegree;
  requests[1].measure = Measure::kGraphAffinity;
  requests[2].measure = Measure::kBoth;
  requests[2].alpha = 2.0;
  requests[3].measure = Measure::kAverageDegree;
  requests[3].flip = true;
  requests[4].measure = Measure::kBoth;
  requests[4].discretize = DiscretizeSpec{};
  requests[4].top_k = 2;
  return requests;
}

TEST(MineAllTest, MatchesSequentialMiningBitForBit) {
  const std::vector<MiningRequest> requests = BatchRequests();

  Result<MinerSession> sequential = MinerSession::Create(Fig1G1(), Fig1G2());
  ASSERT_TRUE(sequential.ok());
  std::vector<std::string> expected;
  for (const MiningRequest& request : requests) {
    Result<MiningResponse> response = sequential->Mine(request);
    ASSERT_TRUE(response.ok());
    expected.push_back(Serialize(*response));
  }

  Result<MinerSession> batched = MinerSession::Create(Fig1G1(), Fig1G2());
  ASSERT_TRUE(batched.ok());
  Result<std::vector<MiningResponse>> responses = batched->MineAll(requests);
  ASSERT_TRUE(responses.ok());
  ASSERT_EQ(responses->size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(Serialize((*responses)[i]), expected[i]) << "request #" << i;
  }
  EXPECT_EQ(batched->num_rebuilds(), sequential->num_rebuilds());
}

TEST(MineAllTest, DeterministicUnderParallelism) {
  const std::vector<MiningRequest> requests = BatchRequests();
  SessionOptions options;
  options.max_parallelism = 4;

  std::vector<std::string> first;
  for (int run = 0; run < 2; ++run) {
    Result<MinerSession> session =
        MinerSession::Create(Fig1G1(), Fig1G2(), options);
    ASSERT_TRUE(session.ok());
    Result<std::vector<MiningResponse>> responses = session->MineAll(requests);
    ASSERT_TRUE(responses.ok());
    std::vector<std::string> serialized;
    for (const MiningResponse& response : *responses) {
      serialized.push_back(Serialize(response));
    }
    if (run == 0) {
      first = std::move(serialized);
    } else {
      EXPECT_EQ(serialized, first);
    }
  }
}

TEST(MineAllTest, EmptyBatchYieldsEmptyResult) {
  Result<MinerSession> session = MinerSession::Create(Fig1G1(), Fig1G2());
  ASSERT_TRUE(session.ok());
  Result<std::vector<MiningResponse>> responses =
      session->MineAll(std::span<const MiningRequest>{});
  ASSERT_TRUE(responses.ok());
  EXPECT_TRUE(responses->empty());
}

TEST(MineAllTest, ReportsTheFirstInvalidRequest) {
  Result<MinerSession> session = MinerSession::Create(Fig1G1(), Fig1G2());
  ASSERT_TRUE(session.ok());
  std::vector<MiningRequest> requests(4);
  requests[2].alpha = 0.0;
  Result<std::vector<MiningResponse>> responses = session->MineAll(requests);
  ASSERT_FALSE(responses.ok());
  EXPECT_TRUE(responses.status().IsInvalidArgument());
  EXPECT_NE(responses.status().message().find("request #2"),
            std::string::npos);
  // The session stays usable after a rejected batch.
  EXPECT_TRUE(session->Mine(MiningRequest{}).ok());
}

Result<std::vector<RankedSubgraph>> ThrowingSolver(const SolverContext&,
                                                   const MiningRequest&,
                                                   MiningTelemetry*) {
  throw std::runtime_error("boom");
}

TEST(MineAllTest, SolverExceptionsBecomeStatuses) {
  static const bool registered = [] {
    return SolverRegistry::Global()
        .Register("throwing-solver", &ThrowingSolver)
        .ok();
  }();
  ASSERT_TRUE(registered);

  SessionOptions options;
  options.max_parallelism = 2;
  Result<MinerSession> session =
      MinerSession::Create(Fig1G1(), Fig1G2(), options);
  ASSERT_TRUE(session.ok());
  std::vector<MiningRequest> requests(2);
  requests[1].measure = Measure::kAverageDegree;
  requests[1].ad_solver_name = "throwing-solver";
  Result<std::vector<MiningResponse>> responses = session->MineAll(requests);
  ASSERT_FALSE(responses.ok());
  EXPECT_EQ(responses.status().code(), StatusCode::kInternal);
  EXPECT_NE(responses.status().message().find("boom"), std::string::npos);
  // The session stays usable after the failed batch.
  EXPECT_TRUE(session->Mine(MiningRequest{}).ok());
}

TEST(MineAllTest, SharesThePipelineCacheAcrossTheBatch) {
  Result<MinerSession> session = MinerSession::Create(Fig1G1(), Fig1G2());
  ASSERT_TRUE(session.ok());
  // Four requests, two distinct pipelines -> exactly two rebuilds.
  std::vector<MiningRequest> requests(4);
  requests[1].alpha = 2.0;
  requests[3].alpha = 2.0;
  Result<std::vector<MiningResponse>> responses = session->MineAll(requests);
  ASSERT_TRUE(responses.ok());
  EXPECT_EQ(session->num_rebuilds(), 2u);
  EXPECT_FALSE((*responses)[0].telemetry.reused_cached_difference);
  EXPECT_FALSE((*responses)[1].telemetry.reused_cached_difference);
  EXPECT_TRUE((*responses)[2].telemetry.reused_cached_difference);
  EXPECT_TRUE((*responses)[3].telemetry.reused_cached_difference);
}

}  // namespace
}  // namespace dcs
