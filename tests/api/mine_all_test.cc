// Batched mining tests: MineAll must equal sequential Mine bit-for-bit
// (apart from telemetry wall-times), stay deterministic under parallelism,
// and propagate per-request failures.

#include <gtest/gtest.h>

#include <cstdio>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "api/miner_session.h"
#include "api/solver_registry.h"
#include "gen/random_graphs.h"
#include "test_util.h"
#include "util/rng.h"

namespace dcs {
namespace {

using ::dcs::testing::Fig1G1;
using ::dcs::testing::Fig1G2;
using ::dcs::testing::MakeGraph;

// Everything deterministic about a sequential-solve response (subgraphs +
// telemetry counters); wall-times are the documented exception.
std::string Serialize(const MiningResponse& response) {
  return ::dcs::testing::SerializeDeterministic(response);
}

std::vector<MiningRequest> BatchRequests() {
  std::vector<MiningRequest> requests(5);
  requests[0].measure = Measure::kAverageDegree;
  requests[1].measure = Measure::kGraphAffinity;
  requests[2].measure = Measure::kBoth;
  requests[2].alpha = 2.0;
  requests[3].measure = Measure::kAverageDegree;
  requests[3].flip = true;
  requests[4].measure = Measure::kBoth;
  requests[4].discretize = DiscretizeSpec{};
  requests[4].top_k = 2;
  return requests;
}

TEST(MineAllTest, MatchesSequentialMiningBitForBit) {
  const std::vector<MiningRequest> requests = BatchRequests();

  Result<MinerSession> sequential = MinerSession::Create(Fig1G1(), Fig1G2());
  ASSERT_TRUE(sequential.ok());
  std::vector<std::string> expected;
  for (const MiningRequest& request : requests) {
    Result<MiningResponse> response = sequential->Mine(request);
    ASSERT_TRUE(response.ok());
    expected.push_back(Serialize(*response));
  }

  Result<MinerSession> batched = MinerSession::Create(Fig1G1(), Fig1G2());
  ASSERT_TRUE(batched.ok());
  Result<std::vector<MiningResponse>> responses = batched->MineAll(requests);
  ASSERT_TRUE(responses.ok());
  ASSERT_EQ(responses->size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(Serialize((*responses)[i]), expected[i]) << "request #" << i;
  }
  EXPECT_EQ(batched->num_rebuilds(), sequential->num_rebuilds());
}

TEST(MineAllTest, DeterministicUnderParallelism) {
  const std::vector<MiningRequest> requests = BatchRequests();
  SessionOptions options;
  options.max_parallelism = 4;

  std::vector<std::string> first;
  for (int run = 0; run < 2; ++run) {
    Result<MinerSession> session =
        MinerSession::Create(Fig1G1(), Fig1G2(), options);
    ASSERT_TRUE(session.ok());
    Result<std::vector<MiningResponse>> responses = session->MineAll(requests);
    ASSERT_TRUE(responses.ok());
    std::vector<std::string> serialized;
    for (const MiningResponse& response : *responses) {
      serialized.push_back(Serialize(response));
    }
    if (run == 0) {
      first = std::move(serialized);
    } else {
      EXPECT_EQ(serialized, first);
    }
  }
}

TEST(MineAllTest, EmptyBatchYieldsEmptyResult) {
  Result<MinerSession> session = MinerSession::Create(Fig1G1(), Fig1G2());
  ASSERT_TRUE(session.ok());
  Result<std::vector<MiningResponse>> responses =
      session->MineAll(std::span<const MiningRequest>{});
  ASSERT_TRUE(responses.ok());
  EXPECT_TRUE(responses->empty());
}

TEST(MineAllTest, ReportsTheFirstInvalidRequest) {
  Result<MinerSession> session = MinerSession::Create(Fig1G1(), Fig1G2());
  ASSERT_TRUE(session.ok());
  std::vector<MiningRequest> requests(4);
  requests[2].alpha = 0.0;
  Result<std::vector<MiningResponse>> responses = session->MineAll(requests);
  ASSERT_FALSE(responses.ok());
  EXPECT_TRUE(responses.status().IsInvalidArgument());
  EXPECT_NE(responses.status().message().find("request #2"),
            std::string::npos);
  // The session stays usable after a rejected batch.
  EXPECT_TRUE(session->Mine(MiningRequest{}).ok());
}

Result<std::vector<RankedSubgraph>> ThrowingSolver(const SolverContext&,
                                                   const MiningRequest&,
                                                   MiningTelemetry*) {
  throw std::runtime_error("boom");
}

TEST(MineAllTest, SolverExceptionsBecomeStatuses) {
  static const bool registered = [] {
    return SolverRegistry::Global()
        .Register("throwing-solver", &ThrowingSolver)
        .ok();
  }();
  ASSERT_TRUE(registered);

  SessionOptions options;
  options.max_parallelism = 2;
  Result<MinerSession> session =
      MinerSession::Create(Fig1G1(), Fig1G2(), options);
  ASSERT_TRUE(session.ok());
  std::vector<MiningRequest> requests(2);
  requests[1].measure = Measure::kAverageDegree;
  requests[1].ad_solver_name = "throwing-solver";
  Result<std::vector<MiningResponse>> responses = session->MineAll(requests);
  ASSERT_FALSE(responses.ok());
  EXPECT_EQ(responses.status().code(), StatusCode::kInternal);
  EXPECT_NE(responses.status().message().find("boom"), std::string::npos);
  // The session stays usable after the failed batch.
  EXPECT_TRUE(session->Mine(MiningRequest{}).ok());
}

// Only the mined subgraphs — intra-request parallelism keeps them
// bit-identical while the work-counter telemetry legitimately varies with
// thread timing.
std::string SerializeSubgraphsOnly(const MiningResponse& response) {
  return ::dcs::testing::SerializeSubgraphs(response);
}

// A substantial session input: an empty G1 against a random signed G2, so
// the difference graph has hundreds of candidate seeds to shard.
std::pair<Graph, Graph> RandomSessionGraphs() {
  Rng rng(31);
  Result<Graph> g2 = RandomSignedGraph(/*n=*/250, /*m=*/2000,
                                       /*positive_fraction=*/0.7,
                                       /*magnitude_lo=*/0.5,
                                       /*magnitude_hi=*/3.0, &rng);
  DCS_CHECK(g2.ok());
  return {MakeGraph(250, {}), std::move(g2).value()};
}

TEST(MineAllTest, IntraRequestParallelismKeepsMinedSubgraphsIdentical) {
  auto [g1, g2] = RandomSessionGraphs();

  // Reference: strictly sequential session (budget 1, solver parallelism 1).
  SessionOptions sequential_options;
  sequential_options.max_parallelism = 1;
  Result<MinerSession> sequential =
      MinerSession::Create(g1, g2, sequential_options);
  ASSERT_TRUE(sequential.ok());

  // Parallel: budget 4 split across 2 requests, each granted 2 seed shards
  // through the auto knob.
  SessionOptions parallel_options;
  parallel_options.max_parallelism = 4;
  Result<MinerSession> parallel =
      MinerSession::Create(g1, g2, parallel_options);
  ASSERT_TRUE(parallel.ok());

  std::vector<MiningRequest> requests(2);
  requests[0].measure = Measure::kGraphAffinity;
  requests[0].ga_solver.parallelism = 0;  // auto
  requests[1].measure = Measure::kBoth;
  requests[1].alpha = 2.0;
  requests[1].ga_solver.parallelism = 0;

  Result<std::vector<MiningResponse>> expected = sequential->MineAll(requests);
  Result<std::vector<MiningResponse>> actual = parallel->MineAll(requests);
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(actual.ok());
  ASSERT_EQ(actual->size(), expected->size());
  for (size_t i = 0; i < expected->size(); ++i) {
    EXPECT_EQ(SerializeSubgraphsOnly((*actual)[i]),
              SerializeSubgraphsOnly((*expected)[i]))
        << "request #" << i;
    EXPECT_FALSE((*actual)[i].graph_affinity.empty()) << "request #" << i;
  }
}

TEST(MineAllTest, ExplicitIntraParallelismOnSingleMine) {
  auto [g1, g2] = RandomSessionGraphs();
  Result<MinerSession> sequential = MinerSession::Create(g1, g2);
  ASSERT_TRUE(sequential.ok());

  SessionOptions options;
  options.max_parallelism = 4;
  Result<MinerSession> parallel = MinerSession::Create(g1, g2, options);
  ASSERT_TRUE(parallel.ok());

  MiningRequest request;
  request.measure = Measure::kGraphAffinity;
  Result<MiningResponse> expected = sequential->Mine(request);
  ASSERT_TRUE(expected.ok());

  for (const uint32_t threads : {2u, 4u, 7u}) {
    MiningRequest parallel_request = request;
    parallel_request.ga_solver.parallelism = threads;
    Result<MiningResponse> actual = parallel->Mine(parallel_request);
    ASSERT_TRUE(actual.ok());
    EXPECT_EQ(SerializeSubgraphsOnly(*actual),
              SerializeSubgraphsOnly(*expected))
        << threads << " threads";
  }
}

TEST(MineAllTest, BudgetSplitDegradesGracefullyWhenRequestsExceedThePool) {
  // Regression for the up-front budget split: with more requests than pool
  // threads every request must still get a >= 1-thread intra grant (no
  // zero-thread seed shards, no starved solves) and the mined subgraphs
  // must stay bit-identical to sequential mining.
  auto [g1, g2] = RandomSessionGraphs();
  std::vector<MiningRequest> requests(9);
  for (size_t i = 0; i < requests.size(); ++i) {
    requests[i].measure =
        i % 3 == 0 ? Measure::kBoth : Measure::kGraphAffinity;
    requests[i].alpha = i % 2 == 0 ? 1.0 : 2.0;
    requests[i].ga_solver.parallelism = 0;  // auto: take the granted share
  }

  SessionOptions sequential_options;
  sequential_options.max_parallelism = 1;
  Result<MinerSession> sequential =
      MinerSession::Create(g1, g2, sequential_options);
  ASSERT_TRUE(sequential.ok());
  Result<std::vector<MiningResponse>> expected = sequential->MineAll(requests);
  ASSERT_TRUE(expected.ok());

  // Budgets strictly below, equal to, and above the request count — the
  // first two force the degraded split, the third exercises the remainder
  // distribution (budget % inter leftover threads are granted, not lost).
  for (const uint32_t budget : {2u, 3u, 9u, 13u}) {
    SessionOptions options;
    options.max_parallelism = budget;
    Result<MinerSession> session = MinerSession::Create(g1, g2, options);
    ASSERT_TRUE(session.ok());
    Result<std::vector<MiningResponse>> actual = session->MineAll(requests);
    ASSERT_TRUE(actual.ok()) << "budget " << budget << ": "
                             << actual.status().ToString();
    ASSERT_EQ(actual->size(), expected->size());
    for (size_t i = 0; i < expected->size(); ++i) {
      EXPECT_EQ(SerializeSubgraphsOnly((*actual)[i]),
                SerializeSubgraphsOnly((*expected)[i]))
          << "budget " << budget << ", request #" << i;
      EXPECT_FALSE((*actual)[i].graph_affinity.empty())
          << "budget " << budget << ", request #" << i;
    }
  }
}

TEST(MineAllTest, SharesThePipelineCacheAcrossTheBatch) {
  Result<MinerSession> session = MinerSession::Create(Fig1G1(), Fig1G2());
  ASSERT_TRUE(session.ok());
  // Four requests, two distinct pipelines -> exactly two rebuilds.
  std::vector<MiningRequest> requests(4);
  requests[1].alpha = 2.0;
  requests[3].alpha = 2.0;
  Result<std::vector<MiningResponse>> responses = session->MineAll(requests);
  ASSERT_TRUE(responses.ok());
  EXPECT_EQ(session->num_rebuilds(), 2u);
  EXPECT_FALSE((*responses)[0].telemetry.reused_cached_difference);
  EXPECT_FALSE((*responses)[1].telemetry.reused_cached_difference);
  EXPECT_TRUE((*responses)[2].telemetry.reused_cached_difference);
  EXPECT_TRUE((*responses)[3].telemetry.reused_cached_difference);
}

}  // namespace
}  // namespace dcs
