// Streaming update-path equivalence harness: randomized update streams
// (inserts, deletes-to-zero, sign flips, both sides) driven through
// MinerSession::ApplyUpdate must leave the session *bit-identical* to a
// from-scratch session over the same final graphs — for every pipeline
// shape (alpha, flip, discretize, clamp) and on both sides of the
// patch/rebuild crossover. This is the contract that makes the O(Δ) patch
// path a pure latency optimization.

#include <gtest/gtest.h>

#include <bit>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "api/miner_session.h"
#include "api/mining.h"
#include "api/pipeline_cache.h"
#include "graph/graph_builder.h"
#include "test_util.h"
#include "util/rng.h"

namespace dcs {
namespace {

using ::dcs::testing::SerializeSubgraphs;

// The request mix every equivalence round mines: both measures, plus each
// pipeline transform (alpha scaling, flip, discretize, clamp).
std::vector<MiningRequest> EquivalenceRequests() {
  std::vector<MiningRequest> requests(5);
  requests[0].measure = Measure::kBoth;
  requests[1].measure = Measure::kBoth;
  requests[1].alpha = 2.0;
  requests[2].measure = Measure::kBoth;
  requests[2].flip = true;
  requests[3].measure = Measure::kBoth;
  requests[3].discretize = DiscretizeSpec{};
  requests[4].measure = Measure::kBoth;
  requests[4].clamp_weights_above = 1.5;
  return requests;
}

// The test's own ground truth: accumulated weights per side, folded exactly
// like the session folds them (sum, drop |w| <= zero_eps at build time).
struct EdgeLedger {
  std::map<uint64_t, double> weights;

  void Apply(VertexId u, VertexId v, double delta) {
    weights[PackVertexPair(u, v)] += delta;
  }

  Graph Build(VertexId n) const {
    GraphBuilder builder(n);
    for (const auto& [key, weight] : weights) {
      builder.AddEdgeUnchecked(static_cast<VertexId>(key >> 32),
                               static_cast<VertexId>(key & 0xFFFFFFFFull),
                               weight);
    }
    Result<Graph> graph = builder.Build();
    DCS_CHECK(graph.ok());
    return std::move(graph).value();
  }
};

void ExpectGraphsBitIdentical(const Graph& actual, const Graph& expected,
                              const std::string& label) {
  ASSERT_EQ(actual.NumEdges(), expected.NumEdges()) << label;
  const std::vector<Edge> a = actual.UndirectedEdges();
  const std::vector<Edge> b = expected.UndirectedEdges();
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].u, b[i].u) << label;
    ASSERT_EQ(a[i].v, b[i].v) << label;
    ASSERT_EQ(std::bit_cast<uint64_t>(a[i].weight),
              std::bit_cast<uint64_t>(b[i].weight))
        << label << ": weight bits diverge on (" << a[i].u << "," << a[i].v
        << ")";
  }
}

// One randomized stream: apply `rounds` update batches to a streaming
// session configured with `ratio`, checking every round that responses,
// difference snapshots and the graph fingerprint are bit-identical to a
// fresh from-scratch session.
void RunEquivalenceStream(uint64_t seed, double ratio, int rounds,
                          int batch_size, VertexId n, size_t initial_edges,
                          bool check_fingerprint_via_shared_cache) {
  Rng rng(seed);
  SessionOptions options;
  options.patch_rebuild_ratio = ratio;
  Result<MinerSession> session = MinerSession::CreateStreaming(n, options);
  ASSERT_TRUE(session.ok());
  EdgeLedger g1, g2;

  auto random_pair = [&](VertexId* u, VertexId* v) {
    *u = static_cast<VertexId>(rng.NextBounded(n));
    *v = static_cast<VertexId>(rng.NextBounded(n - 1));
    if (*v >= *u) ++*v;
  };

  // Initial bulk load (one big batch; always past the crossover).
  for (size_t i = 0; i < initial_edges; ++i) {
    VertexId u, v;
    random_pair(&u, &v);
    const bool side1 = rng.Bernoulli(0.5);
    const double w = rng.Uniform(-2.0, 3.0);
    EdgeLedger& ledger = side1 ? g1 : g2;
    ASSERT_TRUE(session
                    ->ApplyUpdate(side1 ? UpdateSide::kG1 : UpdateSide::kG2,
                                  u, v, w)
                    .ok());
    ledger.Apply(u, v, w);
  }

  const std::vector<MiningRequest> requests = EquivalenceRequests();
  for (int round = 0; round <= rounds; ++round) {
    if (round > 0) {
      // A small batch: inserts, deletes-to-zero, and sign flips, both sides.
      for (int i = 0; i < batch_size; ++i) {
        VertexId u, v;
        random_pair(&u, &v);
        const bool side1 = rng.Bernoulli(0.4);
        EdgeLedger& ledger = side1 ? g1 : g2;
        const uint64_t key = PackVertexPair(u, v);
        double delta;
        const uint64_t kind = rng.NextBounded(4);
        auto it = ledger.weights.find(key);
        if (kind == 0 && it != ledger.weights.end()) {
          delta = -it->second;  // exact delete-to-zero
        } else if (kind == 1 && it != ledger.weights.end()) {
          delta = -2.0 * it->second;  // sign flip
        } else {
          delta = rng.Uniform(-2.0, 2.0);
        }
        ASSERT_TRUE(session
                        ->ApplyUpdate(side1 ? UpdateSide::kG1
                                            : UpdateSide::kG2,
                                      u, v, delta)
                        .ok());
        ledger.Apply(u, v, delta);
      }
    }

    const Graph fresh_g1 = g1.Build(n);
    const Graph fresh_g2 = g2.Build(n);
    Result<MinerSession> control = MinerSession::Create(fresh_g1, fresh_g2);
    ASSERT_TRUE(control.ok());
    for (size_t r = 0; r < requests.size(); ++r) {
      const std::string label = "seed " + std::to_string(seed) + " round " +
                                std::to_string(round) + " request #" +
                                std::to_string(r);
      Result<Graph> streamed_gd = session->DifferenceSnapshot(requests[r]);
      Result<Graph> control_gd = control->DifferenceSnapshot(requests[r]);
      ASSERT_TRUE(streamed_gd.ok() && control_gd.ok()) << label;
      ExpectGraphsBitIdentical(*streamed_gd, *control_gd, label);

      Result<MiningResponse> streamed = session->Mine(requests[r]);
      Result<MiningResponse> expected = control->Mine(requests[r]);
      ASSERT_TRUE(streamed.ok() && expected.ok()) << label;
      EXPECT_EQ(SerializeSubgraphs(*streamed), SerializeSubgraphs(*expected))
          << label;
    }
  }

  if (check_fingerprint_via_shared_cache) {
    // The incrementally maintained fingerprint must equal the from-scratch
    // one: attach a fresh batch session over the final graphs to the
    // streaming session's cache — its very first mine must *hit* the
    // entries the streaming session (re)published.
    auto cache = std::make_shared<PipelineCache>();
    session->UsePipelineCache(cache);
    ASSERT_TRUE(session->Mine(requests[0]).ok());
    SessionOptions shared_options;
    shared_options.pipeline_cache = cache;
    Result<MinerSession> verifier =
        MinerSession::Create(g1.Build(n), g2.Build(n), shared_options);
    ASSERT_TRUE(verifier.ok());
    Result<MiningResponse> hit = verifier->Mine(requests[0]);
    ASSERT_TRUE(hit.ok());
    EXPECT_TRUE(hit->telemetry.reused_cached_difference)
        << "patched fingerprint diverged from the from-scratch fingerprint";
    EXPECT_EQ(verifier->num_rebuilds(), 0u);
  }
}

TEST(StreamingUpdateEquivalenceTest, PatchedPathMatchesFromScratchSessions) {
  // Default crossover: the small per-round batches take the patch path
  // (PatchPathIsActuallyTaken pins that the counters move).
  RunEquivalenceStream(/*seed=*/101, /*ratio=*/0.25, /*rounds=*/8,
                       /*batch_size=*/3, /*n=*/48, /*initial_edges=*/240,
                       /*check_fingerprint_via_shared_cache=*/true);
}

TEST(StreamingUpdateEquivalenceTest, AlwaysPatchAndAlwaysRebuildAgree) {
  // Forcing each side of the crossover over the same seed keeps the two
  // implementations honest against each other (and against the control).
  RunEquivalenceStream(/*seed=*/202, /*ratio=*/1e9, /*rounds=*/6,
                       /*batch_size=*/4, /*n=*/40, /*initial_edges=*/160,
                       /*check_fingerprint_via_shared_cache=*/true);
  RunEquivalenceStream(/*seed=*/202, /*ratio=*/0.0, /*rounds=*/6,
                       /*batch_size=*/4, /*n=*/40, /*initial_edges=*/160,
                       /*check_fingerprint_via_shared_cache=*/true);
}

TEST(StreamingUpdateEquivalenceTest, PatchPathIsActuallyTaken) {
  SessionOptions options;  // default crossover
  Result<MinerSession> session = MinerSession::CreateStreaming(30, options);
  ASSERT_TRUE(session.ok());
  // Bulk load a ring (rebuild), then a single-edge update (patch).
  for (VertexId u = 0; u < 30; ++u) {
    ASSERT_TRUE(session
                    ->ApplyUpdate(UpdateSide::kG2, u, (u + 1) % 30,
                                  1.0 + u)
                    .ok());
  }
  MiningRequest request;
  request.measure = Measure::kBoth;
  ASSERT_TRUE(session->Mine(request).ok());
  EXPECT_EQ(session->num_update_rebuilds(), 1u);
  EXPECT_EQ(session->num_update_patches(), 0u);

  ASSERT_TRUE(session->ApplyUpdate(UpdateSide::kG2, 0, 5, 4.0).ok());
  Result<MiningResponse> patched = session->Mine(request);
  ASSERT_TRUE(patched.ok());
  EXPECT_EQ(session->num_update_patches(), 1u);
  EXPECT_EQ(session->num_update_rebuilds(), 1u);
  EXPECT_EQ(patched->telemetry.update_patches, 1u);
  EXPECT_GE(patched->telemetry.patched_entries_republished, 1u);
  EXPECT_TRUE(patched->telemetry.reused_cached_difference);
}

TEST(StreamingUpdateEquivalenceTest, NetZeroBatchKeepsCachedPipelines) {
  // A batch whose deltas cancel exactly leaves the graph content — and the
  // fingerprint — unchanged: the resident entries stay valid, nothing is
  // republished or erased, and the next mine still hits.
  Result<MinerSession> session = MinerSession::CreateStreaming(12);
  ASSERT_TRUE(session.ok());
  for (VertexId u = 0; u < 11; ++u) {
    ASSERT_TRUE(session->ApplyUpdate(UpdateSide::kG2, u, u + 1, 1.0 + u).ok());
  }
  MiningRequest request;
  request.measure = Measure::kBoth;
  Result<MiningResponse> before = session->Mine(request);
  ASSERT_TRUE(before.ok());
  const uint64_t rebuilds = session->num_rebuilds();

  ASSERT_TRUE(session->ApplyUpdate(UpdateSide::kG2, 0, 1, 2.5).ok());
  ASSERT_TRUE(session->ApplyUpdate(UpdateSide::kG2, 0, 1, -2.5).ok());
  Result<MiningResponse> after = session->Mine(request);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->telemetry.reused_cached_difference)
      << "a net-zero flush must not invalidate the cached pipeline";
  EXPECT_EQ(session->num_rebuilds(), rebuilds);
  EXPECT_EQ(session->num_republished_entries(), 0u);
  EXPECT_EQ(SerializeSubgraphs(*before), SerializeSubgraphs(*after));
}

TEST(StreamingUpdateEquivalenceTest, SubEpsBaseEdgesAgreeAcrossCrossover) {
  // A session-level zero_eps above some input-edge magnitudes: the session
  // normalizes its graphs up front, so the patch and rebuild paths see the
  // same content and stay bit-identical (the rebuild path re-filters every
  // base edge; the patch path must not keep what a rebuild would drop).
  GraphBuilder b1(6), b2(6);
  b2.AddEdgeUnchecked(0, 1, 3.0);
  b2.AddEdgeUnchecked(1, 2, 0.1);  // below the session's zero_eps
  b2.AddEdgeUnchecked(2, 3, 2.0);
  b2.AddEdgeUnchecked(3, 4, 1.5);
  Result<Graph> g1 = b1.Build();
  Result<Graph> g2 = b2.Build();
  ASSERT_TRUE(g1.ok() && g2.ok());

  auto run = [&](double ratio) {
    SessionOptions options;
    options.zero_eps = 0.5;
    options.patch_rebuild_ratio = ratio;
    Result<MinerSession> session = MinerSession::Create(*g1, *g2, options);
    DCS_CHECK(session.ok());
    DCS_CHECK(session->ApplyUpdate(UpdateSide::kG2, 4, 5, 1.0).ok());
    MiningRequest request;
    request.measure = Measure::kBoth;
    Result<MiningResponse> response = session->Mine(request);
    DCS_CHECK(response.ok());
    Result<Graph> gd = session->DifferenceSnapshot();
    DCS_CHECK(gd.ok());
    return std::make_pair(SerializeSubgraphs(*response), *gd);
  };
  auto [patched_response, patched_gd] = run(/*ratio=*/1e9);
  auto [rebuilt_response, rebuilt_gd] = run(/*ratio=*/0.0);
  EXPECT_EQ(patched_response, rebuilt_response);
  ExpectGraphsBitIdentical(patched_gd, rebuilt_gd, "sub-eps base edges");
  // The sub-eps edge was normalized away on both paths.
  EXPECT_FALSE(patched_gd.HasEdge(1, 2));
}

TEST(StreamingUpdateEquivalenceTest, EmptyFlushIsANoOp) {
  Result<MinerSession> session = MinerSession::CreateStreaming(8);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->ApplyUpdate(UpdateSide::kG2, 0, 1, 2.0).ok());
  MiningRequest request;
  request.measure = Measure::kAverageDegree;
  Result<MiningResponse> first = session->Mine(request);
  ASSERT_TRUE(first.ok());
  const uint64_t flushes = session->num_update_patches() +
                           session->num_update_rebuilds();
  // No pending updates: repeated mining flushes nothing and hits the cache.
  Result<MiningResponse> second = session->Mine(request);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(session->num_update_patches() + session->num_update_rebuilds(),
            flushes);
  EXPECT_TRUE(second->telemetry.reused_cached_difference);
  EXPECT_EQ(SerializeSubgraphs(*first), SerializeSubgraphs(*second));
}

TEST(StreamingUpdateEquivalenceTest, FlushIsIndependentOfUpdateArrivalOrder) {
  // The pending batch is folded in sorted PackVertexPair order, so two
  // sessions receiving the same updates (distinct pairs) in different
  // arrival orders produce bit-identical graphs and responses.
  const std::vector<std::tuple<UpdateSide, VertexId, VertexId, double>>
      updates = {{UpdateSide::kG2, 3, 7, 2.5},  {UpdateSide::kG1, 1, 2, 1.0},
                 {UpdateSide::kG2, 0, 9, -1.5}, {UpdateSide::kG2, 4, 5, 0.75},
                 {UpdateSide::kG1, 6, 8, -0.25}};
  Result<MinerSession> forward = MinerSession::CreateStreaming(10);
  Result<MinerSession> backward = MinerSession::CreateStreaming(10);
  ASSERT_TRUE(forward.ok() && backward.ok());
  for (const auto& [side, u, v, w] : updates) {
    ASSERT_TRUE(forward->ApplyUpdate(side, u, v, w).ok());
  }
  for (auto it = updates.rbegin(); it != updates.rend(); ++it) {
    const auto& [side, u, v, w] = *it;
    ASSERT_TRUE(backward->ApplyUpdate(side, u, v, w).ok());
  }
  MiningRequest request;
  request.measure = Measure::kBoth;
  Result<MiningResponse> a = forward->Mine(request);
  Result<MiningResponse> b = backward->Mine(request);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(SerializeSubgraphs(*a), SerializeSubgraphs(*b));
  Result<Graph> gd_a = forward->DifferenceSnapshot();
  Result<Graph> gd_b = backward->DifferenceSnapshot();
  ASSERT_TRUE(gd_a.ok() && gd_b.ok());
  ExpectGraphsBitIdentical(*gd_a, *gd_b, "arrival order");
}

}  // namespace
}  // namespace dcs
