#include "graph/subgraph.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/difference.h"
#include "graph/stats.h"
#include "test_util.h"

namespace dcs {
namespace {

using ::dcs::testing::Fig1Gd;
using ::dcs::testing::MakeGraph;

TEST(InducedSubgraphTest, ExtractsAndRenumbers) {
  Graph gd = Fig1Gd();
  std::vector<VertexId> subset{0, 1, 3};
  auto sub = ExtractInducedSubgraph(gd, subset);
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->graph.NumVertices(), 3u);
  EXPECT_EQ(sub->original_ids, subset);
  // Edges inside {0,1,3}: (0,1)=+4, (0,3)=+1 -> new ids (0,1), (0,2).
  EXPECT_EQ(sub->graph.NumEdges(), 2u);
  EXPECT_DOUBLE_EQ(sub->graph.EdgeWeight(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(sub->graph.EdgeWeight(0, 2), 1.0);
  EXPECT_FALSE(sub->graph.HasEdge(1, 2));
}

TEST(InducedSubgraphTest, SubsetOrderDefinesNumbering) {
  Graph gd = Fig1Gd();
  std::vector<VertexId> subset{3, 0};
  auto sub = ExtractInducedSubgraph(gd, subset);
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->original_ids, subset);
  EXPECT_DOUBLE_EQ(sub->graph.EdgeWeight(0, 1), 1.0);  // old (0,3)
}

TEST(InducedSubgraphTest, PreservesDensity) {
  Graph gd = Fig1Gd();
  std::vector<VertexId> subset{0, 1, 2, 3};
  auto sub = ExtractInducedSubgraph(gd, subset);
  ASSERT_TRUE(sub.ok());
  std::vector<VertexId> all{0, 1, 2, 3};
  EXPECT_NEAR(AverageDegreeDensity(gd, subset),
              AverageDegreeDensity(sub->graph, all), 1e-12);
}

TEST(InducedSubgraphTest, EmptySubset) {
  auto sub = ExtractInducedSubgraph(Fig1Gd(), std::vector<VertexId>{});
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->graph.NumVertices(), 0u);
}

TEST(InducedSubgraphTest, RejectsDuplicates) {
  auto sub = ExtractInducedSubgraph(Fig1Gd(), std::vector<VertexId>{1, 1});
  ASSERT_FALSE(sub.ok());
  EXPECT_TRUE(sub.status().IsInvalidArgument());
}

TEST(InducedSubgraphTest, RejectsOutOfRange) {
  auto sub = ExtractInducedSubgraph(Fig1Gd(), std::vector<VertexId>{99});
  ASSERT_FALSE(sub.ok());
  EXPECT_EQ(sub.status().code(), StatusCode::kOutOfRange);
}

TEST(AlphaUpperBoundTest, MatchesMaxRatio) {
  Graph g1 = MakeGraph(4, {{0, 1, 2.0}, {1, 2, 4.0}});
  Graph g2 = MakeGraph(4, {{0, 1, 3.0}, {1, 2, 2.0}});
  auto alpha = AlphaUpperBound(g1, g2);
  ASSERT_TRUE(alpha.ok());
  EXPECT_DOUBLE_EQ(*alpha, 1.5);  // 3/2 beats 2/4
}

TEST(AlphaUpperBoundTest, MissingG1EdgeGivesInfinity) {
  Graph g1 = MakeGraph(3, {{0, 1, 2.0}});
  Graph g2 = MakeGraph(3, {{0, 1, 1.0}, {1, 2, 1.0}});
  auto alpha = AlphaUpperBound(g1, g2);
  ASSERT_TRUE(alpha.ok());
  EXPECT_TRUE(std::isinf(*alpha));
}

TEST(AlphaUpperBoundTest, EdgelessG2GivesZero) {
  Graph g1 = MakeGraph(3, {{0, 1, 2.0}});
  auto alpha = AlphaUpperBound(g1, Graph(3));
  ASSERT_TRUE(alpha.ok());
  EXPECT_DOUBLE_EQ(*alpha, 0.0);
}

TEST(AlphaUpperBoundTest, MismatchedSizesRejected) {
  EXPECT_FALSE(AlphaUpperBound(Graph(3), Graph(4)).ok());
}

TEST(AlphaUpperBoundTest, ContrastVanishesAboveAlpha) {
  // §III-D: at α just below the bound the difference graph has a positive
  // edge (positive optimum); at α above it, none.
  Graph g1 = MakeGraph(4, {{0, 1, 2.0}, {1, 2, 4.0}, {2, 3, 1.0}});
  Graph g2 = MakeGraph(4, {{0, 1, 3.0}, {1, 2, 2.0}, {2, 3, 1.2}});
  auto alpha = AlphaUpperBound(g1, g2);
  ASSERT_TRUE(alpha.ok());
  auto below = BuildDifferenceGraph(g1, g2, *alpha * 0.99);
  auto above = BuildDifferenceGraph(g1, g2, *alpha * 1.01);
  ASSERT_TRUE(below.ok() && above.ok());
  EXPECT_GT(below->ComputeWeightStats().num_positive_edges, 0u);
  EXPECT_EQ(above->ComputeWeightStats().num_positive_edges, 0u);
}

}  // namespace
}  // namespace dcs
