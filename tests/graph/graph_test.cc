#include "graph/graph.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "graph/csr_patcher.h"
#include "graph/graph_builder.h"
#include "graph/serialize.h"
#include "test_util.h"

namespace dcs {
namespace {

using ::dcs::testing::MakeGraph;

TEST(GraphTest, EmptyGraph) {
  Graph g(0);
  EXPECT_EQ(g.NumVertices(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST(GraphTest, IsolatedVertices) {
  Graph g(5);
  EXPECT_EQ(g.NumVertices(), 5u);
  EXPECT_EQ(g.NumEdges(), 0u);
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_EQ(g.Degree(v), 0u);
    EXPECT_DOUBLE_EQ(g.WeightedDegree(v), 0.0);
  }
}

TEST(GraphTest, BasicAdjacency) {
  Graph g = MakeGraph(4, {{0, 1, 2.0}, {1, 2, -3.0}, {0, 3, 1.0}});
  EXPECT_EQ(g.NumEdges(), 3u);
  EXPECT_EQ(g.Degree(0), 2u);
  EXPECT_EQ(g.Degree(1), 2u);
  EXPECT_EQ(g.Degree(2), 1u);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(1, 0), 2.0);  // symmetric
  EXPECT_DOUBLE_EQ(g.EdgeWeight(1, 2), -3.0);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(2, 3), 0.0);  // absent
  EXPECT_TRUE(g.HasEdge(0, 3));
  EXPECT_FALSE(g.HasEdge(0, 2));
}

TEST(GraphTest, AdjacencyIsSorted) {
  Graph g = MakeGraph(5, {{2, 4, 1.0}, {2, 0, 1.0}, {2, 3, 1.0}, {2, 1, 1.0}});
  auto row = g.NeighborsOf(2);
  ASSERT_EQ(row.size(), 4u);
  for (size_t i = 1; i < row.size(); ++i) EXPECT_LT(row[i - 1].to, row[i].to);
}

TEST(GraphTest, WeightedDegreeSumsIncidentWeights) {
  Graph g = MakeGraph(3, {{0, 1, 2.5}, {0, 2, -1.0}});
  EXPECT_DOUBLE_EQ(g.WeightedDegree(0), 1.5);
  EXPECT_DOUBLE_EQ(g.WeightedDegree(1), 2.5);
  EXPECT_DOUBLE_EQ(g.WeightedDegree(2), -1.0);
}

TEST(GraphTest, UndirectedEdgesListsEachEdgeOnce) {
  Graph g = MakeGraph(4, {{0, 1, 1.0}, {1, 2, 2.0}, {2, 3, 3.0}});
  auto edges = g.UndirectedEdges();
  ASSERT_EQ(edges.size(), 3u);
  for (const Edge& e : edges) EXPECT_LT(e.u, e.v);
}

TEST(GraphTest, WeightStats) {
  Graph g = MakeGraph(4, {{0, 1, 3.0}, {1, 2, -2.0}, {2, 3, 1.0}});
  const WeightStats stats = g.ComputeWeightStats();
  EXPECT_EQ(stats.num_positive_edges, 2u);
  EXPECT_EQ(stats.num_negative_edges, 1u);
  EXPECT_DOUBLE_EQ(stats.max_weight, 3.0);
  EXPECT_DOUBLE_EQ(stats.min_weight, -2.0);
  EXPECT_NEAR(stats.mean_weight, 2.0 / 3.0, 1e-12);
}

TEST(GraphTest, WeightStatsEmptyGraph) {
  Graph g(3);
  const WeightStats stats = g.ComputeWeightStats();
  EXPECT_EQ(stats.num_positive_edges, 0u);
  EXPECT_DOUBLE_EQ(stats.max_weight, 0.0);
  EXPECT_DOUBLE_EQ(stats.mean_weight, 0.0);
}

TEST(GraphTest, PositivePartDropsNegativeEdges) {
  Graph gd = MakeGraph(4, {{0, 1, 2.0}, {1, 2, -1.0}, {2, 3, 0.5}});
  Graph gd_plus = gd.PositivePart();
  EXPECT_EQ(gd_plus.NumVertices(), 4u);
  EXPECT_EQ(gd_plus.NumEdges(), 2u);
  EXPECT_TRUE(gd_plus.HasEdge(0, 1));
  EXPECT_FALSE(gd_plus.HasEdge(1, 2));
  EXPECT_TRUE(gd_plus.HasEdge(2, 3));
}

TEST(GraphTest, PositivePartKeepsAdjacencySorted) {
  Graph gd = MakeGraph(5, {{2, 0, 1.0}, {2, 1, -1.0}, {2, 3, 2.0}, {2, 4, -2.0}});
  Graph gd_plus = gd.PositivePart();
  auto row = gd_plus.NeighborsOf(2);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0].to, 0u);
  EXPECT_EQ(row[1].to, 3u);
}

TEST(GraphTest, NegatedFlipsAllSigns) {
  Graph gd = MakeGraph(3, {{0, 1, 2.0}, {1, 2, -3.0}});
  Graph flipped = gd.Negated();
  EXPECT_DOUBLE_EQ(flipped.EdgeWeight(0, 1), -2.0);
  EXPECT_DOUBLE_EQ(flipped.EdgeWeight(1, 2), 3.0);
  // Original untouched.
  EXPECT_DOUBLE_EQ(gd.EdgeWeight(0, 1), 2.0);
}

TEST(GraphTest, WeightsClampedAbove) {
  Graph g = MakeGraph(3, {{0, 1, 100.0}, {1, 2, 5.0}});
  Graph clamped = g.WeightsClampedAbove(10.0);
  EXPECT_DOUBLE_EQ(clamped.EdgeWeight(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(clamped.EdgeWeight(1, 2), 5.0);
}

TEST(GraphTest, MaxIncidentWeightPerVertex) {
  Graph g = MakeGraph(4, {{0, 1, 2.0}, {0, 2, 5.0}, {1, 2, 1.0}});
  auto best = g.MaxIncidentWeightPerVertex();
  EXPECT_DOUBLE_EQ(best[0], 5.0);
  EXPECT_DOUBLE_EQ(best[1], 2.0);
  EXPECT_DOUBLE_EQ(best[2], 5.0);
  EXPECT_TRUE(std::isinf(best[3]));
  EXPECT_LT(best[3], 0.0);
}

TEST(GraphTest, DebugStringMentionsCounts) {
  Graph g = MakeGraph(3, {{0, 1, 1.0}, {1, 2, -1.0}});
  const std::string s = g.DebugString();
  EXPECT_NE(s.find("n=3"), std::string::npos);
  EXPECT_NE(s.find("m=2"), std::string::npos);
  EXPECT_NE(s.find("m+=1"), std::string::npos);
  EXPECT_NE(s.find("m-=1"), std::string::npos);
}

// ---- GraphBuilder ----

TEST(GraphBuilderTest, RejectsSelfLoop) {
  GraphBuilder builder(3);
  EXPECT_TRUE(builder.AddEdge(1, 1, 1.0).IsInvalidArgument());
}

TEST(GraphBuilderTest, RejectsOutOfRange) {
  GraphBuilder builder(3);
  EXPECT_EQ(builder.AddEdge(0, 3, 1.0).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(builder.AddEdge(7, 0, 1.0).code(), StatusCode::kOutOfRange);
}

TEST(GraphBuilderTest, RejectsNonFiniteWeights) {
  GraphBuilder builder(3);
  EXPECT_TRUE(
      builder.AddEdge(0, 1, std::numeric_limits<double>::infinity())
          .IsInvalidArgument());
  EXPECT_TRUE(
      builder.AddEdge(0, 1, std::nan("")).IsInvalidArgument());
}

TEST(GraphBuilderTest, AccumulatesDuplicateEdges) {
  GraphBuilder builder(3);
  ASSERT_TRUE(builder.AddEdge(0, 1, 1.5).ok());
  ASSERT_TRUE(builder.AddEdge(1, 0, 2.5).ok());  // same undirected edge
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumEdges(), 1u);
  EXPECT_DOUBLE_EQ(g->EdgeWeight(0, 1), 4.0);
}

TEST(GraphBuilderTest, DropsCancelledEdges) {
  GraphBuilder builder(3);
  ASSERT_TRUE(builder.AddEdge(0, 1, 2.0).ok());
  ASSERT_TRUE(builder.AddEdge(0, 1, -2.0).ok());
  ASSERT_TRUE(builder.AddEdge(1, 2, 1.0).ok());
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumEdges(), 1u);
  EXPECT_FALSE(g->HasEdge(0, 1));
}

TEST(GraphBuilderTest, ZeroEpsThresholdIsConfigurable) {
  GraphBuilder builder(2);
  ASSERT_TRUE(builder.AddEdge(0, 1, 1e-9).ok());
  auto g_loose = builder.Build(/*zero_eps=*/1e-6);
  ASSERT_TRUE(g_loose.ok());
  EXPECT_EQ(g_loose->NumEdges(), 0u);
  ASSERT_TRUE(builder.AddEdge(0, 1, 1e-9).ok());
  auto g_tight = builder.Build(/*zero_eps=*/0.0);
  ASSERT_TRUE(g_tight.ok());
  EXPECT_EQ(g_tight->NumEdges(), 1u);
}

TEST(GraphBuilderTest, InvalidZeroEpsRejected) {
  GraphBuilder builder(2);
  EXPECT_FALSE(builder.Build(-1.0).ok());
  EXPECT_FALSE(builder.Build(std::nan("")).ok());
}

TEST(GraphBuilderTest, BuilderIsReusableAfterBuild) {
  GraphBuilder builder(3);
  ASSERT_TRUE(builder.AddEdge(0, 1, 1.0).ok());
  auto g1 = builder.Build();
  ASSERT_TRUE(g1.ok());
  EXPECT_EQ(builder.NumQueuedEntries(), 0u);
  ASSERT_TRUE(builder.AddEdge(1, 2, 1.0).ok());
  auto g2 = builder.Build();
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g2->NumEdges(), 1u);
  EXPECT_TRUE(g2->HasEdge(1, 2));
  EXPECT_FALSE(g2->HasEdge(0, 1));
}

TEST(GraphBuilderTest, SymmetryInvariant) {
  Graph g = MakeGraph(6, {{0, 5, 1.0}, {3, 2, -2.0}, {4, 1, 0.5}});
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (const Neighbor& nb : g.NeighborsOf(u)) {
      EXPECT_DOUBLE_EQ(g.EdgeWeight(nb.to, u), nb.weight);
    }
  }
}

// --- zero-weight edge semantics audit ---------------------------------------
//
// "Zero weight" means "no edge" at every layer: HasEdge is literally
// EdgeWeight != 0.0 (graph.h), which only stays truthful because no
// construction path can materialize a stored zero-weight Neighbor —
// GraphBuilder::Build and CsrPatcher::Apply both drop |w| <= zero_eps, and
// the binary serializer rejects zero-weight halves on parse. These tests pin
// the agreement between the layers.

TEST(ZeroWeightSemanticsTest, BuilderCancellationAgreesWithHasEdge) {
  GraphBuilder builder(3);
  ASSERT_TRUE(builder.AddEdge(0, 1, 2.5).ok());
  ASSERT_TRUE(builder.AddEdge(1, 0, -2.5).ok());  // cancels to exactly 0
  ASSERT_TRUE(builder.AddEdge(1, 2, 1.0).ok());
  Result<Graph> g = builder.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumEdges(), 1u);
  EXPECT_FALSE(g->HasEdge(0, 1));
  EXPECT_FALSE(g->HasEdge(1, 0));
  EXPECT_EQ(g->EdgeWeight(0, 1), 0.0);
  EXPECT_EQ(g->Degree(0), 0u);
  EXPECT_TRUE(g->HasEdge(1, 2));
  // Sub-epsilon residue counts as zero too (the kDefaultZeroEps rule).
  GraphBuilder residue(2);
  ASSERT_TRUE(residue.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(residue.AddEdge(0, 1, -1.0 + 1e-13).ok());
  Result<Graph> r = residue.Build();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumEdges(), 0u);
  EXPECT_FALSE(r->HasEdge(0, 1));
}

TEST(ZeroWeightSemanticsTest, PatchToZeroRemovesTheEdgeEverywhere) {
  const Graph base = MakeGraph(4, {{0, 1, 1.0}, {1, 2, 2.0}, {2, 3, -0.5}});
  uint64_t accumulator = base.ContentAccumulator();

  // Patch (0,1) to exact 0.0 and (2,3) to -0.0: both must drop.
  const std::vector<EdgePatch> patches = {{0, 1, 0.0}, {2, 3, -0.0}};
  const Graph patched =
      CsrPatcher::Apply(base, patches, kDefaultZeroEps, &accumulator);

  EXPECT_EQ(patched.NumEdges(), 1u);
  EXPECT_FALSE(patched.HasEdge(0, 1));
  EXPECT_EQ(patched.EdgeWeight(0, 1), 0.0);
  EXPECT_FALSE(patched.HasEdge(2, 3));
  EXPECT_EQ(patched.Degree(0), 0u);
  EXPECT_EQ(patched.Degree(3), 0u);
  EXPECT_TRUE(patched.HasEdge(1, 2));

  // The patched graph, its O(Δ)-maintained fingerprint, and a from-scratch
  // rebuild of the surviving edge all agree.
  const Graph rebuilt = MakeGraph(4, {{1, 2, 2.0}});
  EXPECT_EQ(patched.ContentFingerprint(), rebuilt.ContentFingerprint());
  EXPECT_EQ(Graph::FingerprintFromAccumulator(patched.NumVertices(),
                                              accumulator),
            patched.ContentFingerprint());
}

TEST(ZeroWeightSemanticsTest, SerializeRoundTripAfterPatchToZero) {
  const Graph base = MakeGraph(3, {{0, 1, 1.5}, {1, 2, -2.25}});
  const std::vector<EdgePatch> patches = {{0, 1, 0.0}};
  const Graph patched = CsrPatcher::Apply(base, patches);

  std::string bytes;
  AppendGraphBytes(patched, &bytes);
  size_t cursor = 0;
  Result<Graph> parsed = ParseGraphBytes(
      std::span<const uint8_t>(
          reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size()),
      &cursor);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(cursor, bytes.size());
  EXPECT_EQ(parsed->ContentFingerprint(), patched.ContentFingerprint());
  for (VertexId u = 0; u < 3; ++u) {
    for (VertexId v = 0; v < 3; ++v) {
      if (u == v) continue;
      EXPECT_EQ(parsed->HasEdge(u, v), patched.HasEdge(u, v))
          << u << "," << v;
      EXPECT_EQ(parsed->EdgeWeight(u, v), patched.EdgeWeight(u, v));
    }
  }
  EXPECT_FALSE(parsed->HasEdge(0, 1));
  EXPECT_TRUE(parsed->HasEdge(1, 2));
}

}  // namespace
}  // namespace dcs
