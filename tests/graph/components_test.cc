#include "graph/components.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "gen/random_graphs.h"
#include "test_util.h"
#include "util/rng.h"

namespace dcs {
namespace {

using ::dcs::testing::MakeGraph;

TEST(ConnectedComponentsTest, SingleComponent) {
  Graph g = MakeGraph(4, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}});
  const ComponentLabeling labeling = ConnectedComponents(g);
  EXPECT_EQ(labeling.num_components, 1u);
  for (VertexId v = 0; v < 4; ++v) EXPECT_EQ(labeling.label[v], 0u);
}

TEST(ConnectedComponentsTest, IsolatedVerticesAreOwnComponents) {
  Graph g(3);
  const ComponentLabeling labeling = ConnectedComponents(g);
  EXPECT_EQ(labeling.num_components, 3u);
}

TEST(ConnectedComponentsTest, TwoComponentsAndGroups) {
  Graph g = MakeGraph(5, {{0, 1, 1.0}, {2, 3, 1.0}, {3, 4, 1.0}});
  const ComponentLabeling labeling = ConnectedComponents(g);
  EXPECT_EQ(labeling.num_components, 2u);
  auto groups = labeling.Groups();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<VertexId>{0, 1}));
  EXPECT_EQ(groups[1], (std::vector<VertexId>{2, 3, 4}));
}

TEST(ConnectedComponentsTest, NegativeEdgesStillConnect) {
  Graph g = MakeGraph(3, {{0, 1, -1.0}, {1, 2, -2.0}});
  EXPECT_EQ(ConnectedComponents(g).num_components, 1u);
}

TEST(InducedComponentsTest, SubsetSplitsIntoComponents) {
  // Path 0-1-2-3-4; subset {0,1,3,4} splits into {0,1} and {3,4}.
  Graph g = MakeGraph(5, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}, {3, 4, 1.0}});
  std::vector<VertexId> subset{0, 1, 3, 4};
  auto components = InducedComponents(g, subset);
  ASSERT_EQ(components.size(), 2u);
  for (auto& c : components) std::sort(c.begin(), c.end());
  std::sort(components.begin(), components.end());
  EXPECT_EQ(components[0], (std::vector<VertexId>{0, 1}));
  EXPECT_EQ(components[1], (std::vector<VertexId>{3, 4}));
}

TEST(InducedComponentsTest, EmptySubset) {
  Graph g = MakeGraph(3, {{0, 1, 1.0}});
  EXPECT_TRUE(InducedComponents(g, std::vector<VertexId>{}).empty());
}

TEST(InducedComponentsTest, DuplicateIdsIgnored) {
  Graph g = MakeGraph(3, {{0, 1, 1.0}});
  std::vector<VertexId> subset{0, 0, 1, 1};
  auto components = InducedComponents(g, subset);
  ASSERT_EQ(components.size(), 1u);
  EXPECT_EQ(components[0].size(), 2u);
}

TEST(InducedComponentsTest, SingletonSubset) {
  Graph g = MakeGraph(3, {{0, 1, 1.0}});
  auto components = InducedComponents(g, std::vector<VertexId>{2});
  ASSERT_EQ(components.size(), 1u);
  EXPECT_EQ(components[0], (std::vector<VertexId>{2}));
}

TEST(IsInducedConnectedTest, Basics) {
  Graph g = MakeGraph(5, {{0, 1, 1.0}, {1, 2, 1.0}, {3, 4, 1.0}});
  EXPECT_TRUE(IsInducedConnected(g, std::vector<VertexId>{0, 1, 2}));
  EXPECT_FALSE(IsInducedConnected(g, std::vector<VertexId>{0, 1, 3}));
  EXPECT_TRUE(IsInducedConnected(g, std::vector<VertexId>{}));
  EXPECT_TRUE(IsInducedConnected(g, std::vector<VertexId>{4}));
}

class ComponentsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ComponentsPropertyTest, LabelsAreConsistentWithEdges) {
  Rng rng(GetParam());
  auto g = ErdosRenyi(60, 0.03, &rng);
  ASSERT_TRUE(g.ok());
  const ComponentLabeling labeling = ConnectedComponents(*g);
  // Every edge connects same-labeled vertices.
  for (VertexId u = 0; u < g->NumVertices(); ++u) {
    for (const Neighbor& nb : g->NeighborsOf(u)) {
      EXPECT_EQ(labeling.label[u], labeling.label[nb.to]);
    }
  }
  // Labels are dense and groups partition V.
  auto groups = labeling.Groups();
  size_t total = 0;
  for (const auto& grp : groups) {
    EXPECT_FALSE(grp.empty());
    total += grp.size();
  }
  EXPECT_EQ(total, g->NumVertices());
  // Induced components over the full vertex set agree in count.
  std::vector<VertexId> all(g->NumVertices());
  for (VertexId v = 0; v < g->NumVertices(); ++v) all[v] = v;
  EXPECT_EQ(InducedComponents(*g, all).size(), labeling.num_components);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ComponentsPropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace dcs
