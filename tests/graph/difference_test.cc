#include "graph/difference.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/graph_builder.h"
#include "test_util.h"

namespace dcs {
namespace {

using ::dcs::testing::Fig1G1;
using ::dcs::testing::Fig1G2;
using ::dcs::testing::MakeGraph;

TEST(DifferenceGraphTest, Fig1Example) {
  auto gd = BuildDifferenceGraph(Fig1G1(), Fig1G2());
  ASSERT_TRUE(gd.ok());
  EXPECT_EQ(gd->NumVertices(), 5u);
  EXPECT_EQ(gd->NumEdges(), 6u);
  EXPECT_DOUBLE_EQ(gd->EdgeWeight(0, 1), 4.0);   // only in G2
  EXPECT_DOUBLE_EQ(gd->EdgeWeight(1, 2), 3.0);
  EXPECT_DOUBLE_EQ(gd->EdgeWeight(0, 3), 1.0);
  EXPECT_DOUBLE_EQ(gd->EdgeWeight(2, 3), -2.0);
  EXPECT_DOUBLE_EQ(gd->EdgeWeight(3, 4), 4.0);
  EXPECT_DOUBLE_EQ(gd->EdgeWeight(0, 4), -1.0);
}

TEST(DifferenceGraphTest, PositivePartOfFig1) {
  auto gd = BuildDifferenceGraph(Fig1G1(), Fig1G2());
  ASSERT_TRUE(gd.ok());
  Graph gd_plus = gd->PositivePart();
  EXPECT_EQ(gd_plus.NumEdges(), 4u);
  EXPECT_FALSE(gd_plus.HasEdge(2, 3));
  EXPECT_FALSE(gd_plus.HasEdge(0, 4));
}

TEST(DifferenceGraphTest, EqualGraphsYieldEmptyDifference) {
  Graph g = MakeGraph(4, {{0, 1, 2.0}, {2, 3, 1.5}});
  auto gd = BuildDifferenceGraph(g, g);
  ASSERT_TRUE(gd.ok());
  EXPECT_EQ(gd->NumEdges(), 0u);
}

TEST(DifferenceGraphTest, EdgeOnlyInG1IsNegative) {
  Graph g1 = MakeGraph(3, {{0, 1, 5.0}});
  Graph g2(3);
  auto gd = BuildDifferenceGraph(g1, g2);
  ASSERT_TRUE(gd.ok());
  EXPECT_DOUBLE_EQ(gd->EdgeWeight(0, 1), -5.0);
}

TEST(DifferenceGraphTest, AlphaScalesG1) {
  Graph g1 = MakeGraph(3, {{0, 1, 2.0}});
  Graph g2 = MakeGraph(3, {{0, 1, 5.0}});
  auto gd = BuildDifferenceGraph(g1, g2, /*alpha=*/2.0);
  ASSERT_TRUE(gd.ok());
  EXPECT_DOUBLE_EQ(gd->EdgeWeight(0, 1), 1.0);  // 5 − 2·2
}

TEST(DifferenceGraphTest, AlphaExactCancellationDropsEdge) {
  Graph g1 = MakeGraph(3, {{0, 1, 2.0}});
  Graph g2 = MakeGraph(3, {{0, 1, 5.0}});
  auto gd = BuildDifferenceGraph(g1, g2, /*alpha=*/2.5);
  ASSERT_TRUE(gd.ok());
  EXPECT_EQ(gd->NumEdges(), 0u);
}

TEST(DifferenceGraphTest, MismatchedVertexCountsRejected) {
  EXPECT_FALSE(BuildDifferenceGraph(Graph(3), Graph(4)).ok());
}

TEST(DifferenceGraphTest, BadAlphaRejected) {
  Graph g(3);
  EXPECT_FALSE(BuildDifferenceGraph(g, g, 0.0).ok());
  EXPECT_FALSE(BuildDifferenceGraph(g, g, -1.0).ok());
  EXPECT_FALSE(BuildDifferenceGraph(g, g, std::nan("")).ok());
}

TEST(DifferenceGraphTest, DisjointEdgeSetsMergeCleanly) {
  Graph g1 = MakeGraph(4, {{0, 1, 1.0}});
  Graph g2 = MakeGraph(4, {{2, 3, 2.0}});
  auto gd = BuildDifferenceGraph(g1, g2);
  ASSERT_TRUE(gd.ok());
  EXPECT_EQ(gd->NumEdges(), 2u);
  EXPECT_DOUBLE_EQ(gd->EdgeWeight(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(gd->EdgeWeight(2, 3), 2.0);
}

TEST(DifferenceGraphTest, NegationFlipsEmergingIntoDisappearing) {
  auto emerging = BuildDifferenceGraph(Fig1G1(), Fig1G2());
  auto disappearing = BuildDifferenceGraph(Fig1G2(), Fig1G1());
  ASSERT_TRUE(emerging.ok());
  ASSERT_TRUE(disappearing.ok());
  Graph negated = emerging->Negated();
  for (VertexId u = 0; u < negated.NumVertices(); ++u) {
    for (const Neighbor& nb : negated.NeighborsOf(u)) {
      EXPECT_DOUBLE_EQ(disappearing->EdgeWeight(u, nb.to), nb.weight);
    }
  }
}

// ---- DiscretizeSpec ----

TEST(DiscretizeSpecTest, DefaultMappingMatchesPaper) {
  DiscretizeSpec spec;  // DBLP thresholds: 5 / 2 / −4, levels 2 / 1
  EXPECT_DOUBLE_EQ(spec.Map(7.0), 2.0);    // ≥ 5
  EXPECT_DOUBLE_EQ(spec.Map(5.0), 2.0);
  EXPECT_DOUBLE_EQ(spec.Map(3.0), 1.0);    // [2, 5)
  EXPECT_DOUBLE_EQ(spec.Map(2.0), 1.0);
  EXPECT_DOUBLE_EQ(spec.Map(1.0), 0.0);    // (0, 2): dropped
  EXPECT_DOUBLE_EQ(spec.Map(0.0), 0.0);
  EXPECT_DOUBLE_EQ(spec.Map(-1.0), -1.0);  // (−4, 0)
  EXPECT_DOUBLE_EQ(spec.Map(-3.9), -1.0);
  EXPECT_DOUBLE_EQ(spec.Map(-4.0), -2.0);  // ≤ −4
  EXPECT_DOUBLE_EQ(spec.Map(-100.0), -2.0);
}

// Exhaustive boundary audit of the threshold chain: every comparison in Map
// is inclusive-on-the-threshold (>= strong_pos, >= weak_pos, <= strong_neg),
// the open interval (0, weak_pos) and the exact zeros — including -0.0 —
// map to +0.0, and one-ulp perturbations land on the correct side. The CD
// inner loop and the vectorized discretize kernel both mirror this chain,
// so these are the bits they must reproduce.
TEST(DiscretizeSpecTest, MapThresholdBoundariesAreInclusive) {
  const DiscretizeSpec spec;  // strong_pos=5, weak_pos=2, strong_neg=-4

  // Exactly on each threshold.
  EXPECT_EQ(spec.Map(spec.weak_pos), spec.level_one);
  EXPECT_EQ(spec.Map(spec.strong_pos), spec.level_two);
  EXPECT_EQ(spec.Map(spec.strong_neg), -spec.level_two);

  // One ulp below / above each threshold.
  EXPECT_EQ(spec.Map(std::nextafter(spec.weak_pos, 0.0)), 0.0);
  EXPECT_EQ(spec.Map(std::nextafter(spec.weak_pos, 1e300)), spec.level_one);
  EXPECT_EQ(spec.Map(std::nextafter(spec.strong_pos, 0.0)), spec.level_one);
  EXPECT_EQ(spec.Map(std::nextafter(spec.strong_pos, 1e300)),
            spec.level_two);
  EXPECT_EQ(spec.Map(std::nextafter(spec.strong_neg, 0.0)), -spec.level_one);
  EXPECT_EQ(spec.Map(std::nextafter(spec.strong_neg, -1e300)),
            -spec.level_two);

  // Zeros: both signed zeros map to +0.0 (−0.0 is not < 0.0), so a "zero
  // difference" can never survive discretization with a sign bit attached.
  EXPECT_EQ(spec.Map(0.0), 0.0);
  EXPECT_EQ(spec.Map(-0.0), 0.0);
  EXPECT_FALSE(std::signbit(spec.Map(-0.0)));
  EXPECT_FALSE(std::signbit(spec.Map(0.0)));

  // Denormal magnitudes sit strictly inside the open intervals.
  EXPECT_EQ(spec.Map(5e-324), 0.0);
  EXPECT_EQ(spec.Map(-5e-324), -spec.level_one);

  // A spec with weak_pos == strong_pos classifies the shared threshold as
  // strong (the >= strong_pos test runs first).
  DiscretizeSpec merged;
  merged.strong_pos = 2.0;
  merged.weak_pos = 2.0;
  ASSERT_TRUE(merged.Validate().ok());
  EXPECT_EQ(merged.Map(2.0), merged.level_two);
  EXPECT_EQ(merged.Map(std::nextafter(2.0, 0.0)), 0.0);
}

TEST(DiscretizeSpecTest, ValidationRejectsBadThresholds) {
  DiscretizeSpec spec;
  spec.strong_neg = 1.0;
  EXPECT_FALSE(spec.Validate().ok());
  spec = DiscretizeSpec{};
  spec.weak_pos = 10.0;  // > strong_pos
  EXPECT_FALSE(spec.Validate().ok());
  spec = DiscretizeSpec{};
  spec.level_one = 0.0;
  EXPECT_FALSE(spec.Validate().ok());
  spec = DiscretizeSpec{};
  spec.level_two = 0.5;  // < level_one
  EXPECT_FALSE(spec.Validate().ok());
  EXPECT_TRUE(DiscretizeSpec{}.Validate().ok());
}

TEST(DiscretizeSpecTest, DiscretizeWeightsDropsWeakPositives) {
  Graph gd = MakeGraph(5, {{0, 1, 6.0},    // -> +2
                           {1, 2, 3.0},    // -> +1
                           {2, 3, 1.0},    // -> dropped
                           {3, 4, -2.0},   // -> −1
                           {0, 4, -9.0}}); // -> −2
  auto discrete = DiscretizeWeights(gd, DiscretizeSpec{});
  ASSERT_TRUE(discrete.ok());
  EXPECT_EQ(discrete->NumEdges(), 4u);
  EXPECT_DOUBLE_EQ(discrete->EdgeWeight(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(discrete->EdgeWeight(1, 2), 1.0);
  EXPECT_FALSE(discrete->HasEdge(2, 3));
  EXPECT_DOUBLE_EQ(discrete->EdgeWeight(3, 4), -1.0);
  EXPECT_DOUBLE_EQ(discrete->EdgeWeight(0, 4), -2.0);
}

TEST(DiscretizeSpecTest, DiscretizeRejectsInvalidSpec) {
  Graph gd = MakeGraph(2, {{0, 1, 1.0}});
  DiscretizeSpec spec;
  spec.strong_neg = 5.0;
  EXPECT_FALSE(DiscretizeWeights(gd, spec).ok());
}

}  // namespace
}  // namespace dcs
