#include "graph/io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "gen/random_graphs.h"
#include "test_util.h"
#include "util/rng.h"

namespace dcs {
namespace {

using ::dcs::testing::MakeGraph;

TEST(IoTest, RoundTripThroughStream) {
  Graph g = MakeGraph(5, {{0, 1, 1.5}, {1, 2, -2.25}, {3, 4, 0.125}});
  std::stringstream buffer;
  ASSERT_TRUE(WriteEdgeList(g, buffer).ok());
  auto loaded = ReadEdgeList(buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumVertices(), 5u);
  EXPECT_EQ(loaded->NumEdges(), 3u);
  EXPECT_DOUBLE_EQ(loaded->EdgeWeight(0, 1), 1.5);
  EXPECT_DOUBLE_EQ(loaded->EdgeWeight(1, 2), -2.25);
  EXPECT_DOUBLE_EQ(loaded->EdgeWeight(3, 4), 0.125);
}

TEST(IoTest, RoundTripPreservesExactDoubles) {
  Rng rng(77);
  auto g = RandomSignedGraph(30, 100, 0.5, 0.1, 9.0, &rng);
  ASSERT_TRUE(g.ok());
  std::stringstream buffer;
  ASSERT_TRUE(WriteEdgeList(*g, buffer).ok());
  auto loaded = ReadEdgeList(buffer);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->NumEdges(), g->NumEdges());
  for (const Edge& e : g->UndirectedEdges()) {
    EXPECT_DOUBLE_EQ(loaded->EdgeWeight(e.u, e.v), e.weight);
  }
}

TEST(IoTest, CommentsAndBlankLinesSkipped) {
  std::stringstream in(
      "# a comment\n"
      "\n"
      "3\n"
      "# another comment\n"
      "0 1 2.0\n"
      "\n"
      "1 2 -1.0\n");
  auto g = ReadEdgeList(in);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumVertices(), 3u);
  EXPECT_EQ(g->NumEdges(), 2u);
}

TEST(IoTest, DuplicateEdgesAccumulate) {
  std::stringstream in("2\n0 1 1.0\n1 0 2.0\n");
  auto g = ReadEdgeList(in);
  ASSERT_TRUE(g.ok());
  EXPECT_DOUBLE_EQ(g->EdgeWeight(0, 1), 3.0);
}

TEST(IoTest, MissingHeaderRejected) {
  std::stringstream in("# only comments\n");
  auto g = ReadEdgeList(in);
  ASSERT_FALSE(g.ok());
  EXPECT_TRUE(g.status().IsIoError());
}

TEST(IoTest, NegativeVertexCountRejected) {
  std::stringstream in("-3\n");
  EXPECT_FALSE(ReadEdgeList(in).ok());
}

TEST(IoTest, MalformedEdgeRejected) {
  std::stringstream in("3\n0 1\n");
  auto g = ReadEdgeList(in);
  ASSERT_FALSE(g.ok());
  EXPECT_NE(g.status().message().find("line 2"), std::string::npos);
}

TEST(IoTest, TrailingTokensRejected) {
  std::stringstream in("3\n0 1 2.0 extra\n");
  EXPECT_FALSE(ReadEdgeList(in).ok());
}

TEST(IoTest, OutOfRangeEndpointRejected) {
  std::stringstream in("3\n0 7 1.0\n");
  EXPECT_FALSE(ReadEdgeList(in).ok());
}

TEST(IoTest, SelfLoopRejected) {
  std::stringstream in("3\n1 1 1.0\n");
  auto g = ReadEdgeList(in);
  ASSERT_FALSE(g.ok());
  EXPECT_NE(g.status().message().find("self-loop"), std::string::npos);
}

TEST(IoTest, NonNumericWeightRejected) {
  std::stringstream in("3\n0 1 heavy\n");
  EXPECT_FALSE(ReadEdgeList(in).ok());
}

TEST(IoTest, FileRoundTrip) {
  Graph g = MakeGraph(3, {{0, 2, 4.5}});
  const std::string path = ::testing::TempDir() + "/dcs_io_test_graph.txt";
  ASSERT_TRUE(WriteEdgeListFile(g, path).ok());
  auto loaded = ReadEdgeListFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ(loaded->EdgeWeight(0, 2), 4.5);
}

TEST(IoTest, MissingFileRejected) {
  auto g = ReadEdgeListFile("/nonexistent/path/graph.txt");
  ASSERT_FALSE(g.ok());
  EXPECT_TRUE(g.status().IsIoError());
}

TEST(IoTest, UnwritablePathRejected) {
  Graph g(1);
  EXPECT_FALSE(WriteEdgeListFile(g, "/nonexistent/dir/graph.txt").ok());
}

TEST(IoTest, EmptyGraphRoundTrip) {
  std::stringstream buffer;
  ASSERT_TRUE(WriteEdgeList(Graph(4), buffer).ok());
  auto loaded = ReadEdgeList(buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumVertices(), 4u);
  EXPECT_EQ(loaded->NumEdges(), 0u);
}

}  // namespace
}  // namespace dcs
