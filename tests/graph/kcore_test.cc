#include "graph/kcore.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "gen/random_graphs.h"
#include "test_util.h"
#include "util/rng.h"

namespace dcs {
namespace {

using ::dcs::testing::MakeGraph;

// Naive core numbers: repeatedly strip vertices of degree < k.
std::vector<uint32_t> NaiveCoreNumbers(const Graph& g) {
  const VertexId n = g.NumVertices();
  std::vector<uint32_t> core(n, 0);
  for (uint32_t k = 1;; ++k) {
    std::vector<char> alive(n, 1);
    bool changed = true;
    while (changed) {
      changed = false;
      for (VertexId v = 0; v < n; ++v) {
        if (!alive[v]) continue;
        uint32_t deg = 0;
        for (const Neighbor& nb : g.NeighborsOf(v)) deg += alive[nb.to];
        if (deg < k) {
          alive[v] = 0;
          changed = true;
        }
      }
    }
    bool any_alive = false;
    for (VertexId v = 0; v < n; ++v) {
      if (alive[v]) {
        core[v] = k;
        any_alive = true;
      }
    }
    if (!any_alive) break;
  }
  return core;
}

TEST(CoreNumbersTest, EmptyAndIsolated) {
  EXPECT_TRUE(CoreNumbers(Graph(0)).empty());
  auto core = CoreNumbers(Graph(4));
  EXPECT_EQ(core, (std::vector<uint32_t>{0, 0, 0, 0}));
}

TEST(CoreNumbersTest, PathIsOneCore) {
  Graph g = MakeGraph(4, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}});
  auto core = CoreNumbers(g);
  EXPECT_EQ(core, (std::vector<uint32_t>{1, 1, 1, 1}));
}

TEST(CoreNumbersTest, TriangleIsTwoCore) {
  Graph g = MakeGraph(3, {{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 1.0}});
  auto core = CoreNumbers(g);
  EXPECT_EQ(core, (std::vector<uint32_t>{2, 2, 2}));
}

TEST(CoreNumbersTest, CliqueWithPendant) {
  // K4 on {0,1,2,3} plus pendant 4 attached to 0.
  Graph g = MakeGraph(5, {{0, 1, 1.0}, {0, 2, 1.0}, {0, 3, 1.0},
                          {1, 2, 1.0}, {1, 3, 1.0}, {2, 3, 1.0},
                          {0, 4, 1.0}});
  auto core = CoreNumbers(g);
  EXPECT_EQ(core[0], 3u);
  EXPECT_EQ(core[1], 3u);
  EXPECT_EQ(core[2], 3u);
  EXPECT_EQ(core[3], 3u);
  EXPECT_EQ(core[4], 1u);
}

TEST(CoreNumbersTest, WeightsAreIgnored) {
  Graph heavy = MakeGraph(3, {{0, 1, 100.0}, {1, 2, 0.001}, {0, 2, -5.0}});
  auto core = CoreNumbers(heavy);
  EXPECT_EQ(core, (std::vector<uint32_t>{2, 2, 2}));
}

TEST(DegeneracyTest, CliqueDegeneracy) {
  GraphBuilder builder(6);
  std::vector<VertexId> members{0, 1, 2, 3, 4, 5};
  ASSERT_TRUE(AddClique(&builder, members, 1.0).ok());
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(Degeneracy(*g), 5u);
}

TEST(DegeneracyTest, EmptyGraphIsZero) {
  EXPECT_EQ(Degeneracy(Graph(5)), 0u);
}

class KcorePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KcorePropertyTest, MatchesNaiveOnRandomGraphs) {
  Rng rng(GetParam());
  const VertexId n = 20 + static_cast<VertexId>(rng.NextBounded(40));
  auto g = ErdosRenyi(n, 0.12, &rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(CoreNumbers(*g), NaiveCoreNumbers(*g));
}

TEST_P(KcorePropertyTest, CoreNumberUpperBoundsCliqueMembership) {
  // Any planted (k+1)-clique forces core >= k on its members.
  Rng rng(GetParam() + 1000);
  GraphBuilder builder(50);
  auto background = ErdosRenyi(50, 0.05, &rng);
  ASSERT_TRUE(background.ok());
  for (const Edge& e : background->UndirectedEdges()) {
    ASSERT_TRUE(builder.AddEdge(e.u, e.v, 1.0).ok());
  }
  std::vector<VertexId> clique{3, 9, 17, 26, 41};
  ASSERT_TRUE(AddClique(&builder, clique, 1.0).ok());
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  auto core = CoreNumbers(*g);
  for (VertexId v : clique) EXPECT_GE(core[v], 4u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KcorePropertyTest,
                         ::testing::Values(7, 14, 21, 28, 35, 42));

}  // namespace
}  // namespace dcs
