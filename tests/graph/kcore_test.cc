#include "graph/kcore.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>
#include <vector>

#include "gen/random_graphs.h"
#include "test_util.h"
#include "util/rng.h"

namespace dcs {
namespace {

using ::dcs::testing::MakeGraph;

// Naive core numbers: repeatedly strip vertices of degree < k.
std::vector<uint32_t> NaiveCoreNumbers(const Graph& g) {
  const VertexId n = g.NumVertices();
  std::vector<uint32_t> core(n, 0);
  for (uint32_t k = 1;; ++k) {
    std::vector<char> alive(n, 1);
    bool changed = true;
    while (changed) {
      changed = false;
      for (VertexId v = 0; v < n; ++v) {
        if (!alive[v]) continue;
        uint32_t deg = 0;
        for (const Neighbor& nb : g.NeighborsOf(v)) deg += alive[nb.to];
        if (deg < k) {
          alive[v] = 0;
          changed = true;
        }
      }
    }
    bool any_alive = false;
    for (VertexId v = 0; v < n; ++v) {
      if (alive[v]) {
        core[v] = k;
        any_alive = true;
      }
    }
    if (!any_alive) break;
  }
  return core;
}

TEST(CoreNumbersTest, EmptyAndIsolated) {
  EXPECT_TRUE(CoreNumbers(Graph(0)).empty());
  auto core = CoreNumbers(Graph(4));
  EXPECT_EQ(core, (std::vector<uint32_t>{0, 0, 0, 0}));
}

TEST(CoreNumbersTest, PathIsOneCore) {
  Graph g = MakeGraph(4, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}});
  auto core = CoreNumbers(g);
  EXPECT_EQ(core, (std::vector<uint32_t>{1, 1, 1, 1}));
}

TEST(CoreNumbersTest, TriangleIsTwoCore) {
  Graph g = MakeGraph(3, {{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 1.0}});
  auto core = CoreNumbers(g);
  EXPECT_EQ(core, (std::vector<uint32_t>{2, 2, 2}));
}

TEST(CoreNumbersTest, CliqueWithPendant) {
  // K4 on {0,1,2,3} plus pendant 4 attached to 0.
  Graph g = MakeGraph(5, {{0, 1, 1.0}, {0, 2, 1.0}, {0, 3, 1.0},
                          {1, 2, 1.0}, {1, 3, 1.0}, {2, 3, 1.0},
                          {0, 4, 1.0}});
  auto core = CoreNumbers(g);
  EXPECT_EQ(core[0], 3u);
  EXPECT_EQ(core[1], 3u);
  EXPECT_EQ(core[2], 3u);
  EXPECT_EQ(core[3], 3u);
  EXPECT_EQ(core[4], 1u);
}

TEST(CoreNumbersTest, WeightsAreIgnored) {
  Graph heavy = MakeGraph(3, {{0, 1, 100.0}, {1, 2, 0.001}, {0, 2, -5.0}});
  auto core = CoreNumbers(heavy);
  EXPECT_EQ(core, (std::vector<uint32_t>{2, 2, 2}));
}

TEST(DegeneracyTest, CliqueDegeneracy) {
  GraphBuilder builder(6);
  std::vector<VertexId> members{0, 1, 2, 3, 4, 5};
  ASSERT_TRUE(AddClique(&builder, members, 1.0).ok());
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(Degeneracy(*g), 5u);
}

TEST(DegeneracyTest, EmptyGraphIsZero) {
  EXPECT_EQ(Degeneracy(Graph(5)), 0u);
}

class KcorePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KcorePropertyTest, MatchesNaiveOnRandomGraphs) {
  Rng rng(GetParam());
  const VertexId n = 20 + static_cast<VertexId>(rng.NextBounded(40));
  auto g = ErdosRenyi(n, 0.12, &rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(CoreNumbers(*g), NaiveCoreNumbers(*g));
}

TEST_P(KcorePropertyTest, CoreNumberUpperBoundsCliqueMembership) {
  // Any planted (k+1)-clique forces core >= k on its members.
  Rng rng(GetParam() + 1000);
  GraphBuilder builder(50);
  auto background = ErdosRenyi(50, 0.05, &rng);
  ASSERT_TRUE(background.ok());
  for (const Edge& e : background->UndirectedEdges()) {
    ASSERT_TRUE(builder.AddEdge(e.u, e.v, 1.0).ok());
  }
  std::vector<VertexId> clique{3, 9, 17, 26, 41};
  ASSERT_TRUE(AddClique(&builder, clique, 1.0).ok());
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  auto core = CoreNumbers(*g);
  for (VertexId v : clique) EXPECT_GE(core[v], 4u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KcorePropertyTest,
                         ::testing::Values(7, 14, 21, 28, 35, 42));

// --- incremental maintenance (streaming update path) ----------------------

// Builds a graph from a (pair -> present) edge set with unit weights.
Graph GraphFromPairs(VertexId n, const std::set<uint64_t>& pairs) {
  GraphBuilder builder(n);
  for (const uint64_t key : pairs) {
    builder.AddEdgeUnchecked(static_cast<VertexId>(key >> 32),
                             static_cast<VertexId>(key & 0xFFFFFFFFull), 1.0);
  }
  auto graph = builder.Build();
  DCS_CHECK(graph.ok());
  return std::move(graph).value();
}

TEST(KcoreIncrementalTest, RandomSingleEdgeStreamMatchesRecompute) {
  Rng rng(515);
  const VertexId n = 40;
  std::set<uint64_t> pairs;
  Graph graph(n);
  std::vector<uint32_t> cores(n, 0);
  const std::unordered_set<uint64_t> no_hidden;
  for (int step = 0; step < 400; ++step) {
    const VertexId u = static_cast<VertexId>(rng.NextBounded(n));
    VertexId v = static_cast<VertexId>(rng.NextBounded(n - 1));
    if (v >= u) ++v;
    const uint64_t key = PackVertexPair(u, v);
    const std::vector<uint32_t> before = cores;
    std::vector<VertexId> changed;
    if (pairs.count(key) == 0) {
      pairs.insert(key);
      graph = GraphFromPairs(n, pairs);  // graph WITH the edge
      CoreNumbersAfterInsert(graph, u, v, no_hidden, &cores, &changed);
    } else {
      pairs.erase(key);
      graph = GraphFromPairs(n, pairs);  // graph WITHOUT the edge
      CoreNumbersAfterRemove(graph, u, v, no_hidden, &cores, &changed);
    }
    const std::vector<uint32_t> expected = CoreNumbers(graph);
    ASSERT_EQ(cores, expected) << "diverged at step " << step;
    // `changed` must name exactly the vertices the step moved (by the ±1
    // theorem every move is reported once).
    std::set<VertexId> reported(changed.begin(), changed.end());
    std::set<VertexId> moved;
    for (VertexId x = 0; x < n; ++x) {
      if (before[x] != expected[x]) moved.insert(x);
    }
    ASSERT_EQ(reported, moved) << "changed-set mismatch at step " << step;
  }
}

TEST(KcoreIncrementalTest, BatchReplayThroughHiddenSetsMatchesRecompute) {
  // The streaming pipeline holds only the pre- and post-batch CSR
  // snapshots; removals replay against the old graph and insertions against
  // the new one, with the not-yet-applied edges hidden — exactly how
  // ApplySmartInitBoundsDelta drives these functions.
  Rng rng(8282);
  const VertexId n = 50;
  for (int round = 0; round < 30; ++round) {
    auto base = ErdosRenyi(n, 0.08, &rng);
    ASSERT_TRUE(base.ok());
    std::set<uint64_t> old_pairs;
    for (const Edge& e : base->UndirectedEdges()) {
      old_pairs.insert(PackVertexPair(e.u, e.v));
    }
    // A batch of removals (sampled from the graph) and insertions (sampled
    // from its complement).
    std::vector<uint64_t> removals, insertions;
    std::set<uint64_t> new_pairs = old_pairs;
    const std::vector<uint64_t> old_list(old_pairs.begin(), old_pairs.end());
    for (int i = 0; i < 4 && !old_list.empty(); ++i) {
      const uint64_t key = old_list[rng.NextBounded(old_list.size())];
      if (new_pairs.erase(key) != 0) removals.push_back(key);
    }
    for (int i = 0; i < 4; ++i) {
      const VertexId u = static_cast<VertexId>(rng.NextBounded(n));
      VertexId v = static_cast<VertexId>(rng.NextBounded(n - 1));
      if (v >= u) ++v;
      const uint64_t key = PackVertexPair(u, v);
      if (new_pairs.insert(key).second && old_pairs.count(key) == 0) {
        insertions.push_back(key);
      }
    }
    const Graph old_graph = GraphFromPairs(n, old_pairs);
    const Graph new_graph = GraphFromPairs(n, new_pairs);

    std::vector<uint32_t> cores = CoreNumbers(old_graph);
    std::vector<VertexId> changed;
    std::unordered_set<uint64_t> hidden;
    for (const uint64_t key : removals) {
      hidden.insert(key);
      CoreNumbersAfterRemove(old_graph, static_cast<VertexId>(key >> 32),
                             static_cast<VertexId>(key & 0xFFFFFFFFull),
                             hidden, &cores, &changed);
    }
    hidden.clear();
    hidden.insert(insertions.begin(), insertions.end());
    for (const uint64_t key : insertions) {
      hidden.erase(key);
      CoreNumbersAfterInsert(new_graph, static_cast<VertexId>(key >> 32),
                             static_cast<VertexId>(key & 0xFFFFFFFFull),
                             hidden, &cores, &changed);
    }
    EXPECT_EQ(cores, CoreNumbers(new_graph)) << "round " << round;
  }
}

}  // namespace
}  // namespace dcs
