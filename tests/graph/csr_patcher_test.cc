// CsrPatcher tests: spliced graphs (and their incrementally maintained
// content accumulators) must be bit-identical to a from-scratch
// GraphBuilder rebuild on randomized batches and on the structural edge
// cases (row growth/shrink/emptying, first/last rows, drop-absent no-ops).

#include "graph/csr_patcher.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <bit>
#include <map>
#include <utility>
#include <vector>

#include "gen/random_graphs.h"
#include "test_util.h"
#include "util/rng.h"

namespace dcs {
namespace {

using ::dcs::testing::MakeGraph;

// Rebuilds the expected graph from an explicit (pair -> weight) map through
// GraphBuilder — the reference the patcher must match bit for bit.
Graph RebuildFromMap(VertexId n, const std::map<uint64_t, double>& edges,
                     double zero_eps) {
  GraphBuilder builder(n);
  for (const auto& [key, weight] : edges) {
    builder.AddEdgeUnchecked(static_cast<VertexId>(key >> 32),
                             static_cast<VertexId>(key & 0xFFFFFFFFull),
                             weight);
  }
  Result<Graph> graph = builder.Build(zero_eps);
  DCS_CHECK(graph.ok());
  return std::move(graph).value();
}

// Structural + bitwise-weight equality of two graphs.
void ExpectBitIdentical(const Graph& actual, const Graph& expected) {
  ASSERT_EQ(actual.NumVertices(), expected.NumVertices());
  ASSERT_EQ(actual.NumEdges(), expected.NumEdges());
  const std::vector<Edge> a = actual.UndirectedEdges();
  const std::vector<Edge> b = expected.UndirectedEdges();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].u, b[i].u);
    EXPECT_EQ(a[i].v, b[i].v);
    EXPECT_EQ(std::bit_cast<uint64_t>(a[i].weight),
              std::bit_cast<uint64_t>(b[i].weight))
        << "weight bits diverge on (" << a[i].u << "," << a[i].v << ")";
  }
  EXPECT_EQ(actual.ContentFingerprint(), expected.ContentFingerprint());
}

TEST(CsrPatcherTest, EmptyBatchReturnsTheBaseUnchanged) {
  const Graph base = MakeGraph(4, {{0, 1, 1.0}, {2, 3, -2.0}});
  uint64_t accumulator = base.ContentAccumulator();
  const Graph patched = CsrPatcher::Apply(base, {}, 1e-12, &accumulator);
  ExpectBitIdentical(patched, base);
  EXPECT_EQ(accumulator, base.ContentAccumulator());
}

TEST(CsrPatcherTest, InsertOverwriteAndDropAcrossRowBoundaries) {
  // Touches the first and last rows, grows a row, empties a row, drops an
  // absent pair (no-op), and overwrites in place — all in one batch.
  const Graph base = MakeGraph(6, {{0, 1, 1.0},
                                   {0, 5, 2.0},
                                   {1, 2, 3.0},
                                   {4, 5, -1.5}});
  const std::vector<EdgePatch> patches = {
      {0, 1, 0.0},    // drop
      {0, 2, 7.0},    // insert (grows row 0 and row 2)
      {1, 2, -4.0},   // overwrite with a sign flip
      {2, 3, 0.0},    // drop of an absent pair: no-op
      {4, 5, 0.0},    // drop: empties rows 4 and 5 on that side
  };
  std::map<uint64_t, double> expected_edges = {
      {PackVertexPair(0, 5), 2.0},
      {PackVertexPair(0, 2), 7.0},
      {PackVertexPair(1, 2), -4.0},
  };
  uint64_t accumulator = base.ContentAccumulator();
  const Graph patched = CsrPatcher::Apply(base, patches, 1e-12, &accumulator);
  const Graph expected = RebuildFromMap(6, expected_edges, 1e-12);
  ExpectBitIdentical(patched, expected);
  EXPECT_EQ(accumulator, expected.ContentAccumulator());
}

TEST(CsrPatcherTest, InsertIntoAnEmptyGraph) {
  const Graph base(3);
  const std::vector<EdgePatch> patches = {{0, 2, 1.25}};
  uint64_t accumulator = base.ContentAccumulator();
  const Graph patched = CsrPatcher::Apply(base, patches, 1e-12, &accumulator);
  const Graph expected = MakeGraph(3, {{0, 2, 1.25}});
  ExpectBitIdentical(patched, expected);
  EXPECT_EQ(accumulator, expected.ContentAccumulator());
}

TEST(CsrPatcherTest, ZeroEpsGovernsTheDropRule) {
  const Graph base = MakeGraph(2, {{0, 1, 1.0}});
  // |w| <= eps drops; just above survives.
  const Graph dropped =
      CsrPatcher::Apply(base, {{EdgePatch{0, 1, 0.5}}}, /*zero_eps=*/0.5);
  EXPECT_EQ(dropped.NumEdges(), 0u);
  const Graph kept =
      CsrPatcher::Apply(base, {{EdgePatch{0, 1, 0.500001}}}, /*zero_eps=*/0.5);
  EXPECT_EQ(kept.NumEdges(), 1u);
}

TEST(CsrPatcherTest, RandomizedBatchesMatchFullRebuilds) {
  Rng rng(20260729);
  for (int round = 0; round < 20; ++round) {
    const VertexId n = static_cast<VertexId>(20 + rng.NextBounded(60));
    Result<Graph> start =
        ErdosRenyiWeighted(n, 0.08, -2.0, 3.0, &rng);
    ASSERT_TRUE(start.ok());
    Graph graph = *start;
    std::map<uint64_t, double> edges;
    for (const Edge& e : graph.UndirectedEdges()) {
      edges[PackVertexPair(e.u, e.v)] = e.weight;
    }
    uint64_t accumulator = graph.ContentAccumulator();

    for (int batch = 0; batch < 6; ++batch) {
      const size_t batch_size = 1 + rng.NextBounded(10);
      std::map<uint64_t, double> assignments;
      for (size_t i = 0; i < batch_size; ++i) {
        const VertexId u = static_cast<VertexId>(rng.NextBounded(n));
        VertexId v = static_cast<VertexId>(rng.NextBounded(n - 1));
        if (v >= u) ++v;
        const uint64_t key = PackVertexPair(u, v);
        // Mix of inserts/overwrites, drops and sign flips.
        double weight;
        const uint64_t kind = rng.NextBounded(4);
        if (kind == 0) {
          weight = 0.0;  // drop (possibly of an absent pair)
        } else if (kind == 1 && edges.count(key) != 0) {
          weight = -edges[key];  // sign flip
        } else {
          weight = rng.Uniform(-3.0, 3.0);
        }
        assignments[key] = weight;
      }
      std::vector<EdgePatch> patches;
      for (const auto& [key, weight] : assignments) {
        patches.push_back(EdgePatch{static_cast<VertexId>(key >> 32),
                                    static_cast<VertexId>(key & 0xFFFFFFFFull),
                                    weight});
        if (std::fabs(weight) > 1e-12) {
          edges[key] = weight;
        } else {
          edges.erase(key);
        }
      }
      graph = CsrPatcher::Apply(graph, patches, 1e-12, &accumulator);
      const Graph expected = RebuildFromMap(n, edges, 1e-12);
      ExpectBitIdentical(graph, expected);
      ASSERT_EQ(accumulator, expected.ContentAccumulator())
          << "incremental accumulator diverged in round " << round;
    }
  }
}

}  // namespace
}  // namespace dcs
