// Graph serialization tests: bit-identical round trips (the precondition of
// the artifact store's determinism contract) and defensive parsing — no
// byte pattern may construct a Graph that violates the class invariants.

#include "graph/serialize.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "test_util.h"

namespace dcs {
namespace {

using ::dcs::testing::Fig1G1;
using ::dcs::testing::Fig1G2;
using ::dcs::testing::MakeGraph;

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

Graph RoundTrip(const Graph& graph) {
  std::string encoded;
  AppendGraphBytes(graph, &encoded);
  EXPECT_EQ(encoded.size(), GraphByteSize(graph));
  const std::vector<uint8_t> bytes = Bytes(encoded);
  size_t cursor = 0;
  Result<Graph> parsed = ParseGraphBytes(bytes, &cursor);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(cursor, bytes.size());
  return std::move(parsed).value();
}

TEST(GraphSerializeTest, RoundTripIsBitIdentical) {
  for (const Graph& graph :
       {Fig1G1(), Fig1G2(), Graph(5),
        MakeGraph(4, {{0, 1, 0.1 + 0.2},  // a value with an inexact binary
                      {1, 2, -1e-300},    // representation, a denormal-range
                      {0, 3, 12345.678901234567}})}) {
    const Graph back = RoundTrip(graph);
    EXPECT_EQ(back.NumVertices(), graph.NumVertices());
    EXPECT_EQ(back.NumEdges(), graph.NumEdges());
    EXPECT_EQ(back.ContentFingerprint(), graph.ContentFingerprint());
    EXPECT_EQ(back.UndirectedEdges(), graph.UndirectedEdges());
  }
}

TEST(GraphSerializeTest, ConsecutiveGraphsShareOneBuffer) {
  std::string encoded;
  AppendGraphBytes(Fig1G1(), &encoded);
  AppendGraphBytes(Fig1G2(), &encoded);
  const std::vector<uint8_t> bytes = Bytes(encoded);
  size_t cursor = 0;
  Result<Graph> first = ParseGraphBytes(bytes, &cursor);
  ASSERT_TRUE(first.ok());
  Result<Graph> second = ParseGraphBytes(bytes, &cursor);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(cursor, bytes.size());
  EXPECT_EQ(first->ContentFingerprint(), Fig1G1().ContentFingerprint());
  EXPECT_EQ(second->ContentFingerprint(), Fig1G2().ContentFingerprint());
}

TEST(GraphSerializeTest, RejectsTruncation) {
  std::string encoded;
  AppendGraphBytes(Fig1G1(), &encoded);
  for (const size_t keep : {size_t{0}, size_t{3}, size_t{11},
                            encoded.size() / 2, encoded.size() - 1}) {
    const std::vector<uint8_t> bytes =
        Bytes(std::string(encoded.data(), keep));
    size_t cursor = 0;
    EXPECT_FALSE(ParseGraphBytes(bytes, &cursor).ok())
        << "accepted a " << keep << "-byte prefix";
  }
}

TEST(GraphSerializeTest, RejectsOversizedDeclaredCountsWithoutAllocating) {
  // A header claiming 2^40 halves against a tiny buffer must fail the size
  // bound check up front (no giant allocation, no crash).
  std::string encoded;
  const uint32_t n = 2;
  const uint64_t halves = uint64_t{1} << 40;
  encoded.append(reinterpret_cast<const char*>(&n), 4);
  encoded.append(reinterpret_cast<const char*>(&halves), 8);
  encoded.append(64, '\0');
  size_t cursor = 0;
  EXPECT_FALSE(ParseGraphBytes(Bytes(encoded), &cursor).ok());
}

// Mutates one encoded byte span and expects the parse to fail. Offsets are
// relative to the start of the encoding: 0 = num_vertices, 4 =
// num_halves, 12 = offsets array, 12 + (n+1)*8 = neighbor halves.
void ExpectMutationRejected(std::string encoded, size_t offset,
                            uint64_t value, size_t width,
                            const char* reason) {
  ASSERT_LE(offset + width, encoded.size());
  std::memcpy(encoded.data() + offset, &value, width);
  size_t cursor = 0;
  EXPECT_FALSE(ParseGraphBytes(Bytes(encoded), &cursor).ok()) << reason;
}

TEST(GraphSerializeTest, RejectsInvariantViolations) {
  // Fig1G1 has n >= 4 and m >= 4; see tests/test_util.h.
  const Graph graph = Fig1G1();
  const uint32_t n = graph.NumVertices();
  std::string encoded;
  AppendGraphBytes(graph, &encoded);
  const size_t offsets_at = 12;
  const size_t halves_at = offsets_at + (size_t{n} + 1) * 8;

  // Non-monotone offsets: offsets[1] jumps past offsets.back().
  ExpectMutationRejected(encoded, offsets_at + 8, uint64_t{1} << 32, 8,
                         "non-monotone offsets accepted");
  // Out-of-range neighbor id in the first half.
  ExpectMutationRejected(encoded, halves_at, n + 7, 4,
                         "out-of-range neighbor id accepted");
  // NaN weight in the first half.
  ExpectMutationRejected(encoded, halves_at + 4, 0x7FF8000000000000ull, 8,
                         "NaN weight accepted");
  // Zero weight (stored graphs never hold zero-weight edges).
  ExpectMutationRejected(encoded, halves_at + 4, 0, 8,
                         "zero weight accepted");
}

TEST(GraphSerializeTest, RejectsAsymmetricHalves) {
  // Corrupt only the *weight* of one directed half: the pair (u,v)/(v,u)
  // then disagrees, which the symmetry check must catch regardless of which
  // direction holds the bad half.
  const Graph graph = MakeGraph(3, {{0, 1, 2.0}, {1, 2, -3.0}});
  std::string encoded;
  AppendGraphBytes(graph, &encoded);
  const size_t halves_at = 12 + 4 * 8;
  const double bad = 99.0;
  uint64_t bad_bits;
  std::memcpy(&bad_bits, &bad, 8);
  for (size_t half = 0; half < 2 * graph.NumEdges(); ++half) {
    ExpectMutationRejected(encoded, halves_at + half * 12 + 4, bad_bits, 8,
                           "asymmetric weight accepted");
  }
}

}  // namespace
}  // namespace dcs
