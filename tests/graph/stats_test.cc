#include "graph/stats.h"

#include <gtest/gtest.h>

#include "gen/random_graphs.h"
#include "test_util.h"
#include "util/rng.h"

namespace dcs {
namespace {

using ::dcs::testing::Fig1Gd;
using ::dcs::testing::MakeGraph;

TEST(TotalDegreeTest, CountsEachEdgeTwice) {
  Graph g = MakeGraph(3, {{0, 1, 2.0}, {1, 2, 3.0}});
  std::vector<VertexId> all{0, 1, 2};
  EXPECT_DOUBLE_EQ(TotalDegree(g, all), 10.0);  // 2·(2+3)
}

TEST(TotalDegreeTest, IgnoresEdgesLeavingSubset) {
  Graph g = MakeGraph(3, {{0, 1, 2.0}, {1, 2, 3.0}});
  std::vector<VertexId> subset{0, 1};
  EXPECT_DOUBLE_EQ(TotalDegree(g, subset), 4.0);
}

TEST(TotalDegreeTest, EmptySubsetIsZero) {
  Graph g = MakeGraph(2, {{0, 1, 1.0}});
  EXPECT_DOUBLE_EQ(TotalDegree(g, std::vector<VertexId>{}), 0.0);
}

TEST(AverageDegreeDensityTest, SingleEdgeDensityEqualsWeight) {
  // Table I convention: ρ({u,v}) = D(u,v) — §IV-B's key observation.
  Graph g = MakeGraph(4, {{1, 2, 7.5}});
  std::vector<VertexId> pair{1, 2};
  EXPECT_DOUBLE_EQ(AverageDegreeDensity(g, pair), 7.5);
}

TEST(AverageDegreeDensityTest, UniformCliqueDensity) {
  // k-clique with uniform weight w: ρ = (k−1)·w.
  GraphBuilder builder(6);
  std::vector<VertexId> members{0, 1, 2, 3, 4};
  ASSERT_TRUE(AddClique(&builder, members, 2.0).ok());
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_DOUBLE_EQ(AverageDegreeDensity(*g, members), 8.0);
}

TEST(AverageDegreeDensityTest, SingletonIsZero) {
  Graph g = MakeGraph(2, {{0, 1, 5.0}});
  EXPECT_DOUBLE_EQ(AverageDegreeDensity(g, std::vector<VertexId>{0}), 0.0);
}

TEST(AverageDegreeDensityTest, NegativeWeightsLowerDensity) {
  Graph gd = Fig1Gd();
  // {2,3} carries only the −2 edge: ρ = −2.
  std::vector<VertexId> pair{2, 3};
  EXPECT_DOUBLE_EQ(AverageDegreeDensity(gd, pair), -2.0);
}

TEST(EdgeDensityTest, MatchesDefinition) {
  Graph g = MakeGraph(3, {{0, 1, 2.0}, {1, 2, 4.0}});
  std::vector<VertexId> all{0, 1, 2};
  EXPECT_DOUBLE_EQ(EdgeDensity(g, all), 12.0 / 9.0);
  EXPECT_DOUBLE_EQ(EdgeDensity(g, std::vector<VertexId>{}), 0.0);
}

TEST(InducedEdgeCountTest, Counts) {
  Graph g = MakeGraph(4, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}, {0, 2, 1.0}});
  std::vector<VertexId> subset{0, 1, 2};
  EXPECT_EQ(InducedEdgeCount(g, subset), 3u);
  EXPECT_EQ(InducedEdgeCount(g, std::vector<VertexId>{0, 3}), 0u);
}

TEST(IsCliqueTest, Basics) {
  Graph g = MakeGraph(4, {{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 1.0}, {2, 3, 1.0}});
  EXPECT_TRUE(IsClique(g, std::vector<VertexId>{0, 1, 2}));
  EXPECT_FALSE(IsClique(g, std::vector<VertexId>{0, 1, 3}));
  EXPECT_TRUE(IsClique(g, std::vector<VertexId>{3}));
  EXPECT_TRUE(IsClique(g, std::vector<VertexId>{}));
  EXPECT_TRUE(IsClique(g, std::vector<VertexId>{2, 3}));
}

TEST(IsPositiveCliqueTest, RejectsNegativeEdge) {
  Graph g = MakeGraph(3, {{0, 1, 1.0}, {1, 2, -1.0}, {0, 2, 1.0}});
  EXPECT_FALSE(IsPositiveClique(g, std::vector<VertexId>{0, 1, 2}));
  EXPECT_TRUE(IsPositiveClique(g, std::vector<VertexId>{0, 1}));
  EXPECT_FALSE(IsPositiveClique(g, std::vector<VertexId>{1, 2}));
}

TEST(IsPositiveCliqueTest, RejectsMissingEdge) {
  Graph g = MakeGraph(3, {{0, 1, 1.0}, {1, 2, 1.0}});
  EXPECT_FALSE(IsPositiveClique(g, std::vector<VertexId>{0, 1, 2}));
}

TEST(IsPositiveCliqueTest, SingletonsAndEmpty) {
  Graph g(2);
  EXPECT_TRUE(IsPositiveClique(g, std::vector<VertexId>{0}));
  EXPECT_TRUE(IsPositiveClique(g, std::vector<VertexId>{}));
}

TEST(InducedWeightedDegreesTest, MatchesManualComputation) {
  Graph gd = Fig1Gd();
  std::vector<VertexId> subset{0, 1, 3};
  // Inside {0,1,3}: edges (0,1)=+4 and (0,3)=+1.
  auto degrees = InducedWeightedDegrees(gd, subset);
  ASSERT_EQ(degrees.size(), 3u);
  EXPECT_DOUBLE_EQ(degrees[0], 5.0);  // vertex 0: 4 + 1
  EXPECT_DOUBLE_EQ(degrees[1], 4.0);  // vertex 1
  EXPECT_DOUBLE_EQ(degrees[2], 1.0);  // vertex 3
}

class StatsConsistencyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StatsConsistencyTest, TotalDegreeEqualsSumOfInducedDegrees) {
  Rng rng(GetParam());
  auto g = RandomSignedGraph(40, 150, 0.6, 0.5, 4.0, &rng);
  ASSERT_TRUE(g.ok());
  std::vector<VertexId> subset = [&] {
    std::vector<VertexId> s;
    for (VertexId v = 0; v < 40; v += 2) s.push_back(v);
    return s;
  }();
  const auto degrees = InducedWeightedDegrees(*g, subset);
  double sum = 0.0;
  for (double d : degrees) sum += d;
  EXPECT_NEAR(TotalDegree(*g, subset), sum, 1e-9);
  EXPECT_NEAR(AverageDegreeDensity(*g, subset) * subset.size(),
              TotalDegree(*g, subset), 1e-9);
  EXPECT_NEAR(EdgeDensity(*g, subset) * subset.size() * subset.size(),
              TotalDegree(*g, subset), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsConsistencyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace dcs
