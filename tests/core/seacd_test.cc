#include "core/seacd.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/coordinate_descent.h"
#include "densest/exact.h"
#include "gen/random_graphs.h"
#include "graph/stats.h"
#include "test_util.h"
#include "util/rng.h"

namespace dcs {
namespace {

using ::dcs::testing::MakeGraph;

TEST(SeacdTest, RejectsBadInputs) {
  Graph g = MakeGraph(3, {{0, 1, 1.0}});
  Embedding off_simplex = Embedding::Zeros(3);
  EXPECT_FALSE(RunSeacd(g, off_simplex).ok());
  EXPECT_FALSE(RunSeacdFromVertex(g, 99).ok());
}

TEST(SeacdTest, IsolatedSeedStaysTrivial) {
  Graph g = MakeGraph(3, {{0, 1, 2.0}});
  auto result = RunSeacdFromVertex(g, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_DOUBLE_EQ(result->affinity, 0.0);
  EXPECT_EQ(result->x.Support(), (std::vector<VertexId>{2}));
}

TEST(SeacdTest, SingleEdgeConvergesToHalfWeight) {
  Graph g = MakeGraph(2, {{0, 1, 5.0}});
  auto result = RunSeacdFromVertex(g, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_NEAR(result->affinity, 2.5, 1e-3);
  EXPECT_EQ(result->x.Support().size(), 2u);
}

TEST(SeacdTest, UnweightedCliqueReachesMotzkinStrausValue) {
  GraphBuilder builder(6);
  std::vector<VertexId> clique{0, 1, 2, 3, 4, 5};
  ASSERT_TRUE(AddClique(&builder, clique, 1.0).ok());
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  auto result = RunSeacdFromVertex(*g, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->affinity, 5.0 / 6.0, 1e-3);
  EXPECT_EQ(result->x.Support().size(), 6u);
}

TEST(SeacdTest, FindsPlantedHeavyClique) {
  Rng rng(7);
  GraphBuilder builder(40);
  auto noise = ErdosRenyiWeighted(40, 0.08, 0.2, 0.6, &rng);
  ASSERT_TRUE(noise.ok());
  for (const Edge& e : noise->UndirectedEdges()) {
    ASSERT_TRUE(builder.AddEdge(e.u, e.v, e.weight).ok());
  }
  std::vector<VertexId> planted{4, 11, 23, 31};
  ASSERT_TRUE(AddClique(&builder, planted, 5.0).ok());
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  auto result = RunSeacdFromVertex(*g, 4);
  ASSERT_TRUE(result.ok());
  std::vector<VertexId> support = result->x.Support();
  for (VertexId v : planted) {
    EXPECT_NE(std::find(support.begin(), support.end(), v), support.end());
  }
  // Affinity at least the planted clique's uniform-embedding value.
  EXPECT_GE(result->affinity, 3.0 / 4.0 * 5.0 - 1e-6);
}

TEST(SeacdTest, ResultSatisfiesGlobalKkt) {
  Rng rng(99);
  for (int trial = 0; trial < 8; ++trial) {
    auto g = ErdosRenyiWeighted(20, 0.25, 0.5, 3.0, &rng);
    ASSERT_TRUE(g.ok());
    SeacdOptions options;
    options.descent.epsilon_scale = 1e-8;
    auto result =
        RunSeacdFromVertex(*g, static_cast<VertexId>(rng.NextBounded(20)),
                           options);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->converged);
    AffinityState state(*g);
    ASSERT_TRUE(state.ResetToEmbedding(result->x).ok());
    EXPECT_TRUE(SatisfiesKkt(state, 1e-4));
  }
}

TEST(SeacdTest, ObjectiveAtLeastSeedEgoValue) {
  // Starting from u, SEACD expands through u's edges; final f must at least
  // match u's best single edge (x = (1/2,1/2) on it gives w/2... SEACD's
  // first expansion covers all of it). Weak but useful sanity bound: f >= 0.
  Rng rng(1717);
  auto g = RandomSignedGraph(30, 90, 0.7, 0.5, 3.0, &rng);
  ASSERT_TRUE(g.ok());
  Graph gd_plus = g->PositivePart();
  for (VertexId seed = 0; seed < 30; seed += 5) {
    auto result = RunSeacdFromVertex(gd_plus, seed);
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result->affinity, 0.0);
  }
}

// Cross-check against the exact brute-force DCSGA oracle: the best SEACD
// result over all seeds must come close to the global optimum on tiny
// graphs (local search can in principle miss it, but with every seed tried
// and refinement-free cliques this holds on these instances).
class SeacdVsExactTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeacdVsExactTest, BestSeedNearOptimal) {
  Rng rng(GetParam());
  auto g = ErdosRenyiWeighted(10, 0.4, 0.5, 2.5, &rng);
  ASSERT_TRUE(g.ok());
  auto exact = ExactDcsgaBruteForce(*g);
  ASSERT_TRUE(exact.ok());
  double best = 0.0;
  for (VertexId seed = 0; seed < 10; ++seed) {
    SeacdOptions options;
    options.descent.epsilon_scale = 1e-9;
    auto result = RunSeacdFromVertex(*g, seed, options);
    ASSERT_TRUE(result.ok());
    best = std::max(best, result->affinity);
  }
  EXPECT_LE(best, exact->affinity + 1e-6);   // never exceeds the optimum
  EXPECT_GE(best, 0.85 * exact->affinity - 1e-9);  // and comes close
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeacdVsExactTest,
                         ::testing::Values(51, 52, 53, 54, 55, 56, 57, 58, 59,
                                           60));

}  // namespace
}  // namespace dcs
