#include "core/newsea.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <map>
#include <numeric>
#include <string>

#include "densest/exact.h"
#include "graph/csr_patcher.h"
#include "gen/random_graphs.h"
#include "graph/stats.h"
#include "test_util.h"
#include "util/rng.h"

namespace dcs {
namespace {

using ::dcs::testing::MakeGraph;

TEST(SmartInitBoundsTest, BoundsOnTriangleWithPendant) {
  // Triangle {0,1,2} (weights 2) with pendant 3 attached by weight 1.
  Graph g = MakeGraph(4, {{0, 1, 2.0}, {1, 2, 2.0}, {0, 2, 2.0}, {2, 3, 1.0}});
  const SmartInitBounds bounds = ComputeSmartInitBounds(g);
  // w_u: max edge weight with an endpoint in the closed neighborhood.
  EXPECT_DOUBLE_EQ(bounds.w[0], 2.0);
  EXPECT_DOUBLE_EQ(bounds.w[3], 2.0);  // 2's incident max reaches 3's ego net
  // Core numbers: triangle is 2-core, pendant is 1-core.
  EXPECT_EQ(bounds.tau[0], 2u);
  EXPECT_EQ(bounds.tau[3], 1u);
  // μ = τ·w/(τ+1).
  EXPECT_DOUBLE_EQ(bounds.mu[0], 2.0 * 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(bounds.mu[3], 1.0 * 2.0 / 2.0);
}

TEST(SmartInitBoundsTest, IsolatedVertexGetsZeroMu) {
  Graph g = MakeGraph(3, {{0, 1, 5.0}});
  const SmartInitBounds bounds = ComputeSmartInitBounds(g);
  EXPECT_DOUBLE_EQ(bounds.mu[2], 0.0);
}

// Theorem 6 property: for any positive-clique embedding x with x_u > 0,
// f(x) <= mu_u. Verified via the exact oracle on small graphs.
class Theorem6Test : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Theorem6Test, MuUpperBoundsOptimalCliqueAffinity) {
  Rng rng(GetParam());
  auto g = ErdosRenyiWeighted(10, 0.45, 0.5, 3.0, &rng);
  ASSERT_TRUE(g.ok());
  const SmartInitBounds bounds = ComputeSmartInitBounds(*g);
  auto exact = ExactDcsgaBruteForce(*g);
  ASSERT_TRUE(exact.ok());
  for (VertexId u : exact->support) {
    EXPECT_GE(bounds.mu[u] + 1e-9, exact->affinity)
        << "Theorem 6 violated at vertex " << u;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem6Test,
                         ::testing::Values(61, 62, 63, 64, 65, 66, 67, 68));

TEST(NewSeaTest, RejectsNegativeWeightsAndEmptyGraphs) {
  Graph g = MakeGraph(2, {{0, 1, -1.0}});
  EXPECT_FALSE(RunNewSea(g).ok());
  EXPECT_FALSE(RunNewSea(Graph(0)).ok());
}

TEST(NewSeaTest, EdgelessGraphYieldsTrivialSolution) {
  auto result = RunNewSea(Graph(5));
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->affinity, 0.0);
  EXPECT_EQ(result->support.size(), 1u);
  EXPECT_EQ(result->initializations, 0u);
}

TEST(NewSeaTest, FindsPlantedHeavyClique) {
  Rng rng(123);
  GraphBuilder builder(60);
  auto noise = ErdosRenyiWeighted(60, 0.06, 0.2, 0.8, &rng);
  ASSERT_TRUE(noise.ok());
  for (const Edge& e : noise->UndirectedEdges()) {
    ASSERT_TRUE(builder.AddEdge(e.u, e.v, e.weight).ok());
  }
  std::vector<VertexId> planted{7, 19, 33, 48, 55};
  ASSERT_TRUE(AddClique(&builder, planted, 4.0).ok());
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  auto result = RunNewSea(*g);
  ASSERT_TRUE(result.ok());
  for (VertexId v : planted) {
    EXPECT_TRUE(std::binary_search(result->support.begin(),
                                   result->support.end(), v))
        << "missing planted vertex " << v;
  }
  EXPECT_GE(result->affinity, 4.0 * 4.0 / 5.0 - 1e-3);
  EXPECT_TRUE(IsPositiveClique(*g, result->support));
}

TEST(NewSeaTest, MatchesAllInitsOnSmallGraphs) {
  // The smart-initialization pruning is a heuristic but must not lose the
  // best solution on these instances (the paper reports it never did).
  Rng rng(321);
  for (int trial = 0; trial < 6; ++trial) {
    auto g = ErdosRenyiWeighted(15, 0.3, 0.5, 3.0, &rng);
    ASSERT_TRUE(g.ok());
    auto smart = RunNewSea(*g);
    DcsgaOptions all_options;
    all_options.shrink = ShrinkKind::kCoordinateDescent;
    auto all = RunDcsgaAllInits(*g, all_options);
    ASSERT_TRUE(smart.ok());
    ASSERT_TRUE(all.ok());
    EXPECT_NEAR(smart->affinity, all->affinity, 1e-6);
    EXPECT_LE(smart->initializations, all->initializations);
  }
}

TEST(NewSeaTest, UsesFewerInitializationsThanVertices) {
  Rng rng(555);
  GraphBuilder builder(100);
  auto noise = ErdosRenyiWeighted(100, 0.03, 0.2, 0.5, &rng);
  ASSERT_TRUE(noise.ok());
  for (const Edge& e : noise->UndirectedEdges()) {
    ASSERT_TRUE(builder.AddEdge(e.u, e.v, e.weight).ok());
  }
  std::vector<VertexId> planted{5, 25, 45, 65, 85};
  ASSERT_TRUE(AddClique(&builder, planted, 6.0).ok());
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  auto result = RunNewSea(*g);
  ASSERT_TRUE(result.ok());
  // The planted clique's high μ puts its members first; once found, every
  // noise vertex fails the μ ≤ f(best) test.
  EXPECT_LT(result->initializations, 30u);
  EXPECT_EQ(result->support, planted);
}

TEST(NewSeaTest, SupportIsAlwaysPositiveCliqueAcrossSeeds) {
  Rng rng(808);
  for (int trial = 0; trial < 6; ++trial) {
    auto signed_g = RandomSignedGraph(30, 100, 0.6, 0.5, 4.0, &rng);
    ASSERT_TRUE(signed_g.ok());
    Graph gd_plus = signed_g->PositivePart();
    auto result = RunNewSea(gd_plus);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(IsPositiveClique(*signed_g, result->support));
    EXPECT_TRUE(result->x.IsOnSimplex(1e-6));
    EXPECT_NEAR(result->x.Affinity(gd_plus), result->affinity, 1e-6);
  }
}

TEST(AllInitsTest, ReplicatorAndCdAgreeOnEasyGraphs) {
  GraphBuilder builder(8);
  std::vector<VertexId> clique{0, 1, 2, 3};
  ASSERT_TRUE(AddClique(&builder, clique, 2.0).ok());
  ASSERT_TRUE(builder.AddEdge(4, 5, 1.0).ok());
  ASSERT_TRUE(builder.AddEdge(6, 7, 0.5).ok());
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  DcsgaOptions cd_options;
  cd_options.shrink = ShrinkKind::kCoordinateDescent;
  DcsgaOptions rep_options;
  rep_options.shrink = ShrinkKind::kReplicator;
  auto cd = RunDcsgaAllInits(*g, cd_options);
  auto rep = RunDcsgaAllInits(*g, rep_options);
  ASSERT_TRUE(cd.ok());
  ASSERT_TRUE(rep.ok());
  EXPECT_NEAR(cd->affinity, rep->affinity, 1e-2);
  EXPECT_NEAR(cd->affinity, 2.0 * 3.0 / 4.0, 1e-3);
}

TEST(AllInitsTest, CollectsDistinctCliques) {
  // Two separated heavy cliques: all-inits must record both.
  GraphBuilder builder(12);
  std::vector<VertexId> clique_a{0, 1, 2};
  std::vector<VertexId> clique_b{6, 7, 8, 9};
  ASSERT_TRUE(AddClique(&builder, clique_a, 3.0).ok());
  ASSERT_TRUE(AddClique(&builder, clique_b, 2.0).ok());
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  DcsgaOptions options;
  options.collect_cliques = true;
  auto result = RunDcsgaAllInits(*g, options);
  ASSERT_TRUE(result.ok());
  auto maximal = FilterMaximalCliques(result->cliques);
  ASSERT_EQ(maximal.size(), 2u);
  std::vector<std::vector<VertexId>> supports;
  for (const auto& record : maximal) supports.push_back(record.members);
  std::sort(supports.begin(), supports.end());
  EXPECT_EQ(supports[0], clique_a);
  EXPECT_EQ(supports[1], clique_b);
}

TEST(FilterMaximalCliquesTest, RemovesSubsetsAndDuplicates) {
  auto record = [](std::vector<VertexId> members, double affinity) {
    CliqueRecord r;
    r.members = std::move(members);
    r.affinity = affinity;
    return r;
  };
  std::vector<CliqueRecord> input;
  input.push_back(record({0, 1, 2, 3}, 2.0));
  input.push_back(record({1, 2}, 1.0));        // subset
  input.push_back(record({0, 1, 2, 3}, 2.0));  // duplicate
  input.push_back(record({4, 5}, 0.5));        // disjoint survivor
  auto out = FilterMaximalCliques(std::move(input));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].members, (std::vector<VertexId>{0, 1, 2, 3}));
  EXPECT_EQ(out[1].members, (std::vector<VertexId>{4, 5}));
}

TEST(FilterMaximalCliquesTest, EmptyInput) {
  EXPECT_TRUE(FilterMaximalCliques({}).empty());
}

TEST(SmartInitBoundsTest, SeedOrderMatchesComparatorSort) {
  // The packed-key sort inside ComputeSmartInitBounds must reproduce the
  // documented total order — descending μ, ties broken by ascending id —
  // exactly, including on graphs full of duplicate μ values (regular-ish
  // random graphs produce many equal τ·w/(τ+1) keys) and isolated vertices
  // (μ = 0 ties at the tail).
  Rng rng(91817);
  for (int round = 0; round < 8; ++round) {
    Result<Graph> g = ErdosRenyiWeighted(60, 0.08, 1.0, 2.0, &rng);
    ASSERT_TRUE(g.ok());
    const SmartInitBounds bounds = ComputeSmartInitBounds(*g);
    std::vector<VertexId> expected(g->NumVertices());
    std::iota(expected.begin(), expected.end(), VertexId{0});
    std::stable_sort(expected.begin(), expected.end(),
                     [&](VertexId a, VertexId b) {
                       return bounds.mu[a] != bounds.mu[b]
                                  ? bounds.mu[a] > bounds.mu[b]
                                  : a < b;
                     });
    EXPECT_EQ(bounds.order, expected);
  }
}

// --- smart-init bound delta maintenance (streaming update path) -----------

TEST(SmartInitBoundsDeltaTest, RandomizedBatchesMatchFullRecompute) {
  // Every field — w, τ, μ, max_incident and the seed order — must come out
  // bit-identical to ComputeSmartInitBounds on the new graph, across
  // randomized batches of GD+ inserts, removals and weight rewrites.
  Rng rng(62026);
  const VertexId n = 45;
  for (int round = 0; round < 25; ++round) {
    Result<Graph> start = ErdosRenyiWeighted(n, 0.09, 0.1, 3.0, &rng);
    ASSERT_TRUE(start.ok());
    Graph old_gd_plus = *start;
    SmartInitBounds bounds = ComputeSmartInitBounds(old_gd_plus);

    for (int batch = 0; batch < 4; ++batch) {
      // Assemble a batch of positive-part changes.
      std::map<uint64_t, double> edges;
      for (const Edge& e : old_gd_plus.UndirectedEdges()) {
        edges[PackVertexPair(e.u, e.v)] = e.weight;
      }
      std::vector<PositivePairDelta> changes;
      std::map<uint64_t, double> assignments;
      const size_t batch_size = 1 + rng.NextBounded(6);
      for (size_t i = 0; i < batch_size; ++i) {
        const VertexId u = static_cast<VertexId>(rng.NextBounded(n));
        VertexId v = static_cast<VertexId>(rng.NextBounded(n - 1));
        if (v >= u) ++v;
        const uint64_t key = PackVertexPair(u, v);
        if (assignments.count(key) != 0) continue;  // one change per pair
        const double old_weight =
            edges.count(key) != 0 ? edges[key] : 0.0;
        double new_weight;
        const uint64_t kind = rng.NextBounded(3);
        if (kind == 0 && old_weight != 0.0) {
          new_weight = 0.0;  // removal
        } else if (kind == 1 && old_weight != 0.0) {
          new_weight = rng.Uniform(0.1, 3.0);  // weight rewrite
        } else {
          new_weight = rng.Uniform(0.1, 3.0);  // insert (or rewrite)
        }
        if (old_weight == new_weight) continue;
        assignments[key] = new_weight;
        changes.push_back(PositivePairDelta{
            static_cast<VertexId>(key >> 32),
            static_cast<VertexId>(key & 0xFFFFFFFFull), old_weight,
            new_weight});
      }
      std::vector<EdgePatch> patches;
      for (const auto& [key, weight] : assignments) {
        patches.push_back(EdgePatch{static_cast<VertexId>(key >> 32),
                                    static_cast<VertexId>(key & 0xFFFFFFFFull),
                                    weight});
      }
      const Graph new_gd_plus =
          CsrPatcher::Apply(old_gd_plus, patches, /*zero_eps=*/0.0);

      ApplySmartInitBoundsDelta(old_gd_plus, new_gd_plus, changes, &bounds);
      const SmartInitBounds expected = ComputeSmartInitBounds(new_gd_plus);
      const std::string label =
          "round " + std::to_string(round) + " batch " + std::to_string(batch);
      ASSERT_EQ(bounds.tau, expected.tau) << label;
      ASSERT_EQ(bounds.order, expected.order) << label;
      for (VertexId x = 0; x < n; ++x) {
        ASSERT_EQ(std::bit_cast<uint64_t>(bounds.w[x]),
                  std::bit_cast<uint64_t>(expected.w[x]))
            << label << " w[" << x << "]";
        ASSERT_EQ(std::bit_cast<uint64_t>(bounds.mu[x]),
                  std::bit_cast<uint64_t>(expected.mu[x]))
            << label << " mu[" << x << "]";
        ASSERT_EQ(std::bit_cast<uint64_t>(bounds.max_incident[x]),
                  std::bit_cast<uint64_t>(expected.max_incident[x]))
            << label << " max_incident[" << x << "]";
      }
      old_gd_plus = new_gd_plus;
    }
  }
}

TEST(SmartInitBoundsDeltaTest, EmptyChangeListIsANoOp) {
  const Graph gd_plus =
      ::dcs::testing::MakeGraph(4, {{0, 1, 2.0}, {1, 2, 1.0}});
  SmartInitBounds bounds = ComputeSmartInitBounds(gd_plus);
  const SmartInitBounds before = bounds;
  ApplySmartInitBoundsDelta(gd_plus, gd_plus, {}, &bounds);
  EXPECT_EQ(bounds.tau, before.tau);
  EXPECT_EQ(bounds.order, before.order);
  EXPECT_EQ(bounds.w, before.w);
  EXPECT_EQ(bounds.mu, before.mu);
}

}  // namespace
}  // namespace dcs
