// Determinism of the seed-sharded parallel NewSEA driver: for every thread
// count the affinity, support and embedding must equal the sequential run
// bit for bit (the reduction keeps (max affinity, earliest μ-order seed),
// and an AffinityState reset is exact, so each seed's descent is a pure
// function of the graph and the seed).

#include <gtest/gtest.h>

#include <vector>

#include "core/newsea.h"
#include "gen/coauthor.h"
#include "gen/random_graphs.h"
#include "graph/difference.h"
#include "test_util.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace dcs {
namespace {

using ::dcs::testing::MakeGraph;

const uint32_t kThreadCounts[] = {1, 2, 4, 7};

// Runs RunNewSea at every thread count (transient pools) and asserts the
// full result triple is bit-identical to the sequential reference.
void ExpectBitIdenticalAcrossThreadCounts(const Graph& gd_plus) {
  const SmartInitBounds bounds = ComputeSmartInitBounds(gd_plus);
  DcsgaOptions sequential_options;  // parallelism = 1
  Result<DcsgaResult> reference =
      RunNewSea(gd_plus, bounds, sequential_options);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  for (const uint32_t threads : kThreadCounts) {
    DcsgaOptions options;
    options.parallelism = threads;
    Result<DcsgaResult> run = RunNewSea(gd_plus, bounds, options);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(run->affinity, reference->affinity) << threads << " threads";
    EXPECT_EQ(run->support, reference->support) << threads << " threads";
    EXPECT_EQ(run->x.x, reference->x.x) << threads << " threads";
    // Every candidate seed is either descended from or pruned.
    EXPECT_EQ(run->initializations + run->pruned_seeds,
              static_cast<uint64_t>(gd_plus.NumVertices()))
        << threads << " threads";
  }
}

TEST(NewSeaParallelTest, BitIdenticalOnRandomSignedGraphs) {
  for (const uint64_t seed : {7u, 19u, 23u}) {
    Rng rng(seed);
    Result<Graph> gd =
        RandomSignedGraph(/*n=*/300, /*m=*/2400, /*positive_fraction=*/0.7,
                          /*magnitude_lo=*/0.5, /*magnitude_hi=*/3.0, &rng);
    ASSERT_TRUE(gd.ok());
    ExpectBitIdenticalAcrossThreadCounts(gd->PositivePart());
  }
}

TEST(NewSeaParallelTest, BitIdenticalOnGeneratorGraph) {
  Rng rng(42);
  CoauthorConfig config;
  config.num_authors = 800;
  Result<CoauthorData> data = GenerateCoauthorData(config, &rng);
  ASSERT_TRUE(data.ok());
  Result<Graph> gd = BuildDifferenceGraph(data->g1, data->g2);
  ASSERT_TRUE(gd.ok());
  ExpectBitIdenticalAcrossThreadCounts(gd->PositivePart());
}

TEST(NewSeaParallelTest, TieBetweenSeedsKeepsTheEarliestOrderWinner) {
  // Two disjoint triangles with identical weights: six seeds share one μ and
  // two optimal cliques share one affinity. Sequential NewSEA keeps the
  // first winner in μ-order; every parallel run must pick the same one even
  // though both triangles are descended from on different shards.
  const Graph gd_plus = MakeGraph(6, {{0, 1, 2.0},
                                      {1, 2, 2.0},
                                      {0, 2, 2.0},
                                      {3, 4, 2.0},
                                      {4, 5, 2.0},
                                      {3, 5, 2.0}});
  Result<DcsgaResult> reference = RunNewSea(gd_plus);
  ASSERT_TRUE(reference.ok());
  ASSERT_GT(reference->affinity, 0.0);
  ASSERT_EQ(reference->support.size(), 3u);
  ExpectBitIdenticalAcrossThreadCounts(gd_plus);
}

TEST(NewSeaParallelTest, SharedPoolMatchesTransientPool) {
  Rng rng(5);
  Result<Graph> gd =
      RandomSignedGraph(200, 1500, 0.6, 0.5, 2.5, &rng);
  ASSERT_TRUE(gd.ok());
  const Graph gd_plus = gd->PositivePart();
  const SmartInitBounds bounds = ComputeSmartInitBounds(gd_plus);

  Result<DcsgaResult> reference = RunNewSea(gd_plus, bounds, {});
  ASSERT_TRUE(reference.ok());

  ThreadPool pool(3);
  DcsgaOptions options;
  options.parallelism = 0;  // auto: take the pool's whole concurrency
  Result<DcsgaResult> pooled = RunNewSea(gd_plus, bounds, options, &pool);
  ASSERT_TRUE(pooled.ok());
  EXPECT_EQ(pooled->affinity, reference->affinity);
  EXPECT_EQ(pooled->support, reference->support);
  EXPECT_EQ(pooled->x.x, reference->x.x);
}

TEST(NewSeaParallelTest, ParallelRunsStayDeterministicAcrossRepeats) {
  Rng rng(11);
  Result<Graph> gd = RandomSignedGraph(250, 2000, 0.65, 0.5, 3.0, &rng);
  ASSERT_TRUE(gd.ok());
  const Graph gd_plus = gd->PositivePart();
  const SmartInitBounds bounds = ComputeSmartInitBounds(gd_plus);
  DcsgaOptions options;
  options.parallelism = 4;
  Result<DcsgaResult> first = RunNewSea(gd_plus, bounds, options);
  ASSERT_TRUE(first.ok());
  for (int repeat = 0; repeat < 3; ++repeat) {
    Result<DcsgaResult> again = RunNewSea(gd_plus, bounds, options);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->affinity, first->affinity);
    EXPECT_EQ(again->support, first->support);
    EXPECT_EQ(again->x.x, first->x.x);
  }
}

TEST(NewSeaParallelTest, ValidationSkipFlagHonoursTheContract) {
  // assume_nonnegative skips the precondition scan — same answer on a valid
  // GD+ — while the default path still rejects a signed graph.
  const Graph gd_plus = MakeGraph(4, {{0, 1, 2.0}, {1, 2, 1.0}, {2, 3, 3.0}});
  DcsgaOptions skip;
  skip.assume_nonnegative = true;
  Result<DcsgaResult> with_skip = RunNewSea(gd_plus, skip);
  Result<DcsgaResult> without = RunNewSea(gd_plus);
  ASSERT_TRUE(with_skip.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(with_skip->affinity, without->affinity);
  EXPECT_EQ(with_skip->support, without->support);

  const Graph signed_graph = MakeGraph(3, {{0, 1, 1.0}, {1, 2, -1.0}});
  EXPECT_FALSE(RunNewSea(signed_graph).ok());
  EXPECT_FALSE(RunDcsgaAllInits(signed_graph).ok());
}

TEST(NewSeaParallelTest, CollectCliquesFallsBackToSequential) {
  // The clique harvest depends on which seeds pruning skipped, so the
  // parallel driver refuses it and runs the exact sequential loop instead.
  const Graph gd_plus = MakeGraph(6, {{0, 1, 3.0},
                                      {1, 2, 3.0},
                                      {0, 2, 3.0},
                                      {3, 4, 1.0},
                                      {4, 5, 1.0},
                                      {3, 5, 1.0}});
  DcsgaOptions sequential;
  sequential.collect_cliques = true;
  Result<DcsgaResult> reference = RunNewSea(gd_plus, sequential);
  ASSERT_TRUE(reference.ok());

  DcsgaOptions parallel = sequential;
  parallel.parallelism = 4;
  Result<DcsgaResult> run = RunNewSea(gd_plus, parallel);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->affinity, reference->affinity);
  EXPECT_EQ(run->initializations, reference->initializations);
  ASSERT_EQ(run->cliques.size(), reference->cliques.size());
  for (size_t i = 0; i < run->cliques.size(); ++i) {
    EXPECT_EQ(run->cliques[i].members, reference->cliques[i].members);
  }
}

TEST(NewSeaParallelTest, PreCancelledTokenAbortsWithCancelled) {
  // The cooperative-cancellation hook of the seed loop, hit deterministically
  // by arming the token before the solve: both the sequential loop and every
  // shard observe it at their first check and abort without a result.
  Rng rng(7);
  Result<Graph> gd =
      RandomSignedGraph(/*n=*/200, /*m=*/1500, /*positive_fraction=*/0.7,
                        /*magnitude_lo=*/0.5, /*magnitude_hi=*/3.0, &rng);
  ASSERT_TRUE(gd.ok());
  const Graph gd_plus = gd->PositivePart();
  const SmartInitBounds bounds = ComputeSmartInitBounds(gd_plus);

  CancelToken token;
  token.Cancel();
  for (const uint32_t threads : kThreadCounts) {
    DcsgaOptions options;
    options.parallelism = threads;
    options.cancel = &token;
    Result<DcsgaResult> run = RunNewSea(gd_plus, bounds, options);
    ASSERT_FALSE(run.ok()) << threads << " threads";
    EXPECT_TRUE(run.status().IsCancelled()) << threads << " threads";
  }
}

TEST(NewSeaParallelTest, UnfiredTokenKeepsResultsBitIdentical) {
  // Threading a live-but-silent token through the solve must not perturb
  // anything — the uncancelled path stays the exact sequential answer.
  Rng rng(19);
  Result<Graph> gd =
      RandomSignedGraph(/*n=*/200, /*m=*/1500, /*positive_fraction=*/0.7,
                        /*magnitude_lo=*/0.5, /*magnitude_hi=*/3.0, &rng);
  ASSERT_TRUE(gd.ok());
  const Graph gd_plus = gd->PositivePart();
  const SmartInitBounds bounds = ComputeSmartInitBounds(gd_plus);

  Result<DcsgaResult> reference = RunNewSea(gd_plus, bounds, DcsgaOptions{});
  ASSERT_TRUE(reference.ok());
  CancelToken token;  // never fired
  for (const uint32_t threads : kThreadCounts) {
    DcsgaOptions options;
    options.parallelism = threads;
    options.cancel = &token;
    Result<DcsgaResult> run = RunNewSea(gd_plus, bounds, options);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(run->affinity, reference->affinity) << threads << " threads";
    EXPECT_EQ(run->support, reference->support) << threads << " threads";
    EXPECT_EQ(run->x.x, reference->x.x) << threads << " threads";
  }
}

}  // namespace
}  // namespace dcs
