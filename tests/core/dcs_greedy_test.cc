#include "core/dcs_greedy.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "densest/exact.h"
#include "gen/random_graphs.h"
#include "graph/components.h"
#include "graph/stats.h"
#include "test_util.h"
#include "util/rng.h"

namespace dcs {
namespace {

using ::dcs::testing::Fig1G1;
using ::dcs::testing::Fig1G2;
using ::dcs::testing::Fig1Gd;
using ::dcs::testing::MakeGraph;
using ::dcs::testing::MakeHardnessReduction;

TEST(DcsGreedyTest, EmptyGraphRejected) {
  EXPECT_FALSE(RunDcsGreedy(Graph(0)).ok());
}

TEST(DcsGreedyTest, NoPositiveEdgeYieldsSingleton) {
  Graph gd = MakeGraph(3, {{0, 1, -1.0}, {1, 2, -2.0}});
  auto result = RunDcsGreedy(gd);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->subset.size(), 1u);
  EXPECT_DOUBLE_EQ(result->density, 0.0);
  EXPECT_DOUBLE_EQ(result->ratio_bound, 1.0);
}

TEST(DcsGreedyTest, EdgelessGraphYieldsSingleton) {
  auto result = RunDcsGreedy(Graph(4));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->subset.size(), 1u);
  EXPECT_DOUBLE_EQ(result->density, 0.0);
}

TEST(DcsGreedyTest, SinglepositiveEdge) {
  Graph gd = MakeGraph(4, {{1, 2, 3.0}, {0, 3, -1.0}});
  auto result = RunDcsGreedy(gd);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->subset, (std::vector<VertexId>{1, 2}));
  EXPECT_DOUBLE_EQ(result->density, 3.0);
}

TEST(DcsGreedyTest, Fig1DifferenceGraph) {
  auto result = RunDcsGreedy(Fig1Gd());
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->density, 0.0);
  // Reported density matches the subset.
  EXPECT_NEAR(AverageDegreeDensity(Fig1Gd(), result->subset), result->density,
              1e-9);
  // Candidate 1 is the heaviest edge (weight 4).
  EXPECT_DOUBLE_EQ(result->candidate_densities[0], 4.0);
  EXPECT_GE(result->ratio_bound, 1.0);
}

TEST(DcsGreedyTest, TwoGraphOverloadMatchesDifferenceGraph) {
  auto via_pair = RunDcsGreedy(Fig1G1(), Fig1G2());
  auto via_gd = RunDcsGreedy(Fig1Gd());
  ASSERT_TRUE(via_pair.ok());
  ASSERT_TRUE(via_gd.ok());
  EXPECT_EQ(via_pair->subset, via_gd->subset);
  EXPECT_DOUBLE_EQ(via_pair->density, via_gd->density);
}

TEST(DcsGreedyTest, ResultIsConnectedInGd) {
  Rng rng(42);
  for (int trial = 0; trial < 8; ++trial) {
    auto gd = RandomSignedGraph(30, 90, 0.6, 0.5, 4.0, &rng);
    ASSERT_TRUE(gd.ok());
    auto result = RunDcsGreedy(*gd);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(IsInducedConnected(*gd, result->subset));
  }
}

TEST(DcsGreedyTest, DensityAtLeastHeaviestEdge) {
  // The heaviest-edge candidate guarantees ρ(S) >= max weight.
  Rng rng(43);
  for (int trial = 0; trial < 8; ++trial) {
    auto gd = RandomSignedGraph(25, 70, 0.5, 0.5, 5.0, &rng);
    ASSERT_TRUE(gd.ok());
    const WeightStats stats = gd->ComputeWeightStats();
    if (stats.num_positive_edges == 0) continue;
    auto result = RunDcsGreedy(*gd);
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result->density, stats.max_weight - 1e-9);
  }
}

TEST(DcsGreedyTest, HardnessReductionRecoversPlantedClique) {
  // Theorem 1 construction on a graph whose maximum clique is {0,1,2,3}:
  // optimal DCSAD density is k−1 = 3 and the greedy should find it (the
  // max-clique edges are the only positive edges and form the densest set).
  std::vector<std::pair<VertexId, VertexId>> edges{
      {0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},  // K4
      {4, 5}, {5, 6},                                  // stray path
  };
  auto reduction = MakeHardnessReduction(7, edges);
  auto result = RunDcsGreedy(reduction.g1, reduction.g2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->subset, (std::vector<VertexId>{0, 1, 2, 3}));
  EXPECT_DOUBLE_EQ(result->density, 3.0);
}

class DcsGreedyOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DcsGreedyOracleTest, NeverExceedsExactAndRatioBoundHolds) {
  Rng rng(GetParam());
  auto gd = RandomSignedGraph(13, 34, 0.6, 0.5, 4.0, &rng);
  ASSERT_TRUE(gd.ok());
  auto greedy = RunDcsGreedy(*gd);
  auto exact = ExactDcsadBruteForce(*gd);
  ASSERT_TRUE(greedy.ok());
  ASSERT_TRUE(exact.ok());
  // Feasibility.
  EXPECT_LE(greedy->density, exact->density + 1e-9);
  // Theorem 2: OPT <= ratio_bound · ρ(S).
  if (greedy->density > 0.0) {
    EXPECT_LE(exact->density,
              greedy->ratio_bound * greedy->density + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DcsGreedyOracleTest,
                         ::testing::Values(71, 72, 73, 74, 75, 76, 77, 78, 79,
                                           80, 81, 82, 83, 84, 85));

TEST(DcsGreedyTest, CandidateDensitiesAreConsistent) {
  Rng rng(4141);
  auto gd = RandomSignedGraph(20, 60, 0.6, 0.5, 4.0, &rng);
  ASSERT_TRUE(gd.ok());
  auto result = RunDcsGreedy(*gd);
  ASSERT_TRUE(result.ok());
  // The final density is at least every candidate's density (component
  // refinement can only improve it, by Property 1).
  for (double candidate : result->candidate_densities) {
    EXPECT_GE(result->density, candidate - 1e-9);
  }
}

}  // namespace
}  // namespace dcs
