#include "core/sea.h"

#include <gtest/gtest.h>

#include "core/replicator.h"
#include "gen/random_graphs.h"
#include "test_util.h"
#include "util/rng.h"

namespace dcs {
namespace {

using ::dcs::testing::MakeGraph;

TEST(ReplicatorTest, FixedPointOnUniformClique) {
  GraphBuilder builder(3);
  std::vector<VertexId> clique{0, 1, 2};
  ASSERT_TRUE(AddClique(&builder, clique, 1.0).ok());
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  AffinityState state(*g);
  ASSERT_TRUE(state.ResetToEmbedding(Embedding::UniformOn(3, clique)).ok());
  const ReplicatorStats stats = ReplicatorShrink(&state);
  EXPECT_TRUE(stats.converged);
  for (VertexId v = 0; v < 3; ++v) EXPECT_NEAR(state.x(v), 1.0 / 3.0, 1e-9);
}

TEST(ReplicatorTest, ObjectiveMonotonicallyIncreases) {
  Rng rng(11);
  for (int trial = 0; trial < 8; ++trial) {
    auto g = ErdosRenyiWeighted(14, 0.35, 0.5, 3.0, &rng);
    ASSERT_TRUE(g.ok());
    std::vector<VertexId> support;
    for (VertexId v = 0; v < 14; ++v) {
      if (rng.Bernoulli(0.6)) support.push_back(v);
    }
    if (support.size() < 2) continue;
    AffinityState state(*g);
    ASSERT_TRUE(
        state.ResetToEmbedding(Embedding::UniformOn(14, support)).ok());
    double f = state.Affinity();
    for (int sweep = 0; sweep < 30 && f > 0.0; ++sweep) {
      ReplicatorOptions one_sweep;
      one_sweep.max_sweeps = 1;
      one_sweep.objective_tolerance = -1.0;  // force exactly one sweep
      ReplicatorShrink(&state, one_sweep);
      const double f_new = state.Affinity();
      EXPECT_GE(f_new, f - 1e-9) << "replicator decreased the objective";
      f = f_new;
    }
  }
}

TEST(ReplicatorTest, ZeroObjectiveIsFixedPoint) {
  Graph g = MakeGraph(3, {{0, 1, 1.0}});
  AffinityState state(g);
  state.ResetToVertex(2);
  const ReplicatorStats stats = ReplicatorShrink(&state);
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(stats.sweeps, 0u);
  EXPECT_DOUBLE_EQ(state.x(2), 1.0);
}

TEST(ReplicatorTest, SupportCanOnlyShrink) {
  Rng rng(77);
  auto g = ErdosRenyiWeighted(12, 0.4, 0.5, 2.0, &rng);
  ASSERT_TRUE(g.ok());
  std::vector<VertexId> support;
  for (VertexId v = 0; v < 12; ++v) support.push_back(v);
  AffinityState state(*g);
  ASSERT_TRUE(state.ResetToEmbedding(Embedding::UniformOn(12, support)).ok());
  ReplicatorShrink(&state);
  EXPECT_LE(state.support().size(), 12u);
  for (VertexId v : state.support()) EXPECT_GT(state.x(v), 0.0);
}

TEST(SeaTest, RejectsNegativeWeights) {
  Graph g = MakeGraph(2, {{0, 1, -2.0}});
  EXPECT_FALSE(RunSea(g, Embedding::UnitVector(2, 0)).ok());
}

TEST(SeaTest, RejectsOffSimplexStart) {
  Graph g = MakeGraph(2, {{0, 1, 2.0}});
  EXPECT_FALSE(RunSea(g, Embedding::Zeros(2)).ok());
}

TEST(SeaTest, ConvergesOnSingleEdge) {
  Graph g = MakeGraph(2, {{0, 1, 4.0}});
  auto result = RunSea(g, Embedding::UnitVector(2, 0));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_NEAR(result->affinity, 2.0, 1e-3);
}

TEST(SeaTest, ReachesCliqueValueFromAnySeed) {
  GraphBuilder builder(5);
  std::vector<VertexId> clique{0, 1, 2, 3, 4};
  ASSERT_TRUE(AddClique(&builder, clique, 1.0).ok());
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  for (VertexId seed = 0; seed < 5; ++seed) {
    auto result = RunSea(*g, Embedding::UnitVector(5, seed));
    ASSERT_TRUE(result.ok());
    EXPECT_NEAR(result->affinity, 4.0 / 5.0, 1e-2) << "seed " << seed;
  }
}

TEST(SeaTest, LooseConvergenceCanProduceExpansionErrors) {
  // Dense weighted graphs are where the paper observes the loose stopping
  // rule failing (Fig. 2b). Count errors across seeds; assert the run stays
  // sane whether or not errors occur, and record that the error counter is
  // wired up (it must be non-negative and bounded by rounds).
  Rng rng(4242);
  auto g = ErdosRenyiWeighted(60, 0.5, 0.2, 5.0, &rng);
  ASSERT_TRUE(g.ok());
  uint32_t total_errors = 0;
  for (VertexId seed = 0; seed < 60; ++seed) {
    SeaOptions options;
    options.replicator.objective_tolerance = 1e-2;  // extra loose
    options.max_rounds = 1000;
    auto result = RunSea(*g, Embedding::UnitVector(60, seed), options);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->expansion_errors, result->rounds);
    total_errors += result->expansion_errors;
  }
  // With a deliberately loose tolerance on a dense graph, at least one seed
  // should exhibit the error the paper reports for SEA.
  EXPECT_GT(total_errors, 0u);
}

TEST(SeaTest, TightToleranceAvoidsErrorsOnSmallGraphs) {
  Rng rng(515);
  auto g = ErdosRenyiWeighted(15, 0.3, 0.5, 2.0, &rng);
  ASSERT_TRUE(g.ok());
  for (VertexId seed = 0; seed < 15; seed += 3) {
    SeaOptions options;
    options.replicator.objective_tolerance = 1e-13;
    options.replicator.max_sweeps = 500'000;
    auto result = RunSea(*g, Embedding::UnitVector(15, seed), options);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->expansion_errors, 0u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace dcs
