#include "core/refinement.h"

#include <gtest/gtest.h>

#include "core/seacd.h"
#include "gen/random_graphs.h"
#include "graph/stats.h"
#include "test_util.h"
#include "util/rng.h"

namespace dcs {
namespace {

using ::dcs::testing::MakeGraph;

TEST(RefinementTest, RejectsNegativeWeights) {
  Graph g = MakeGraph(2, {{0, 1, -1.0}});
  EXPECT_FALSE(
      RefineToPositiveClique(g, Embedding::UnitVector(2, 0)).ok());
}

TEST(RefinementTest, RejectsOffSimplexInput) {
  Graph g = MakeGraph(2, {{0, 1, 1.0}});
  EXPECT_FALSE(RefineToPositiveClique(g, Embedding::Zeros(2)).ok());
}

TEST(RefinementTest, CliqueSupportIsUntouched) {
  Graph g = MakeGraph(3, {{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 1.0}});
  Embedding x = Embedding::UniformOn(3, std::vector<VertexId>{0, 1, 2});
  auto result = RefineToPositiveClique(g, x);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->merges, 0u);
  EXPECT_EQ(result->x.Support().size(), 3u);
  EXPECT_NEAR(result->affinity, 2.0 / 3.0, 1e-9);
}

TEST(RefinementTest, PathSupportCollapsesToAnEdge) {
  // Support {0,1,2} on path 0-1-2 is not a clique ((0,2) missing): the
  // refinement must end on a clique — here an edge or single vertex.
  Graph g = MakeGraph(3, {{0, 1, 2.0}, {1, 2, 2.0}});
  Embedding x = Embedding::UniformOn(3, std::vector<VertexId>{0, 1, 2});
  auto result = RefineToPositiveClique(g, x);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->merges, 1u);
  std::vector<VertexId> support = result->x.Support();
  EXPECT_TRUE(IsClique(g, support));
  EXPECT_LE(support.size(), 2u);
  // f must not decrease: the uniform path embedding has f = 2·(2/9)·2 = 8/9.
  EXPECT_GE(result->affinity, 8.0 / 9.0 - 1e-9);
}

TEST(RefinementTest, ObjectiveNeverDecreases) {
  Rng rng(31415);
  for (int trial = 0; trial < 10; ++trial) {
    auto g = ErdosRenyiWeighted(16, 0.3, 0.5, 3.0, &rng);
    ASSERT_TRUE(g.ok());
    // Random simplex start over several vertices.
    std::vector<VertexId> support;
    for (VertexId v = 0; v < 16; ++v) {
      if (rng.Bernoulli(0.4)) support.push_back(v);
    }
    if (support.empty()) support.push_back(0);
    Embedding x = Embedding::UniformOn(16, support);
    const double f_before = x.Affinity(*g);
    auto result = RefineToPositiveClique(*g, x);
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result->affinity, f_before - 1e-9);
    EXPECT_TRUE(IsPositiveClique(*g, result->x.Support()));
  }
}

TEST(RefinementTest, AfterSeacdSupportBecomesPositiveClique) {
  Rng rng(2718);
  for (int trial = 0; trial < 6; ++trial) {
    auto signed_g = RandomSignedGraph(24, 80, 0.65, 0.5, 3.0, &rng);
    ASSERT_TRUE(signed_g.ok());
    Graph gd_plus = signed_g->PositivePart();
    if (gd_plus.NumEdges() == 0) continue;
    auto seacd = RunSeacdFromVertex(gd_plus,
                                    static_cast<VertexId>(rng.NextBounded(24)));
    ASSERT_TRUE(seacd.ok());
    auto refined = RefineToPositiveClique(gd_plus, seacd->x);
    ASSERT_TRUE(refined.ok());
    // Clique in GD+ == positive clique in the signed difference graph.
    EXPECT_TRUE(IsPositiveClique(*signed_g, refined->x.Support()));
    EXPECT_GE(refined->affinity, seacd->affinity - 1e-9);
    EXPECT_TRUE(refined->x.IsOnSimplex(1e-6));
  }
}

TEST(RefinementTest, SupportShrinksAtMostToSingleton) {
  // Star graph: center + leaves, leaves not adjacent — any multi-leaf
  // support must collapse; final clique is an edge (center, one leaf).
  Graph g = MakeGraph(5, {{0, 1, 2.0}, {0, 2, 2.0}, {0, 3, 2.0}, {0, 4, 2.0}});
  Embedding x = Embedding::UniformOn(5, std::vector<VertexId>{0, 1, 2, 3, 4});
  auto result = RefineToPositiveClique(g, x);
  ASSERT_TRUE(result.ok());
  std::vector<VertexId> support = result->x.Support();
  EXPECT_TRUE(IsClique(g, support));
  ASSERT_FALSE(support.empty());
  EXPECT_LE(support.size(), 2u);
  EXPECT_NEAR(result->affinity, 1.0, 1e-3);  // edge of weight 2: f = w/2
}

}  // namespace
}  // namespace dcs
