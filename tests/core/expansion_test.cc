#include "core/expansion.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/coordinate_descent.h"
#include "gen/random_graphs.h"
#include "test_util.h"
#include "util/rng.h"

namespace dcs {
namespace {

using ::dcs::testing::MakeGraph;

TEST(ComputeExpansionSetTest, FindsProfitableNeighbors) {
  // x = e_0 on edge (0,1): f = 0, dx_1 = w > 0 → Z = {1}.
  Graph g = MakeGraph(3, {{0, 1, 2.0}});
  AffinityState state(g);
  state.ResetToVertex(0);
  const auto z = ComputeExpansionSet(state);
  EXPECT_EQ(z, (std::vector<VertexId>{1}));
}

TEST(ComputeExpansionSetTest, EmptyAtGlobalKkt) {
  // Optimal pair embedding on a single edge: dx_u = w/2 = f for both
  // endpoints and 0 elsewhere → Z empty.
  Graph g = MakeGraph(3, {{0, 1, 2.0}});
  AffinityState state(g);
  ASSERT_TRUE(state
                  .ResetToEmbedding(
                      Embedding::UniformOn(3, std::vector<VertexId>{0, 1}))
                  .ok());
  EXPECT_TRUE(ComputeExpansionSet(state).empty());
}

TEST(ComputeExpansionSetTest, ExcludesSupportVertices) {
  Graph g = MakeGraph(3, {{0, 1, 2.0}, {1, 2, 10.0}});
  AffinityState state(g);
  ASSERT_TRUE(state
                  .ResetToEmbedding(
                      Embedding::UniformOn(3, std::vector<VertexId>{0, 1}))
                  .ok());
  const auto z = ComputeExpansionSet(state);
  EXPECT_EQ(z, (std::vector<VertexId>{2}));
}

TEST(SeaExpandTest, NoOpWhenZEmpty) {
  Graph g = MakeGraph(2, {{0, 1, 2.0}});
  AffinityState state(g);
  ASSERT_TRUE(state
                  .ResetToEmbedding(
                      Embedding::UniformOn(2, std::vector<VertexId>{0, 1}))
                  .ok());
  const ExpansionResult result = SeaExpand(&state);
  EXPECT_FALSE(result.expanded);
  EXPECT_DOUBLE_EQ(result.f_before, result.f_after);
}

TEST(SeaExpandTest, StrictlyIncreasesObjectiveFromLocalKkt) {
  // Local KKT on {0,1} of a triangle with a better third vertex.
  Graph g = MakeGraph(3, {{0, 1, 2.0}, {0, 2, 3.0}, {1, 2, 3.0}});
  AffinityState state(g);
  ASSERT_TRUE(state
                  .ResetToEmbedding(
                      Embedding::UniformOn(3, std::vector<VertexId>{0, 1}))
                  .ok());
  // {0,1} split is a local KKT point on {0,1} (symmetric weights).
  const double f_before = state.Affinity();
  const ExpansionResult result = SeaExpand(&state);
  EXPECT_TRUE(result.expanded);
  EXPECT_EQ(result.num_added, 1u);
  EXPECT_GT(result.f_after, f_before);
  EXPECT_GT(state.x(2), 0.0);
  EXPECT_TRUE(state.ToEmbedding().IsOnSimplex(1e-9));
}

TEST(SeaExpandTest, ExpansionFromUnitVectorAddsAllPositiveNeighbors) {
  Graph g = MakeGraph(4, {{0, 1, 1.0}, {0, 2, 2.0}, {0, 3, 3.0}});
  AffinityState state(g);
  state.ResetToVertex(0);
  const ExpansionResult result = SeaExpand(&state);
  EXPECT_TRUE(result.expanded);
  EXPECT_EQ(result.num_added, 3u);
  EXPECT_GT(result.f_after, 0.0);
}

// The monotonicity property underlying Theorem 4, verified across random
// graphs: descend to a local KKT point, then expansion must not decrease f.
class ExpansionMonotonicityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExpansionMonotonicityTest, ExpansionAfterDescentNeverDecreasesF) {
  Rng rng(GetParam());
  auto g = ErdosRenyiWeighted(18, 0.3, 0.5, 3.0, &rng);
  ASSERT_TRUE(g.ok());
  AffinityState state(*g);
  state.ResetToVertex(static_cast<VertexId>(rng.NextBounded(18)));
  CoordinateDescentOptions options;
  options.epsilon_scale = 1e-9;  // tight: a genuine local KKT point
  for (int round = 0; round < 20; ++round) {
    std::vector<VertexId> support(state.support().begin(),
                                  state.support().end());
    DescendToLocalKkt(&state, support, options);
    const double f_before = state.Affinity();
    const ExpansionResult result = SeaExpand(&state);
    if (!result.expanded) break;
    EXPECT_GE(result.f_after, f_before - 1e-9)
        << "expansion decreased the objective from a local KKT point";
    EXPECT_TRUE(state.ToEmbedding().IsOnSimplex(1e-6));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExpansionMonotonicityTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12));

}  // namespace
}  // namespace dcs
