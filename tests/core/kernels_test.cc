// Golden scalar-vs-vectorized bit-identity suite for the kernel layer
// (core/kernels.h). Every default kernel must produce the same bits under
// forced-scalar and forced-AVX2 dispatch — on elementwise kernels, on the
// graph-producing twins of the reference builders, and end-to-end through
// RunNewSea at thread counts {1,2,4,7}. The reassociating fast_math
// reduction is held to thread-count invariance plus a tolerance against the
// exact path instead. AVX2 halves skip on hardware without AVX2.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>
#include <vector>

#include "core/kernels.h"
#include "core/newsea.h"
#include "gen/random_graphs.h"
#include "graph/difference.h"
#include "graph/graph.h"
#include "test_util.h"
#include "util/rng.h"

namespace dcs {
namespace {

using ::dcs::testing::MakeGraph;

// Restores automatic dispatch no matter how the test exits.
struct ScopedIsa {
  explicit ScopedIsa(KernelIsa isa) { ForceKernelIsa(isa); }
  ~ScopedIsa() { ResetForcedKernelIsa(); }
};

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

#define SKIP_WITHOUT_AVX2()                              \
  if (!KernelCpuHasAvx2()) {                             \
    GTEST_SKIP() << "CPU has no AVX2; scalar-only host"; \
  }

// Mixed magnitudes, signs, exact threshold hits, signed zeros and the
// values a discretize/clamp/reduce kernel could round differently.
std::vector<double> AdversarialDoubles(const DiscretizeSpec& spec) {
  std::vector<double> values = {
      0.0,
      -0.0,
      spec.weak_pos,
      spec.strong_pos,
      spec.strong_neg,
      std::nextafter(spec.weak_pos, 0.0),
      std::nextafter(spec.weak_pos, 1e300),
      std::nextafter(spec.strong_pos, 0.0),
      std::nextafter(spec.strong_pos, 1e300),
      std::nextafter(spec.strong_neg, 0.0),
      std::nextafter(spec.strong_neg, -1e300),
      -1e-300,
      1e-300,
      -1e300,
      1e300,
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN(),
      1.0 / 3.0,
      -2.0 / 3.0,
  };
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    values.push_back((rng.NextDouble() - 0.5) * 20.0);
  }
  return values;
}

TEST(KernelDispatchTest, ForceAndResetControlActiveIsa) {
  {
    ScopedIsa scalar(KernelIsa::kScalar);
    EXPECT_EQ(ActiveKernelIsa(), KernelIsa::kScalar);
  }
  const KernelIsa automatic = ActiveKernelIsa();
  EXPECT_EQ(automatic,
            KernelCpuHasAvx2() ? KernelIsa::kAvx2 : KernelIsa::kScalar);
  EXPECT_STREQ(KernelIsaName(KernelIsa::kScalar), "scalar");
  EXPECT_STREQ(KernelIsaName(KernelIsa::kAvx2), "avx2");
}

TEST(KernelDispatchTest, CountersAdvanceWhenKernelsRun) {
  const KernelCounters before = KernelCountersSnapshot();
  std::vector<double> values(64, 1.5);
  DiscretizeSpec spec;
  DiscretizeMapPacked(values.data(), values.data(), values.size(), spec);
  ClampAbovePacked(values.data(), values.size(), 1.0);
  const KernelCounters after = KernelCountersSnapshot();
  EXPECT_EQ(after.discretize_elements - before.discretize_elements, 64u);
  EXPECT_EQ(after.clamp_elements - before.clamp_elements, 64u);
  EXPECT_GE((after.avx2_calls + after.scalar_calls) -
                (before.avx2_calls + before.scalar_calls),
            2u);
}

TEST(KernelBitIdentityTest, DiscretizeMapMatchesScalarReference) {
  SKIP_WITHOUT_AVX2();
  DiscretizeSpec spec;
  const std::vector<double> input = AdversarialDoubles(spec);
  std::vector<double> scalar_out(input.size()), avx2_out(input.size());
  {
    ScopedIsa isa(KernelIsa::kScalar);
    DiscretizeMapPacked(input.data(), scalar_out.data(), input.size(), spec);
  }
  {
    ScopedIsa isa(KernelIsa::kAvx2);
    DiscretizeMapPacked(input.data(), avx2_out.data(), input.size(), spec);
  }
  for (size_t i = 0; i < input.size(); ++i) {
    EXPECT_TRUE(SameBits(scalar_out[i], spec.Map(input[i]))) << input[i];
    EXPECT_TRUE(SameBits(scalar_out[i], avx2_out[i])) << input[i];
  }
}

TEST(KernelBitIdentityTest, DiscretizeMapHandlesNonDefaultSpec) {
  SKIP_WITHOUT_AVX2();
  DiscretizeSpec spec;
  spec.strong_pos = 0.75;
  spec.weak_pos = 0.75;  // weak == strong: the >= chain must pick level_two
  spec.strong_neg = -1.0 / 3.0;
  spec.level_one = 0.5;
  spec.level_two = 7.0;
  ASSERT_TRUE(spec.Validate().ok());
  const std::vector<double> input = AdversarialDoubles(spec);
  std::vector<double> scalar_out(input.size()), avx2_out(input.size());
  {
    ScopedIsa isa(KernelIsa::kScalar);
    DiscretizeMapPacked(input.data(), scalar_out.data(), input.size(), spec);
  }
  {
    ScopedIsa isa(KernelIsa::kAvx2);
    DiscretizeMapPacked(input.data(), avx2_out.data(), input.size(), spec);
  }
  for (size_t i = 0; i < input.size(); ++i) {
    EXPECT_TRUE(SameBits(scalar_out[i], avx2_out[i])) << input[i];
  }
}

TEST(KernelBitIdentityTest, ClampMatchesStdMinBitwise) {
  SKIP_WITHOUT_AVX2();
  const std::vector<double> input = AdversarialDoubles(DiscretizeSpec{});
  for (const double cap : {1.0, 2.5, 1e-300, 1e300}) {
    std::vector<double> scalar_out = input, avx2_out = input;
    {
      ScopedIsa isa(KernelIsa::kScalar);
      ClampAbovePacked(scalar_out.data(), scalar_out.size(), cap);
    }
    {
      ScopedIsa isa(KernelIsa::kAvx2);
      ClampAbovePacked(avx2_out.data(), avx2_out.size(), cap);
    }
    for (size_t i = 0; i < input.size(); ++i) {
      EXPECT_TRUE(SameBits(scalar_out[i], std::min(input[i], cap)))
          << input[i] << " cap " << cap;
      EXPECT_TRUE(SameBits(scalar_out[i], avx2_out[i]))
          << input[i] << " cap " << cap;
    }
  }
}

TEST(KernelBitIdentityTest, AxpyScatterMatchesScalarLoop) {
  SKIP_WITHOUT_AVX2();
  Rng rng(7);
  const size_t n = 500;
  for (const size_t count : {0ul, 1ul, 3ul, 4ul, 7ul, 64ul, 333ul}) {
    std::vector<VertexId> targets(count);
    std::vector<double> weights(count);
    std::vector<double> dx_scalar(n), dx_avx2(n);
    for (size_t i = 0; i < count; ++i) {
      targets[i] = static_cast<VertexId>(rng.Next() % n);
      weights[i] = (rng.NextDouble() - 0.5) * 6.0;
    }
    for (size_t i = 0; i < n; ++i) {
      dx_scalar[i] = (rng.NextDouble() - 0.5);
      dx_avx2[i] = dx_scalar[i];
    }
    const double delta = 0.37;
    {
      ScopedIsa isa(KernelIsa::kScalar);
      AxpyScatter(targets.data(), weights.data(), count, delta,
                  dx_scalar.data());
    }
    {
      ScopedIsa isa(KernelIsa::kAvx2);
      AxpyScatter(targets.data(), weights.data(), count, delta,
                  dx_avx2.data());
    }
    for (size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(SameBits(dx_scalar[i], dx_avx2[i])) << "count " << count;
    }
  }
}

TEST(KernelBitIdentityTest, GradientExtremesMatchesScalarFirstWins) {
  SKIP_WITHOUT_AVX2();
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 64 + trial;
    std::vector<double> x(n, 0.0), dx(n, 0.0);
    std::vector<VertexId> candidates;
    for (size_t v = 0; v < n; ++v) {
      candidates.push_back(static_cast<VertexId>(v));
      // Ternary buckets force ties, signed zeros and ineligible lanes: some
      // x pinned at 1.0 (max-ineligible), some at 0.0 (min-ineligible), dx
      // drawn from a tiny set so duplicates are guaranteed.
      const uint64_t bucket = rng.Next() % 5;
      x[v] = bucket == 0 ? 1.0 : (bucket == 1 ? 0.0 : 0.25);
      const uint64_t grad_bucket = rng.Next() % 4;
      dx[v] = grad_bucket == 0   ? 0.0
              : grad_bucket == 1 ? -0.0
              : grad_bucket == 2 ? 0.5
                                 : -0.5;
    }
    GradExtremes scalar_ext, avx2_ext;
    bool scalar_ok, avx2_ok;
    {
      ScopedIsa isa(KernelIsa::kScalar);
      scalar_ok = ScanGradientExtremes(candidates.data(), candidates.size(),
                                       x.data(), dx.data(), &scalar_ext);
    }
    {
      ScopedIsa isa(KernelIsa::kAvx2);
      avx2_ok = ScanGradientExtremes(candidates.data(), candidates.size(),
                                     x.data(), dx.data(), &avx2_ext);
    }
    ASSERT_EQ(scalar_ok, avx2_ok);
    if (!scalar_ok) continue;
    EXPECT_EQ(scalar_ext.argmax, avx2_ext.argmax);
    EXPECT_EQ(scalar_ext.argmin, avx2_ext.argmin);
    EXPECT_TRUE(SameBits(scalar_ext.max_grad, avx2_ext.max_grad));
    EXPECT_TRUE(SameBits(scalar_ext.min_grad, avx2_ext.min_grad));
  }
}

TEST(KernelBitIdentityTest, SupportReduceExactMatchesOrderedSum) {
  SKIP_WITHOUT_AVX2();
  Rng rng(13);
  for (const size_t count : {0ul, 1ul, 5ul, 8ul, 64ul, 1001ul}) {
    const size_t n = count + 10;
    std::vector<VertexId> support(count);
    std::vector<double> x(n), dx(n);
    for (size_t i = 0; i < n; ++i) {
      x[i] = rng.NextDouble();
      dx[i] = (rng.NextDouble() - 0.5) * 4.0;
    }
    for (size_t i = 0; i < count; ++i) {
      support[i] = static_cast<VertexId>(rng.Next() % n);
    }
    double ordered = 0.0;
    for (size_t i = 0; i < count; ++i) {
      ordered += x[support[i]] * dx[support[i]];
    }
    double scalar_f, avx2_f, reassoc_f;
    {
      ScopedIsa isa(KernelIsa::kScalar);
      scalar_f = SupportReduce(support.data(), count, x.data(), dx.data(),
                               /*allow_reassociation=*/false);
    }
    {
      ScopedIsa isa(KernelIsa::kAvx2);
      avx2_f = SupportReduce(support.data(), count, x.data(), dx.data(),
                             /*allow_reassociation=*/false);
      reassoc_f = SupportReduce(support.data(), count, x.data(), dx.data(),
                                /*allow_reassociation=*/true);
    }
    EXPECT_TRUE(SameBits(ordered, scalar_f)) << count;
    EXPECT_TRUE(SameBits(ordered, avx2_f)) << count;
    EXPECT_NEAR(reassoc_f, ordered, 1e-9 * (1.0 + std::fabs(ordered)))
        << count;
  }
}

TEST(KernelBitIdentityTest, StagedRowLookupMatchesGraphEdgeWeight) {
  Rng rng(17);
  Result<Graph> graph = ErdosRenyiWeighted(120, 0.1, 0.5, 3.0, &rng);
  ASSERT_TRUE(graph.ok());
  std::vector<VertexId> targets;
  std::vector<double> weights;
  StageAdjacencySoa(*graph, &targets, &weights);
  size_t offset = 0;
  for (VertexId u = 0; u < graph->NumVertices(); ++u) {
    const size_t degree = graph->Degree(u);
    for (VertexId v = 0; v < graph->NumVertices(); ++v) {
      EXPECT_TRUE(SameBits(
          StagedRowLookup(targets.data() + offset, weights.data() + offset,
                          degree, v),
          graph->EdgeWeight(u, v)))
          << u << "," << v;
    }
    offset += degree;
  }
}

// --- Graph-producing kernel twins ------------------------------------------

void ExpectGraphsBitIdentical(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.NumVertices(), b.NumVertices());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  EXPECT_EQ(a.ContentFingerprint(), b.ContentFingerprint());
  for (VertexId u = 0; u < a.NumVertices(); ++u) {
    const auto row_a = a.NeighborsOf(u);
    const auto row_b = b.NeighborsOf(u);
    ASSERT_EQ(row_a.size(), row_b.size()) << "row " << u;
    for (size_t i = 0; i < row_a.size(); ++i) {
      EXPECT_EQ(row_a[i].to, row_b[i].to) << "row " << u;
      EXPECT_TRUE(SameBits(row_a[i].weight, row_b[i].weight)) << "row " << u;
    }
  }
}

TEST(GraphKernelsTest, DifferenceTwinMatchesReferenceOnRandomPairs) {
  for (const uint64_t seed : {3u, 21u, 77u}) {
    Rng rng(seed);
    Result<Graph> g1 = ErdosRenyiWeighted(200, 0.05, 0.5, 3.0, &rng);
    Result<Graph> g2 = ErdosRenyiWeighted(200, 0.05, 0.5, 3.0, &rng);
    ASSERT_TRUE(g1.ok() && g2.ok());
    for (const double alpha : {1.0, 0.5, 1.0 / 3.0}) {
      Result<Graph> reference = BuildDifferenceGraph(*g1, *g2, alpha);
      Result<Graph> kernel = GraphKernels::BuildDifferenceGraph(*g1, *g2, alpha);
      ASSERT_TRUE(reference.ok() && kernel.ok());
      ExpectGraphsBitIdentical(*reference, *kernel);
    }
  }
}

TEST(GraphKernelsTest, DifferenceTwinDropsCancellationsLikeTheBuilder) {
  // Identical edge in both graphs with alpha=1 cancels to exactly 0; a
  // near-identical one leaves a residue below the builder's zero_eps. Both
  // must be absent from both implementations.
  const Graph g1 = MakeGraph(4, {{0, 1, 2.0}, {1, 2, 1.0}, {2, 3, 1e-13}});
  const Graph g2 = MakeGraph(4, {{0, 1, 2.0}, {1, 2, 3.0}, {2, 3, 2e-13}});
  Result<Graph> reference = BuildDifferenceGraph(g1, g2, 1.0);
  Result<Graph> kernel = GraphKernels::BuildDifferenceGraph(g1, g2, 1.0);
  ASSERT_TRUE(reference.ok() && kernel.ok());
  ExpectGraphsBitIdentical(*reference, *kernel);
  EXPECT_FALSE(kernel->HasEdge(0, 1));
  EXPECT_FALSE(kernel->HasEdge(2, 3));
  EXPECT_TRUE(kernel->HasEdge(1, 2));
}

TEST(GraphKernelsTest, DifferenceTwinMirrorsReferenceErrors) {
  const Graph small = MakeGraph(3, {{0, 1, 1.0}});
  const Graph large = MakeGraph(4, {{0, 1, 1.0}});
  EXPECT_TRUE(GraphKernels::BuildDifferenceGraph(small, large, 1.0)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(GraphKernels::BuildDifferenceGraph(small, small, 0.0)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(GraphKernels::BuildDifferenceGraph(small, small, -2.0)
                  .status()
                  .IsInvalidArgument());
}

TEST(GraphKernelsTest, DiscretizeTwinMatchesReference) {
  for (const uint64_t seed : {5u, 31u}) {
    Rng rng(seed);
    Result<Graph> g1 = ErdosRenyiWeighted(150, 0.06, 0.5, 3.0, &rng);
    Result<Graph> g2 = ErdosRenyiWeighted(150, 0.06, 0.5, 3.0, &rng);
    ASSERT_TRUE(g1.ok() && g2.ok());
    Result<Graph> gd = BuildDifferenceGraph(*g1, *g2, 1.0);
    ASSERT_TRUE(gd.ok());
    DiscretizeSpec spec;
    spec.strong_pos = 2.0;
    spec.weak_pos = 1.0;
    spec.strong_neg = -1.5;
    Result<Graph> reference = DiscretizeWeights(*gd, spec);
    Result<Graph> kernel = GraphKernels::DiscretizeWeights(*gd, spec);
    ASSERT_TRUE(reference.ok() && kernel.ok());
    ExpectGraphsBitIdentical(*reference, *kernel);
  }
  DiscretizeSpec invalid;
  invalid.weak_pos = -1.0;
  const Graph g = MakeGraph(2, {{0, 1, 1.0}});
  EXPECT_TRUE(
      GraphKernels::DiscretizeWeights(g, invalid).status().IsInvalidArgument());
}

TEST(KernelBitIdentityTest, SeedOrderSortMatchesComparatorSort) {
  SKIP_WITHOUT_AVX2();
  // Duplicate-heavy, signed, zero-laden mu vectors: the radix path must
  // reproduce the comparator sort's order exactly, including the
  // ascending-id tie-break and −0 == +0 ties.
  Rng rng(314159);
  for (int round = 0; round < 6; ++round) {
    std::vector<double> mu(237);
    for (double& m : mu) {
      switch (rng.NextBounded(5)) {
        case 0: m = 0.0; break;
        case 1: m = -0.0; break;
        case 2: m = static_cast<double>(rng.NextBounded(4)); break;
        case 3: m = -rng.Uniform(0.0, 3.0); break;
        default: m = rng.Uniform(0.0, 8.0); break;
      }
    }
    std::vector<VertexId> expected(mu.size());
    std::iota(expected.begin(), expected.end(), VertexId{0});
    std::stable_sort(expected.begin(), expected.end(),
                     [&](VertexId a, VertexId b) {
                       return mu[a] != mu[b] ? mu[a] > mu[b] : a < b;
                     });
    std::vector<VertexId> scalar_order;
    std::vector<VertexId> kernel_order;
    {
      ScopedIsa isa(KernelIsa::kScalar);
      SeedOrderSort(mu, &scalar_order);
    }
    {
      ScopedIsa isa(KernelIsa::kAvx2);
      SeedOrderSort(mu, &kernel_order);
    }
    EXPECT_EQ(scalar_order, expected);
    EXPECT_EQ(kernel_order, expected);
  }
  // All-distinct mu past the counting table's capacity exercises the radix
  // fallback; it must agree with the comparator sort too.
  std::vector<double> distinct(3000);
  for (double& m : distinct) m = rng.NextDouble() * 16.0 - 4.0;
  std::vector<VertexId> expected(distinct.size());
  std::iota(expected.begin(), expected.end(), VertexId{0});
  std::stable_sort(expected.begin(), expected.end(),
                   [&](VertexId a, VertexId b) {
                     return distinct[a] != distinct[b]
                                ? distinct[a] > distinct[b]
                                : a < b;
                   });
  std::vector<VertexId> radix_order;
  {
    ScopedIsa isa(KernelIsa::kAvx2);
    SeedOrderSort(distinct, &radix_order);
  }
  EXPECT_EQ(radix_order, expected);

  // Degenerate sizes.
  std::vector<VertexId> order;
  SeedOrderSort({}, &order);
  EXPECT_TRUE(order.empty());
  SeedOrderSort({7.5}, &order);
  EXPECT_EQ(order, std::vector<VertexId>{0});
}

TEST(GraphKernelsTest, PositivePartTwinMatchesReference) {
  for (const uint64_t seed : {11u, 47u}) {
    Rng rng(seed);
    Result<Graph> gd = RandomSignedGraph(250, 2000, 0.6, 0.5, 4.0, &rng);
    ASSERT_TRUE(gd.ok());
    ExpectGraphsBitIdentical(gd->PositivePart(),
                             GraphKernels::PositivePart(*gd));
  }
  // Edge cases: empty graph, all-negative rows (everything dropped) and an
  // isolated middle vertex.
  ExpectGraphsBitIdentical(Graph(5).PositivePart(),
                           GraphKernels::PositivePart(Graph(5)));
  const Graph negative =
      MakeGraph(4, {{0, 1, -2.0}, {1, 2, -0.5}, {2, 3, -1.0}});
  ExpectGraphsBitIdentical(negative.PositivePart(),
                           GraphKernels::PositivePart(negative));
  EXPECT_EQ(GraphKernels::PositivePart(negative).NumEdges(), 0u);
  const Graph mixed = MakeGraph(5, {{0, 1, 3.0}, {0, 3, -1.0}, {3, 4, 2.0}});
  ExpectGraphsBitIdentical(mixed.PositivePart(),
                           GraphKernels::PositivePart(mixed));
}

TEST(GraphKernelsTest, ClampTwinMatchesReference) {
  Rng rng(23);
  Result<Graph> gd = RandomSignedGraph(200, 1500, 0.6, 0.5, 4.0, &rng);
  ASSERT_TRUE(gd.ok());
  for (const double cap : {0.75, 2.0, 100.0}) {
    ExpectGraphsBitIdentical(gd->WeightsClampedAbove(cap),
                             GraphKernels::WeightsClampedAbove(*gd, cap));
  }
}

// --- End-to-end: solver bit-identity across ISA × thread count -------------

Graph SolverFixtureGdPlus(uint64_t seed) {
  Rng rng(seed);
  Result<Graph> gd =
      RandomSignedGraph(/*n=*/300, /*m=*/2400, /*positive_fraction=*/0.7,
                        /*magnitude_lo=*/0.5, /*magnitude_hi=*/3.0, &rng);
  DCS_CHECK(gd.ok());
  return gd->PositivePart();
}

TEST(KernelSolverTest, NewSeaBitIdenticalAcrossIsaAndThreads) {
  SKIP_WITHOUT_AVX2();
  const Graph gd_plus = SolverFixtureGdPlus(41);
  const SmartInitBounds bounds = ComputeSmartInitBounds(gd_plus);
  DcsgaOptions reference_options;  // parallelism = 1
  DcsgaResult reference;
  {
    ScopedIsa isa(KernelIsa::kScalar);
    Result<DcsgaResult> ref_run = RunNewSea(gd_plus, bounds, reference_options);
    ASSERT_TRUE(ref_run.ok());
    reference = std::move(*ref_run);
  }
  for (const KernelIsa isa : {KernelIsa::kScalar, KernelIsa::kAvx2}) {
    for (const uint32_t threads : {1u, 2u, 4u, 7u}) {
      ScopedIsa scoped(isa);
      DcsgaOptions options;
      options.parallelism = threads;
      Result<DcsgaResult> run = RunNewSea(gd_plus, bounds, options);
      ASSERT_TRUE(run.ok());
      EXPECT_EQ(run->affinity, reference.affinity)
          << KernelIsaName(isa) << " x" << threads;
      EXPECT_EQ(run->support, reference.support)
          << KernelIsaName(isa) << " x" << threads;
      EXPECT_EQ(run->x.x, reference.x.x)
          << KernelIsaName(isa) << " x" << threads;
    }
  }
}

TEST(KernelSolverTest, FastMathIsThreadCountInvariantAndNearExact) {
  const Graph gd_plus = SolverFixtureGdPlus(43);
  const SmartInitBounds bounds = ComputeSmartInitBounds(gd_plus);
  DcsgaOptions exact_options;
  Result<DcsgaResult> exact = RunNewSea(gd_plus, bounds, exact_options);
  ASSERT_TRUE(exact.ok());

  DcsgaOptions fast_sequential;
  fast_sequential.fast_math = true;
  Result<DcsgaResult> fast_ref = RunNewSea(gd_plus, bounds, fast_sequential);
  ASSERT_TRUE(fast_ref.ok());
  // Reassociation may perturb the affinity by ulps, never the subgraph on a
  // fixture with a clear optimum.
  EXPECT_EQ(fast_ref->support, exact->support);
  EXPECT_NEAR(fast_ref->affinity, exact->affinity,
              1e-9 * (1.0 + std::fabs(exact->affinity)));

  for (const uint32_t threads : {2u, 4u, 7u}) {
    DcsgaOptions options;
    options.fast_math = true;
    options.parallelism = threads;
    Result<DcsgaResult> run = RunNewSea(gd_plus, bounds, options);
    ASSERT_TRUE(run.ok());
    // fast_math is per-seed arithmetic, so sharding still cannot change it:
    // bit-identical to the sequential fast_math run at every thread count.
    EXPECT_EQ(run->affinity, fast_ref->affinity) << threads << " threads";
    EXPECT_EQ(run->support, fast_ref->support) << threads << " threads";
    EXPECT_EQ(run->x.x, fast_ref->x.x) << threads << " threads";
  }
}

}  // namespace
}  // namespace dcs
