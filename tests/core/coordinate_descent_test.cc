#include "core/coordinate_descent.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "gen/random_graphs.h"
#include "graph/stats.h"
#include "test_util.h"
#include "util/rng.h"

namespace dcs {
namespace {

using ::dcs::testing::Fig1Gd;
using ::dcs::testing::MakeGraph;

// Local KKT condition (Eq. 11) on a restricted set.
bool SatisfiesLocalKkt(const AffinityState& state,
                       const std::vector<VertexId>& allowed, double tol) {
  double max_grad = -1e300, min_grad = 1e300;
  for (VertexId k : allowed) {
    const double grad = 2.0 * state.dx(k);
    if (state.x(k) < 1.0) max_grad = std::max(max_grad, grad);
    if (state.x(k) > 0.0) min_grad = std::min(min_grad, grad);
  }
  return max_grad - min_grad <= tol;
}

TEST(CoordinateDescentTest, SingleVertexConvergesImmediately) {
  Graph gd = Fig1Gd();
  AffinityState state(gd);
  state.ResetToVertex(0);
  std::vector<VertexId> allowed{0};
  const auto stats = DescendToLocalKkt(&state, allowed);
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(stats.iterations, 0u);
}

TEST(CoordinateDescentTest, PairOnPositiveEdgeSplitsEvenly) {
  // One edge of weight w: optimum x = (1/2, 1/2), f = w/2.
  Graph g = MakeGraph(2, {{0, 1, 4.0}});
  AffinityState state(g);
  state.ResetToVertex(0);
  std::vector<VertexId> allowed{0, 1};
  const auto stats = DescendToLocalKkt(&state, allowed);
  EXPECT_TRUE(stats.converged);
  EXPECT_NEAR(state.x(0), 0.5, 1e-2);
  EXPECT_NEAR(state.x(1), 0.5, 1e-2);
  EXPECT_NEAR(state.Affinity(), 2.0, 1e-2);
}

TEST(CoordinateDescentTest, UnweightedTriangleReachesMotzkinStraus) {
  Graph g = MakeGraph(3, {{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 1.0}});
  AffinityState state(g);
  Embedding start = Embedding::Zeros(3);
  start.x = {0.7, 0.2, 0.1};
  ASSERT_TRUE(state.ResetToEmbedding(start).ok());
  std::vector<VertexId> allowed{0, 1, 2};
  CoordinateDescentOptions options;
  options.epsilon_scale = 1e-8;
  const auto stats = DescendToLocalKkt(&state, allowed, options);
  EXPECT_TRUE(stats.converged);
  EXPECT_NEAR(state.Affinity(), 2.0 / 3.0, 1e-6);
  for (VertexId v = 0; v < 3; ++v) EXPECT_NEAR(state.x(v), 1.0 / 3.0, 1e-4);
}

TEST(CoordinateDescentTest, SymmetricNegativeEdgeIsAKktPoint) {
  // With D(0,1) < 0 and x = (1/2, 1/2), both gradients are equal, so the
  // first-order (KKT) conditions hold and 2-coordinate descent stops —
  // even though the point is a *minimum* of the convex pair objective.
  // Escaping such stationary points is the Refinement step's job
  // (Theorem 5); on GD+ the situation cannot arise at all.
  Graph g = MakeGraph(2, {{0, 1, -3.0}});
  AffinityState state(g);
  Embedding start = Embedding::Zeros(2);
  start.x = {0.5, 0.5};
  ASSERT_TRUE(state.ResetToEmbedding(start).ok());
  std::vector<VertexId> allowed{0, 1};
  const auto stats = DescendToLocalKkt(&state, allowed);
  EXPECT_TRUE(stats.converged);
  EXPECT_NEAR(2.0 * state.dx(0), 2.0 * state.dx(1), 1e-12);
  // From an asymmetric start the descent does escape to a single vertex.
  start.x = {0.6, 0.4};
  ASSERT_TRUE(state.ResetToEmbedding(start).ok());
  DescendToLocalKkt(&state, allowed);
  EXPECT_EQ(state.support().size(), 1u);
  EXPECT_NEAR(state.Affinity(), 0.0, 1e-12);
}

TEST(CoordinateDescentTest, ObjectiveNeverDecreases) {
  Rng rng(2024);
  for (int trial = 0; trial < 10; ++trial) {
    auto g = RandomSignedGraph(15, 45, 0.65, 0.5, 3.0, &rng);
    ASSERT_TRUE(g.ok());
    AffinityState state(*g);
    // Random simplex start over a random support.
    std::vector<VertexId> allowed;
    for (VertexId v = 0; v < 15; ++v) {
      if (rng.Bernoulli(0.5)) allowed.push_back(v);
    }
    if (allowed.size() < 2) continue;
    Embedding start = Embedding::UniformOn(15, allowed);
    ASSERT_TRUE(state.ResetToEmbedding(start).ok());
    const double f_before = state.Affinity();
    const auto stats = DescendToLocalKkt(&state, allowed);
    EXPECT_TRUE(stats.converged);
    EXPECT_GE(state.Affinity(), f_before - 1e-9);
  }
}

TEST(CoordinateDescentTest, ReachesLocalKktOnRandomGraphs) {
  Rng rng(4096);
  for (int trial = 0; trial < 10; ++trial) {
    auto g = ErdosRenyiWeighted(12, 0.4, 0.5, 3.0, &rng);
    ASSERT_TRUE(g.ok());
    AffinityState state(*g);
    std::vector<VertexId> allowed(12);
    for (VertexId v = 0; v < 12; ++v) allowed[v] = v;
    state.ResetToVertex(static_cast<VertexId>(rng.NextBounded(12)));
    CoordinateDescentOptions options;
    options.epsilon_scale = 1e-6;
    const auto stats = DescendToLocalKkt(&state, allowed, options);
    EXPECT_TRUE(stats.converged);
    EXPECT_TRUE(SatisfiesLocalKkt(state, allowed, 1e-6 / 12.0 + 1e-9));
  }
}

TEST(CoordinateDescentTest, SimplexPreservedThroughDescent) {
  Rng rng(888);
  auto g = RandomSignedGraph(20, 70, 0.6, 0.5, 4.0, &rng);
  ASSERT_TRUE(g.ok());
  AffinityState state(*g);
  std::vector<VertexId> allowed(20);
  for (VertexId v = 0; v < 20; ++v) allowed[v] = v;
  state.ResetToVertex(5);
  DescendToLocalKkt(&state, allowed);
  Embedding e = state.ToEmbedding();
  EXPECT_TRUE(e.IsOnSimplex(1e-6));
}

// Regression for the max_iterations boundary: a run whose KKT gap closes
// exactly on the last budgeted move must report converged=true — the
// extremes are re-checked after the loop instead of inferring "budget
// exhausted ⇒ still open". Run A finds the exact iteration count N the
// fixture needs; a fresh run B with max_iterations=N must converge in
// exactly N moves.
TEST(CoordinateDescentTest, GapClosingOnFinalBudgetedMoveReportsConverged) {
  Rng rng(2018);
  Result<Graph> gd = ErdosRenyiWeighted(40, 0.3, 0.5, 2.0, &rng);
  ASSERT_TRUE(gd.ok());
  const Graph gd_plus = gd->PositivePart();
  std::vector<VertexId> allowed;
  for (VertexId v = 0; v < gd_plus.NumVertices(); ++v) allowed.push_back(v);

  AffinityState probe(gd_plus);
  probe.ResetToVertex(0);
  const auto unbounded = DescendToLocalKkt(&probe, allowed);
  ASSERT_TRUE(unbounded.converged);
  ASSERT_GT(unbounded.iterations, 0u);

  CoordinateDescentOptions exact_budget;
  exact_budget.max_iterations = unbounded.iterations;
  AffinityState state(gd_plus);
  state.ResetToVertex(0);
  const auto bounded = DescendToLocalKkt(&state, allowed, exact_budget);
  EXPECT_TRUE(bounded.converged)
      << "gap closed on move " << bounded.iterations << "/"
      << exact_budget.max_iterations << " but was reported unconverged";
  EXPECT_EQ(bounded.iterations, unbounded.iterations);

  // One budget short of the closing move must still report unconverged.
  if (unbounded.iterations > 1) {
    CoordinateDescentOptions short_budget;
    short_budget.max_iterations = unbounded.iterations - 1;
    AffinityState starved(gd_plus);
    starved.ResetToVertex(0);
    const auto unfinished = DescendToLocalKkt(&starved, allowed, short_budget);
    EXPECT_FALSE(unfinished.converged);
    EXPECT_EQ(unfinished.iterations, short_budget.max_iterations);
  }
}

TEST(SatisfiesKktTest, UnitVectorWithNoBetterNeighborIsKkt) {
  // Isolated vertex: x = e_v is globally KKT (all gradients 0 = λ).
  Graph g = MakeGraph(3, {{1, 2, 1.0}});
  AffinityState state(g);
  state.ResetToVertex(0);
  EXPECT_TRUE(SatisfiesKkt(state, 1e-9));
}

TEST(SatisfiesKktTest, DetectsViolation) {
  // x = e_1 with the positive edge (1,2): ∇_2 = 2·w > λ = 0 → not KKT.
  Graph g = MakeGraph(3, {{1, 2, 1.0}});
  AffinityState state(g);
  state.ResetToVertex(1);
  EXPECT_FALSE(SatisfiesKkt(state, 1e-9));
}

TEST(SatisfiesKktTest, OptimalCliqueEmbeddingIsKkt) {
  GraphBuilder builder(4);
  std::vector<VertexId> clique{0, 1, 2, 3};
  ASSERT_TRUE(AddClique(&builder, clique, 2.0).ok());
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  AffinityState state(*g);
  ASSERT_TRUE(
      state.ResetToEmbedding(Embedding::UniformOn(4, clique)).ok());
  EXPECT_TRUE(SatisfiesKkt(state, 1e-9));
}

}  // namespace
}  // namespace dcs
