#include "core/embedding.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "gen/random_graphs.h"
#include "test_util.h"
#include "util/rng.h"

namespace dcs {
namespace {

using ::dcs::testing::Fig1Gd;
using ::dcs::testing::MakeGraph;

TEST(EmbeddingTest, UnitVector) {
  Embedding e = Embedding::UnitVector(4, 2);
  EXPECT_DOUBLE_EQ(e.x[2], 1.0);
  EXPECT_DOUBLE_EQ(e.Sum(), 1.0);
  EXPECT_TRUE(e.IsOnSimplex());
  EXPECT_EQ(e.Support(), (std::vector<VertexId>{2}));
}

TEST(EmbeddingTest, UniformOn) {
  std::vector<VertexId> members{0, 3};
  Embedding e = Embedding::UniformOn(5, members);
  EXPECT_DOUBLE_EQ(e.x[0], 0.5);
  EXPECT_DOUBLE_EQ(e.x[3], 0.5);
  EXPECT_TRUE(e.IsOnSimplex());
}

TEST(EmbeddingTest, SimplexValidation) {
  Embedding e = Embedding::Zeros(3);
  EXPECT_FALSE(e.IsOnSimplex());  // sums to 0
  e.x = {0.5, 0.6, 0.0};
  EXPECT_FALSE(e.IsOnSimplex());  // sums to 1.1
  e.x = {1.5, -0.5, 0.0};
  EXPECT_FALSE(e.IsOnSimplex());  // negative entry
  e.x = {0.25, 0.25, 0.5};
  EXPECT_TRUE(e.IsOnSimplex());
}

TEST(EmbeddingTest, AffinityOfSingleEdgePair) {
  Graph g = MakeGraph(3, {{0, 1, 6.0}});
  Embedding e = Embedding::UniformOn(3, std::vector<VertexId>{0, 1});
  EXPECT_DOUBLE_EQ(e.Affinity(g), 3.0);  // 2·(1/2)(1/2)·6
}

TEST(EmbeddingTest, AffinityOfUnweightedClique) {
  GraphBuilder builder(5);
  std::vector<VertexId> clique{0, 1, 2, 3, 4};
  ASSERT_TRUE(AddClique(&builder, clique, 1.0).ok());
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  Embedding e = Embedding::UniformOn(5, clique);
  EXPECT_NEAR(e.Affinity(*g), 4.0 / 5.0, 1e-12);  // Motzkin–Straus
}

TEST(EmbeddingTest, AffinityWithNegativeEdges) {
  Graph gd = Fig1Gd();
  Embedding e = Embedding::UniformOn(5, std::vector<VertexId>{2, 3});
  EXPECT_DOUBLE_EQ(e.Affinity(gd), -1.0);  // 2·(1/2)(1/2)·(−2)
}

// ---- AffinityState ----

TEST(AffinityStateTest, ResetToVertex) {
  Graph gd = Fig1Gd();
  AffinityState state(gd);
  state.ResetToVertex(1);
  EXPECT_DOUBLE_EQ(state.x(1), 1.0);
  EXPECT_DOUBLE_EQ(state.Affinity(), 0.0);
  ASSERT_EQ(state.support().size(), 1u);
  EXPECT_EQ(state.support()[0], 1u);
  // dx reflects edges incident to vertex 1: (0,1)=4, (1,2)=3.
  EXPECT_DOUBLE_EQ(state.dx(0), 4.0);
  EXPECT_DOUBLE_EQ(state.dx(2), 3.0);
  EXPECT_DOUBLE_EQ(state.dx(1), 0.0);
}

TEST(AffinityStateTest, ResetClearsPreviousRun) {
  Graph gd = Fig1Gd();
  AffinityState state(gd);
  state.ResetToVertex(1);
  state.SetX(1, 0.5);
  state.SetX(0, 0.5);
  state.ResetToVertex(4);
  EXPECT_DOUBLE_EQ(state.x(0), 0.0);
  EXPECT_DOUBLE_EQ(state.x(1), 0.0);
  EXPECT_DOUBLE_EQ(state.dx(0), -1.0);  // only edge (0,4) = −1 now
  EXPECT_DOUBLE_EQ(state.dx(2), 0.0);
  EXPECT_EQ(state.support().size(), 1u);
}

TEST(AffinityStateTest, ResetToEmbeddingValidates) {
  Graph gd = Fig1Gd();
  AffinityState state(gd);
  Embedding bad = Embedding::Zeros(5);
  EXPECT_FALSE(state.ResetToEmbedding(bad).ok());
  Embedding wrong_size = Embedding::UnitVector(4, 0);
  EXPECT_FALSE(state.ResetToEmbedding(wrong_size).ok());
  Embedding good = Embedding::UniformOn(5, std::vector<VertexId>{0, 1});
  EXPECT_TRUE(state.ResetToEmbedding(good).ok());
  EXPECT_DOUBLE_EQ(state.Affinity(), 2.0);  // 2·(1/2)(1/2)·4
}

TEST(AffinityStateTest, IncrementalDxMatchesNaiveRecomputation) {
  Rng rng(314);
  auto g = RandomSignedGraph(25, 80, 0.6, 0.5, 4.0, &rng);
  ASSERT_TRUE(g.ok());
  AffinityState state(*g);
  state.ResetToVertex(0);
  // Random walk of SetX operations keeping entries non-negative.
  std::vector<double> x(25, 0.0);
  x[0] = 1.0;
  for (int step = 0; step < 200; ++step) {
    const VertexId v = static_cast<VertexId>(rng.NextBounded(25));
    const double value = rng.NextDouble();
    state.SetX(v, value);
    x[v] = value;
  }
  for (VertexId v = 0; v < 25; ++v) {
    double expected_dx = 0.0;
    for (const Neighbor& nb : g->NeighborsOf(v)) {
      expected_dx += nb.weight * x[nb.to];
    }
    EXPECT_NEAR(state.dx(v), expected_dx, 1e-9) << "vertex " << v;
  }
  // Affinity consistent with the embedding evaluation.
  EXPECT_NEAR(state.Affinity(), state.ToEmbedding().Affinity(*g), 1e-9);
}

TEST(AffinityStateTest, SupportTracksPositiveEntries) {
  Graph gd = Fig1Gd();
  AffinityState state(gd);
  state.ResetToVertex(0);
  state.SetX(1, 0.3);
  state.SetX(2, 0.2);
  state.SetX(1, 0.0);
  std::vector<VertexId> support(state.support().begin(),
                                state.support().end());
  std::sort(support.begin(), support.end());
  EXPECT_EQ(support, (std::vector<VertexId>{0, 2}));
}

TEST(AffinityStateTest, RenormalizeRestoresSimplex) {
  Graph gd = Fig1Gd();
  AffinityState state(gd);
  state.ResetToVertex(0);
  state.SetX(1, 0.6);  // sum now 1.6
  state.Renormalize();
  Embedding e = state.ToEmbedding();
  EXPECT_TRUE(e.IsOnSimplex(1e-9));
  EXPECT_NEAR(state.x(0), 1.0 / 1.6, 1e-12);
  // dx scaled coherently.
  EXPECT_NEAR(state.Affinity(), e.Affinity(gd), 1e-12);
}

TEST(AffinityStateTest, ResetIsExactEvenAfterSupportChurn) {
  // The parallel NewSEA determinism proof needs reset to be *exact*: after
  // ResetToVertex the state must be bit-identical to a fresh one, including
  // dx entries adjacent to vertices that entered and then left the support —
  // where incremental ±w·x updates and renormalize scalings can leave
  // last-ulp residue that the support-only sweep of the old reset missed.
  Rng rng(3);
  Result<Graph> graph = ErdosRenyiWeighted(60, 0.1, 0.3, 2.7, &rng);
  ASSERT_TRUE(graph.ok());
  AffinityState churned(*graph);
  // Churn: spread mass, renormalize (scales x and dx differently in ulp
  // terms), then squeeze vertices back out of the support.
  for (VertexId v = 0; v < 20; ++v) churned.SetX(v, 0.05 * (v % 3 + 1));
  churned.Renormalize();
  for (VertexId v = 5; v < 20; ++v) churned.SetX(v, 0.0);
  churned.Renormalize();
  churned.ResetToVertex(2);

  AffinityState fresh(*graph);
  fresh.ResetToVertex(2);
  for (VertexId v = 0; v < graph->NumVertices(); ++v) {
    EXPECT_EQ(churned.x(v), fresh.x(v)) << "x at " << v;
    EXPECT_EQ(churned.dx(v), fresh.dx(v)) << "dx at " << v;
  }
  EXPECT_EQ(std::vector<VertexId>(churned.support().begin(),
                                  churned.support().end()),
            std::vector<VertexId>(fresh.support().begin(),
                                  fresh.support().end()));
}

TEST(AffinityStateTest, ComputeExtremes) {
  Graph gd = Fig1Gd();
  AffinityState state(gd);
  state.ResetToVertex(3);
  state.SetX(3, 0.5);
  state.SetX(4, 0.5);
  // Gradients: ∇_v = 2·dx_v.
  std::vector<VertexId> candidates{3, 4};
  AffinityState::GradientExtremes ext;
  ASSERT_TRUE(state.ComputeExtremes(candidates, &ext));
  EXPECT_DOUBLE_EQ(ext.max_grad, std::max(2.0 * state.dx(3), 2.0 * state.dx(4)));
  EXPECT_DOUBLE_EQ(ext.min_grad, std::min(2.0 * state.dx(3), 2.0 * state.dx(4)));
}

TEST(AffinityStateTest, ComputeExtremesEmptyCandidates) {
  Graph gd = Fig1Gd();
  AffinityState state(gd);
  state.ResetToVertex(0);
  AffinityState::GradientExtremes ext;
  EXPECT_FALSE(state.ComputeExtremes(std::vector<VertexId>{}, &ext));
}

}  // namespace
}  // namespace dcs
