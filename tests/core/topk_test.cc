#include "core/topk.h"

#include <gtest/gtest.h>

#include <set>

#include "gen/random_graphs.h"
#include "graph/stats.h"
#include "test_util.h"
#include "util/rng.h"

namespace dcs {
namespace {

using ::dcs::testing::MakeGraph;

// A difference graph with three well-separated positive cliques of
// decreasing strength plus negative noise between them.
Graph ThreeCliqueGd() {
  GraphBuilder builder(20);
  std::vector<VertexId> strong{0, 1, 2, 3};
  std::vector<VertexId> medium{5, 6, 7};
  std::vector<VertexId> weak{10, 11};
  DCS_CHECK(AddClique(&builder, strong, 5.0).ok());
  DCS_CHECK(AddClique(&builder, medium, 3.0).ok());
  DCS_CHECK(AddClique(&builder, weak, 2.0).ok());
  builder.AddEdgeUnchecked(3, 5, -1.0);
  builder.AddEdgeUnchecked(7, 10, -2.0);
  auto g = builder.Build();
  DCS_CHECK(g.ok());
  return std::move(g).value();
}

TEST(TopkDcsadTest, FindsAllThreeCliquesInOrder) {
  TopkDcsadOptions options;
  options.k = 5;
  auto results = MineTopKDcsad(ThreeCliqueGd(), options);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 3u);
  EXPECT_EQ((*results)[0].subset, (std::vector<VertexId>{0, 1, 2, 3}));
  EXPECT_EQ((*results)[1].subset, (std::vector<VertexId>{5, 6, 7}));
  EXPECT_EQ((*results)[2].subset, (std::vector<VertexId>{10, 11}));
  EXPECT_DOUBLE_EQ((*results)[0].density, 15.0);  // (k−1)·w
  EXPECT_DOUBLE_EQ((*results)[1].density, 6.0);
  EXPECT_DOUBLE_EQ((*results)[2].density, 2.0);
}

TEST(TopkDcsadTest, KLimitsResults) {
  TopkDcsadOptions options;
  options.k = 2;
  auto results = MineTopKDcsad(ThreeCliqueGd(), options);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 2u);
}

TEST(TopkDcsadTest, MinDensityStopsEarly) {
  TopkDcsadOptions options;
  options.k = 5;
  options.min_density = 5.0;
  auto results = MineTopKDcsad(ThreeCliqueGd(), options);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 2u);  // the weak pair (ρ = 2) is filtered
}

TEST(TopkDcsadTest, ResultsAreVertexDisjoint) {
  Rng rng(55);
  auto gd = RandomSignedGraph(50, 200, 0.6, 0.5, 4.0, &rng);
  ASSERT_TRUE(gd.ok());
  TopkDcsadOptions options;
  options.k = 4;
  auto results = MineTopKDcsad(*gd, options);
  ASSERT_TRUE(results.ok());
  std::set<VertexId> seen;
  for (const RankedDcsad& r : *results) {
    for (VertexId v : r.subset) {
      EXPECT_TRUE(seen.insert(v).second) << "vertex " << v << " reused";
    }
    EXPECT_GT(r.density, 0.0);
    EXPECT_NEAR(AverageDegreeDensity(*gd, r.subset), r.density, 1e-9);
  }
}

TEST(TopkDcsadTest, EmptyGraphRejected) {
  EXPECT_FALSE(MineTopKDcsad(Graph(0)).ok());
}

TEST(TopkDcsadTest, AllNegativeYieldsNothing) {
  Graph gd = MakeGraph(4, {{0, 1, -1.0}, {2, 3, -2.0}});
  auto results = MineTopKDcsad(gd);
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->empty());
}

TEST(TopkDcsgaTest, FindsAllThreeCliquesRanked) {
  TopkDcsgaOptions options;
  options.k = 5;
  auto results = MineTopKDcsga(ThreeCliqueGd().PositivePart(), options);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 3u);
  EXPECT_EQ((*results)[0].members, (std::vector<VertexId>{0, 1, 2, 3}));
  EXPECT_EQ((*results)[1].members, (std::vector<VertexId>{5, 6, 7}));
  EXPECT_EQ((*results)[2].members, (std::vector<VertexId>{10, 11}));
  EXPECT_GT((*results)[0].affinity, (*results)[1].affinity);
  EXPECT_GT((*results)[1].affinity, (*results)[2].affinity);
}

TEST(TopkDcsgaTest, DisjointnessEnforced) {
  Rng rng(66);
  auto gd = RandomSignedGraph(40, 160, 0.7, 0.5, 4.0, &rng);
  ASSERT_TRUE(gd.ok());
  TopkDcsgaOptions options;
  options.k = 6;
  options.disjoint = true;
  auto results = MineTopKDcsga(gd->PositivePart(), options);
  ASSERT_TRUE(results.ok());
  std::set<VertexId> seen;
  for (const CliqueRecord& clique : *results) {
    EXPECT_TRUE(IsPositiveClique(*gd, clique.members));
    for (VertexId v : clique.members) {
      EXPECT_TRUE(seen.insert(v).second);
    }
  }
}

TEST(TopkDcsgaTest, NonDisjointAllowsOverlap) {
  // Two overlapping strong cliques sharing vertex 2.
  GraphBuilder builder(8);
  DCS_CHECK(AddClique(&builder, std::vector<VertexId>{0, 1, 2}, 4.0).ok());
  DCS_CHECK(AddClique(&builder, std::vector<VertexId>{2, 3, 4}, 3.0).ok());
  auto gd = builder.Build();
  ASSERT_TRUE(gd.ok());
  TopkDcsgaOptions disjoint_options;
  disjoint_options.k = 5;
  disjoint_options.disjoint = true;
  auto disjoint = MineTopKDcsga(*gd, disjoint_options);
  TopkDcsgaOptions overlap_options = disjoint_options;
  overlap_options.disjoint = false;
  auto overlapping = MineTopKDcsga(*gd, overlap_options);
  ASSERT_TRUE(disjoint.ok() && overlapping.ok());
  EXPECT_GE(overlapping->size(), disjoint->size());
}

TEST(TopkDcsgaTest, MinAffinityFilters) {
  TopkDcsgaOptions options;
  options.k = 5;
  options.min_affinity = 2.5;  // weak pair has affinity 1.0, medium 2.0
  auto results = MineTopKDcsga(ThreeCliqueGd().PositivePart(), options);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 1u);  // only the strong clique (3.75)
}

}  // namespace
}  // namespace dcs
