#include "util/status.h"

#include <gtest/gtest.h>

#include <sstream>

namespace dcs {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::NotConverged("x").IsNotConverged());
  EXPECT_EQ(Status::Internal("boom").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::OutOfRange("oor").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::AlreadyExists("ae").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::InvalidArgument("bad arg").message(), "bad arg");
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad arg").ToString(),
            "Invalid argument: bad arg");
  EXPECT_EQ(Status(StatusCode::kIoError, "").ToString(), "IO error");
}

TEST(StatusTest, CopyingSharesErrorState) {
  Status a = Status::NotFound("missing");
  Status b = a;
  EXPECT_TRUE(b.IsNotFound());
  EXPECT_EQ(b.message(), "missing");
}

TEST(StatusTest, StreamOperatorMatchesToString) {
  std::ostringstream os;
  os << Status::Internal("oops");
  EXPECT_EQ(os.str(), "Internal error: oops");
}

TEST(StatusCodeTest, AllCodesHaveNames) {
  for (int c = 0; c <= 7; ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<int> r(7);
  EXPECT_EQ(r.value_or(-1), 7);
}

TEST(ResultTest, OkStatusIsNormalizedToInternalError) {
  Result<int> r{Status::OK()};
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

Status FailingOperation() { return Status::IoError("disk on fire"); }

Status PropagatingOperation() {
  DCS_RETURN_NOT_OK(FailingOperation());
  return Status::Internal("unreachable");
}

TEST(StatusMacroTest, ReturnNotOkPropagates) {
  Status st = PropagatingOperation();
  EXPECT_TRUE(st.IsIoError());
}

Result<int> ProduceValue(bool fail) {
  if (fail) return Status::InvalidArgument("no value");
  return 10;
}

Result<int> ConsumeValue(bool fail) {
  DCS_ASSIGN_OR_RETURN(int v, ProduceValue(fail));
  return v * 2;
}

TEST(StatusMacroTest, AssignOrReturnAssignsOnSuccess) {
  Result<int> r = ConsumeValue(false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 20);
}

TEST(StatusMacroTest, AssignOrReturnPropagatesError) {
  Result<int> r = ConsumeValue(true);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(ResultDeathTest, AccessingErroredValueAborts) {
  Result<int> r(Status::NotFound("gone"));
  EXPECT_DEATH({ (void)r.value(); }, "errored Result");
}

}  // namespace
}  // namespace dcs
