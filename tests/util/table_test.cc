#include "util/table.h"

#include <gtest/gtest.h>

namespace dcs {
namespace {

TEST(TablePrinterTest, FormatsNumbers) {
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Fmt(3.0, 0), "3");
  EXPECT_EQ(TablePrinter::Fmt(int64_t{-42}), "-42");
  EXPECT_EQ(TablePrinter::Fmt(uint64_t{7}), "7");
  EXPECT_EQ(TablePrinter::YesNo(true), "Yes");
  EXPECT_EQ(TablePrinter::YesNo(false), "No");
}

TEST(TablePrinterTest, RendersHeaderAndRows) {
  TablePrinter table("Demo", {"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"beta", "22"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("== Demo =="), std::string::npos);
  EXPECT_NE(out.find("| name "), std::string::npos);
  EXPECT_NE(out.find("| alpha "), std::string::npos);
  EXPECT_NE(out.find("| beta "), std::string::npos);
}

TEST(TablePrinterTest, ColumnsAreAligned) {
  TablePrinter table("", {"c1", "c2"});
  table.AddRow({"looooong", "x"});
  table.AddRow({"s", "y"});
  const std::string out = table.ToString();
  // Every data line must have the same length once columns are padded.
  size_t first_len = std::string::npos;
  size_t pos = 0;
  while (pos < out.size()) {
    size_t end = out.find('\n', pos);
    if (end == std::string::npos) end = out.size();
    const size_t len = end - pos;
    if (len > 0) {
      if (first_len == std::string::npos) {
        first_len = len;
      } else {
        EXPECT_EQ(len, first_len);
      }
    }
    pos = end + 1;
  }
}

TEST(TablePrinterTest, ShortRowsArePadded) {
  TablePrinter table("", {"a", "b", "c"});
  table.AddRow({"only-one"});
  const std::string out = table.ToString();
  // Three pipes + terminal pipe per row.
  const size_t last_line_start = out.rfind("| only-one");
  ASSERT_NE(last_line_start, std::string::npos);
}

TEST(TablePrinterTest, EmptyTitleOmitsHeaderLine) {
  TablePrinter table("", {"x"});
  EXPECT_EQ(table.ToString().find("=="), std::string::npos);
}

}  // namespace
}  // namespace dcs
