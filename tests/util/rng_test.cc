#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace dcs {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.Next() == b.Next() ? 1 : 0;
  EXPECT_LT(equal, 4);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.NextBounded(bound), bound);
  }
}

TEST(RngTest, NextBoundedCoversAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10'000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  const int trials = 20'000;
  for (int i = 0; i < trials; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(RngTest, GeometricMeanMatchesTheory) {
  Rng rng(17);
  const double p = 0.25;
  double sum = 0.0;
  const int trials = 20'000;
  for (int i = 0; i < trials; ++i) sum += static_cast<double>(rng.Geometric(p));
  // Mean of failures-before-success is (1-p)/p = 3.
  EXPECT_NEAR(sum / trials, 3.0, 0.15);
}

TEST(RngTest, GeometricWithPOneIsZero) {
  Rng rng(19);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.Geometric(1.0), 0u);
}

TEST(RngTest, PoissonSmallMean) {
  Rng rng(23);
  double sum = 0.0;
  const int trials = 20'000;
  for (int i = 0; i < trials; ++i) sum += static_cast<double>(rng.Poisson(4.0));
  EXPECT_NEAR(sum / trials, 4.0, 0.15);
}

TEST(RngTest, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(29);
  double sum = 0.0;
  const int trials = 5'000;
  for (int i = 0; i < trials; ++i) {
    sum += static_cast<double>(rng.Poisson(200.0));
  }
  EXPECT_NEAR(sum / trials, 200.0, 2.5);
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(31);
  EXPECT_EQ(rng.Poisson(0.0), 0u);
}

TEST(RngTest, NormalMoments) {
  Rng rng(37);
  double sum = 0.0, sum_sq = 0.0;
  const int trials = 50'000;
  for (int i = 0; i < trials; ++i) {
    const double v = rng.Normal(2.0, 3.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / trials;
  const double var = sum_sq / trials - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(RngTest, ZipfStaysInRangeAndIsSkewed) {
  Rng rng(41);
  const uint64_t n = 100;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < 20'000; ++i) {
    const uint64_t v = rng.Zipf(n, 1.5);
    ASSERT_LT(v, n);
    ++counts[v];
  }
  // Rank 0 should dominate rank 50 heavily under alpha = 1.5.
  EXPECT_GT(counts[0], 10 * std::max(1, counts[50]));
}

TEST(RngTest, ZipfSingleton) {
  Rng rng(43);
  EXPECT_EQ(rng.Zipf(1, 2.0), 0u);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(47);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(53);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  std::vector<int> before = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, before);  // astronomically unlikely to be identity
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(59);
  for (uint32_t k : {0u, 1u, 5u, 50u, 99u, 100u}) {
    std::vector<uint32_t> sample = rng.SampleWithoutReplacement(100, k);
    EXPECT_EQ(sample.size(), k);
    std::set<uint32_t> distinct(sample.begin(), sample.end());
    EXPECT_EQ(distinct.size(), k);
    for (uint32_t v : sample) EXPECT_LT(v, 100u);
  }
}

TEST(RngTest, SplitMix64Deterministic) {
  uint64_t s1 = 42, s2 = 42;
  EXPECT_EQ(SplitMix64(&s1), SplitMix64(&s2));
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace dcs
