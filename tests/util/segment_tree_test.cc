#include "util/segment_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "util/rng.h"

namespace dcs {
namespace {

TEST(MinSegmentTreeTest, BuildAndGlobalMin) {
  MinSegmentTree tree({3.0, 1.0, 4.0, 1.5});
  const auto min_entry = tree.Min();
  EXPECT_EQ(min_entry.index, 1u);
  EXPECT_DOUBLE_EQ(min_entry.value, 1.0);
}

TEST(MinSegmentTreeTest, TieBreaksTowardsSmallestIndex) {
  MinSegmentTree tree({2.0, 1.0, 1.0, 1.0});
  EXPECT_EQ(tree.Min().index, 1u);
}

TEST(MinSegmentTreeTest, AssignUpdatesMin) {
  MinSegmentTree tree({3.0, 1.0, 4.0});
  tree.Assign(2, -5.0);
  EXPECT_EQ(tree.Min().index, 2u);
  EXPECT_DOUBLE_EQ(tree.Min().value, -5.0);
}

TEST(MinSegmentTreeTest, AddAccumulates) {
  MinSegmentTree tree({3.0, 1.0, 4.0});
  tree.Add(1, 10.0);
  EXPECT_DOUBLE_EQ(tree.Get(1), 11.0);
  EXPECT_EQ(tree.Min().index, 0u);
}

TEST(MinSegmentTreeTest, AddOnErasedIsNoOp) {
  MinSegmentTree tree(std::vector<double>{3.0, 1.0});
  tree.Erase(1);
  tree.Add(1, -100.0);
  EXPECT_TRUE(tree.IsErased(1));
  EXPECT_EQ(tree.Min().index, 0u);
}

TEST(MinSegmentTreeTest, EraseRemovesFromMin) {
  MinSegmentTree tree({3.0, 1.0, 4.0});
  tree.Erase(1);
  EXPECT_EQ(tree.Min().index, 0u);
  tree.Erase(0);
  EXPECT_EQ(tree.Min().index, 2u);
  tree.Erase(2);
  EXPECT_EQ(tree.Min().index, MinSegmentTree::kNoIndex);
}

TEST(MinSegmentTreeTest, EmptyTree) {
  MinSegmentTree tree(std::vector<double>{});
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.Min().index, MinSegmentTree::kNoIndex);
}

TEST(MinSegmentTreeTest, SingleElement) {
  MinSegmentTree tree(1, 7.5);
  EXPECT_EQ(tree.Min().index, 0u);
  EXPECT_DOUBLE_EQ(tree.Min().value, 7.5);
}

TEST(MinSegmentTreeTest, FillConstructor) {
  MinSegmentTree tree(5, 2.0);
  EXPECT_EQ(tree.size(), 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(tree.Get(i), 2.0);
  EXPECT_EQ(tree.Min().index, 0u);
}

TEST(MinSegmentTreeTest, NegativeValues) {
  MinSegmentTree tree({-1.0, -3.0, -2.0});
  EXPECT_EQ(tree.Min().index, 1u);
  EXPECT_DOUBLE_EQ(tree.Min().value, -3.0);
}

TEST(MinSegmentTreeTest, RangeMinBasic) {
  MinSegmentTree tree({5.0, 3.0, 8.0, 1.0, 9.0});
  auto entry = tree.RangeMin(0, 3);
  EXPECT_EQ(entry.index, 1u);
  entry = tree.RangeMin(2, 5);
  EXPECT_EQ(entry.index, 3u);
  entry = tree.RangeMin(4, 5);
  EXPECT_EQ(entry.index, 4u);
}

TEST(MinSegmentTreeTest, RangeMinEmptyRange) {
  MinSegmentTree tree(std::vector<double>{1.0, 2.0});
  EXPECT_EQ(tree.RangeMin(1, 1).index, MinSegmentTree::kNoIndex);
}

TEST(MinSegmentTreeTest, RangeMinAllErased) {
  MinSegmentTree tree({1.0, 2.0, 3.0});
  tree.Erase(0);
  tree.Erase(1);
  EXPECT_EQ(tree.RangeMin(0, 2).index, MinSegmentTree::kNoIndex);
  EXPECT_EQ(tree.RangeMin(0, 3).index, 2u);
}

// Property sweep: random operations cross-checked against a naive array.
class SegmentTreeFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SegmentTreeFuzzTest, MatchesNaiveModel) {
  Rng rng(GetParam());
  const size_t n = 1 + rng.NextBounded(64);
  std::vector<double> model(n);
  for (double& v : model) v = rng.Uniform(-50.0, 50.0);
  MinSegmentTree tree(model);

  auto naive_min = [&](size_t lo, size_t hi) {
    size_t best = MinSegmentTree::kNoIndex;
    for (size_t i = lo; i < hi; ++i) {
      if (model[i] == MinSegmentTree::kDeleted) continue;
      if (best == MinSegmentTree::kNoIndex || model[i] < model[best]) best = i;
    }
    return best;
  };

  for (int op = 0; op < 400; ++op) {
    const size_t i = rng.NextBounded(n);
    switch (rng.NextBounded(4)) {
      case 0:
        model[i] = rng.Uniform(-50.0, 50.0);
        tree.Assign(i, model[i]);
        break;
      case 1:
        if (model[i] != MinSegmentTree::kDeleted) {
          const double delta = rng.Uniform(-10.0, 10.0);
          model[i] += delta;
          tree.Add(i, delta);
        }
        break;
      case 2:
        model[i] = MinSegmentTree::kDeleted;
        tree.Erase(i);
        break;
      default: {
        size_t lo = rng.NextBounded(n + 1);
        size_t hi = rng.NextBounded(n + 1);
        if (lo > hi) std::swap(lo, hi);
        const auto entry = tree.RangeMin(lo, hi);
        const size_t expected = naive_min(lo, hi);
        ASSERT_EQ(entry.index, expected);
        if (expected != MinSegmentTree::kNoIndex) {
          ASSERT_DOUBLE_EQ(entry.value, model[expected]);
        }
        break;
      }
    }
    const auto global = tree.Min();
    const size_t expected_global = naive_min(0, n);
    ASSERT_EQ(global.index, expected_global);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SegmentTreeFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace dcs
