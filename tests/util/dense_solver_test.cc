#include "util/dense_solver.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace dcs {
namespace {

TEST(SolveLinearSystemTest, Identity) {
  DenseMatrix a(3);
  for (size_t i = 0; i < 3; ++i) a.At(i, i) = 1.0;
  auto x = SolveLinearSystem(a, {1.0, 2.0, 3.0});
  ASSERT_TRUE(x.ok());
  EXPECT_DOUBLE_EQ((*x)[0], 1.0);
  EXPECT_DOUBLE_EQ((*x)[1], 2.0);
  EXPECT_DOUBLE_EQ((*x)[2], 3.0);
}

TEST(SolveLinearSystemTest, TwoByTwo) {
  DenseMatrix a(2);
  a.At(0, 0) = 2.0; a.At(0, 1) = 1.0;
  a.At(1, 0) = 1.0; a.At(1, 1) = 3.0;
  auto x = SolveLinearSystem(a, {5.0, 10.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
  EXPECT_NEAR((*x)[1], 3.0, 1e-12);
}

TEST(SolveLinearSystemTest, RequiresPivoting) {
  // Leading zero forces a row swap.
  DenseMatrix a(2);
  a.At(0, 0) = 0.0; a.At(0, 1) = 1.0;
  a.At(1, 0) = 1.0; a.At(1, 1) = 0.0;
  auto x = SolveLinearSystem(a, {3.0, 4.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 4.0, 1e-12);
  EXPECT_NEAR((*x)[1], 3.0, 1e-12);
}

TEST(SolveLinearSystemTest, SingularIsRejected) {
  DenseMatrix a(2);
  a.At(0, 0) = 1.0; a.At(0, 1) = 2.0;
  a.At(1, 0) = 2.0; a.At(1, 1) = 4.0;
  auto x = SolveLinearSystem(a, {1.0, 2.0});
  EXPECT_FALSE(x.ok());
  EXPECT_TRUE(x.status().IsNotConverged());
}

TEST(SolveLinearSystemTest, DimensionMismatch) {
  DenseMatrix a(2);
  auto x = SolveLinearSystem(a, {1.0});
  EXPECT_FALSE(x.ok());
  EXPECT_TRUE(x.status().IsInvalidArgument());
}

class RandomSystemTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomSystemTest, ResidualIsTiny) {
  Rng rng(GetParam());
  const size_t n = 2 + rng.NextBounded(10);
  DenseMatrix a(n);
  std::vector<std::vector<double>> a_copy(n, std::vector<double>(n));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      a.At(i, j) = rng.Uniform(-5.0, 5.0);
      a_copy[i][j] = a.At(i, j);
    }
    a.At(i, i) += 10.0;  // diagonally dominant => well conditioned
    a_copy[i][i] = a.At(i, i);
  }
  std::vector<double> b(n);
  for (double& v : b) v = rng.Uniform(-10.0, 10.0);
  auto x = SolveLinearSystem(a, b);
  ASSERT_TRUE(x.ok());
  for (size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (size_t j = 0; j < n; ++j) acc += a_copy[i][j] * (*x)[j];
    EXPECT_NEAR(acc, b[i], 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSystemTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

TEST(InteriorSimplexMaximizerTest, UnweightedCliqueIsUniform) {
  // A = J − I on k vertices: optimum x = 1/k each, f = (k−1)/k
  // (Motzkin–Straus).
  for (size_t k : {2u, 3u, 5u, 8u}) {
    DenseMatrix a(k);
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = 0; j < k; ++j) a.At(i, j) = i == j ? 0.0 : 1.0;
    }
    auto x = InteriorSimplexMaximizer(a);
    ASSERT_TRUE(x.ok()) << "k=" << k;
    for (size_t i = 0; i < k; ++i) {
      EXPECT_NEAR((*x)[i], 1.0 / static_cast<double>(k), 1e-12);
    }
  }
}

TEST(InteriorSimplexMaximizerTest, SingletonIsTrivial) {
  DenseMatrix a(1);
  auto x = InteriorSimplexMaximizer(a);
  ASSERT_TRUE(x.ok());
  EXPECT_DOUBLE_EQ((*x)[0], 1.0);
}

TEST(InteriorSimplexMaximizerTest, WeightedTriangleKktProperty) {
  // Weighted triangle: at the interior KKT point all (Ax)_i are equal.
  DenseMatrix a(3);
  a.At(0, 1) = a.At(1, 0) = 2.0;
  a.At(0, 2) = a.At(2, 0) = 3.0;
  a.At(1, 2) = a.At(2, 1) = 4.0;
  auto x = InteriorSimplexMaximizer(a);
  ASSERT_TRUE(x.ok());
  std::vector<double> ax(3, 0.0);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) ax[i] += a.At(i, j) * (*x)[j];
  }
  EXPECT_NEAR(ax[0], ax[1], 1e-10);
  EXPECT_NEAR(ax[1], ax[2], 1e-10);
  double sum = (*x)[0] + (*x)[1] + (*x)[2];
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(InteriorSimplexMaximizerTest, NonInteriorCaseIsReported) {
  // Strong (0,1) edge and weak edges to vertex 2: the maximizer drops
  // vertex 2, so the interior solve must report NotFound (or a negative
  // coordinate) rather than a bogus simplex point.
  DenseMatrix a(3);
  a.At(0, 1) = a.At(1, 0) = 10.0;
  a.At(0, 2) = a.At(2, 0) = 0.1;
  a.At(1, 2) = a.At(2, 1) = 0.1;
  auto x = InteriorSimplexMaximizer(a);
  EXPECT_FALSE(x.ok());
}

TEST(InteriorSimplexMaximizerTest, EmptyMatrixRejected) {
  DenseMatrix a(0);
  EXPECT_FALSE(InteriorSimplexMaximizer(a).ok());
}

}  // namespace
}  // namespace dcs
