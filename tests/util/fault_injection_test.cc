// Unit tests of the deterministic fault-injection registry (ctest label
// `unit`). The contract under test: zero-overhead disarmed path, strict
// spec parsing, and a fire schedule that is a pure function of (spec, hit
// index) — reproducible across runs and thread interleavings.

#include "util/fault_injection.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace dcs {
namespace {

// Every test arms the process-global registry, so each must leave it
// disarmed for the suites that run after it.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjection::Global().Reset(); }
};

TEST_F(FaultInjectionTest, DisarmedRegistryNeverFiresOrCounts) {
  EXPECT_FALSE(FaultInjection::armed());
  EXPECT_FALSE(FaultHit("store.append"));
  EXPECT_EQ(FaultInjection::Global().hits("store.append"), 0u);
  EXPECT_EQ(FaultInjection::Global().total_fires(), 0u);
}

TEST_F(FaultInjectionTest, ArmedSiteFiresOnSchedule) {
  FaultSpec spec;
  spec.site = "store.append";
  spec.every = 3;
  spec.after = 2;
  ASSERT_TRUE(FaultInjection::Global().Arm(spec).ok());
  EXPECT_TRUE(FaultInjection::armed());

  // Hits 0,1 skipped by `after`; then every 3rd eligible hit fires:
  // eligible indices 2,5,8 fire, the rest pass.
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) fired.push_back(FaultHit("store.append"));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, true,
                                      false, false, true}));
  EXPECT_EQ(FaultInjection::Global().hits("store.append"), 9u);
  EXPECT_EQ(FaultInjection::Global().fires("store.append"), 3u);
  // Other sites stay unarmed and uncounted.
  EXPECT_FALSE(FaultHit("store.read"));
  EXPECT_EQ(FaultInjection::Global().hits("store.read"), 0u);
}

TEST_F(FaultInjectionTest, TimesBoundsTotalFires) {
  FaultSpec spec;
  spec.site = "cache.build";
  spec.times = 2;
  ASSERT_TRUE(FaultInjection::Global().Arm(spec).ok());
  int fires = 0;
  for (int i = 0; i < 10; ++i) fires += FaultHit("cache.build") ? 1 : 0;
  EXPECT_EQ(fires, 2);  // the site recovers after exhausting its budget
  EXPECT_EQ(FaultInjection::Global().total_fires(), 2u);
}

TEST_F(FaultInjectionTest, ProbabilisticCoinIsDeterministic) {
  FaultSpec spec;
  spec.site = "pool.dispatch";
  spec.prob = 0.5;
  spec.seed = 42;
  constexpr int kHits = 64;

  std::vector<bool> first;
  ASSERT_TRUE(FaultInjection::Global().Arm(spec).ok());
  for (int i = 0; i < kHits; ++i) first.push_back(FaultHit("pool.dispatch"));

  // Re-arming resets the hit counter; the same (seed, site, index) stream
  // must reproduce the exact fire pattern.
  FaultInjection::Global().Reset();
  ASSERT_TRUE(FaultInjection::Global().Arm(spec).ok());
  std::vector<bool> second;
  for (int i = 0; i < kHits; ++i) second.push_back(FaultHit("pool.dispatch"));
  EXPECT_EQ(first, second);

  // A fair-ish coin: not all-fire, not all-pass (deterministic, so this is
  // a fixed property of seed 42, not a flaky sample).
  const int fires = static_cast<int>(
      FaultInjection::Global().fires("pool.dispatch"));
  EXPECT_GT(fires, 0);
  EXPECT_LT(fires, kHits);

  // A different seed yields a different pattern (for these 64 indices).
  FaultInjection::Global().Reset();
  spec.seed = 43;
  ASSERT_TRUE(FaultInjection::Global().Arm(spec).ok());
  std::vector<bool> reseeded;
  for (int i = 0; i < kHits; ++i) {
    reseeded.push_back(FaultHit("pool.dispatch"));
  }
  EXPECT_NE(first, reseeded);
}

TEST_F(FaultInjectionTest, ConcurrentHittersSeeExactFireMultiset) {
  FaultSpec spec;
  spec.site = "store.read";
  spec.every = 4;
  ASSERT_TRUE(FaultInjection::Global().Arm(spec).ok());
  constexpr int kThreads = 8;
  constexpr int kHitsPerThread = 100;
  std::vector<int> fires(kThreads, 0);
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&fires, t] {
        for (int i = 0; i < kHitsPerThread; ++i) {
          fires[t] += FaultHit("store.read") ? 1 : 0;
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  // Which thread drew which hit index races, but the fired multiset is a
  // pure function of the 800 indices: exactly ceil(800 / 4) fires.
  int total = 0;
  for (int f : fires) total += f;
  EXPECT_EQ(total, kThreads * kHitsPerThread / 4);
  EXPECT_EQ(FaultInjection::Global().hits("store.read"),
            static_cast<uint64_t>(kThreads * kHitsPerThread));
}

TEST_F(FaultInjectionTest, ParseAcceptsTheDocumentedGrammar) {
  Result<FaultSpec> bare = FaultInjection::Parse("store.append");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare->site, "store.append");
  EXPECT_EQ(bare->every, 1u);
  EXPECT_TRUE(bare->fail);

  Result<FaultSpec> full = FaultInjection::Parse(
      "store.read:every=2,after=3,times=4,prob=0.25,seed=9,delay_ms=1.5,"
      "fail=0");
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->site, "store.read");
  EXPECT_EQ(full->every, 2u);
  EXPECT_EQ(full->after, 3u);
  EXPECT_EQ(full->times, 4u);
  EXPECT_DOUBLE_EQ(full->prob, 0.25);
  EXPECT_EQ(full->seed, 9u);
  EXPECT_DOUBLE_EQ(full->delay_ms, 1.5);
  EXPECT_FALSE(full->fail);
}

TEST_F(FaultInjectionTest, ParseRejectsMalformedSpecs) {
  for (const char* bad :
       {"", ":every=1", "site:every", "site:every=", "site:every=x",
        "site:prob=1.5", "site:prob=-0.1", "site:unknown=1", "site:fail=2",
        "site:every=0", "site:delay_ms=-1"}) {
    EXPECT_FALSE(FaultInjection::Parse(bad).ok()) << "accepted: " << bad;
  }
}

TEST_F(FaultInjectionTest, ParseRejectsUnknownSitesListingTheRegistry) {
  Result<FaultSpec> unknown = FaultInjection::Parse("stoer.append:every=2");
  ASSERT_FALSE(unknown.ok());
  // The error names the typo and lists every registered site, so the CLI
  // user sees the valid spellings instead of arming a dead hook silently.
  EXPECT_NE(unknown.status().message().find("stoer.append"),
            std::string::npos);
  for (const char* site : fault_sites::kKnownSites) {
    EXPECT_NE(unknown.status().message().find(site), std::string::npos)
        << site;
  }
  // Programmatic Arm() stays permissive: custom solver sites are legal.
  FaultSpec custom;
  custom.site = "mysolver.step";
  EXPECT_TRUE(FaultInjection::Global().Arm(custom).ok());
  EXPECT_TRUE(FaultHit("mysolver.step"));
}

TEST_F(FaultInjectionTest, ParseAcceptsTheCrashKeyAndJournalSites) {
  Result<FaultSpec> spec =
      FaultInjection::Parse("journal.append:crash=1,after=3,times=1");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->site, fault_sites::kJournalAppend);
  EXPECT_TRUE(spec->crash);
  EXPECT_EQ(spec->after, 3u);
  EXPECT_EQ(spec->times, 1u);
  EXPECT_TRUE(FaultInjection::Parse("journal.fsync").ok());
  EXPECT_TRUE(FaultInjection::Parse("journal.replay").ok());
  EXPECT_FALSE(FaultInjection::Parse("journal.append:crash=2").ok());
  Result<FaultSpec> nocrash = FaultInjection::Parse("journal.append:crash=0");
  ASSERT_TRUE(nocrash.ok());
  EXPECT_FALSE(nocrash->crash);
}

TEST_F(FaultInjectionTest, ArmTextArmsMultipleSites) {
  ASSERT_TRUE(FaultInjection::Global()
                  .ArmText("store.append:times=1;cache.build:every=2")
                  .ok());
  EXPECT_TRUE(FaultHit("store.append"));
  EXPECT_FALSE(FaultHit("store.append"));  // times=1 exhausted
  EXPECT_TRUE(FaultHit("cache.build"));    // eligible index 0 fires
  EXPECT_FALSE(FaultHit("cache.build"));
  EXPECT_FALSE(FaultInjection::Global().ArmText("ok;:bad").ok());
}

TEST_F(FaultInjectionTest, ResetRestoresTheZeroOverheadPath) {
  ASSERT_TRUE(FaultInjection::Global().ArmText("store.append").ok());
  EXPECT_TRUE(FaultInjection::armed());
  FaultInjection::Global().Reset();
  EXPECT_FALSE(FaultInjection::armed());
  EXPECT_FALSE(FaultHit("store.append"));
  EXPECT_EQ(FaultInjection::Global().hits("store.append"), 0u);
}

TEST_F(FaultInjectionTest, InjectedErrorIsIoErrorNamingTheSite) {
  const Status status = FaultInjection::InjectedError("store.append");
  EXPECT_TRUE(status.IsIoError());
  EXPECT_NE(status.message().find("store.append"), std::string::npos);
}

}  // namespace
}  // namespace dcs
