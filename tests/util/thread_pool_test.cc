// ThreadPool: every index runs exactly once, nesting cannot deadlock,
// exceptions are captured and rethrown on the submitting thread.

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace dcs {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_workers(), 3u);
  EXPECT_EQ(pool.concurrency(), 4u);
  constexpr size_t kTasks = 200;
  std::vector<std::atomic<int>> hits(kTasks);
  pool.RunTasks(kTasks, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.concurrency(), 1u);
  size_t sum = 0;  // no synchronization: everything runs on this thread
  pool.RunTasks(10, [&](size_t i) { sum += i; });
  EXPECT_EQ(sum, 45u);
}

TEST(ThreadPoolTest, ZeroWorkersKeepsTheExceptionContract) {
  // The inline path must behave like the pooled one: every index runs, the
  // first exception is rethrown afterwards.
  ThreadPool pool(0);
  int runs = 0;
  EXPECT_THROW(pool.RunTasks(8,
                             [&](size_t i) {
                               ++runs;
                               if (i == 2) throw std::runtime_error("boom");
                             }),
               std::runtime_error);
  EXPECT_EQ(runs, 8);
}

TEST(ThreadPoolTest, ZeroTasksReturnsImmediately) {
  ThreadPool pool(2);
  bool ran = false;
  pool.RunTasks(0, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, SequentialGroupsReuseTheWorkers) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.RunTasks(8, [&](size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 50 * 8);
}

TEST(ThreadPoolTest, NestedRunTasksDoesNotDeadlock) {
  // More outer tasks than workers: with a blocking wait (no caller
  // participation) the outer tasks would occupy every worker and starve the
  // inner groups forever.
  ThreadPool pool(2);
  std::atomic<int> inner_runs{0};
  pool.RunTasks(6, [&](size_t) {
    pool.RunTasks(6, [&](size_t) { inner_runs.fetch_add(1); });
  });
  EXPECT_EQ(inner_runs.load(), 36);
}

TEST(ThreadPoolTest, RethrowsTheFirstExceptionAfterAllTasksRan) {
  ThreadPool pool(2);
  std::atomic<int> runs{0};
  EXPECT_THROW(pool.RunTasks(16,
                             [&](size_t i) {
                               runs.fetch_add(1);
                               if (i == 3) throw std::runtime_error("boom");
                             }),
               std::runtime_error);
  // The failing group still completes every index before rethrowing.
  EXPECT_EQ(runs.load(), 16);
  // The pool survives and serves the next group.
  std::atomic<int> after{0};
  pool.RunTasks(4, [&](size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 4);
}

TEST(ThreadPoolTest, ConcurrentGroupsFromManyThreads) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  // Submitting groups from parallel tasks exercises the shared queue under
  // contention from multiple group owners at once.
  ThreadPool outer(4);
  outer.RunTasks(8, [&](size_t) {
    pool.RunTasks(25, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 8 * 25);
}

}  // namespace
}  // namespace dcs
