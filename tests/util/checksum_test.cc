// PageChecksum tests: determinism, sensitivity to every byte and to length,
// and independence from buffer alignment/packaging.

#include "util/checksum.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace dcs {
namespace {

TEST(PageChecksumTest, DeterministicAcrossCalls) {
  const std::string data = "density contrast subgraph";
  EXPECT_EQ(PageChecksum(data.data(), data.size()),
            PageChecksum(data.data(), data.size()));
  const std::string copy = data;
  EXPECT_EQ(PageChecksum(data.data(), data.size()),
            PageChecksum(copy.data(), copy.size()));
}

TEST(PageChecksumTest, EmptyBufferHasStableNonzeroValue) {
  const uint64_t empty = PageChecksum(nullptr, 0);
  EXPECT_EQ(empty, PageChecksum("x", 0));
  // splitmix64 of the seeded length never lands on 0 for these inputs; a
  // zero would be a red flag for an uninitialized checksum path.
  EXPECT_NE(empty, 0u);
}

TEST(PageChecksumTest, EveryBitPositionMatters) {
  // A 20-byte buffer spans both the 8-byte word loop and the padded tail.
  std::vector<uint8_t> data(20);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 37 + 11);
  }
  const uint64_t baseline = PageChecksum(data.data(), data.size());
  for (size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> flipped = data;
      flipped[byte] ^= static_cast<uint8_t>(1u << bit);
      EXPECT_NE(PageChecksum(flipped.data(), flipped.size()), baseline)
          << "flip of byte " << byte << " bit " << bit << " went undetected";
    }
  }
}

TEST(PageChecksumTest, LengthIsPartOfTheChecksum) {
  // The tail is zero-padded into the last word, so a trailing zero byte
  // would collide with the shorter buffer if length were not folded in.
  const std::vector<uint8_t> with_zero = {1, 2, 3, 0};
  EXPECT_NE(PageChecksum(with_zero.data(), 3),
            PageChecksum(with_zero.data(), 4));
  EXPECT_NE(PageChecksum(nullptr, 0), PageChecksum("\0", 1));
}

TEST(PageChecksumTest, IndependentOfSurroundingBytes) {
  // The checksum of a span must not read past its bounds.
  const std::string a = "XXpayloadYY";
  const std::string b = "ZZpayloadWW";
  EXPECT_EQ(PageChecksum(a.data() + 2, 7), PageChecksum(b.data() + 2, 7));
}

}  // namespace
}  // namespace dcs
