#include "baseline/quasi_clique.h"

#include <gtest/gtest.h>

#include <set>

#include "gen/random_graphs.h"
#include "graph/stats.h"
#include "test_util.h"
#include "util/rng.h"

namespace dcs {
namespace {

using ::dcs::testing::MakeGraph;

TEST(QuasiCliqueObjectiveTest, MatchesDefinition) {
  GraphBuilder builder(4);
  std::vector<VertexId> clique{0, 1, 2};
  ASSERT_TRUE(AddClique(&builder, clique, 2.0).ok());
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  // w(S) = 3 edges · 2 = 6; penalty = α·3.
  EXPECT_DOUBLE_EQ(QuasiCliqueObjective(*g, clique, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(QuasiCliqueObjective(*g, clique, 1.0 / 3.0), 5.0);
  EXPECT_DOUBLE_EQ(
      QuasiCliqueObjective(*g, std::vector<VertexId>{0}, 1.0), 0.0);
}

TEST(QuasiCliqueTest, RejectsBadInputs) {
  EXPECT_FALSE(RunQuasiCliqueSearch(Graph(0)).ok());
  QuasiCliqueOptions options;
  options.alpha = -1.0;
  EXPECT_FALSE(RunQuasiCliqueSearch(MakeGraph(2, {{0, 1, 1.0}}), options).ok());
  options = QuasiCliqueOptions{};
  options.num_seeds = 0;
  EXPECT_FALSE(RunQuasiCliqueSearch(MakeGraph(2, {{0, 1, 1.0}}), options).ok());
}

TEST(QuasiCliqueTest, FindsPlantedDenseBlock) {
  Rng rng(3);
  GraphBuilder builder(50);
  auto noise = ErdosRenyiWeighted(50, 0.04, 0.2, 0.6, &rng);
  ASSERT_TRUE(noise.ok());
  for (const Edge& e : noise->UndirectedEdges()) {
    ASSERT_TRUE(builder.AddEdge(e.u, e.v, e.weight).ok());
  }
  std::vector<VertexId> planted{3, 11, 24, 37, 45};
  ASSERT_TRUE(AddClique(&builder, planted, 2.0).ok());
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  auto result = RunQuasiCliqueSearch(*g);
  ASSERT_TRUE(result.ok());
  std::set<VertexId> found(result->subset.begin(), result->subset.end());
  for (VertexId v : planted) EXPECT_TRUE(found.contains(v));
  EXPECT_GE(result->objective,
            QuasiCliqueObjective(*g, planted, 1.0 / 3.0) - 1e-9);
}

TEST(QuasiCliqueTest, ResultIsLocallyOptimal) {
  Rng rng(5);
  auto g = RandomSignedGraph(40, 150, 0.65, 0.3, 2.0, &rng);
  ASSERT_TRUE(g.ok());
  QuasiCliqueOptions options;
  auto result = RunQuasiCliqueSearch(*g, options);
  ASSERT_TRUE(result.ok());
  // No single-vertex move improves the objective: spot-check removals.
  for (VertexId v : result->subset) {
    if (result->subset.size() == 1) break;
    std::vector<VertexId> without;
    for (VertexId u : result->subset) {
      if (u != v) without.push_back(u);
    }
    EXPECT_LE(QuasiCliqueObjective(*g, without, options.alpha),
              result->objective + 1e-9);
  }
}

TEST(QuasiCliqueTest, AlphaControlsSize) {
  // Lower α tolerates looser subgraphs -> (weakly) larger solutions.
  Rng rng(7);
  auto g = ErdosRenyiWeighted(60, 0.15, 0.5, 1.5, &rng);
  ASSERT_TRUE(g.ok());
  QuasiCliqueOptions loose;
  loose.alpha = 0.05;
  QuasiCliqueOptions tight;
  tight.alpha = 1.5;
  auto big = RunQuasiCliqueSearch(*g, loose);
  auto small = RunQuasiCliqueSearch(*g, tight);
  ASSERT_TRUE(big.ok() && small.ok());
  EXPECT_GE(big->subset.size(), small->subset.size());
}

TEST(QuasiCliqueTest, ReportedNumbersMatchSubset) {
  Rng rng(9);
  auto g = RandomSignedGraph(30, 100, 0.6, 0.5, 3.0, &rng);
  ASSERT_TRUE(g.ok());
  auto result = RunQuasiCliqueSearch(*g);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->edge_weight, 0.5 * TotalDegree(*g, result->subset),
              1e-9);
  EXPECT_NEAR(result->objective,
              QuasiCliqueObjective(*g, result->subset, 1.0 / 3.0), 1e-9);
}

TEST(QuasiCliqueTest, AllNegativeGraphYieldsTrivial) {
  Graph g = MakeGraph(3, {{0, 1, -1.0}, {1, 2, -2.0}});
  auto result = RunQuasiCliqueSearch(g);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->objective, 0.0);
}

}  // namespace
}  // namespace dcs
