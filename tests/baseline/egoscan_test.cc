#include "baseline/egoscan.h"

#include <gtest/gtest.h>

#include "core/dcs_greedy.h"
#include "gen/random_graphs.h"
#include "graph/stats.h"
#include "test_util.h"
#include "util/rng.h"

namespace dcs {
namespace {

using ::dcs::testing::MakeGraph;

TEST(EgoScanTest, RejectsBadInputs) {
  EXPECT_FALSE(RunEgoScan(Graph(0)).ok());
  EgoScanOptions options;
  options.num_seeds = 0;
  EXPECT_FALSE(RunEgoScan(MakeGraph(2, {{0, 1, 1.0}}), options).ok());
}

TEST(EgoScanTest, AllNegativeGraphReturnsTrivialSet) {
  Graph gd = MakeGraph(3, {{0, 1, -1.0}, {1, 2, -2.0}});
  auto result = RunEgoScan(gd);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->total_weight, 0.0);
}

TEST(EgoScanTest, PositiveCliqueIsFullyCollected) {
  GraphBuilder builder(8);
  std::vector<VertexId> clique{1, 3, 5, 7};
  ASSERT_TRUE(AddClique(&builder, clique, 2.0).ok());
  auto gd = builder.Build();
  ASSERT_TRUE(gd.ok());
  auto result = RunEgoScan(*gd);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->subset, clique);
  // W_D(S) = 2 · (6 edges · weight 2) = 24 (doubled convention).
  EXPECT_DOUBLE_EQ(result->total_weight, 24.0);
}

TEST(EgoScanTest, NegativeMembersAreEvicted) {
  // Positive triangle plus a strongly negative appendage.
  Graph gd = MakeGraph(5, {{0, 1, 3.0}, {1, 2, 3.0}, {0, 2, 3.0},
                           {2, 3, 1.0}, {3, 4, -10.0}, {2, 4, 1.0}});
  auto result = RunEgoScan(gd);
  ASSERT_TRUE(result.ok());
  // 3 and 4 together cost −10·2; the scan keeps the profitable core.
  EXPECT_GE(result->total_weight, 18.0);  // at least the triangle
  EXPECT_NEAR(AverageDegreeDensity(gd, result->subset) *
                  static_cast<double>(result->subset.size()),
              result->total_weight, 1e-9);
}

TEST(EgoScanTest, TotalWeightAtLeastDcsGreedySolution) {
  // EgoScan maximizes W_D(S) directly, so on these planted graphs it should
  // match or beat the W_D of the density-oriented DCSGreedy subset —
  // reproducing the Table IX relationship.
  Rng rng(11);
  GraphBuilder builder(60);
  auto noise = RandomSignedGraph(60, 150, 0.55, 0.5, 2.0, &rng);
  ASSERT_TRUE(noise.ok());
  for (const Edge& e : noise->UndirectedEdges()) {
    ASSERT_TRUE(builder.AddEdge(e.u, e.v, e.weight).ok());
  }
  std::vector<VertexId> community;
  for (VertexId v = 0; v < 20; ++v) community.push_back(v);
  for (size_t i = 0; i < community.size(); ++i) {
    for (size_t j = i + 1; j < community.size(); ++j) {
      if (rng.Bernoulli(0.5)) {
        ASSERT_TRUE(builder.AddEdge(community[i], community[j], 2.0).ok());
      }
    }
  }
  auto gd = builder.Build();
  ASSERT_TRUE(gd.ok());
  auto ego = RunEgoScan(*gd);
  auto greedy = RunDcsGreedy(*gd);
  ASSERT_TRUE(ego.ok());
  ASSERT_TRUE(greedy.ok());
  const double greedy_total = TotalDegree(*gd, greedy->subset);
  EXPECT_GE(ego->total_weight, greedy_total - 1e-9);
  // And, like Table VIII shows, its subset is usually larger.
  EXPECT_GE(ego->subset.size(), greedy->subset.size());
}

TEST(EgoScanTest, ReportedStatisticsMatchSubset) {
  Rng rng(17);
  auto gd = RandomSignedGraph(40, 120, 0.6, 0.5, 3.0, &rng);
  ASSERT_TRUE(gd.ok());
  auto result = RunEgoScan(*gd);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->total_weight, TotalDegree(*gd, result->subset), 1e-9);
  EXPECT_NEAR(result->density, AverageDegreeDensity(*gd, result->subset),
              1e-9);
}

TEST(EgoScanTest, MoreSeedsNeverHurt) {
  Rng rng(23);
  auto gd = RandomSignedGraph(50, 150, 0.6, 0.5, 3.0, &rng);
  ASSERT_TRUE(gd.ok());
  EgoScanOptions few;
  few.num_seeds = 2;
  EgoScanOptions many;
  many.num_seeds = 40;
  auto result_few = RunEgoScan(*gd, few);
  auto result_many = RunEgoScan(*gd, many);
  ASSERT_TRUE(result_few.ok());
  ASSERT_TRUE(result_many.ok());
  EXPECT_GE(result_many->total_weight, result_few->total_weight - 1e-9);
}

}  // namespace
}  // namespace dcs
