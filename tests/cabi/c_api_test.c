/*
 * C-ABI conformance test: consumes include/dcs_c_api.h from a pure C99
 * translation unit (this file compiles with -std=c99, no C++ anywhere).
 *
 * Covers the full handle lifecycle — graph/service/response create and
 * free, tenant registration, submit/poll/wait/cancel/drain, streaming
 * updates, admission-control rejections, error strings — plus the
 * hardening paths: NULL handles, NULL out-pointers, bad enum values,
 * unknown ids, and double-free on every handle type.
 *
 * Exits 0 on success; prints the failing expectation and exits 1
 * otherwise (the ctest `cabi` label wiring).
 */

#include <stdint.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

#include "dcs_c_api.h"

static int g_failures = 0;

#define EXPECT(cond)                                                     \
  do {                                                                   \
    if (!(cond)) {                                                       \
      fprintf(stderr, "FAIL %s:%d: %s\n", __FILE__, __LINE__, #cond);    \
      ++g_failures;                                                      \
    }                                                                    \
  } while (0)

/* The paper's Fig. 1 pair (tests/test_util.h Fig1G1/Fig1G2), as flat
 * C arrays. */
static const uint32_t kG1Us[] = {1, 0, 2, 3, 0};
static const uint32_t kG1Vs[] = {2, 3, 3, 4, 4};
static const double kG1Ws[] = {2.0, 1.0, 3.0, 2.0, 2.0};

static const uint32_t kG2Us[] = {0, 1, 0, 2, 3, 0};
static const uint32_t kG2Vs[] = {1, 2, 3, 3, 4, 4};
static const double kG2Ws[] = {4.0, 5.0, 2.0, 1.0, 6.0, 1.0};

static void test_names(void) {
  EXPECT(strcmp(dcs_status_code_name(DCS_OK), "OK") == 0);
  EXPECT(strcmp(dcs_status_code_name(DCS_RESOURCE_EXHAUSTED),
                "Resource exhausted") == 0);
  EXPECT(strcmp(dcs_status_code_name(DCS_DEADLINE_EXCEEDED),
                "Deadline exceeded") == 0);
  EXPECT(strcmp(dcs_status_code_name(-1), "unknown") == 0);
  EXPECT(strcmp(dcs_status_code_name(99), "unknown") == 0);
  EXPECT(strcmp(dcs_job_state_name(DCS_JOB_QUEUED), "queued") == 0);
  EXPECT(strcmp(dcs_job_state_name(DCS_JOB_DONE), "done") == 0);
  EXPECT(strcmp(dcs_job_state_name(77), "unknown") == 0);
}

static void test_graph_errors(void) {
  dcs_graph* graph = NULL;
  const uint32_t self_u[] = {2};
  const uint32_t self_v[] = {2};
  const double w[] = {1.0};

  EXPECT(dcs_graph_create(5, NULL, NULL, NULL, 1, &graph) ==
         DCS_INVALID_ARGUMENT);
  EXPECT(graph == NULL);
  /* Self-loops are rejected by the graph builder. */
  EXPECT(dcs_graph_create(5, self_u, self_v, w, 1, &graph) ==
         DCS_INVALID_ARGUMENT);
  EXPECT(graph == NULL);
  /* NULL out-pointer is caught, not dereferenced. */
  EXPECT(dcs_graph_create(5, kG1Us, kG1Vs, kG1Ws, 5, NULL) ==
         DCS_INVALID_ARGUMENT);
  /* An empty graph is valid. */
  EXPECT(dcs_graph_create(3, NULL, NULL, NULL, 0, &graph) == DCS_OK);
  EXPECT(graph != NULL);
  dcs_graph_free(&graph);
  EXPECT(graph == NULL);
  /* Double-free and NULL-free are well-defined no-ops. */
  dcs_graph_free(&graph);
  dcs_graph_free(NULL);
}

static void test_null_handle_hardening(void) {
  dcs_job_status status;
  dcs_mining_request request;
  dcs_subgraph_view view;
  uint64_t job = 0;
  uint32_t tenant = 0;
  dcs_response* response = NULL;

  dcs_mining_request_init(&request);
  EXPECT(dcs_service_submit(NULL, 0, &request, &job) == DCS_INVALID_ARGUMENT);
  EXPECT(dcs_service_poll(NULL, 1, &status) == DCS_INVALID_ARGUMENT);
  EXPECT(dcs_service_wait(NULL, 1, &status) == DCS_INVALID_ARGUMENT);
  EXPECT(dcs_service_cancel(NULL, 1, &status) == DCS_INVALID_ARGUMENT);
  EXPECT(dcs_service_drain(NULL) == DCS_INVALID_ARGUMENT);
  EXPECT(dcs_service_apply_update(NULL, 0, DCS_UPDATE_G1, 0, 1, 1.0) ==
         DCS_INVALID_ARGUMENT);
  EXPECT(dcs_service_add_tenant(NULL, NULL, NULL, 1, 0, &tenant) ==
         DCS_INVALID_ARGUMENT);
  EXPECT(dcs_service_take_response(NULL, 1, &response) ==
         DCS_INVALID_ARGUMENT);
  EXPECT(dcs_response_num_subgraphs(NULL, DCS_MEASURE_AVERAGE_DEGREE) == 0);
  EXPECT(dcs_response_subgraph(NULL, DCS_MEASURE_AVERAGE_DEGREE, 0, &view) ==
         DCS_INVALID_ARGUMENT);
  EXPECT(strcmp(dcs_service_last_error(NULL), "null service handle") == 0);
  /* Init helpers tolerate NULL. */
  dcs_service_options_init(NULL);
  dcs_mining_request_init(NULL);
  dcs_service_free(NULL);
  dcs_response_free(NULL);
}

static void test_end_to_end(void) {
  dcs_service_options options;
  dcs_service* service = NULL;
  dcs_graph* g1 = NULL;
  dcs_graph* g2 = NULL;
  uint32_t tenant_a = 99;
  uint32_t tenant_b = 99;
  dcs_mining_request request;
  dcs_job_status status;
  uint64_t job = 0;
  uint64_t job_b = 0;
  dcs_response* response = NULL;
  dcs_subgraph_view view;
  size_t i;

  dcs_service_options_init(&options);
  EXPECT(options.num_executors == 1);
  EXPECT(options.max_finished_jobs == 4096);
  options.num_executors = 2;
  options.share_pipeline_cache = 1;
  options.share_worker_pool = 1;
  EXPECT(dcs_service_create(&options, &service) == DCS_OK);
  EXPECT(service != NULL);
  EXPECT(strcmp(dcs_service_last_error(service), "") == 0);

  EXPECT(dcs_graph_create(5, kG1Us, kG1Vs, kG1Ws, 5, &g1) == DCS_OK);
  EXPECT(dcs_graph_create(5, kG2Us, kG2Vs, kG2Ws, 6, &g2) == DCS_OK);

  /* Zero weight is rejected with a readable message. */
  EXPECT(dcs_service_add_tenant(service, g1, g2, 0, 0, &tenant_a) ==
         DCS_INVALID_ARGUMENT);
  EXPECT(strstr(dcs_service_last_error(service), "weight") != NULL);

  EXPECT(dcs_service_add_tenant(service, g1, g2, 3, 0, &tenant_a) == DCS_OK);
  EXPECT(dcs_service_add_tenant(service, g1, g2, 1, 0, &tenant_b) == DCS_OK);
  EXPECT(tenant_a == 0);
  EXPECT(tenant_b == 1);
  /* The graphs were copied in; the caller frees its handles now. */
  dcs_graph_free(&g1);
  dcs_graph_free(&g2);

  /* Submit against an unknown tenant fails eagerly. */
  dcs_mining_request_init(&request);
  EXPECT(dcs_service_submit(service, 7, &request, &job) ==
         DCS_INVALID_ARGUMENT);
  EXPECT(strstr(dcs_service_last_error(service), "unknown tenant") != NULL);
  /* Bad measure value fails at submit, not as a failed job. */
  request.measure = 42;
  EXPECT(dcs_service_submit(service, tenant_a, &request, &job) ==
         DCS_INVALID_ARGUMENT);

  /* A real job on each tenant; both mine the same pair, so the responses
   * must match subgraph for subgraph. */
  dcs_mining_request_init(&request);
  request.measure = DCS_MEASURE_BOTH;
  request.priority = 5;
  EXPECT(dcs_service_submit(service, tenant_a, &request, &job) == DCS_OK);
  EXPECT(dcs_service_submit(service, tenant_b, &request, &job_b) == DCS_OK);
  EXPECT(job != 0 && job_b != 0 && job != job_b);

  EXPECT(dcs_service_poll(service, job, &status) == DCS_OK);
  EXPECT(status.id == job);
  EXPECT(status.tenant == tenant_a);

  EXPECT(dcs_service_wait(service, job, &status) == DCS_OK);
  EXPECT(status.state == DCS_JOB_DONE);
  EXPECT(status.failure_code == DCS_OK);
  EXPECT(status.finish_index > 0);

  /* Fenced update then drain: the service absorbs the whole stream. */
  EXPECT(dcs_service_apply_update(service, tenant_a, DCS_UPDATE_G2, 0, 1,
                                  2.5) == DCS_OK);
  EXPECT(dcs_service_apply_update(service, tenant_a, 9, 0, 1, 2.5) ==
         DCS_INVALID_ARGUMENT); /* bad side */
  EXPECT(dcs_service_apply_update(service, tenant_a, DCS_UPDATE_G1, 3, 3,
                                  1.0) == DCS_INVALID_ARGUMENT); /* loop */
  EXPECT(dcs_service_drain(service) == DCS_OK);

  /* Extract the finished responses and compare them. */
  EXPECT(dcs_service_take_response(service, job, &response) == DCS_OK);
  EXPECT(response != NULL);
  {
    dcs_response* response_b = NULL;
    size_t n_ad = dcs_response_num_subgraphs(response,
                                             DCS_MEASURE_AVERAGE_DEGREE);
    size_t n_ga = dcs_response_num_subgraphs(response,
                                             DCS_MEASURE_GRAPH_AFFINITY);
    EXPECT(n_ad == 1);
    EXPECT(n_ga == 1);
    EXPECT(dcs_response_num_subgraphs(response, DCS_MEASURE_BOTH) == 0);
    EXPECT(dcs_service_take_response(service, job_b, &response_b) == DCS_OK);
    EXPECT(dcs_response_num_subgraphs(response_b,
                                      DCS_MEASURE_AVERAGE_DEGREE) == n_ad);
    /* Same pair, same request: per-tenant determinism means the mined
     * vertices and values agree exactly. */
    {
      dcs_subgraph_view va;
      dcs_subgraph_view vb;
      EXPECT(dcs_response_subgraph(response, DCS_MEASURE_GRAPH_AFFINITY, 0,
                                   &va) == DCS_OK);
      EXPECT(dcs_response_subgraph(response_b, DCS_MEASURE_GRAPH_AFFINITY, 0,
                                   &vb) == DCS_OK);
      EXPECT(va.num_vertices > 0);
      EXPECT(va.num_vertices == vb.num_vertices);
      EXPECT(va.value == vb.value);
      for (i = 0; i < va.num_vertices && i < vb.num_vertices; ++i) {
        EXPECT(va.vertices[i] == vb.vertices[i]);
        if (i > 0) EXPECT(va.vertices[i] > va.vertices[i - 1]);
      }
    }
    dcs_response_free(&response_b);
    EXPECT(response_b == NULL);
  }
  EXPECT(dcs_response_subgraph(response, DCS_MEASURE_GRAPH_AFFINITY, 17,
                               &view) == DCS_OUT_OF_RANGE);
  dcs_response_free(&response);
  EXPECT(response == NULL);
  dcs_response_free(&response); /* double-free no-op */

  /* Cancelled jobs refuse extraction with DCS_CANCELLED. */
  request.deadline_seconds = 0.0;
  EXPECT(dcs_service_submit(service, tenant_b, &request, &job) == DCS_OK);
  EXPECT(dcs_service_cancel(service, job, NULL) == DCS_OK);
  EXPECT(dcs_service_wait(service, job, &status) == DCS_OK);
  /* The job either finished before the cancel landed or was cancelled —
   * both are terminal; extraction then either succeeds or reports it. */
  EXPECT(status.state == DCS_JOB_DONE || status.state == DCS_JOB_CANCELLED);
  if (status.state == DCS_JOB_CANCELLED) {
    EXPECT(dcs_service_take_response(service, job, &response) ==
           DCS_CANCELLED);
    EXPECT(response == NULL);
  }

  /* Unknown job ids answer DCS_NOT_FOUND. */
  EXPECT(dcs_service_poll(service, 0xDEAD, &status) == DCS_NOT_FOUND);
  EXPECT(dcs_service_wait(service, 0xDEAD, &status) == DCS_NOT_FOUND);
  EXPECT(dcs_service_cancel(service, 0xDEAD, &status) == DCS_NOT_FOUND);

  dcs_service_free(&service);
  EXPECT(service == NULL);
  dcs_service_free(&service); /* double-free no-op */
}

static void test_admission_control(void) {
  dcs_service_options options;
  dcs_service* service = NULL;
  dcs_graph* g1 = NULL;
  dcs_graph* g2 = NULL;
  uint32_t tenant_a = 0;
  uint32_t tenant_b = 0;
  dcs_mining_request request;
  dcs_job_status status;
  uint64_t jobs[2];
  uint64_t job = 0;

  dcs_service_options_init(&options);
  /* Paused scheduler + a two-job service-wide budget: every admission
   * decision below is deterministic — nothing dispatches until resume. */
  options.start_paused = 1;
  options.max_total_queued_jobs = 2;
  options.max_queued_jobs = 1; /* per-tenant cap: 1 */
  EXPECT(dcs_service_create(&options, &service) == DCS_OK);
  EXPECT(dcs_graph_create(5, kG1Us, kG1Vs, kG1Ws, 5, &g1) == DCS_OK);
  EXPECT(dcs_graph_create(5, kG2Us, kG2Vs, kG2Ws, 6, &g2) == DCS_OK);
  EXPECT(dcs_service_add_tenant(service, g1, g2, 1, 0, &tenant_a) == DCS_OK);
  /* tenant_b overrides the per-tenant cap to 2 — the service budget, not
   * its own queue, must be what rejects its second job. */
  EXPECT(dcs_service_add_tenant(service, g1, g2, 1, 2, &tenant_b) == DCS_OK);
  dcs_graph_free(&g1);
  dcs_graph_free(&g2);

  dcs_mining_request_init(&request);
  /* Per-tenant backpressure: tenant_a holds 1 queued job, the second is
   * rejected with the OutOfRange backpressure signal. */
  EXPECT(dcs_service_submit(service, tenant_a, &request, &jobs[0]) == DCS_OK);
  EXPECT(dcs_service_submit(service, tenant_a, &request, &job) ==
         DCS_OUT_OF_RANGE);
  EXPECT(strstr(dcs_service_last_error(service), "queue full") != NULL);
  /* Service-wide budget: tenant_b's first job fills the 2-job budget, its
   * second sheds with DCS_RESOURCE_EXHAUSTED despite its own cap of 2. */
  EXPECT(dcs_service_submit(service, tenant_b, &request, &jobs[1]) == DCS_OK);
  EXPECT(dcs_service_submit(service, tenant_b, &request, &job) ==
         DCS_RESOURCE_EXHAUSTED);
  EXPECT(strstr(dcs_service_last_error(service), "budget") != NULL);

  EXPECT(dcs_service_resume(service) == DCS_OK);
  EXPECT(dcs_service_drain(service) == DCS_OK);
  EXPECT(dcs_service_wait(service, jobs[0], &status) == DCS_OK);
  EXPECT(status.state == DCS_JOB_DONE);
  EXPECT(dcs_service_wait(service, jobs[1], &status) == DCS_OK);
  EXPECT(status.state == DCS_JOB_DONE);
  dcs_service_free(&service);
}

int main(void) {
  test_names();
  test_graph_errors();
  test_null_handle_hardening();
  test_end_to_end();
  test_admission_control();
  if (g_failures != 0) {
    fprintf(stderr, "c_api_test: %d expectation(s) failed\n", g_failures);
    return 1;
  }
  printf("c_api_test: all C-ABI expectations passed\n");
  return 0;
}
