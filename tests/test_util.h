// Shared helpers for the libdcs test suites.

#ifndef DCS_TESTS_TEST_UTIL_H_
#define DCS_TESTS_TEST_UTIL_H_

#include <tuple>
#include <vector>

#include "graph/difference.h"
#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "util/logging.h"

namespace dcs::testing {

/// Builds a graph from (u, v, w) triples; aborts on invalid input.
inline Graph MakeGraph(VertexId n,
                       const std::vector<std::tuple<VertexId, VertexId, double>>&
                           edges) {
  GraphBuilder builder(n);
  for (const auto& [u, v, w] : edges) builder.AddEdgeUnchecked(u, v, w);
  Result<Graph> graph = builder.Build();
  DCS_CHECK(graph.ok()) << graph.status().ToString();
  return std::move(graph).value();
}

/// G1 modeled on the paper's Fig. 1 (5 vertices; ids v1..v5 -> 0..4; exact
/// figure weights are not recoverable from the text, but the §III-C detail
/// that edge (v1,v2) exists only in G2 is preserved).
inline Graph Fig1G1() {
  return MakeGraph(5, {{1, 2, 2.0},
                       {0, 3, 1.0},
                       {2, 3, 3.0},
                       {3, 4, 2.0},
                       {0, 4, 2.0}});
}

/// G2 modeled on the paper's Fig. 1.
inline Graph Fig1G2() {
  return MakeGraph(5, {{0, 1, 4.0},
                       {1, 2, 5.0},
                       {0, 3, 2.0},
                       {2, 3, 1.0},
                       {3, 4, 6.0},
                       {0, 4, 1.0}});
}

/// The resulting difference graph GD = G2 − G1:
///   (0,1)=+4, (1,2)=+3, (0,3)=+1, (2,3)=−2, (3,4)=+4, (0,4)=−1.
inline Graph Fig1Gd() {
  Result<Graph> gd = BuildDifferenceGraph(Fig1G1(), Fig1G2());
  DCS_CHECK(gd.ok());
  return std::move(gd).value();
}

/// The Theorem 1 hardness reduction: given an unweighted graph G (max-clique
/// instance), G1 = complement with weight |E|+1, G2 = G with weight 1. The
/// optimal DCSAD density equals (max clique size) − 1.
struct HardnessReduction {
  Graph g1;
  Graph g2;
};

inline HardnessReduction MakeHardnessReduction(
    VertexId n, const std::vector<std::pair<VertexId, VertexId>>& clique_edges) {
  GraphBuilder g2_builder(n);
  std::vector<std::vector<char>> adjacent(n, std::vector<char>(n, 0));
  for (const auto& [u, v] : clique_edges) {
    g2_builder.AddEdgeUnchecked(u, v, 1.0);
    adjacent[u][v] = adjacent[v][u] = 1;
  }
  const double penalty = static_cast<double>(clique_edges.size()) + 1.0;
  GraphBuilder g1_builder(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      if (!adjacent[u][v]) g1_builder.AddEdgeUnchecked(u, v, penalty);
    }
  }
  HardnessReduction out{Graph(0), Graph(0)};
  Result<Graph> g1 = g1_builder.Build();
  Result<Graph> g2 = g2_builder.Build();
  DCS_CHECK(g1.ok() && g2.ok());
  out.g1 = std::move(g1).value();
  out.g2 = std::move(g2).value();
  return out;
}

}  // namespace dcs::testing

#endif  // DCS_TESTS_TEST_UTIL_H_
