// Shared helpers for the libdcs test suites.

#ifndef DCS_TESTS_TEST_UTIL_H_
#define DCS_TESTS_TEST_UTIL_H_

#include <cstdio>
#include <string>
#include <tuple>
#include <vector>

#include "api/mining.h"
#include "graph/difference.h"
#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "util/logging.h"

namespace dcs::testing {

/// Serializes a response's ranked subgraphs at full double precision — the
/// fields the determinism guarantee covers (vertices, embedding weights,
/// value, ratio bound, clique flag). Safe to compare across thread counts:
/// mined subgraphs are parallelism-invariant.
inline std::string SerializeSubgraphs(const MiningResponse& response) {
  std::string out;
  char buf[64];
  for (const std::vector<RankedSubgraph>* list :
       {&response.average_degree, &response.graph_affinity}) {
    for (const RankedSubgraph& s : *list) {
      out += "[";
      for (VertexId v : s.vertices) {
        std::snprintf(buf, sizeof(buf), "%u,", v);
        out += buf;
      }
      out += "|";
      for (double w : s.weights) {
        std::snprintf(buf, sizeof(buf), "%.17g,", w);
        out += buf;
      }
      std::snprintf(buf, sizeof(buf), "|v=%.17g|r=%.17g|c=%d]", s.value,
                    s.ratio_bound, s.positive_clique ? 1 : 0);
      out += buf;
    }
    out += ";";
  }
  return out;
}

/// SerializeSubgraphs plus every deterministic telemetry field (wall times
/// are the documented exception). Only meaningful when the solve's work
/// counters are timing-independent — i.e. sequential seed loops
/// (ga_solver.parallelism == 1); with intra-request sharding the counters
/// legitimately vary, use SerializeSubgraphs instead.
inline std::string SerializeDeterministic(const MiningResponse& response) {
  std::string out = SerializeSubgraphs(response);
  char buf[96];
  std::snprintf(
      buf, sizeof(buf), "T:%llu,%llu,%llu,%llu,%u,%llu,%d,%d",
      static_cast<unsigned long long>(response.telemetry.initializations),
      static_cast<unsigned long long>(response.telemetry.pruned_seeds),
      static_cast<unsigned long long>(response.telemetry.cd_iterations),
      static_cast<unsigned long long>(response.telemetry.replicator_sweeps),
      response.telemetry.expansion_errors,
      static_cast<unsigned long long>(response.telemetry.session_rebuilds),
      response.telemetry.reused_cached_difference ? 1 : 0,
      response.telemetry.warm_start_used ? 1 : 0);
  out += buf;
  return out;
}

/// Builds a graph from (u, v, w) triples; aborts on invalid input.
inline Graph MakeGraph(VertexId n,
                       const std::vector<std::tuple<VertexId, VertexId, double>>&
                           edges) {
  GraphBuilder builder(n);
  for (const auto& [u, v, w] : edges) builder.AddEdgeUnchecked(u, v, w);
  Result<Graph> graph = builder.Build();
  DCS_CHECK(graph.ok()) << graph.status().ToString();
  return std::move(graph).value();
}

/// G1 modeled on the paper's Fig. 1 (5 vertices; ids v1..v5 -> 0..4; exact
/// figure weights are not recoverable from the text, but the §III-C detail
/// that edge (v1,v2) exists only in G2 is preserved).
inline Graph Fig1G1() {
  return MakeGraph(5, {{1, 2, 2.0},
                       {0, 3, 1.0},
                       {2, 3, 3.0},
                       {3, 4, 2.0},
                       {0, 4, 2.0}});
}

/// G2 modeled on the paper's Fig. 1.
inline Graph Fig1G2() {
  return MakeGraph(5, {{0, 1, 4.0},
                       {1, 2, 5.0},
                       {0, 3, 2.0},
                       {2, 3, 1.0},
                       {3, 4, 6.0},
                       {0, 4, 1.0}});
}

/// The resulting difference graph GD = G2 − G1:
///   (0,1)=+4, (1,2)=+3, (0,3)=+1, (2,3)=−2, (3,4)=+4, (0,4)=−1.
inline Graph Fig1Gd() {
  Result<Graph> gd = BuildDifferenceGraph(Fig1G1(), Fig1G2());
  DCS_CHECK(gd.ok());
  return std::move(gd).value();
}

/// The Theorem 1 hardness reduction: given an unweighted graph G (max-clique
/// instance), G1 = complement with weight |E|+1, G2 = G with weight 1. The
/// optimal DCSAD density equals (max clique size) − 1.
struct HardnessReduction {
  Graph g1;
  Graph g2;
};

inline HardnessReduction MakeHardnessReduction(
    VertexId n, const std::vector<std::pair<VertexId, VertexId>>& clique_edges) {
  GraphBuilder g2_builder(n);
  std::vector<std::vector<char>> adjacent(n, std::vector<char>(n, 0));
  for (const auto& [u, v] : clique_edges) {
    g2_builder.AddEdgeUnchecked(u, v, 1.0);
    adjacent[u][v] = adjacent[v][u] = 1;
  }
  const double penalty = static_cast<double>(clique_edges.size()) + 1.0;
  GraphBuilder g1_builder(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      if (!adjacent[u][v]) g1_builder.AddEdgeUnchecked(u, v, penalty);
    }
  }
  HardnessReduction out{Graph(0), Graph(0)};
  Result<Graph> g1 = g1_builder.Build();
  Result<Graph> g2 = g2_builder.Build();
  DCS_CHECK(g1.ok() && g2.ok());
  out.g1 = std::move(g1).value();
  out.g2 = std::move(g2).value();
  return out;
}

}  // namespace dcs::testing

#endif  // DCS_TESTS_TEST_UTIL_H_
