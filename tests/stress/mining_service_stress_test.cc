// Stress harness for the async mining service (ctest label `stress`).
//
// The acceptance bar of the async surface: a run of ≥ 64 submitted jobs —
// mixed measures and pipelines, streaming updates fenced into the queue,
// random cancellations, submissions racing from several threads — completes
// with every finished job's affinity/support/embedding bit-identical to a
// synchronous reference solve of the same request against the same graph
// snapshot.

#include "api/mining_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "api/miner_session.h"
#include "api/pipeline_cache.h"
#include "gen/random_graphs.h"
#include "test_util.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace dcs {
namespace {

using ::dcs::testing::MakeGraph;

MinerSession MustCreate(const Graph& g1, const Graph& g2,
                        SessionOptions options = {}) {
  Result<MinerSession> session = MinerSession::Create(g1, g2, options);
  DCS_CHECK(session.ok()) << session.status().ToString();
  return std::move(*session);
}

// The subgraph fields the determinism guarantee covers: affinity / support /
// embedding (and the DCSAD analogues), at full double precision.
std::string SerializeSubgraphs(const MiningResponse& response) {
  return ::dcs::testing::SerializeSubgraphs(response);
}

// A deterministic function of (rng) producing a mixed request.
MiningRequest RandomRequest(Rng* rng) {
  MiningRequest request;
  switch (rng->NextBounded(3)) {
    case 0:
      request.measure = Measure::kGraphAffinity;
      break;
    case 1:
      request.measure = Measure::kBoth;
      break;
    default:
      request.measure = Measure::kAverageDegree;
      break;
  }
  request.alpha = 1.0 + static_cast<double>(rng->NextBounded(3));
  request.flip = rng->NextBounded(4) == 0;
  request.top_k = rng->NextBounded(5) == 0 ? 2 : 1;
  request.ga_solver.parallelism = 0;  // auto: share the session budget
  return request;
}

std::pair<Graph, Graph> StressGraphs() {
  Rng rng(1729);
  Result<Graph> g2 = RandomSignedGraph(/*n=*/150, /*m=*/1200,
                                       /*positive_fraction=*/0.7,
                                       /*magnitude_lo=*/0.5,
                                       /*magnitude_hi=*/3.0, &rng);
  DCS_CHECK(g2.ok()) << g2.status().ToString();
  return {MakeGraph(150, {}), std::move(*g2)};
}

// Part 1 — the full acceptance scenario, single submitter so the fence
// order (and therefore each job's reference snapshot) is deterministic:
// 64 jobs, an update queued every 8th op, ~1 in 6 jobs randomly cancelled.
TEST(MiningServiceStressTest, MixedJobsUpdatesAndCancellationsStayExact) {
  const auto [g1, g2] = StressGraphs();
  constexpr size_t kJobs = 64;
  Rng rng(20180416);

  // Script the whole run up front so the reference replay sees the exact
  // same op sequence.
  std::vector<MiningRequest> requests;
  std::vector<bool> update_before;  // queue an update before job i?
  std::vector<bool> try_cancel;     // cancel job i after the submit burst?
  for (size_t i = 0; i < kJobs; ++i) {
    requests.push_back(RandomRequest(&rng));
    update_before.push_back(i % 8 == 5);
    try_cancel.push_back(rng.NextBounded(6) == 0);
  }
  auto update_edge = [](size_t i) {
    return std::pair<VertexId, VertexId>(static_cast<VertexId>(i),
                                         static_cast<VertexId>(i + 60));
  };

  // Reference: synchronous replay. Cancellation never touches session
  // state, so the replay ignores it — a cancelled job simply has no
  // response to compare.
  MinerSession reference = MustCreate(g1, g2);
  std::vector<std::string> expected;
  for (size_t i = 0; i < kJobs; ++i) {
    if (update_before[i]) {
      const auto [u, v] = update_edge(i);
      ASSERT_TRUE(reference.ApplyUpdate(UpdateSide::kG2, u, v, 2.5).ok());
    }
    Result<MiningResponse> mined = reference.Mine(requests[i]);
    ASSERT_TRUE(mined.ok()) << "reference job #" << i << ": "
                            << mined.status().ToString();
    expected.push_back(SerializeSubgraphs(*mined));
  }

  // The async run, on a session with a real thread budget so NewSEA solves
  // shard across the pool while the queue churns.
  SessionOptions session_options;
  session_options.max_parallelism = 4;
  MiningService service(MustCreate(g1, g2, session_options));
  size_t max_pending = 0;
  std::vector<JobId> ids;
  for (size_t i = 0; i < kJobs; ++i) {
    if (update_before[i]) {
      const auto [u, v] = update_edge(i);
      ASSERT_TRUE(service.ApplyUpdate(UpdateSide::kG2, u, v, 2.5).ok());
    }
    Result<JobId> id = service.Submit(requests[i]);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
    max_pending = std::max(max_pending, service.num_pending_jobs());
  }
  // Random cancellations racing the executor: depending on timing each
  // victim is already done (no-op), running (token abort) or queued
  // (terminal immediately) — all three must leave the run consistent.
  for (size_t i = 0; i < kJobs; ++i) {
    if (try_cancel[i]) {
      ASSERT_TRUE(service.Cancel(ids[i]).ok());
    }
  }

  size_t done = 0;
  size_t cancelled = 0;
  for (size_t i = 0; i < kJobs; ++i) {
    Result<JobStatus> status = service.Wait(ids[i]);
    ASSERT_TRUE(status.ok());
    if (status->state == JobState::kCancelled) {
      EXPECT_TRUE(try_cancel[i]) << "job #" << i << " cancelled unasked";
      EXPECT_TRUE(status->response.graph_affinity.empty());
      EXPECT_TRUE(status->response.average_degree.empty());
      ++cancelled;
      continue;
    }
    ASSERT_EQ(status->state, JobState::kDone)
        << "job #" << i << ": " << status->failure.ToString();
    EXPECT_EQ(SerializeSubgraphs(status->response), expected[i])
        << "job #" << i << " diverged from its synchronous reference";
    ++done;
  }
  EXPECT_EQ(done + cancelled, kJobs);
  EXPECT_LE(cancelled, static_cast<size_t>(std::count(
                           try_cancel.begin(), try_cancel.end(), true)));
  // Submitting is instant while each solve takes real work, so the burst
  // genuinely backs up the queue — the stress ran concurrent jobs, it
  // didn't accidentally serialize submit → wait → submit.
  EXPECT_GT(max_pending, 1u);
}

// Part 2 — thread-safety of the submit surface: several submitter threads
// race Submit against one fixed snapshot (no updates), so every job's
// reference depends only on its request. All must finish bit-identical.
TEST(MiningServiceStressTest, ConcurrentSubmittersGetExactResults) {
  const auto [g1, g2] = StressGraphs();
  constexpr size_t kThreads = 4;
  constexpr size_t kJobsPerThread = 16;

  // Distinct request variants, references computed synchronously once.
  std::vector<MiningRequest> variants;
  for (size_t i = 0; i < 6; ++i) {
    MiningRequest request;
    request.measure = i % 2 == 0 ? Measure::kGraphAffinity : Measure::kBoth;
    request.alpha = 1.0 + static_cast<double>(i % 3);
    request.ga_solver.parallelism = 0;
    variants.push_back(request);
  }
  MinerSession reference = MustCreate(g1, g2);
  std::vector<std::string> expected;
  for (const MiningRequest& request : variants) {
    Result<MiningResponse> mined = reference.Mine(request);
    ASSERT_TRUE(mined.ok());
    expected.push_back(SerializeSubgraphs(*mined));
  }

  SessionOptions session_options;
  session_options.max_parallelism = 4;
  MiningService service(MustCreate(g1, g2, session_options));
  std::vector<std::vector<std::pair<JobId, size_t>>> submitted(kThreads);
  {
    std::vector<std::thread> submitters;
    for (size_t t = 0; t < kThreads; ++t) {
      submitters.emplace_back([&, t] {
        Rng rng(7000 + t);
        for (size_t i = 0; i < kJobsPerThread; ++i) {
          const size_t variant = rng.NextBounded(variants.size());
          Result<JobId> id = service.Submit(variants[variant]);
          DCS_CHECK(id.ok()) << id.status().ToString();
          submitted[t].push_back({*id, variant});
        }
      });
    }
    for (std::thread& submitter : submitters) submitter.join();
  }

  for (size_t t = 0; t < kThreads; ++t) {
    for (const auto& [id, variant] : submitted[t]) {
      Result<JobStatus> status = service.Wait(id);
      ASSERT_TRUE(status.ok());
      ASSERT_EQ(status->state, JobState::kDone);
      EXPECT_EQ(SerializeSubgraphs(status->response), expected[variant])
          << "submitter " << t << " job " << id;
    }
  }
  EXPECT_EQ(service.num_submitted(), kThreads * kJobsPerThread);
}

// Part 3 — the multi-tenant acceptance scenario: four tenants over distinct
// graph snapshots, each with its own scripted mix of jobs, fenced updates
// and cancellations, submitted from four racing threads (one per tenant)
// into a shared-pool, shared-cache, multi-executor service under priority
// churn. Every finished job must stay bit-identical to the tenant's
// synchronous replay — cross-tenant scheduling must never leak into
// results.
TEST(MiningServiceStressTest, MultiTenantMixedLoadStaysExactPerTenant) {
  constexpr size_t kTenants = 4;
  constexpr size_t kJobsPerTenant = 24;

  // Per-tenant graph pairs (distinct seeds → distinct snapshots).
  std::vector<std::pair<Graph, Graph>> pairs;
  for (size_t t = 0; t < kTenants; ++t) {
    Rng rng(5000 + t);
    Result<Graph> g2 = RandomSignedGraph(/*n=*/100, /*m=*/700,
                                         /*positive_fraction=*/0.7,
                                         /*magnitude_lo=*/0.5,
                                         /*magnitude_hi=*/3.0, &rng);
    ASSERT_TRUE(g2.ok());
    pairs.emplace_back(MakeGraph(100, {}), std::move(*g2));
  }

  // Scripts + synchronous references, per tenant.
  std::vector<std::vector<MiningRequest>> scripts(kTenants);
  std::vector<std::vector<bool>> update_before(kTenants);
  std::vector<std::vector<bool>> try_cancel(kTenants);
  std::vector<std::vector<std::string>> expected(kTenants);
  for (size_t t = 0; t < kTenants; ++t) {
    Rng rng(9100 + t);
    MinerSession reference = MustCreate(pairs[t].first, pairs[t].second);
    for (size_t i = 0; i < kJobsPerTenant; ++i) {
      MiningRequest request = RandomRequest(&rng);
      request.priority = static_cast<int32_t>(rng.NextBounded(3)) - 1;
      scripts[t].push_back(request);
      update_before[t].push_back(i % 7 == 3);
      try_cancel[t].push_back(rng.NextBounded(8) == 0);
      if (update_before[t][i]) {
        ASSERT_TRUE(reference
                        .ApplyUpdate(UpdateSide::kG2,
                                     static_cast<VertexId>(i),
                                     static_cast<VertexId>(i + 40), 2.5)
                        .ok());
      }
      Result<MiningResponse> mined = reference.Mine(request);
      ASSERT_TRUE(mined.ok());
      expected[t].push_back(SerializeSubgraphs(*mined));
    }
  }

  MiningServiceOptions options;
  options.num_executors = 3;
  options.shared_cache = std::make_shared<PipelineCache>();
  options.worker_pool =
      std::make_shared<ThreadPool>(ThreadPool::DefaultConcurrency() - 1);
  MiningService service(options);
  for (auto& [g1, g2] : pairs) {
    Result<TenantId> tenant = service.AddTenant(MustCreate(g1, g2));
    ASSERT_TRUE(tenant.ok());
  }

  std::vector<std::vector<JobId>> ids(kTenants);
  {
    std::vector<std::thread> submitters;
    for (size_t t = 0; t < kTenants; ++t) {
      submitters.emplace_back([&, t] {
        for (size_t i = 0; i < kJobsPerTenant; ++i) {
          if (update_before[t][i]) {
            DCS_CHECK(service
                          .ApplyUpdate(static_cast<TenantId>(t),
                                       UpdateSide::kG2,
                                       static_cast<VertexId>(i),
                                       static_cast<VertexId>(i + 40), 2.5)
                          .ok());
          }
          Result<JobId> id =
              service.Submit(static_cast<TenantId>(t), scripts[t][i]);
          DCS_CHECK(id.ok()) << id.status().ToString();
          ids[t].push_back(*id);
          if (try_cancel[t][i]) {
            DCS_CHECK(service.Cancel(ids[t][i]).ok());
          }
        }
      });
    }
    for (std::thread& submitter : submitters) submitter.join();
  }

  for (size_t t = 0; t < kTenants; ++t) {
    size_t done = 0, cancelled = 0;
    for (size_t i = 0; i < kJobsPerTenant; ++i) {
      Result<JobStatus> status = service.Wait(ids[t][i]);
      ASSERT_TRUE(status.ok());
      EXPECT_EQ(status->tenant, t);
      if (status->state == JobState::kCancelled) {
        EXPECT_TRUE(try_cancel[t][i])
            << "tenant " << t << " job " << i << " cancelled unasked";
        ++cancelled;
        continue;
      }
      ASSERT_EQ(status->state, JobState::kDone)
          << "tenant " << t << " job " << i << ": "
          << status->failure.ToString();
      EXPECT_EQ(SerializeSubgraphs(status->response), expected[t][i])
          << "tenant " << t << " job " << i
          << " diverged from its synchronous reference";
      ++done;
    }
    EXPECT_EQ(done + cancelled, kJobsPerTenant);
    Result<TenantStats> stats = service.tenant_stats(static_cast<TenantId>(t));
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->submitted, kJobsPerTenant);
    EXPECT_EQ(stats->completed + stats->failed + stats->cancelled,
              kJobsPerTenant);
  }
}

}  // namespace
}  // namespace dcs
