// ThreadPool group churn under multi-submitter load (ctest label `stress`).
//
// The async service multiplies the pool's group traffic: every queued job's
// NewSEA solve opens a task group on the session's shared pool while other
// threads submit more work. This harness drives the pattern directly —
// hundreds of tiny, short-lived groups racing from several submitter
// threads, with seeded sizes, occasional nesting and occasional exceptions —
// and asserts the RunTasks contract holds for every single group: each
// index runs exactly once and the first exception (only) is rethrown.

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/rng.h"

namespace dcs {
namespace {

TEST(ThreadPoolChurnTest, HundredsOfTinyGroupsFromManySubmitters) {
  ThreadPool pool(3);
  constexpr size_t kSubmitters = 5;
  constexpr size_t kGroupsPerSubmitter = 300;
  std::atomic<uint64_t> total_runs{0};
  std::atomic<int> contract_failures{0};

  std::vector<std::thread> submitters;
  for (size_t t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      Rng rng(9000 + t);  // seeded: the churn pattern is reproducible
      for (size_t g = 0; g < kGroupsPerSubmitter; ++g) {
        const size_t size = 1 + rng.NextBounded(8);
        std::vector<std::atomic<int>> hits(size);
        pool.RunTasks(size, [&](size_t i) {
          hits[i].fetch_add(1);
          total_runs.fetch_add(1);
        });
        // RunTasks returned, so every index of this group must have run
        // exactly once — groups from other submitters never bleed in.
        for (size_t i = 0; i < size; ++i) {
          if (hits[i].load() != 1) contract_failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& submitter : submitters) submitter.join();
  EXPECT_EQ(contract_failures.load(), 0);
  EXPECT_GT(total_runs.load(), kSubmitters * kGroupsPerSubmitter);
}

TEST(ThreadPoolChurnTest, NestedGroupsUnderChurnDoNotDeadlockOrLeak) {
  // The MineAll shape: outer groups (requests) open inner groups (seed
  // shards) on the same pool, from multiple sessions' worth of submitters.
  ThreadPool pool(2);
  constexpr size_t kSubmitters = 4;
  constexpr size_t kRounds = 60;
  std::atomic<uint64_t> inner_runs{0};

  std::vector<std::thread> submitters;
  for (size_t t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      Rng rng(4100 + t);
      for (size_t round = 0; round < kRounds; ++round) {
        const size_t outer = 1 + rng.NextBounded(3);
        const size_t inner = 1 + rng.NextBounded(4);
        pool.RunTasks(outer, [&](size_t) {
          pool.RunTasks(inner,
                        [&](size_t) { inner_runs.fetch_add(1); });
        });
      }
    });
  }
  for (std::thread& submitter : submitters) submitter.join();
  EXPECT_GT(inner_runs.load(), 0u);
}

TEST(ThreadPoolChurnTest, ExceptionsStayConfinedToTheirGroup) {
  ThreadPool pool(3);
  constexpr size_t kSubmitters = 4;
  constexpr size_t kGroupsPerSubmitter = 120;
  std::atomic<int> wrong_outcomes{0};

  std::vector<std::thread> submitters;
  for (size_t t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      Rng rng(5300 + t);
      for (size_t g = 0; g < kGroupsPerSubmitter; ++g) {
        const size_t size = 1 + rng.NextBounded(6);
        const bool should_throw = rng.NextBounded(3) == 0;
        const size_t thrower = rng.NextBounded(size);
        std::atomic<size_t> runs{0};
        bool threw = false;
        try {
          pool.RunTasks(size, [&](size_t i) {
            runs.fetch_add(1);
            if (should_throw && i == thrower) {
              throw std::runtime_error("churn");
            }
          });
        } catch (const std::runtime_error&) {
          threw = true;
        }
        // Every index still ran, and the exception surfaced exactly when
        // one was thrown — unrelated groups' errors never cross over.
        if (runs.load() != size || threw != should_throw) {
          wrong_outcomes.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& submitter : submitters) submitter.join();
  EXPECT_EQ(wrong_outcomes.load(), 0);
}

}  // namespace
}  // namespace dcs
