// ArtifactStore concurrency stress: many writers and readers hammer ONE
// store file through SEPARATE open handles. BSD flock is per
// open-file-description, so distinct handles in one process contend exactly
// like distinct processes — this exercises the advisory-lock protocol
// (shared reads, exclusive appends, reliable-end tracking across handles)
// without a fork/exec harness. The bar: no torn pages, no lost records,
// and a clean fsck at the end.

#include "store/artifact_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/pipeline_cache.h"
#include "test_util.h"

namespace dcs {
namespace {

using ::dcs::testing::Fig1Gd;
using ::dcs::testing::MakeGraph;

std::shared_ptr<ArtifactStore> OpenOrDie(const std::string& path) {
  Result<std::shared_ptr<ArtifactStore>> store = ArtifactStore::Open(path);
  DCS_CHECK(store.ok()) << store.status().ToString();
  return std::move(store).value();
}

// A small distinct graph per (thread, round): a 4-cycle whose weights encode
// the pair, so every record has a unique fingerprint and verifiable content.
Graph DistinctGraph(uint32_t thread, uint32_t round) {
  const double w = 1.0 + thread * 97.0 + round;
  return MakeGraph(4, {{0, 1, w}, {1, 2, w + 0.5}, {2, 3, -w}, {0, 3, 2.0}});
}

PipelineCacheKey DistinctKey(uint32_t thread, uint32_t round) {
  PipelineCacheKey key;
  key.graph_fingerprint = 0x5354524553530000ull + thread;  // per-thread family
  key.alpha = 1.0 + round;
  return key;
}

TEST(ArtifactStoreStressTest, ConcurrentHandlesOnOneFile) {
  const std::string path =
      ::testing::TempDir() + "artifact_store_stress_shared.dcs";
  std::filesystem::remove(path);

  constexpr uint32_t kThreads = 8;
  constexpr uint32_t kRounds = 24;

  std::atomic<uint64_t> load_failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (uint32_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each worker owns a private handle — and therefore a private flock.
      auto store = OpenOrDie(path);
      for (uint32_t r = 0; r < kRounds; ++r) {
        const Graph graph = DistinctGraph(t, r);
        ASSERT_TRUE(store->PutGraph(graph).ok());

        PreparedPipeline pipeline;
        pipeline.difference = Fig1Gd();
        if (r % 2 == 0) {
          ASSERT_TRUE(store->PutPipeline(DistinctKey(t, r), pipeline).ok());
        } else {
          store->PutPipelineAsync(
              DistinctKey(t, r),
              std::make_shared<const PreparedPipeline>(pipeline));
        }

        // Re-read our own graph through the same contended file. A handle
        // always sees its own appends; anything else is a torn write.
        Result<Graph> back = store->LoadGraph(graph.ContentFingerprint());
        if (!back.ok() ||
            back->ContentFingerprint() != graph.ContentFingerprint()) {
          load_failures.fetch_add(1);
        }
      }
      store->Flush();
      EXPECT_EQ(store->stats().write_errors, 0u);
      EXPECT_EQ(store->stats().corrupt_pages, 0u);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(load_failures.load(), 0u);

  // Offline: every page in the file must be intact.
  Result<ArtifactFsckReport> report = ArtifactStore::Fsck(path);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->superblock_ok);
  EXPECT_EQ(report->corrupt_pages, 0u);
  EXPECT_EQ(report->unreliable_tail_bytes, 0u);
  EXPECT_EQ(report->valid_records, uint64_t{kThreads} * kRounds * 2);

  // A fresh handle indexes every record and can load all of them.
  auto verifier = OpenOrDie(path);
  const ArtifactStoreStats stats = verifier->stats();
  EXPECT_EQ(stats.graph_records, uint64_t{kThreads} * kRounds);
  EXPECT_EQ(stats.pipeline_records, uint64_t{kThreads} * kRounds);
  for (uint32_t t = 0; t < kThreads; ++t) {
    for (uint32_t r = 0; r < kRounds; ++r) {
      const Graph expected = DistinctGraph(t, r);
      Result<Graph> graph =
          verifier->LoadGraph(expected.ContentFingerprint());
      ASSERT_TRUE(graph.ok()) << "thread " << t << " round " << r;
      EXPECT_EQ(graph->UndirectedEdges(), expected.UndirectedEdges());
      Result<PreparedPipeline> pipeline =
          verifier->LoadPipeline(DistinctKey(t, r));
      ASSERT_TRUE(pipeline.ok()) << "thread " << t << " round " << r;
      EXPECT_EQ(pipeline->difference.ContentFingerprint(),
                Fig1Gd().ContentFingerprint());
    }
  }
  EXPECT_EQ(verifier->stats().corrupt_pages, 0u);
}

TEST(ArtifactStoreStressTest, WritersRacingSameKeyConvergeToOneWinner) {
  const std::string path =
      ::testing::TempDir() + "artifact_store_stress_samekey.dcs";
  std::filesystem::remove(path);

  constexpr uint32_t kThreads = 6;
  constexpr uint32_t kRounds = 16;
  PipelineCacheKey key;
  key.graph_fingerprint = 0xC0FFEEull;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (uint32_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto store = OpenOrDie(path);
      for (uint32_t r = 0; r < kRounds; ++r) {
        // All threads overwrite ONE key with per-thread content; interleaved
        // loads must always see *some* writer's intact record, never a blend.
        PreparedPipeline pipeline;
        pipeline.difference = DistinctGraph(t, 0);
        ASSERT_TRUE(store->PutPipeline(key, pipeline).ok());
        Result<PreparedPipeline> read = store->LoadPipeline(key);
        ASSERT_TRUE(read.ok());
        bool matches_some_writer = false;
        for (uint32_t other = 0; other < kThreads; ++other) {
          if (read->difference.ContentFingerprint() ==
              DistinctGraph(other, 0).ContentFingerprint()) {
            matches_some_writer = true;
            break;
          }
        }
        EXPECT_TRUE(matches_some_writer) << "torn pipeline record observed";
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  Result<ArtifactFsckReport> report = ArtifactStore::Fsck(path);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->superblock_ok);
  EXPECT_EQ(report->corrupt_pages, 0u);
  EXPECT_EQ(report->valid_records, uint64_t{kThreads} * kRounds);

  // The newest record wins: a fresh handle holds exactly one entry.
  auto verifier = OpenOrDie(path);
  EXPECT_EQ(verifier->stats().pipeline_records, 1u);
  EXPECT_TRUE(verifier->LoadPipeline(key).ok());
}

}  // namespace
}  // namespace dcs
