// Chaos harness (ctest label `chaos`): the failure-domain acceptance bar.
//
// A MiningService is stormed with injected store faults, deadline
// expirations and cancellations at once, and must hold the robustness
// contract: every job reaches a terminal state, nothing crashes or leaks,
// completed jobs are bit-identical to a fault-free reference solve, the
// degradation ladder walks healthy → degraded → store-offline instead of
// failing mining, and the store file stays fsck-clean through everything —
// including a cancellation racing the async write-back mid-append.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/miner_session.h"
#include "api/mining_service.h"
#include "api/pipeline_cache.h"
#include "gen/random_graphs.h"
#include "store/artifact_store.h"
#include "test_util.h"
#include "util/fault_injection.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace dcs {
namespace {

using ::dcs::testing::Fig1G1;
using ::dcs::testing::Fig1G2;
using ::dcs::testing::MakeGraph;
using ::dcs::testing::SerializeSubgraphs;

// Every test arms the process-global fault registry; each must disarm it
// for whatever suite runs next in this binary.
class ChaosTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjection::Global().Reset(); }
};

MinerSession MustCreate(const Graph& g1, const Graph& g2,
                        SessionOptions options = {}) {
  Result<MinerSession> session = MinerSession::Create(g1, g2, options);
  DCS_CHECK(session.ok()) << session.status().ToString();
  return std::move(*session);
}

std::shared_ptr<ArtifactStore> OpenOrDie(const std::string& path) {
  Result<std::shared_ptr<ArtifactStore>> store = ArtifactStore::Open(path);
  DCS_CHECK(store.ok()) << store.status().ToString();
  return std::move(store).value();
}

// A deterministic function of (rng) producing a mixed request, mirroring
// the stress suite's distribution.
MiningRequest RandomRequest(Rng* rng) {
  MiningRequest request;
  switch (rng->NextBounded(3)) {
    case 0:
      request.measure = Measure::kGraphAffinity;
      break;
    case 1:
      request.measure = Measure::kBoth;
      break;
    default:
      request.measure = Measure::kAverageDegree;
      break;
  }
  request.alpha = 1.0 + static_cast<double>(rng->NextBounded(3));
  request.flip = rng->NextBounded(4) == 0;
  request.top_k = rng->NextBounded(5) == 0 ? 2 : 1;
  request.ga_solver.parallelism = 0;  // auto: share the session budget
  return request;
}

std::pair<Graph, Graph> ChaosGraphs() {
  Rng rng(4242);
  Result<Graph> g2 = RandomSignedGraph(/*n=*/120, /*m=*/900,
                                       /*positive_fraction=*/0.7,
                                       /*magnitude_lo=*/0.5,
                                       /*magnitude_hi=*/3.0, &rng);
  DCS_CHECK(g2.ok()) << g2.status().ToString();
  return {MakeGraph(120, {}), std::move(*g2)};
}

// The full storm: 48 scripted jobs submitted from 3 racing threads while a
// canceller fires at random targets, with every store operation failing,
// pipeline builds sporadically erroring, pool dispatch sporadically
// throwing, and a slice of jobs carrying already-hopeless deadlines.
TEST_F(ChaosTest, StormStaysTerminalAndBitIdentical) {
  const auto [g1, g2] = ChaosGraphs();
  constexpr size_t kJobs = 48;
  Rng rng(20180607);

  std::vector<MiningRequest> requests;
  std::vector<bool> try_cancel;
  for (size_t i = 0; i < kJobs; ++i) {
    MiningRequest request = RandomRequest(&rng);
    // Every 8th job is submitted with an unmeetable deadline — it must die
    // kFailed/kDeadlineExceeded, never hang and never return a partial
    // result.
    if (i % 8 == 3) request.deadline_seconds = 1e-6;
    requests.push_back(std::move(request));
    try_cancel.push_back(rng.NextBounded(6) == 0);
  }

  // Fault-free reference for every request (requests are pure functions of
  // the graphs — no streaming updates in this storm).
  std::vector<std::string> expected;
  {
    MinerSession reference = MustCreate(g1, g2);
    for (size_t i = 0; i < kJobs; ++i) {
      MiningRequest plain = requests[i];
      plain.deadline_seconds = 0.0;
      Result<MiningResponse> mined = reference.Mine(plain);
      ASSERT_TRUE(mined.ok()) << "reference #" << i << ": "
                              << mined.status().ToString();
      expected.push_back(SerializeSubgraphs(*mined));
    }
  }

  const std::string path = ::testing::TempDir() + "chaos_storm.dcs";
  std::filesystem::remove(path);
  std::shared_ptr<ArtifactStore> store = OpenOrDie(path);

  // Arm the storm: every store append fails outright (driving the ladder to
  // store-offline at the session threshold), flock degrades to lockless,
  // reads fail half the time, a bounded burst of pipeline builds error, and
  // two pool dispatches throw.
  ASSERT_TRUE(FaultInjection::Global()
                  .ArmText("store.append;"
                           "store.flock:every=2;"
                           "store.read:prob=0.5,seed=11;"
                           "cache.build:every=5,times=3;"
                           "pool.dispatch:every=37,times=2")
                  .ok());

  SessionOptions session_options;
  session_options.store_failure_threshold = 3;
  MiningServiceOptions service_options;
  service_options.artifact_store = store;
  MiningService service(MustCreate(g1, g2, session_options), service_options);

  // Atomic slots: the canceller spin-reads each id while its submitter is
  // still publishing them.
  std::vector<std::atomic<JobId>> ids(kJobs);
  {
    // 3 submitter threads racing Submit, plus a canceller hammering its
    // scripted targets as soon as their ids appear.
    constexpr size_t kSubmitters = 3;
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kSubmitters; ++t) {
      threads.emplace_back([&, t] {
        for (size_t i = t; i < kJobs; i += kSubmitters) {
          Result<JobId> id = service.Submit(requests[i]);
          ASSERT_TRUE(id.ok()) << id.status().ToString();
          ids[i].store(*id, std::memory_order_release);
        }
      });
    }
    threads.emplace_back([&] {
      for (size_t i = 0; i < kJobs; ++i) {
        if (!try_cancel[i]) continue;
        while (ids[i].load(std::memory_order_acquire) == 0) {
          std::this_thread::yield();
        }
        (void)service.Cancel(ids[i].load(std::memory_order_relaxed));
      }
    });
    for (std::thread& thread : threads) thread.join();
  }

  size_t done = 0;
  size_t failed = 0;
  size_t cancelled = 0;
  size_t deadline_failed = 0;
  for (size_t i = 0; i < kJobs; ++i) {
    Result<JobStatus> status = service.Wait(ids[i].load());
    ASSERT_TRUE(status.ok()) << status.status().ToString();
    ASSERT_TRUE(status->terminal()) << "job #" << i << " not terminal";
    switch (status->state) {
      case JobState::kDone:
        ++done;
        // The heart of the contract: a completed job under the storm is
        // bit-identical to the fault-free reference.
        EXPECT_EQ(SerializeSubgraphs(status->response), expected[i])
            << "job #" << i << " diverged under injected faults";
        break;
      case JobState::kFailed: {
        ++failed;
        const Status& failure = status->failure;
        EXPECT_TRUE(failure.IsDeadlineExceeded() || failure.IsIoError() ||
                    failure.code() == StatusCode::kInternal)
            << "job #" << i << " unexpected failure: " << failure.ToString();
        if (failure.IsDeadlineExceeded()) ++deadline_failed;
        break;
      }
      case JobState::kCancelled:
        ++cancelled;
        break;
      default:
        FAIL() << "job #" << i << " in non-terminal state";
    }
  }
  EXPECT_EQ(done + failed + cancelled, kJobs);
  // The storm must not have failed everything: deadline-free, uncancelled
  // jobs survive store faults by design.
  EXPECT_GE(done, kJobs / 4);
  // Every unmeetable-deadline job that was not cancelled first died with
  // kDeadlineExceeded.
  EXPECT_GE(deadline_failed, 1u);
  EXPECT_EQ(service.num_deadline_exceeded(),
            static_cast<uint64_t>(deadline_failed));

  // The ladder ran its full course: write-backs failed, the threshold
  // tripped, the store was detached — and mining kept answering above.
  EXPECT_EQ(service.health(), HealthState::kStoreOffline);
  EXPECT_GE(service.num_store_write_errors(), 3u);
  EXPECT_GE(service.num_health_transitions(), 1u);

  // No partial/torn on-disk state: an injected append fails before any byte
  // is written, so the file must fsck clean (whatever made it in is valid).
  FaultInjection::Global().Reset();
  store.reset();
  Result<ArtifactFsckReport> fsck = ArtifactStore::Fsck(path);
  ASSERT_TRUE(fsck.ok()) << fsck.status().ToString();
  EXPECT_TRUE(fsck->superblock_ok);
  EXPECT_EQ(fsck->corrupt_pages, 0u);
  std::filesystem::remove(path);
}

// Deadline semantics in isolation: a job expiring while queued behind a
// slow build fails without ever running; one expiring mid-run is stopped by
// the watchdog's token; and the session answers the next job untouched.
TEST_F(ChaosTest, DeadlineExpiryWhileQueuedAndWhileRunning) {
  const Graph g1 = Fig1G1();
  const Graph g2 = Fig1G2();

  MiningRequest slow;  // cold pipeline → delayed build below
  slow.measure = Measure::kBoth;
  MiningRequest expired = slow;
  expired.deadline_seconds = 0.01;
  MiningRequest mid_run = slow;
  mid_run.alpha = 2.0;  // distinct pipeline: builds cold (and slow) again
  mid_run.deadline_seconds = 0.02;

  std::string reference_serialized;
  {
    MinerSession reference = MustCreate(g1, g2);
    Result<MiningResponse> mined = reference.Mine(slow);
    ASSERT_TRUE(mined.ok()) << mined.status().ToString();
    reference_serialized = SerializeSubgraphs(*mined);
  }

  // Delay-only injection: every cold pipeline build stalls 60ms without
  // failing, so deadlines of 10–20ms reliably expire against it.
  ASSERT_TRUE(
      FaultInjection::Global().ArmText("cache.build:delay_ms=60,fail=0").ok());

  MiningService service(MustCreate(g1, g2));

  // Job A occupies the executor with the slow build; job B's 10ms deadline
  // expires while it waits behind A.
  Result<JobId> a = service.Submit(slow);
  Result<JobId> b = service.Submit(expired);
  ASSERT_TRUE(a.ok() && b.ok());
  Result<JobStatus> a_status = service.Wait(*a);
  Result<JobStatus> b_status = service.Wait(*b);
  ASSERT_TRUE(a_status.ok() && b_status.ok());
  EXPECT_EQ(a_status->state, JobState::kDone);
  EXPECT_EQ(SerializeSubgraphs(a_status->response), reference_serialized);
  EXPECT_EQ(b_status->state, JobState::kFailed);
  EXPECT_TRUE(b_status->failure.IsDeadlineExceeded())
      << b_status->failure.ToString();
  EXPECT_EQ(b_status->run_seconds, 0.0);  // guaranteed to never start

  // Job C starts immediately (queue empty) and its 20ms deadline fires
  // mid-build; the solve aborts at its first cancellation checkpoint with
  // no partial result.
  Result<JobId> c = service.Submit(mid_run);
  ASSERT_TRUE(c.ok());
  Result<JobStatus> c_status = service.Wait(*c);
  ASSERT_TRUE(c_status.ok());
  EXPECT_EQ(c_status->state, JobState::kFailed);
  EXPECT_TRUE(c_status->failure.IsDeadlineExceeded())
      << c_status->failure.ToString();
  EXPECT_EQ(service.num_deadline_exceeded(), 2u);

  // The session survived both expirations: the same request without a
  // deadline completes bit-identically (the slow pipeline is cached by A's
  // run, so no build delay applies).
  Result<JobId> d = service.Submit(slow);
  ASSERT_TRUE(d.ok());
  Result<JobStatus> d_status = service.Wait(*d);
  ASSERT_TRUE(d_status.ok());
  EXPECT_EQ(d_status->state, JobState::kDone);
  EXPECT_EQ(SerializeSubgraphs(d_status->response), reference_serialized);
}

// The satellite race: Cancel() lands while the store's writer thread is
// mid-append (injected 25ms latency inside the write-back). The job must
// terminate cleanly, the session must stay reusable, and the store file
// must fsck clean with the record either fully present or fully absent.
TEST_F(ChaosTest, CancelRacingAsyncWriteBackLeavesStoreClean) {
  const Graph g1 = Fig1G1();
  const Graph g2 = Fig1G2();
  MiningRequest request;
  request.measure = Measure::kBoth;

  std::string reference_serialized;
  {
    MinerSession reference = MustCreate(g1, g2);
    Result<MiningResponse> mined = reference.Mine(request);
    ASSERT_TRUE(mined.ok()) << mined.status().ToString();
    reference_serialized = SerializeSubgraphs(*mined);
  }

  const std::string path = ::testing::TempDir() + "chaos_cancel_race.dcs";
  std::filesystem::remove(path);
  std::shared_ptr<ArtifactStore> store = OpenOrDie(path);

  // Delay-only: appends succeed but take 25ms, widening the window in which
  // the cancellation races the in-flight write-back.
  ASSERT_TRUE(
      FaultInjection::Global().ArmText("store.append:delay_ms=25,fail=0").ok());

  MiningServiceOptions service_options;
  service_options.artifact_store = store;
  {
    MiningService service(MustCreate(g1, g2), service_options);
    Result<JobId> raced = service.Submit(request);
    ASSERT_TRUE(raced.ok());
    // Fire the cancel as fast as possible; whether it beats the solve is
    // the race under test — both outcomes must leave a clean store.
    (void)service.Cancel(*raced);
    Result<JobStatus> raced_status = service.Wait(*raced);
    ASSERT_TRUE(raced_status.ok());
    ASSERT_TRUE(raced_status->terminal());

    // Session reusable: the identical request completes bit-identically.
    Result<JobId> retry = service.Submit(request);
    ASSERT_TRUE(retry.ok());
    Result<JobStatus> retry_status = service.Wait(*retry);
    ASSERT_TRUE(retry_status.ok());
    EXPECT_EQ(retry_status->state, JobState::kDone);
    EXPECT_EQ(SerializeSubgraphs(retry_status->response),
              reference_serialized);
    EXPECT_EQ(service.health(), HealthState::kHealthy);
  }

  // Settle the delayed write-backs; nothing failed, so Flush reports OK.
  EXPECT_TRUE(store->Flush().ok());
  EXPECT_TRUE(store->last_write_error().ok());
  FaultInjection::Global().Reset();
  store.reset();
  Result<ArtifactFsckReport> fsck = ArtifactStore::Fsck(path);
  ASSERT_TRUE(fsck.ok()) << fsck.status().ToString();
  EXPECT_TRUE(fsck->superblock_ok);
  EXPECT_EQ(fsck->corrupt_pages, 0u);
  EXPECT_GE(fsck->valid_records, 1u);  // the graphs and/or the pipeline
  std::filesystem::remove(path);
}

// The multi-tenant scheduler storm: four tenants over distinct snapshots
// share two executors, a shared worker pool and a failing artifact store
// while store faults, sporadic pool-dispatch throws, hopeless deadlines and
// racing cancellations all land at once. The scheduler contract under
// chaos: every job of every tenant reaches a terminal state, and every
// kDone job is bit-identical to a fault-free single-tenant reference — the
// storm may starve or kill jobs, but never corrupt a neighbors' answers.
TEST_F(ChaosTest, MultiTenantSchedulerStormStaysTerminalAndIsolated) {
  constexpr size_t kTenants = 4;
  constexpr size_t kJobsPerTenant = 12;

  std::vector<std::pair<Graph, Graph>> pairs;
  for (size_t t = 0; t < kTenants; ++t) {
    Rng rng(6100 + t);
    Result<Graph> g2 = RandomSignedGraph(/*n=*/90, /*m=*/600,
                                         /*positive_fraction=*/0.7,
                                         /*magnitude_lo=*/0.5,
                                         /*magnitude_hi=*/3.0, &rng);
    ASSERT_TRUE(g2.ok());
    pairs.emplace_back(MakeGraph(90, {}), std::move(*g2));
  }

  // Per-tenant scripts + fault-free single-tenant references.
  std::vector<std::vector<MiningRequest>> scripts(kTenants);
  std::vector<std::vector<bool>> try_cancel(kTenants);
  std::vector<std::vector<std::string>> expected(kTenants);
  for (size_t t = 0; t < kTenants; ++t) {
    Rng rng(7300 + t);
    MinerSession reference = MustCreate(pairs[t].first, pairs[t].second);
    for (size_t i = 0; i < kJobsPerTenant; ++i) {
      MiningRequest request = RandomRequest(&rng);
      request.priority = static_cast<int32_t>(rng.NextBounded(3)) - 1;
      // A slice of every tenant's jobs carries an unmeetable deadline.
      if (i % 6 == 2) request.deadline_seconds = 1e-6;
      scripts[t].push_back(request);
      try_cancel[t].push_back(rng.NextBounded(6) == 0);
      MiningRequest plain = request;
      plain.deadline_seconds = 0.0;
      Result<MiningResponse> mined = reference.Mine(plain);
      ASSERT_TRUE(mined.ok());
      expected[t].push_back(SerializeSubgraphs(*mined));
    }
  }

  const std::string path = ::testing::TempDir() + "chaos_mt_storm.dcs";
  std::filesystem::remove(path);
  std::shared_ptr<ArtifactStore> store = OpenOrDie(path);

  ASSERT_TRUE(FaultInjection::Global()
                  .ArmText("store.append;"
                           "store.flock:every=2;"
                           "store.read:prob=0.5,seed=23;"
                           "cache.build:every=7,times=3;"
                           "pool.dispatch:every=41,times=2")
                  .ok());

  MiningServiceOptions service_options;
  service_options.num_executors = 2;
  service_options.artifact_store = store;
  service_options.shared_cache = std::make_shared<PipelineCache>();
  service_options.worker_pool =
      std::make_shared<ThreadPool>(ThreadPool::DefaultConcurrency() - 1);
  MiningService service(service_options);
  for (auto& [g1, g2] : pairs) {
    SessionOptions session_options;
    session_options.store_failure_threshold = 3;
    Result<TenantId> tenant =
        service.AddTenant(MustCreate(g1, g2, session_options));
    ASSERT_TRUE(tenant.ok());
  }

  // Atomic slots, as in the single-tenant storm: the canceller spin-reads
  // ids the per-tenant submitters are still publishing.
  std::vector<std::vector<std::atomic<JobId>>> ids(kTenants);
  for (auto& row : ids) row = std::vector<std::atomic<JobId>>(kJobsPerTenant);
  {
    // One submitter per tenant plus a canceller racing all four queues.
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kTenants; ++t) {
      threads.emplace_back([&, t] {
        for (size_t i = 0; i < kJobsPerTenant; ++i) {
          Result<JobId> id =
              service.Submit(static_cast<TenantId>(t), scripts[t][i]);
          ASSERT_TRUE(id.ok()) << id.status().ToString();
          ids[t][i].store(*id, std::memory_order_release);
        }
      });
    }
    threads.emplace_back([&] {
      for (size_t i = 0; i < kJobsPerTenant; ++i) {
        for (size_t t = 0; t < kTenants; ++t) {
          if (!try_cancel[t][i]) continue;
          while (ids[t][i].load(std::memory_order_acquire) == 0) {
            std::this_thread::yield();
          }
          (void)service.Cancel(ids[t][i].load(std::memory_order_relaxed));
        }
      }
    });
    for (std::thread& thread : threads) thread.join();
  }

  size_t done = 0, failed = 0, cancelled = 0, deadline_failed = 0;
  for (size_t t = 0; t < kTenants; ++t) {
    for (size_t i = 0; i < kJobsPerTenant; ++i) {
      Result<JobStatus> status = service.Wait(ids[t][i].load());
      ASSERT_TRUE(status.ok()) << status.status().ToString();
      ASSERT_TRUE(status->terminal())
          << "tenant " << t << " job " << i << " not terminal";
      EXPECT_EQ(status->tenant, t);
      switch (status->state) {
        case JobState::kDone:
          ++done;
          EXPECT_EQ(SerializeSubgraphs(status->response), expected[t][i])
              << "tenant " << t << " job " << i
              << " diverged under injected faults";
          break;
        case JobState::kFailed: {
          ++failed;
          const Status& failure = status->failure;
          EXPECT_TRUE(failure.IsDeadlineExceeded() || failure.IsIoError() ||
                      failure.code() == StatusCode::kInternal)
              << "tenant " << t << " job " << i
              << " unexpected failure: " << failure.ToString();
          if (failure.IsDeadlineExceeded()) ++deadline_failed;
          break;
        }
        case JobState::kCancelled:
          ++cancelled;
          break;
        default:
          FAIL() << "tenant " << t << " job " << i << " in non-terminal state";
      }
    }
  }
  EXPECT_EQ(done + failed + cancelled, kTenants * kJobsPerTenant);
  EXPECT_GE(done, kTenants * kJobsPerTenant / 4);
  EXPECT_GE(deadline_failed, 1u);
  // Per-tenant accounting stays exact under the storm.
  uint64_t stats_terminal = 0;
  for (size_t t = 0; t < kTenants; ++t) {
    Result<TenantStats> stats = service.tenant_stats(static_cast<TenantId>(t));
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->submitted, kJobsPerTenant);
    EXPECT_EQ(stats->completed + stats->failed + stats->cancelled,
              kJobsPerTenant);
    stats_terminal += stats->completed + stats->failed + stats->cancelled;
  }
  EXPECT_EQ(stats_terminal, kTenants * kJobsPerTenant);
  // Whether the ladder tripped here is timing-dependent (write-backs are
  // async and the shared cache dedupes builds across tenants) — the
  // single-tenant storm above pins the ladder semantics down. This storm
  // only requires the aggregate to be a valid worst-rung snapshot, which
  // the accounting above plus terminality already witnessed.

  FaultInjection::Global().Reset();
  store.reset();
  Result<ArtifactFsckReport> fsck = ArtifactStore::Fsck(path);
  ASSERT_TRUE(fsck.ok()) << fsck.status().ToString();
  EXPECT_TRUE(fsck->superblock_ok);
  EXPECT_EQ(fsck->corrupt_pages, 0u);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace dcs
