// Long randomized streaming soak: hundreds of mixed update batches (weight
// drift, deletes-to-zero, sign flips, structural churn on both sides)
// through the O(Δ) patch path, each round cross-checked bit-for-bit against
// a from-scratch session — the heavyweight sibling of
// tests/api/streaming_update_test.cc, under the `stress` ctest label.

#include <gtest/gtest.h>

#include <bit>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "api/miner_session.h"
#include "api/mining.h"
#include "graph/graph_builder.h"
#include "test_util.h"
#include "util/rng.h"

namespace dcs {
namespace {

using ::dcs::testing::SerializeSubgraphs;

TEST(StreamingEquivalenceStressTest, LongMixedStreamStaysBitIdentical) {
  Rng rng(424243);
  const VertexId n = 120;
  Result<MinerSession> session = MinerSession::CreateStreaming(n);
  ASSERT_TRUE(session.ok());
  std::map<uint64_t, double> ledger_g1, ledger_g2;

  auto apply = [&](UpdateSide side, VertexId u, VertexId v, double delta) {
    ASSERT_TRUE(session->ApplyUpdate(side, u, v, delta).ok());
    auto& ledger = side == UpdateSide::kG1 ? ledger_g1 : ledger_g2;
    ledger[PackVertexPair(u, v)] += delta;
  };
  auto random_pair = [&](VertexId* u, VertexId* v) {
    *u = static_cast<VertexId>(rng.NextBounded(n));
    *v = static_cast<VertexId>(rng.NextBounded(n - 1));
    if (*v >= *u) ++*v;
  };
  auto build = [&](const std::map<uint64_t, double>& ledger) {
    GraphBuilder builder(n);
    for (const auto& [key, weight] : ledger) {
      builder.AddEdgeUnchecked(static_cast<VertexId>(key >> 32),
                               static_cast<VertexId>(key & 0xFFFFFFFFull),
                               weight);
    }
    Result<Graph> graph = builder.Build();
    DCS_CHECK(graph.ok());
    return std::move(graph).value();
  };

  // Bulk load.
  for (int i = 0; i < 900; ++i) {
    VertexId u, v;
    random_pair(&u, &v);
    apply(rng.Bernoulli(0.5) ? UpdateSide::kG1 : UpdateSide::kG2, u, v,
          rng.Uniform(-2.0, 3.0));
  }

  std::vector<MiningRequest> requests(3);
  requests[0].measure = Measure::kBoth;
  requests[1].measure = Measure::kBoth;
  requests[1].flip = true;
  requests[2].measure = Measure::kBoth;
  requests[2].discretize = DiscretizeSpec{};

  for (int round = 0; round < 60; ++round) {
    const int batch = 1 + static_cast<int>(rng.NextBounded(6));
    for (int i = 0; i < batch; ++i) {
      VertexId u, v;
      random_pair(&u, &v);
      const UpdateSide side =
          rng.Bernoulli(0.4) ? UpdateSide::kG1 : UpdateSide::kG2;
      const auto& ledger =
          side == UpdateSide::kG1 ? ledger_g1 : ledger_g2;
      const auto it = ledger.find(PackVertexPair(u, v));
      double delta;
      const uint64_t kind = rng.NextBounded(4);
      if (kind == 0 && it != ledger.end()) {
        delta = -it->second;  // delete-to-zero
      } else if (kind == 1 && it != ledger.end()) {
        delta = -2.0 * it->second;  // sign flip
      } else {
        delta = rng.Uniform(-2.0, 2.0);
      }
      apply(side, u, v, delta);
    }
    // Cross-check one rotating request per round (all three shapes get
    // exercised many times over the soak).
    const MiningRequest& request = requests[round % requests.size()];
    Result<MiningResponse> streamed = session->Mine(request);
    ASSERT_TRUE(streamed.ok());
    Result<MinerSession> control =
        MinerSession::Create(build(ledger_g1), build(ledger_g2));
    ASSERT_TRUE(control.ok());
    Result<MiningResponse> expected = control->Mine(request);
    ASSERT_TRUE(expected.ok());
    ASSERT_EQ(SerializeSubgraphs(*streamed), SerializeSubgraphs(*expected))
        << "round " << round;
  }
  // The soak must have exercised the patch path heavily.
  EXPECT_GT(session->num_update_patches(), 30u);
  EXPECT_GT(session->num_republished_entries(), 0u);
}

}  // namespace
}  // namespace dcs
