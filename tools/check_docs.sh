#!/usr/bin/env bash
# Documentation guard (tier-1, wired into ctest as `check_docs`).
#
# Keeps the documentation layer honest, three ways:
#   1. every public api/ header opens with a file-level doc comment (the
#      headers are the API reference — see ARCHITECTURE.md);
#   2. every file path referenced by README.md / ARCHITECTURE.md exists
#      (src|tools|bench|examples|tests/... tokens, api/... header tokens,
#      root-level *.md and committed BENCH_*.json);
#   3. every ctest label (`-L <label>`) and every dcs_mine `--flag` the docs
#      mention actually exists — labels against the LABELS declarations in
#      the CMakeLists, flags against the single flag table in
#      tools/dcs_mine.cc.
#
# Usage: check_docs.sh [repo-root]

set -u

root="${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}"
docs=("$root/README.md" "$root/ARCHITECTURE.md")
status=0

fail() {
  echo "check_docs: $*" >&2
  status=1
}

# --- 1. api/ headers carry a file-level doc comment -------------------------
for header in "$root"/src/api/*.h; do
  if ! head -n 1 "$header" | grep -q '^//'; then
    fail "${header#"$root"/} lacks a file-level doc comment (must start with //)"
  fi
done

# --- 2. path references in the docs resolve ---------------------------------
for doc in "${docs[@]}"; do
  if [ ! -s "$doc" ]; then
    fail "missing doc file: ${doc#"$root"/}"
    continue
  fi
  rel="${doc#"$root"/}"

  # Repo-relative paths with an explicit top-level directory.
  while IFS= read -r path; do
    [ -e "$root/$path" ] || fail "$rel references missing file $path"
  done < <(grep -ohE '\b(src|tools|bench|examples|tests)/[A-Za-z0-9_./-]+\.(h|cc|cpp|sh|md|json|el)\b' "$doc" | sort -u)

  # Facade-style header tokens (api/mining.h, graph/io.h, ...) live in src/.
  # The lookbehind keeps tails of explicit paths (tests/core/foo_test.cc)
  # from matching; skipped gracefully where grep lacks PCRE.
  if echo | grep -qP '' 2> /dev/null; then
    while IFS= read -r path; do
      [ -e "$root/src/$path" ] || fail "$rel references missing header src/$path"
    done < <(grep -ohP '(?<![/A-Za-z0-9_.-])(api|core|graph|util|gen|densest|baseline)/[A-Za-z0-9_.-]+\.(h|cc)\b' "$doc" | sort -u)
  fi

  # Root-level markdown and committed bench trajectory files.
  while IFS= read -r path; do
    [ -e "$root/$path" ] || fail "$rel references missing root file $path"
  done < <(grep -ohE '\b([A-Z][A-Z_]+\.md|BENCH_[A-Za-z0-9_]+\.json)\b' "$doc" | sort -u)
done

# --- 3a. ctest labels the docs name are declared ----------------------------
declared_labels=$(grep -rhoE 'LABELS [a-z_ ]+' \
    "$root/CMakeLists.txt" "$root"/*/CMakeLists.txt 2> /dev/null \
    | sed 's/^LABELS //' | tr ' ' '\n' | sort -u)
for doc in "${docs[@]}"; do
  [ -s "$doc" ] || continue
  rel="${doc#"$root"/}"
  while IFS= read -r label; do
    [ -z "$label" ] && continue
    if ! printf '%s\n' "$declared_labels" | grep -qx "$label"; then
      fail "$rel references undeclared ctest label '$label'"
    fi
  done < <(grep -ohE '\-L [a-z_]+' "$doc" | sed 's/^-L //' | sort -u)
done

# --- 3b. dcs_mine flags the docs show exist in the flag table ---------------
flag_table="$root/tools/dcs_mine.cc"
for doc in "${docs[@]}"; do
  [ -s "$doc" ] || continue
  rel="${doc#"$root"/}"
  while IFS= read -r flag; do
    [ -z "$flag" ] && continue
    if ! grep -qE "^\s*\{\"$flag\"" "$flag_table"; then
      fail "$rel shows dcs_mine flag '$flag' absent from the kFlagTable in tools/dcs_mine.cc"
    fi
  done < <(grep -h 'dcs_mine' "${docs[@]}" | grep -ohE '\-\-[a-z][a-z0-9-]*' | sort -u)
done

if [ "$status" -eq 0 ]; then
  echo "docs OK: api/ headers documented; README/ARCHITECTURE references resolve"
fi
exit "$status"
