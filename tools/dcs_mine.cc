// dcs_mine — command-line Density Contrast Subgraph miner.
//
// Usage:
//   dcs_mine --g1 <edge-list> --g2 <edge-list> [options]
//
// The full flag reference is generated from kFlagTable below — run
// `dcs_mine --help`. Input files use the dcs edge-list format (see
// src/graph/io.h): a <num_vertices> header line, then "<u> <v> <weight>"
// per edge.
//
// This tool consumes the api/ facade only (see tools/check_layering.sh):
// the whole difference-graph pipeline (build → discretize → clamp →
// GD+/smart-bounds → solve → rank) lives behind MinerSession, the async
// path behind MiningService, and the cross-session path behind a shared
// PipelineCache.

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <condition_variable>
#include <mutex>

#include "api/artifact_store.h"
#include "api/miner_session.h"
#include "api/mining.h"
#include "api/mining_service.h"
#include "api/pipeline_cache.h"
#include "graph/io.h"
#include "util/cancellation.h"
#include "util/fault_injection.h"
#include "util/thread_pool.h"

namespace {

using namespace dcs;

// The single source of truth for the CLI surface: PrintUsage renders it,
// ParseArgs rejects anything not listed here, and tools/check_docs.sh greps
// it so README/ARCHITECTURE.md cannot reference a flag that does not exist.
struct FlagSpec {
  const char* name;
  const char* value;  // "" for boolean flags
  const char* help;
};

constexpr FlagSpec kFlagTable[] = {
    {"--g1", "<edge-list>", "baseline graph G1 (required)"},
    {"--g2", "<edge-list>", "current graph G2 (required)"},
    {"--measure", "ad|ga|both", "density measure(s) to mine (default: both)"},
    {"--alpha", "<a>", "scale G1 by a in the difference (default: 1.0)"},
    {"--discrete", "", "apply the paper's Discrete weight mapping"},
    {"--flip", "", "mine G1 - G2 instead of G2 - G1 (disappearing)"},
    {"--topk", "<k>", "mine up to k (disjoint) subgraphs (default: 1)"},
    {"--async", "",
     "submit through the MiningService job queue and poll the "
     "queued -> running -> done lifecycle"},
    {"--shared-cache", "<n>",
     "mine through n concurrent sessions attached to one shared "
     "PipelineCache; prints per-session and cache telemetry"},
    {"--tenants", "<n>",
     "submit the request to n tenants of one multi-tenant MiningService "
     "(shared executors, worker pool and pipeline cache); asserts all "
     "tenant responses bit-identical and prints per-tenant scheduler "
     "telemetry"},
    {"--store", "<path>",
     "attach a persistent artifact store: warm-boot prepared pipelines "
     "from <path> and write new ones back (created when missing)"},
    {"--deadline", "<seconds>",
     "per-job deadline measured from submission; an expired job fails "
     "with deadline-exceeded (exit code 3) and keeps no partial result"},
    {"--journal", "<path>",
     "attach a crash-consistent job journal: the request runs through a "
     "journaled MiningService (created when missing), jobs left incomplete "
     "by a crashed prior run are recovered first, and a '# journal' "
     "telemetry line is printed"},
    {"--inject", "<spec>",
     "arm deterministic fault injection, e.g. store.append:every=2,times=3 "
     "(site list below; keys: every after times prob seed delay_ms fail "
     "crash; ';' separates specs)"},
    {"--fast-math", "",
     "allow reassociating SIMD reduction kernels (default: bit-exact)"},
    {"--quiet", "", "print only the result lines"},
    {"--help", "", "print this flag reference and exit"},
};

struct Args {
  std::string g1_path;
  std::string g2_path;
  Measure measure = Measure::kBoth;
  double alpha = 1.0;
  bool discrete = false;
  bool flip = false;
  uint32_t topk = 1;
  bool async = false;
  uint32_t shared_cache_sessions = 0;  // 0 = single-session mode
  uint32_t tenants = 0;                // 0 = single-tenant modes
  std::string store_path;              // empty = memory-only
  std::string journal_path;            // empty = no job journal
  double deadline_seconds = 0.0;       // 0 = no deadline
  std::string inject_spec;             // empty = fault injection disarmed
  bool fast_math = false;
  bool quiet = false;
  bool help = false;
};

void PrintUsage(const char* prog, std::FILE* out) {
  std::fprintf(out, "usage: %s --g1 <edge-list> --g2 <edge-list> [options]\n\n",
               prog);
  for (const FlagSpec& flag : kFlagTable) {
    char left[40];
    std::snprintf(left, sizeof(left), "%s %s", flag.name, flag.value);
    std::fprintf(out, "  %-26s %s\n", left, flag.help);
  }
  // The site list is generated from the registry, so --help can never
  // advertise a site FaultSpec::Parse would reject (or miss a new one).
  std::fprintf(out, "\nfault sites for --inject:");
  for (const char* site : fault_sites::kKnownSites) {
    std::fprintf(out, " %s", site);
  }
  std::fprintf(out,
               "\n\ninput files use the dcs edge-list format (src/graph/io.h):"
               "\n  <num_vertices> header line, then \"<u> <v> <weight>\" per "
               "edge\n");
}

bool IsKnownFlag(const std::string& flag) {
  for (const FlagSpec& spec : kFlagTable) {
    if (flag == spec.name) return true;
  }
  return false;
}

// Strict numeric parsing: the whole token must be consumed, the value must
// be finite and in range. strtod/strtoul alone accept garbage like "4x"
// (yielding 4) or "foo" (yielding 0) without complaint.
bool ParseDoubleStrict(const char* text, double* out) {
  if (text == nullptr || *text == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0' || errno == ERANGE ||
      !std::isfinite(value)) {
    return false;
  }
  *out = value;
  return true;
}

bool ParseUint32Strict(const char* text, uint32_t* out) {
  if (text == nullptr || *text == '\0' || *text == '-' || *text == '+') {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long value = std::strtoul(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE ||
      value > 0xFFFFFFFFul) {
    return false;
  }
  *out = static_cast<uint32_t>(value);
  return true;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (!IsKnownFlag(flag)) {
      std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
      return false;
    }
    auto next_value = [&](const char** out) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    const char* value = nullptr;
    if (flag == "--g1" && next_value(&value)) {
      args->g1_path = value;
    } else if (flag == "--g2" && next_value(&value)) {
      args->g2_path = value;
    } else if (flag == "--measure" && next_value(&value)) {
      Result<Measure> measure = ParseMeasure(value);
      if (!measure.ok()) {
        std::fprintf(stderr, "invalid --measure '%s'\n", value);
        return false;
      }
      args->measure = *measure;
    } else if (flag == "--alpha" && next_value(&value)) {
      if (!ParseDoubleStrict(value, &args->alpha)) {
        std::fprintf(stderr, "invalid numeric value for --alpha: '%s'\n",
                     value);
        return false;
      }
    } else if (flag == "--topk" && next_value(&value)) {
      if (!ParseUint32Strict(value, &args->topk)) {
        std::fprintf(stderr, "invalid numeric value for --topk: '%s'\n",
                     value);
        return false;
      }
    } else if (flag == "--shared-cache" && next_value(&value)) {
      if (!ParseUint32Strict(value, &args->shared_cache_sessions) ||
          args->shared_cache_sessions == 0) {
        std::fprintf(stderr,
                     "invalid session count for --shared-cache: '%s'\n",
                     value);
        return false;
      }
    } else if (flag == "--tenants" && next_value(&value)) {
      if (!ParseUint32Strict(value, &args->tenants) || args->tenants == 0) {
        std::fprintf(stderr, "invalid tenant count for --tenants: '%s'\n",
                     value);
        return false;
      }
    } else if (flag == "--store" && next_value(&value)) {
      args->store_path = value;
    } else if (flag == "--journal" && next_value(&value)) {
      args->journal_path = value;
    } else if (flag == "--deadline" && next_value(&value)) {
      if (!ParseDoubleStrict(value, &args->deadline_seconds) ||
          args->deadline_seconds <= 0.0) {
        std::fprintf(stderr, "invalid value for --deadline: '%s'\n", value);
        return false;
      }
    } else if (flag == "--inject" && next_value(&value)) {
      args->inject_spec = value;
    } else if (flag == "--async") {
      args->async = true;
    } else if (flag == "--discrete") {
      args->discrete = true;
    } else if (flag == "--flip") {
      args->flip = true;
    } else if (flag == "--fast-math") {
      args->fast_math = true;
    } else if (flag == "--quiet") {
      args->quiet = true;
    } else if (flag == "--help") {
      args->help = true;
      return true;
    } else {
      std::fprintf(stderr, "flag '%s' is missing its %s value\n",
                   flag.c_str(), flag.c_str());
      return false;
    }
  }
  if (args->g1_path.empty() || args->g2_path.empty()) {
    std::fprintf(stderr, "--g1 and --g2 are required\n");
    return false;
  }
  if (args->topk == 0) {
    std::fprintf(stderr, "--topk must be >= 1\n");
    return false;
  }
  if (!(args->alpha > 0.0)) {
    std::fprintf(stderr, "--alpha must be positive\n");
    return false;
  }
  if (args->async && args->shared_cache_sessions > 0) {
    std::fprintf(stderr, "--async and --shared-cache are exclusive\n");
    return false;
  }
  if (args->deadline_seconds > 0.0 && args->shared_cache_sessions > 0) {
    std::fprintf(stderr, "--deadline and --shared-cache are exclusive\n");
    return false;
  }
  if (args->tenants > 0 &&
      (args->async || args->shared_cache_sessions > 0)) {
    std::fprintf(stderr,
                 "--tenants subsumes --async and excludes --shared-cache\n");
    return false;
  }
  if (!args->journal_path.empty() && args->shared_cache_sessions > 0) {
    // The journal is a MiningService feature; the shared-cache mode mines
    // through bare sessions with no admission to journal.
    std::fprintf(stderr, "--journal and --shared-cache are exclusive\n");
    return false;
  }
  return true;
}

void PrintSubsets(const char* tag, const char* value_name,
                  const std::vector<RankedSubgraph>& results) {
  for (size_t i = 0; i < results.size(); ++i) {
    const RankedSubgraph& subgraph = results[i];
    std::printf("%s #%zu: %s=%.6f size=%zu vertices={", tag, i + 1,
                value_name, subgraph.value, subgraph.vertices.size());
    for (size_t j = 0; j < subgraph.vertices.size(); ++j) {
      std::printf("%s%u", j ? "," : "", subgraph.vertices[j]);
    }
    std::printf("}\n");
  }
}

bool SameRanking(const std::vector<RankedSubgraph>& a,
                 const std::vector<RankedSubgraph>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].vertices != b[i].vertices || a[i].value != b[i].value ||
        a[i].weights != b[i].weights) {
      return false;
    }
  }
  return true;
}

// The --shared-cache path: n sessions over copies of the same graphs, all
// attached to one PipelineCache, mining `request` concurrently. Exactly one
// session pays the pipeline preparation; every response must be
// bit-identical (the cross-session determinism guarantee). Returns the
// response of session 0, or an error status.
Result<MiningResponse> MineSharedCache(
    const Args& args, const Graph& g1, const Graph& g2,
    const MiningRequest& request,
    const std::shared_ptr<ArtifactStore>& store) {
  const uint32_t n = args.shared_cache_sessions;
  auto cache = std::make_shared<PipelineCache>();
  std::vector<Result<MiningResponse>> responses(
      n, Result<MiningResponse>(Status::Internal("not mined")));
  std::vector<uint64_t> rebuilds(n, 0);
  {
    std::vector<std::thread> threads;
    threads.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      threads.emplace_back([&, i] {
        SessionOptions options;
        options.pipeline_cache = cache;
        options.artifact_store = store;
        Result<MinerSession> session = MinerSession::Create(g1, g2, options);
        if (!session.ok()) {
          responses[i] = session.status();
          return;
        }
        responses[i] = session->Mine(request);
        rebuilds[i] = session->num_rebuilds();
      });
    }
    for (std::thread& t : threads) t.join();
  }
  for (uint32_t i = 0; i < n; ++i) {
    if (!responses[i].ok()) return responses[i].status();
  }
  for (uint32_t i = 1; i < n; ++i) {
    if (!SameRanking(responses[0]->average_degree,
                     responses[i]->average_degree) ||
        !SameRanking(responses[0]->graph_affinity,
                     responses[i]->graph_affinity)) {
      return Status::Internal("session " + std::to_string(i) +
                              " diverged from session 0 — cross-session "
                              "determinism violated");
    }
  }
  if (!args.quiet) {
    uint64_t prepared = 0;
    for (uint32_t i = 0; i < n; ++i) prepared += rebuilds[i];
    const PipelineCacheStats stats = cache->stats();
    std::printf(
        "# shared cache: %u sessions, %llu prepared the pipeline, "
        "%llu hits / %llu misses, %zu bytes resident\n",
        n, static_cast<unsigned long long>(prepared),
        static_cast<unsigned long long>(stats.hits),
        static_cast<unsigned long long>(stats.misses), stats.bytes);
    std::printf("# all %u responses bit-identical\n", n);
  }
  return std::move(responses[0]);
}

// The --tenants path: n tenants over copies of the same graphs, scheduled
// by one multi-tenant MiningService sharing two executors, a worker pool
// and a pipeline cache. The request is submitted to every tenant at
// staggered priorities; every response must be bit-identical (priority
// reorders dispatch between tenants, never results). Returns tenant 0's
// response, or an error status. Health telemetry is reported through the
// out-params, mirroring the --async path.
Result<MiningResponse> MineMultiTenant(
    const Args& args, const Graph& g1, const Graph& g2,
    const MiningRequest& request, const std::shared_ptr<ArtifactStore>& store,
    HealthState* health, uint64_t* health_transitions,
    uint64_t* store_write_errors, uint64_t* store_retries) {
  const uint32_t n = args.tenants;
  MiningServiceOptions options;
  options.num_executors = 2;
  options.journal_path = args.journal_path;
  options.shared_cache = std::make_shared<PipelineCache>();
  options.worker_pool =
      std::make_shared<ThreadPool>(ThreadPool::DefaultConcurrency() - 1);
  options.artifact_store = store;
  MiningService service(options);
  for (uint32_t i = 0; i < n; ++i) {
    Result<MinerSession> session = MinerSession::Create(g1, g2);
    if (!session.ok()) return session.status();
    // Tenant 0 gets a double weight so the telemetry below shows the
    // fair-share clocks diverging by design, not by accident.
    Result<TenantId> tenant = service.AddTenant(
        std::move(*session), TenantOptions{.weight = i == 0 ? 2u : 1u});
    if (!tenant.ok()) return tenant.status();
  }

  std::vector<JobId> jobs(n, 0);
  for (uint32_t i = 0; i < n; ++i) {
    MiningRequest per_tenant = request;
    per_tenant.priority = static_cast<int32_t>(i % 3) - 1;
    Result<JobId> job = service.Submit(static_cast<TenantId>(i), per_tenant);
    if (!job.ok()) return job.status();
    jobs[i] = *job;
  }

  std::vector<MiningResponse> responses(n);
  for (uint32_t i = 0; i < n; ++i) {
    Result<JobStatus> status = service.Wait(jobs[i]);
    if (!status.ok()) return status.status();
    if (status->state != JobState::kDone) {
      if (status->failure.IsDeadlineExceeded()) return status->failure;
      return Status::Internal("tenant " + std::to_string(i) + " job ended " +
                              JobStateToString(status->state) + ": " +
                              status->failure.ToString());
    }
    responses[i] = std::move(status->response);
  }
  for (uint32_t i = 1; i < n; ++i) {
    if (!SameRanking(responses[0].average_degree,
                     responses[i].average_degree) ||
        !SameRanking(responses[0].graph_affinity,
                     responses[i].graph_affinity)) {
      return Status::Internal("tenant " + std::to_string(i) +
                              " diverged from tenant 0 — multi-tenant "
                              "determinism violated");
    }
  }

  if (!args.quiet) {
    std::printf("# multi-tenant: %u tenants, 2 executors, shared pool + "
                "cache; all responses bit-identical\n", n);
    for (uint32_t i = 0; i < n; ++i) {
      Result<TenantStats> stats = service.tenant_stats(i);
      if (!stats.ok()) continue;
      std::printf(
          "#   tenant %u: weight %u, %llu dispatched, vclock %.3f, "
          "queued %.1f ms max\n",
          i, i == 0 ? 2u : 1u,
          static_cast<unsigned long long>(stats->dispatched),
          stats->virtual_time, stats->max_queue_seconds * 1e3);
    }
  }
  *health = service.health();
  *health_transitions = service.num_health_transitions();
  *store_write_errors = service.num_store_write_errors();
  *store_retries = service.num_store_retries();
  return std::move(responses[0]);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    PrintUsage(argv[0], stderr);
    return 2;
  }
  if (args.help) {
    PrintUsage(argv[0], stdout);
    return 0;
  }
  if (!args.inject_spec.empty()) {
    const Status armed = FaultInjection::Global().ArmText(args.inject_spec);
    if (!armed.ok()) {
      std::fprintf(stderr, "invalid --inject spec: %s\n",
                   armed.ToString().c_str());
      return 2;
    }
  }

  Result<Graph> g1 = ReadEdgeListFile(args.g1_path);
  if (!g1.ok()) {
    std::fprintf(stderr, "failed to read %s: %s\n", args.g1_path.c_str(),
                 g1.status().ToString().c_str());
    return 1;
  }
  Result<Graph> g2 = ReadEdgeListFile(args.g2_path);
  if (!g2.ok()) {
    std::fprintf(stderr, "failed to read %s: %s\n", args.g2_path.c_str(),
                 g2.status().ToString().c_str());
    return 1;
  }

  MiningRequest request;
  request.measure = args.measure;
  request.alpha = args.alpha;
  request.flip = args.flip;
  request.top_k = args.topk;
  // Enforced by the MiningService watchdog in --async mode; the synchronous
  // path wraps its own CancelToken below (Mine ignores the field).
  request.deadline_seconds = args.deadline_seconds;
  if (args.discrete) request.discretize = DiscretizeSpec{};
  // Per-request opt-in reaches every mode (single, --async, --shared-cache)
  // through the one MiningRequest they all share.
  request.ga_solver.fast_math = args.fast_math;

  // Open (or create) the persistent store before any session exists, so
  // every mode warm-boots from it and writes built pipelines back.
  std::shared_ptr<ArtifactStore> store;
  if (!args.store_path.empty()) {
    Result<std::shared_ptr<ArtifactStore>> opened =
        ArtifactStore::Open(args.store_path);
    if (!opened.ok()) {
      std::fprintf(stderr, "failed to open store %s: %s\n",
                   args.store_path.c_str(),
                   opened.status().ToString().c_str());
      return 1;
    }
    store = std::move(*opened);
  }

  // Failure-domain telemetry gathered by whichever mode ran, printed with
  // the other `#` lines below (the sources — session or service — go out of
  // scope before then).
  HealthState health = HealthState::kHealthy;
  uint64_t health_transitions = 0;
  uint64_t store_write_errors = 0;
  uint64_t store_retries = 0;
  bool have_health = false;
  int exit_code = 0;

  Result<MiningResponse> response = Status::Internal("not mined");
  if (args.tenants > 0) {
    response = MineMultiTenant(args, *g1, *g2, request, store, &health,
                               &health_transitions, &store_write_errors,
                               &store_retries);
    if (!response.ok()) {
      if (response.status().IsDeadlineExceeded()) {
        std::fprintf(stderr, "mining failed: %s\n",
                     response.status().ToString().c_str());
        return 3;
      }
      std::fprintf(stderr, "multi-tenant mining failed: %s\n",
                   response.status().ToString().c_str());
      return 1;
    }
    have_health = true;
  } else if (args.shared_cache_sessions > 0) {
    response = MineSharedCache(args, *g1, *g2, request, store);
    if (!response.ok()) {
      std::fprintf(stderr, "shared-cache mining failed: %s\n",
                   response.status().ToString().c_str());
      return 1;
    }
  } else {
    SessionOptions session_options;
    session_options.artifact_store = store;
    Result<MinerSession> session = MinerSession::Create(
        std::move(*g1), std::move(*g2), session_options);
    if (!session.ok()) {
      std::fprintf(stderr, "session setup failed: %s\n",
                   session.status().ToString().c_str());
      return 1;
    }

    if (!args.quiet) {
      // The snapshot of the exact pipeline being mined (incl. --discrete).
      Result<Graph> gd = session->DifferenceSnapshot(request);
      if (gd.ok()) {
        std::printf("# difference graph: %s\n", gd->DebugString().c_str());
      }
    }

    if (args.async || !args.journal_path.empty()) {
      // The async path: the same request goes through the MiningService job
      // queue — submit, poll the lifecycle, wait for the terminal snapshot.
      // --journal routes the otherwise-synchronous mine through the same
      // service so admission is journaled and a crashed prior run's
      // incomplete jobs are recovered (and re-mined) before this one.
      MiningServiceOptions service_options;
      service_options.journal_path = args.journal_path;
      MiningService service(std::move(*session), service_options);
      if (!args.quiet && service.num_recovered_jobs() > 0) {
        std::printf("# journal recovered %llu jobs from %s\n",
                    static_cast<unsigned long long>(
                        service.num_recovered_jobs()),
                    args.journal_path.c_str());
      }
      Result<JobId> job = service.Submit(request);
      if (!job.ok()) {
        std::fprintf(stderr, "submit failed: %s\n",
                     job.status().ToString().c_str());
        return 1;
      }
      if (args.async && !args.quiet) {
        std::printf("# submitted job %llu\n",
                    static_cast<unsigned long long>(*job));
        JobState last = JobState::kQueued;
        std::printf("# job state: %s\n", JobStateToString(last));
        while (true) {
          Result<JobStatus> polled = service.Poll(*job);
          if (!polled.ok() || polled->terminal()) break;
          if (polled->state != last) {
            last = polled->state;
            std::printf("# job state: %s\n", JobStateToString(last));
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
      Result<JobStatus> final_status = service.Wait(*job);
      if (!final_status.ok()) {
        std::fprintf(stderr, "wait failed: %s\n",
                     final_status.status().ToString().c_str());
        return 1;
      }
      if (args.async && !args.quiet) {
        std::printf("# job state: %s (queued %.1f ms, ran %.1f ms)\n",
                    JobStateToString(final_status->state),
                    final_status->queue_seconds * 1e3,
                    final_status->run_seconds * 1e3);
      }
      if (final_status->state != JobState::kDone) {
        std::fprintf(stderr, "job %s: %s\n",
                     JobStateToString(final_status->state),
                     final_status->failure.ToString().c_str());
        // Exit 3 distinguishes a deadline expiry from other failures (1),
        // so timeout-retry wrappers can tell them apart.
        return final_status->failure.IsDeadlineExceeded() ? 3 : 1;
      }
      health = service.health();
      health_transitions = service.num_health_transitions();
      store_write_errors = service.num_store_write_errors();
      store_retries = service.num_store_retries();
      have_health = true;
      response = std::move(final_status->response);
    } else if (args.deadline_seconds > 0.0) {
      // Synchronous deadline: Mine ignores request.deadline_seconds (no
      // service watchdog exists), so wrap the solve in a local one firing a
      // CancelToken — the same mechanism the service uses.
      CancelToken cancel;
      std::mutex m;
      std::condition_variable cv;
      bool finished = false;
      bool deadline_fired = false;
      std::thread watchdog([&] {
        std::unique_lock<std::mutex> lk(m);
        if (!cv.wait_for(lk,
                         std::chrono::duration<double>(args.deadline_seconds),
                         [&] { return finished; })) {
          deadline_fired = true;
          cancel.Cancel();
        }
      });
      response = session->Mine(request, &cancel);
      {
        std::lock_guard<std::mutex> lk(m);
        finished = true;
      }
      cv.notify_one();
      watchdog.join();
      if (!response.ok() && response.status().IsCancelled() &&
          deadline_fired) {
        std::fprintf(stderr, "mining failed: deadline of %gs exceeded\n",
                     args.deadline_seconds);
        return 3;
      }
    } else {
      response = session->Mine(request);
    }
    if (!response.ok()) {
      std::fprintf(stderr, "mining failed: %s\n",
                   response.status().ToString().c_str());
      return 1;
    }
    if (!args.async) {
      // Settle async write-backs *before* sampling the ladder, so injected
      // or real store failures from this very mine are already visible.
      if (store != nullptr) {
        const Status settled = store->Flush();
        if (!settled.ok()) {
          std::fprintf(stderr, "store write-back failed: %s\n",
                       settled.ToString().c_str());
          exit_code = 1;  // persistence was requested and not delivered
        }
        session->RefreshHealth();
      }
      health = session->health();
      health_transitions = session->num_health_transitions();
      store_write_errors = session->num_store_write_errors();
      store_retries = session->num_store_retries();
      have_health = true;
    }
  }

  if (!args.quiet) {
    // Streaming update-path counters (api/mining.h MiningTelemetry): zero in
    // this one-shot CLI unless the session streamed updates, but printed so
    // service logs piping through the same formatter surface the patched vs
    // rebuilt split.
    const MiningTelemetry& telemetry = response->telemetry;
    std::printf("# update path: %llu patched flushes, %llu full rebuilds, "
                "%llu pipeline entries republished\n",
                static_cast<unsigned long long>(telemetry.update_patches),
                static_cast<unsigned long long>(telemetry.update_rebuilds),
                static_cast<unsigned long long>(
                    telemetry.patched_entries_republished));
    if (store != nullptr) {
      // Settle async write-backs so the stats are final; a failed write-back
      // surfaces here (and in the health line) instead of vanishing.
      const Status settled = store->Flush();
      const ArtifactStoreStats stats = store->stats();
      std::printf(
          "# store: %llu hits / %llu misses, %llu corrupt pages, "
          "%llu graph + %llu pipeline records, %llu bytes (%s)\n",
          static_cast<unsigned long long>(telemetry.store_hits),
          static_cast<unsigned long long>(telemetry.store_misses),
          static_cast<unsigned long long>(telemetry.store_corrupt_pages),
          static_cast<unsigned long long>(stats.graph_records),
          static_cast<unsigned long long>(stats.pipeline_records),
          static_cast<unsigned long long>(stats.file_bytes),
          args.store_path.c_str());
      if (!settled.ok()) {
        std::printf("# store write-back error: %s\n",
                    settled.ToString().c_str());
      }
    }
    if (!args.journal_path.empty()) {
      // Journal counters travel in MiningTelemetry (stamped by the service
      // when the job finished), so this line needs no live service handle.
      std::printf(
          "# journal: %llu appends, %llu recovered jobs, %llu truncations "
          "(%s)\n",
          static_cast<unsigned long long>(telemetry.journal_appends),
          static_cast<unsigned long long>(telemetry.journal_recovered_jobs),
          static_cast<unsigned long long>(telemetry.journal_truncations),
          args.journal_path.c_str());
    }
    if (have_health) {
      std::printf(
          "# health: %s (%llu transitions, %llu store write errors, "
          "%llu io retries)\n",
          HealthStateToString(health),
          static_cast<unsigned long long>(health_transitions),
          static_cast<unsigned long long>(store_write_errors),
          static_cast<unsigned long long>(store_retries));
    }
    if (!args.inject_spec.empty()) {
      std::printf("# inject: %llu faults fired\n",
                  static_cast<unsigned long long>(
                      FaultInjection::Global().total_fires()));
    }
  }
  if (args.measure != Measure::kGraphAffinity) {
    PrintSubsets("DCSAD", "density_diff", response->average_degree);
    if (response->average_degree.empty() && !args.quiet) {
      std::printf("# DCSAD: no subgraph with positive density difference\n");
    }
  }
  if (args.measure != Measure::kAverageDegree) {
    PrintSubsets("DCSGA", "affinity_diff", response->graph_affinity);
    if (response->graph_affinity.empty() && !args.quiet) {
      std::printf("# DCSGA: no subgraph with positive affinity difference\n");
    }
  }
  return exit_code;
}
