// dcs_mine — command-line Density Contrast Subgraph miner.
//
// Usage:
//   dcs_mine --g1 <edge-list> --g2 <edge-list> [options]
//
// Options:
//   --measure ad|ga|both   density measure(s) to mine (default: both)
//   --alpha <a>            scale G1 by a in the difference (default: 1.0)
//   --discrete             apply the paper's Discrete weight mapping
//   --flip                 mine G1 − G2 instead of G2 − G1 (disappearing)
//   --topk <k>             mine up to k (disjoint) subgraphs (default: 1)
//   --async                submit through the MiningService job queue and
//                          poll the queued → running → done lifecycle
//   --quiet                print only the result lines
//
// Input files use the dcs edge-list format (see src/graph/io.h):
//   <num_vertices> header line, then "<u> <v> <weight>" per edge.
//
// This tool consumes the api/ facade only (see tools/check_layering.sh):
// the whole BuildDifferenceGraph → Discretize → PositivePart → solve → rank
// pipeline lives behind MinerSession.

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>

#include "api/miner_session.h"
#include "api/mining.h"
#include "api/mining_service.h"
#include "graph/io.h"

namespace {

using namespace dcs;

struct Args {
  std::string g1_path;
  std::string g2_path;
  Measure measure = Measure::kBoth;
  double alpha = 1.0;
  bool discrete = false;
  bool flip = false;
  uint32_t topk = 1;
  bool async = false;
  bool quiet = false;
};

void PrintUsage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s --g1 <edge-list> --g2 <edge-list>\n"
      "          [--measure ad|ga|both] [--alpha <a>] [--discrete]\n"
      "          [--flip] [--topk <k>] [--async] [--quiet]\n",
      prog);
}

// Strict numeric parsing: the whole token must be consumed, the value must
// be finite and in range. strtod/strtoul alone accept garbage like "4x"
// (yielding 4) or "foo" (yielding 0) without complaint.
bool ParseDoubleStrict(const char* text, double* out) {
  if (text == nullptr || *text == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0' || errno == ERANGE ||
      !std::isfinite(value)) {
    return false;
  }
  *out = value;
  return true;
}

bool ParseUint32Strict(const char* text, uint32_t* out) {
  if (text == nullptr || *text == '\0' || *text == '-' || *text == '+') {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long value = std::strtoul(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE ||
      value > 0xFFFFFFFFul) {
    return false;
  }
  *out = static_cast<uint32_t>(value);
  return true;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next_value = [&](const char** out) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    const char* value = nullptr;
    if (flag == "--g1" && next_value(&value)) {
      args->g1_path = value;
    } else if (flag == "--g2" && next_value(&value)) {
      args->g2_path = value;
    } else if (flag == "--measure" && next_value(&value)) {
      Result<Measure> measure = ParseMeasure(value);
      if (!measure.ok()) {
        std::fprintf(stderr, "invalid --measure '%s'\n", value);
        return false;
      }
      args->measure = *measure;
    } else if (flag == "--alpha" && next_value(&value)) {
      if (!ParseDoubleStrict(value, &args->alpha)) {
        std::fprintf(stderr, "invalid numeric value for --alpha: '%s'\n",
                     value);
        return false;
      }
    } else if (flag == "--topk" && next_value(&value)) {
      if (!ParseUint32Strict(value, &args->topk)) {
        std::fprintf(stderr, "invalid numeric value for --topk: '%s'\n",
                     value);
        return false;
      }
    } else if (flag == "--async") {
      args->async = true;
    } else if (flag == "--discrete") {
      args->discrete = true;
    } else if (flag == "--flip") {
      args->flip = true;
    } else if (flag == "--quiet") {
      args->quiet = true;
    } else {
      std::fprintf(stderr, "unknown or incomplete flag '%s'\n", flag.c_str());
      return false;
    }
  }
  if (args->g1_path.empty() || args->g2_path.empty()) {
    std::fprintf(stderr, "--g1 and --g2 are required\n");
    return false;
  }
  if (args->topk == 0) {
    std::fprintf(stderr, "--topk must be >= 1\n");
    return false;
  }
  if (!(args->alpha > 0.0)) {
    std::fprintf(stderr, "--alpha must be positive\n");
    return false;
  }
  return true;
}

void PrintSubsets(const char* tag, const char* value_name,
                  const std::vector<RankedSubgraph>& results) {
  for (size_t i = 0; i < results.size(); ++i) {
    const RankedSubgraph& subgraph = results[i];
    std::printf("%s #%zu: %s=%.6f size=%zu vertices={", tag, i + 1,
                value_name, subgraph.value, subgraph.vertices.size());
    for (size_t j = 0; j < subgraph.vertices.size(); ++j) {
      std::printf("%s%u", j ? "," : "", subgraph.vertices[j]);
    }
    std::printf("}\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    PrintUsage(argv[0]);
    return 2;
  }

  Result<Graph> g1 = ReadEdgeListFile(args.g1_path);
  if (!g1.ok()) {
    std::fprintf(stderr, "failed to read %s: %s\n", args.g1_path.c_str(),
                 g1.status().ToString().c_str());
    return 1;
  }
  Result<Graph> g2 = ReadEdgeListFile(args.g2_path);
  if (!g2.ok()) {
    std::fprintf(stderr, "failed to read %s: %s\n", args.g2_path.c_str(),
                 g2.status().ToString().c_str());
    return 1;
  }

  Result<MinerSession> session =
      MinerSession::Create(std::move(*g1), std::move(*g2));
  if (!session.ok()) {
    std::fprintf(stderr, "session setup failed: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }

  MiningRequest request;
  request.measure = args.measure;
  request.alpha = args.alpha;
  request.flip = args.flip;
  request.top_k = args.topk;
  if (args.discrete) request.discretize = DiscretizeSpec{};

  if (!args.quiet) {
    // The snapshot of the exact pipeline being mined (incl. --discrete).
    Result<Graph> gd = session->DifferenceSnapshot(request);
    if (gd.ok()) {
      std::printf("# difference graph: %s\n", gd->DebugString().c_str());
    }
  }

  Result<MiningResponse> response = Status::Internal("not mined");
  if (args.async) {
    // The async path: the same request goes through the MiningService job
    // queue — submit, poll the lifecycle, wait for the terminal snapshot.
    MiningService service(std::move(*session));
    Result<JobId> job = service.Submit(request);
    if (!job.ok()) {
      std::fprintf(stderr, "submit failed: %s\n",
                   job.status().ToString().c_str());
      return 1;
    }
    if (!args.quiet) {
      std::printf("# submitted job %llu\n",
                  static_cast<unsigned long long>(*job));
      JobState last = JobState::kQueued;
      std::printf("# job state: %s\n", JobStateToString(last));
      while (true) {
        Result<JobStatus> polled = service.Poll(*job);
        if (!polled.ok() || polled->terminal()) break;
        if (polled->state != last) {
          last = polled->state;
          std::printf("# job state: %s\n", JobStateToString(last));
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    Result<JobStatus> final_status = service.Wait(*job);
    if (!final_status.ok()) {
      std::fprintf(stderr, "wait failed: %s\n",
                   final_status.status().ToString().c_str());
      return 1;
    }
    if (!args.quiet) {
      std::printf("# job state: %s (queued %.1f ms, ran %.1f ms)\n",
                  JobStateToString(final_status->state),
                  final_status->queue_seconds * 1e3,
                  final_status->run_seconds * 1e3);
    }
    if (final_status->state != JobState::kDone) {
      std::fprintf(stderr, "mining failed: %s\n",
                   final_status->failure.ToString().c_str());
      return 1;
    }
    response = std::move(final_status->response);
  } else {
    response = session->Mine(request);
  }
  if (!response.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 response.status().ToString().c_str());
    return 1;
  }

  if (args.measure != Measure::kGraphAffinity) {
    PrintSubsets("DCSAD", "density_diff", response->average_degree);
    if (response->average_degree.empty() && !args.quiet) {
      std::printf("# DCSAD: no subgraph with positive density difference\n");
    }
  }
  if (args.measure != Measure::kAverageDegree) {
    PrintSubsets("DCSGA", "affinity_diff", response->graph_affinity);
    if (response->graph_affinity.empty() && !args.quiet) {
      std::printf("# DCSGA: no subgraph with positive affinity difference\n");
    }
  }
  return 0;
}
