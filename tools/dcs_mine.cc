// dcs_mine — command-line Density Contrast Subgraph miner.
//
// Usage:
//   dcs_mine --g1 <edge-list> --g2 <edge-list> [options]
//
// Options:
//   --measure ad|ga|both   density measure(s) to mine (default: both)
//   --alpha <a>            scale G1 by a in the difference (default: 1.0)
//   --discrete             apply the paper's Discrete weight mapping
//   --flip                 mine G1 − G2 instead of G2 − G1 (disappearing)
//   --topk <k>             mine up to k (disjoint) subgraphs (default: 1)
//   --quiet                print only the result lines
//
// Input files use the dcs edge-list format (see src/graph/io.h):
//   <num_vertices> header line, then "<u> <v> <weight>" per edge.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/topk.h"
#include "graph/difference.h"
#include "graph/io.h"
#include "graph/stats.h"
#include "util/logging.h"

namespace {

using namespace dcs;

struct Args {
  std::string g1_path;
  std::string g2_path;
  std::string measure = "both";
  double alpha = 1.0;
  bool discrete = false;
  bool flip = false;
  uint32_t topk = 1;
  bool quiet = false;
};

void PrintUsage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s --g1 <edge-list> --g2 <edge-list>\n"
      "          [--measure ad|ga|both] [--alpha <a>] [--discrete]\n"
      "          [--flip] [--topk <k>] [--quiet]\n",
      prog);
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next_value = [&](const char** out) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    const char* value = nullptr;
    if (flag == "--g1" && next_value(&value)) {
      args->g1_path = value;
    } else if (flag == "--g2" && next_value(&value)) {
      args->g2_path = value;
    } else if (flag == "--measure" && next_value(&value)) {
      args->measure = value;
      if (args->measure != "ad" && args->measure != "ga" &&
          args->measure != "both") {
        std::fprintf(stderr, "invalid --measure '%s'\n", value);
        return false;
      }
    } else if (flag == "--alpha" && next_value(&value)) {
      args->alpha = std::strtod(value, nullptr);
    } else if (flag == "--topk" && next_value(&value)) {
      args->topk = static_cast<uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (flag == "--discrete") {
      args->discrete = true;
    } else if (flag == "--flip") {
      args->flip = true;
    } else if (flag == "--quiet") {
      args->quiet = true;
    } else {
      std::fprintf(stderr, "unknown or incomplete flag '%s'\n", flag.c_str());
      return false;
    }
  }
  if (args->g1_path.empty() || args->g2_path.empty()) {
    std::fprintf(stderr, "--g1 and --g2 are required\n");
    return false;
  }
  if (args->topk == 0) {
    std::fprintf(stderr, "--topk must be >= 1\n");
    return false;
  }
  return true;
}

void PrintSubset(const char* tag, size_t rank,
                 const std::vector<VertexId>& members, double value,
                 const char* value_name) {
  std::printf("%s #%zu: %s=%.6f size=%zu vertices={", tag, rank, value_name,
              value, members.size());
  for (size_t i = 0; i < members.size(); ++i) {
    std::printf("%s%u", i ? "," : "", members[i]);
  }
  std::printf("}\n");
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    PrintUsage(argv[0]);
    return 2;
  }

  Result<Graph> g1 = ReadEdgeListFile(args.g1_path);
  if (!g1.ok()) {
    std::fprintf(stderr, "failed to read %s: %s\n", args.g1_path.c_str(),
                 g1.status().ToString().c_str());
    return 1;
  }
  Result<Graph> g2 = ReadEdgeListFile(args.g2_path);
  if (!g2.ok()) {
    std::fprintf(stderr, "failed to read %s: %s\n", args.g2_path.c_str(),
                 g2.status().ToString().c_str());
    return 1;
  }
  if (args.flip) std::swap(*g1, *g2);

  Result<Graph> gd = BuildDifferenceGraph(*g1, *g2, args.alpha);
  if (!gd.ok()) {
    std::fprintf(stderr, "difference graph failed: %s\n",
                 gd.status().ToString().c_str());
    return 1;
  }
  Graph difference = std::move(*gd);
  if (args.discrete) {
    Result<Graph> mapped = DiscretizeWeights(difference, DiscretizeSpec{});
    if (!mapped.ok()) {
      std::fprintf(stderr, "discretize failed: %s\n",
                   mapped.status().ToString().c_str());
      return 1;
    }
    difference = std::move(*mapped);
  }
  if (!args.quiet) {
    std::printf("# difference graph: %s\n", difference.DebugString().c_str());
  }

  if (args.measure == "ad" || args.measure == "both") {
    TopkDcsadOptions options;
    options.k = args.topk;
    Result<std::vector<RankedDcsad>> results =
        MineTopKDcsad(difference, options);
    if (!results.ok()) {
      std::fprintf(stderr, "DCSAD failed: %s\n",
                   results.status().ToString().c_str());
      return 1;
    }
    for (size_t i = 0; i < results->size(); ++i) {
      PrintSubset("DCSAD", i + 1, (*results)[i].subset,
                  (*results)[i].density, "density_diff");
    }
    if (results->empty() && !args.quiet) {
      std::printf("# DCSAD: no subgraph with positive density difference\n");
    }
  }
  if (args.measure == "ga" || args.measure == "both") {
    TopkDcsgaOptions options;
    options.k = args.topk;
    Result<std::vector<CliqueRecord>> results =
        MineTopKDcsga(difference.PositivePart(), options);
    if (!results.ok()) {
      std::fprintf(stderr, "DCSGA failed: %s\n",
                   results.status().ToString().c_str());
      return 1;
    }
    for (size_t i = 0; i < results->size(); ++i) {
      PrintSubset("DCSGA", i + 1, (*results)[i].members,
                  (*results)[i].affinity, "affinity_diff");
    }
    if (results->empty() && !args.quiet) {
      std::printf("# DCSGA: no subgraph with positive affinity difference\n");
    }
  }
  return 0;
}
