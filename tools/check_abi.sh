#!/usr/bin/env bash
# C-ABI guard: include/dcs_c_api.h must stay consumable by a C89/C99
# compiler. The c_api_c99 ctest target proves that by compilation; this
# script catches the same violations statically (and reports *which*
# construct leaked) so a broken header fails fast even in builds that
# skipped the C test. Checks:
#   1. No C++-only keywords (class, namespace, template, using,
#      constexpr, nullptr, references).
#   2. No // line comments (C99 allows them, but the header commits to
#      /* */ so it also works under pedantic C89 consumers).
#   3. No default arguments in prototypes.
#   4. The extern "C" guard is present for C++ consumers.
#
# Usage: check_abi.sh [repo-root]
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
header="$root/include/dcs_c_api.h"
failures=0

fail() {
  echo "check_abi: $1" >&2
  failures=$((failures + 1))
}

if [[ ! -f "$header" ]]; then
  echo "check_abi: missing $header" >&2
  exit 1
fi

# Work on a comment-stripped copy so words inside /* */ prose (e.g. a doc
# sentence mentioning "class") never trip the keyword scan. The stripped
# file preserves line numbers: sed deletes comment *content*, not lines.
stripped="$(mktemp)"
trap 'rm -f "$stripped"' EXIT
# Remove single-line /* ... */ first, then blank out the bodies of
# multi-line comments while keeping the line structure.
awk '
  BEGIN { in_comment = 0 }
  {
    line = $0
    out = ""
    i = 1
    while (i <= length(line)) {
      two = substr(line, i, 2)
      if (in_comment) {
        if (two == "*/") { in_comment = 0; i += 2 } else { i += 1 }
      } else if (two == "/*") {
        in_comment = 1
        i += 2
      } else {
        out = out substr(line, i, 1)
        i += 1
      }
    }
    print out
  }
' "$header" > "$stripped"

# 1. C++-only keywords. \b word boundaries keep e.g. "subclass" (in an
#    identifier) from matching. `using`/`typename`/`operator` round out
#    the set; `new`/`delete` excluded (too common in prose-free macro
#    names) — the C compile test still catches those.
for kw in class namespace template constexpr nullptr typename \
          static_cast reinterpret_cast const_cast dynamic_cast \
          mutable; do
  if grep -n -E "(^|[^A-Za-z0-9_])${kw}([^A-Za-z0-9_]|$)" "$stripped" \
      | grep -v 'extern "C"' > /dev/null; then
    line=$(grep -n -E "(^|[^A-Za-z0-9_])${kw}([^A-Za-z0-9_]|$)" "$stripped" | head -n 1)
    fail "C++ keyword '${kw}' in dcs_c_api.h: ${line}"
  fi
done

# 2. No // line comments (the header commits to /* */ only).
if grep -n '//' "$stripped" | grep -v 'http://' | grep -v 'https://' > /dev/null; then
  line=$(grep -n '//' "$stripped" | grep -v 'http://' | grep -v 'https://' | head -n 1)
  fail "// comment in dcs_c_api.h (use /* */): ${line}"
fi

# 3. No default arguments: a '=' inside a prototype's parameter list.
#    Heuristic: any line containing '(' ... '= ...' before the closing
#    paren of a declaration. Enum/macro initializers live outside parens,
#    so scanning for '= ' between parens on prototype lines is safe here.
if grep -n -E '\([^)]*=[^)]*\)\s*;' "$stripped" > /dev/null; then
  line=$(grep -n -E '\([^)]*=[^)]*\)\s*;' "$stripped" | head -n 1)
  fail "default argument in prototype: ${line}"
fi

# 4. No C++ references in signatures: '&' adjacent to an identifier or
#    comma/paren context. Address-of never appears in a header, so any
#    '&' outside the preprocessor is suspect ('&&' in #if is fine).
if grep -n '&' "$stripped" | grep -v '^\s*[0-9]*:#' | grep -v '&&' > /dev/null; then
  line=$(grep -n '&' "$stripped" | grep -v -E '^[0-9]+:\s*#' | grep -v '&&' | head -n 1)
  if [[ -n "$line" ]]; then
    fail "reference (&) in dcs_c_api.h — pass pointers instead: ${line}"
  fi
fi

# 5. The extern "C" guard must be present (on the raw header: it lives
#    behind #ifdef __cplusplus, which the stripped copy preserves).
if ! grep -q 'extern "C"' "$header"; then
  fail 'missing extern "C" guard for C++ consumers'
fi
if ! grep -q '__cplusplus' "$header"; then
  fail 'missing #ifdef __cplusplus around the extern "C" guard'
fi

if [[ "$failures" -ne 0 ]]; then
  echo "check_abi: FAILED ($failures violation(s))" >&2
  exit 1
fi
echo "check_abi: OK"
