// dcs_store — inspect and check persistent artifact store and job journal
// files.
//
// Usage:
//   dcs_store stat <path>             summarize the store (version, records, bytes)
//   dcs_store fsck [--quiet] <path>   verify the superblock and every page checksum
//   dcs_store ls <path>               list the indexed records, offset-ascending
//   dcs_store journal stat <path>     summarize a job journal (records by type)
//   dcs_store journal fsck [--quiet] <path>
//                                     verify the journal superblock and checksums
//   dcs_store journal ls <path>       list the journal frames, offset-ascending
//
// `stat` and `ls` open a handle (indexing only valid records, as a session
// or service would see them); `fsck` is a read-only offline scan that
// reports corruption without modifying the file. Exit codes are stable for
// scripting: 0 = clean, 1 = corruption found (or the file is unreadable),
// 2 = usage error. `--quiet` suppresses the report and leaves only the exit
// code — `dcs_store fsck --quiet p || alert` is the scripted health check.
// This tool consumes the api/ facade only (see tools/check_layering.sh).

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/artifact_store.h"
#include "api/job_journal.h"

namespace {

using namespace dcs;

void PrintUsage(const char* prog, std::FILE* out) {
  std::fprintf(
      out,
      "usage: %s [journal] <command> [--quiet] <path>\n\n"
      "  stat <path>             summarize the store (version, records, "
      "bytes)\n"
      "  fsck [--quiet] <path>   verify the superblock and every page "
      "checksum\n"
      "  ls <path>               list the indexed records, offset-ascending\n"
      "  journal stat <path>     summarize a job journal (records by type)\n"
      "  journal fsck [--quiet] <path>\n"
      "                          verify the journal superblock and checksums\n"
      "  journal ls <path>       list the journal frames, offset-ascending\n\n"
      "exit codes: 0 clean, 1 corruption found or file unreadable, 2 usage\n",
      prog);
}

// Opens a handle without creating the file: inspecting a path that does not
// exist is an error, not an empty store.
Result<std::shared_ptr<ArtifactStore>> OpenExisting(const std::string& path) {
  ArtifactStoreOptions options;
  options.create_if_missing = false;
  return ArtifactStore::Open(path, options);
}

Result<std::shared_ptr<JobJournal>> OpenExistingJournal(
    const std::string& path) {
  JobJournalOptions options;
  options.create_if_missing = false;
  return JobJournal::Open(path, options);
}

int RunStat(const std::string& path) {
  Result<std::shared_ptr<ArtifactStore>> store = OpenExisting(path);
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
    return 1;
  }
  const ArtifactStoreStats stats = (*store)->stats();
  std::printf("store:            %s\n", path.c_str());
  std::printf("format version:   %u\n", ArtifactStore::kFormatVersion);
  std::printf("graph records:    %llu\n",
              static_cast<unsigned long long>(stats.graph_records));
  std::printf("pipeline records: %llu\n",
              static_cast<unsigned long long>(stats.pipeline_records));
  std::printf("corrupt pages:    %llu\n",
              static_cast<unsigned long long>(stats.corrupt_pages));
  std::printf("file bytes:       %llu\n",
              static_cast<unsigned long long>(stats.file_bytes));
  return 0;
}

int RunFsck(const std::string& path, bool quiet) {
  Result<ArtifactFsckReport> report = ArtifactStore::Fsck(path);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  const bool clean = report->superblock_ok && report->corrupt_pages == 0;
  if (quiet) return clean ? 0 : 1;
  std::printf("superblock:            %s\n",
              report->superblock_ok ? "ok" : "INVALID");
  if (report->superblock_ok) {
    std::printf("format version:        %u\n", report->format_version);
  }
  std::printf("valid records:         %llu\n",
              static_cast<unsigned long long>(report->valid_records));
  std::printf("corrupt pages:         %llu\n",
              static_cast<unsigned long long>(report->corrupt_pages));
  std::printf("unreliable tail bytes: %llu\n",
              static_cast<unsigned long long>(report->unreliable_tail_bytes));
  std::printf("file bytes:            %llu\n",
              static_cast<unsigned long long>(report->file_bytes));
  std::printf("%s\n", clean ? "clean" : "NOT CLEAN (a writer would "
                                        "truncate or rebuild this store)");
  return clean ? 0 : 1;
}

int RunLs(const std::string& path) {
  Result<std::shared_ptr<ArtifactStore>> store = OpenExisting(path);
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
    return 1;
  }
  std::printf("%-10s %-18s %12s %12s\n", "type", "key", "offset", "payload");
  for (const ArtifactRecordInfo& record : (*store)->ListRecords()) {
    std::printf("%-10s %016llx %12llu %12llu\n",
                record.type == 1 ? "graph" : "pipeline",
                static_cast<unsigned long long>(record.key),
                static_cast<unsigned long long>(record.offset),
                static_cast<unsigned long long>(record.payload_bytes));
  }
  return 0;
}

int RunJournalStat(const std::string& path) {
  Result<std::shared_ptr<JobJournal>> journal = OpenExistingJournal(path);
  if (!journal.ok()) {
    std::fprintf(stderr, "%s\n", journal.status().ToString().c_str());
    return 1;
  }
  const JobJournalStats stats = (*journal)->stats();
  std::printf("journal:          %s\n", path.c_str());
  std::printf("format version:   %u\n", JobJournal::kFormatVersion);
  std::printf("admitted records: %llu\n",
              static_cast<unsigned long long>(stats.admitted_records));
  std::printf("started records:  %llu\n",
              static_cast<unsigned long long>(stats.started_records));
  std::printf("done records:     %llu\n",
              static_cast<unsigned long long>(stats.done_records));
  std::printf("incomplete jobs:  %llu\n",
              static_cast<unsigned long long>(
                  stats.admitted_records > stats.done_records
                      ? stats.admitted_records - stats.done_records
                      : 0));
  std::printf("corrupt pages:    %llu\n",
              static_cast<unsigned long long>(stats.corrupt_pages));
  std::printf("file bytes:       %llu\n",
              static_cast<unsigned long long>(stats.file_bytes));
  return 0;
}

const char* JournalRecordTypeName(uint32_t type) {
  switch (type) {
    case JobJournal::kAdmittedRecord:
      return "admitted";
    case JobJournal::kStartedRecord:
      return "started";
    case JobJournal::kDoneRecord:
      return "done";
    default:
      return "?";
  }
}

int RunJournalFsck(const std::string& path, bool quiet) {
  Result<JournalFsckReport> report = JobJournal::Fsck(path);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  // A journal with an unreliable tail is not corrupt in the scary sense —
  // the next writer truncates it — but a scripted health check wants to
  // know the last append never became durable, so it counts as not clean.
  const bool clean = report->superblock_ok && report->corrupt_pages == 0 &&
                     report->unreliable_tail_bytes == 0;
  if (quiet) return clean ? 0 : 1;
  std::printf("superblock:            %s\n",
              report->superblock_ok ? "ok" : "INVALID");
  if (report->superblock_ok) {
    std::printf("format version:        %u\n", report->format_version);
  }
  std::printf("valid records:         %llu\n",
              static_cast<unsigned long long>(report->valid_records));
  std::printf("corrupt pages:         %llu\n",
              static_cast<unsigned long long>(report->corrupt_pages));
  std::printf("unreliable tail bytes: %llu\n",
              static_cast<unsigned long long>(report->unreliable_tail_bytes));
  std::printf("file bytes:            %llu\n",
              static_cast<unsigned long long>(report->file_bytes));
  std::printf("%s\n", clean ? "clean"
                            : "NOT CLEAN (a writer would truncate the "
                              "unreliable tail / skip corrupt frames)");
  return clean ? 0 : 1;
}

int RunJournalLs(const std::string& path) {
  Result<std::shared_ptr<JobJournal>> journal = OpenExistingJournal(path);
  if (!journal.ok()) {
    std::fprintf(stderr, "%s\n", journal.status().ToString().c_str());
    return 1;
  }
  std::printf("%-10s %12s %12s %12s\n", "type", "job", "offset", "payload");
  for (const JournalRecordInfo& record : (*journal)->ListRecords()) {
    std::printf("%-10s %12llu %12llu %12llu\n",
                JournalRecordTypeName(record.type),
                static_cast<unsigned long long>(record.job_id),
                static_cast<unsigned long long>(record.offset),
                static_cast<unsigned long long>(record.payload_bytes));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  bool journal = false;
  if (!args.empty() && args[0] == "journal") {
    journal = true;
    args.erase(args.begin());
  }
  bool quiet = false;
  for (auto it = args.begin(); it != args.end();) {
    if (*it == "--quiet" || *it == "-q") {
      quiet = true;
      it = args.erase(it);
    } else {
      ++it;
    }
  }
  if (args.size() != 2) {
    PrintUsage(argv[0], stderr);
    return 2;
  }
  const std::string& command = args[0];
  const std::string& path = args[1];
  if (quiet && command != "fsck") {
    std::fprintf(stderr, "--quiet only applies to fsck\n\n");
    PrintUsage(argv[0], stderr);
    return 2;
  }
  if (journal) {
    if (command == "stat") return RunJournalStat(path);
    if (command == "fsck") return RunJournalFsck(path, quiet);
    if (command == "ls") return RunJournalLs(path);
  } else {
    if (command == "stat") return RunStat(path);
    if (command == "fsck") return RunFsck(path, quiet);
    if (command == "ls") return RunLs(path);
  }
  std::fprintf(stderr, "unknown command '%s'\n\n", command.c_str());
  PrintUsage(argv[0], stderr);
  return 2;
}
