// dcs_store — inspect and check persistent artifact store files.
//
// Usage:
//   dcs_store stat <path>   summarize the store (version, records, bytes)
//   dcs_store fsck <path>   verify the superblock and every page checksum
//   dcs_store ls <path>     list the indexed records, offset-ascending
//
// `stat` and `ls` open a store handle (indexing only valid records, as a
// session would see them); `fsck` is a read-only offline scan that reports
// corruption without modifying the file — exit status 1 flags a store a
// writer would truncate or rebuild. This tool consumes the api/ facade only
// (see tools/check_layering.sh).

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>

#include "api/artifact_store.h"

namespace {

using namespace dcs;

void PrintUsage(const char* prog, std::FILE* out) {
  std::fprintf(out,
               "usage: %s <command> <path>\n\n"
               "  stat <path>   summarize the store (version, records, bytes)\n"
               "  fsck <path>   verify the superblock and every page checksum\n"
               "  ls <path>     list the indexed records, offset-ascending\n",
               prog);
}

// Opens a handle without creating the file: inspecting a path that does not
// exist is an error, not an empty store.
Result<std::shared_ptr<ArtifactStore>> OpenExisting(const std::string& path) {
  ArtifactStoreOptions options;
  options.create_if_missing = false;
  return ArtifactStore::Open(path, options);
}

int RunStat(const std::string& path) {
  Result<std::shared_ptr<ArtifactStore>> store = OpenExisting(path);
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
    return 1;
  }
  const ArtifactStoreStats stats = (*store)->stats();
  std::printf("store:            %s\n", path.c_str());
  std::printf("format version:   %u\n", ArtifactStore::kFormatVersion);
  std::printf("graph records:    %llu\n",
              static_cast<unsigned long long>(stats.graph_records));
  std::printf("pipeline records: %llu\n",
              static_cast<unsigned long long>(stats.pipeline_records));
  std::printf("corrupt pages:    %llu\n",
              static_cast<unsigned long long>(stats.corrupt_pages));
  std::printf("file bytes:       %llu\n",
              static_cast<unsigned long long>(stats.file_bytes));
  return 0;
}

int RunFsck(const std::string& path) {
  Result<ArtifactFsckReport> report = ArtifactStore::Fsck(path);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("superblock:            %s\n",
              report->superblock_ok ? "ok" : "INVALID");
  if (report->superblock_ok) {
    std::printf("format version:        %u\n", report->format_version);
  }
  std::printf("valid records:         %llu\n",
              static_cast<unsigned long long>(report->valid_records));
  std::printf("corrupt pages:         %llu\n",
              static_cast<unsigned long long>(report->corrupt_pages));
  std::printf("unreliable tail bytes: %llu\n",
              static_cast<unsigned long long>(report->unreliable_tail_bytes));
  std::printf("file bytes:            %llu\n",
              static_cast<unsigned long long>(report->file_bytes));
  const bool clean = report->superblock_ok && report->corrupt_pages == 0;
  std::printf("%s\n", clean ? "clean" : "NOT CLEAN (a writer would "
                                        "truncate or rebuild this store)");
  return clean ? 0 : 1;
}

int RunLs(const std::string& path) {
  Result<std::shared_ptr<ArtifactStore>> store = OpenExisting(path);
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
    return 1;
  }
  std::printf("%-10s %-18s %12s %12s\n", "type", "key", "offset", "payload");
  for (const ArtifactRecordInfo& record : (*store)->ListRecords()) {
    std::printf("%-10s %016llx %12llu %12llu\n",
                record.type == 1 ? "graph" : "pipeline",
                static_cast<unsigned long long>(record.key),
                static_cast<unsigned long long>(record.offset),
                static_cast<unsigned long long>(record.payload_bytes));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    PrintUsage(argv[0], stderr);
    return 2;
  }
  const std::string command = argv[1];
  const std::string path = argv[2];
  if (command == "stat") return RunStat(path);
  if (command == "fsck") return RunFsck(path);
  if (command == "ls") return RunLs(path);
  std::fprintf(stderr, "unknown command '%s'\n\n", command.c_str());
  PrintUsage(argv[0], stderr);
  return 2;
}
