#!/usr/bin/env bash
# Layering check (tier-1, wired into ctest as `check_layering`).
#
# Facade rule: tools/ and examples/ program against the public surface only —
#   allowed:   api/*, graph/io.h, util/*
#   forbidden: core/*, densest/*, baseline/*, gen/*, store/*, and any
#              graph/* header other than graph/io.h
# The api/ layer re-exports what consumers legitimately need (Graph,
# DiscretizeSpec, solver knobs, dataset generators via api/datasets.h, the
# persistent store via api/artifact_store.h), so a forbidden include is
# always a layering bug, not a missing feature.
#
# Usage: check_layering.sh [repo-root]

set -u

root="${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}"

files=()
for f in "$root"/tools/*.cc "$root"/tools/*.cpp \
         "$root"/examples/*.cc "$root"/examples/*.cpp; do
  [ -e "$f" ] && files+=("$f")
done

if [ "${#files[@]}" -eq 0 ]; then
  echo "check_layering: no tool/example sources found under $root" >&2
  exit 1
fi

status=0
for f in "${files[@]}"; do
  violations=$(grep -nE \
    '^[[:space:]]*#[[:space:]]*include[[:space:]]*"(core|densest|baseline|gen|store)/' \
    "$f")
  graph_violations=$(grep -nE \
    '^[[:space:]]*#[[:space:]]*include[[:space:]]*"graph/' "$f" \
    | grep -v 'graph/io\.h')
  if [ -n "$violations$graph_violations" ]; then
    status=1
    echo "layering violation in ${f#"$root"/}:"
    [ -n "$violations" ] && echo "$violations"
    [ -n "$graph_violations" ] && echo "$graph_violations"
  fi
done

if [ "$status" -eq 0 ]; then
  echo "layering OK: ${#files[@]} tool/example sources include only api/," \
       "graph/io.h and util/ headers"
fi
exit "$status"
