#!/usr/bin/env bash
# Sanitizer sweep for the suites that exercise concurrency and crash paths.
#
# Builds the tree twice — `-DDCS_SANITIZE=address` and `=thread` — in
# dedicated build directories (so the instrumented objects never pollute the
# default ./build) and runs the `unit`, `chaos` and `crash` ctest labels
# under each. One command, fail-fast per step:
#
#   tools/run_sanitizers.sh            # both sanitizers
#   tools/run_sanitizers.sh address    # just one
#   tools/run_sanitizers.sh thread
#
# The crash label fork/execs the journaled worker and kills it mid-append;
# running it instrumented is the point — a recovery-path data race or a
# use-after-free in the journal teardown shows up here first.
#
# Env knobs: JOBS (parallel build/test width, default nproc),
# BUILD_ROOT (where build-<sanitizer> dirs go, default the repo root).

set -eu

root="$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)"
jobs="${JOBS:-$(nproc 2> /dev/null || echo 4)}"
build_root="${BUILD_ROOT:-$root}"

sanitizers=("$@")
if [ "${#sanitizers[@]}" -eq 0 ]; then
  sanitizers=(address thread)
fi
for sanitizer in "${sanitizers[@]}"; do
  case "$sanitizer" in
    address | thread | undefined) ;;
    *)
      echo "run_sanitizers: unknown sanitizer '$sanitizer'" \
           "(expected address, thread or undefined)" >&2
      exit 2
      ;;
  esac
done

labels='unit|chaos|crash'
for sanitizer in "${sanitizers[@]}"; do
  build_dir="$build_root/build-$sanitizer"
  echo "== [$sanitizer] configure -> $build_dir"
  cmake -B "$build_dir" -S "$root" -DDCS_SANITIZE="$sanitizer" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
  echo "== [$sanitizer] build"
  cmake --build "$build_dir" -j "$jobs"
  echo "== [$sanitizer] ctest -L '$labels'"
  (cd "$build_dir" && ctest --output-on-failure -j "$jobs" -L "$labels")
done

echo "sanitizers OK: ${sanitizers[*]} x {$labels}"
