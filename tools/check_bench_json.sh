#!/usr/bin/env bash
# Schema check for the machine-readable bench output (BENCH_*.json emitted by
# the bench drivers' --json flag; see bench/bench_util.h JsonReporter).
#
# Usage:
#   check_bench_json.sh file.json [more.json...]
#       Validate existing report files.
#   check_bench_json.sh --run BENCH_BINARY OUT.json
#       Run `BENCH_BINARY --smoke --json OUT.json` first, then validate
#       OUT.json — the ctest `bench_smoke` wiring, which keeps the JSON
#       surface from silently rotting.
#
# Validation uses python3's json module when available (full parse + key
# check) and falls back to grep'ing for the required keys otherwise.

set -u

required_top=(bench seed hardware_concurrency records)
required_record=(dataset threads wall_ms initializations pruned_seeds affinity)
# Benches may append extra per-record fields; those are schema too. The
# async throughput bench must carry its latency/throughput columns, the
# pipeline-cache bench its session/hit/miss/bytes columns.
required_async_record=(jobs throughput_jobs_per_s mean_latency_ms
                       p95_latency_ms mean_queue_ms)
required_cache_record=(sessions requests rebuilds cache_hits cache_misses
                       cache_bytes)
required_streaming_record=(delta_edges edge_mass update_ms p95_update_ms
                           rebuild_ms p95_rebuild_ms speedup)
required_cold_start_record=(first_response_ms store_hits store_misses
                            store_corrupt_pages speedup)
required_fault_recovery_record=(injected_faults store_retries
                                store_write_errors recovery_ms overhead_pct)
required_micro_kernels_record=(edges cycles_per_edge cycles_per_edge_scalar
                               speedup bit_identical)
required_multitenant_record=(tenants offered_jobs admitted_jobs shed_jobs
                             throughput_jobs_per_s mean_latency_ms
                             p95_latency_ms p99_latency_ms mean_queue_ms
                             tenant0_share deadline_misses bit_identical)
required_crash_recovery_record=(journal_appends recovered_jobs overhead_pct
                                recovery_ms bit_identical)
# Latency/timing fields must be real, finite and non-negative — a NaN or a
# negative wall/percentile means the bench's timing math broke, and it used
# to sail through both validation branches.
timing_keys=(wall_ms mean_latency_ms p95_latency_ms p99_latency_ms
             mean_queue_ms update_ms p95_update_ms rebuild_ms p95_rebuild_ms
             first_response_ms recovery_ms)

files=()
if [ "${1:-}" = "--run" ]; then
  if [ "$#" -ne 3 ]; then
    echo "usage: check_bench_json.sh --run BENCH_BINARY OUT.json" >&2
    exit 2
  fi
  binary="$2"
  out="$3"
  if ! "$binary" --smoke --json "$out"; then
    echo "check_bench_json: '$binary --smoke --json $out' failed" >&2
    exit 1
  fi
  files=("$out")
else
  files=("$@")
fi

if [ "${#files[@]}" -eq 0 ]; then
  echo "usage: check_bench_json.sh [--run BENCH_BINARY OUT.json] [file.json...]" >&2
  exit 2
fi

status=0
for f in "${files[@]}"; do
  if [ ! -s "$f" ]; then
    echo "check_bench_json: $f missing or empty" >&2
    status=1
    continue
  fi
  if command -v python3 > /dev/null 2>&1; then
    python3 - "$f" "${required_top[*]}" "${required_record[*]}" \
        "${required_async_record[*]}" "${required_cache_record[*]}" \
        "${required_streaming_record[*]}" "${required_cold_start_record[*]}" \
        "${required_fault_recovery_record[*]}" \
        "${required_micro_kernels_record[*]}" \
        "${required_multitenant_record[*]}" \
        "${required_crash_recovery_record[*]}" \
        "${timing_keys[*]}" \
        << 'EOF'
import json, math, sys
path, top_keys, record_keys = sys.argv[1], sys.argv[2].split(), sys.argv[3].split()
async_keys = sys.argv[4].split()
cache_keys = sys.argv[5].split()
streaming_keys = sys.argv[6].split()
cold_start_keys = sys.argv[7].split()
fault_recovery_keys = sys.argv[8].split()
micro_kernels_keys = sys.argv[9].split()
multitenant_keys = sys.argv[10].split()
crash_recovery_keys = sys.argv[11].split()
timing_keys = sys.argv[12].split()
try:
    with open(path) as fh:
        doc = json.load(fh)
except (OSError, ValueError) as e:
    sys.exit(f"check_bench_json: {path}: not valid JSON: {e}")
missing = [k for k in top_keys if k not in doc]
if missing:
    sys.exit(f"check_bench_json: {path}: missing top-level keys {missing}")
if not isinstance(doc["records"], list) or not doc["records"]:
    sys.exit(f"check_bench_json: {path}: 'records' must be a non-empty array")
if doc["bench"] == "async_throughput":
    record_keys = record_keys + async_keys
if doc["bench"] == "pipeline_cache":
    record_keys = record_keys + cache_keys
if doc["bench"] == "streaming_updates":
    record_keys = record_keys + streaming_keys
if doc["bench"] == "cold_start":
    record_keys = record_keys + cold_start_keys
if doc["bench"] == "fault_recovery":
    record_keys = record_keys + fault_recovery_keys
if doc["bench"] == "micro_kernels":
    record_keys = record_keys + micro_kernels_keys
if doc["bench"] == "multitenant":
    record_keys = record_keys + multitenant_keys
if doc["bench"] == "crash_recovery":
    record_keys = record_keys + crash_recovery_keys
for i, record in enumerate(doc["records"]):
    missing = [k for k in record_keys if k not in record]
    if missing:
        sys.exit(f"check_bench_json: {path}: record #{i} missing keys {missing}")
    for key in timing_keys:
        if key not in record:
            continue
        value = record[key]
        if not isinstance(value, (int, float)) or isinstance(value, bool) \
                or math.isnan(value) or math.isinf(value) or value < 0:
            sys.exit(f"check_bench_json: {path}: record #{i} field "
                     f"'{key}' = {value!r} is not a finite non-negative number")
EOF
    [ "$?" -eq 0 ] || status=1
  else
    keys=("${required_top[@]}" "${required_record[@]}")
    if grep -q '"bench": "async_throughput"' "$f"; then
      keys+=("${required_async_record[@]}")
    fi
    if grep -q '"bench": "pipeline_cache"' "$f"; then
      keys+=("${required_cache_record[@]}")
    fi
    if grep -q '"bench": "streaming_updates"' "$f"; then
      keys+=("${required_streaming_record[@]}")
    fi
    if grep -q '"bench": "cold_start"' "$f"; then
      keys+=("${required_cold_start_record[@]}")
    fi
    if grep -q '"bench": "fault_recovery"' "$f"; then
      keys+=("${required_fault_recovery_record[@]}")
    fi
    if grep -q '"bench": "micro_kernels"' "$f"; then
      keys+=("${required_micro_kernels_record[@]}")
    fi
    if grep -q '"bench": "multitenant"' "$f"; then
      keys+=("${required_multitenant_record[@]}")
    fi
    if grep -q '"bench": "crash_recovery"' "$f"; then
      keys+=("${required_crash_recovery_record[@]}")
    fi
    for key in "${keys[@]}"; do
      if ! grep -q "\"$key\"" "$f"; then
        echo "check_bench_json: $f: missing key \"$key\"" >&2
        status=1
      fi
    done
    # Mirror of the python3 branch's timing sanity: printf-style emitters
    # render broken doubles as nan/inf tokens (invalid JSON, which grep
    # alone would happily pass) and negative timings as a leading minus.
    for key in "${timing_keys[@]}"; do
      if grep -Eiq "\"$key\": *-?(nan|inf)" "$f"; then
        echo "check_bench_json: $f: field \"$key\" is NaN/Inf" >&2
        status=1
      fi
      if grep -Eq "\"$key\": *-[0-9]" "$f"; then
        echo "check_bench_json: $f: field \"$key\" is negative" >&2
        status=1
      fi
    done
  fi
done

if [ "$status" -eq 0 ]; then
  echo "bench JSON OK: ${#files[@]} file(s) match the schema"
fi
exit "$status"
