/*
 * dcs_c_api.h — the stable C ABI of the libdcs mining service.
 *
 * A plain-C99 export of the api/ facade for non-C++ front-ends: opaque
 * handles, integer status codes mirroring dcs::StatusCode, and no C++
 * types anywhere on the boundary. The shapes mirror the C++ surface:
 * a dcs_service schedules N graph-pair tenants (dcs_service_add_tenant)
 * behind per-tenant FIFO queues with cross-tenant priority scheduling,
 * weighted-fair quotas and admission control; jobs are submitted
 * asynchronously and observed through poll/wait snapshots. See
 * src/api/mining_service.h for the full scheduling and determinism
 * contract — the C surface adds nothing and removes nothing.
 *
 * Ownership rules:
 *  - Every *_create / add / take function either returns DCS_OK and hands
 *    the caller an owned handle (or value), or returns an error code and
 *    touches nothing.
 *  - Handles are released with their matching *_free, which takes a
 *    pointer-to-handle and nulls it: freeing NULL or an already-freed
 *    (nulled) handle is a well-defined no-op, so double-free is harmless.
 *  - dcs_graph handles are *copied into* the tenant at
 *    dcs_service_add_tenant; the caller keeps ownership and may free the
 *    graph immediately afterwards.
 *  - Strings returned by dcs_service_last_error are owned by the service
 *    and valid until the next failing call on the same service from any
 *    thread; copy them out before calling again. dcs_status_code_name /
 *    dcs_job_state_name return static strings.
 *  - A dcs_response (dcs_service_take_response) is an owned snapshot,
 *    independent of the service; subgraph views point into the response
 *    and stay valid until it is freed.
 *
 * Thread safety: a dcs_service may be called from any thread
 * concurrently, except that destruction must not race other calls on the
 * same handle (as for the C++ service). dcs_graph and dcs_response are
 * immutable after creation; concurrent reads are safe.
 */

#ifndef DCS_INCLUDE_DCS_C_API_H_
#define DCS_INCLUDE_DCS_C_API_H_

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

/* Status codes, numerically identical to dcs::StatusCode. */
enum {
  DCS_OK = 0,
  DCS_INVALID_ARGUMENT = 1,
  DCS_NOT_FOUND = 2,
  DCS_ALREADY_EXISTS = 3,
  DCS_OUT_OF_RANGE = 4, /* per-tenant queue backpressure at submit */
  DCS_IO_ERROR = 5,
  DCS_NOT_CONVERGED = 6,
  DCS_INTERNAL = 7,
  DCS_CANCELLED = 8,
  DCS_DEADLINE_EXCEEDED = 9,
  DCS_RESOURCE_EXHAUSTED = 10 /* service-wide admission budget at submit */
};
typedef int32_t dcs_status_code;

/* Job states, numerically identical to dcs::JobState. */
enum {
  DCS_JOB_QUEUED = 0,
  DCS_JOB_RUNNING = 1,
  DCS_JOB_DONE = 2,
  DCS_JOB_FAILED = 3,
  DCS_JOB_CANCELLED = 4
};

/* Density-contrast measures, numerically identical to dcs::Measure. */
enum {
  DCS_MEASURE_AVERAGE_DEGREE = 0,
  DCS_MEASURE_GRAPH_AFFINITY = 1,
  DCS_MEASURE_BOTH = 2
};

/* Streaming-update sides, numerically identical to dcs::UpdateSide. */
enum { DCS_UPDATE_G1 = 0, DCS_UPDATE_G2 = 1 };

/* Opaque handles. */
typedef struct dcs_graph dcs_graph;
typedef struct dcs_service dcs_service;
typedef struct dcs_response dcs_response;

/*
 * Service construction knobs; mirror dcs::MiningServiceOptions. Zero a
 * field (or call dcs_service_options_init) for the documented default.
 */
typedef struct dcs_service_options {
  /* Default per-tenant queue capacity; submit answers DCS_OUT_OF_RANGE
   * beyond it. 0 = unbounded. */
  size_t max_queued_jobs;
  /* Service-wide queued-job budget across tenants; submit answers
   * DCS_RESOURCE_EXHAUSTED beyond it. 0 = unbounded. */
  size_t max_total_queued_jobs;
  /* Service-wide budget on approximate queued request bytes; submit
   * answers DCS_RESOURCE_EXHAUSTED beyond it. 0 = unbounded. */
  size_t max_queued_request_bytes;
  /* Executor threads draining the tenant queues; 0 behaves as 1. */
  uint32_t num_executors;
  /* Nonzero: the scheduler starts paused — submissions queue up but
   * nothing dispatches until dcs_service_resume. Lets callers stage a
   * backlog and observe one deterministic scheduling order. */
  int32_t start_paused;
  /* Terminal jobs retained for poll/wait; older ones are evicted and poll
   * answers DCS_NOT_FOUND. 0 = retain everything. */
  size_t max_finished_jobs;
  /* Nonzero: all tenants share one pipeline cache, so equal datasets
   * prepare each pipeline once across tenants. */
  int32_t share_pipeline_cache;
  /* Nonzero: all tenant sessions share one solver worker pool instead of
   * spawning one pool per tenant. */
  int32_t share_worker_pool;
  /* Path of the crash-consistent job journal; NULL or "" (the default) =
   * no journal. Borrowed: the string must stay valid until
   * dcs_service_create returns. With a journal, submit acks are durable
   * (the Admitted record lands before the JobId is returned) and creating
   * the service over an existing journal recovers its jobs — see
   * dcs_service_num_recovered_jobs. Prefer dcs_service_options_set_journal
   * over filling the journal fields directly. */
  const char* journal_path;
  /* Nonzero: fsync inside every journal append (an acked submit survives
   * power loss). Zero (the default): group commit — appends are fsynced
   * by a background flusher within journal_group_commit_ms. */
  int32_t journal_durability_always;
  /* Upper bound in milliseconds on how long a group-commit append stays
   * un-fsynced; <= 0 keeps the default (5 ms). */
  double journal_group_commit_ms;
} dcs_service_options;

/* Fills `options` with the defaults (all budgets unbounded, one executor,
 * 4096 retained jobs, shared cache and pool off, no journal). */
void dcs_service_options_init(dcs_service_options* options);

/* Configures the crash-consistent job journal in one call: path (borrowed,
 * see journal_path), durability mode and group-commit interval. NULL
 * `options` is a no-op. */
void dcs_service_options_set_journal(dcs_service_options* options,
                                     const char* path,
                                     int32_t durability_always,
                                     double group_commit_ms);

/*
 * One mining request; mirrors the dcs::MiningRequest fields the C surface
 * exposes. Always initialize with dcs_mining_request_init, then override.
 */
typedef struct dcs_mining_request {
  /* One of the DCS_MEASURE_* values. */
  int32_t measure;
  /* Scale of G1 in the difference D = A2 - alpha * A1; finite, > 0. */
  double alpha;
  /* Nonzero mines G1 - G2 instead of G2 - G1. */
  int32_t flip;
  /* Subgraphs to mine per measure; 1 = the paper's single-DCS setting. */
  uint32_t top_k;
  /* Cross-tenant scheduling priority (higher dispatches sooner); never
   * reorders jobs within one tenant. */
  int32_t priority;
  /* Seconds from submit before the watchdog fails the job with
   * DCS_DEADLINE_EXCEEDED; 0 = no deadline. */
  double deadline_seconds;
  /* Intra-request solver parallelism: 1 = sequential, 0 = auto (take the
   * session's thread budget), k > 1 = exactly k seed shards. Mined
   * subgraphs are bit-identical across all values. */
  uint32_t parallelism;
} dcs_mining_request;

/* Fills `request` with the defaults (both measures, alpha 1.0, top-1,
 * priority 0, no deadline, sequential solver). */
void dcs_mining_request_init(dcs_mining_request* request);

/* Point-in-time job snapshot; mirrors dcs::JobStatus. */
typedef struct dcs_job_status {
  uint64_t id;
  uint32_t tenant;
  /* One of the DCS_JOB_* values. */
  int32_t state;
  /* Failure detail when state == DCS_JOB_FAILED (e.g.
   * DCS_DEADLINE_EXCEEDED); DCS_OK otherwise. */
  dcs_status_code failure_code;
  /* Seconds the job waited in its queue (0 while still queued). */
  double queue_seconds;
  /* Seconds the solve ran (0 unless the job reached DCS_JOB_RUNNING). */
  double run_seconds;
  /* 1-based position in the service-wide terminal order; 0 while the job
   * is still queued or running. */
  uint64_t finish_index;
} dcs_job_status;

/* One mined subgraph, viewed inside an owned dcs_response. */
typedef struct dcs_subgraph_view {
  /* Member vertices, ascending; points into the response, valid until
   * dcs_response_free. */
  const uint32_t* vertices;
  size_t num_vertices;
  /* The measure value: density difference for DCS_MEASURE_AVERAGE_DEGREE
   * results, affinity difference for DCS_MEASURE_GRAPH_AFFINITY. */
  double value;
} dcs_subgraph_view;

/* Static human-readable names ("OK", "Deadline exceeded", ...; "queued",
 * "done", ...). Unknown values answer "unknown". */
const char* dcs_status_code_name(dcs_status_code code);
const char* dcs_job_state_name(int32_t state);

/*
 * Builds an immutable graph over `num_vertices` vertices from parallel
 * edge arrays us/vs/weights of length num_edges (duplicate edges
 * accumulate; self-loops, out-of-range endpoints and non-finite weights
 * are rejected). On DCS_OK, *out_graph is an owned handle.
 */
dcs_status_code dcs_graph_create(uint32_t num_vertices, const uint32_t* us,
                                 const uint32_t* vs, const double* weights,
                                 size_t num_edges, dcs_graph** out_graph);

/* Frees *graph and nulls it; NULL (or *graph == NULL) is a no-op. */
void dcs_graph_free(dcs_graph** graph);

/* Starts a service with no tenants. NULL options = defaults. */
dcs_status_code dcs_service_create(const dcs_service_options* options,
                                   dcs_service** out_service);

/* Blocks until in-flight jobs finish (queued ones are cancelled), then
 * frees *service and nulls it; NULL (or *service == NULL) is a no-op. */
void dcs_service_free(dcs_service** service);

/* Message of the last failing call on this service ("" when none yet);
 * valid until the next failing call on the same service. NULL answers a
 * static placeholder. */
const char* dcs_service_last_error(const dcs_service* service);

/*
 * Registers a tenant mining the pair (g1, g2); both graphs are copied in,
 * the caller keeps ownership. `weight` >= 1 is the weighted-fair share;
 * `max_queued_jobs` overrides the service default (0 = inherit). On
 * DCS_OK, *out_tenant is the dense tenant id.
 */
dcs_status_code dcs_service_add_tenant(dcs_service* service,
                                       const dcs_graph* g1,
                                       const dcs_graph* g2, uint32_t weight,
                                       size_t max_queued_jobs,
                                       uint32_t* out_tenant);

/* Enqueues `request` on `tenant`'s queue; on DCS_OK, *out_job identifies
 * the job for poll/wait/cancel. Admission errors: DCS_OUT_OF_RANGE
 * (tenant queue full), DCS_RESOURCE_EXHAUSTED (service budget). */
dcs_status_code dcs_service_submit(dcs_service* service, uint32_t tenant,
                                   const dcs_mining_request* request,
                                   uint64_t* out_job);

/* Queues a fenced streaming weight update (side is a DCS_UPDATE_*
 * value): it takes effect after every job `tenant` submitted before it
 * and before every job submitted after it. */
dcs_status_code dcs_service_apply_update(dcs_service* service,
                                         uint32_t tenant, int32_t side,
                                         uint32_t u, uint32_t v,
                                         double delta);

/* Non-blocking snapshot; DCS_NOT_FOUND for unknown or evicted ids. */
dcs_status_code dcs_service_poll(dcs_service* service, uint64_t job,
                                 dcs_job_status* out_status);

/* Blocks until the job is terminal, then snapshots it. */
dcs_status_code dcs_service_wait(dcs_service* service, uint64_t job,
                                 dcs_job_status* out_status);

/* Requests cancellation and snapshots the job: a queued job goes terminal
 * DCS_JOB_CANCELLED immediately and never starts; a running one finishes
 * cancelling asynchronously (wait for the terminal state). `out_status`
 * may be NULL. */
dcs_status_code dcs_service_cancel(dcs_service* service, uint64_t job,
                                   dcs_job_status* out_status);

/* Jobs the service recovered from its journal at creation (terminal jobs
 * re-exposed plus incomplete jobs awaiting their tenant's registration),
 * in admission order. 0 without a journal (or with a fresh one), or for a
 * NULL handle. */
uint64_t dcs_service_num_recovered_jobs(const dcs_service* service);

/* The `index`-th recovered job id (admission order); DCS_OUT_OF_RANGE at
 * or past dcs_service_num_recovered_jobs. Poll/wait/take_response accept
 * recovered ids exactly like freshly submitted ones. */
dcs_status_code dcs_service_recovered_job(dcs_service* service,
                                          uint64_t index, uint64_t* out_job);

/* Releases a scheduler created with start_paused; idempotent. */
dcs_status_code dcs_service_resume(dcs_service* service);

/* Blocks until every submitted job is terminal and every queued update is
 * applied, across all tenants. A paused scheduler with a backlog never
 * drains — resume first. */
dcs_status_code dcs_service_drain(dcs_service* service);

/*
 * Waits for `job` and extracts its mined response as an owned snapshot.
 * Fails with the job's failure code (or DCS_CANCELLED) when the job did
 * not reach DCS_JOB_DONE; the response stays extractable again until the
 * job is evicted.
 */
dcs_status_code dcs_service_take_response(dcs_service* service, uint64_t job,
                                          dcs_response** out_response);

/* Subgraphs mined for `measure` (DCS_MEASURE_AVERAGE_DEGREE or
 * DCS_MEASURE_GRAPH_AFFINITY; anything else answers 0). */
size_t dcs_response_num_subgraphs(const dcs_response* response,
                                  int32_t measure);

/* Views one ranked subgraph of `measure`; DCS_OUT_OF_RANGE past
 * dcs_response_num_subgraphs. */
dcs_status_code dcs_response_subgraph(const dcs_response* response,
                                      int32_t measure, size_t index,
                                      dcs_subgraph_view* out_view);

/* Frees *response and nulls it; NULL (or *response == NULL) is a no-op. */
void dcs_response_free(dcs_response** response);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* DCS_INCLUDE_DCS_C_API_H_ */
