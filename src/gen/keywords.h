// Two-era keyword co-occurrence generator — synthetic analog of the paper's
// "DM" dataset of data-mining paper titles (§VI-C; substitution documented
// in DESIGN.md §3).
//
// Titles are simulated per era: each title samples one topic (a small set of
// keywords that co-occur) according to era-specific topic popularity, plus
// background noise words. Edge weights follow the paper's recipe: 100 × the
// fraction of titles in which both keywords appear. Planted topics use the
// actual vocabulary of the paper's Tables V/VI ("social networks", "matrix
// factorization", "association rules", ...), so the reproduction tables read
// like the originals.

#ifndef DCS_GEN_KEYWORDS_H_
#define DCS_GEN_KEYWORDS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace dcs {

/// How a planted topic's popularity evolves between the eras.
enum class TopicTrend {
  kEmerging,      ///< popular in era 2 only
  kDisappearing,  ///< popular in era 1 only
  kStable,        ///< popular in both (the "time series" distractor)
};

/// One topic with its keyword strings and per-era popularity weight.
struct Topic {
  std::string label;                   ///< e.g. "social networks"
  std::vector<std::string> keywords;
  TopicTrend trend = TopicTrend::kStable;
  double popularity = 1.0;             ///< relative sampling weight when hot
};

/// Configuration of the keyword generator.
struct KeywordConfig {
  /// Background vocabulary size (ids beyond the planted keywords).
  uint32_t noise_vocabulary = 3000;
  /// Titles per era.
  uint32_t titles_per_era = 30'000;
  /// Noise words appended to each title.
  uint32_t noise_words_per_title = 4;
  /// Zipf exponent of noise-word usage.
  double noise_zipf_exponent = 1.3;
  /// The most frequent `num_stop_words` noise ranks are treated as stop
  /// words and removed from titles, mirroring the paper's preprocessing
  /// ("we removed all stop words"). Without this, an ultra-frequent filler
  /// word co-occurs with every hot topic and leaks into the contrast.
  uint32_t num_stop_words = 3;
  /// Popularity of a topic in its cold era, as a fraction of its hot
  /// popularity.
  double cold_popularity_fraction = 0.12;
  /// Fraction of titles that carry no topic at all (pure noise).
  double topicless_fraction = 0.35;
  /// Topics; empty selects DefaultDataMiningTopics().
  std::vector<Topic> topics;
};

/// Output of the keyword generator.
struct KeywordData {
  Graph g1;  ///< era-1 association graph (weight = 100·co-occurrence rate)
  Graph g2;  ///< era-2 association graph
  std::vector<std::string> vocabulary;  ///< keyword string per vertex id
  std::vector<Topic> topics;            ///< with resolved keyword ids below
  std::vector<std::vector<VertexId>> topic_members;  ///< per topic
};

/// The planted topic set modeled on Tables V/VI of the paper.
std::vector<Topic> DefaultDataMiningTopics();

/// \brief Simulates both eras and builds the two association graphs.
Result<KeywordData> GenerateKeywordData(const KeywordConfig& config, Rng* rng);

}  // namespace dcs

#endif  // DCS_GEN_KEYWORDS_H_
