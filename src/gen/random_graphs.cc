#include "gen/random_graphs.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace dcs {
namespace {

Status ValidateProbability(double p) {
  if (!(p >= 0.0 && p <= 1.0)) {
    return Status::InvalidArgument("probability out of [0,1]");
  }
  return Status::OK();
}

}  // namespace

Result<Graph> ErdosRenyi(VertexId n, double p, Rng* rng) {
  return ErdosRenyiWeighted(n, p, 1.0, 1.0, rng);
}

Result<Graph> ErdosRenyiWeighted(VertexId n, double p, double weight_lo,
                                 double weight_hi, Rng* rng) {
  DCS_RETURN_NOT_OK(ValidateProbability(p));
  if (weight_lo > weight_hi) {
    return Status::InvalidArgument("weight_lo > weight_hi");
  }
  GraphBuilder builder(n);
  if (p > 0.0 && n > 1) {
    // Skip-sampling over the (u < v) pair sequence: geometric jumps between
    // successful trials, O(n + m) in expectation.
    const uint64_t total_pairs =
        static_cast<uint64_t>(n) * (n - 1) / 2;
    uint64_t index = rng->Geometric(p);
    while (index < total_pairs) {
      // Decode linear index -> (u, v), u < v.
      const double ud =
          std::floor((2.0 * static_cast<double>(n) - 1.0 -
                      std::sqrt((2.0 * n - 1.0) * (2.0 * n - 1.0) -
                                8.0 * static_cast<double>(index))) /
                     2.0);
      VertexId u = static_cast<VertexId>(ud);
      // Guard the float decode against off-by-one at block boundaries.
      auto block_start = [&](VertexId a) {
        return static_cast<uint64_t>(a) * (2ull * n - a - 1) / 2;
      };
      while (u > 0 && block_start(u) > index) --u;
      while (block_start(u + 1) <= index) ++u;
      const VertexId v =
          static_cast<VertexId>(u + 1 + (index - block_start(u)));
      const double w = weight_lo == weight_hi
                           ? weight_lo
                           : rng->Uniform(weight_lo, weight_hi);
      if (w != 0.0) DCS_RETURN_NOT_OK(builder.AddEdge(u, v, w));
      index += 1 + rng->Geometric(p);
    }
  }
  return builder.Build();
}

Result<Graph> ChungLu(const ChungLuParams& params, Rng* rng) {
  const VertexId n = params.n;
  if (n == 0) return Status::InvalidArgument("n must be >= 1");
  if (params.exponent <= 1.0) {
    return Status::InvalidArgument("exponent must exceed 1");
  }
  if (!(params.weight_geometric_p > 0.0 && params.weight_geometric_p <= 1.0)) {
    return Status::InvalidArgument("weight_geometric_p out of (0,1]");
  }
  // Power-law weights θ_i ∝ (i+1)^{−1/(γ−1)}, rescaled to the target average
  // degree, then sorted descending (they already are).
  std::vector<double> theta(n);
  const double power = -1.0 / (params.exponent - 1.0);
  double theta_sum = 0.0;
  for (VertexId i = 0; i < n; ++i) {
    theta[i] = std::pow(static_cast<double>(i + 1), power);
    theta_sum += theta[i];
  }
  const double scale =
      params.average_degree * static_cast<double>(n) / theta_sum;
  for (double& t : theta) t *= scale;
  theta_sum *= scale;
  // Cap θ at sqrt(Σθ) so that θ_u·θ_v/Σθ stays a probability.
  const double cap = std::sqrt(theta_sum);
  for (double& t : theta) t = std::min(t, cap);

  GraphBuilder builder(n);
  // Miller–Hagberg: for each u, walk v > u with geometric skips computed at
  // the current probability, correcting by rejection when p drops.
  for (VertexId u = 0; u + 1 < n; ++u) {
    VertexId v = u + 1;
    double p = std::min(1.0, theta[u] * theta[v] / theta_sum);
    while (v < n && p > 0.0) {
      if (p < 1.0) {
        const uint64_t skip = rng->Geometric(p);
        if (skip > static_cast<uint64_t>(n - v)) break;
        v += static_cast<VertexId>(skip);
      }
      if (v >= n) break;
      const double q = std::min(1.0, theta[u] * theta[v] / theta_sum);
      if (rng->NextDouble() < q / p) {
        const double w =
            1.0 + static_cast<double>(rng->Geometric(params.weight_geometric_p));
        DCS_RETURN_NOT_OK(builder.AddEdge(u, v, w));
      }
      p = q;
      ++v;
    }
  }
  return builder.Build();
}

Status AddClique(GraphBuilder* builder, std::span<const VertexId> members,
                 double weight) {
  for (size_t i = 0; i < members.size(); ++i) {
    for (size_t j = i + 1; j < members.size(); ++j) {
      DCS_RETURN_NOT_OK(builder->AddEdge(members[i], members[j], weight));
    }
  }
  return Status::OK();
}

Status AddCliqueUniform(GraphBuilder* builder,
                        std::span<const VertexId> members, double weight_lo,
                        double weight_hi, Rng* rng) {
  if (weight_lo > weight_hi) {
    return Status::InvalidArgument("weight_lo > weight_hi");
  }
  for (size_t i = 0; i < members.size(); ++i) {
    for (size_t j = i + 1; j < members.size(); ++j) {
      DCS_RETURN_NOT_OK(builder->AddEdge(members[i], members[j],
                                         rng->Uniform(weight_lo, weight_hi)));
    }
  }
  return Status::OK();
}

Result<Graph> RandomSignedGraph(VertexId n, size_t m, double positive_fraction,
                                double magnitude_lo, double magnitude_hi,
                                Rng* rng) {
  DCS_RETURN_NOT_OK(ValidateProbability(positive_fraction));
  if (n < 2 && m > 0) return Status::InvalidArgument("n too small for edges");
  if (!(magnitude_lo > 0.0) || magnitude_lo > magnitude_hi) {
    return Status::InvalidArgument("need 0 < magnitude_lo <= magnitude_hi");
  }
  GraphBuilder builder(n);
  for (size_t k = 0; k < m; ++k) {
    const VertexId u = static_cast<VertexId>(rng->NextBounded(n));
    VertexId v = static_cast<VertexId>(rng->NextBounded(n - 1));
    if (v >= u) ++v;
    const double magnitude = rng->Uniform(magnitude_lo, magnitude_hi);
    const double w =
        rng->Bernoulli(positive_fraction) ? magnitude : -magnitude;
    DCS_RETURN_NOT_OK(builder.AddEdge(u, v, w));
  }
  return builder.Build();
}

}  // namespace dcs
