#include "gen/coauthor.h"

#include <algorithm>
#include <numeric>
#include <string>

#include "gen/random_graphs.h"
#include "graph/graph_builder.h"

namespace dcs {
namespace {

// Adds planted-group collaborations: roughly Poisson(pairwise mean) papers
// per pair, at least 1 so the group is an actual clique in its hot era.
Status AddGroupEra(GraphBuilder* builder, const PlantedGroup& group,
                   double mean_pairs, Rng* rng) {
  if (mean_pairs <= 0.0) return Status::OK();
  for (size_t i = 0; i < group.members.size(); ++i) {
    for (size_t j = i + 1; j < group.members.size(); ++j) {
      const double papers =
          1.0 + static_cast<double>(rng->Poisson(mean_pairs - 1.0));
      DCS_RETURN_NOT_OK(
          builder->AddEdge(group.members[i], group.members[j], papers));
    }
  }
  return Status::OK();
}

}  // namespace

Result<CoauthorData> GenerateCoauthorData(const CoauthorConfig& config,
                                          Rng* rng) {
  const VertexId n = config.num_authors;
  size_t planted_total = 0;
  for (uint32_t s : config.emerging_sizes) planted_total += s;
  for (uint32_t s : config.disappearing_sizes) planted_total += s;
  if (planted_total > n) {
    return Status::InvalidArgument(
        "planted groups need more authors than available");
  }
  for (uint32_t s : config.emerging_sizes) {
    if (s < 2) return Status::InvalidArgument("group size must be >= 2");
  }
  for (uint32_t s : config.disappearing_sizes) {
    if (s < 2) return Status::InvalidArgument("group size must be >= 2");
  }

  // Disjoint member sets for all planted groups.
  std::vector<uint32_t> pool = rng->SampleWithoutReplacement(
      n, static_cast<uint32_t>(planted_total));
  size_t cursor = 0;
  auto take_group = [&](const char* prefix, size_t index,
                        uint32_t size) -> PlantedGroup {
    PlantedGroup group;
    group.name = std::string(prefix) + " group #" + std::to_string(index + 1);
    group.members.assign(pool.begin() + cursor, pool.begin() + cursor + size);
    std::sort(group.members.begin(), group.members.end());
    cursor += size;
    return group;
  };

  CoauthorData data;
  for (size_t g = 0; g < config.emerging_sizes.size(); ++g) {
    PlantedGroup group =
        take_group("Emerging", g, config.emerging_sizes[g]);
    group.pairwise_papers = config.planted_pairwise_papers;
    data.emerging.push_back(std::move(group));
  }
  for (size_t g = 0; g < config.disappearing_sizes.size(); ++g) {
    PlantedGroup group =
        take_group("Disappearing", g, config.disappearing_sizes[g]);
    group.pairwise_papers = config.planted_pairwise_papers;
    data.disappearing.push_back(std::move(group));
  }

  // Backbone: one Chung–Lu collaboration structure; each edge appears in
  // era 1 and/or era 2 with correlated paper counts.
  ChungLuParams backbone_params;
  backbone_params.n = n;
  backbone_params.average_degree = config.backbone_average_degree;
  backbone_params.exponent = config.backbone_exponent;
  backbone_params.weight_geometric_p = 1.0;  // weights re-drawn below
  DCS_ASSIGN_OR_RETURN(Graph backbone, ChungLu(backbone_params, rng));

  GraphBuilder builder1(n);
  GraphBuilder builder2(n);
  for (VertexId u = 0; u < n; ++u) {
    for (const Neighbor& nb : backbone.NeighborsOf(u)) {
      if (u >= nb.to) continue;
      const double base_papers =
          1.0 + static_cast<double>(rng->Geometric(config.backbone_weight_p));
      bool in_era1 = rng->Bernoulli(0.75);
      bool in_era2 = in_era1 ? rng->Bernoulli(config.era_persistence)
                             : rng->Bernoulli(0.75);
      if (!in_era1 && !in_era2) in_era1 = true;  // every backbone edge exists
      if (in_era1) {
        const double jitter = static_cast<double>(rng->UniformInt(0, 1));
        DCS_RETURN_NOT_OK(builder1.AddEdge(u, nb.to, base_papers + jitter));
      }
      if (in_era2) {
        const double jitter = static_cast<double>(rng->UniformInt(0, 1));
        DCS_RETURN_NOT_OK(builder2.AddEdge(u, nb.to, base_papers + jitter));
      }
    }
  }

  // Planted groups: heavy clique in the hot era, light/no presence in the
  // cold era.
  for (const PlantedGroup& group : data.emerging) {
    DCS_RETURN_NOT_OK(AddGroupEra(&builder2, group,
                                  config.planted_pairwise_papers, rng));
    DCS_RETURN_NOT_OK(
        AddGroupEra(&builder1, group, config.planted_cold_papers, rng));
  }
  for (const PlantedGroup& group : data.disappearing) {
    DCS_RETURN_NOT_OK(AddGroupEra(&builder1, group,
                                  config.planted_pairwise_papers, rng));
    DCS_RETURN_NOT_OK(
        AddGroupEra(&builder2, group, config.planted_cold_papers, rng));
  }

  DCS_ASSIGN_OR_RETURN(data.g1, builder1.Build());
  DCS_ASSIGN_OR_RETURN(data.g2, builder2.Build());
  return data;
}

}  // namespace dcs
