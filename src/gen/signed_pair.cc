#include "gen/signed_pair.h"

#include <algorithm>

#include "gen/random_graphs.h"
#include "graph/graph_builder.h"

namespace dcs {
namespace {

// Exponential-ish positive magnitude with the given mean (geometric + 1 to
// stay strictly positive, like interaction counts).
double InteractionMagnitude(double mean, double cap, Rng* rng) {
  if (mean <= 1.0) return rng->Bernoulli(mean) ? 1.0 : 0.0;
  const double p = 1.0 / mean;
  const double magnitude = 1.0 + static_cast<double>(rng->Geometric(p));
  return std::min(magnitude, cap);
}

Status AddPlantedCommunity(GraphBuilder* pos_builder,
                           GraphBuilder* neg_builder,
                           const std::vector<VertexId>& members,
                           double edge_probability, double pos_mean,
                           double neg_mean, double cap, Rng* rng) {
  for (size_t i = 0; i < members.size(); ++i) {
    for (size_t j = i + 1; j < members.size(); ++j) {
      if (!rng->Bernoulli(edge_probability)) continue;
      const double pos = InteractionMagnitude(pos_mean, cap, rng);
      const double neg = InteractionMagnitude(neg_mean, cap, rng);
      if (pos > 0.0) {
        DCS_RETURN_NOT_OK(pos_builder->AddEdge(members[i], members[j], pos));
      }
      if (neg > 0.0) {
        DCS_RETURN_NOT_OK(neg_builder->AddEdge(members[i], members[j], neg));
      }
    }
  }
  return Status::OK();
}

}  // namespace

Result<SignedPairData> GenerateSignedPairData(const SignedPairConfig& config,
                                              Rng* rng) {
  const VertexId n = config.num_editors;
  const uint32_t planted_total =
      config.consistent_size + config.conflicting_size;
  if (planted_total > n) {
    return Status::InvalidArgument("planted communities exceed editor count");
  }

  SignedPairData data;
  std::vector<uint32_t> pool = rng->SampleWithoutReplacement(n, planted_total);
  data.consistent_group.assign(pool.begin(),
                               pool.begin() + config.consistent_size);
  data.conflicting_group.assign(pool.begin() + config.consistent_size,
                                pool.end());
  std::sort(data.consistent_group.begin(), data.consistent_group.end());
  std::sort(data.conflicting_group.begin(), data.conflicting_group.end());

  // Backbone: editors interacting on the same pages produce correlated
  // positive and negative weight on the same pairs.
  ChungLuParams backbone_params;
  backbone_params.n = n;
  backbone_params.average_degree = config.backbone_average_degree;
  backbone_params.exponent = config.backbone_exponent;
  DCS_ASSIGN_OR_RETURN(Graph backbone, ChungLu(backbone_params, rng));

  GraphBuilder pos_builder(n);
  GraphBuilder neg_builder(n);
  for (VertexId u = 0; u < n; ++u) {
    for (const Neighbor& nb : backbone.NeighborsOf(u)) {
      if (u >= nb.to) continue;
      const double pos = InteractionMagnitude(config.backbone_positive_mean,
                                              config.max_interaction, rng);
      const double neg = InteractionMagnitude(config.backbone_negative_mean,
                                              config.max_interaction, rng);
      if (pos > 0.0) DCS_RETURN_NOT_OK(pos_builder.AddEdge(u, nb.to, pos));
      if (neg > 0.0) DCS_RETURN_NOT_OK(neg_builder.AddEdge(u, nb.to, neg));
    }
  }

  DCS_RETURN_NOT_OK(AddPlantedCommunity(
      &pos_builder, &neg_builder, data.consistent_group,
      config.planted_edge_probability, config.planted_strong_mean,
      config.planted_weak_mean, config.max_interaction, rng));
  DCS_RETURN_NOT_OK(AddPlantedCommunity(
      &pos_builder, &neg_builder, data.conflicting_group,
      config.planted_edge_probability, config.planted_weak_mean,
      config.planted_strong_mean, config.max_interaction, rng));

  DCS_ASSIGN_OR_RETURN(data.positive, pos_builder.Build());
  DCS_ASSIGN_OR_RETURN(data.negative, neg_builder.Build());
  return data;
}

}  // namespace dcs
