// Two-era co-author network generator — synthetic analog of the paper's
// DBLP and DBLP-C datasets (§VI-B, §VI-D; substitution documented in
// DESIGN.md §3).
//
// Produces two collaboration graphs G1 (early era) and G2 (recent era) over
// the same authors:
//  * a heavy-tailed Chung–Lu backbone of collaborations whose per-era paper
//    counts are correlated (a stable edge appears in both eras with similar
//    weight), generating the ±noise bulk of the difference graph;
//  * planted *emerging* groups — cliques that collaborate heavily only in
//    era 2 (the "UTA Machine Learning"/"CMU Privacy & Security" analogs);
//  * planted *disappearing* groups — heavy only in era 1 (the "Japan
//    Robotics"/"Compiler & Software System" analogs).
// Ground truth is returned so benches can score recovery.

#ifndef DCS_GEN_COAUTHOR_H_
#define DCS_GEN_COAUTHOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace dcs {

/// One planted co-author group.
struct PlantedGroup {
  std::string name;                ///< label used in bench output
  std::vector<VertexId> members;
  double pairwise_papers = 0.0;    ///< mean per-pair papers in its hot era
};

/// Configuration of the co-author generator.
struct CoauthorConfig {
  VertexId num_authors = 20'000;
  /// Backbone degree / exponent (per era).
  double backbone_average_degree = 5.0;
  double backbone_exponent = 2.4;
  /// Per-pair paper count on backbone edges: 1 + Geometric(p).
  double backbone_weight_p = 0.6;
  /// Probability that a backbone collaboration persists into the other era.
  double era_persistence = 0.7;
  /// Sizes of the planted emerging groups (heavy in era 2 only).
  std::vector<uint32_t> emerging_sizes = {4, 7, 6};
  /// Sizes of the planted disappearing groups (heavy in era 1 only).
  std::vector<uint32_t> disappearing_sizes = {6, 2, 8};
  /// Mean per-pair papers inside a planted group during its hot era.
  double planted_pairwise_papers = 12.0;
  /// Mean per-pair papers of a planted group during its cold era.
  double planted_cold_papers = 1.0;
};

/// Output of the generator.
struct CoauthorData {
  Graph g1;  ///< early era collaborations
  Graph g2;  ///< recent era collaborations
  std::vector<PlantedGroup> emerging;
  std::vector<PlantedGroup> disappearing;
};

/// \brief Generates the two-era co-author data. Group members are disjoint
/// random author subsets. Fails if the config cannot be satisfied (e.g. more
/// planted members than authors).
Result<CoauthorData> GenerateCoauthorData(const CoauthorConfig& config,
                                          Rng* rng);

}  // namespace dcs

#endif  // DCS_GEN_COAUTHOR_H_
