// Signed interaction-pair generator — synthetic analog of the paper's
// wikiconflict dataset (§B-1 of the appendix; substitution documented in
// DESIGN.md §3).
//
// Produces a positive-interaction graph G1 and a negative-interaction graph
// G2 over the same editors:
//  * a shared Chung–Lu activity backbone — editors who touch the same pages
//    accumulate both positive and negative interaction weight;
//  * a planted *consistent* community (strong positive, weak negative) and a
//    planted *conflicting* community (edit wars: strong negative, weak
//    positive). The consistent DCS is mined from GD = G1 − G2, the
//    conflicting one from G2 − G1.

#ifndef DCS_GEN_SIGNED_PAIR_H_
#define DCS_GEN_SIGNED_PAIR_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace dcs {

/// Configuration of the signed-pair generator.
struct SignedPairConfig {
  VertexId num_editors = 20'000;
  double backbone_average_degree = 12.0;
  double backbone_exponent = 2.2;
  /// Mean interaction magnitudes on backbone edges.
  double backbone_positive_mean = 2.0;
  double backbone_negative_mean = 2.5;
  /// Planted community sizes.
  uint32_t consistent_size = 150;
  uint32_t conflicting_size = 90;
  /// Edge probability inside a planted community.
  double planted_edge_probability = 0.4;
  /// Dominant / recessive interaction means inside planted communities.
  double planted_strong_mean = 8.0;
  double planted_weak_mean = 0.6;
  /// Hard cap on any single interaction magnitude. Keeps one freak edit-war
  /// pair from dominating the affinity contrast (the §III-D heavy-edge
  /// adjustment, applied at generation time).
  double max_interaction = 10.0;
};

/// Output of the generator.
struct SignedPairData {
  Graph positive;  ///< G1: positive interactions
  Graph negative;  ///< G2: negative interactions
  std::vector<VertexId> consistent_group;
  std::vector<VertexId> conflicting_group;
};

/// \brief Generates the editor-interaction pair.
Result<SignedPairData> GenerateSignedPairData(const SignedPairConfig& config,
                                              Rng* rng);

}  // namespace dcs

#endif  // DCS_GEN_SIGNED_PAIR_H_
