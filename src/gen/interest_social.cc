#include "gen/interest_social.h"

#include <algorithm>

#include "gen/random_graphs.h"
#include "graph/graph_builder.h"

namespace dcs {

namespace {

// A clique-size roster with `base` cliques of size `min_size`, decaying
// towards a single clique of size `max_size` (the long tail Fig. 3 plots).
std::vector<uint32_t> DecayingCliqueSizes(uint32_t min_size,
                                          uint32_t max_size, uint32_t base) {
  std::vector<uint32_t> sizes;
  uint32_t count = base;
  for (uint32_t size = min_size; size <= max_size; ++size) {
    for (uint32_t c = 0; c < count; ++c) sizes.push_back(size);
    count = count > 1 ? (count * 2) / 3 : 1;
  }
  return sizes;
}

}  // namespace

InterestSocialConfig MovieLikeConfig() {
  InterestSocialConfig config;
  config.interest_density = 0.30;       // many users rate the same movies
  config.social_cluster_bias = 0.20;
  // The paper's Fig. 3 finding for Movie: the Social−Interest difference has
  // more and larger positive cliques — Douban friendships track movie taste.
  config.interest_only_cliques = DecayingCliqueSizes(6, 10, 6);
  config.social_only_cliques = DecayingCliqueSizes(6, 14, 12);
  return config;
}

InterestSocialConfig BookLikeConfig() {
  InterestSocialConfig config;
  config.interest_density = 0.16;       // book ratings are sparser
  config.social_cluster_bias = 0.20;
  // ...and the opposite for Book (Fig. 3b): reading circles are interest-
  // only structure.
  config.interest_only_cliques = DecayingCliqueSizes(6, 13, 11);
  config.social_only_cliques = DecayingCliqueSizes(6, 9, 5);
  return config;
}

Result<InterestSocialData> GenerateInterestSocialData(
    const InterestSocialConfig& config, Rng* rng) {
  const VertexId n = config.num_users;
  size_t planted_total = 0;
  for (uint32_t s : config.interest_only_cliques) planted_total += s;
  for (uint32_t s : config.social_only_cliques) planted_total += s;
  const size_t clustered_users =
      static_cast<size_t>(config.num_clusters) * config.cluster_size;
  if (clustered_users + planted_total > n) {
    return Status::InvalidArgument(
        "clusters + planted cliques exceed user count");
  }

  // Users [0, clustered_users) belong to clusters; planted cliques draw from
  // the remaining ids so they stay disjoint from cluster structure.
  InterestSocialData data;
  GraphBuilder social_builder(n);
  GraphBuilder interest_builder(n);

  // Cluster-internal structure: interest edges and biased friendships.
  for (uint32_t c = 0; c < config.num_clusters; ++c) {
    const VertexId base = static_cast<VertexId>(c) * config.cluster_size;
    for (uint32_t i = 0; i < config.cluster_size; ++i) {
      for (uint32_t j = i + 1; j < config.cluster_size; ++j) {
        const VertexId u = base + i;
        const VertexId v = base + j;
        if (rng->Bernoulli(config.interest_density)) {
          DCS_RETURN_NOT_OK(interest_builder.AddEdge(u, v, 1.0));
        }
        if (rng->Bernoulli(config.social_cluster_bias)) {
          DCS_RETURN_NOT_OK(social_builder.AddEdge(u, v, 1.0));
        }
      }
    }
  }

  // Social backbone across all users (unit weights; duplicates with the
  // biased intra-cluster edges accumulate to weight 2 — rare and harmless,
  // matching multi-context friendships).
  ChungLuParams backbone_params;
  backbone_params.n = n;
  backbone_params.average_degree = config.social_average_degree;
  backbone_params.exponent = config.social_exponent;
  DCS_ASSIGN_OR_RETURN(Graph backbone, ChungLu(backbone_params, rng));
  for (VertexId u = 0; u < n; ++u) {
    for (const Neighbor& nb : backbone.NeighborsOf(u)) {
      if (u < nb.to) {
        DCS_RETURN_NOT_OK(social_builder.AddEdge(u, nb.to, 1.0));
      }
    }
  }

  // Planted cliques from the reserved id range.
  VertexId next_reserved = static_cast<VertexId>(clustered_users);
  auto take_clique = [&](uint32_t size) {
    std::vector<VertexId> members(size);
    for (uint32_t i = 0; i < size; ++i) members[i] = next_reserved++;
    return members;
  };
  for (uint32_t size : config.interest_only_cliques) {
    std::vector<VertexId> members = take_clique(size);
    DCS_RETURN_NOT_OK(AddClique(&interest_builder, members, 1.0));
    data.interest_only_cliques.push_back(std::move(members));
  }
  for (uint32_t size : config.social_only_cliques) {
    std::vector<VertexId> members = take_clique(size);
    DCS_RETURN_NOT_OK(AddClique(&social_builder, members, 1.0));
    data.social_only_cliques.push_back(std::move(members));
  }

  DCS_ASSIGN_OR_RETURN(data.social, social_builder.Build());
  DCS_ASSIGN_OR_RETURN(data.interest, interest_builder.Build());
  return data;
}

}  // namespace dcs
