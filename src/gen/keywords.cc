#include "gen/keywords.h"

#include <algorithm>
#include <unordered_map>

#include "graph/graph_builder.h"
#include "util/logging.h"

namespace dcs {
namespace {

// Sparse pair-count accumulator keyed by (min_id << 32 | max_id).
using PairCounts = std::unordered_map<uint64_t, uint32_t>;

void CountPairs(const std::vector<VertexId>& title_words, PairCounts* counts) {
  for (size_t i = 0; i < title_words.size(); ++i) {
    for (size_t j = i + 1; j < title_words.size(); ++j) {
      VertexId a = title_words[i], b = title_words[j];
      if (a == b) continue;
      if (a > b) std::swap(a, b);
      const uint64_t key = (static_cast<uint64_t>(a) << 32) | b;
      ++(*counts)[key];
    }
  }
}

Result<Graph> CountsToGraph(const PairCounts& counts, VertexId n,
                            uint32_t num_titles) {
  GraphBuilder builder(n);
  const double per_title = 100.0 / static_cast<double>(num_titles);
  for (const auto& [key, count] : counts) {
    const VertexId a = static_cast<VertexId>(key >> 32);
    const VertexId b = static_cast<VertexId>(key & 0xFFFFFFFFull);
    DCS_RETURN_NOT_OK(
        builder.AddEdge(a, b, per_title * static_cast<double>(count)));
  }
  return builder.Build();
}

}  // namespace

std::vector<Topic> DefaultDataMiningTopics() {
  auto topic = [](std::string label, std::vector<std::string> kws,
                  TopicTrend trend, double popularity) {
    Topic t;
    t.label = std::move(label);
    t.keywords = std::move(kws);
    t.trend = trend;
    t.popularity = popularity;
    return t;
  };
  return {
      // Emerging topics (Table V, left column).
      topic("social networks", {"social", "networks"}, TopicTrend::kEmerging,
            5.0),
      topic("large scale", {"large", "scale"}, TopicTrend::kEmerging, 3.6),
      topic("matrix factorization", {"matrix", "factorization"},
            TopicTrend::kEmerging, 3.2),
      topic("semi-supervised learning", {"semi", "supervised", "learning"},
            TopicTrend::kEmerging, 2.8),
      topic("unsupervised feature selection",
            {"unsupervised", "feature", "selection"}, TopicTrend::kEmerging,
            2.4),
      // Disappearing topics (Table V, right column).
      topic("association rules", {"mining", "association", "rules"},
            TopicTrend::kDisappearing, 5.0),
      topic("knowledge discovery", {"knowledge", "discovery"},
            TopicTrend::kDisappearing, 3.6),
      topic("support vector machines", {"support", "vector", "machines"},
            TopicTrend::kDisappearing, 3.2),
      topic("inductive logic programming", {"logic", "inductive", "programming"},
            TopicTrend::kDisappearing, 2.8),
      topic("intrusion detection", {"intrusion", "detection"},
            TopicTrend::kDisappearing, 2.4),
      // Stable distractors (Table VI: hot in both eras, hence *not* DCS).
      topic("time series", {"time", "series"}, TopicTrend::kStable, 6.0),
      topic("feature selection", {"feature", "selection"}, TopicTrend::kStable,
            4.0),
      topic("decision trees", {"decision", "trees"}, TopicTrend::kStable, 2.5),
      topic("nearest neighbor", {"nearest", "neighbor"}, TopicTrend::kStable,
            2.0),
      topic("clustering", {"clustering", "algorithms"}, TopicTrend::kStable,
            1.8),
  };
}

Result<KeywordData> GenerateKeywordData(const KeywordConfig& config,
                                        Rng* rng) {
  if (config.titles_per_era == 0) {
    return Status::InvalidArgument("titles_per_era must be >= 1");
  }
  KeywordData data;
  data.topics = config.topics.empty() ? DefaultDataMiningTopics() : config.topics;

  // Assign vertex ids: planted keywords first (deduplicated), then noise.
  std::unordered_map<std::string, VertexId> word_id;
  for (const Topic& t : data.topics) {
    if (t.keywords.size() < 2) {
      return Status::InvalidArgument("topic '" + t.label +
                                     "' needs >= 2 keywords");
    }
    for (const std::string& kw : t.keywords) {
      if (!word_id.contains(kw)) {
        const VertexId id = static_cast<VertexId>(data.vocabulary.size());
        word_id[kw] = id;
        data.vocabulary.push_back(kw);
      }
    }
  }
  const VertexId first_noise_id = static_cast<VertexId>(data.vocabulary.size());
  for (uint32_t i = 0; i < config.noise_vocabulary; ++i) {
    data.vocabulary.push_back("kw" + std::to_string(i));
  }
  const VertexId n = static_cast<VertexId>(data.vocabulary.size());
  for (const Topic& t : data.topics) {
    std::vector<VertexId> members;
    for (const std::string& kw : t.keywords) members.push_back(word_id[kw]);
    std::sort(members.begin(), members.end());
    data.topic_members.push_back(std::move(members));
  }

  // Per-era topic sampling weights.
  auto era_weight = [&](const Topic& t, int era) {
    const bool hot = t.trend == TopicTrend::kStable ||
                     (era == 1 && t.trend == TopicTrend::kDisappearing) ||
                     (era == 2 && t.trend == TopicTrend::kEmerging);
    return hot ? t.popularity : t.popularity * config.cold_popularity_fraction;
  };

  for (int era = 1; era <= 2; ++era) {
    std::vector<double> cumulative;
    double total = 0.0;
    for (const Topic& t : data.topics) {
      total += era_weight(t, era);
      cumulative.push_back(total);
    }
    PairCounts counts;
    std::vector<VertexId> title;
    for (uint32_t i = 0; i < config.titles_per_era; ++i) {
      title.clear();
      if (!rng->Bernoulli(config.topicless_fraction)) {
        const double pick = rng->Uniform(0.0, total);
        const size_t idx = static_cast<size_t>(
            std::lower_bound(cumulative.begin(), cumulative.end(), pick) -
            cumulative.begin());
        for (VertexId v : data.topic_members[std::min(
                 idx, data.topic_members.size() - 1)]) {
          title.push_back(v);
        }
      }
      for (uint32_t w = 0; w < config.noise_words_per_title; ++w) {
        if (config.noise_vocabulary <= config.num_stop_words) break;
        // Sample a Zipf rank and discard the top ranks (stop words): the
        // remaining ranks keep their relative frequencies.
        const VertexId rank = static_cast<VertexId>(
            rng->Zipf(config.noise_vocabulary, config.noise_zipf_exponent));
        if (rank < config.num_stop_words) continue;  // stop word removed
        title.push_back(first_noise_id + rank);
      }
      CountPairs(title, &counts);
    }
    DCS_ASSIGN_OR_RETURN(Graph g, CountsToGraph(counts, n,
                                                config.titles_per_era));
    if (era == 1) {
      data.g1 = std::move(g);
    } else {
      data.g2 = std::move(g);
    }
  }
  return data;
}

}  // namespace dcs
