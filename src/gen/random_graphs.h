// Elementary random-graph generators (substrate for the dataset generators
// and for test/benchmark sweeps).
//
// All generators are deterministic functions of the caller-supplied Rng.

#ifndef DCS_GEN_RANDOM_GRAPHS_H_
#define DCS_GEN_RANDOM_GRAPHS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "util/rng.h"
#include "util/status.h"

namespace dcs {

/// \brief G(n, p) with unit edge weights.
Result<Graph> ErdosRenyi(VertexId n, double p, Rng* rng);

/// \brief G(n, p) with edge weights uniform in [weight_lo, weight_hi].
Result<Graph> ErdosRenyiWeighted(VertexId n, double p, double weight_lo,
                                 double weight_hi, Rng* rng);

/// Parameters of a Chung–Lu power-law graph.
struct ChungLuParams {
  VertexId n = 1000;
  /// Target average (unweighted) degree.
  double average_degree = 8.0;
  /// Degree-distribution exponent (typical social graphs: 2–3).
  double exponent = 2.5;
  /// Edge weights are drawn as 1 + Geometric(weight_geometric_p); set
  /// weight_geometric_p = 1 for unit weights.
  double weight_geometric_p = 1.0;
};

/// \brief Chung–Lu model: P(u~v) ≈ min(1, θ_u·θ_v/Σθ) with θ following a
/// power law. Uses the Miller–Hagberg skip-sampling, O(n + m) in expectation.
Result<Graph> ChungLu(const ChungLuParams& params, Rng* rng);

/// \brief Adds a uniformly weighted clique over `members` to `builder`
/// (weights accumulate with whatever is already queued).
Status AddClique(GraphBuilder* builder, std::span<const VertexId> members,
                 double weight);

/// \brief Adds a clique whose per-edge weights are drawn uniformly from
/// [weight_lo, weight_hi].
Status AddCliqueUniform(GraphBuilder* builder,
                        std::span<const VertexId> members, double weight_lo,
                        double weight_hi, Rng* rng);

/// \brief A graph with exactly ~m random edges whose weights are positive
/// with probability `positive_fraction` (magnitudes uniform in
/// [magnitude_lo, magnitude_hi]) — a generic signed difference graph.
Result<Graph> RandomSignedGraph(VertexId n, size_t m, double positive_fraction,
                                double magnitude_lo, double magnitude_hi,
                                Rng* rng);

}  // namespace dcs

#endif  // DCS_GEN_RANDOM_GRAPHS_H_
