// Interest-vs-social network-pair generator — synthetic analog of the
// paper's Douban Movie/Book experiments (§B-2 of the appendix; substitution
// documented in DESIGN.md §3).
//
// Produces a social graph G1 and an interest-similarity graph G2 over the
// same users, both uniformly weighted (weight 1) like the paper's Douban
// construction:
//  * users belong to latent taste clusters; interest edges connect users of
//    a cluster with probability `interest_density`;
//  * social edges follow a Chung–Lu backbone plus intra-cluster friendship
//    bias (`social_cluster_bias`) — interest and social structure overlap
//    but do not coincide;
//  * planted interest-only cliques (high interest, no friendship) and
//    social-only cliques give the Interest−Social and Social−Interest
//    difference graphs unambiguous positive cliques — the structures Fig. 3
//    counts.
// A "movie-like" profile has denser interest similarity than a "book-like"
// profile (the paper's Movie vs Book contrast).

#ifndef DCS_GEN_INTEREST_SOCIAL_H_
#define DCS_GEN_INTEREST_SOCIAL_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace dcs {

/// Configuration of the interest/social generator.
struct InterestSocialConfig {
  VertexId num_users = 15'000;
  /// Latent taste clusters. (Cluster size 30 with densities ≤ ~0.3 keeps
  /// *incidental* 6-cliques inside clusters rare, so the Fig. 3 clique
  /// census is dominated by the planted structure.)
  uint32_t num_clusters = 120;
  uint32_t cluster_size = 30;
  /// Edge probability among same-cluster users in the interest graph.
  double interest_density = 0.30;
  /// Extra probability of friendship among same-cluster users.
  double social_cluster_bias = 0.18;
  /// Social backbone.
  double social_average_degree = 9.0;
  double social_exponent = 2.3;
  /// Planted cliques present only in the interest graph / only in the
  /// social graph (sizes).
  std::vector<uint32_t> interest_only_cliques = {12, 10, 9};
  std::vector<uint32_t> social_only_cliques = {11, 9};
};

/// Canned profiles mirroring the paper's two interests.
InterestSocialConfig MovieLikeConfig();
InterestSocialConfig BookLikeConfig();

/// Output of the generator.
struct InterestSocialData {
  Graph social;    ///< G1 (unit weights)
  Graph interest;  ///< G2 (unit weights)
  std::vector<std::vector<VertexId>> interest_only_cliques;
  std::vector<std::vector<VertexId>> social_only_cliques;
};

/// \brief Generates the user pair of graphs.
Result<InterestSocialData> GenerateInterestSocialData(
    const InterestSocialConfig& config, Rng* rng);

}  // namespace dcs

#endif  // DCS_GEN_INTEREST_SOCIAL_H_
