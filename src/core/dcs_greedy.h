// DCSGreedy (Algorithm 2) — the O(n)-approximation for DCSAD (§IV-B).
//
// DCSAD (max_S W_D(S)/|S| on a signed difference graph) is NP-hard and
// O(n^{1−ε})-inapproximable (Theorem 1, Corollary 1), so DCSGreedy assembles
// three cheap candidates and keeps the best:
//   1. the heaviest single edge {u,v}  — a 1/(n−1)-optimal fallback,
//   2. Greedy peel of GD,
//   3. Greedy peel of GD+,
// then, if the winner is disconnected in GD, its best-density connected
// component (Property 1). It also reports the data-dependent ratio
// β = 2·ρ_{D+}(S2)/ρ_D(S) of Theorem 2: the optimum is provably ≤ β·ρ_D(S).

#ifndef DCS_CORE_DCS_GREEDY_H_
#define DCS_CORE_DCS_GREEDY_H_

#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace dcs {

/// Outcome of DCSGreedy.
struct DcsadResult {
  /// The contrast subgraph (non-empty; a singleton when GD has no positive
  /// edge).
  std::vector<VertexId> subset;
  /// ρ_D(subset) = W_D(subset)/|subset| (Table I doubled convention).
  double density = 0.0;
  /// Data-dependent approximation ratio β of Theorem 2 (>= 1 whenever
  /// density > 0; 1 exactly when GD has no positive edge).
  double ratio_bound = 1.0;
  /// Densities of the three candidates, for diagnostics / tests:
  /// [heaviest edge, Greedy(GD), Greedy(GD+)] evaluated under ρ_D.
  double candidate_densities[3] = {0.0, 0.0, 0.0};
  /// True iff the winning candidate was replaced by one of its connected
  /// components (Algorithm 2, lines 8–9).
  bool component_refined = false;
};

/// \brief Runs Algorithm 2 on a prebuilt difference graph GD.
///
/// Accepts any signed weighted graph (§III-D generalization). Fails only on
/// an empty vertex set.
Result<DcsadResult> RunDcsGreedy(const Graph& gd);

/// \brief Convenience overload: builds GD = G2 − G1 first.
Result<DcsadResult> RunDcsGreedy(const Graph& g1, const Graph& g2);

}  // namespace dcs

#endif  // DCS_CORE_DCS_GREEDY_H_
