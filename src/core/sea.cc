#include "core/sea.h"

#include "core/expansion.h"

namespace dcs {

SeaRunStats RunSeaInPlace(AffinityState* state, const SeaOptions& options) {
  SeaRunStats stats;
  while (stats.rounds < options.max_rounds) {
    ++stats.rounds;
    const ReplicatorStats shrink = ReplicatorShrink(state, options.replicator);
    stats.replicator_sweeps += shrink.sweeps;
    // Faithful to the published SEA: Z = {i ∈ V : ∇_i f > λ} may intersect
    // the support when the loose shrink test stopped short of a local KKT
    // point — the mechanism behind the baseline's expansion errors.
    const ExpansionResult expansion =
        SeaExpand(state, /*margin=*/1e-9, /*include_support=*/true);
    if (!expansion.expanded) {
      stats.converged = true;
      break;
    }
    // The expansion derivation assumes a local KKT point; the loose
    // replicator stopping rule sometimes hands it less than that, in which
    // case the "ascent" direction can point downhill.
    if (expansion.f_after < expansion.f_before - 1e-12) {
      ++stats.expansion_errors;
    }
  }
  stats.affinity = state->Affinity();
  return stats;
}

Result<SeaRunResult> RunSea(const Graph& gd_plus, const Embedding& x0,
                            const SeaOptions& options) {
  for (VertexId u = 0; u < gd_plus.NumVertices(); ++u) {
    for (const Neighbor& nb : gd_plus.NeighborsOf(u)) {
      if (nb.weight < 0.0) {
        return Status::InvalidArgument(
            "RunSea requires non-negative weights (run on GD+)");
      }
    }
  }
  AffinityState state(gd_plus);
  DCS_RETURN_NOT_OK(state.ResetToEmbedding(x0));
  const SeaRunStats stats = RunSeaInPlace(&state, options);
  SeaRunResult result;
  result.x = state.ToEmbedding();
  result.affinity = stats.affinity;
  result.rounds = stats.rounds;
  result.replicator_sweeps = stats.replicator_sweeps;
  result.expansion_errors = stats.expansion_errors;
  result.converged = stats.converged;
  return result;
}

}  // namespace dcs
