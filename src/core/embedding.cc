#include "core/embedding.h"

#include <algorithm>
#include <cmath>

#include "core/kernels.h"
#include "util/logging.h"

namespace dcs {

Embedding Embedding::UnitVector(VertexId n, VertexId u) {
  DCS_CHECK(u < n);
  Embedding e = Zeros(n);
  e.x[u] = 1.0;
  return e;
}

Embedding Embedding::UniformOn(VertexId n, std::span<const VertexId> members) {
  DCS_CHECK(!members.empty());
  Embedding e = Zeros(n);
  const double share = 1.0 / static_cast<double>(members.size());
  for (VertexId v : members) {
    DCS_CHECK(v < n);
    e.x[v] = share;
  }
  return e;
}

std::vector<VertexId> Embedding::Support() const {
  // Count first so the result is allocated exactly once; supports are tiny
  // next to n, so the default doubling growth wasted both space and copies.
  size_t count = 0;
  for (VertexId v = 0; v < size(); ++v) count += x[v] > 0.0 ? 1 : 0;
  std::vector<VertexId> support;
  support.reserve(count);
  for (VertexId v = 0; v < size(); ++v) {
    if (x[v] > 0.0) support.push_back(v);
  }
  return support;
}

double Embedding::Affinity(const Graph& graph) const {
  DCS_CHECK(graph.NumVertices() == size());
  double f = 0.0;
  for (VertexId u = 0; u < size(); ++u) {
    if (x[u] <= 0.0) continue;
    double row = 0.0;
    for (const Neighbor& nb : graph.NeighborsOf(u)) row += nb.weight * x[nb.to];
    f += x[u] * row;
  }
  return f;
}

double Embedding::Sum() const {
  double total = 0.0;
  for (double v : x) total += v;
  return total;
}

bool Embedding::IsOnSimplex(double eps) const {
  for (double v : x) {
    if (v < 0.0) return false;
  }
  return std::fabs(Sum() - 1.0) <= eps;
}

AffinityState::AffinityState(const Graph& graph)
    : graph_(&graph),
      x_(graph.NumVertices(), 0.0),
      dx_(graph.NumVertices(), 0.0),
      support_pos_(graph.NumVertices(), kNotInSupport),
      in_ever_support_(graph.NumVertices(), 0),
      renorm_seen_(graph.NumVertices(), 0) {
  adj_offsets_.reserve(graph.NumVertices() + size_t{1});
  adj_offsets_.push_back(0);
  StageAdjacencySoa(graph, &adj_targets_, &adj_weights_);
  for (VertexId u = 0; u < graph.NumVertices(); ++u) {
    adj_offsets_.push_back(adj_offsets_.back() + graph.Degree(u));
  }
}

void AffinityState::ResetToVertex(VertexId u) {
  DCS_CHECK(u < NumVertices());
  // Clear the sparse residue of the previous run. Iterating the vertices
  // that *ever* held mass — not just the final support — wipes every dx
  // entry the run touched, including last-ulp cancellation residue at
  // neighbors of vertices that left the support mid-run.
  for (VertexId v : ever_support_) {
    for (VertexId t : StagedTargets(v)) dx_[t] = 0.0;
    x_[v] = 0.0;
    support_pos_[v] = kNotInSupport;
    in_ever_support_[v] = 0;
  }
  ever_support_.clear();
  support_.clear();
  SetX(u, 1.0);
}

Status AffinityState::ResetToEmbedding(const Embedding& embedding) {
  if (embedding.size() != NumVertices()) {
    return Status::InvalidArgument("embedding size mismatch");
  }
  if (!embedding.IsOnSimplex()) {
    return Status::InvalidArgument("embedding is not on the simplex");
  }
  ResetToVertex(0);
  SetX(0, 0.0);
  for (VertexId v = 0; v < NumVertices(); ++v) {
    if (embedding.x[v] > 0.0) SetX(v, embedding.x[v]);
  }
  return Status::OK();
}

double AffinityState::Affinity() const {
  return SupportReduce(support_.data(), support_.size(), x_.data(), dx_.data(),
                       /*allow_reassociation=*/fast_math_);
}

void AffinityState::AddToSupport(VertexId v) {
  if (support_pos_[v] != kNotInSupport) return;
  support_pos_[v] = static_cast<uint32_t>(support_.size());
  support_.push_back(v);
  if (!in_ever_support_[v]) {
    in_ever_support_[v] = 1;
    ever_support_.push_back(v);
  }
}

void AffinityState::RemoveFromSupport(VertexId v) {
  const uint32_t pos = support_pos_[v];
  if (pos == kNotInSupport) return;
  const VertexId last = support_.back();
  support_[pos] = last;
  support_pos_[last] = pos;
  support_.pop_back();
  support_pos_[v] = kNotInSupport;
}

void AffinityState::SetX(VertexId v, double value) {
  DCS_CHECK(v < NumVertices());
  DCS_CHECK(value >= 0.0) << "negative embedding entry " << value
                          << " at vertex " << v;
  const double delta = value - x_[v];
  if (delta == 0.0) {
    return;
  }
  x_[v] = value;
  if (value > 0.0) {
    AddToSupport(v);
  } else {
    RemoveFromSupport(v);
  }
  const auto targets = StagedTargets(v);
  AxpyScatter(targets.data(), StagedWeights(v), targets.size(), delta,
              dx_.data());
}

void AffinityState::Renormalize() {
  double total = 0.0;
  for (VertexId v : support_) total += x_[v];
  if (total <= 0.0 || total == 1.0) return;
  const double inv = 1.0 / total;
  for (VertexId v : support_) x_[v] *= inv;
  // dx[w] = Σ_{v in support} w(v,w)·x_v is linear in x, so the same uniform
  // rescale applies; only entries adjacent to the support are non-zero. The
  // visited set is an epoch stamp, not a fresh O(n) allocation — Renormalize
  // runs once per Expand step, and the allocation dominated it on large n.
  const uint64_t epoch = ++renorm_epoch_;
  for (VertexId v : support_) {
    for (VertexId t : StagedTargets(v)) {
      if (renorm_seen_[t] != epoch) {
        renorm_seen_[t] = epoch;
        dx_[t] *= inv;
      }
    }
  }
}

double AffinityState::StagedEdgeWeight(VertexId u, VertexId v) const {
  const auto targets = StagedTargets(u);
  return StagedRowLookup(targets.data(), StagedWeights(u), targets.size(), v);
}

Embedding AffinityState::ToEmbedding() const {
  Embedding e = Embedding::Zeros(NumVertices());
  e.x = x_;
  return e;
}

bool AffinityState::ComputeExtremes(std::span<const VertexId> candidates,
                                    GradientExtremes* out) const {
  GradExtremes ext;
  if (!ScanGradientExtremes(candidates.data(), candidates.size(), x_.data(),
                            dx_.data(), &ext)) {
    return false;
  }
  out->argmax = ext.argmax;
  out->argmin = ext.argmin;
  out->max_grad = ext.max_grad;
  out->min_grad = ext.min_grad;
  return true;
}

}  // namespace dcs
