#include "core/seacd.h"

#include <vector>

#include "core/expansion.h"

namespace dcs {

SeacdRunStats RunSeacdInPlace(AffinityState* state,
                              const SeacdOptions& options) {
  SeacdRunStats stats;
  std::vector<VertexId> working_set(state->support().begin(),
                                    state->support().end());
  while (stats.rounds < options.max_rounds) {
    ++stats.rounds;
    // Shrink: local KKT point on the working set.
    const CoordinateDescentStats cd =
        DescendToLocalKkt(state, working_set, options.descent);
    stats.cd_iterations += cd.iterations;
    // Expand: inject all vertices with gradient above λ.
    const ExpansionResult expansion = SeaExpand(state);
    if (!expansion.expanded) {
      stats.converged = true;
      break;
    }
    working_set.assign(state->support().begin(), state->support().end());
  }
  stats.affinity = state->Affinity();
  return stats;
}

Result<SeacdResult> RunSeacd(const Graph& graph, const Embedding& x0,
                             const SeacdOptions& options) {
  AffinityState state(graph);
  DCS_RETURN_NOT_OK(state.ResetToEmbedding(x0));
  const SeacdRunStats stats = RunSeacdInPlace(&state, options);
  SeacdResult result;
  result.x = state.ToEmbedding();
  result.affinity = stats.affinity;
  result.rounds = stats.rounds;
  result.cd_iterations = stats.cd_iterations;
  result.converged = stats.converged;
  return result;
}

Result<SeacdResult> RunSeacdFromVertex(const Graph& graph, VertexId seed,
                                       const SeacdOptions& options) {
  if (seed >= graph.NumVertices()) {
    return Status::OutOfRange("seed vertex out of range");
  }
  return RunSeacd(graph, Embedding::UnitVector(graph.NumVertices(), seed),
                  options);
}

}  // namespace dcs
