// Subgraph embeddings on the standard simplex (§III-A of the paper) and the
// incremental state shared by every DCSGA solver.
//
// A subgraph embedding x ∈ Δn assigns each vertex a participation weight;
// its support Sx = {u : x_u > 0} is the subgraph it denotes, and its graph
// affinity is f(x) = xᵀDx. All DCSGA algorithms in libdcs (2-coordinate
// descent, SEA expansion, replicator dynamics, refinement) mutate an
// embedding while maintaining the product Dx incrementally; AffinityState
// owns that bookkeeping so each algorithm stays small and O(deg) per step.

#ifndef DCS_CORE_EMBEDDING_H_
#define DCS_CORE_EMBEDDING_H_

#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace dcs {

/// \brief A point of the standard simplex Δn, stored densely.
struct Embedding {
  std::vector<double> x;

  /// Embedding of n zeros (not on the simplex until initialized).
  static Embedding Zeros(VertexId n) { return Embedding{std::vector<double>(n, 0.0)}; }

  /// The unit vector e_u.
  static Embedding UnitVector(VertexId n, VertexId u);

  /// Uniform distribution over `members`.
  static Embedding UniformOn(VertexId n, std::span<const VertexId> members);

  VertexId size() const { return static_cast<VertexId>(x.size()); }

  /// Sx = {u : x_u > 0}, ascending.
  std::vector<VertexId> Support() const;

  /// f(x) = xᵀDx for the given graph (O(sum of support degrees)).
  double Affinity(const Graph& graph) const;

  /// Σ x_u (should be 1 on the simplex).
  double Sum() const;

  /// True iff x is on the simplex up to `eps`: entries >= 0, sum within eps
  /// of 1.
  bool IsOnSimplex(double eps = 1e-6) const;
};

/// \brief Mutable embedding + cached products for fast local moves.
///
/// Maintains, for the current x over graph D:
///   dx[v]   = (Dx)_v           for every vertex v,
///   support = {v : x_v > 0},
///   f       = xᵀDx.
/// Every mutation updates dx only along the edges of the vertices whose x
/// changed. Gradient convention: ∇_v f = 2(Dx)_v; KKT multiplier λ = 2f.
///
/// Construction stages the adjacency into structure-of-arrays form (dense
/// u32 target / f64 weight streams instead of the 16-byte Neighbor AoS) so
/// the per-move hot loops run through core/kernels.h. The default kernels
/// are bit-identical to the scalar loops they replaced; setting
/// set_fast_math(true) additionally permits reassociated reduction kernels
/// in Affinity() (opt-in via DcsgaOptions::fast_math, still deterministic
/// for a fixed support sequence, but no longer bit-identical to the ordered
/// scalar sum).
class AffinityState {
 public:
  /// Starts from the all-zeros embedding.
  explicit AffinityState(const Graph& graph);

  /// Resets to x = e_u.
  void ResetToVertex(VertexId u);

  /// Resets to an arbitrary embedding (validated: non-negative entries, sum
  /// within 1e-6 of 1).
  Status ResetToEmbedding(const Embedding& embedding);

  const Graph& graph() const { return *graph_; }
  VertexId NumVertices() const { return graph_->NumVertices(); }

  double x(VertexId v) const { return x_[v]; }
  /// (Dx)_v — half the partial derivative of f at v.
  double dx(VertexId v) const { return dx_[v]; }
  /// Current objective f(x) = xᵀDx, recomputed from the support (exact up to
  /// the usual floating-point roundoff; O(|support|)).
  double Affinity() const;

  /// Current support (ascending order not guaranteed; no duplicates).
  std::span<const VertexId> support() const { return support_; }

  /// Sets x_v to `value` (>= 0) and updates dx along v's edges. O(deg v).
  void SetX(VertexId v, double value);

  /// Rescales x to sum exactly 1 (counters drift after long runs). No-op on
  /// an all-zero state. Allocation-free: the per-call visited set is an
  /// epoch-stamped scratch buffer owned by the state.
  void Renormalize();

  /// Copies the current x into an Embedding.
  Embedding ToEmbedding() const;

  /// Largest ∇ over {k in S : x_k < 1} and smallest ∇ over {k in S: x_k > 0};
  /// used for KKT checks and pair selection. Returns false if either set is
  /// empty.
  struct GradientExtremes {
    VertexId argmax = 0;
    VertexId argmin = 0;
    double max_grad = 0.0;  // ∇ = 2·dx
    double min_grad = 0.0;
  };
  bool ComputeExtremes(std::span<const VertexId> candidates,
                       GradientExtremes* out) const;

  /// Permit reassociating reduction kernels in Affinity(). Default off; the
  /// solvers plumb DcsgaOptions::fast_math through here.
  void set_fast_math(bool enabled) { fast_math_ = enabled; }
  bool fast_math() const { return fast_math_; }

  /// Weight of edge {u,v} from the staged adjacency — same result as
  /// Graph::EdgeWeight(u, v) (0.0 when absent) without the AoS stride.
  double StagedEdgeWeight(VertexId u, VertexId v) const;

 private:
  void AddToSupport(VertexId v);
  void RemoveFromSupport(VertexId v);

  // Row slice [adj_offsets_[v], adj_offsets_[v+1]) of the staged SoA
  // adjacency (same entries and order as graph_->NeighborsOf(v)).
  std::span<const VertexId> StagedTargets(VertexId v) const {
    return {adj_targets_.data() + adj_offsets_[v],
            adj_targets_.data() + adj_offsets_[v + 1]};
  }
  const double* StagedWeights(VertexId v) const {
    return adj_weights_.data() + adj_offsets_[v];
  }

  const Graph* graph_;
  // SoA copy of the CSR adjacency (core/kernels.h StageAdjacencySoa): the
  // SetX/Renormalize/reset loops stream targets and weights at full
  // cache-line density instead of striding the 16-byte Neighbor records.
  std::vector<size_t> adj_offsets_;
  std::vector<VertexId> adj_targets_;
  std::vector<double> adj_weights_;
  std::vector<double> x_;
  std::vector<double> dx_;
  std::vector<VertexId> support_;
  std::vector<uint32_t> support_pos_;  // index into support_, or kNotInSupport
  // Every vertex that entered the support since the last reset. dx can be
  // non-zero only on the closed neighborhoods of these vertices, so zeroing
  // exactly that set on reset restores dx ≡ 0 bit-for-bit: after a reset the
  // state is indistinguishable from a freshly constructed one, and every run
  // from a seed is a pure function of (graph, seed) no matter which runs the
  // state hosted before. The NewSEA shard workers rely on this purity for
  // their bit-identical-to-sequential guarantee.
  std::vector<VertexId> ever_support_;
  std::vector<char> in_ever_support_;
  // Epoch-stamped scratch for Renormalize's visited set (no O(n) clears).
  std::vector<uint64_t> renorm_seen_;
  uint64_t renorm_epoch_ = 0;
  bool fast_math_ = false;
  static constexpr uint32_t kNotInSupport = static_cast<uint32_t>(-1);
};

}  // namespace dcs

#endif  // DCS_CORE_EMBEDDING_H_
