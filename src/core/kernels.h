// The measured kernel layer: SIMD + memory-layout implementations of the
// hot loops every DCSGA solve runs — difference-graph row merge, discretize
// map, GD+ clamp sweep, dx (affinity) accumulation, gradient-extremes scan
// and the support reduction — behind one runtime ISA dispatcher.
//
// Exactness contract (the ROADMAP float-reassociation rule):
//  * Every kernel's default path is *bit-identical* to the scalar reference
//    it replaced, on every ISA and at every thread count. Elementwise work
//    (compare/select discretize, min-clamp, per-edge multiplies, the
//    strict-first-wins extremes scan) vectorizes exactly; anything that
//    would reassociate a floating-point sum does not vectorize by default.
//  * Reassociating variants exist only for the reductions and only behind
//    an explicit opt-in (DcsgaOptions::fast_math / SessionOptions::
//    fast_math, default off), with their own tolerance tests.
//  * No FMA contraction anywhere: the SIMD paths use explicit mul/add
//    intrinsics and the build sets -ffp-contract=off, so -DDCS_NATIVE
//    cannot silently fuse the scalar reference either.
//
// Dispatch: AVX2 variants are compiled with per-function target attributes
// (no global -mavx2 needed) and selected at runtime via CPUID; tests and
// benches can pin the ISA with ForceKernelIsa. The -DDCS_NATIVE CMake
// toggle additionally compiles the whole library with -march=native.
//
// Counters: every kernel bumps thread-local work counters (aggregated
// process-wide by KernelCountersSnapshot) that the api/ layer surfaces as
// MiningTelemetry kernel fields. Telemetry only — never part of a result.

#ifndef DCS_CORE_KERNELS_H_
#define DCS_CORE_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/difference.h"
#include "graph/graph.h"
#include "util/status.h"

namespace dcs {

/// Instruction set a kernel call executes with.
enum class KernelIsa : uint8_t {
  kScalar = 0,  ///< portable reference path (also the bit-identity oracle)
  kAvx2 = 1,    ///< AVX2 vector path (x86-64 with runtime CPUID support)
};

/// "scalar" or "avx2".
const char* KernelIsaName(KernelIsa isa);

/// True iff this process's CPU can execute the AVX2 variants.
bool KernelCpuHasAvx2();

/// The ISA kernel calls currently dispatch to: the forced override when one
/// is set, otherwise the best ISA the CPU supports.
KernelIsa ActiveKernelIsa();

/// \brief Pins dispatch to `isa` for the whole process — the tests/bench
/// override that makes "scalar vs vectorized" directly comparable. Checks
/// that the CPU supports the requested ISA.
void ForceKernelIsa(KernelIsa isa);

/// Returns dispatch to automatic CPU detection.
void ResetForcedKernelIsa();

/// \brief Process-lifetime kernel work counters, summed over all threads.
///
/// Element counts tally the work each kernel family processed; the
/// avx2_calls / scalar_calls pair splits kernel invocations by the ISA that
/// served them. Monotone; sample before/after a region to attribute work.
struct KernelCounters {
  uint64_t difference_rows = 0;      ///< rows merged by the difference build
  uint64_t discretize_elements = 0;  ///< weights pushed through the map
  uint64_t clamp_elements = 0;       ///< weights pushed through the clamp
  uint64_t axpy_elements = 0;        ///< edge visits in dx accumulation
  uint64_t extremes_scans = 0;       ///< gradient-extremes scans
  uint64_t support_reductions = 0;   ///< support-sum reductions
  uint64_t staged_lookups = 0;       ///< staged-row edge-weight lookups
  uint64_t avx2_calls = 0;           ///< kernel calls served by AVX2 code
  uint64_t scalar_calls = 0;         ///< kernel calls served by scalar code
};

/// Sums the per-thread counter blocks (live threads + exited ones).
KernelCounters KernelCountersSnapshot();

/// \brief Structure-of-arrays staging of a CSR adjacency: `targets` and
/// `weights` hold the same entries as the Graph's Neighbor array, row order
/// preserved, but split into dense u32 / f64 streams (16-byte AoS stride →
/// 4+8 byte SoA) so the per-seed kernels stream at full cache-line density.
void StageAdjacencySoa(const Graph& graph, std::vector<VertexId>* targets,
                       std::vector<double>* weights);

/// \brief Applies DiscretizeSpec::Map elementwise: out[i] = spec.Map(in[i]).
/// Exact on every ISA (compare/select only). In-place (out == in) allowed.
void DiscretizeMapPacked(const double* in, double* out, size_t count,
                         const DiscretizeSpec& spec);

/// \brief weights[i] = min(weights[i], cap) elementwise, std::min ordering.
/// Exact on every ISA.
void ClampAbovePacked(double* weights, size_t count, double cap);

/// \brief dx[targets[i]] += weights[i] * delta for i in [0, count) — the
/// AffinityState::SetX inner loop over one staged row. The products are
/// vectorized (one rounding each, never fused); the scatter adds run in row
/// order to distinct addresses, so the result is exact on every ISA.
/// Software-prefetches dx at upcoming targets of the sorted row.
void AxpyScatter(const VertexId* targets, const double* weights, size_t count,
                 double delta, double* dx);

/// Result of ScanGradientExtremes (mirrors
/// AffinityState::GradientExtremes).
struct GradExtremes {
  VertexId argmax = 0;
  VertexId argmin = 0;
  double max_grad = 0.0;
  double min_grad = 0.0;
};

/// \brief The CD pair-selection scan: over `candidates`, the largest
/// gradient 2·dx[k] among {x[k] < 1} and the smallest among {x[k] > 0},
/// each with the *first* index attaining it (strict first-wins, matching
/// the scalar running-max exactly — the vector path recomputes the returned
/// gradients from the winning indices, so even signed-zero bits match).
/// Returns false when either candidate set is empty.
bool ScanGradientExtremes(const VertexId* candidates, size_t count,
                          const double* x, const double* dx,
                          GradExtremes* out);

/// \brief f = Σ_i x[support[i]] · dx[support[i]].
///
/// With `allow_reassociation` false (the default everywhere), the sum runs
/// in support order with one rounding per term — bit-identical on every
/// ISA. True permits the 4-lane vector accumulation (deterministic for a
/// fixed count, but not bit-identical to the ordered sum); callers gate it
/// behind DcsgaOptions::fast_math.
double SupportReduce(const VertexId* support, size_t count, const double* x,
                     const double* dx, bool allow_reassociation);

/// \brief Binary search of `v` in a sorted staged row; returns the paired
/// weight or 0.0 when absent. Identical to Graph::EdgeWeight on the same
/// row, minus the AoS stride.
double StagedRowLookup(const VertexId* targets, const double* weights,
                       size_t count, VertexId v);

/// \brief Fills `order` with the vertex ids 0..mu.size()-1 sorted by the
/// smart-init seed order: descending mu, ties by ascending id (newsea's
/// SeedOrderLess). The scalar reference is the comparator introsort; the
/// dispatched path LSD-radix-sorts packed keys — each mu's IEEE bits with
/// −0 collapsed to +0, sign-flipped into a monotone unsigned integer and
/// complemented for descending order — skipping byte columns that are
/// constant across all keys (discretized pipelines concentrate mu on a
/// handful of values). Radix passes are stable and ids enter in ascending
/// order, so ties land exactly where the comparator puts them: the two
/// paths return the same order for every NaN-free input.
void SeedOrderSort(const std::vector<double>& mu,
                   std::vector<VertexId>* order);

/// \brief The graph-producing kernels. A friend of Graph so the fast paths
/// can emit CSR arrays directly (two-pass / single-pass construction)
/// instead of routing already-sorted rows through GraphBuilder's
/// sort-and-merge. Each is bit-identical — same vertices, edges and weight
/// bit patterns, hence equal ContentFingerprint — to the builder-based
/// reference implementation it shadows (graph/difference.h, graph/graph.h),
/// which the kernel tests and bench_micro_kernels assert every cycle.
class GraphKernels {
 public:
  /// Kernel twin of BuildDifferenceGraph (graph/difference.h): one merge
  /// pass over the paired sorted rows, emitting the symmetric CSR directly.
  static Result<Graph> BuildDifferenceGraph(const Graph& g1, const Graph& g2,
                                            double alpha = 1.0);

  /// Kernel twin of DiscretizeWeights (graph/difference.h): stages the
  /// weights packed, maps them with DiscretizeMapPacked, then compacts the
  /// surviving entries row by row.
  static Result<Graph> DiscretizeWeights(const Graph& gd,
                                         const DiscretizeSpec& spec);

  /// Kernel twin of Graph::WeightsClampedAbove: clamps the copied Neighbor
  /// array in place (AVX2 blends the weight lanes of the 16-byte AoS
  /// layout, leaving the id lanes untouched bit for bit).
  static Graph WeightsClampedAbove(const Graph& gd, double cap);

  /// Kernel twin of Graph::PositivePart: one branchless compaction pass
  /// writing the kept rows straight into the output CSR (the reference does
  /// a count pass plus a push_back pass). Same keep rule (weight > 0.0),
  /// same order, same bits.
  static Graph PositivePart(const Graph& gd);
};

}  // namespace dcs

#endif  // DCS_CORE_KERNELS_H_
