#include "core/newsea.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "core/refinement.h"
#include "graph/kcore.h"
#include "util/logging.h"
#include "util/rng.h"

namespace dcs {
namespace {

Status ValidateNonNegative(const Graph& gd_plus) {
  for (VertexId u = 0; u < gd_plus.NumVertices(); ++u) {
    for (const Neighbor& nb : gd_plus.NeighborsOf(u)) {
      if (nb.weight < 0.0) {
        return Status::InvalidArgument(
            "DCSGA drivers run on GD+; found a negative edge weight");
      }
    }
  }
  return Status::OK();
}

// Hash of a sorted vertex set, for clique deduplication.
uint64_t HashMembers(const std::vector<VertexId>& members) {
  uint64_t h = 0x9E3779B97F4A7C15ull;
  for (VertexId v : members) {
    uint64_t state = h ^ (static_cast<uint64_t>(v) + 0x517CC1B727220A95ull);
    h = SplitMix64(&state);
  }
  return h;
}

// Shared multi-init machinery: one AffinityState reused across seeds.
class MultiInitDriver {
 public:
  MultiInitDriver(const Graph& gd_plus, const DcsgaOptions& options)
      : gd_plus_(gd_plus), options_(options), state_(gd_plus) {}

  // Runs one initialization from e_seed: Shrink/Expand then Refinement.
  // Updates the running best and (optionally) the clique collection.
  void RunSeed(VertexId seed, DcsgaResult* result) {
    ++result->initializations;
    state_.ResetToVertex(seed);
    if (options_.shrink == ShrinkKind::kCoordinateDescent) {
      const SeacdRunStats stats = RunSeacdInPlace(&state_, options_.seacd);
      result->cd_iterations += stats.cd_iterations;
    } else {
      const SeaRunStats stats = RunSeaInPlace(&state_, options_.sea);
      result->replicator_sweeps += stats.replicator_sweeps;
      result->expansion_errors += stats.expansion_errors;
    }
    const RefinementRunStats refined =
        RefineInPlace(&state_, options_.refinement_descent);
    result->cd_iterations += refined.cd_iterations;

    if (refined.affinity > result->affinity) {
      result->affinity = refined.affinity;
      result->x = state_.ToEmbedding();
      result->support = result->x.Support();
    }
    if (options_.collect_cliques) {
      std::vector<VertexId> members(state_.support().begin(),
                                    state_.support().end());
      std::sort(members.begin(), members.end());
      const uint64_t key = HashMembers(members);
      if (seen_cliques_.insert(key).second) {
        CliqueRecord record;
        record.weights.reserve(members.size());
        for (VertexId v : members) record.weights.push_back(state_.x(v));
        record.members = std::move(members);
        record.affinity = refined.affinity;
        result->cliques.push_back(std::move(record));
      }
    }
  }

 private:
  const Graph& gd_plus_;
  const DcsgaOptions& options_;
  AffinityState state_;
  std::unordered_set<uint64_t> seen_cliques_;
};

// Fallback solution when the graph has no positive edge: a single vertex,
// affinity 0 (§III-B).
DcsgaResult TrivialResult(const Graph& gd_plus) {
  DcsgaResult result;
  result.x = Embedding::UnitVector(gd_plus.NumVertices(), 0);
  result.support = {0};
  result.affinity = 0.0;
  return result;
}

}  // namespace

SmartInitBounds ComputeSmartInitBounds(const Graph& gd_plus) {
  const VertexId n = gd_plus.NumVertices();
  SmartInitBounds bounds;
  // Step 1: max incident weight per vertex.
  const std::vector<double> max_incident = gd_plus.MaxIncidentWeightPerVertex();
  // Step 2: w_u = max over the closed neighborhood T_u of max_incident —
  // an upper bound on the heaviest edge with an endpoint in T_u.
  bounds.w.assign(n, -std::numeric_limits<double>::infinity());
  for (VertexId u = 0; u < n; ++u) {
    bounds.w[u] = max_incident[u];
    for (const Neighbor& nb : gd_plus.NeighborsOf(u)) {
      bounds.w[u] = std::max(bounds.w[u], max_incident[nb.to]);
    }
  }
  // Step 3: τ_u (core numbers) and μ_u = τ_u·w_u/(τ_u+1) (Theorem 6 with the
  // clique size bound k_u ≤ τ_u + 1).
  bounds.tau = CoreNumbers(gd_plus);
  bounds.mu.assign(n, 0.0);
  for (VertexId u = 0; u < n; ++u) {
    if (bounds.tau[u] == 0 || !std::isfinite(bounds.w[u])) {
      bounds.mu[u] = 0.0;  // isolated in GD+: best possible affinity is 0
    } else {
      const double tau = static_cast<double>(bounds.tau[u]);
      bounds.mu[u] = tau * bounds.w[u] / (tau + 1.0);
    }
  }
  return bounds;
}

Result<DcsgaResult> RunNewSea(const Graph& gd_plus,
                              const DcsgaOptions& options) {
  return RunNewSea(gd_plus, ComputeSmartInitBounds(gd_plus), options);
}

Result<DcsgaResult> RunNewSea(const Graph& gd_plus,
                              const SmartInitBounds& bounds,
                              const DcsgaOptions& options) {
  DCS_RETURN_NOT_OK(ValidateNonNegative(gd_plus));
  const VertexId n = gd_plus.NumVertices();
  if (n == 0) return Status::InvalidArgument("empty graph");
  if (gd_plus.NumEdges() == 0) return TrivialResult(gd_plus);
  if (bounds.mu.size() != n) {
    return Status::InvalidArgument(
        "smart-init bounds were computed for a different graph");
  }

  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), VertexId{0});
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return bounds.mu[a] > bounds.mu[b];
  });

  DcsgaResult result = TrivialResult(gd_plus);
  DcsgaOptions inner = options;
  inner.shrink = ShrinkKind::kCoordinateDescent;  // NewSEA is CD by definition
  MultiInitDriver driver(gd_plus, inner);
  for (VertexId u : order) {
    if (bounds.mu[u] <= result.affinity) break;  // Theorem 6 early stop
    driver.RunSeed(u, &result);
  }
  return result;
}

Result<DcsgaResult> RunDcsgaAllInits(const Graph& gd_plus,
                                     const DcsgaOptions& options) {
  DCS_RETURN_NOT_OK(ValidateNonNegative(gd_plus));
  const VertexId n = gd_plus.NumVertices();
  if (n == 0) return Status::InvalidArgument("empty graph");
  if (gd_plus.NumEdges() == 0) return TrivialResult(gd_plus);

  DcsgaResult result = TrivialResult(gd_plus);
  MultiInitDriver driver(gd_plus, options);
  for (VertexId u = 0; u < n; ++u) {
    // Isolated vertices cannot improve on the trivial solution.
    if (gd_plus.Degree(u) == 0) continue;
    driver.RunSeed(u, &result);
  }
  return result;
}

std::vector<CliqueRecord> FilterMaximalCliques(std::vector<CliqueRecord> in) {
  // Sort indices by size descending so that possible supersets come first.
  std::vector<size_t> order(in.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return in[a].members.size() > in[b].members.size();
  });
  // For every kept clique, index it by its smallest member: any superset of
  // a clique C contains C's first vertex, so looking up that one bucket
  // suffices for the subset test.
  std::unordered_map<VertexId, std::vector<size_t>> kept_by_vertex;
  std::vector<char> kept(in.size(), 0);
  for (size_t idx : order) {
    const std::vector<VertexId>& members = in[idx].members;
    bool subsumed = false;
    if (!members.empty()) {
      for (VertexId v : members) {
        auto it = kept_by_vertex.find(v);
        if (it == kept_by_vertex.end()) continue;
        for (size_t candidate : it->second) {
          const std::vector<VertexId>& big = in[candidate].members;
          if (big.size() < members.size()) continue;
          if (std::includes(big.begin(), big.end(), members.begin(),
                            members.end())) {
            subsumed = true;
            break;
          }
        }
        break;  // one bucket is enough: supersets contain every member
      }
    }
    if (!subsumed) {
      kept[idx] = 1;
      for (VertexId v : in[idx].members) kept_by_vertex[v].push_back(idx);
    }
  }
  std::vector<CliqueRecord> out;
  out.reserve(in.size());
  for (size_t idx = 0; idx < in.size(); ++idx) {
    if (kept[idx]) out.push_back(std::move(in[idx]));
  }
  return out;
}

}  // namespace dcs
