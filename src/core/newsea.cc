#include "core/newsea.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <limits>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "core/kernels.h"
#include "core/refinement.h"
#include "graph/kcore.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace dcs {
namespace {

// Hash of a sorted vertex set, for clique deduplication.
uint64_t HashMembers(const std::vector<VertexId>& members) {
  uint64_t h = 0x9E3779B97F4A7C15ull;
  for (VertexId v : members) {
    uint64_t state = h ^ (static_cast<uint64_t>(v) + 0x517CC1B727220A95ull);
    h = SplitMix64(&state);
  }
  return h;
}

// Shared multi-init machinery: one AffinityState reused across seeds.
class MultiInitDriver {
 public:
  MultiInitDriver(const Graph& gd_plus, const DcsgaOptions& options)
      : gd_plus_(gd_plus), options_(options), state_(gd_plus) {
    state_.set_fast_math(options.fast_math);
  }

  // Runs one initialization from e_seed: Shrink/Expand then Refinement.
  // Updates the running best and (optionally) the clique collection.
  void RunSeed(VertexId seed, DcsgaResult* result) {
    ++result->initializations;
    state_.ResetToVertex(seed);
    if (options_.shrink == ShrinkKind::kCoordinateDescent) {
      const SeacdRunStats stats = RunSeacdInPlace(&state_, options_.seacd);
      result->cd_iterations += stats.cd_iterations;
    } else {
      const SeaRunStats stats = RunSeaInPlace(&state_, options_.sea);
      result->replicator_sweeps += stats.replicator_sweeps;
      result->expansion_errors += stats.expansion_errors;
    }
    const RefinementRunStats refined =
        RefineInPlace(&state_, options_.refinement_descent);
    result->cd_iterations += refined.cd_iterations;

    if (refined.affinity > result->affinity) {
      result->affinity = refined.affinity;
      result->x = state_.ToEmbedding();
      result->support = result->x.Support();
    }
    if (options_.collect_cliques) {
      std::vector<VertexId> members(state_.support().begin(),
                                    state_.support().end());
      std::sort(members.begin(), members.end());
      const uint64_t key = HashMembers(members);
      if (seen_cliques_.insert(key).second) {
        CliqueRecord record;
        record.weights.reserve(members.size());
        for (VertexId v : members) record.weights.push_back(state_.x(v));
        record.members = std::move(members);
        record.affinity = refined.affinity;
        result->cliques.push_back(std::move(record));
      }
    }
  }

 private:
  const Graph& gd_plus_;
  const DcsgaOptions& options_;
  AffinityState state_;
  std::unordered_set<uint64_t> seen_cliques_;
};

// Fallback solution when the graph has no positive edge: a single vertex,
// affinity 0 (§III-B).
DcsgaResult TrivialResult(const Graph& gd_plus) {
  DcsgaResult result;
  result.x = Embedding::UnitVector(gd_plus.NumVertices(), 0);
  result.support = {0};
  result.affinity = 0.0;
  return result;
}

// Monotone lower-bound publication for the shared Theorem 6 bound.
void FetchMax(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value > current && !target->compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

// Number of shard workers a RunNewSea call actually uses.
size_t ResolveShards(uint32_t requested, const ThreadPool* pool) {
  if (requested == 1) return 1;
  size_t shards = requested != 0 ? requested
                  : pool != nullptr ? pool->concurrency()
                                    : ThreadPool::DefaultConcurrency();
  if (pool != nullptr) shards = std::min(shards, pool->concurrency());
  return std::max<size_t>(shards, 1);
}

// Seed-sharded multi-init (the parallel Algorithm 5 loop).
//
// `order` is the μ-descending seed order. Contiguous chunks of it are handed
// out through an atomic cursor; every shard owns an AffinityState (reset is
// exact, so each seed's Shrink/Expand/Refine is a pure function of
// (gd_plus, seed, options) and runs bit-identically on any thread).
//
// Pruning is the *strict* form of Theorem 6: a seed is skipped only when
// μ_u < best_lb. Sequential pruning (μ_u ≤ running best, in order) can skip
// a seed whose μ equals the final best F; but such a seed satisfies
// refined(u) ≤ μ_u ≤ F and sits after the sequential winner in μ-order, so
// under the (max affinity, earliest order position) reduction it can never
// displace the winner — while the strict bound guarantees every seed with
// refined == F (μ ≥ refined == F ≥ best_lb) is descended from. Hence the
// reduction returns exactly the sequential winner: the earliest seed
// achieving the global best affinity, with its bit-identical embedding.
DcsgaResult RunNewSeaSharded(const Graph& gd_plus,
                             const SmartInitBounds& bounds,
                             const std::vector<VertexId>& order,
                             const DcsgaOptions& inner, size_t shards,
                             ThreadPool* pool) {
  struct ShardState {
    uint64_t initializations = 0;
    uint64_t cd_iterations = 0;
    double best_affinity = 0.0;
    size_t best_pos = std::numeric_limits<size_t>::max();
    Embedding best_x;
  };
  // Chunked hand-out. Small chunks win here: a descent costs microseconds
  // against a ~20ns cursor bump, and the pruning overshoot — seeds claimed
  // before the first strong affinity is published — is bounded by
  // shards × chunk, which matters on datasets where the bound kills almost
  // everything after a handful of seeds.
  constexpr size_t kChunkSize = 4;
  std::atomic<size_t> cursor{0};
  std::atomic<double> best_lb{0.0};  // affinity of the trivial solution
  // Chunks are claimed in μ-order, so once one chunk's best μ falls strictly
  // below the bound every later chunk's does too: stop handing out work.
  std::atomic<bool> exhausted{false};

  std::vector<ShardState> locals(shards);
  pool->RunTasks(shards, [&](size_t shard) {
    ShardState& local = locals[shard];
    AffinityState state(gd_plus);
    state.set_fast_math(inner.fast_math);
    while (!exhausted.load(std::memory_order_relaxed)) {
      // Cooperative cancellation, polled once per seed chunk: shards stop
      // claiming work and the caller reports Status::Cancelled. On an
      // uncancelled run this check never alters the claimed-chunk sequence.
      if (inner.cancel != nullptr && inner.cancel->cancelled()) break;
      const size_t begin = cursor.fetch_add(kChunkSize);
      if (begin >= order.size()) break;
      const size_t end = std::min(begin + kChunkSize, order.size());
      const double chunk_mu = bounds.mu[order[begin]];
      if (chunk_mu <= 0.0 ||
          chunk_mu < best_lb.load(std::memory_order_relaxed)) {
        exhausted.store(true, std::memory_order_relaxed);
        break;
      }
      for (size_t pos = begin; pos < end; ++pos) {
        const VertexId seed = order[pos];
        const double mu = bounds.mu[seed];
        // Strict comparison — see the function comment. μ ≤ 0 seeds cannot
        // beat the trivial solution (refined ≤ μ) and are always skipped.
        if (mu <= 0.0 || mu < best_lb.load(std::memory_order_relaxed)) {
          continue;
        }
        ++local.initializations;
        state.ResetToVertex(seed);
        const SeacdRunStats shrink = RunSeacdInPlace(&state, inner.seacd);
        local.cd_iterations += shrink.cd_iterations;
        const RefinementRunStats refined =
            RefineInPlace(&state, inner.refinement_descent);
        local.cd_iterations += refined.cd_iterations;
        if (refined.affinity > local.best_affinity ||
            (refined.affinity == local.best_affinity &&
             pos < local.best_pos)) {
          local.best_affinity = refined.affinity;
          local.best_pos = pos;
          local.best_x = state.ToEmbedding();
        }
        FetchMax(&best_lb, refined.affinity);
      }
    }
  });

  DcsgaResult result = TrivialResult(gd_plus);
  ShardState* winner = nullptr;
  for (ShardState& local : locals) {
    result.initializations += local.initializations;
    result.cd_iterations += local.cd_iterations;
    // Mirrors the sequential loop's strict improvement test: a seed whose
    // refined affinity is exactly 0 never replaces the trivial solution.
    if (local.best_pos == std::numeric_limits<size_t>::max() ||
        local.best_affinity <= 0.0) {
      continue;
    }
    if (winner == nullptr || local.best_affinity > winner->best_affinity ||
        (local.best_affinity == winner->best_affinity &&
         local.best_pos < winner->best_pos)) {
      winner = &local;
    }
  }
  if (winner != nullptr) {
    result.affinity = winner->best_affinity;
    result.x = std::move(winner->best_x);
    result.support = result.x.Support();
  }
  result.pruned_seeds = order.size() - result.initializations;
  return result;
}

}  // namespace

Status ValidateNonNegativeWeights(const Graph& gd_plus) {
  for (VertexId u = 0; u < gd_plus.NumVertices(); ++u) {
    for (const Neighbor& nb : gd_plus.NeighborsOf(u)) {
      if (nb.weight < 0.0) {
        return Status::InvalidArgument(
            "DCSGA drivers run on GD+; found a negative edge weight");
      }
    }
  }
  return Status::OK();
}

namespace {

// The scalar formulas the full pass and the delta path share; keeping them
// in one place is what makes the delta path bit-identical by construction.
double SmartBoundW(const Graph& gd_plus, const std::vector<double>& max_incident,
                   VertexId u) {
  double w = max_incident[u];
  for (const Neighbor& nb : gd_plus.NeighborsOf(u)) {
    w = std::max(w, max_incident[nb.to]);
  }
  return w;
}

double SmartBoundMu(uint32_t tau_u, double w_u) {
  if (tau_u == 0 || !std::isfinite(w_u)) {
    return 0.0;  // isolated in GD+: best possible affinity is 0
  }
  const double tau = static_cast<double>(tau_u);
  return tau * w_u / (tau + 1.0);
}

double MaxIncidentOf(const Graph& gd_plus, VertexId u) {
  double best = -std::numeric_limits<double>::infinity();
  for (const Neighbor& nb : gd_plus.NeighborsOf(u)) {
    best = std::max(best, nb.weight);
  }
  return best;
}

// The unique total seed order: descending μ, ties by ascending id. Being
// total (no equal elements) is what lets the delta path reproduce a full
// sort exactly via remove-and-merge.
bool SeedOrderLess(const std::vector<double>& mu, VertexId a, VertexId b) {
  return mu[a] != mu[b] ? mu[a] > mu[b] : a < b;
}

}  // namespace

SmartInitBounds ComputeSmartInitBounds(const Graph& gd_plus) {
  const VertexId n = gd_plus.NumVertices();
  SmartInitBounds bounds;
  // Step 1: max incident weight per vertex (kept for the delta path).
  bounds.max_incident = gd_plus.MaxIncidentWeightPerVertex();
  // Step 2: w_u = max over the closed neighborhood T_u of max_incident —
  // an upper bound on the heaviest edge with an endpoint in T_u.
  bounds.w.assign(n, -std::numeric_limits<double>::infinity());
  for (VertexId u = 0; u < n; ++u) {
    bounds.w[u] = SmartBoundW(gd_plus, bounds.max_incident, u);
  }
  // Step 3: τ_u (core numbers) and μ_u = τ_u·w_u/(τ_u+1) (Theorem 6 with the
  // clique size bound k_u ≤ τ_u + 1).
  bounds.tau = CoreNumbers(gd_plus);
  bounds.mu.assign(n, 0.0);
  for (VertexId u = 0; u < n; ++u) {
    bounds.mu[u] = SmartBoundMu(bounds.tau[u], bounds.w[u]);
  }
  // Step 4: the seed order, paid once here instead of on every solve. The
  // comparator sort is this function's hot spot on large graphs, so it runs
  // through the kernel layer (SeedOrderSort: radix over packed μ keys on
  // the dispatched path, the same order bit for bit).
  SeedOrderSort(bounds.mu, &bounds.order);
  return bounds;
}

void ApplySmartInitBoundsDelta(const Graph& old_gd_plus,
                               const Graph& new_gd_plus,
                               std::span<const PositivePairDelta> changes,
                               SmartInitBounds* bounds) {
  const VertexId n = new_gd_plus.NumVertices();
  DCS_CHECK(old_gd_plus.NumVertices() == n && bounds->mu.size() == n &&
            bounds->max_incident.size() == n)
      << "bounds were computed for a different graph";
  if (changes.empty()) return;

  // --- τ: incremental core maintenance on the structural changes ----------
  // Past this many insert/delete traversals one bucket-peeling pass over the
  // new graph is cheaper (and trivially exact), so fall back.
  constexpr size_t kMaxIncrementalCoreEdges = 32;
  std::vector<uint64_t> inserted_pairs;
  std::vector<uint64_t> removed_pairs;
  for (const PositivePairDelta& change : changes) {
    if (change.old_weight == 0.0 && change.new_weight != 0.0) {
      inserted_pairs.push_back(PackVertexPair(change.u, change.v));
    } else if (change.old_weight != 0.0 && change.new_weight == 0.0) {
      removed_pairs.push_back(PackVertexPair(change.u, change.v));
    }
  }
  std::vector<VertexId> tau_changed;
  if (inserted_pairs.size() + removed_pairs.size() >
      kMaxIncrementalCoreEdges) {
    std::vector<uint32_t> fresh = CoreNumbers(new_gd_plus);
    for (VertexId u = 0; u < n; ++u) {
      if (fresh[u] != bounds->tau[u]) tau_changed.push_back(u);
    }
    bounds->tau = std::move(fresh);
  } else if (!inserted_pairs.empty() || !removed_pairs.empty()) {
    // Replay one edge at a time against the two CSR snapshots we hold:
    // removals run on the old graph with the already-removed pairs hidden,
    // insertions then run on the new graph with the not-yet-applied
    // insertions hidden — at every step the visible adjacency is exactly
    // the intermediate graph the single-edge traversal requires.
    std::unordered_set<uint64_t> hidden;
    for (const uint64_t key : removed_pairs) {
      hidden.insert(key);
      const VertexPair pair = UnpackVertexPair(key);
      CoreNumbersAfterRemove(old_gd_plus, pair.u, pair.v, hidden,
                             &bounds->tau, &tau_changed);
    }
    hidden.clear();
    hidden.insert(inserted_pairs.begin(), inserted_pairs.end());
    for (const uint64_t key : inserted_pairs) {
      hidden.erase(key);
      const VertexPair pair = UnpackVertexPair(key);
      CoreNumbersAfterInsert(new_gd_plus, pair.u, pair.v, hidden,
                             &bounds->tau, &tau_changed);
    }
  }

  // --- max_incident: recompute at the changed pairs' endpoints ------------
  std::vector<VertexId> endpoints;
  endpoints.reserve(changes.size() * 2);
  for (const PositivePairDelta& change : changes) {
    endpoints.push_back(change.u);
    endpoints.push_back(change.v);
  }
  std::sort(endpoints.begin(), endpoints.end());
  endpoints.erase(std::unique(endpoints.begin(), endpoints.end()),
                  endpoints.end());
  std::vector<VertexId> incident_changed;
  for (const VertexId e : endpoints) {
    const double fresh = MaxIncidentOf(new_gd_plus, e);
    if (std::bit_cast<uint64_t>(fresh) !=
        std::bit_cast<uint64_t>(bounds->max_incident[e])) {
      bounds->max_incident[e] = fresh;
      incident_changed.push_back(e);
    }
  }

  // --- w: recompute over the closed neighborhoods that could have moved ---
  // w_x changes only when x's row membership changed (x is an endpoint of a
  // structural pair) or some y in x's closed neighborhood changed its
  // max_incident (x is y or one of y's current neighbors; a *former*
  // neighbor lost the edge, making x a structural endpoint — covered).
  std::vector<VertexId> w_targets = endpoints;
  for (const VertexId y : incident_changed) {
    for (const Neighbor& nb : new_gd_plus.NeighborsOf(y)) {
      w_targets.push_back(nb.to);
    }
  }
  std::sort(w_targets.begin(), w_targets.end());
  w_targets.erase(std::unique(w_targets.begin(), w_targets.end()),
                  w_targets.end());
  for (const VertexId x : w_targets) {
    bounds->w[x] = SmartBoundW(new_gd_plus, bounds->max_incident, x);
  }

  // --- μ: re-derive wherever τ or w may have moved ------------------------
  std::vector<VertexId> mu_targets = std::move(w_targets);
  mu_targets.insert(mu_targets.end(), tau_changed.begin(), tau_changed.end());
  std::sort(mu_targets.begin(), mu_targets.end());
  mu_targets.erase(std::unique(mu_targets.begin(), mu_targets.end()),
                   mu_targets.end());
  for (const VertexId x : mu_targets) {
    bounds->mu[x] = SmartBoundMu(bounds->tau[x], bounds->w[x]);
  }

  // --- seed order: remove the re-derived vertices, merge them back --------
  // The untouched vertices keep their relative order (their sort keys are
  // unchanged), and the order is a unique total order, so this remove-and-
  // merge reproduces a from-scratch sort bit for bit in O(n + c log c).
  if (bounds->order.size() == n && !mu_targets.empty()) {
    std::vector<char> is_target(n, 0);
    for (const VertexId x : mu_targets) is_target[x] = 1;
    std::vector<VertexId> reinsert = mu_targets;
    std::sort(reinsert.begin(), reinsert.end(),
              [&](VertexId a, VertexId b) {
                return SeedOrderLess(bounds->mu, a, b);
              });
    std::vector<VertexId> merged;
    merged.reserve(n);
    size_t ri = 0;
    for (const VertexId x : bounds->order) {
      if (is_target[x]) continue;  // re-inserted from `reinsert` instead
      while (ri < reinsert.size() &&
             SeedOrderLess(bounds->mu, reinsert[ri], x)) {
        merged.push_back(reinsert[ri++]);
      }
      merged.push_back(x);
    }
    while (ri < reinsert.size()) merged.push_back(reinsert[ri++]);
    bounds->order = std::move(merged);
  }
}

Result<DcsgaResult> RunNewSea(const Graph& gd_plus,
                              const DcsgaOptions& options) {
  return RunNewSea(gd_plus, ComputeSmartInitBounds(gd_plus), options);
}

Result<DcsgaResult> RunNewSea(const Graph& gd_plus,
                              const SmartInitBounds& bounds,
                              const DcsgaOptions& options) {
  return RunNewSea(gd_plus, bounds, options, /*pool=*/nullptr);
}

Result<DcsgaResult> RunNewSea(const Graph& gd_plus,
                              const SmartInitBounds& bounds,
                              const DcsgaOptions& options, ThreadPool* pool) {
  if (!options.assume_nonnegative) {
    DCS_RETURN_NOT_OK(ValidateNonNegativeWeights(gd_plus));
  }
  const VertexId n = gd_plus.NumVertices();
  if (n == 0) return Status::InvalidArgument("empty graph");
  if (gd_plus.NumEdges() == 0) return TrivialResult(gd_plus);
  if (bounds.mu.size() != n) {
    return Status::InvalidArgument(
        "smart-init bounds were computed for a different graph");
  }

  // A cached pipeline's bounds carry the seed order precomputed (and
  // delta-maintained); fall back to sorting only for hand-built bounds.
  std::vector<VertexId> local_order;
  const std::vector<VertexId>* order_ptr = &bounds.order;
  if (bounds.order.size() != n) {
    local_order.resize(n);
    std::iota(local_order.begin(), local_order.end(), VertexId{0});
    std::sort(local_order.begin(), local_order.end(),
              [&](VertexId a, VertexId b) {
                return SeedOrderLess(bounds.mu, a, b);
              });
    order_ptr = &local_order;
  }
  const std::vector<VertexId>& order = *order_ptr;

  DcsgaOptions inner = options;
  inner.shrink = ShrinkKind::kCoordinateDescent;  // NewSEA is CD by definition

  const size_t shards = ResolveShards(options.parallelism, pool);
  if (shards > 1 && !options.collect_cliques) {
    DcsgaResult sharded;
    if (pool != nullptr) {
      sharded = RunNewSeaSharded(gd_plus, bounds, order, inner, shards, pool);
    } else {
      ThreadPool transient(shards - 1);
      sharded =
          RunNewSeaSharded(gd_plus, bounds, order, inner, shards, &transient);
    }
    // A fired token aborts the whole solve — no partial result escapes, so
    // a cancelled job can simply be resubmitted for the exact full answer.
    if (inner.cancel != nullptr && inner.cancel->cancelled()) {
      return Status::Cancelled("NewSEA solve cancelled");
    }
    return sharded;
  }

  DcsgaResult result = TrivialResult(gd_plus);
  MultiInitDriver driver(gd_plus, inner);
  size_t seeds_run = 0;
  for (VertexId u : order) {
    if (inner.cancel != nullptr && inner.cancel->cancelled()) {
      return Status::Cancelled("NewSEA solve cancelled");
    }
    if (bounds.mu[u] <= result.affinity) break;  // Theorem 6 early stop
    ++seeds_run;
    driver.RunSeed(u, &result);
  }
  result.pruned_seeds = order.size() - seeds_run;
  return result;
}

Result<DcsgaResult> RunDcsgaAllInits(const Graph& gd_plus,
                                     const DcsgaOptions& options) {
  if (!options.assume_nonnegative) {
    DCS_RETURN_NOT_OK(ValidateNonNegativeWeights(gd_plus));
  }
  const VertexId n = gd_plus.NumVertices();
  if (n == 0) return Status::InvalidArgument("empty graph");
  if (gd_plus.NumEdges() == 0) return TrivialResult(gd_plus);

  DcsgaResult result = TrivialResult(gd_plus);
  MultiInitDriver driver(gd_plus, options);
  for (VertexId u = 0; u < n; ++u) {
    if (options.cancel != nullptr && options.cancel->cancelled()) {
      return Status::Cancelled("DCSGA all-inits solve cancelled");
    }
    // Isolated vertices cannot improve on the trivial solution.
    if (gd_plus.Degree(u) == 0) {
      ++result.pruned_seeds;
      continue;
    }
    driver.RunSeed(u, &result);
  }
  return result;
}

std::vector<CliqueRecord> FilterMaximalCliques(std::vector<CliqueRecord> in) {
  // Sort indices by size descending so that possible supersets come first.
  std::vector<size_t> order(in.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return in[a].members.size() > in[b].members.size();
  });
  // For every kept clique, index it by its smallest member: any superset of
  // a clique C contains C's first vertex, so looking up that one bucket
  // suffices for the subset test. The index is a flat epoch-stamped vector
  // over the vertex range rather than a hash map: bucket lookups become one
  // array access, and the scratch persists across calls (thread_local, like
  // AffinityState::Renormalize's visited set) — a stale bucket (stamp !=
  // current epoch) reads as empty, so repeated top-k harvests pay neither
  // rehashing nor O(n) clearing.
  VertexId max_vertex = 0;
  for (const CliqueRecord& record : in) {
    for (VertexId v : record.members) max_vertex = std::max(max_vertex, v);
  }
  thread_local std::vector<std::vector<size_t>> buckets;
  thread_local std::vector<uint32_t> bucket_epoch;
  thread_local uint32_t epoch = 0;
  if (++epoch == 0) {
    // Stamp wrap-around: every stale stamp could alias the fresh epoch, so
    // reset once per 2^32 calls.
    std::fill(bucket_epoch.begin(), bucket_epoch.end(), 0u);
    epoch = 1;
  }
  const uint32_t kEpoch = epoch;
  if (buckets.size() <= max_vertex) {
    buckets.resize(static_cast<size_t>(max_vertex) + 1);
    bucket_epoch.resize(static_cast<size_t>(max_vertex) + 1, 0);
  }
  std::vector<char> kept(in.size(), 0);
  for (size_t idx : order) {
    const std::vector<VertexId>& members = in[idx].members;
    bool subsumed = false;
    if (!members.empty()) {
      // One bucket is enough: supersets contain every member, so checking
      // the first member's bucket covers them all.
      const VertexId first = members.front();
      if (bucket_epoch[first] == kEpoch) {
        for (size_t candidate : buckets[first]) {
          const std::vector<VertexId>& big = in[candidate].members;
          if (big.size() < members.size()) continue;
          if (std::includes(big.begin(), big.end(), members.begin(),
                            members.end())) {
            subsumed = true;
            break;
          }
        }
      }
    }
    if (!subsumed) {
      kept[idx] = 1;
      for (VertexId v : in[idx].members) {
        if (bucket_epoch[v] != kEpoch) {
          bucket_epoch[v] = kEpoch;
          buckets[v].clear();
        }
        buckets[v].push_back(idx);
      }
    }
  }
  std::vector<CliqueRecord> out;
  out.reserve(in.size());
  for (size_t idx = 0; idx < in.size(); ++idx) {
    if (kept[idx]) out.push_back(std::move(in[idx]));
  }
  return out;
}

}  // namespace dcs
