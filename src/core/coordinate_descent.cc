#include "core/coordinate_descent.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace dcs {
namespace {

// Maximizes g(t) = b_i·t + b_j·(C−t) + d_ij·t·(C−t) for t in [0, C] and
// returns the best t (Eq. 9 case analysis).
double SolvePairSubproblem(double b_i, double b_j, double d_ij, double c) {
  auto g = [&](double t) {
    return b_i * t + b_j * (c - t) + d_ij * t * (c - t);
  };
  if (d_ij == 0.0) {
    // Linear: move all mass towards the larger slope; stand still on ties.
    if (b_i > b_j) return c;
    if (b_i < b_j) return 0.0;
    return -1.0;  // sentinel: no move
  }
  const double b = d_ij * c + b_i - b_j;  // g(t) = −d_ij t² + B t + const
  const double r = b / (2.0 * d_ij);
  double best_t = 0.0;
  double best_val = g(0.0);
  if (g(c) > best_val) {
    best_val = g(c);
    best_t = c;
  }
  if (d_ij > 0.0 && r > 0.0 && r < c && g(r) > best_val) {
    best_t = r;  // interior vertex of a concave parabola
  }
  return best_t;
}

}  // namespace

CoordinateDescentStats DescendToLocalKkt(
    AffinityState* state, std::span<const VertexId> allowed,
    const CoordinateDescentOptions& options) {
  CoordinateDescentStats stats;
  if (allowed.size() < 2) {
    stats.converged = true;
    return stats;
  }
  const double epsilon =
      options.epsilon_scale / static_cast<double>(allowed.size());
  while (stats.iterations < options.max_iterations) {
    AffinityState::GradientExtremes ext;
    if (!state->ComputeExtremes(allowed, &ext)) {
      // No movable pair (e.g. all mass on one vertex with x=1 and every
      // other candidate at gradient ≥ its own): treat as converged.
      stats.converged = true;
      return stats;
    }
    if (ext.max_grad - ext.min_grad <= epsilon || ext.argmax == ext.argmin) {
      stats.converged = true;
      return stats;
    }
    ++stats.iterations;
    const VertexId i = ext.argmax;
    const VertexId j = ext.argmin;
    const double c = state->x(i) + state->x(j);
    const double d_ij = state->StagedEdgeWeight(i, j);
    // b_i = Σ_{a≠j} D(a,i)·x_a = (Dx)_i − D(i,j)·x_j, and symmetrically.
    const double b_i = state->dx(i) - d_ij * state->x(j);
    const double b_j = state->dx(j) - d_ij * state->x(i);
    const double t = SolvePairSubproblem(b_i, b_j, d_ij, c);
    if (t < 0.0) {
      // Tie in the linear case — no strictly improving move exists for this
      // pair; the gradient gap is numerically zero, so stop.
      stats.converged = true;
      return stats;
    }
    state->SetX(i, t);
    state->SetX(j, c - t);
  }
  // The budget is spent, but the last move may have closed the KKT gap: a
  // run whose gap reaches epsilon exactly on the max_iterations-th move is
  // converged, not truncated. Re-check the extremes before reporting.
  AffinityState::GradientExtremes ext;
  if (!state->ComputeExtremes(allowed, &ext) ||
      ext.max_grad - ext.min_grad <= epsilon || ext.argmax == ext.argmin) {
    stats.converged = true;
  }
  return stats;
}

bool SatisfiesKkt(const AffinityState& state, double tolerance) {
  const double lambda = 2.0 * state.Affinity();
  // Support condition: ∇_u = λ.
  for (VertexId u : state.support()) {
    if (std::fabs(2.0 * state.dx(u) - lambda) > tolerance) return false;
  }
  // Global condition ∇_u ≤ λ. Only vertices adjacent to the support can
  // have non-zero gradient.
  const Graph& graph = state.graph();
  for (VertexId u : state.support()) {
    for (const Neighbor& nb : graph.NeighborsOf(u)) {
      if (2.0 * state.dx(nb.to) > lambda + tolerance) return false;
    }
  }
  return true;
}

}  // namespace dcs
