// Streaming DCS maintenance — the deployment mode §I motivates (real-time
// story identification à la Angel et al. [1], and "detecting current
// anomalies against historical data"): edge weights of G1/G2 arrive as a
// stream of updates and the contrast subgraph is re-mined on demand.
//
// StreamingDcsMonitor maintains the *difference* weights incrementally in a
// hash map (updates are O(1)) and materializes the CSR difference graph
// lazily, only when a query arrives after at least one update. DCSGA
// queries warm-start NewSEA-style: the previous solution's support vertices
// are tried as extra seeds first, which keeps re-mining cheap when the
// story drifts rather than jumps.

#ifndef DCS_CORE_STREAMING_H_
#define DCS_CORE_STREAMING_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/dcs_greedy.h"
#include "core/newsea.h"
#include "graph/graph.h"
#include "util/status.h"

namespace dcs {

/// Which input graph an update applies to.
enum class StreamSide {
  kG1,  ///< the baseline / historical graph (enters D with weight −α·w)
  kG2,  ///< the current graph (enters D with weight +w)
};

/// \brief Incrementally maintained difference graph with on-demand mining.
class StreamingDcsMonitor {
 public:
  /// \param num_vertices fixed vertex universe.
  /// \param alpha §III-D scale of G1 (default 1: standard difference).
  explicit StreamingDcsMonitor(VertexId num_vertices, double alpha = 1.0);

  VertexId num_vertices() const { return num_vertices_; }

  /// Adds `delta` to the weight of undirected edge {u,v} on the given side.
  /// Fails on self-loops, out-of-range endpoints, or non-finite deltas.
  Status ApplyUpdate(StreamSide side, VertexId u, VertexId v, double delta);

  /// Current difference graph (rebuilds the CSR snapshot if updates arrived
  /// since the last call). O(m log m) on rebuild, O(1) otherwise.
  Result<Graph> DifferenceSnapshot();

  /// Mines the average-degree DCS on the current difference graph.
  Result<DcsadResult> MineDcsad();

  /// Mines the affinity DCS on the current difference graph's positive
  /// part; warm-starts from the previous query's support before falling
  /// back to the smart-initialization order.
  Result<DcsgaResult> MineDcsga(const DcsgaOptions& options = {});

  /// Counters for tests/telemetry.
  uint64_t num_updates() const { return num_updates_; }
  uint64_t num_rebuilds() const { return num_rebuilds_; }

 private:
  static uint64_t PairKey(VertexId u, VertexId v) {
    if (u > v) std::swap(u, v);
    return (static_cast<uint64_t>(u) << 32) | v;
  }

  VertexId num_vertices_;
  double alpha_;
  std::unordered_map<uint64_t, double> difference_weights_;
  bool dirty_ = true;
  Graph snapshot_{0};
  uint64_t num_updates_ = 0;
  uint64_t num_rebuilds_ = 0;
  std::vector<VertexId> last_support_;
};

}  // namespace dcs

#endif  // DCS_CORE_STREAMING_H_
