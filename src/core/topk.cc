#include "core/topk.h"

#include <algorithm>

#include "graph/graph_builder.h"
#include "graph/stats.h"

namespace dcs {

Result<std::vector<RankedDcsad>> MineTopKDcsad(
    const Graph& gd, const TopkDcsadOptions& options) {
  if (gd.NumVertices() == 0) return Status::InvalidArgument("empty graph");
  std::vector<RankedDcsad> results;
  std::vector<char> removed(gd.NumVertices(), 0);
  Graph remaining = gd;
  for (uint32_t round = 0; round < options.k; ++round) {
    DCS_ASSIGN_OR_RETURN(DcsadResult best, RunDcsGreedy(remaining));
    if (best.density <= options.min_density) break;
    RankedDcsad ranked;
    ranked.subset = best.subset;
    // Densities of later rounds are still reported against the original GD;
    // vertex-disjointness makes them identical to the masked-graph values.
    ranked.density = AverageDegreeDensity(gd, best.subset);
    ranked.ratio_bound = best.ratio_bound;
    results.push_back(std::move(ranked));
    for (VertexId v : best.subset) removed[v] = 1;
    // Rebuild the masked difference graph without the found vertices.
    GraphBuilder builder(gd.NumVertices());
    for (VertexId u = 0; u < gd.NumVertices(); ++u) {
      if (removed[u]) continue;
      for (const Neighbor& nb : gd.NeighborsOf(u)) {
        if (u < nb.to && !removed[nb.to]) {
          DCS_RETURN_NOT_OK(builder.AddEdge(u, nb.to, nb.weight));
        }
      }
    }
    DCS_ASSIGN_OR_RETURN(remaining, builder.Build());
    if (remaining.NumEdges() == 0) break;
  }
  return results;
}

Result<std::vector<CliqueRecord>> MineTopKDcsga(
    const Graph& gd_plus, const TopkDcsgaOptions& options) {
  DcsgaOptions solver = options.solver;
  solver.collect_cliques = true;
  DCS_ASSIGN_OR_RETURN(DcsgaResult harvest,
                       RunDcsgaAllInits(gd_plus, solver));
  std::vector<CliqueRecord> cliques =
      FilterMaximalCliques(std::move(harvest.cliques));
  std::sort(cliques.begin(), cliques.end(),
            [](const CliqueRecord& a, const CliqueRecord& b) {
              return a.affinity > b.affinity;
            });
  std::vector<CliqueRecord> out;
  std::vector<char> used(gd_plus.NumVertices(), 0);
  for (CliqueRecord& clique : cliques) {
    if (out.size() >= options.k) break;
    if (clique.affinity <= options.min_affinity) break;  // sorted: all done
    if (options.disjoint) {
      bool overlaps = false;
      for (VertexId v : clique.members) overlaps |= used[v] != 0;
      if (overlaps) continue;
      for (VertexId v : clique.members) used[v] = 1;
    }
    out.push_back(std::move(clique));
  }
  return out;
}

}  // namespace dcs
