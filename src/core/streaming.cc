#include "core/streaming.h"

#include <cmath>
#include <string>

#include "core/refinement.h"
#include "util/logging.h"
#include "core/seacd.h"
#include "graph/graph_builder.h"

namespace dcs {

StreamingDcsMonitor::StreamingDcsMonitor(VertexId num_vertices, double alpha)
    : num_vertices_(num_vertices), alpha_(alpha) {
  DCS_CHECK(std::isfinite(alpha) && alpha > 0.0) << "alpha must be positive";
}

Status StreamingDcsMonitor::ApplyUpdate(StreamSide side, VertexId u,
                                        VertexId v, double delta) {
  if (u == v) {
    return Status::InvalidArgument("self-loop update on vertex " +
                                   std::to_string(u));
  }
  if (u >= num_vertices_ || v >= num_vertices_) {
    return Status::OutOfRange("update endpoint out of range");
  }
  if (!std::isfinite(delta)) {
    return Status::InvalidArgument("non-finite update delta");
  }
  const double signed_delta =
      side == StreamSide::kG2 ? delta : -alpha_ * delta;
  double& weight = difference_weights_[PairKey(u, v)];
  weight += signed_delta;
  if (weight == 0.0) difference_weights_.erase(PairKey(u, v));
  ++num_updates_;
  dirty_ = true;
  return Status::OK();
}

Result<Graph> StreamingDcsMonitor::DifferenceSnapshot() {
  if (!dirty_) return snapshot_;
  GraphBuilder builder(num_vertices_);
  for (const auto& [key, weight] : difference_weights_) {
    const VertexId u = static_cast<VertexId>(key >> 32);
    const VertexId v = static_cast<VertexId>(key & 0xFFFFFFFFull);
    DCS_RETURN_NOT_OK(builder.AddEdge(u, v, weight));
  }
  DCS_ASSIGN_OR_RETURN(snapshot_, builder.Build());
  dirty_ = false;
  ++num_rebuilds_;
  return snapshot_;
}

Result<DcsadResult> StreamingDcsMonitor::MineDcsad() {
  DCS_ASSIGN_OR_RETURN(Graph gd, DifferenceSnapshot());
  return RunDcsGreedy(gd);
}

Result<DcsgaResult> StreamingDcsMonitor::MineDcsga(
    const DcsgaOptions& options) {
  DCS_ASSIGN_OR_RETURN(Graph gd, DifferenceSnapshot());
  const Graph gd_plus = gd.PositivePart();

  // Warm start: re-descend from the previous support (if still meaningful)
  // so a drifting story is tracked without a full restart.
  DcsgaResult warm;
  warm.x = Embedding::UnitVector(std::max<VertexId>(gd_plus.NumVertices(), 1), 0);
  warm.affinity = 0.0;
  if (!last_support_.empty()) {
    bool valid = true;
    for (VertexId v : last_support_) valid &= v < gd_plus.NumVertices();
    if (valid) {
      AffinityState state(gd_plus);
      Status reset = state.ResetToEmbedding(
          Embedding::UniformOn(gd_plus.NumVertices(), last_support_));
      if (reset.ok()) {
        RunSeacdInPlace(&state, options.seacd);
        RefineInPlace(&state, options.refinement_descent);
        warm.affinity = state.Affinity();
        warm.x = state.ToEmbedding();
        warm.support = warm.x.Support();
      }
    }
  }

  DCS_ASSIGN_OR_RETURN(DcsgaResult fresh, RunNewSea(gd_plus, options));
  DcsgaResult best = fresh.affinity >= warm.affinity ? std::move(fresh)
                                                     : std::move(warm);
  last_support_ = best.support;
  return best;
}

}  // namespace dcs
