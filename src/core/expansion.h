// The SEA Expansion operation (paper Appendix A, used by Algorithm 3).
//
// Given an embedding x that is a local KKT point on its support, expansion
// finds Z = {i : (Dx)_i > f(x)} — the vertices whose inclusion can raise the
// objective — and moves x along the direction
//   b_i = −x_i·s (i in Sx),   b_i = γ_i (i in Z),
// where γ_i = (Dx)_i − f(x) and s = Σ_{i∈Z} γ_i, by the step τ that
// maximizes f(x + τb) subject to x + τb ∈ Δn.
//
// Derivation note (documented in DESIGN.md): with ζ = Σ γ_i² and
// ω = Σ_{i,j∈Z} γ_i γ_j D(i,j), one gets bᵀDx = ζ and
// bᵀDb = −(f·s² + 2sζ − ω) = −a, hence Δf(τ) = −a·τ² + 2ζ·τ, maximized at
// τ* = ζ/a when a > 0 and at the simplex boundary τ = 1/s otherwise. The
// appendix's printed "Δf = −aτ² − 2ζτ" and "τ = min{1/s, −1/a}" are typos:
// they would make expansion strictly decrease f, contradicting Theorem 4.

#ifndef DCS_CORE_EXPANSION_H_
#define DCS_CORE_EXPANSION_H_

#include <vector>

#include "core/embedding.h"
#include "graph/graph.h"

namespace dcs {

/// Outcome of one expansion attempt.
struct ExpansionResult {
  /// False iff Z was empty, i.e. x already satisfies the global KKT
  /// conditions and the SEA loop should stop.
  bool expanded = false;
  /// |Z|.
  size_t num_added = 0;
  /// Objective before/after (equal when expanded == false).
  double f_before = 0.0;
  double f_after = 0.0;
};

/// \brief Computes Z for the current state. Only vertices adjacent to the
/// support can qualify; `margin` guards against re-adding vertices whose
/// gradient exceeds λ by numerical noise only.
///
/// The paper defines Z = {i ∈ V : ∇_i f > λ}, which at a local KKT point
/// never intersects the support. When the Shrink stage stopped *short* of a
/// local KKT point (the replicator baseline's loose test), support vertices
/// can qualify too; `include_support` keeps them, faithful to the published
/// definition — this is exactly what makes the baseline's expansion able to
/// decrease the objective ("errors in SEA", Table VII). The SEACD path uses
/// include_support = false, which is equivalent at a local KKT point and
/// provably monotone everywhere.
std::vector<VertexId> ComputeExpansionSet(const AffinityState& state,
                                          double margin = 1e-9,
                                          bool include_support = false);

/// \brief Performs one Expansion step on `state` (no-op if Z is empty).
ExpansionResult SeaExpand(AffinityState* state, double margin = 1e-9,
                          bool include_support = false);

}  // namespace dcs

#endif  // DCS_CORE_EXPANSION_H_
