#include "core/kernels.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <mutex>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph_builder.h"
#include "util/logging.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define DCS_KERNELS_X86 1
#include <immintrin.h>
#else
#define DCS_KERNELS_X86 0
#endif

namespace dcs {

namespace {

// ---------------------------------------------------------------------------
// Counters: plain thread-local blocks registered with a process-wide list.
// The hot kernels bump their own block with relaxed load+store (the owning
// thread is the only writer, so no RMW and no cache-line ping-pong);
// KernelCountersSnapshot sums live blocks plus the totals of exited threads.
// Registry is a leaked singleton so thread exit after main stays safe.
// ---------------------------------------------------------------------------

enum CounterIdx : int {
  kIdxDifferenceRows = 0,
  kIdxDiscretizeElements,
  kIdxClampElements,
  kIdxAxpyElements,
  kIdxExtremesScans,
  kIdxSupportReductions,
  kIdxStagedLookups,
  kIdxAvx2Calls,
  kIdxScalarCalls,
  kNumCounterIdx,
};

struct CounterBlock {
  std::atomic<uint64_t> v[kNumCounterIdx] = {};
};

struct CounterRegistry {
  std::mutex mu;
  std::vector<const CounterBlock*> live;
  uint64_t retired[kNumCounterIdx] = {};
};

CounterRegistry& Registry() {
  static CounterRegistry* registry = new CounterRegistry;
  return *registry;
}

struct ThreadCounterBlock {
  CounterBlock block;
  ThreadCounterBlock() {
    CounterRegistry& r = Registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.live.push_back(&block);
  }
  ~ThreadCounterBlock() {
    CounterRegistry& r = Registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (int i = 0; i < kNumCounterIdx; ++i) {
      r.retired[i] += block.v[i].load(std::memory_order_relaxed);
    }
    std::erase(r.live, &block);
  }
};

inline CounterBlock& Tls() {
  thread_local ThreadCounterBlock tls;
  return tls.block;
}

inline void Bump(CounterBlock& b, CounterIdx idx, uint64_t delta) {
  std::atomic<uint64_t>& a = b.v[idx];
  a.store(a.load(std::memory_order_relaxed) + delta, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

std::atomic<int> g_forced_isa{-1};

bool DetectAvx2() {
#if DCS_KERNELS_X86
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

// True when this call should take the AVX2 variant; bumps the ISA call
// counter either way so telemetry shows which path actually served.
inline bool UseAvx2(CounterBlock& counters) {
  const int forced = g_forced_isa.load(std::memory_order_relaxed);
  const bool avx2 = forced >= 0
                        ? forced == static_cast<int>(KernelIsa::kAvx2)
                        : KernelCpuHasAvx2();
  Bump(counters, avx2 ? kIdxAvx2Calls : kIdxScalarCalls, 1);
  return avx2;
}

}  // namespace

const char* KernelIsaName(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kScalar:
      return "scalar";
    case KernelIsa::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool KernelCpuHasAvx2() {
  static const bool has = DetectAvx2();
  return has;
}

KernelIsa ActiveKernelIsa() {
  const int forced = g_forced_isa.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<KernelIsa>(forced);
  return KernelCpuHasAvx2() ? KernelIsa::kAvx2 : KernelIsa::kScalar;
}

void ForceKernelIsa(KernelIsa isa) {
  DCS_CHECK(isa == KernelIsa::kScalar || KernelCpuHasAvx2())
      << "forced ISA not supported by this CPU";
  g_forced_isa.store(static_cast<int>(isa), std::memory_order_relaxed);
}

void ResetForcedKernelIsa() {
  g_forced_isa.store(-1, std::memory_order_relaxed);
}

KernelCounters KernelCountersSnapshot() {
  CounterRegistry& r = Registry();
  uint64_t sum[kNumCounterIdx];
  {
    std::lock_guard<std::mutex> lock(r.mu);
    std::memcpy(sum, r.retired, sizeof(sum));
    for (const CounterBlock* block : r.live) {
      for (int i = 0; i < kNumCounterIdx; ++i) {
        sum[i] += block->v[i].load(std::memory_order_relaxed);
      }
    }
  }
  KernelCounters out;
  out.difference_rows = sum[kIdxDifferenceRows];
  out.discretize_elements = sum[kIdxDiscretizeElements];
  out.clamp_elements = sum[kIdxClampElements];
  out.axpy_elements = sum[kIdxAxpyElements];
  out.extremes_scans = sum[kIdxExtremesScans];
  out.support_reductions = sum[kIdxSupportReductions];
  out.staged_lookups = sum[kIdxStagedLookups];
  out.avx2_calls = sum[kIdxAvx2Calls];
  out.scalar_calls = sum[kIdxScalarCalls];
  return out;
}

void StageAdjacencySoa(const Graph& graph, std::vector<VertexId>* targets,
                       std::vector<double>* weights) {
  const size_t total = 2 * graph.NumEdges();
  targets->clear();
  weights->clear();
  targets->reserve(total);
  weights->reserve(total);
  for (VertexId u = 0; u < graph.NumVertices(); ++u) {
    for (const Neighbor& nb : graph.NeighborsOf(u)) {
      targets->push_back(nb.to);
      weights->push_back(nb.weight);
    }
  }
}

// ---------------------------------------------------------------------------
// Discretize map
// ---------------------------------------------------------------------------

namespace {

void DiscretizeMapScalar(const double* in, double* out, size_t count,
                         const DiscretizeSpec& spec) {
  for (size_t i = 0; i < count; ++i) out[i] = spec.Map(in[i]);
}

#if DCS_KERNELS_X86
// Exact vector transliteration of DiscretizeSpec::Map: a blend chain whose
// later conditions are exactly the scalar branch priorities ({d >= strong}
// inside {d >= weak}, {d <= strong_neg} inside {d < 0}); NaN takes no branch
// in either form and maps to 0.
__attribute__((target("avx2"))) void DiscretizeMapAvx2(
    const double* in, double* out, size_t count, const DiscretizeSpec& spec) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d sp = _mm256_set1_pd(spec.strong_pos);
  const __m256d wp = _mm256_set1_pd(spec.weak_pos);
  const __m256d sn = _mm256_set1_pd(spec.strong_neg);
  const __m256d l1 = _mm256_set1_pd(spec.level_one);
  const __m256d l2 = _mm256_set1_pd(spec.level_two);
  const __m256d nl1 = _mm256_set1_pd(-spec.level_one);
  const __m256d nl2 = _mm256_set1_pd(-spec.level_two);
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256d d = _mm256_loadu_pd(in + i);
    __m256d r = zero;
    r = _mm256_blendv_pd(r, nl1, _mm256_cmp_pd(d, zero, _CMP_LT_OQ));
    r = _mm256_blendv_pd(r, nl2, _mm256_cmp_pd(d, sn, _CMP_LE_OQ));
    r = _mm256_blendv_pd(r, l1, _mm256_cmp_pd(d, wp, _CMP_GE_OQ));
    r = _mm256_blendv_pd(r, l2, _mm256_cmp_pd(d, sp, _CMP_GE_OQ));
    _mm256_storeu_pd(out + i, r);
  }
  for (; i < count; ++i) out[i] = spec.Map(in[i]);
}
#endif  // DCS_KERNELS_X86

}  // namespace

void DiscretizeMapPacked(const double* in, double* out, size_t count,
                         const DiscretizeSpec& spec) {
  CounterBlock& counters = Tls();
  Bump(counters, kIdxDiscretizeElements, count);
#if DCS_KERNELS_X86
  if (UseAvx2(counters)) {
    DiscretizeMapAvx2(in, out, count, spec);
    return;
  }
#else
  UseAvx2(counters);
#endif
  DiscretizeMapScalar(in, out, count, spec);
}

// ---------------------------------------------------------------------------
// Clamp
// ---------------------------------------------------------------------------

namespace {

void ClampScalar(double* weights, size_t count, double cap) {
  for (size_t i = 0; i < count; ++i) {
    weights[i] = std::min(weights[i], cap);
  }
}

#if DCS_KERNELS_X86
// std::min(w, cap) bit semantics: take cap only when cap < w, otherwise keep
// w's bits (including when equal) — a blendv on (cap < w), not min_pd.
__attribute__((target("avx2"))) inline __m256d MinStd(__m256d w, __m256d cap) {
  return _mm256_blendv_pd(w, cap, _mm256_cmp_pd(cap, w, _CMP_LT_OQ));
}

__attribute__((target("avx2"))) void ClampAvx2(double* weights, size_t count,
                                               double cap) {
  const __m256d capv = _mm256_set1_pd(cap);
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    _mm256_storeu_pd(weights + i, MinStd(_mm256_loadu_pd(weights + i), capv));
  }
  for (; i < count; ++i) weights[i] = std::min(weights[i], cap);
}

// Clamp over the Neighbor AoS layout: each 32-byte load covers two
// neighbors, with lanes 0/2 holding the packed vertex ids and lanes 1/3 the
// weights. The blend writes only the weight lanes, so the id lanes pass
// through bit-exact (the spurious FP compare on id-bit patterns can at worst
// set exception flags, which libdcs never reads).
__attribute__((target("avx2"))) void ClampAosAvx2(Neighbor* neighbors,
                                                  size_t count, double cap) {
  static_assert(sizeof(Neighbor) == 16 && offsetof(Neighbor, weight) == 8,
                "AoS clamp assumes {u32 id, pad, f64 weight} layout");
  const __m256d capv = _mm256_set1_pd(cap);
  double* raw = reinterpret_cast<double*>(neighbors);
  size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const __m256d v = _mm256_loadu_pd(raw + 2 * i);
    _mm256_storeu_pd(raw + 2 * i, _mm256_blend_pd(v, MinStd(v, capv), 0b1010));
  }
  for (; i < count; ++i) {
    neighbors[i].weight = std::min(neighbors[i].weight, cap);
  }
}
#endif  // DCS_KERNELS_X86

void ClampAosWeights(Neighbor* neighbors, size_t count, double cap) {
  CounterBlock& counters = Tls();
  Bump(counters, kIdxClampElements, count);
#if DCS_KERNELS_X86
  if (UseAvx2(counters)) {
    ClampAosAvx2(neighbors, count, cap);
    return;
  }
#else
  UseAvx2(counters);
#endif
  for (size_t i = 0; i < count; ++i) {
    neighbors[i].weight = std::min(neighbors[i].weight, cap);
  }
}

}  // namespace

void ClampAbovePacked(double* weights, size_t count, double cap) {
  CounterBlock& counters = Tls();
  Bump(counters, kIdxClampElements, count);
#if DCS_KERNELS_X86
  if (UseAvx2(counters)) {
    ClampAvx2(weights, count, cap);
    return;
  }
#else
  UseAvx2(counters);
#endif
  ClampScalar(weights, count, cap);
}

// ---------------------------------------------------------------------------
// dx accumulation (SetX inner loop)
// ---------------------------------------------------------------------------

namespace {

void AxpyScatterScalar(const VertexId* targets, const double* weights,
                       size_t count, double delta, double* dx) {
  for (size_t i = 0; i < count; ++i) {
    dx[targets[i]] += weights[i] * delta;
  }
}

#if DCS_KERNELS_X86
// Vectorizes the weight·delta products (one rounding each, no contraction —
// explicit mul, and the TU is built with -ffp-contract=off); the scatter
// adds stay scalar *in row order*, so the dx updates are bit-identical to
// the scalar loop. Rows are sorted, so prefetching dx at targets one chunk
// ahead hides the dependent-load latency of the scatter.
__attribute__((target("avx2"))) void AxpyScatterAvx2(const VertexId* targets,
                                                     const double* weights,
                                                     size_t count, double delta,
                                                     double* dx) {
  const __m256d dsplat = _mm256_set1_pd(delta);
  alignas(32) double prod[4];
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    if (i + 8 <= count) {
      _mm_prefetch(reinterpret_cast<const char*>(dx + targets[i + 4]),
                   _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(dx + targets[i + 7]),
                   _MM_HINT_T0);
    }
    _mm256_store_pd(prod, _mm256_mul_pd(_mm256_loadu_pd(weights + i), dsplat));
    dx[targets[i]] += prod[0];
    dx[targets[i + 1]] += prod[1];
    dx[targets[i + 2]] += prod[2];
    dx[targets[i + 3]] += prod[3];
  }
  for (; i < count; ++i) {
    dx[targets[i]] += weights[i] * delta;
  }
}
#endif  // DCS_KERNELS_X86

}  // namespace

void AxpyScatter(const VertexId* targets, const double* weights, size_t count,
                 double delta, double* dx) {
  CounterBlock& counters = Tls();
  Bump(counters, kIdxAxpyElements, count);
#if DCS_KERNELS_X86
  if (UseAvx2(counters)) {
    AxpyScatterAvx2(targets, weights, count, delta, dx);
    return;
  }
#else
  UseAvx2(counters);
#endif
  AxpyScatterScalar(targets, weights, count, delta, dx);
}

// ---------------------------------------------------------------------------
// Gradient extremes scan (CD pair selection)
// ---------------------------------------------------------------------------

namespace {

bool ScanExtremesScalar(const VertexId* candidates, size_t count,
                        const double* x, const double* dx, GradExtremes* out) {
  bool has_max = false, has_min = false;
  for (size_t i = 0; i < count; ++i) {
    const VertexId k = candidates[i];
    const double grad = 2.0 * dx[k];
    if (x[k] < 1.0 && (!has_max || grad > out->max_grad)) {
      out->argmax = k;
      out->max_grad = grad;
      has_max = true;
    }
    if (x[k] > 0.0 && (!has_min || grad < out->min_grad)) {
      out->argmin = k;
      out->min_grad = grad;
      has_min = true;
    }
  }
  return has_max && has_min;
}

#if DCS_KERNELS_X86
// Two-phase exact scan: a gather/max vector pass finds the numeric max/min
// gradient over the eligible sets (ineligible lanes blended to ∓inf), then a
// scalar pass recovers the *first* index attaining each — precisely the
// index the scalar running compare keeps, because a later equal value never
// wins a strict compare. The returned gradients are recomputed from the
// winning indices, so even the ±0.0 sign bits match the scalar scan.
__attribute__((target("avx2"))) bool ScanExtremesAvx2(
    const VertexId* candidates, size_t count, const double* x,
    const double* dx, GradExtremes* out) {
  const double kNegInf = -std::numeric_limits<double>::infinity();
  const double kPosInf = std::numeric_limits<double>::infinity();
  const __m256d two = _mm256_set1_pd(2.0);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d ninf = _mm256_set1_pd(kNegInf);
  const __m256d pinf = _mm256_set1_pd(kPosInf);
  __m256d vmax = ninf;
  __m256d vmin = pinf;
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(candidates + i));
    const __m256d xv = _mm256_i32gather_pd(x, idx, 8);
    const __m256d grad = _mm256_mul_pd(two, _mm256_i32gather_pd(dx, idx, 8));
    vmax = _mm256_max_pd(
        vmax, _mm256_blendv_pd(ninf, grad, _mm256_cmp_pd(xv, one, _CMP_LT_OQ)));
    vmin = _mm256_min_pd(
        vmin,
        _mm256_blendv_pd(pinf, grad, _mm256_cmp_pd(xv, zero, _CMP_GT_OQ)));
  }
  const __m128d max_halves = _mm_max_pd(_mm256_castpd256_pd128(vmax),
                                        _mm256_extractf128_pd(vmax, 1));
  double best_max =
      _mm_cvtsd_f64(_mm_max_sd(max_halves, _mm_unpackhi_pd(max_halves, max_halves)));
  const __m128d min_halves = _mm_min_pd(_mm256_castpd256_pd128(vmin),
                                        _mm256_extractf128_pd(vmin, 1));
  double best_min =
      _mm_cvtsd_f64(_mm_min_sd(min_halves, _mm_unpackhi_pd(min_halves, min_halves)));
  for (; i < count; ++i) {
    const VertexId k = candidates[i];
    const double grad = 2.0 * dx[k];
    if (x[k] < 1.0 && grad > best_max) best_max = grad;
    if (x[k] > 0.0 && grad < best_min) best_min = grad;
  }
  const bool has_max = best_max > kNegInf;
  const bool has_min = best_min < kPosInf;
  if (!has_max || !has_min) return false;
  bool found_max = false, found_min = false;
  for (size_t j = 0; j < count && !(found_max && found_min); ++j) {
    const VertexId k = candidates[j];
    const double grad = 2.0 * dx[k];
    if (!found_max && x[k] < 1.0 && grad == best_max) {
      out->argmax = k;
      found_max = true;
    }
    if (!found_min && x[k] > 0.0 && grad == best_min) {
      out->argmin = k;
      found_min = true;
    }
  }
  DCS_CHECK(found_max && found_min);
  out->max_grad = 2.0 * dx[out->argmax];
  out->min_grad = 2.0 * dx[out->argmin];
  return true;
}
#endif  // DCS_KERNELS_X86

}  // namespace

bool ScanGradientExtremes(const VertexId* candidates, size_t count,
                          const double* x, const double* dx,
                          GradExtremes* out) {
  CounterBlock& counters = Tls();
  Bump(counters, kIdxExtremesScans, 1);
#if DCS_KERNELS_X86
  if (count >= 8 && UseAvx2(counters)) {
    return ScanExtremesAvx2(candidates, count, x, dx, out);
  }
  if (count < 8) Bump(counters, kIdxScalarCalls, 1);
#else
  UseAvx2(counters);
#endif
  return ScanExtremesScalar(candidates, count, x, dx, out);
}

// ---------------------------------------------------------------------------
// Support reduction
// ---------------------------------------------------------------------------

namespace {

double SupportReduceScalar(const VertexId* support, size_t count,
                           const double* x, const double* dx) {
  double f = 0.0;
  for (size_t i = 0; i < count; ++i) {
    const VertexId v = support[i];
    f += x[v] * dx[v];
  }
  return f;
}

#if DCS_KERNELS_X86
// Exact variant: the products x_v·dx_v are gathered and multiplied in
// vectors (elementwise, one rounding each), but the accumulation replays
// them in support order — the sum sequence is instruction-for-instruction
// the scalar reduction, so the result is bit-identical.
__attribute__((target("avx2"))) double SupportReduceAvx2Exact(
    const VertexId* support, size_t count, const double* x, const double* dx) {
  alignas(32) double prod[4];
  double f = 0.0;
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(support + i));
    _mm256_store_pd(prod, _mm256_mul_pd(_mm256_i32gather_pd(x, idx, 8),
                                        _mm256_i32gather_pd(dx, idx, 8)));
    f += prod[0];
    f += prod[1];
    f += prod[2];
    f += prod[3];
  }
  for (; i < count; ++i) {
    const VertexId v = support[i];
    f += x[v] * dx[v];
  }
  return f;
}

// Reassociating variant (fast_math only): four running lanes, folded in a
// fixed order, then the tail in order — deterministic for a given support
// sequence (so still thread-count invariant), but not bit-identical to the
// ordered sum.
__attribute__((target("avx2"))) double SupportReduceAvx2Reassoc(
    const VertexId* support, size_t count, const double* x, const double* dx) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(support + i));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_i32gather_pd(x, idx, 8),
                                           _mm256_i32gather_pd(dx, idx, 8)));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double f = ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3];
  for (; i < count; ++i) {
    const VertexId v = support[i];
    f += x[v] * dx[v];
  }
  return f;
}
#endif  // DCS_KERNELS_X86

}  // namespace

double SupportReduce(const VertexId* support, size_t count, const double* x,
                     const double* dx, bool allow_reassociation) {
  CounterBlock& counters = Tls();
  Bump(counters, kIdxSupportReductions, 1);
#if DCS_KERNELS_X86
  if (count >= 8 && UseAvx2(counters)) {
    return allow_reassociation ? SupportReduceAvx2Reassoc(support, count, x, dx)
                               : SupportReduceAvx2Exact(support, count, x, dx);
  }
  if (count < 8) Bump(counters, kIdxScalarCalls, 1);
#else
  UseAvx2(counters);
#endif
  return SupportReduceScalar(support, count, x, dx);
}

double StagedRowLookup(const VertexId* targets, const double* weights,
                       size_t count, VertexId v) {
  Bump(Tls(), kIdxStagedLookups, 1);
  const VertexId* end = targets + count;
  const VertexId* it = std::lower_bound(targets, end, v);
  if (it == end || *it != v) return 0.0;
  return weights[it - targets];
}

void SeedOrderSort(const std::vector<double>& mu,
                   std::vector<VertexId>* order) {
  const size_t n = mu.size();
  CounterBlock& counters = Tls();
  order->resize(n);
  if (ActiveKernelIsa() == KernelIsa::kScalar) {
    Bump(counters, kIdxScalarCalls, 1);
    std::iota(order->begin(), order->end(), VertexId{0});
    std::sort(order->begin(), order->end(), [&mu](VertexId a, VertexId b) {
      return mu[a] != mu[b] ? mu[a] > mu[b] : a < b;
    });
    return;
  }
  Bump(counters, kIdxAvx2Calls, 1);
  // Pack each mu into a key whose unsigned ascending order is exactly
  // "descending mu": collapse −0 to +0, sign-flip the IEEE bits into a
  // monotone unsigned integer, complement. Equal mu ⇔ equal key, so a
  // stable sort of the keys reproduces the comparator's ascending-id
  // tie-break by construction.
  constexpr uint64_t kSignBit = 0x8000000000000000ull;
  std::vector<uint64_t> keys(n);
  for (size_t i = 0; i < n; ++i) {
    uint64_t bits;
    std::memcpy(&bits, &mu[i], sizeof bits);
    if (bits == kSignBit) bits = 0;  // −0 → +0
    const uint64_t ascending = (bits & kSignBit) != 0 ? ~bits : bits | kSignBit;
    keys[i] = ~ascending;
  }

  // Fast path: distinct-value counting sort. Discretized pipelines
  // concentrate mu on a handful of values (levels × small core numbers), so
  // one open-addressed table pass + a sort of the distinct keys + one
  // stable scatter replaces eight radix passes. Bail to radix when the
  // distinct count grows past the table's comfort zone.
  constexpr size_t kMaxDistinct = 1024;
  constexpr size_t kTableSize = 4096;  // power of two, ≥ 4× kMaxDistinct
  constexpr uint32_t kEmpty = 0xFFFFFFFFu;
  const auto probe = [](uint64_t key) {
    // SplitMix64 finalizer: deterministic, well-mixed table index.
    uint64_t h = key + 0x9E3779B97F4A7C15ull;
    h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
    h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
    return static_cast<size_t>((h ^ (h >> 31)) & (kTableSize - 1));
  };
  std::vector<uint64_t> slot_key(kTableSize);
  std::vector<uint32_t> slot_count(kTableSize, kEmpty);
  std::vector<size_t> used;
  used.reserve(kMaxDistinct);
  bool counting_ok = true;
  for (size_t i = 0; i < n && counting_ok; ++i) {
    size_t s = probe(keys[i]);
    while (slot_count[s] != kEmpty && slot_key[s] != keys[i]) {
      s = (s + 1) & (kTableSize - 1);
    }
    if (slot_count[s] == kEmpty) {
      if (used.size() == kMaxDistinct) {
        counting_ok = false;
        break;
      }
      slot_key[s] = keys[i];
      slot_count[s] = 1;
      used.push_back(s);
    } else {
      ++slot_count[s];
    }
  }
  if (counting_ok) {
    // Ascending key = descending mu. Turn counts into start offsets in key
    // order, then scatter ids in input (= ascending id) order: stable.
    std::sort(used.begin(), used.end(), [&](size_t a, size_t b) {
      return slot_key[a] < slot_key[b];
    });
    uint32_t running = 0;
    for (const size_t s : used) {
      const uint32_t count = slot_count[s];
      slot_count[s] = running;
      running += count;
    }
    for (size_t i = 0; i < n; ++i) {
      size_t s = probe(keys[i]);
      while (slot_key[s] != keys[i]) s = (s + 1) & (kTableSize - 1);
      (*order)[slot_count[s]++] = static_cast<VertexId>(i);
    }
    return;
  }

  // Generic fallback: stable LSD radix over the 8 key bytes, ids riding
  // along; byte columns where every key agrees permute nothing and are
  // skipped.
  std::vector<uint64_t> scratch_keys(n);
  std::vector<VertexId> ids(n), scratch_ids(n);
  for (size_t i = 0; i < n; ++i) ids[i] = static_cast<VertexId>(i);
  for (int shift = 0; shift < 64; shift += 8) {
    size_t hist[256] = {0};
    for (size_t i = 0; i < n; ++i) ++hist[(keys[i] >> shift) & 0xFF];
    if (n != 0 && hist[(keys[0] >> shift) & 0xFF] == n) continue;
    size_t running = 0;
    for (size_t b = 0; b < 256; ++b) {
      const size_t count = hist[b];
      hist[b] = running;
      running += count;
    }
    for (size_t i = 0; i < n; ++i) {
      const size_t dst = hist[(keys[i] >> shift) & 0xFF]++;
      scratch_keys[dst] = keys[i];
      scratch_ids[dst] = ids[i];
    }
    keys.swap(scratch_keys);
    ids.swap(scratch_ids);
  }
  *order = std::move(ids);
}

// ---------------------------------------------------------------------------
// Graph-producing kernels
// ---------------------------------------------------------------------------

Result<Graph> GraphKernels::BuildDifferenceGraph(const Graph& g1,
                                                 const Graph& g2,
                                                 double alpha) {
  if (g1.NumVertices() != g2.NumVertices()) {
    return Status::InvalidArgument(
        "difference graph requires equal vertex sets: n1=" +
        std::to_string(g1.NumVertices()) +
        " n2=" + std::to_string(g2.NumVertices()));
  }
  if (!std::isfinite(alpha) || alpha <= 0.0) {
    return Status::InvalidArgument("alpha must be finite and positive");
  }
  const VertexId n = g1.NumVertices();
  CounterBlock& counters = Tls();
  Bump(counters, kIdxDifferenceRows, n);
  Bump(counters, kIdxScalarCalls, 1);
  // Single merge pass emitting the symmetric CSR directly. Both directions
  // of an edge compute d from the same operand bits (undirected rows store
  // the same weight both ways), so the rows come out mirror-identical, and
  // the keep rule |d| > kDefaultZeroEps is exactly the reference path's
  // "emit d != 0.0, then GraphBuilder::Build drops |w| <= zero_eps" (each
  // pair is emitted once there, so no accumulation intervenes).
  std::vector<size_t> offsets(n + 1, 0);
  std::vector<Neighbor> neighbors;
  neighbors.reserve(g1.neighbors_.size() + g2.neighbors_.size());
  for (VertexId u = 0; u < n; ++u) {
    const auto row1 = g1.NeighborsOf(u);
    const auto row2 = g2.NeighborsOf(u);
    size_t i = 0, j = 0;
    while (i < row1.size() || j < row2.size()) {
      VertexId v;
      double d;
      if (j == row2.size() || (i < row1.size() && row1[i].to < row2[j].to)) {
        v = row1[i].to;
        d = -alpha * row1[i].weight;
        ++i;
      } else if (i == row1.size() || row2[j].to < row1[i].to) {
        v = row2[j].to;
        d = row2[j].weight;
        ++j;
      } else {
        v = row1[i].to;
        d = row2[j].weight - alpha * row1[i].weight;
        ++i;
        ++j;
      }
      if (!std::isfinite(d)) {
        return Status::InvalidArgument("non-finite edge weight");
      }
      if (std::fabs(d) > kDefaultZeroEps) {
        neighbors.push_back(Neighbor{v, d});
      }
    }
    offsets[u + 1] = neighbors.size();
  }
  neighbors.shrink_to_fit();
  return Graph(std::move(offsets), std::move(neighbors));
}

Result<Graph> GraphKernels::DiscretizeWeights(const Graph& gd,
                                              const DiscretizeSpec& spec) {
  DCS_RETURN_NOT_OK(spec.Validate());
  const VertexId n = gd.NumVertices();
  const size_t total = gd.neighbors_.size();
  // Stage the weights packed, map them in one vectorized sweep, then compact
  // the survivors row by row. Keep rule mirrors the reference (emit mapped
  // != 0.0, builder drops |w| <= zero_eps); the mapped levels are identical
  // bits in both row directions, so the output stays mirror-symmetric.
  std::vector<double> mapped(total);
  for (size_t i = 0; i < total; ++i) mapped[i] = gd.neighbors_[i].weight;
  DiscretizeMapPacked(mapped.data(), mapped.data(), total, spec);
  std::vector<size_t> offsets(n + 1, 0);
  std::vector<Neighbor> neighbors;
  neighbors.reserve(total);
  for (VertexId u = 0; u < n; ++u) {
    const size_t begin = gd.offsets_[u];
    const size_t end = gd.offsets_[u + 1];
    for (size_t i = begin; i < end; ++i) {
      const double m = mapped[i];
      if (m != 0.0 && std::fabs(m) > kDefaultZeroEps) {
        neighbors.push_back(Neighbor{gd.neighbors_[i].to, m});
      }
    }
    offsets[u + 1] = neighbors.size();
  }
  neighbors.shrink_to_fit();
  return Graph(std::move(offsets), std::move(neighbors));
}

Graph GraphKernels::PositivePart(const Graph& gd) {
  const VertexId n = gd.NumVertices();
  CounterBlock& counters = Tls();
  Bump(counters, kIdxScalarCalls, 1);
  // Branchless single-pass compaction: every neighbor is written, the write
  // cursor only advances past the kept ones. Keep rule and order match the
  // reference exactly, so the CSR comes out bit-identical.
  std::vector<size_t> offsets(static_cast<size_t>(n) + 1, 0);
  std::vector<Neighbor> neighbors(gd.neighbors_.size());
  size_t out = 0;
  for (VertexId u = 0; u < n; ++u) {
    const size_t end = gd.offsets_[u + 1];
    for (size_t i = gd.offsets_[u]; i < end; ++i) {
      const Neighbor nb = gd.neighbors_[i];
      neighbors[out] = nb;
      out += nb.weight > 0.0 ? 1 : 0;
    }
    offsets[u + 1] = out;
  }
  neighbors.resize(out);
  neighbors.shrink_to_fit();
  return Graph(std::move(offsets), std::move(neighbors));
}

Graph GraphKernels::WeightsClampedAbove(const Graph& gd, double cap) {
  DCS_CHECK(cap > 0.0) << "clamp cap must be positive, got " << cap;
  Graph out = gd;
  ClampAosWeights(out.neighbors_.data(), out.neighbors_.size(), cap);
  return out;
}

}  // namespace dcs
