// SEACD — Coordinate-Descent Shrink-and-Expansion (Algorithm 3).
//
// Alternates (a) 2-coordinate descent to a local KKT point on the current
// support (Shrink) with (b) the SEA Expansion step that injects every vertex
// whose gradient exceeds λ = 2f (Expand), until the expansion set is empty —
// at which point x satisfies the global KKT conditions of Eq. 7 (Theorem 4).

#ifndef DCS_CORE_SEACD_H_
#define DCS_CORE_SEACD_H_

#include <cstdint>

#include "core/coordinate_descent.h"
#include "core/embedding.h"
#include "graph/graph.h"
#include "util/status.h"

namespace dcs {

/// Options of the SEACD loop.
struct SeacdOptions {
  CoordinateDescentOptions descent;
  /// Hard cap on Shrink+Expand rounds (the loop converges long before this).
  uint32_t max_rounds = 10'000;
};

/// Outcome of a SEACD run.
struct SeacdResult {
  Embedding x;               ///< KKT point reached
  double affinity = 0.0;     ///< f(x) = xᵀDx
  uint32_t rounds = 0;       ///< Shrink+Expand rounds executed
  uint64_t cd_iterations = 0;///< total coordinate-descent iterations
  bool converged = false;    ///< true iff the expansion set emptied
};

/// Lightweight statistics of an in-place SEACD run (the embedding lives in
/// the caller's AffinityState; nothing of size O(n) is copied).
struct SeacdRunStats {
  double affinity = 0.0;
  uint32_t rounds = 0;
  uint64_t cd_iterations = 0;
  bool converged = false;
};

/// \brief Runs Algorithm 3 on `state` starting from its current embedding.
///
/// The multi-initialization drivers (NewSEA, SEACD+Refine) call this with a
/// single reused state — resetting and re-running costs O(support edges),
/// not O(n), per initialization.
SeacdRunStats RunSeacdInPlace(AffinityState* state,
                              const SeacdOptions& options = {});

/// \brief Runs Algorithm 3 from the initial embedding `x0`.
///
/// `graph` is typically GD+ (per §V-C the DCSGA optimum lives there), but any
/// signed graph is accepted — coordinate descent handles negative entries.
/// Fails if x0 is not on the simplex.
Result<SeacdResult> RunSeacd(const Graph& graph, const Embedding& x0,
                             const SeacdOptions& options = {});

/// \brief Convenience: RunSeacd started from the unit vector e_seed.
Result<SeacdResult> RunSeacdFromVertex(const Graph& graph, VertexId seed,
                                       const SeacdOptions& options = {});

}  // namespace dcs

#endif  // DCS_CORE_SEACD_H_
