#include "core/replicator.h"

#include <cmath>
#include <vector>

#include "util/logging.h"

namespace dcs {

ReplicatorStats ReplicatorShrink(AffinityState* state,
                                 const ReplicatorOptions& options) {
  ReplicatorStats stats;
  double f = state->Affinity();
  while (stats.sweeps < options.max_sweeps) {
    if (!(f > 1e-100) || !std::isfinite(f)) {
      // A (numerically) zero objective — e.g. a single-vertex support — is a
      // fixed point of the dynamics' stopping rule: no multiplicative update
      // can move it. The underflow guard matters: dividing by a denormal f
      // overflows x to inf and then poisons the state with NaNs.
      stats.converged = true;
      return stats;
    }
    ++stats.sweeps;
    // One synchronous sweep: x_i ← x_i (Dx)_i / f over the current support.
    const std::vector<VertexId> support(state->support().begin(),
                                        state->support().end());
    std::vector<double> new_x(support.size());
    const double inv_f = 1.0 / f;
    for (size_t idx = 0; idx < support.size(); ++idx) {
      const VertexId v = support[idx];
      double updated = state->x(v) * state->dx(v) * inv_f;
      if (updated < 0.0) {
        // dx can dip a hair below zero from floating-point cancellation even
        // on non-negative graphs; anything materially negative means the
        // caller violated the non-negative-weights precondition.
        DCS_CHECK(updated > -1e-9)
            << "replicator requires non-negative weights";
        updated = 0.0;
      }
      new_x[idx] = updated;
    }
    for (size_t idx = 0; idx < support.size(); ++idx) {
      state->SetX(support[idx], new_x[idx]);
    }
    state->Renormalize();
    const double f_new = state->Affinity();
    const double gain = f_new - f;
    f = f_new;
    if (gain <= options.objective_tolerance) {
      stats.converged = true;
      return stats;
    }
  }
  return stats;
}

}  // namespace dcs
