// 2-coordinate descent to a local KKT point (§V-B of the paper).
//
// Each iteration picks i = argmax_{k∈S: x_k<1} ∇_k f and
// j = argmin_{k∈S: x_k>0} ∇_k f, freezes the other n−2 coordinates, and
// maximizes the one-dimensional quadratic g(x_i) of Eq. 9 exactly under
// x_i + x_j = C. Convergence criterion (the *correct* local-KKT test the
// paper contrasts with SEA's loose objective-based test):
//   max_{k∈S:x_k<1} ∇_k f − min_{k∈S:x_k>0} ∇_k f  ≤  epsilon_scale / |S|.
//
// Unlike the replicator dynamics of the original SEA, this works on signed
// matrices D, and converges far faster on dense graphs (Table VII, Fig. 2).

#ifndef DCS_CORE_COORDINATE_DESCENT_H_
#define DCS_CORE_COORDINATE_DESCENT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/embedding.h"
#include "graph/graph.h"

namespace dcs {

/// Tuning knobs of the 2-coordinate-descent solver.
struct CoordinateDescentOptions {
  /// Convergence threshold is epsilon_scale / |S| (paper: 1e-2 / |S|).
  double epsilon_scale = 1e-2;
  /// Hard cap on iterations; a hit is reported, not fatal.
  uint64_t max_iterations = 2'000'000;
};

/// Outcome of one descent run.
struct CoordinateDescentStats {
  uint64_t iterations = 0;
  /// False iff the iteration budget ran out while the KKT gap was still
  /// open. A run whose gap closes exactly on the max_iterations-th move
  /// reports converged=true (the extremes are re-checked after the loop).
  bool converged = false;
};

/// \brief Drives `state` to a local KKT point on the vertex set S given by
/// `allowed` (coordinates outside S are never touched; they are assumed to
/// be 0 or deliberately frozen).
///
/// The objective f(x) is non-decreasing across iterations. Entries of
/// `allowed` must be unique.
CoordinateDescentStats DescendToLocalKkt(
    AffinityState* state, std::span<const VertexId> allowed,
    const CoordinateDescentOptions& options = {});

/// \brief True iff `state` satisfies the *global* KKT conditions (Eq. 7) up
/// to tolerance: ∇_u ≤ λ + tol for all u, and |∇_u − λ| ≤ tol on the
/// support, with λ = 2f.
bool SatisfiesKkt(const AffinityState& state, double tolerance);

}  // namespace dcs

#endif  // DCS_CORE_COORDINATE_DESCENT_H_
