// NewSEA (Algorithm 5) and the multi-initialization DCSGA drivers of §VI-A.
//
// Three solver configurations from the paper's experiments:
//  * NewSEA            — SEACD + Refinement + the smart initialization order
//                        of §V-D: for each vertex u, μ_u = τ_u·w_u/(τ_u+1)
//                        upper-bounds (Theorem 6) the affinity of any clique
//                        embedding containing u, where w_u bounds the max
//                        edge weight of u's ego net and τ_u is u's core
//                        number in GD+; vertices are tried in descending μ_u
//                        and the loop stops once μ_u ≤ f(best).
//  * SEACD + Refine    — same inner solver, initialized from *every* vertex
//                        (ShrinkKind::kCoordinateDescent, smart init off).
//  * SEA + Refine      — replicator-dynamics SEA [18] from every vertex
//                        (ShrinkKind::kReplicator); counts expansion errors.
//
// All three run on GD+: Theorem 5 shows an optimal DCSGA solution is a
// positive clique of GD, i.e. a clique of GD+.

#ifndef DCS_CORE_NEWSEA_H_
#define DCS_CORE_NEWSEA_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/coordinate_descent.h"
#include "core/embedding.h"
#include "core/replicator.h"
#include "core/seacd.h"
#include "core/sea.h"
#include "graph/graph.h"
#include "util/cancellation.h"
#include "util/status.h"

namespace dcs {

class ThreadPool;  // util/thread_pool.h

/// Which Shrink stage the multi-init driver uses.
enum class ShrinkKind {
  kCoordinateDescent,  ///< SEACD (Algorithm 3)
  kReplicator,         ///< original SEA [18]
};

/// A positive clique discovered by one initialization (support + value).
/// Stored sparsely: `weights[i]` is the embedding mass of `members[i]`.
struct CliqueRecord {
  std::vector<VertexId> members;  ///< ascending vertex ids
  std::vector<double> weights;    ///< parallel to members; sums to 1
  double affinity = 0.0;
};

/// Options shared by NewSEA and the all-inits drivers.
struct DcsgaOptions {
  ShrinkKind shrink = ShrinkKind::kCoordinateDescent;
  SeacdOptions seacd;
  SeaOptions sea;
  CoordinateDescentOptions refinement_descent;
  /// Collect every distinct positive clique found across initializations
  /// (needed by the topic tables and Fig. 3; costs memory).
  bool collect_cliques = false;
  /// Worker shards for the NewSEA multi-init loop. 1 (default) runs the
  /// exact sequential Algorithm 5 loop; 0 means "use everything granted" —
  /// the supplied ThreadPool's concurrency, or the hardware concurrency when
  /// no pool is passed; k > 1 asks for exactly k shards. Affinity, support
  /// and embedding are bit-identical across all values (see RunNewSea);
  /// the initializations / cd_iterations / pruned_seeds counters are not,
  /// because how far Theorem 6 pruning reaches depends on thread timing.
  /// Ignored (sequential) when collect_cliques is set: the clique harvest
  /// depends on which seeds the bound pruned.
  uint32_t parallelism = 1;
  /// Skip the O(m) non-negativity scan of gd_plus. Set only when the caller
  /// has already validated the graph (MinerSession validates each cached
  /// pipeline's GD+ once instead of on every solve).
  bool assume_nonnegative = false;
  /// Cooperative cancellation: the multi-init loop polls this token between
  /// seeds (sequential) / seed chunks (sharded) and aborts the solve with
  /// Status::Cancelled once it fires. Never sampled on the uncancelled path
  /// in a way that affects results — an uncancelled run stays bit-identical.
  /// Not owned; must outlive the solve. nullptr = not cancellable.
  const CancelToken* cancel = nullptr;
  /// Permit floating-point reassociation in the affinity reduction kernels
  /// (core/kernels.h SupportReduce). Off (default): every solve is
  /// bit-identical to the scalar reference kernels at every thread count
  /// and ISA. On: reductions may use vector-lane accumulation — still
  /// deterministic for a fixed graph and seed (per-seed arithmetic does not
  /// depend on thread timing), but no longer bit-identical to the default
  /// path. Plumbed from SessionOptions::fast_math by the api/ facade.
  bool fast_math = false;
};

/// Result of a multi-initialization DCSGA solve.
struct DcsgaResult {
  Embedding x;                      ///< best embedding found
  std::vector<VertexId> support;    ///< its support (a clique of GD+)
  double affinity = 0.0;            ///< f(x) = xᵀD+x = xᵀDx on the support
  uint64_t initializations = 0;     ///< seeds actually tried
  uint64_t pruned_seeds = 0;        ///< candidate seeds never descended from
                                    ///< (Theorem 6 / isolated-vertex skips)
  uint32_t expansion_errors = 0;    ///< replicator baseline only
  uint64_t cd_iterations = 0;       ///< coordinate-descent iterations total
  uint64_t replicator_sweeps = 0;   ///< replicator sweeps total
  std::vector<CliqueRecord> cliques;///< if collect_cliques: dedup'd records
};

/// \brief Per-vertex smart-initialization upper bounds of §V-D.
struct SmartInitBounds {
  std::vector<double> w;    ///< w_u: max edge weight touching the ego net T_u
  std::vector<uint32_t> tau;///< τ_u: core number in GD+
  std::vector<double> mu;   ///< μ_u = τ_u·w_u/(τ_u+1)
  /// Max incident edge weight per vertex (−inf when isolated) — the
  /// intermediate w_u is the closed-neighborhood max of. Kept so the
  /// streaming delta path can re-derive w only around changed edges.
  std::vector<double> max_incident;
  /// The Algorithm 5 seed order: vertices by descending μ, ties by
  /// ascending id — a *unique* total order, so the streaming delta path can
  /// maintain it bit-identically by a remove-and-merge instead of a fresh
  /// O(n log n) sort, and RunNewSea can skip its per-solve sort entirely
  /// when bounds come from a cached pipeline.
  std::vector<VertexId> order;
};

/// Computes w_u, τ_u and μ_u for every vertex of `gd_plus` in O(m + n).
SmartInitBounds ComputeSmartInitBounds(const Graph& gd_plus);

/// One undirected GD+ pair whose weight changed between two graph versions
/// (0 encodes "absent on that side"; a weight can never be 0 otherwise).
struct PositivePairDelta {
  VertexId u = 0;
  VertexId v = 0;
  double old_weight = 0.0;
  double new_weight = 0.0;
};

/// \brief Maintains ComputeSmartInitBounds output across a batch of GD+
/// edge changes — the §V-D half of the streaming O(Δ) update path.
///
/// `bounds` must hold ComputeSmartInitBounds(old_gd_plus) on entry and holds
/// values *bit-identical* to ComputeSmartInitBounds(new_gd_plus) on return
/// (the property the streaming equivalence tests pin): w/μ are re-derived by
/// the exact full-computation formulas, but only over the closed
/// neighborhoods of the changed pairs, and τ is maintained by the
/// incremental core-update traversals of graph/kcore.h (falling back to one
/// full CoreNumbers pass when the batch changes many GD+ edges
/// structurally). `changes` lists every pair whose GD+ weight differs
/// between the versions, in any order, with no duplicates.
void ApplySmartInitBoundsDelta(const Graph& old_gd_plus,
                               const Graph& new_gd_plus,
                               std::span<const PositivePairDelta> changes,
                               SmartInitBounds* bounds);

/// \brief The precondition scan of every DCSGA driver: fails with
/// InvalidArgument if `gd_plus` has a negative edge weight. O(m). Callers
/// that run many solves on one validated graph do this once and set
/// DcsgaOptions::assume_nonnegative.
Status ValidateNonNegativeWeights(const Graph& gd_plus);

/// \brief NewSEA (Algorithm 5): smart-ordered initializations with the
/// μ_u ≤ f(best) early stop; each initialization runs SEACD then Refinement.
///
/// `gd_plus` must have no negative edge weights (pass Graph::PositivePart()
/// of the difference graph). A graph without positive edges yields the
/// trivial single-vertex solution of affinity 0.
Result<DcsgaResult> RunNewSea(const Graph& gd_plus,
                              const DcsgaOptions& options = {});

/// \brief RunNewSea with precomputed smart-initialization bounds.
///
/// `bounds` must have been computed by ComputeSmartInitBounds on this exact
/// `gd_plus` (size-checked only). Lets callers that answer many queries on
/// one graph — MinerSession's pipeline cache — pay the O(m + n) bound
/// computation once.
Result<DcsgaResult> RunNewSea(const Graph& gd_plus,
                              const SmartInitBounds& bounds,
                              const DcsgaOptions& options = {});

/// \brief RunNewSea with intra-request parallelism: the μ-ordered seed list
/// is sharded in chunks across `options.parallelism` workers on `pool`.
///
/// Each shard owns its AffinityState; a shared atomic lower bound on the
/// best affinity seen so far drives Theorem 6 pruning (strict comparison, so
/// every seed that could still win is descended from); the reduction keeps
/// (max affinity, earliest μ-order seed). Affinity, support and embedding
/// are therefore bit-identical to the sequential loop for every thread
/// count — only the work counters vary with timing.
///
/// `pool` may be null: a transient pool of parallelism − 1 workers is
/// spawned for the call (the calling thread participates). A session that
/// serves many requests passes its shared pool instead.
Result<DcsgaResult> RunNewSea(const Graph& gd_plus,
                              const SmartInitBounds& bounds,
                              const DcsgaOptions& options, ThreadPool* pool);

/// \brief The SEACD+Refine / SEA+Refine baselines: one initialization per
/// vertex of `gd_plus`, no smart ordering, no pruning. Selects Shrink by
/// `options.shrink`.
Result<DcsgaResult> RunDcsgaAllInits(const Graph& gd_plus,
                                     const DcsgaOptions& options = {});

/// \brief Drops exact duplicates and cliques fully contained in another
/// collected clique (the paper's post-processing for the topic tables and
/// Fig. 3). Keeps the input order among survivors.
std::vector<CliqueRecord> FilterMaximalCliques(std::vector<CliqueRecord> in);

}  // namespace dcs

#endif  // DCS_CORE_NEWSEA_H_
