// The original SEA algorithm of Liu et al. [18] (paper Appendix A), used as
// the experimental baseline "SEA+Refine" (§VI-A, Table VII, Fig. 2).
//
// Identical Shrink/Expand structure to SEACD (Algorithm 3), but the Shrink
// stage is the replicator dynamics with the paper-faithful *loose*
// convergence condition (objective gain ≤ 1e-6). Because that condition can
// stop short of a local KKT point, the Expansion step — whose correctness
// assumes a local KKT point — sometimes *reduces* the objective. Those events
// are counted as `expansion_errors`, reproducing the "#Errors in SEA" column
// of Table VII and the error-rate plot of Fig. 2b.

#ifndef DCS_CORE_SEA_H_
#define DCS_CORE_SEA_H_

#include <cstdint>

#include "core/embedding.h"
#include "core/replicator.h"
#include "graph/graph.h"
#include "util/status.h"

namespace dcs {

/// Options of a replicator-based SEA run.
struct SeaOptions {
  ReplicatorOptions replicator;
  /// Hard cap on Shrink+Expand rounds. Because the loose shrink test lets
  /// the expansion set keep re-including support vertices, the baseline can
  /// oscillate for a long time before Z empties; the cap bounds that (the
  /// run is still reported as not converged).
  uint32_t max_rounds = 2'000;
};

/// Outcome of a replicator-based SEA run.
struct SeaRunResult {
  Embedding x;
  double affinity = 0.0;
  uint32_t rounds = 0;
  uint64_t replicator_sweeps = 0;
  /// Number of Expansion steps that decreased the objective — the Shrink
  /// stage had not actually reached a local KKT point.
  uint32_t expansion_errors = 0;
  bool converged = false;
};

/// Lightweight statistics of an in-place SEA run.
struct SeaRunStats {
  double affinity = 0.0;
  uint32_t rounds = 0;
  uint64_t replicator_sweeps = 0;
  uint32_t expansion_errors = 0;
  bool converged = false;
};

/// \brief Runs SEA on `state` starting from its current embedding.
///
/// Precondition (checked only by the RunSea wrapper, for speed in
/// multi-initialization loops): the state's graph has no negative weights.
SeaRunStats RunSeaInPlace(AffinityState* state, const SeaOptions& options = {});

/// \brief Runs SEA (replicator Shrink + Expansion) from `x0` on a
/// non-negatively weighted graph (GD+). Fails if x0 is off the simplex or
/// the graph has negative weights (the replicator dynamics would diverge).
Result<SeaRunResult> RunSea(const Graph& gd_plus, const Embedding& x0,
                            const SeaOptions& options = {});

}  // namespace dcs

#endif  // DCS_CORE_SEA_H_
