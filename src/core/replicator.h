// Replicator-dynamics Shrink stage of the original SEA algorithm
// (Liu et al. [18]; paper Appendix A).
//
//   x_i(t+1) = x_i(t) · (Dx)_i / xᵀDx ,   i in S,
//
// valid only for non-negative D (run on GD+). The baseline deliberately uses
// the paper's *loose* convergence test — stop when the objective improves by
// less than `objective_tolerance` (1e-6) in one sweep — which §V-C/§VI show
// may stop short of a local KKT point and cause the subsequent Expansion to
// *decrease* the objective ("errors in expansion", Table VII and Fig. 2b).

#ifndef DCS_CORE_REPLICATOR_H_
#define DCS_CORE_REPLICATOR_H_

#include <cstdint>
#include <span>

#include "core/embedding.h"
#include "graph/graph.h"
#include "util/status.h"

namespace dcs {

/// Options of the replicator Shrink stage.
struct ReplicatorOptions {
  /// Stop when one sweep improves f by no more than this (paper: 1e-6).
  double objective_tolerance = 1e-6;
  /// Hard cap on sweeps per Shrink call.
  uint64_t max_sweeps = 200'000;
};

/// Statistics of one replicator Shrink run.
struct ReplicatorStats {
  uint64_t sweeps = 0;
  bool converged = false;  ///< false iff max_sweeps was exhausted
};

/// \brief Runs replicator sweeps on the support of `state` until the
/// objective stalls. Requires a graph with non-negative weights; entries
/// outside the current support stay 0 (the dynamics cannot revive them).
ReplicatorStats ReplicatorShrink(AffinityState* state,
                                 const ReplicatorOptions& options = {});

}  // namespace dcs

#endif  // DCS_CORE_REPLICATOR_H_
