#include "core/dcs_greedy.h"

#include <algorithm>

#include "densest/peel.h"
#include "graph/components.h"
#include "graph/difference.h"
#include "graph/stats.h"
#include "util/logging.h"

namespace dcs {

Result<DcsadResult> RunDcsGreedy(const Graph& gd) {
  const VertexId n = gd.NumVertices();
  if (n == 0) return Status::InvalidArgument("empty graph");

  // Case 1 of §IV-B: no positive edge — any singleton is optimal (ρ = 0).
  Edge heaviest{0, 0, 0.0};
  for (VertexId u = 0; u < n; ++u) {
    for (const Neighbor& nb : gd.NeighborsOf(u)) {
      if (u < nb.to && nb.weight > heaviest.weight) {
        heaviest = Edge{u, nb.to, nb.weight};
      }
    }
  }
  DcsadResult result;
  if (heaviest.weight <= 0.0) {
    result.subset = {0};
    result.density = 0.0;
    result.ratio_bound = 1.0;
    return result;
  }

  // Candidate 1: the heaviest edge. ρ_D({u,v}) = D(u,v).
  std::vector<VertexId> best = {heaviest.u, heaviest.v};
  result.candidate_densities[0] = heaviest.weight;
  double best_density = heaviest.weight;

  // Candidate 2: greedy peel of GD itself.
  const PeelResult peel_gd = GreedyPeel(gd);
  result.candidate_densities[1] = peel_gd.density;
  if (peel_gd.density > best_density) {
    best_density = peel_gd.density;
    best = peel_gd.subset;
  }

  // Candidate 3: greedy peel of GD+, evaluated under ρ_D. Its ρ_{D+} value
  // also powers the Theorem 2 ratio bound.
  const Graph gd_plus = gd.PositivePart();
  const PeelResult peel_gd_plus = GreedyPeel(gd_plus);
  const double candidate3_in_gd = AverageDegreeDensity(gd, peel_gd_plus.subset);
  result.candidate_densities[2] = candidate3_in_gd;
  if (candidate3_in_gd > best_density) {
    best_density = candidate3_in_gd;
    best = peel_gd_plus.subset;
  }

  // Lines 8–9: a disconnected winner is replaced by its best component.
  std::vector<std::vector<VertexId>> components = InducedComponents(gd, best);
  if (components.size() > 1) {
    result.component_refined = true;
    double best_component_density = 0.0;
    size_t best_component = 0;
    for (size_t c = 0; c < components.size(); ++c) {
      const double density = AverageDegreeDensity(gd, components[c]);
      if (c == 0 || density > best_component_density) {
        best_component_density = density;
        best_component = c;
      }
    }
    best = components[best_component];
    // Property 1: the best component's density is >= the whole set's.
    DCS_CHECK(best_component_density >= best_density - 1e-9);
    best_density = best_component_density;
  }

  std::sort(best.begin(), best.end());
  result.subset = std::move(best);
  result.density = AverageDegreeDensity(gd, result.subset);
  // Theorem 2: OPT ≤ 2·ρ_{D+}(S2), so β = 2·ρ_{D+}(S2)/ρ_D(S).
  DCS_CHECK(result.density > 0.0);
  result.ratio_bound = 2.0 * peel_gd_plus.density / result.density;
  return result;
}

Result<DcsadResult> RunDcsGreedy(const Graph& g1, const Graph& g2) {
  DCS_ASSIGN_OR_RETURN(Graph gd, BuildDifferenceGraph(g1, g2));
  return RunDcsGreedy(gd);
}

}  // namespace dcs
