// Refinement of a KKT point to a positive-clique solution (Algorithm 4,
// Theorem 5).
//
// A KKT point of DCSGA whose support is not a positive clique can always be
// improved (or kept equal) by merging the mass of one non-adjacent /
// negatively-connected pair into a single vertex and re-descending to a
// local KKT point; the support strictly shrinks each round, so the loop
// terminates with GD+(Sy) a clique. Positive-clique outputs are the
// interpretability guarantee of DCSGA (§V-C): every pair inside the reported
// subgraph strengthened its connection from G1 to G2.

#ifndef DCS_CORE_REFINEMENT_H_
#define DCS_CORE_REFINEMENT_H_

#include <cstdint>

#include "core/coordinate_descent.h"
#include "core/embedding.h"
#include "graph/graph.h"
#include "util/status.h"

namespace dcs {

/// Outcome of a refinement run.
struct RefinementResult {
  Embedding x;              ///< refined embedding; support is a clique
  double affinity = 0.0;    ///< f after refinement (>= f before)
  uint32_t merges = 0;      ///< vertices squeezed out of the support
  uint64_t cd_iterations = 0;
};

/// Lightweight statistics of an in-place refinement.
struct RefinementRunStats {
  double affinity = 0.0;
  uint32_t merges = 0;
  uint64_t cd_iterations = 0;
};

/// \brief Runs Algorithm 4 on `state` in place.
///
/// Precondition (checked only by the RefineToPositiveClique wrapper): the
/// state's graph has no negative weights.
RefinementRunStats RefineInPlace(
    AffinityState* state, const CoordinateDescentOptions& descent_options = {});

/// \brief Runs Algorithm 4 on `x0` over `gd_plus`.
///
/// `gd_plus` must contain no negative edge weights (it is GD+; Algorithm 4's
/// D(i,j) < 0 case is subsumed by running on the positive part — see the
/// discussion after Theorem 5). Fails if x0 is off the simplex or a negative
/// edge is found.
Result<RefinementResult> RefineToPositiveClique(
    const Graph& gd_plus, const Embedding& x0,
    const CoordinateDescentOptions& descent_options = {});

}  // namespace dcs

#endif  // DCS_CORE_REFINEMENT_H_
