#include "core/expansion.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace dcs {
namespace {

// Reusable per-thread scratch for the expansion steps. Expand runs once per
// SEACD round over supports that are tiny next to n, so the former
// O(n)-zeroed allocations per call dominated the step on large graphs;
// epoch stamps make membership tests O(1) without ever clearing. gamma_of
// entries are only read through their epoch stamp, so stale values from
// earlier calls are unreachable.
struct ExpansionScratch {
  std::vector<uint64_t> considered_epoch;
  std::vector<uint64_t> gamma_epoch;
  std::vector<double> gamma_of;
  uint64_t epoch = 0;
};

ExpansionScratch& LocalScratch(size_t n) {
  thread_local ExpansionScratch scratch;
  if (scratch.considered_epoch.size() < n) {
    scratch.considered_epoch.resize(n, 0);
    scratch.gamma_epoch.resize(n, 0);
    scratch.gamma_of.resize(n, 0.0);
  }
  return scratch;
}

}  // namespace

std::vector<VertexId> ComputeExpansionSet(const AffinityState& state,
                                          double margin,
                                          bool include_support) {
  const double f = state.Affinity();
  const Graph& graph = state.graph();
  std::vector<VertexId> z;
  ExpansionScratch& scratch = LocalScratch(graph.NumVertices());
  const uint64_t epoch = ++scratch.epoch;
  for (VertexId u : state.support()) {
    scratch.considered_epoch[u] = epoch;
    if (include_support && state.dx(u) > f + margin) z.push_back(u);
  }
  for (VertexId u : state.support()) {
    for (const Neighbor& nb : graph.NeighborsOf(u)) {
      const VertexId v = nb.to;
      if (scratch.considered_epoch[v] == epoch) continue;
      scratch.considered_epoch[v] = epoch;
      if (state.dx(v) > f + margin) z.push_back(v);
    }
  }
  return z;
}

ExpansionResult SeaExpand(AffinityState* state, double margin,
                          bool include_support) {
  ExpansionResult result;
  result.f_before = state->Affinity();
  result.f_after = result.f_before;
  const std::vector<VertexId> z =
      ComputeExpansionSet(*state, margin, include_support);
  if (z.empty()) return result;

  const double f = result.f_before;
  double s = 0.0, zeta = 0.0;
  std::vector<double> gamma(z.size());
  // Map vertex -> gamma for the ω accumulation (epoch-stamped scratch; the
  // stamp doubles as the in-Z membership test).
  const Graph& graph = state->graph();
  ExpansionScratch& scratch = LocalScratch(graph.NumVertices());
  const uint64_t epoch = ++scratch.epoch;
  for (size_t idx = 0; idx < z.size(); ++idx) {
    gamma[idx] = state->dx(z[idx]) - f;
    s += gamma[idx];
    zeta += gamma[idx] * gamma[idx];
    scratch.gamma_of[z[idx]] = gamma[idx];
    scratch.gamma_epoch[z[idx]] = epoch;
  }
  double omega = 0.0;  // Σ_{i,j∈Z} γ_i γ_j D(i,j): ordered pairs over edges
  for (VertexId i : z) {
    for (const Neighbor& nb : graph.NeighborsOf(i)) {
      // Same arithmetic as the dense map: γ reads as +0.0 outside Z, so the
      // off-Z terms still contribute their exactly-zero products.
      const double gamma_to =
          scratch.gamma_epoch[nb.to] == epoch ? scratch.gamma_of[nb.to] : 0.0;
      omega += scratch.gamma_of[i] * gamma_to * nb.weight;
    }
  }
  DCS_CHECK(s > 0.0);
  // Δf(τ) = −a·τ² + 2ζ·τ with a = f·s² + 2sζ − ω (exact when Z ∩ Sx = ∅;
  // an approximation otherwise — the source of the baseline's errors).
  const double a = f * s * s + 2.0 * s * zeta - omega;
  double tau = 1.0 / s;
  if (a > 0.0) tau = std::min(tau, zeta / a);

  // Apply x ← x + τ·b with b_i = γ_i on Z and b_i = −x_i·s on Sx \ Z.
  // Snapshot the support first: SetX mutates it.
  const std::vector<VertexId> old_support(state->support().begin(),
                                          state->support().end());
  const double shrink_factor = 1.0 - tau * s;
  DCS_CHECK(shrink_factor >= -1e-12);
  for (VertexId v : old_support) {
    if (scratch.gamma_epoch[v] == epoch) continue;
    state->SetX(v, std::max(0.0, state->x(v) * shrink_factor));
  }
  for (size_t idx = 0; idx < z.size(); ++idx) {
    state->SetX(z[idx], state->x(z[idx]) + tau * gamma[idx]);
  }
  state->Renormalize();

  result.expanded = true;
  result.num_added = z.size();
  result.f_after = state->Affinity();
  return result;
}

}  // namespace dcs
