#include "core/expansion.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace dcs {

std::vector<VertexId> ComputeExpansionSet(const AffinityState& state,
                                          double margin,
                                          bool include_support) {
  const double f = state.Affinity();
  const Graph& graph = state.graph();
  std::vector<VertexId> z;
  std::vector<char> considered(graph.NumVertices(), 0);
  for (VertexId u : state.support()) {
    considered[u] = 1;
    if (include_support && state.dx(u) > f + margin) z.push_back(u);
  }
  for (VertexId u : state.support()) {
    for (const Neighbor& nb : graph.NeighborsOf(u)) {
      const VertexId v = nb.to;
      if (considered[v]) continue;
      considered[v] = 1;
      if (state.dx(v) > f + margin) z.push_back(v);
    }
  }
  return z;
}

ExpansionResult SeaExpand(AffinityState* state, double margin,
                          bool include_support) {
  ExpansionResult result;
  result.f_before = state->Affinity();
  result.f_after = result.f_before;
  const std::vector<VertexId> z =
      ComputeExpansionSet(*state, margin, include_support);
  if (z.empty()) return result;

  const double f = result.f_before;
  double s = 0.0, zeta = 0.0;
  std::vector<double> gamma(z.size());
  // Map vertex -> gamma for the ω accumulation.
  const Graph& graph = state->graph();
  std::vector<double> gamma_of(graph.NumVertices(), 0.0);
  std::vector<char> in_z(graph.NumVertices(), 0);
  for (size_t idx = 0; idx < z.size(); ++idx) {
    gamma[idx] = state->dx(z[idx]) - f;
    s += gamma[idx];
    zeta += gamma[idx] * gamma[idx];
    gamma_of[z[idx]] = gamma[idx];
    in_z[z[idx]] = 1;
  }
  double omega = 0.0;  // Σ_{i,j∈Z} γ_i γ_j D(i,j): ordered pairs over edges
  for (VertexId i : z) {
    for (const Neighbor& nb : graph.NeighborsOf(i)) {
      omega += gamma_of[i] * gamma_of[nb.to] * nb.weight;  // 0 outside Z
    }
  }
  DCS_CHECK(s > 0.0);
  // Δf(τ) = −a·τ² + 2ζ·τ with a = f·s² + 2sζ − ω (exact when Z ∩ Sx = ∅;
  // an approximation otherwise — the source of the baseline's errors).
  const double a = f * s * s + 2.0 * s * zeta - omega;
  double tau = 1.0 / s;
  if (a > 0.0) tau = std::min(tau, zeta / a);

  // Apply x ← x + τ·b with b_i = γ_i on Z and b_i = −x_i·s on Sx \ Z.
  // Snapshot the support first: SetX mutates it.
  const std::vector<VertexId> old_support(state->support().begin(),
                                          state->support().end());
  const double shrink_factor = 1.0 - tau * s;
  DCS_CHECK(shrink_factor >= -1e-12);
  for (VertexId v : old_support) {
    if (in_z[v]) continue;
    state->SetX(v, std::max(0.0, state->x(v) * shrink_factor));
  }
  for (size_t idx = 0; idx < z.size(); ++idx) {
    state->SetX(z[idx], state->x(z[idx]) + tau * gamma[idx]);
  }
  state->Renormalize();

  result.expanded = true;
  result.num_added = z.size();
  result.f_after = state->Affinity();
  return result;
}

}  // namespace dcs
