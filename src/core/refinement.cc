#include "core/refinement.h"

#include <algorithm>
#include <vector>

#include "util/logging.h"

namespace dcs {
namespace {

// Finds a pair (u, v) in the support with no GD+ edge between them; returns
// false when the support is a clique. O(Σ deg over support) using two small
// scratch sets (support is typically tiny, so no O(n) bitmap).
bool FindNonAdjacentPair(const AffinityState& state, VertexId* out_u,
                         VertexId* out_v) {
  const Graph& graph = state.graph();
  std::span<const VertexId> support = state.support();
  if (support.size() <= 1) return false;
  std::vector<VertexId> sorted_support(support.begin(), support.end());
  std::sort(sorted_support.begin(), sorted_support.end());
  std::vector<VertexId> adjacent_in_support;
  for (VertexId u : sorted_support) {
    adjacent_in_support.clear();
    for (const Neighbor& nb : graph.NeighborsOf(u)) {
      if (std::binary_search(sorted_support.begin(), sorted_support.end(),
                             nb.to)) {
        adjacent_in_support.push_back(nb.to);
      }
    }
    if (adjacent_in_support.size() + 1 == sorted_support.size()) continue;
    // adjacent_in_support is sorted (adjacency rows are sorted): walk both
    // lists to find the first support member missing from it.
    size_t a = 0;
    for (VertexId v : sorted_support) {
      if (v == u) continue;
      if (a < adjacent_in_support.size() && adjacent_in_support[a] == v) {
        ++a;
        continue;
      }
      *out_u = u;
      *out_v = v;
      return true;
    }
  }
  return false;
}

}  // namespace

RefinementRunStats RefineInPlace(
    AffinityState* state, const CoordinateDescentOptions& descent_options) {
  RefinementRunStats stats;
  VertexId u = 0, v = 0;
  while (FindNonAdjacentPair(*state, &u, &v)) {
    // D(u,v) = 0, so the pair subproblem is linear in x_u: all mass goes to
    // the endpoint with the larger gradient (objective never decreases; at a
    // KKT point the gradients tie and the move is neutral, per Theorem 5).
    VertexId keep = u, drop = v;
    if (state->dx(v) > state->dx(u)) std::swap(keep, drop);
    const double mass = state->x(keep) + state->x(drop);
    state->SetX(drop, 0.0);
    state->SetX(keep, mass);
    ++stats.merges;
    // Re-descend to a local KKT point on the shrunken support.
    std::vector<VertexId> support(state->support().begin(),
                                  state->support().end());
    const CoordinateDescentStats cd =
        DescendToLocalKkt(state, support, descent_options);
    stats.cd_iterations += cd.iterations;
  }
  stats.affinity = state->Affinity();
  return stats;
}

Result<RefinementResult> RefineToPositiveClique(
    const Graph& gd_plus, const Embedding& x0,
    const CoordinateDescentOptions& descent_options) {
  for (VertexId u = 0; u < gd_plus.NumVertices(); ++u) {
    for (const Neighbor& nb : gd_plus.NeighborsOf(u)) {
      if (nb.weight < 0.0) {
        return Status::InvalidArgument(
            "RefineToPositiveClique expects GD+ (no negative weights)");
      }
    }
  }
  AffinityState state(gd_plus);
  DCS_RETURN_NOT_OK(state.ResetToEmbedding(x0));
  const RefinementRunStats stats = RefineInPlace(&state, descent_options);
  RefinementResult result;
  result.x = state.ToEmbedding();
  result.affinity = stats.affinity;
  result.merges = stats.merges;
  result.cd_iterations = stats.cd_iterations;
  return result;
}

}  // namespace dcs
