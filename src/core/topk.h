// Mining multiple density contrast subgraphs — the paper's §VII future-work
// item ("our methods only mine one DCS with the greatest density difference;
// how to mine multiple subgraphs with big density difference is another
// interesting direction").
//
// Two natural schemes, both built on the single-DCS solvers:
//  * DCSAD: iterative peeling — find the best subgraph with DCSGreedy,
//    remove its vertices from the difference graph, repeat. Each round's
//    result is vertex-disjoint from the previous ones.
//  * DCSGA: harvest — run the all-initializations driver once, collect every
//    distinct positive clique, filter to maximal cliques, rank by affinity
//    difference and (optionally) enforce vertex-disjointness greedily. This
//    is exactly how the paper's own Table V is produced.

#ifndef DCS_CORE_TOPK_H_
#define DCS_CORE_TOPK_H_

#include <cstdint>
#include <vector>

#include "core/dcs_greedy.h"
#include "core/newsea.h"
#include "graph/graph.h"
#include "util/status.h"

namespace dcs {

/// Options for iterative DCSAD peeling.
struct TopkDcsadOptions {
  uint32_t k = 5;
  /// Stop early once the best remaining density drops to or below this.
  double min_density = 0.0;
};

/// One ranked DCSAD subgraph.
struct RankedDcsad {
  std::vector<VertexId> subset;
  double density = 0.0;      ///< ρ_D in the *original* difference graph
  double ratio_bound = 0.0;  ///< β of the round that produced it
};

/// \brief Mines up to k vertex-disjoint average-degree contrast subgraphs by
/// iterated DCSGreedy + vertex removal. Results are ordered by discovery
/// round (non-increasing density in practice, though peeling does not
/// guarantee monotonicity).
Result<std::vector<RankedDcsad>> MineTopKDcsad(
    const Graph& gd, const TopkDcsadOptions& options = {});

/// Options for the DCSGA harvest.
struct TopkDcsgaOptions {
  uint32_t k = 5;
  /// Require the reported cliques to be pairwise vertex-disjoint.
  bool disjoint = true;
  /// Drop cliques below this affinity difference.
  double min_affinity = 0.0;
  /// Inner solver options (collect_cliques is forced on).
  DcsgaOptions solver;
};

/// \brief Mines up to k positive-clique affinity contrast subgraphs from the
/// all-initializations run on GD+. Ranked by affinity difference.
Result<std::vector<CliqueRecord>> MineTopKDcsga(
    const Graph& gd_plus, const TopkDcsgaOptions& options = {});

}  // namespace dcs

#endif  // DCS_CORE_TOPK_H_
