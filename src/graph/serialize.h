// Flat binary (de)serialization of the immutable CSR Graph.
//
// The persistent artifact store (store/artifact_store.h) writes graphs —
// base pairs, cached difference graphs, GD+ — as record payloads inside its
// checksummed pages. A Graph is already trivially flat (an offsets array and
// a neighbor array), so the encoding is a direct dump of the CSR arrays:
//
//   u32 num_vertices
//   u64 num_neighbor_halves           (2m)
//   u64 offsets[num_vertices + 1]
//   { u32 to, u64 weight_bits } * num_neighbor_halves
//
// Weights travel as exact IEEE-754 bit patterns, so a round trip is
// bit-identical — the precondition for the store's determinism contract
// (a store-warmed solve must equal a cold-built one bit for bit). All
// integers are little-endian on every platform the store supports; the
// store's superblock carries an endianness tag so a file from a
// foreign-endian machine is rejected up front rather than mis-parsed.
//
// Parsing never trusts the bytes: structural invariants (offset monotonicity,
// in-range neighbor ids, finite non-zero weights, CSR symmetry via the
// paired reverse-half check) are validated before a Graph is materialized,
// so even a payload that passes the page checksum cannot construct a graph
// that breaks the Graph class invariants.

#ifndef DCS_GRAPH_SERIALIZE_H_
#define DCS_GRAPH_SERIALIZE_H_

#include <cstdint>
#include <span>
#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace dcs {

/// \brief Appends the flat encoding of `graph` to `out`.
void AppendGraphBytes(const Graph& graph, std::string* out);

/// Exact encoded size of `graph` in bytes (what AppendGraphBytes appends).
size_t GraphByteSize(const Graph& graph);

/// \brief Parses one graph from `bytes` starting at `*cursor`, advancing
/// `*cursor` past it.
///
/// Fails with InvalidArgument on a truncated buffer or on any violated
/// Graph invariant (non-monotone offsets, out-of-range ids, unsorted or
/// duplicate adjacency, asymmetric halves, non-finite or zero weights). On
/// failure `*cursor` is unspecified and no Graph is produced.
Result<Graph> ParseGraphBytes(std::span<const uint8_t> bytes, size_t* cursor);

}  // namespace dcs

#endif  // DCS_GRAPH_SERIALIZE_H_
