#include "graph/csr_patcher.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/logging.h"

namespace dcs {

namespace {

// One directed half of an EdgePatch, routed to its adjacency row.
struct RowChange {
  VertexId row;
  VertexId to;
  double weight;
  bool keep;  // false = ensure absent
};

}  // namespace

Graph CsrPatcher::Apply(const Graph& base, std::span<const EdgePatch> patches,
                        double zero_eps, uint64_t* accumulator) {
  const VertexId n = base.NumVertices();
  if (patches.empty()) return base;

  // Validate the batch, maintain the content accumulator, and split each
  // undirected assignment into its two directed row changes.
  std::vector<RowChange> changes;
  changes.reserve(patches.size() * 2);
  uint64_t acc = accumulator != nullptr ? *accumulator : 0;
  uint64_t prev_pair = 0;
  for (size_t i = 0; i < patches.size(); ++i) {
    const EdgePatch& p = patches[i];
    DCS_CHECK(p.u < p.v && p.v < n)
        << "EdgePatch (" << p.u << "," << p.v << ") out of contract for n="
        << n;
    DCS_CHECK(std::isfinite(p.weight)) << "non-finite patch weight";
    const uint64_t pair = PackVertexPair(p.u, p.v);
    DCS_CHECK(i == 0 || prev_pair < pair)
        << "patches must be sorted by (u,v) with no duplicates";
    prev_pair = pair;
    const bool keep = std::fabs(p.weight) > zero_eps;
    if (accumulator != nullptr) {
      // Stored weights are never (near-)zero, so EdgeWeight == 0 means
      // absent; subtract the edge being rewritten, add its replacement.
      const double old_weight = base.EdgeWeight(p.u, p.v);
      if (old_weight != 0.0) {
        acc -= Graph::UndirectedEdgeHash(p.u, p.v, old_weight);
      }
      if (keep) acc += Graph::UndirectedEdgeHash(p.u, p.v, p.weight);
    }
    changes.push_back(RowChange{p.u, p.v, p.weight, keep});
    changes.push_back(RowChange{p.v, p.u, p.weight, keep});
  }
  std::sort(changes.begin(), changes.end(),
            [](const RowChange& a, const RowChange& b) {
              return a.row != b.row ? a.row < b.row : a.to < b.to;
            });

  // Merge each touched row with its (sorted) changes into a scratch area.
  std::vector<Neighbor> scratch;
  struct TouchedRow {
    VertexId row;
    size_t begin;
    size_t end;  // [begin, end) in scratch
  };
  std::vector<TouchedRow> touched;
  touched.reserve(changes.size());
  for (size_t ci = 0; ci < changes.size();) {
    const VertexId row = changes[ci].row;
    size_t ce = ci;
    while (ce < changes.size() && changes[ce].row == row) ++ce;
    const size_t begin = scratch.size();
    const std::span<const Neighbor> old_row = base.NeighborsOf(row);
    size_t oi = 0;
    for (size_t k = ci; k < ce; ++k) {
      const RowChange& change = changes[k];
      while (oi < old_row.size() && old_row[oi].to < change.to) {
        scratch.push_back(old_row[oi++]);
      }
      if (oi < old_row.size() && old_row[oi].to == change.to) ++oi;  // rewritten
      if (change.keep) scratch.push_back(Neighbor{change.to, change.weight});
    }
    while (oi < old_row.size()) scratch.push_back(old_row[oi++]);
    touched.push_back(TouchedRow{row, begin, scratch.size()});
    ci = ce;
  }

  // New offsets: one prefix-sum pass; only touched rows change size.
  std::vector<size_t> offsets(static_cast<size_t>(n) + 1, 0);
  {
    size_t t = 0;
    for (VertexId row = 0; row < n; ++row) {
      size_t degree;
      if (t < touched.size() && touched[t].row == row) {
        degree = touched[t].end - touched[t].begin;
        ++t;
      } else {
        degree = base.Degree(row);
      }
      offsets[row + 1] = offsets[row] + degree;
    }
  }

  // Assemble: untouched row runs are carried over with one bulk contiguous
  // copy each (the CSR adjacency is a single array, so a run of untouched
  // rows is one contiguous span); merged rows are spliced from scratch.
  std::vector<Neighbor> neighbors(offsets[n]);
  VertexId run_start = 0;
  for (const TouchedRow& tr : touched) {
    std::copy(base.neighbors_.begin() + base.offsets_[run_start],
              base.neighbors_.begin() + base.offsets_[tr.row],
              neighbors.begin() + offsets[run_start]);
    std::copy(scratch.begin() + tr.begin, scratch.begin() + tr.end,
              neighbors.begin() + offsets[tr.row]);
    run_start = tr.row + 1;
  }
  std::copy(base.neighbors_.begin() + base.offsets_[run_start],
            base.neighbors_.end(), neighbors.begin() + offsets[run_start]);

  if (accumulator != nullptr) *accumulator = acc;
  return Graph(std::move(offsets), std::move(neighbors));
}

}  // namespace dcs
