#include "graph/difference.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "graph/graph_builder.h"

namespace dcs {

Result<Graph> BuildDifferenceGraph(const Graph& g1, const Graph& g2,
                                   double alpha) {
  if (g1.NumVertices() != g2.NumVertices()) {
    return Status::InvalidArgument(
        "difference graph requires equal vertex sets: n1=" +
        std::to_string(g1.NumVertices()) +
        " n2=" + std::to_string(g2.NumVertices()));
  }
  if (!std::isfinite(alpha) || alpha <= 0.0) {
    return Status::InvalidArgument("alpha must be finite and positive");
  }
  const VertexId n = g1.NumVertices();
  GraphBuilder builder(n);
  // Merge the two sorted adjacency rows of every vertex; emit each
  // undirected edge once (u < v side).
  for (VertexId u = 0; u < n; ++u) {
    auto row1 = g1.NeighborsOf(u);
    auto row2 = g2.NeighborsOf(u);
    size_t i = 0, j = 0;
    while (i < row1.size() || j < row2.size()) {
      VertexId v;
      double d;
      if (j == row2.size() ||
          (i < row1.size() && row1[i].to < row2[j].to)) {
        v = row1[i].to;
        d = -alpha * row1[i].weight;
        ++i;
      } else if (i == row1.size() || row2[j].to < row1[i].to) {
        v = row2[j].to;
        d = row2[j].weight;
        ++j;
      } else {
        v = row1[i].to;
        d = row2[j].weight - alpha * row1[i].weight;
        ++i;
        ++j;
      }
      if (u < v && d != 0.0) {
        DCS_RETURN_NOT_OK(builder.AddEdge(u, v, d));
      }
    }
  }
  return builder.Build();
}

Status DiscretizeSpec::Validate() const {
  if (!(strong_neg < 0.0 && 0.0 < weak_pos && weak_pos <= strong_pos)) {
    return Status::InvalidArgument(
        "DiscretizeSpec thresholds must satisfy strong_neg < 0 < weak_pos <= "
        "strong_pos");
  }
  if (!(0.0 < level_one && level_one <= level_two)) {
    return Status::InvalidArgument(
        "DiscretizeSpec levels must satisfy 0 < level_one <= level_two");
  }
  return Status::OK();
}

double DiscretizeSpec::Map(double d) const {
  if (d >= strong_pos) return level_two;
  if (d >= weak_pos) return level_one;
  if (d <= strong_neg) return -level_two;
  if (d < 0.0) return -level_one;
  return 0.0;
}

Result<double> AlphaUpperBound(const Graph& g1, const Graph& g2) {
  if (g1.NumVertices() != g2.NumVertices()) {
    return Status::InvalidArgument("AlphaUpperBound requires equal vertex sets");
  }
  double best = 0.0;
  for (VertexId u = 0; u < g2.NumVertices(); ++u) {
    for (const Neighbor& nb : g2.NeighborsOf(u)) {
      if (u >= nb.to || nb.weight <= 0.0) continue;
      const double w1 = g1.EdgeWeight(u, nb.to);
      if (w1 <= 0.0) {
        return std::numeric_limits<double>::infinity();
      }
      best = std::max(best, nb.weight / w1);
    }
  }
  return best;
}

Result<Graph> DiscretizeWeights(const Graph& gd, const DiscretizeSpec& spec) {
  DCS_RETURN_NOT_OK(spec.Validate());
  GraphBuilder builder(gd.NumVertices());
  for (VertexId u = 0; u < gd.NumVertices(); ++u) {
    for (const Neighbor& nb : gd.NeighborsOf(u)) {
      if (u >= nb.to) continue;
      const double mapped = spec.Map(nb.weight);
      if (mapped != 0.0) {
        DCS_RETURN_NOT_OK(builder.AddEdge(u, nb.to, mapped));
      }
    }
  }
  return builder.Build();
}

}  // namespace dcs
