// Induced-subgraph extraction with id remapping.
//
// Handy for drilling into a found DCS: extract GD(S) as a standalone graph
// whose vertices are renumbered 0..|S|−1, keeping the original ids around
// for reporting.

#ifndef DCS_GRAPH_SUBGRAPH_H_
#define DCS_GRAPH_SUBGRAPH_H_

#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace dcs {

/// An extracted induced subgraph plus the id mapping back to the host graph.
struct InducedSubgraph {
  Graph graph;                         ///< |S| vertices, renumbered densely
  std::vector<VertexId> original_ids;  ///< original_ids[new_id] = old id
};

/// \brief Extracts G(S). Duplicate ids in `subset` are rejected; vertex
/// order of `subset` defines the new numbering.
Result<InducedSubgraph> ExtractInducedSubgraph(
    const Graph& graph, std::span<const VertexId> subset);

}  // namespace dcs

#endif  // DCS_GRAPH_SUBGRAPH_H_
