#include "graph/subgraph.h"

#include <string>

#include "graph/graph_builder.h"

namespace dcs {

Result<InducedSubgraph> ExtractInducedSubgraph(
    const Graph& graph, std::span<const VertexId> subset) {
  constexpr VertexId kAbsent = static_cast<VertexId>(-1);
  std::vector<VertexId> new_id(graph.NumVertices(), kAbsent);
  InducedSubgraph out;
  out.original_ids.reserve(subset.size());
  for (VertexId v : subset) {
    if (v >= graph.NumVertices()) {
      return Status::OutOfRange("subset vertex " + std::to_string(v) +
                                " out of range");
    }
    if (new_id[v] != kAbsent) {
      return Status::InvalidArgument("duplicate vertex " + std::to_string(v) +
                                     " in subset");
    }
    new_id[v] = static_cast<VertexId>(out.original_ids.size());
    out.original_ids.push_back(v);
  }
  GraphBuilder builder(static_cast<VertexId>(subset.size()));
  for (VertexId v : subset) {
    for (const Neighbor& nb : graph.NeighborsOf(v)) {
      if (new_id[nb.to] != kAbsent && v < nb.to) {
        DCS_RETURN_NOT_OK(
            builder.AddEdge(new_id[v], new_id[nb.to], nb.weight));
      }
    }
  }
  DCS_ASSIGN_OR_RETURN(out.graph, builder.Build());
  return out;
}

}  // namespace dcs
