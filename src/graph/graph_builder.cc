#include "graph/graph_builder.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/logging.h"

namespace dcs {

GraphBuilder::GraphBuilder(VertexId num_vertices)
    : num_vertices_(num_vertices) {}

Status GraphBuilder::AddEdge(VertexId u, VertexId v, double weight) {
  if (u == v) {
    return Status::InvalidArgument("self-loop on vertex " + std::to_string(u));
  }
  if (u >= num_vertices_ || v >= num_vertices_) {
    return Status::OutOfRange("edge endpoint out of range: (" +
                              std::to_string(u) + "," + std::to_string(v) +
                              ") with n=" + std::to_string(num_vertices_));
  }
  if (!std::isfinite(weight)) {
    return Status::InvalidArgument("non-finite edge weight");
  }
  if (u > v) std::swap(u, v);
  entries_.push_back(Entry{u, v, weight});
  return Status::OK();
}

void GraphBuilder::AddEdgeUnchecked(VertexId u, VertexId v, double weight) {
  Status st = AddEdge(u, v, weight);
  DCS_CHECK(st.ok()) << st.ToString();
}

Result<Graph> GraphBuilder::Build(double zero_eps) {
  if (zero_eps < 0.0 || !std::isfinite(zero_eps)) {
    return Status::InvalidArgument("zero_eps must be finite and >= 0");
  }
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) {
              return a.u != b.u ? a.u < b.u : a.v < b.v;
            });
  // Merge duplicates in place.
  std::vector<Entry> merged;
  merged.reserve(entries_.size());
  for (const Entry& e : entries_) {
    if (!merged.empty() && merged.back().u == e.u && merged.back().v == e.v) {
      merged.back().weight += e.weight;
    } else {
      merged.push_back(e);
    }
  }
  entries_.clear();
  std::erase_if(merged,
                [zero_eps](const Entry& e) { return std::fabs(e.weight) <= zero_eps; });

  const size_t n = num_vertices_;
  std::vector<size_t> degree(n, 0);
  for (const Entry& e : merged) {
    ++degree[e.u];
    ++degree[e.v];
  }
  std::vector<size_t> offsets(n + 1, 0);
  for (size_t u = 0; u < n; ++u) offsets[u + 1] = offsets[u] + degree[u];
  std::vector<Neighbor> neighbors(offsets[n]);
  std::vector<size_t> cursor(offsets.begin(), offsets.end() - 1);
  // `merged` is sorted by (u, v); filling u-rows in this order keeps each row
  // sorted. The reverse rows (v -> u) need an explicit sort only if some row
  // receives both kinds of entries out of order, so sort every row that got a
  // reverse entry; cheap and simple: sort all rows afterwards.
  for (const Entry& e : merged) {
    neighbors[cursor[e.u]++] = Neighbor{e.v, e.weight};
    neighbors[cursor[e.v]++] = Neighbor{e.u, e.weight};
  }
  for (size_t u = 0; u < n; ++u) {
    std::sort(neighbors.begin() + offsets[u], neighbors.begin() + offsets[u + 1],
              [](const Neighbor& a, const Neighbor& b) { return a.to < b.to; });
  }
  return Graph(std::move(offsets), std::move(neighbors));
}

}  // namespace dcs
