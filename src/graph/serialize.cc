#include "graph/serialize.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace dcs {

namespace {

void AppendU32(uint32_t v, std::string* out) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void AppendU64(uint64_t v, std::string* out) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

bool ReadU32(std::span<const uint8_t> bytes, size_t* cursor, uint32_t* v) {
  if (bytes.size() - *cursor < 4) return false;
  std::memcpy(v, bytes.data() + *cursor, 4);
  *cursor += 4;
  return true;
}

bool ReadU64(std::span<const uint8_t> bytes, size_t* cursor, uint64_t* v) {
  if (bytes.size() - *cursor < 8) return false;
  std::memcpy(v, bytes.data() + *cursor, 8);
  *cursor += 8;
  return true;
}

Status Truncated() {
  return Status::InvalidArgument("graph payload truncated");
}

}  // namespace

// The one unit with access to Graph's CSR internals for the round trip
// (declared a friend in graph/graph.h).
class GraphSerializer {
 public:
  static void Append(const Graph& graph, std::string* out) {
    AppendU32(graph.NumVertices(), out);
    AppendU64(graph.neighbors_.size(), out);
    for (const size_t offset : graph.offsets_) {
      AppendU64(static_cast<uint64_t>(offset), out);
    }
    for (const Neighbor& nb : graph.neighbors_) {
      AppendU32(nb.to, out);
      AppendU64(std::bit_cast<uint64_t>(nb.weight), out);
    }
  }

  static size_t ByteSize(const Graph& graph) {
    return 4 + 8 + (graph.offsets_.size()) * 8 +
           graph.neighbors_.size() * (4 + 8);
  }

  static Result<Graph> Parse(std::span<const uint8_t> bytes, size_t* cursor) {
    uint32_t n = 0;
    uint64_t halves = 0;
    if (!ReadU32(bytes, cursor, &n) || !ReadU64(bytes, cursor, &halves)) {
      return Truncated();
    }
    // Bound the declared sizes by the bytes actually present before
    // allocating anything — a corrupt header must not drive a huge reserve.
    const size_t remaining = bytes.size() - *cursor;
    if (halves % 2 != 0 ||
        (static_cast<uint64_t>(n) + 1) * 8 + halves * 12 > remaining) {
      return Status::InvalidArgument("graph payload sizes exceed the buffer");
    }

    std::vector<size_t> offsets(static_cast<size_t>(n) + 1);
    for (size_t i = 0; i < offsets.size(); ++i) {
      uint64_t v = 0;
      if (!ReadU64(bytes, cursor, &v)) return Truncated();
      offsets[i] = static_cast<size_t>(v);
    }
    if (offsets.front() != 0 || offsets.back() != halves ||
        !std::is_sorted(offsets.begin(), offsets.end())) {
      return Status::InvalidArgument("graph payload offsets not a CSR");
    }

    std::vector<Neighbor> neighbors(static_cast<size_t>(halves));
    for (Neighbor& nb : neighbors) {
      uint64_t weight_bits = 0;
      if (!ReadU32(bytes, cursor, &nb.to) ||
          !ReadU64(bytes, cursor, &weight_bits)) {
        return Truncated();
      }
      nb.weight = std::bit_cast<double>(weight_bits);
    }

    // Re-establish every Graph invariant before materializing: sorted,
    // duplicate-free, self-loop-free rows of in-range ids with finite
    // non-zero weights, and perfect half-pair symmetry.
    for (VertexId u = 0; u < n; ++u) {
      VertexId prev = 0;
      bool first = true;
      for (size_t i = offsets[u]; i < offsets[u + 1]; ++i) {
        const Neighbor& nb = neighbors[i];
        if (nb.to >= n || nb.to == u || (!first && nb.to <= prev)) {
          return Status::InvalidArgument("graph payload adjacency invalid");
        }
        if (!std::isfinite(nb.weight) || nb.weight == 0.0) {
          return Status::InvalidArgument("graph payload weight invalid");
        }
        prev = nb.to;
        first = false;
      }
    }
    // Symmetry in O(m) (this runs on every store load, so no per-half binary
    // search): build the transpose by counting-sort into each destination
    // row — rows are sorted, so for a symmetric graph the transpose fill
    // reproduces `neighbors` exactly, halves and weight bits alike. A
    // destination row receiving more halves than it holds, or any slot
    // disagreeing, proves a half without its mirror.
    {
      std::vector<size_t> cursor(offsets.begin(), offsets.end() - 1);
      std::vector<Neighbor> transpose(neighbors.size());
      for (VertexId u = 0; u < n; ++u) {
        for (size_t i = offsets[u]; i < offsets[u + 1]; ++i) {
          const VertexId v = neighbors[i].to;
          if (cursor[v] >= offsets[v + 1]) {
            return Status::InvalidArgument("graph payload asymmetric");
          }
          transpose[cursor[v]++] = {u, neighbors[i].weight};
        }
      }
      for (size_t i = 0; i < neighbors.size(); ++i) {
        if (transpose[i].to != neighbors[i].to ||
            std::bit_cast<uint64_t>(transpose[i].weight) !=
                std::bit_cast<uint64_t>(neighbors[i].weight)) {
          return Status::InvalidArgument("graph payload asymmetric");
        }
      }
    }
    return Graph(std::move(offsets), std::move(neighbors));
  }
};

void AppendGraphBytes(const Graph& graph, std::string* out) {
  GraphSerializer::Append(graph, out);
}

size_t GraphByteSize(const Graph& graph) {
  return GraphSerializer::ByteSize(graph);
}

Result<Graph> ParseGraphBytes(std::span<const uint8_t> bytes, size_t* cursor) {
  return GraphSerializer::Parse(bytes, cursor);
}

}  // namespace dcs
