// Mutable accumulator that produces immutable CSR Graphs.

#ifndef DCS_GRAPH_GRAPH_BUILDER_H_
#define DCS_GRAPH_GRAPH_BUILDER_H_

#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace dcs {

/// Magnitude below which an accumulated edge weight counts as zero when no
/// caller-specific threshold applies — GraphBuilder::Build's default, and the
/// drop rule the streaming CSR patch path (graph/csr_patcher.h) must mirror
/// to stay bit-identical to a rebuild.
inline constexpr double kDefaultZeroEps = 1e-12;

/// \brief Collects undirected weighted edges and builds a Graph.
///
/// Duplicate (u,v) contributions are *accumulated* (summed), which is the
/// natural semantics for co-occurrence / collaboration counting; entries
/// that cancel to (near) zero are dropped so a difference graph contains
/// only edges with D(u,v) != 0, matching Table I's ED definition.
class GraphBuilder {
 public:
  explicit GraphBuilder(VertexId num_vertices);

  VertexId num_vertices() const { return num_vertices_; }

  /// Queues weight for undirected edge {u,v}.
  /// Fails on: u == v (self-loop), out-of-range endpoint, non-finite weight.
  Status AddEdge(VertexId u, VertexId v, double weight);

  /// AddEdge that DCS_CHECKs instead of returning (for generator code whose
  /// inputs are internal and already validated).
  void AddEdgeUnchecked(VertexId u, VertexId v, double weight);

  size_t NumQueuedEntries() const { return entries_.size(); }

  /// \brief Sorts, merges duplicates, drops |w| <= zero_eps, and emits the
  /// CSR graph. The builder is left empty and reusable.
  ///
  /// \param zero_eps magnitude below which an accumulated weight counts as
  ///        zero (exact cancellation in difference graphs produces tiny
  ///        residues when weights are non-integral).
  Result<Graph> Build(double zero_eps = kDefaultZeroEps);

 private:
  struct Entry {
    VertexId u;
    VertexId v;  // canonicalized so u < v
    double weight;
  };

  VertexId num_vertices_;
  std::vector<Entry> entries_;
};

}  // namespace dcs

#endif  // DCS_GRAPH_GRAPH_BUILDER_H_
