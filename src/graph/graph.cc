#include "graph/graph.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/hash.h"
#include "util/logging.h"

namespace dcs {

Graph::Graph(VertexId n) : offsets_(static_cast<size_t>(n) + 1, 0) {}

double Graph::WeightedDegree(VertexId u) const {
  double total = 0.0;
  for (const Neighbor& nb : NeighborsOf(u)) total += nb.weight;
  return total;
}

double Graph::EdgeWeight(VertexId u, VertexId v) const {
  DCS_CHECK(u < NumVertices() && v < NumVertices());
  auto row = NeighborsOf(u);
  auto it = std::lower_bound(
      row.begin(), row.end(), v,
      [](const Neighbor& nb, VertexId target) { return nb.to < target; });
  if (it != row.end() && it->to == v) return it->weight;
  return 0.0;
}

std::vector<Edge> Graph::UndirectedEdges() const {
  std::vector<Edge> edges;
  edges.reserve(NumEdges());
  for (VertexId u = 0; u < NumVertices(); ++u) {
    for (const Neighbor& nb : NeighborsOf(u)) {
      if (u < nb.to) edges.push_back(Edge{u, nb.to, nb.weight});
    }
  }
  return edges;
}

WeightStats Graph::ComputeWeightStats() const {
  WeightStats stats;
  double total = 0.0;
  size_t count = 0;
  bool first = true;
  for (VertexId u = 0; u < NumVertices(); ++u) {
    for (const Neighbor& nb : NeighborsOf(u)) {
      if (u >= nb.to) continue;
      if (first) {
        stats.max_weight = stats.min_weight = nb.weight;
        first = false;
      } else {
        stats.max_weight = std::max(stats.max_weight, nb.weight);
        stats.min_weight = std::min(stats.min_weight, nb.weight);
      }
      if (nb.weight > 0) ++stats.num_positive_edges;
      if (nb.weight < 0) ++stats.num_negative_edges;
      total += nb.weight;
      ++count;
    }
  }
  stats.mean_weight = count == 0 ? 0.0 : total / static_cast<double>(count);
  return stats;
}

std::vector<double> Graph::MaxIncidentWeightPerVertex() const {
  std::vector<double> best(NumVertices(),
                           -std::numeric_limits<double>::infinity());
  for (VertexId u = 0; u < NumVertices(); ++u) {
    for (const Neighbor& nb : NeighborsOf(u)) {
      best[u] = std::max(best[u], nb.weight);
    }
  }
  return best;
}

Graph Graph::PositivePart() const {
  const VertexId n = NumVertices();
  std::vector<size_t> offsets(static_cast<size_t>(n) + 1, 0);
  for (VertexId u = 0; u < n; ++u) {
    size_t kept = 0;
    for (const Neighbor& nb : NeighborsOf(u)) kept += nb.weight > 0.0 ? 1 : 0;
    offsets[u + 1] = offsets[u] + kept;
  }
  std::vector<Neighbor> neighbors;
  neighbors.reserve(offsets[n]);
  for (VertexId u = 0; u < n; ++u) {
    for (const Neighbor& nb : NeighborsOf(u)) {
      if (nb.weight > 0.0) neighbors.push_back(nb);
    }
  }
  return Graph(std::move(offsets), std::move(neighbors));
}

Graph Graph::Negated() const {
  Graph out = *this;
  for (Neighbor& nb : out.neighbors_) nb.weight = -nb.weight;
  return out;
}

Graph Graph::WeightsClampedAbove(double cap) const {
  DCS_CHECK(cap > 0.0) << "clamp cap must be positive";
  Graph out = *this;
  for (Neighbor& nb : out.neighbors_) nb.weight = std::min(nb.weight, cap);
  return out;
}

uint64_t Graph::UndirectedEdgeHash(VertexId u, VertexId v, double weight) {
  // Each edge gets a full two-step splitmix chain of its own, so the
  // wrapping sum over edges in ContentAccumulator keeps the 2^-64-grade
  // collision behavior the pipeline cache accepts as content equality.
  const uint64_t h = MixFingerprint(0x6463735f65646765ull,  // "dcs_edge"
                                    (static_cast<uint64_t>(u) << 32) | v);
  return MixFingerprint(h, std::bit_cast<uint64_t>(weight));
}

uint64_t Graph::ContentAccumulator() const {
  // A commutative (wrapping-sum) combination: row boundaries are implied by
  // the canonical (u < v) endpoint pair inside each edge hash, and the sum
  // form is what lets CsrPatcher maintain the fingerprint in O(Δ).
  uint64_t acc = 0;
  for (VertexId u = 0; u < NumVertices(); ++u) {
    for (const Neighbor& nb : NeighborsOf(u)) {
      if (u < nb.to) acc += UndirectedEdgeHash(u, nb.to, nb.weight);
    }
  }
  return acc;
}

uint64_t Graph::FingerprintFromAccumulator(VertexId n, uint64_t accumulator) {
  const uint64_t h = MixFingerprint(0x6463735f67726170ull,  // "dcs_grap"
                                    n);
  return MixFingerprint(h, accumulator);
}

uint64_t Graph::ContentFingerprint() const {
  return FingerprintFromAccumulator(NumVertices(), ContentAccumulator());
}

std::string Graph::DebugString() const {
  const WeightStats stats = ComputeWeightStats();
  std::ostringstream os;
  os << "Graph(n=" << NumVertices() << ", m=" << NumEdges()
     << ", m+=" << stats.num_positive_edges
     << ", m-=" << stats.num_negative_edges << ")";
  return os.str();
}

}  // namespace dcs
