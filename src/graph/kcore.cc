#include "graph/kcore.h"

#include <algorithm>

namespace dcs {

std::vector<uint32_t> CoreNumbers(const Graph& graph) {
  const VertexId n = graph.NumVertices();
  std::vector<uint32_t> degree(n);
  uint32_t max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = static_cast<uint32_t>(graph.Degree(v));
    max_degree = std::max(max_degree, degree[v]);
  }
  // Bucket sort vertices by degree.
  std::vector<uint32_t> bucket_start(max_degree + 2, 0);
  for (VertexId v = 0; v < n; ++v) ++bucket_start[degree[v] + 1];
  for (uint32_t d = 1; d < bucket_start.size(); ++d) {
    bucket_start[d] += bucket_start[d - 1];
  }
  std::vector<VertexId> order(n);       // vertices sorted by current degree
  std::vector<uint32_t> position(n);    // position of v in `order`
  {
    std::vector<uint32_t> cursor(bucket_start.begin(), bucket_start.end() - 1);
    for (VertexId v = 0; v < n; ++v) {
      position[v] = cursor[degree[v]];
      order[position[v]] = v;
      ++cursor[degree[v]];
    }
  }
  std::vector<uint32_t> core(degree);
  // Peel in non-decreasing degree order, decrementing neighbors in place.
  for (uint32_t idx = 0; idx < n; ++idx) {
    const VertexId v = order[idx];
    core[v] = degree[v];
    for (const Neighbor& nb : graph.NeighborsOf(v)) {
      const VertexId u = nb.to;
      if (degree[u] > degree[v]) {
        // Swap u with the first vertex of its degree bucket, then shrink the
        // bucket by one — the classic O(1) decrement.
        const uint32_t du = degree[u];
        const uint32_t pos_u = position[u];
        const uint32_t pos_first = bucket_start[du];
        const VertexId first = order[pos_first];
        if (u != first) {
          std::swap(order[pos_u], order[pos_first]);
          position[u] = pos_first;
          position[first] = pos_u;
        }
        ++bucket_start[du];
        --degree[u];
      }
    }
  }
  return core;
}

uint32_t Degeneracy(const Graph& graph) {
  uint32_t best = 0;
  for (uint32_t c : CoreNumbers(graph)) best = std::max(best, c);
  return best;
}

}  // namespace dcs
