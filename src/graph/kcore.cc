#include "graph/kcore.h"

#include <algorithm>
#include <unordered_map>

#include "util/logging.h"

namespace dcs {

namespace {

// Applies `fn` to every neighbor of `x` whose pair is not hidden.
template <typename Fn>
void ForEachVisibleNeighbor(const Graph& graph, VertexId x,
                            const std::unordered_set<uint64_t>& hidden,
                            Fn&& fn) {
  for (const Neighbor& nb : graph.NeighborsOf(x)) {
    if (!hidden.empty() && hidden.count(PackVertexPair(x, nb.to)) != 0) {
      continue;
    }
    fn(nb.to);
  }
}

// Collects the subcore of the change: every vertex with core == K reachable
// from the roots through core-K vertices (over the visible adjacency). Only
// these vertices can change after a single edge insertion/removal at level
// K — a core-K neighbor of a subcore vertex is by definition reachable
// through it, so the subcore is closed under core-K adjacency, and the
// candidates' support counts can use "core >= K" uniformly. Returns the
// candidates in discovery order with support count slots initialized to 0.
std::unordered_map<VertexId, uint32_t> CollectSubcore(
    const Graph& graph, const std::unordered_set<uint64_t>& hidden,
    std::initializer_list<VertexId> roots, uint32_t K,
    const std::vector<uint32_t>& cores, std::vector<VertexId>* order) {
  std::unordered_map<VertexId, uint32_t> support;
  std::vector<VertexId> stack;
  for (VertexId r : roots) {
    if (cores[r] == K && support.emplace(r, 0).second) stack.push_back(r);
  }
  while (!stack.empty()) {
    const VertexId x = stack.back();
    stack.pop_back();
    order->push_back(x);
    ForEachVisibleNeighbor(graph, x, hidden, [&](VertexId y) {
      if (cores[y] == K && support.emplace(y, 0).second) stack.push_back(y);
    });
  }
  return support;
}

}  // namespace

std::vector<uint32_t> CoreNumbers(const Graph& graph) {
  const VertexId n = graph.NumVertices();
  std::vector<uint32_t> degree(n);
  uint32_t max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = static_cast<uint32_t>(graph.Degree(v));
    max_degree = std::max(max_degree, degree[v]);
  }
  // Bucket sort vertices by degree.
  std::vector<uint32_t> bucket_start(max_degree + 2, 0);
  for (VertexId v = 0; v < n; ++v) ++bucket_start[degree[v] + 1];
  for (uint32_t d = 1; d < bucket_start.size(); ++d) {
    bucket_start[d] += bucket_start[d - 1];
  }
  std::vector<VertexId> order(n);       // vertices sorted by current degree
  std::vector<uint32_t> position(n);    // position of v in `order`
  {
    std::vector<uint32_t> cursor(bucket_start.begin(), bucket_start.end() - 1);
    for (VertexId v = 0; v < n; ++v) {
      position[v] = cursor[degree[v]];
      order[position[v]] = v;
      ++cursor[degree[v]];
    }
  }
  std::vector<uint32_t> core(degree);
  // Peel in non-decreasing degree order, decrementing neighbors in place.
  for (uint32_t idx = 0; idx < n; ++idx) {
    const VertexId v = order[idx];
    core[v] = degree[v];
    for (const Neighbor& nb : graph.NeighborsOf(v)) {
      const VertexId u = nb.to;
      if (degree[u] > degree[v]) {
        // Swap u with the first vertex of its degree bucket, then shrink the
        // bucket by one — the classic O(1) decrement.
        const uint32_t du = degree[u];
        const uint32_t pos_u = position[u];
        const uint32_t pos_first = bucket_start[du];
        const VertexId first = order[pos_first];
        if (u != first) {
          std::swap(order[pos_u], order[pos_first]);
          position[u] = pos_first;
          position[first] = pos_u;
        }
        ++bucket_start[du];
        --degree[u];
      }
    }
  }
  return core;
}

uint32_t Degeneracy(const Graph& graph) {
  uint32_t best = 0;
  for (uint32_t c : CoreNumbers(graph)) best = std::max(best, c);
  return best;
}

void CoreNumbersAfterInsert(const Graph& graph, VertexId u, VertexId v,
                            const std::unordered_set<uint64_t>& hidden,
                            std::vector<uint32_t>* cores,
                            std::vector<VertexId>* changed) {
  std::vector<uint32_t>& c = *cores;
  DCS_CHECK(u < c.size() && v < c.size());
  const uint32_t K = std::min(c[u], c[v]);
  // Candidates for a +1 promotion: the subcore of the lower-core endpoint in
  // the graph *with* the new edge (when both endpoints sit at level K, the
  // edge itself connects their subcores, so one BFS from u covers both).
  std::vector<VertexId> order;
  std::unordered_map<VertexId, uint32_t> support =
      CollectSubcore(graph, hidden, {c[u] <= c[v] ? u : v}, K, c, &order);
  // support(w) = neighbors that could sit in the (K+1)-core with w: vertices
  // already at core > K, plus fellow candidates (see CollectSubcore).
  for (const VertexId x : order) {
    uint32_t s = 0;
    ForEachVisibleNeighbor(graph, x, hidden,
                           [&](VertexId y) { s += c[y] >= K ? 1 : 0; });
    support[x] = s;
  }
  // Peel candidates that cannot reach degree K+1; cascades stay inside the
  // candidate set. Survivors are exactly the vertices the insertion lifts.
  std::vector<VertexId> queue;
  std::unordered_set<VertexId> evicted;
  for (const auto& [x, s] : support) {
    if (s <= K) queue.push_back(x);
  }
  while (!queue.empty()) {
    const VertexId x = queue.back();
    queue.pop_back();
    if (!evicted.insert(x).second) continue;
    ForEachVisibleNeighbor(graph, x, hidden, [&](VertexId y) {
      auto it = support.find(y);
      if (it == support.end() || evicted.count(y) != 0) return;
      if (it->second-- == K + 1) queue.push_back(y);  // just fell to K
    });
  }
  for (const auto& [x, s] : support) {
    if (evicted.count(x) == 0) {
      c[x] = K + 1;
      changed->push_back(x);
    }
  }
}

void CoreNumbersAfterRemove(const Graph& graph, VertexId u, VertexId v,
                            const std::unordered_set<uint64_t>& hidden,
                            std::vector<uint32_t>* cores,
                            std::vector<VertexId>* changed) {
  std::vector<uint32_t>& c = *cores;
  DCS_CHECK(u < c.size() && v < c.size());
  const uint32_t K = std::min(c[u], c[v]);
  DCS_CHECK(K > 0) << "removed edge's endpoints had degree >= 1, so cores >= 1";
  // Only level-K endpoints can demote; with the edge gone their subcores may
  // be disjoint, so seed the BFS from both.
  std::vector<VertexId> order;
  std::unordered_map<VertexId, uint32_t> support =
      CollectSubcore(graph, hidden, {u, v}, K, c, &order);
  for (const VertexId x : order) {
    uint32_t s = 0;
    ForEachVisibleNeighbor(graph, x, hidden,
                           [&](VertexId y) { s += c[y] >= K ? 1 : 0; });
    support[x] = s;
  }
  // Reverse peel: a candidate whose level-K support fell below K drops to
  // K − 1 and withdraws its support from fellow candidates.
  std::vector<VertexId> queue;
  std::unordered_set<VertexId> dropped;
  for (const auto& [x, s] : support) {
    if (s < K) queue.push_back(x);
  }
  while (!queue.empty()) {
    const VertexId x = queue.back();
    queue.pop_back();
    if (!dropped.insert(x).second) continue;
    c[x] = K - 1;
    changed->push_back(x);
    ForEachVisibleNeighbor(graph, x, hidden, [&](VertexId y) {
      auto it = support.find(y);
      if (it == support.end() || dropped.count(y) != 0) return;
      if (it->second-- == K) queue.push_back(y);  // just fell below K
    });
  }
}

}  // namespace dcs
