// Immutable undirected weighted graph in CSR (compressed sparse row) form.
//
// This is the substrate every DCS algorithm runs on. Following Table I of the
// paper, a graph G = <V, E, A> is undirected and weighted; in a *difference
// graph* GD = G2 − G1 edge weights may be negative, so dcs::Graph makes no
// sign assumption. Self-loops are rejected at construction (A has zero
// diagonal in the affinity formulation) and parallel edges are merged by the
// builder before a Graph is materialized.

#ifndef DCS_GRAPH_GRAPH_H_
#define DCS_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace dcs {

/// Vertex identifier: dense indices in [0, NumVertices()).
using VertexId = uint32_t;

/// \brief Packs an unordered vertex pair into one map key (smaller id in the
/// high word). Shared by every streaming-update weight map.
inline uint64_t PackVertexPair(VertexId u, VertexId v) {
  static_assert(sizeof(VertexId) <= sizeof(uint32_t),
                "PackVertexPair packs two VertexIds into one uint64_t; the "
                "'<< 32' packing silently collides if VertexId is widened "
                "past 32 bits");
  if (u > v) {
    const VertexId t = u;
    u = v;
    v = t;
  }
  return (static_cast<uint64_t>(u) << 32) | v;
}

/// An unordered vertex pair as unpacked from a PackVertexPair key (u < v).
struct VertexPair {
  VertexId u;
  VertexId v;
};

/// \brief Inverse of PackVertexPair — the one place that knows the packing,
/// so every pair-keyed map consumer round-trips through the same layout.
inline VertexPair UnpackVertexPair(uint64_t key) {
  return {static_cast<VertexId>(key >> 32),
          static_cast<VertexId>(key & 0xFFFFFFFFull)};
}

/// One directed half of an undirected edge as stored in CSR adjacency.
struct Neighbor {
  VertexId to;
  double weight;

  friend bool operator==(const Neighbor&, const Neighbor&) = default;
};

/// An undirected edge with endpoints u < v.
struct Edge {
  VertexId u;
  VertexId v;
  double weight;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Summary statistics of a graph's weights (used for Table II).
struct WeightStats {
  size_t num_positive_edges = 0;  ///< m+ : undirected edges with weight > 0
  size_t num_negative_edges = 0;  ///< m− : undirected edges with weight < 0
  double max_weight = 0.0;        ///< 0 for an empty graph
  double min_weight = 0.0;        ///< 0 for an empty graph
  double mean_weight = 0.0;       ///< average undirected edge weight
};

/// \brief Immutable undirected weighted graph (CSR).
///
/// Construction goes through GraphBuilder (or the factory helpers in
/// gen/ and graph/difference.h); a constructed Graph always satisfies:
///  - adjacency lists sorted by neighbor id, no duplicates, no self-loops;
///  - perfect symmetry: v in adj(u) iff u in adj(v), with equal weights;
///  - all weights finite and non-zero.
class Graph {
 public:
  /// An empty graph with `n` isolated vertices.
  explicit Graph(VertexId n = 0);

  VertexId NumVertices() const { return static_cast<VertexId>(offsets_.size() - 1); }

  /// Number of *undirected* edges m (each stored twice internally).
  size_t NumEdges() const { return neighbors_.size() / 2; }

  /// Sorted adjacency list of `u`.
  std::span<const Neighbor> NeighborsOf(VertexId u) const {
    return {neighbors_.data() + offsets_[u],
            neighbors_.data() + offsets_[u + 1]};
  }

  /// Unweighted degree of `u`.
  size_t Degree(VertexId u) const { return offsets_[u + 1] - offsets_[u]; }

  /// Weighted degree of `u`: sum of incident edge weights.
  double WeightedDegree(VertexId u) const;

  /// Weight of edge (u,v), or 0 when absent. O(log deg(u)).
  double EdgeWeight(VertexId u, VertexId v) const;

  /// True iff (u,v) is an edge. O(log deg(u)).
  bool HasEdge(VertexId u, VertexId v) const { return EdgeWeight(u, v) != 0.0; }

  /// All undirected edges with u < v, sorted lexicographically.
  std::vector<Edge> UndirectedEdges() const;

  /// Weight statistics over undirected edges.
  WeightStats ComputeWeightStats() const;

  /// Maximum edge weight incident to each vertex (−inf for isolated
  /// vertices). Used by NewSEA's smart initialization (w_u of Theorem 6).
  std::vector<double> MaxIncidentWeightPerVertex() const;

  /// \brief The subgraph of edges with strictly positive weight — GD+ of
  /// Table I. Vertex set (and ids) are preserved.
  Graph PositivePart() const;

  /// \brief A graph with every edge weight negated (used to flip an
  /// "Emerging" difference graph into a "Disappearing" one, §VI-B).
  Graph Negated() const;

  /// \brief Returns a copy with every weight w replaced by min(w, cap),
  /// cap > 0 (the §III-D heavy-edge adjustment; Actor "Discrete" setting).
  Graph WeightsClampedAbove(double cap) const;

  /// \brief Stable 64-bit fingerprint of the graph's content (vertex count,
  /// adjacency structure and exact weight bit patterns).
  ///
  /// Two graphs built from the same edges — regardless of insertion order,
  /// since GraphBuilder canonicalizes to sorted CSR — fingerprint equal; any
  /// structural or weight difference changes it (modulo the 2^-64 collision
  /// probability, which the cross-session PipelineCache accepts as content
  /// equality). The value is a pure function of the content: stable across
  /// processes, runs and platforms with IEEE-754 doubles. O(n + m).
  ///
  /// Construction: the fingerprint folds the vertex count with a wrapping
  /// *sum* of per-edge hashes (ContentAccumulator), so a streaming patch can
  /// maintain it in O(Δ) — subtract the hashes of the edges it rewrites, add
  /// the hashes of their replacements — instead of rehashing the graph (see
  /// graph/csr_patcher.h).
  uint64_t ContentFingerprint() const;

  /// Hash of one undirected edge (canonical u < v) as summed by
  /// ContentAccumulator. Exposed for the O(Δ) incremental maintenance above.
  static uint64_t UndirectedEdgeHash(VertexId u, VertexId v, double weight);

  /// Wrapping sum of UndirectedEdgeHash over all undirected edges — the
  /// order-free, incrementally maintainable half of ContentFingerprint.
  /// O(n + m).
  uint64_t ContentAccumulator() const;

  /// Folds a vertex count and a ContentAccumulator value into the final
  /// ContentFingerprint; FingerprintFromAccumulator(NumVertices(),
  /// ContentAccumulator()) == ContentFingerprint() by definition.
  static uint64_t FingerprintFromAccumulator(VertexId n, uint64_t accumulator);

  /// Approximate heap footprint of this graph in bytes (CSR arrays); used
  /// for the PipelineCache byte budget.
  size_t ApproxBytes() const {
    return sizeof(Graph) + offsets_.capacity() * sizeof(size_t) +
           neighbors_.capacity() * sizeof(Neighbor);
  }

  /// Human-readable one-line summary ("Graph(n=..., m=..., m+=..., m-=...)").
  std::string DebugString() const;

  friend class GraphBuilder;
  friend class CsrPatcher;
  friend class GraphSerializer;  // graph/serialize.cc: flat CSR round trip
  friend class GraphKernels;     // core/kernels.cc: direct-CSR kernel builds

 private:
  Graph(std::vector<size_t> offsets, std::vector<Neighbor> neighbors)
      : offsets_(std::move(offsets)), neighbors_(std::move(neighbors)) {}

  std::vector<size_t> offsets_;     // size n+1
  std::vector<Neighbor> neighbors_; // size 2m, sorted within each row
};

}  // namespace dcs

#endif  // DCS_GRAPH_GRAPH_H_
