#include "graph/stats.h"

#include "util/logging.h"

namespace dcs {
namespace {

std::vector<char> MembershipBitmap(const Graph& graph,
                                   std::span<const VertexId> subset) {
  std::vector<char> member(graph.NumVertices(), 0);
  for (VertexId v : subset) {
    DCS_CHECK(v < graph.NumVertices()) << "subset vertex out of range";
    member[v] = 1;
  }
  return member;
}

}  // namespace

double TotalDegree(const Graph& graph, std::span<const VertexId> subset) {
  const std::vector<char> member = MembershipBitmap(graph, subset);
  double total = 0.0;
  for (VertexId u : subset) {
    for (const Neighbor& nb : graph.NeighborsOf(u)) {
      if (member[nb.to]) total += nb.weight;
    }
  }
  return total;
}

double AverageDegreeDensity(const Graph& graph,
                            std::span<const VertexId> subset) {
  if (subset.empty()) return 0.0;
  return TotalDegree(graph, subset) / static_cast<double>(subset.size());
}

double EdgeDensity(const Graph& graph, std::span<const VertexId> subset) {
  if (subset.empty()) return 0.0;
  const double size = static_cast<double>(subset.size());
  return TotalDegree(graph, subset) / (size * size);
}

size_t InducedEdgeCount(const Graph& graph,
                        std::span<const VertexId> subset) {
  const std::vector<char> member = MembershipBitmap(graph, subset);
  size_t twice = 0;
  for (VertexId u : subset) {
    for (const Neighbor& nb : graph.NeighborsOf(u)) {
      if (member[nb.to]) ++twice;
    }
  }
  return twice / 2;
}

bool IsClique(const Graph& graph, std::span<const VertexId> subset) {
  if (subset.size() <= 1) return true;
  const std::vector<char> member = MembershipBitmap(graph, subset);
  // Count distinct members: duplicates in `subset` would break the edge
  // counting argument below.
  size_t distinct = 0;
  for (char m : member) distinct += m;
  size_t twice_edges = 0;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    if (!member[v]) continue;
    for (const Neighbor& nb : graph.NeighborsOf(v)) {
      if (member[nb.to]) ++twice_edges;
    }
  }
  return twice_edges == distinct * (distinct - 1);
}

bool IsPositiveClique(const Graph& graph, std::span<const VertexId> subset) {
  if (subset.size() <= 1) return true;
  const std::vector<char> member = MembershipBitmap(graph, subset);
  size_t distinct = 0;
  for (char m : member) distinct += m;
  size_t twice_positive_edges = 0;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    if (!member[v]) continue;
    for (const Neighbor& nb : graph.NeighborsOf(v)) {
      if (!member[nb.to]) continue;
      if (nb.weight <= 0.0) return false;
      ++twice_positive_edges;
    }
  }
  return twice_positive_edges == distinct * (distinct - 1);
}

std::vector<double> InducedWeightedDegrees(const Graph& graph,
                                           std::span<const VertexId> subset) {
  const std::vector<char> member = MembershipBitmap(graph, subset);
  std::vector<double> degrees;
  degrees.reserve(subset.size());
  for (VertexId u : subset) {
    double d = 0.0;
    for (const Neighbor& nb : graph.NeighborsOf(u)) {
      if (member[nb.to]) d += nb.weight;
    }
    degrees.push_back(d);
  }
  return degrees;
}

}  // namespace dcs
