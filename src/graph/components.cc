#include "graph/components.h"

#include <deque>

#include "util/logging.h"

namespace dcs {

std::vector<std::vector<VertexId>> ComponentLabeling::Groups() const {
  std::vector<std::vector<VertexId>> groups(num_components);
  for (VertexId v = 0; v < label.size(); ++v) {
    groups[label[v]].push_back(v);
  }
  return groups;
}

ComponentLabeling ConnectedComponents(const Graph& graph) {
  const VertexId n = graph.NumVertices();
  constexpr VertexId kUnlabeled = static_cast<VertexId>(-1);
  ComponentLabeling result;
  result.label.assign(n, kUnlabeled);
  std::deque<VertexId> queue;
  for (VertexId start = 0; start < n; ++start) {
    if (result.label[start] != kUnlabeled) continue;
    const VertexId comp = result.num_components++;
    result.label[start] = comp;
    queue.push_back(start);
    while (!queue.empty()) {
      const VertexId u = queue.front();
      queue.pop_front();
      for (const Neighbor& nb : graph.NeighborsOf(u)) {
        if (result.label[nb.to] == kUnlabeled) {
          result.label[nb.to] = comp;
          queue.push_back(nb.to);
        }
      }
    }
  }
  return result;
}

std::vector<std::vector<VertexId>> InducedComponents(
    const Graph& graph, std::span<const VertexId> subset) {
  const VertexId n = graph.NumVertices();
  std::vector<char> in_subset(n, 0);
  std::vector<char> visited(n, 0);
  for (VertexId v : subset) {
    DCS_CHECK(v < n) << "subset vertex out of range";
    in_subset[v] = 1;
  }
  std::vector<std::vector<VertexId>> components;
  std::deque<VertexId> queue;
  for (VertexId start : subset) {
    if (visited[start]) continue;
    components.emplace_back();
    std::vector<VertexId>& comp = components.back();
    visited[start] = 1;
    queue.push_back(start);
    while (!queue.empty()) {
      const VertexId u = queue.front();
      queue.pop_front();
      comp.push_back(u);
      for (const Neighbor& nb : graph.NeighborsOf(u)) {
        if (in_subset[nb.to] && !visited[nb.to]) {
          visited[nb.to] = 1;
          queue.push_back(nb.to);
        }
      }
    }
  }
  return components;
}

bool IsInducedConnected(const Graph& graph,
                        std::span<const VertexId> subset) {
  return InducedComponents(graph, subset).size() <= 1;
}

}  // namespace dcs
