// CsrPatcher — O(Δ)-work splicing of a batch of edge assignments into an
// immutable CSR graph, the substrate of the streaming update path.
//
// A MinerSession that receives Δ streaming weight updates used to pay a full
// GraphBuilder rebuild (sort + merge of all m edges) at the next query. The
// patcher instead *splices*: only the ≤ 2Δ adjacency rows touched by the
// batch are re-merged; every untouched row is carried over with one bulk
// contiguous copy, and the new offset array is a single prefix-sum pass. The
// cost is O(Δ·(log Δ + deg) + n) merge work plus a memcpy-speed pass over
// the arrays — no per-edge sorting of the whole graph.
//
// Semantics are *assignment*, not accumulation: each EdgePatch carries the
// new absolute weight of its pair (callers fold pending deltas into
// absolute weights first), with |weight| <= zero_eps meaning "ensure the
// edge is absent". That makes one patch rule serve every layer of the
// pipeline: base graphs (old + delta), difference graphs (recomputed
// D(u,v)), and GD+ (positive part of the recomputed weight) — and it is
// what makes the result bit-identical to a from-scratch GraphBuilder
// rebuild, which the streaming equivalence tests pin.
//
// The patcher also maintains Graph::ContentAccumulator incrementally
// (subtract the rewritten edges' hashes, add the replacements'), so the
// session fingerprint refresh after a patch is O(Δ) instead of O(m).

#ifndef DCS_GRAPH_CSR_PATCHER_H_
#define DCS_GRAPH_CSR_PATCHER_H_

#include <span>

#include "graph/graph.h"
#include "graph/graph_builder.h"

namespace dcs {

/// One undirected edge assignment of a patch batch (canonical u < v).
struct EdgePatch {
  VertexId u;
  VertexId v;
  /// New absolute weight of {u,v}; |weight| <= the batch's zero_eps drops
  /// the edge (mirroring GraphBuilder::Build's zero rule).
  double weight;
};

/// \brief Splices sorted edge assignments into an immutable CSR graph.
///
/// A pure function of (base, patches, zero_eps); the result is bit-identical
/// to rebuilding `base`'s surviving edges plus the kept patches through
/// GraphBuilder with the same zero_eps.
class CsrPatcher {
 public:
  /// \brief Returns `base` with every patch applied.
  ///
  /// Contract (DCS_CHECKed — callers are internal layers that canonicalize
  /// first): patches are sorted ascending by PackVertexPair(u, v) with no
  /// duplicate pairs, u < v, v < base.NumVertices(), finite weights.
  ///
  /// `accumulator` (nullable, in/out) must hold base.ContentAccumulator()
  /// on entry and holds the patched graph's accumulator on return — the
  /// O(Δ) fingerprint maintenance.
  static Graph Apply(const Graph& base, std::span<const EdgePatch> patches,
                     double zero_eps = kDefaultZeroEps,
                     uint64_t* accumulator = nullptr);
};

}  // namespace dcs

#endif  // DCS_GRAPH_CSR_PATCHER_H_
